/**
 * @file
 * `benchdiff` — compare two run artifacts and fail on regression.
 *
 * Accepts any pair of RunReport manifests (`--report FILE`), metrics
 * dumps (`--metrics FILE`) or Google-Benchmark JSON, flattens them
 * into named metrics, and applies per-metric rules (relative-change
 * threshold + absolute noise floor).  CI commits baseline artifacts
 * under bench/baselines/ and runs:
 *
 *   benchdiff bench/baselines/BENCH_memsim.json BENCH_memsim.json
 *
 * Usage:
 *   benchdiff OLD NEW [options]
 *     --track GLOB[:THRESH%[:NOISE]]     add a rule; higher is worse
 *     --track-up GLOB[:THRESH%[:NOISE]]  add a rule; higher is better
 *     --allow-missing    tracked-but-absent metrics do not fail
 *     --all              print unchanged metrics too
 *     --json             machine-readable output on stdout
 *
 * With no --track flags the default rule set applies (deterministic
 * memsim counters/gauges at 5%, bench/cells_failed exact); the first
 * matching rule wins, so order specific rules before catch-alls.
 *
 * Exit codes:
 *   0  no regression (improvements and noise are fine)
 *   1  usage error
 *   2  unreadable or structurally invalid input file
 *   3  regression beyond threshold, or tracked metric missing
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/benchdiff.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

using namespace graphorder;
using namespace graphorder::obs;

namespace {

void
usage(const char* argv0)
{
    std::printf(
        "usage: %s OLD.json NEW.json [options]\n"
        "  --track GLOB[:THRESH%%[:NOISE]]     track metrics matching\n"
        "                   GLOB; flag relative changes beyond THRESH%%\n"
        "                   (default 5) ignoring absolute deltas <=\n"
        "                   NOISE (default 0); an increase is a\n"
        "                   regression\n"
        "  --track-up GLOB[:THRESH%%[:NOISE]]  same, but a decrease is\n"
        "                   the regression (throughput-style metrics)\n"
        "  --allow-missing  a tracked metric absent from NEW is\n"
        "                   reported but does not fail the diff\n"
        "  --all            also print unchanged tracked metrics\n"
        "  --json           print the verdicts as JSON\n"
        "exit codes: 0 ok; 1 usage; 2 bad input; 3 regression or\n"
        "missing tracked metric\n",
        argv0);
}

/** Parse "GLOB[:THRESH%[:NOISE]]" into a rule. */
DiffRule
parse_rule(const std::string& spec, bool higher_is_better)
{
    DiffRule r;
    r.higher_is_better = higher_is_better;
    const std::size_t c1 = spec.find(':');
    r.glob = spec.substr(0, c1);
    if (r.glob.empty())
        fatal("--track: empty glob in '" + spec + "'");
    if (c1 == std::string::npos)
        return r;
    const std::size_t c2 = spec.find(':', c1 + 1);
    std::string thresh = spec.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos
                                        : c2 - c1 - 1);
    if (!thresh.empty() && thresh.back() == '%')
        thresh.pop_back();
    char* end = nullptr;
    r.rel_threshold = std::strtod(thresh.c_str(), &end) / 100.0;
    if (end == nullptr || *end != '\0' || r.rel_threshold < 0)
        fatal("--track: bad threshold in '" + spec + "'");
    if (c2 != std::string::npos) {
        const std::string noise = spec.substr(c2 + 1);
        r.noise_floor = std::strtod(noise.c_str(), &end);
        if (end == nullptr || *end != '\0' || r.noise_floor < 0)
            fatal("--track: bad noise floor in '" + spec + "'");
    }
    return r;
}

std::string
json_escape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> files;
    DiffOptions opt;
    bool print_all = false, json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--track" && i + 1 < argc) {
            opt.rules.push_back(parse_rule(argv[++i], false));
        } else if (a == "--track-up" && i + 1 < argc) {
            opt.rules.push_back(parse_rule(argv[++i], true));
        } else if (a == "--allow-missing") {
            opt.fail_on_missing = false;
        } else if (a == "--all") {
            print_all = true;
        } else if (a == "--json") {
            json = true;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            usage(argv[0]);
            fatal("unknown argument: " + a);
        } else {
            files.push_back(a);
        }
    }
    if (files.size() != 2) {
        usage(argv[0]);
        fatal("need exactly two input files (old, new)");
    }

    try {
        const JsonValue baseline = parse_json_file(files[0]);
        const JsonValue current = parse_json_file(files[1]);
        const DiffResult res = diff_metrics(baseline, current, opt);

        if (json) {
            std::printf("{\"old\": \"%s\", \"new\": \"%s\", "
                        "\"failed\": %s,\n \"summary\": "
                        "{\"regressions\": %zu, \"improvements\": %zu, "
                        "\"missing\": %zu, \"unchanged\": %zu},\n"
                        " \"metrics\": [",
                        json_escape(files[0]).c_str(),
                        json_escape(files[1]).c_str(),
                        res.failed ? "true" : "false", res.regressions,
                        res.improvements, res.missing, res.unchanged);
            bool first = true;
            for (const auto& d : res.diffs) {
                if (!print_all && d.verdict == DiffVerdict::kUnchanged)
                    continue;
                std::printf("%s\n  {\"name\": \"%s\", \"verdict\": "
                            "\"%s\", \"old\": %.17g, \"new\": %.17g, "
                            "\"rel_change\": %.6g}",
                            first ? "" : ",",
                            json_escape(d.name).c_str(),
                            diff_verdict_name(d.verdict), d.old_value,
                            d.new_value, d.rel_change);
                first = false;
            }
            std::printf("\n]}\n");
        } else {
            std::size_t shown = 0;
            for (const auto& d : res.diffs) {
                if (!print_all && d.verdict == DiffVerdict::kUnchanged)
                    continue;
                ++shown;
                if (d.verdict == DiffVerdict::kMissing)
                    std::printf("%-12s %s (baseline %.6g, absent)\n",
                                diff_verdict_name(d.verdict),
                                d.name.c_str(), d.old_value);
                else
                    std::printf("%-12s %s: %.6g -> %.6g (%+.2f%%)\n",
                                diff_verdict_name(d.verdict),
                                d.name.c_str(), d.old_value,
                                d.new_value, 100.0 * d.rel_change);
            }
            std::printf("%stracked %zu metric(s): %zu regression(s), "
                        "%zu improvement(s), %zu missing, %zu within "
                        "noise\n",
                        shown ? "\n" : "", res.diffs.size(),
                        res.regressions, res.improvements, res.missing,
                        res.unchanged);
            if (res.diffs.empty())
                warn("no tracked metrics matched — check your --track "
                     "globs against the artifact");
        }
        return res.failed ? 3 : 0;
    } catch (const GraphorderError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
