/**
 * @file
 * `reorder-client` — thin CLI client for a running `reorderd`.
 *
 * Sends the request lines given on the command line (or piped on
 * stdin with no positional arguments) to the daemon, prints each
 * response line, and exits with the taxonomy exit code of the *worst*
 * response — so shell scripts and CI can assert on failures without
 * parsing:
 *
 *   reorder-client --connect 127.0.0.1:7733 \
 *       "ORDER graph=web scheme=rcm id=a" \
 *       "ORDER graph=web scheme=gorder deadline_ms=50 id=b"
 *
 * Exit codes: 0 every response OK; otherwise the exit_code_for() of
 * the most severe ERR code seen (2 invalid input, 3 overloaded /
 * budget / unavailable — including "connection refused", which is
 * Unavailable — 4 internal).
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

using namespace graphorder;

namespace {

void
usage(const char* argv0)
{
    std::printf(
        "usage: %s --connect HOST:PORT [REQUEST-LINE ...]\n"
        "  with no request lines, reads them from stdin.\n"
        "  --quit  append a QUIT after the requests (default)\n"
        "  --no-quit  keep the connection open until EOF on stdin\n",
        argv0);
}

int
connect_to(const std::string& target)
{
    const auto colon = target.rfind(':');
    if (colon == std::string::npos)
        fatal("--connect expects HOST:PORT, got '" + target + "'");
    const std::string host = target.substr(0, colon);
    const int port = std::atoi(target.substr(colon + 1).c_str());

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(std::string("socket: ") + std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        fatal("--connect expects a numeric IPv4 host, got '" + host
              + "'");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr)
        < 0) {
        // The daemon being down is the Unavailable taxonomy case, not
        // a generic usage error: scripts retry on exit 3.
        std::fprintf(stderr, "reorder-client: connect %s: %s\n",
                     target.c_str(), std::strerror(errno));
        std::exit(exit_code_for(StatusCode::Unavailable));
    }
    return fd;
}

bool
send_line(int fd, std::string line)
{
    line += '\n';
    const char* p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    std::signal(SIGPIPE, SIG_IGN);

    std::string target;
    bool quit = true;
    std::vector<std::string> requests;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--connect") {
            if (i + 1 >= argc)
                fatal("--connect expects an argument");
            target = argv[++i];
        } else if (a == "--quit") {
            quit = true;
        } else if (a == "--no-quit") {
            quit = false;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            fatal("unknown flag '" + a + "' (try --help)");
        } else {
            requests.push_back(a);
        }
    }
    if (target.empty()) {
        usage(argv[0]);
        fatal("--connect is required");
    }

    if (requests.empty()) {
        std::string line;
        while (std::getline(std::cin, line))
            requests.push_back(line);
    }

    const int fd = connect_to(target);
    std::size_t expected = 0;
    for (const auto& r : requests) {
        if (!send_line(fd, r))
            fatal(std::string("write: ") + std::strerror(errno));
        ++expected;
    }
    if (quit) {
        send_line(fd, "QUIT");
        ++expected;
    }

    int worst = 0;
    service::LineReader reader(fd);
    std::string line;
    for (std::size_t got = 0; got < expected; ++got) {
        const auto res = reader.next(line);
        if (res != service::LineReader::Result::kLine) {
            std::fprintf(stderr,
                         "reorder-client: connection closed after %zu "
                         "of %zu responses\n",
                         got, expected);
            ::close(fd);
            return exit_code_for(StatusCode::Unavailable);
        }
        std::printf("%s\n", line.c_str());
        try {
            const auto resp = service::parse_response(line);
            if (!resp.ok)
                worst = std::max(worst, exit_code_for(resp.code));
        } catch (...) {
            worst = std::max(worst,
                             exit_code_for(StatusCode::Internal));
        }
    }
    ::close(fd);
    return worst;
}
