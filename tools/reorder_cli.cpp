/**
 * @file
 * `reorder` — command-line front end to the library.
 *
 * Reads an edge list, computes an ordering with any registered scheme,
 * reports the paper's gap measures, and optionally writes the reordered
 * edge list — the end-to-end workflow a practitioner needs to apply the
 * paper's findings to their own graph.
 *
 * Usage:
 *   reorder --input graph.edges [--scheme rcm] [--seed N]
 *           [--output reordered.edges] [--metrics-all] [--stats]
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "la/gap_measures.hpp"
#include "order/scheme.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace graphorder;

namespace {

void
usage(const char* argv0)
{
    std::printf(
        "usage: %s --input FILE [options]\n"
        "  --input FILE     edge list (\"u v\" per line, #/%% comments)\n"
        "  --scheme NAME    ordering scheme (default rcm); see --list\n"
        "  --seed N         RNG seed for randomized schemes (default 42)\n"
        "  --output FILE    write the reordered edge list\n"
        "  --metrics-all    evaluate every registered scheme\n"
        "  --stats          print graph statistics (incl. triangles)\n"
        "  --list           list registered schemes and exit\n",
        argv0);
}

void
list_schemes()
{
    Table t("registered ordering schemes");
    t.header({"name", "category", "large-graph safe"});
    for (const auto& s : all_schemes())
        t.row({s.name, category_name(s.category),
               s.scalable ? "yes" : "no"});
    t.print();
}

} // namespace

int
main(int argc, char** argv)
{
    std::string input, output, scheme_name = "rcm";
    std::uint64_t seed = 42;
    bool metrics_all = false, stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--input" && i + 1 < argc) {
            input = argv[++i];
        } else if (a == "--scheme" && i + 1 < argc) {
            scheme_name = argv[++i];
        } else if (a == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--output" && i + 1 < argc) {
            output = argv[++i];
        } else if (a == "--metrics-all") {
            metrics_all = true;
        } else if (a == "--stats") {
            stats = true;
        } else if (a == "--list") {
            list_schemes();
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument: " + a);
        }
    }
    if (input.empty()) {
        usage(argv[0]);
        fatal("--input is required (or --list)");
    }

    const Csr g = load_edge_list(input);
    std::printf("loaded %s: %u vertices, %llu edges\n", input.c_str(),
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));
    if (stats)
        std::printf("stats: %s\n", to_string(compute_stats(g)).c_str());

    if (metrics_all) {
        Table t("gap metrics per scheme (lower is better)");
        t.header({"scheme", "avg gap", "bandwidth", "avg bandwidth",
                  "log gap", "reorder time (s)"});
        for (const auto& s : all_schemes()) {
            Timer timer;
            timer.start();
            const auto pi = s.run(g, seed);
            const double secs = timer.elapsed_s();
            const auto m = compute_gap_metrics(g, pi);
            t.row({s.name, Table::num(m.avg_gap, 1),
                   Table::num(std::uint64_t{m.bandwidth}),
                   Table::num(m.avg_bandwidth, 1),
                   Table::num(m.log_gap, 2), Table::num(secs, 3)});
        }
        t.print();
        return 0;
    }

    const auto& scheme = scheme_by_name(scheme_name);
    Timer timer;
    timer.start();
    const auto pi = scheme.run(g, seed);
    std::printf("%s reordering computed in %.3f s\n", scheme.name.c_str(),
                timer.elapsed_s());
    const auto before = compute_gap_metrics(g);
    const auto after = compute_gap_metrics(g, pi);
    Table t("gap metrics");
    t.header({"", "avg gap", "bandwidth", "avg bandwidth", "log gap"});
    t.row({"natural", Table::num(before.avg_gap, 1),
           Table::num(std::uint64_t{before.bandwidth}),
           Table::num(before.avg_bandwidth, 1),
           Table::num(before.log_gap, 2)});
    t.row({scheme.name, Table::num(after.avg_gap, 1),
           Table::num(std::uint64_t{after.bandwidth}),
           Table::num(after.avg_bandwidth, 1),
           Table::num(after.log_gap, 2)});
    t.print();

    if (!output.empty()) {
        std::ofstream out(output);
        if (!out)
            fatal("cannot open output: " + output);
        write_edge_list(out, apply_permutation(g, pi));
        std::printf("reordered edge list written to %s\n", output.c_str());
    }
    return 0;
}
