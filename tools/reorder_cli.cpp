/**
 * @file
 * `reorder` — command-line front end to the library.
 *
 * Reads an edge list, computes an ordering with any registered scheme,
 * reports the paper's gap measures, and optionally writes the reordered
 * edge list — the end-to-end workflow a practitioner needs to apply the
 * paper's findings to their own graph.
 *
 * Usage:
 *   reorder --input graph.edges [--scheme rcm] [--seed N]
 *           [--output reordered.edges] [--metrics-all] [--stats]
 *           [--json] [--trace t.json] [--metrics m.json]
 *           [--report r.json] [--deadline-ms X] [--mem-budget-mb N]
 *           [--fallback] [--check]
 *
 * Exit codes (see util/status.hpp):
 *   0  success
 *   1  usage error (unknown flag, missing --input)
 *   2  invalid input (unreadable/corrupt file, unknown scheme)
 *   3  budget exceeded (--deadline-ms / --mem-budget-mb) or cancelled
 *   4  internal error or invariant violation
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "community/louvain.hpp"
#include "graph/io.hpp"
#include "graph/permutation.hpp"
#include "graph/stats.hpp"
#include "influence/imm.hpp"
#include "la/gap_measures.hpp"
#include "memsim/cache.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "order/advisor.hpp"
#include "order/runner.hpp"
#include "order/scheme.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace graphorder;

namespace {

void
usage(const char* argv0)
{
    std::printf(
        "usage: %s --input FILE [options]\n"
        "  --input FILE     input graph; edge list (\"u v\" per line,\n"
        "                   #/%% comments) or METIS .graph\n"
        "  --format F       input format: edges | metis (default: by\n"
        "                   extension, .graph/.metis = metis)\n"
        "  --scheme NAME    ordering scheme (default rcm); see --list.\n"
        "                   'auto' probes the graph and lets the\n"
        "                   structural advisor pick (order/advisor.hpp)\n"
        "  --advise         probe only: print the advisor's scored\n"
        "                   recommendation and exit without reordering\n"
        "  --seed N         RNG seed for randomized schemes (default 42)\n"
        "  --output FILE    write the reordered edge list\n"
        "  --deadline-ms X  wall-clock budget for the ordering run; a\n"
        "                   blown budget exits 3 (or falls back)\n"
        "  --mem-budget-mb N  approximate RSS-growth budget for the\n"
        "                   ordering run (Linux only)\n"
        "  --fallback       on failure, walk the scheme's fallback chain\n"
        "                   (cheaper same-flavor schemes, then natural)\n"
        "  --check          validate the input CSR and the output\n"
        "                   permutation (always on in Debug builds)\n"
        "  --metrics-all    evaluate every registered scheme\n"
        "  --stats          print graph statistics (incl. triangles)\n"
        "  --json           print results as one JSON object on stdout\n"
        "  --threads N      OpenMP threads for the parallel kernels\n"
        "                   (default: GRAPHORDER_THREADS env, else the\n"
        "                   OpenMP runtime default)\n"
        "  --trace FILE     record phase spans; Chrome trace-event JSON\n"
        "                   written at exit (.jsonl = JSON-lines; open\n"
        "                   in chrome://tracing or ui.perfetto.dev)\n"
        "  --metrics FILE   dump the obs metrics registry at exit (JSON,\n"
        "                   or CSV with a .csv extension); also runs a\n"
        "                   Louvain+IMM telemetry pass through the cache\n"
        "                   simulator on the reordered graph so memsim/,\n"
        "                   louvain/ and imm/ counters are populated\n"
        "  --report FILE    write a RunReport manifest at exit: git sha,\n"
        "                   hostname, graph fingerprint, hardware perf\n"
        "                   counters (hw/available=false when the kernel\n"
        "                   denies perf_event_open), RSS peak, memsim-vs-\n"
        "                   hardware LLC-miss ratio and a full metrics\n"
        "                   snapshot — the input to tools/benchdiff\n"
        "  --list           list registered schemes (name, category,\n"
        "                   cost class, determinism, parallelism,\n"
        "                   fallback chain) and\n"
        "                   exit; with --json, a machine-readable dump\n"
        "                   docs/scheme-selection.md is checked against\n"
        "exit codes: 0 ok; 1 usage error; 2 invalid input; 3 budget\n"
        "exceeded or cancelled; 4 internal error/invariant violation\n",
        argv0);
}

std::string
fallback_chain_str(const OrderingScheme& s, const char* sep)
{
    std::string out;
    for (const auto& f : s.fallback)
        out += (out.empty() ? "" : sep) + f;
    return out;
}

/**
 * `reorder --list [--json]`.  The JSON dump is the machine-readable
 * registry: docs/scheme-selection.md's tables are regenerated from it
 * and CI fails when the playbook misses a registered scheme.
 */
void
list_schemes(bool json)
{
    if (json) {
        std::printf("{\"schemes\": [");
        bool first = true;
        for (const auto& s : all_schemes()) {
            std::printf("%s\n  {\"name\": \"%s\", \"category\": \"%s\", "
                        "\"cost_class\": \"%s\", "
                        "\"deadline_hint_ms\": %.6g, "
                        "\"scalable\": %s, \"deterministic\": %s, "
                        "\"parallel\": %s, "
                        "\"fallback\": [",
                        first ? "" : ",", s.name.c_str(),
                        category_name(s.category),
                        cost_class_name(s.cost_class),
                        s.deadline_hint_ms,
                        s.scalable ? "true" : "false",
                        s.deterministic ? "true" : "false",
                        s.parallel ? "true" : "false");
            for (std::size_t i = 0; i < s.fallback.size(); ++i)
                std::printf("%s\"%s\"", i ? ", " : "",
                            s.fallback[i].c_str());
            std::printf("]}");
            first = false;
        }
        std::printf("\n]}\n");
        return;
    }
    Table t("registered ordering schemes");
    t.header({"name", "category", "cost class", "large-graph safe",
              "deterministic", "parallel", "fallback chain"});
    for (const auto& s : all_schemes())
        t.row({s.name, category_name(s.category),
               cost_class_name(s.cost_class),
               s.scalable ? "yes" : "no",
               s.deterministic ? "yes" : "no",
               s.parallel ? "yes" : "no",
               fallback_chain_str(s, " > ")});
    t.print();
}

std::string
json_escape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
print_gap_json(std::FILE* f, const GapMetrics& m)
{
    std::fprintf(f,
                 "{\"avg_gap\": %.6g, \"bandwidth\": %llu, "
                 "\"avg_bandwidth\": %.6g, \"log_gap\": %.6g, "
                 "\"total_gap\": %.6g, \"envelope\": %.6g}",
                 m.avg_gap, static_cast<unsigned long long>(m.bandwidth),
                 m.avg_bandwidth, m.log_gap, m.total_gap, m.envelope);
}

void
print_compress_json(std::FILE* f, const CompressionStats& c)
{
    std::fprintf(f,
                 "{\"bits_per_edge\": %.6g, \"gap_bits_per_edge\": %.6g, "
                 "\"ref_bits_per_edge\": %.6g, \"res_bits_per_edge\": %.6g, "
                 "\"encoded_bytes\": %llu, \"ref_vertex_fraction\": %.6g}",
                 c.bits_per_edge, c.gap_bits_per_edge, c.ref_bits_per_edge,
                 c.res_bits_per_edge,
                 static_cast<unsigned long long>(c.encoded_bytes),
                 c.ref_vertex_fraction);
}

/** Publish compression stats as compress/<tag>/* gauges so a --report
 *  manifest snapshots them alongside the memsim/hw metric families. */
void
publish_compression(const std::string& tag, const CompressionStats& c)
{
    auto& reg = obs::MetricsRegistry::instance();
    const std::string p = "compress/" + tag + "/";
    reg.gauge(p + "bits_per_edge").set(c.bits_per_edge);
    reg.gauge(p + "gap_bits_per_edge").set(c.gap_bits_per_edge);
    reg.gauge(p + "ref_bits_per_edge").set(c.ref_bits_per_edge);
    reg.gauge(p + "res_bits_per_edge").set(c.res_bits_per_edge);
    reg.gauge(p + "ref_vertex_fraction").set(c.ref_vertex_fraction);
}

void
print_advisor_json(std::FILE* f, const AdvisorReport& r)
{
    std::fprintf(
        f,
        "{\"choice\": \"%s\", \"scheme\": \"%s\", "
        "\"rationale\": \"%s\",\n"
        "  \"probe\": {\"mean_degree\": %.6g, \"max_degree\": %u, "
        "\"degree_cv\": %.6g, \"hub_fraction\": %.6g, "
        "\"hub_mass\": %.6g, \"hub_packing\": %.6g, "
        "\"num_components\": %u, \"eff_diameter\": %u, "
        "\"diameter_ratio\": %.6g, \"natural_avg_gap\": %.6g, "
        "\"gap_ratio\": %.6g, \"gap_floor\": %.6g},\n"
        "  \"scores\": {\"locality\": %.6g, \"skew\": %.6g, "
        "\"potential\": %.6g, \"none\": %.6g, \"lightweight\": %.6g, "
        "\"heavyweight\": %.6g}}",
        advisor_choice_name(r.choice), r.scheme.c_str(),
        json_escape(r.rationale).c_str(), r.probe.mean_degree,
        r.probe.max_degree, r.probe.degree_cv, r.probe.hub_fraction,
        r.probe.hub_mass, r.probe.hub_packing, r.probe.num_components,
        r.probe.eff_diameter, r.probe.diameter_ratio,
        r.probe.natural_avg_gap, r.probe.gap_ratio, r.probe.gap_floor,
        r.scores.locality, r.scores.skew, r.scores.potential,
        r.scores.none, r.scores.lightweight, r.scores.heavyweight);
}

void
print_advisor_table(const AdvisorReport& r)
{
    Table t("ordering advisor");
    t.header({"probe / score", "value"});
    t.row({"degree cv", Table::num(r.probe.degree_cv, 3)});
    t.row({"hub mass", Table::num(r.probe.hub_mass, 3)});
    t.row({"hub packing", Table::num(r.probe.hub_packing, 2)});
    t.row({"components", Table::num(std::uint64_t{r.probe.num_components})});
    t.row({"eff diameter", Table::num(std::uint64_t{r.probe.eff_diameter})});
    t.row({"diameter ratio", Table::num(r.probe.diameter_ratio, 2)});
    t.row({"natural avg gap", Table::num(r.probe.natural_avg_gap, 1)});
    t.row({"gap ratio", Table::num(r.probe.gap_ratio, 3)});
    t.row({"gap floor", Table::num(r.probe.gap_floor, 1)});
    t.row({"score: none", Table::num(r.scores.none, 3)});
    t.row({"score: lightweight", Table::num(r.scores.lightweight, 3)});
    t.row({"score: heavyweight", Table::num(r.scores.heavyweight, 3)});
    t.print();
    std::printf("advisor: %s -> %s (%s)\n",
                advisor_choice_name(r.choice), r.scheme.c_str(),
                r.rationale.c_str());
}

/**
 * Run the two paper applications on the reordered graph with their loads
 * replayed into the cache simulator, so a `--metrics` dump carries the
 * full memsim/louvain/imm counter set even for schemes (rcm, degree, ...)
 * that never touch those subsystems while ordering.
 */
void
run_app_telemetry(const Csr& h)
{
    GO_TRACE_SCOPE("cli/app_telemetry");
    obs::PerfDomain hw("cli/app_telemetry");
    {
        GO_TRACE_SCOPE("cli/telemetry/louvain");
        CacheTracer tracer(CacheHierarchyConfig::cascade_lake_scaled(16));
        LouvainOptions lo;
        lo.tracer = &tracer;
        louvain(h, lo);
        tracer.publish_metrics("memsim/louvain");
    }
    {
        GO_TRACE_SCOPE("cli/telemetry/imm");
        CacheTracer tracer(CacheHierarchyConfig::cascade_lake_scaled(16));
        ImmOptions io;
        io.num_seeds = 8;
        io.max_samples = 1ULL << 14;
        io.tracer = &tracer;
        imm(h, io);
        tracer.publish_metrics("memsim/imm");
    }
    obs::sample_rss_peak();
}

/** Parsed command line. */
struct CliOptions
{
    std::string input, output, scheme_name = "rcm";
    std::string format; ///< "", "edges" or "metis"; "" = by extension
    std::string trace_file, metrics_file, report_file;
    std::uint64_t seed = 42;
    double deadline_ms = 0;
    std::uint64_t mem_budget_mb = 0;
    bool fallback = false;
    bool metrics_all = false, stats = false, json = false;
    bool advise = false, list = false;
#ifndef NDEBUG
    bool check = true; ///< Debug builds always validate
#else
    bool check = false;
#endif
};

/** True when @p path names a METIS .graph file (by --format or suffix). */
bool
is_metis_input(const CliOptions& opt)
{
    if (!opt.format.empty())
        return opt.format == "metis";
    const auto dot = opt.input.rfind('.');
    const std::string ext =
        dot == std::string::npos ? "" : opt.input.substr(dot);
    return ext == ".graph" || ext == ".metis";
}

int
run_cli(const CliOptions& opt)
{
    const Csr g = is_metis_input(opt) ? load_metis(opt.input)
                                      : load_edge_list(opt.input);
    if (!opt.report_file.empty()) {
        obs::RunReport& r = obs::exit_run_report();
        r.graph_fingerprint = fingerprint(g);
        r.vertices = g.num_vertices();
        r.edges = g.num_edges();
        std::string params;
        if (opt.deadline_ms > 0)
            params += "deadline_ms=" + std::to_string(opt.deadline_ms);
        if (opt.mem_budget_mb > 0)
            params += (params.empty() ? "" : " ") + std::string("mem_budget_mb=")
                      + std::to_string(opt.mem_budget_mb);
        if (opt.fallback)
            params += (params.empty() ? "" : " ") + std::string("fallback");
        r.params = params;
        obs::sample_rss_peak();
    }
    if (!opt.json) {
        std::printf("loaded %s: %u vertices, %llu edges\n",
                    opt.input.c_str(), g.num_vertices(),
                    static_cast<unsigned long long>(g.num_edges()));
        if (opt.stats)
            std::printf("stats: %s\n",
                        to_string(compute_stats(g)).c_str());
    }
    if (opt.check) {
        Status v = g.validate();
        if (!v.is_ok())
            throw GraphorderError(
                v.with_context("validating " + opt.input));
    }

    const std::uint64_t seed = opt.seed;
    const bool json = opt.json;

    if (opt.advise) {
        const AdvisorReport rep = advise(g);
        if (json) {
            std::printf("{\"input\": \"%s\", \"vertices\": %u, "
                        "\"edges\": %llu, \"threads\": %d, "
                        "\"advisor\": ",
                        json_escape(opt.input).c_str(), g.num_vertices(),
                        static_cast<unsigned long long>(g.num_edges()),
                        default_threads());
            print_advisor_json(stdout, rep);
            std::printf("}\n");
        } else {
            print_advisor_table(rep);
        }
        if (!opt.report_file.empty()) {
            obs::RunReport& r = obs::exit_run_report();
            r.scheme = "advise:" + rep.scheme;
            obs::sample_rss_peak();
        }
        return 0;
    }

    if (opt.metrics_all) {
        struct Row
        {
            std::string name;
            bool deterministic;
            GapMetrics m;
            CompressionStats c;
            double secs;
        };
        std::vector<Row> rows;
        {
            obs::PerfDomain hw("cli/metrics_all");
            for (const auto& s : all_schemes()) {
                Timer timer;
                timer.start();
                const auto pi = s.run(g, seed);
                const double secs = timer.elapsed_s();
                const auto cs = compute_compression_stats(g, pi);
                publish_compression(s.name, cs);
                rows.push_back({s.name, s.deterministic,
                                compute_gap_metrics(g, pi), cs, secs});
                obs::sample_rss_peak();
            }
        }
        if (json) {
            std::printf("{\"input\": \"%s\", \"vertices\": %u, "
                        "\"edges\": %llu, \"seed\": %llu, "
                        "\"threads\": %d, \"schemes\": [",
                        json_escape(opt.input).c_str(), g.num_vertices(),
                        static_cast<unsigned long long>(g.num_edges()),
                        static_cast<unsigned long long>(seed),
                        default_threads());
            for (std::size_t i = 0; i < rows.size(); ++i) {
                std::printf("%s\n  {\"name\": \"%s\", "
                            "\"deterministic\": %s, \"time_s\": %.6g, "
                            "\"gap_metrics\": ",
                            i ? "," : "", rows[i].name.c_str(),
                            rows[i].deterministic ? "true" : "false",
                            rows[i].secs);
                print_gap_json(stdout, rows[i].m);
                std::printf(", \"compression\": ");
                print_compress_json(stdout, rows[i].c);
                std::printf("}");
            }
            std::printf("\n]}\n");
        } else {
            Table t("gap metrics per scheme (lower is better)");
            t.header({"scheme", "avg gap", "bandwidth", "avg bandwidth",
                      "log gap", "bits/edge", "reorder time (s)"});
            for (const auto& r : rows)
                t.row({r.name, Table::num(r.m.avg_gap, 1),
                       Table::num(std::uint64_t{r.m.bandwidth}),
                       Table::num(r.m.avg_bandwidth, 1),
                       Table::num(r.m.log_gap, 2),
                       Table::num(r.c.bits_per_edge, 2),
                       Table::num(r.secs, 3)});
            t.print();
        }
        return 0;
    }

    const bool auto_scheme = opt.scheme_name == "auto";
    GuardedRunOptions gro;
    gro.seed = seed;
    gro.deadline_ms = opt.deadline_ms;
    gro.mem_budget_mb = opt.mem_budget_mb;
    gro.validate = opt.check;
    gro.allow_fallback = opt.fallback;
    AdvisorReport advisor_report;
    auto guarded = [&]() -> Expected<GuardedRunResult> {
        // Hardware profile of the ordering phase itself: publishes
        // hw/cli/reorder/* deltas and, with --trace, a span whose args
        // carry the cycles/misses the ordering cost.
        obs::PerfDomain hw("cli/reorder");
        if (auto_scheme) {
            auto ar = run_auto(g, gro);
            if (!ar)
                return ar.status();
            advisor_report = std::move(ar->report);
            return std::move(ar->run);
        }
        return run_guarded(scheme_by_name(opt.scheme_name), g, gro);
    }();
    obs::sample_rss_peak();
    if (!guarded)
        throw GraphorderError(guarded.status());
    const std::string requested =
        auto_scheme ? advisor_report.scheme : opt.scheme_name;
    if (!opt.report_file.empty()) {
        obs::RunReport& r = obs::exit_run_report();
        r.scheme = guarded->scheme_used;
        if (auto_scheme) {
            // Record the advisor's verdict in the manifest params (its
            // probe values ride along in the metrics snapshot as
            // advisor/* gauges).
            r.params += (r.params.empty() ? "" : " ")
                + std::string("advisor=")
                + advisor_choice_name(advisor_report.choice)
                + ":" + advisor_report.scheme;
        }
    }
    const auto& pi = guarded->perm;
    const double reorder_secs = guarded->elapsed_s;
    if (!json) {
        if (auto_scheme)
            std::printf("advisor: %s -> %s (%s)\n",
                        advisor_choice_name(advisor_report.choice),
                        advisor_report.scheme.c_str(),
                        advisor_report.rationale.c_str());
        if (guarded->fell_back)
            std::printf("warning: %s failed (%s); fell back to %s\n",
                        requested.c_str(),
                        guarded->failures.front().status.to_string()
                            .c_str(),
                        guarded->scheme_used.c_str());
        std::printf("%s reordering computed in %.3f s\n",
                    guarded->scheme_used.c_str(), reorder_secs);
    }
    const auto before = compute_gap_metrics(g);
    const auto after = compute_gap_metrics(g, pi);
    const auto cbefore = compute_compression_stats(g);
    const auto cafter = compute_compression_stats(g, pi);
    publish_compression("natural", cbefore);
    publish_compression(guarded->scheme_used, cafter);

    if (json) {
        std::printf("{\"input\": \"%s\", \"vertices\": %u, "
                    "\"edges\": %llu, \"scheme\": \"%s\", "
                    "\"fell_back\": %s, "
                    "\"deterministic\": %s, \"threads\": %d, "
                    "\"seed\": %llu, \"reorder_time_s\": %.6g,\n"
                    " \"gap_metrics\": {\"natural\": ",
                    json_escape(opt.input).c_str(), g.num_vertices(),
                    static_cast<unsigned long long>(g.num_edges()),
                    guarded->scheme_used.c_str(),
                    guarded->fell_back ? "true" : "false",
                    scheme_by_name(guarded->scheme_used).deterministic
                        ? "true" : "false",
                    default_threads(),
                    static_cast<unsigned long long>(seed), reorder_secs);
        print_gap_json(stdout, before);
        std::printf(", \"reordered\": ");
        print_gap_json(stdout, after);
        std::printf("},\n \"compression\": {\"natural\": ");
        print_compress_json(stdout, cbefore);
        std::printf(", \"reordered\": ");
        print_compress_json(stdout, cafter);
        std::printf("}");
        if (auto_scheme) {
            std::printf(",\n \"advisor\": ");
            print_advisor_json(stdout, advisor_report);
        }
        std::printf("}\n");
    } else {
        Table t("gap metrics");
        t.header({"", "avg gap", "bandwidth", "avg bandwidth", "log gap",
                  "bits/edge"});
        t.row({"natural", Table::num(before.avg_gap, 1),
               Table::num(std::uint64_t{before.bandwidth}),
               Table::num(before.avg_bandwidth, 1),
               Table::num(before.log_gap, 2),
               Table::num(cbefore.bits_per_edge, 2)});
        t.row({guarded->scheme_used, Table::num(after.avg_gap, 1),
               Table::num(std::uint64_t{after.bandwidth}),
               Table::num(after.avg_bandwidth, 1),
               Table::num(after.log_gap, 2),
               Table::num(cafter.bits_per_edge, 2)});
        t.print();
    }

    if (!opt.metrics_file.empty() || !opt.report_file.empty()
        || !opt.output.empty()) {
        const Csr h = apply_permutation(g, pi);
        // A report without memsim counters would have no simulator side
        // for its memsim-vs-hw cross-validation, so --report implies
        // the telemetry pass too.
        if (!opt.metrics_file.empty() || !opt.report_file.empty())
            run_app_telemetry(h);
        if (!opt.output.empty()) {
            std::ofstream out(opt.output);
            if (!out)
                throw GraphorderError(StatusCode::InvalidInput,
                                      "cannot open output: " + opt.output);
            write_edge_list(out, h);
            if (!json)
                std::printf("reordered edge list written to %s\n",
                            opt.output.c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--input" && i + 1 < argc) {
            opt.input = argv[++i];
        } else if (a == "--format" && i + 1 < argc) {
            opt.format = argv[++i];
            if (opt.format != "edges" && opt.format != "metis") {
                usage(argv[0]);
                fatal("--format must be 'edges' or 'metis'");
            }
        } else if (a == "--scheme" && i + 1 < argc) {
            opt.scheme_name = argv[++i];
        } else if (a == "--seed" && i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--output" && i + 1 < argc) {
            opt.output = argv[++i];
        } else if (a == "--deadline-ms" && i + 1 < argc) {
            opt.deadline_ms = std::atof(argv[++i]);
            if (opt.deadline_ms < 0)
                fatal("--deadline-ms must be >= 0");
        } else if (a == "--mem-budget-mb" && i + 1 < argc) {
            opt.mem_budget_mb = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--fallback") {
            opt.fallback = true;
        } else if (a == "--check") {
            opt.check = true;
        } else if (a == "--trace" && i + 1 < argc) {
            opt.trace_file = argv[++i];
        } else if (a == "--metrics" && i + 1 < argc) {
            opt.metrics_file = argv[++i];
        } else if (a == "--report" && i + 1 < argc) {
            opt.report_file = argv[++i];
        } else if (a == "--threads" && i + 1 < argc) {
            const int t = std::atoi(argv[++i]);
            if (t > 0)
                set_default_threads(t);
        } else if (a == "--metrics-all") {
            opt.metrics_all = true;
        } else if (a == "--stats") {
            opt.stats = true;
        } else if (a == "--json") {
            opt.json = true;
        } else if (a == "--advise") {
            opt.advise = true;
        } else if (a == "--list") {
            opt.list = true; // rendered after the loop: --json may follow
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument: " + a);
        }
    }
    if (opt.list) {
        list_schemes(opt.json);
        return 0;
    }
    if (opt.input.empty()) {
        usage(argv[0]);
        fatal("--input is required (or --list)");
    }

    // atexit-based writers cover every exit path, including the
    // exception-mapped exits below.
    if (!opt.trace_file.empty())
        obs::set_exit_trace_file(opt.trace_file);
    if (!opt.metrics_file.empty())
        obs::set_exit_metrics_file(opt.metrics_file);
    if (!opt.report_file.empty()) {
        // Fill what the command line already knows; run_cli adds the
        // workload identity once the graph is loaded.  Registering the
        // skeleton up front means even an error exit leaves a report.
        obs::RunReport& r = obs::exit_run_report();
        r.tool = "reorder";
        r.scheme = opt.metrics_all ? "all" : opt.scheme_name;
        r.seed = opt.seed;
        r.graph = opt.input;
        obs::set_exit_report_file(opt.report_file);
    }

    // Map failures to the documented exit codes (util/status.hpp).
    try {
        return run_cli(opt);
    } catch (const GraphorderError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return exit_code_for(e.code());
    } catch (const std::out_of_range& e) {
        // scheme_by_name / dataset_by_name: a bad name is bad input.
        std::fprintf(stderr, "error: %s\n", e.what());
        return exit_code_for(StatusCode::InvalidInput);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return exit_code_for(StatusCode::Internal);
    }
}
