/**
 * @file
 * `reorderd` — the resilient multi-tenant reorder daemon.
 *
 * Wraps service::ReorderService in a process: clients speak the
 * newline-delimited `graphorder.service.v1` protocol (service/
 * protocol.hpp) over TCP (`--port N`) or over stdin/stdout
 * (`--stdio`, the mode CI and scripting use — no sockets, no races
 * with port allocation).
 *
 * Usage:
 *   reorderd --stdio [options]
 *   reorderd --port N [options]
 *     --workers N          worker threads (default 2)
 *     --queue-capacity N   bounded admission queue (default 64)
 *     --cache-capacity N   permutation cache entries (default 256)
 *     --default-deadline-ms X  deadline for requests that carry none
 *     --mem-budget-mb N    per-attempt memory budget
 *     --max-attempts N     retry budget per job (default 3)
 *     --no-degrade         fail instead of degrading
 *     --gen NAME=DATASET[:SCALE]   pre-register a synthetic graph
 *     --load NAME=PATH     pre-register a graph from file
 *     --prewarm NAME=SCHEME        populate the cache at startup
 *     --metrics FILE       dump the obs metrics registry at exit
 *
 * Exit codes: 0 clean shutdown (EOF / QUIT / SHUTDOWN), 1 usage error,
 * 2 bad --gen/--load/--prewarm argument (taxonomy exit codes apply).
 *
 * Fault injection: GRAPHORDER_FAULTS sweeps the `service.*` and
 * `order.*` sites exactly as in the library; a faulted daemon answers
 * per-request ERR lines and still exits 0 — crash-freedom under the
 * chaos sweep is asserted by CI.
 */
#include <netinet/in.h>
#include <sys/socket.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "service/server.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

using namespace graphorder;

namespace {

void
usage(const char* argv0)
{
    std::printf("usage: %s --stdio | --port N [options]\n"
                "  see the file header of tools/reorderd.cpp\n",
                argv0);
}

/** Split "NAME=REST" or fatal. */
std::pair<std::string, std::string>
split_eq(const std::string& arg, const char* flag)
{
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size())
        fatal(std::string(flag) + " expects NAME=VALUE, got '" + arg
              + "'");
    return {arg.substr(0, eq), arg.substr(eq + 1)};
}

int
serve_tcp(service::ReorderService& svc, int port)
{
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0)
        fatal(std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr)
        < 0)
        fatal("bind 127.0.0.1:" + std::to_string(port) + ": "
              + std::strerror(errno));
    if (::listen(listen_fd, 64) < 0)
        fatal(std::string("listen: ") + std::strerror(errno));
    socklen_t alen = sizeof addr;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                  &alen);
    std::printf("reorderd listening on 127.0.0.1:%d\n",
                ntohs(addr.sin_port));
    std::fflush(stdout);

    // Connections are served one at a time: multi-tenancy is in the
    // service (queue lanes, per-request budgets), not in a connection
    // scheduler.  Each connection still pipelines requests freely.
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            fatal(std::string("accept: ")
                  + std::strerror(errno));
        }
        const auto res = svc.serve_fd(fd, fd);
        ::close(fd);
        if (res == service::ReorderService::ServeResult::kShutdown)
            break;
    }
    ::close(listen_fd);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    // A client vanishing mid-response must be an EPIPE write error we
    // absorb, not a process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);

    bool stdio = false;
    int port = -1;
    service::ServiceOptions opt;
    std::vector<std::pair<std::string, std::string>> gens, loads,
        prewarms;
    std::string metrics_path;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal(a + " expects an argument");
            return argv[++i];
        };
        if (a == "--stdio")
            stdio = true;
        else if (a == "--port")
            port = std::atoi(next().c_str());
        else if (a == "--workers")
            opt.workers = std::atoi(next().c_str());
        else if (a == "--queue-capacity")
            opt.queue_capacity =
                static_cast<std::size_t>(std::atoll(next().c_str()));
        else if (a == "--cache-capacity")
            opt.cache_capacity =
                static_cast<std::size_t>(std::atoll(next().c_str()));
        else if (a == "--default-deadline-ms")
            opt.default_deadline_ms = std::atof(next().c_str());
        else if (a == "--mem-budget-mb")
            opt.mem_budget_mb = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        else if (a == "--max-attempts")
            opt.retry.max_attempts = std::atoi(next().c_str());
        else if (a == "--no-degrade")
            opt.allow_degraded = false;
        else if (a == "--gen")
            gens.push_back(split_eq(next(), "--gen"));
        else if (a == "--load")
            loads.push_back(split_eq(next(), "--load"));
        else if (a == "--prewarm")
            prewarms.push_back(split_eq(next(), "--prewarm"));
        else if (a == "--metrics")
            metrics_path = next();
        else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            fatal("unknown flag '" + a + "' (try --help)");
        }
    }
    if (stdio == (port >= 0)) {
        usage(argv[0]);
        fatal("pick exactly one of --stdio and --port");
    }

    service::ReorderService svc(opt);

    auto check = [](const Status& st) {
        if (st.is_ok())
            return;
        std::fprintf(stderr, "reorderd: %s\n", st.to_string().c_str());
        std::exit(exit_code_for(st.code()));
    };
    for (const auto& [name, spec] : gens) {
        const auto colon = spec.rfind(':');
        const std::string ds =
            colon == std::string::npos ? spec : spec.substr(0, colon);
        const double scale =
            colon == std::string::npos
                ? 1.0
                : std::atof(spec.substr(colon + 1).c_str());
        check(svc.gen_graph(name, ds, scale));
    }
    for (const auto& [name, path] : loads)
        check(svc.load_graph(name, path));
    for (const auto& [name, scheme] : prewarms)
        check(svc.prewarm(name, scheme));

    int rc = 0;
    if (stdio)
        svc.serve_fd(0, 1); // EOF, QUIT and SHUTDOWN all end the run
    else
        rc = serve_tcp(svc, port);
    svc.stop();
    if (!metrics_path.empty())
        obs::write_metrics_file(metrics_path);
    return rc;
}
