/**
 * @file
 * Figure 9: impact of graph ordering on community detection (Grappolo /
 * parallel Louvain) — the paper's heat maps rendered as tables.
 *
 * For each of the 9 large instances and each of the four application
 * orderings (grappolo, rcm, natural, degree) we report the first-phase
 * metrics: phase time, time per iteration, iteration count, final
 * modularity, parallel work efficiency (Work%) and hot-routine loads per
 * edge (Work/edge).
 *
 * Paper findings to compare: grappolo ordering usually beats degree sort
 * on iteration time (2-4x), has the best Work% and lowest work/edge;
 * degree sort often needs the fewest iterations but the slowest ones;
 * modularity spread is small.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "community/louvain.hpp"
#include "graph/permutation.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 9",
                 "community detection: ordering impact on Grappolo", opt);

    const auto& schemes = application_schemes();
    const auto instances = make_large_instances(opt);

    Table t("first-phase metrics per (instance, ordering)");
    t.header({"instance", "ordering", "phase(s)", "iter(s)", "iters",
              "modularity", "work%", "work/edge", "communities"});

    // Per-metric best/worst tracking for the summary lines.
    double max_iter_ratio = 0, max_iters_ratio = 0;

    for (const auto& inst : instances) {
        double best_iter = 1e300, worst_iter = 0;
        double best_iters = 1e300, worst_iters = 0;
        for (const auto& s : schemes) {
            std::fprintf(stderr, "[fig9] %s / %s ...\n",
                         inst.spec->name.c_str(), s.name.c_str());
            const auto pi = s.run(inst.graph, opt.seed);
            const auto h = apply_permutation(inst.graph, pi);
            const auto res = louvain(h);
            const auto& p0 = res.phases.front();
            t.row({inst.spec->name, s.name,
                   Table::num(p0.phase_time_s, 3),
                   Table::num(p0.avg_iteration_time_s(), 4),
                   Table::num(std::uint64_t(p0.iterations)),
                   Table::num(res.modularity, 3),
                   Table::num(100.0 * p0.work_fraction, 0),
                   Table::num(p0.work_per_edge, 2),
                   Table::num(std::uint64_t{res.num_communities})});
            best_iter = std::min(best_iter, p0.avg_iteration_time_s());
            worst_iter = std::max(worst_iter, p0.avg_iteration_time_s());
            best_iters =
                std::min(best_iters, double(std::max(p0.iterations, 1)));
            worst_iters = std::max(worst_iters, double(p0.iterations));
        }
        max_iter_ratio =
            std::max(max_iter_ratio, worst_iter / std::max(best_iter,
                                                           1e-12));
        max_iters_ratio =
            std::max(max_iters_ratio, worst_iters / best_iters);
    }
    t.print();
    std::printf("max per-instance iteration-time spread: %.1fx "
                "(paper: up to ~4x)\n",
                max_iter_ratio);
    std::printf("max per-instance iteration-count spread: %.1fx "
                "(paper: up to ~10x)\n",
                max_iters_ratio);
    return 0;
}
