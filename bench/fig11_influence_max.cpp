/**
 * @file
 * Figure 11: impact of the ordering schemes on Ripples-style influence
 * maximization (IMM, Independent Cascade, p = 0.25): total execution time
 * and sampling throughput per (instance, ordering).
 *
 * To bound single-node runtime at reduced scale, epsilon is relaxed and
 * the RRR-set count capped; throughput (RRR sets/second) is unaffected by
 * the cap, and total time remains comparable *across orderings of the
 * same instance*, which is what the figure shows.
 *
 * Paper findings: total time correlates with sampling throughput; natural
 * order slightly ahead on the smaller inputs, grappolo/rcm edging ahead
 * on the larger ones; overall effect of ordering is marginal.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "graph/permutation.hpp"
#include "influence/imm.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 11",
                 "influence maximization: time and sampling throughput",
                 opt);

    const auto& schemes = application_schemes();
    const auto instances = make_large_instances(opt);

    Table t("IMM (IC, p=0.25, k=10) per (instance, ordering)");
    t.header({"instance", "ordering", "total(s)", "sampling(s)",
              "selection(s)", "throughput(RRR/s)", "RRR sets", "avg|RRR|",
              "spread"});
    for (const auto& inst : instances) {
        for (const auto& s : schemes) {
            std::fprintf(stderr, "[fig11] %s / %s ...\n",
                         inst.spec->name.c_str(), s.name.c_str());
            const auto pi = s.run(inst.graph, opt.seed);
            const auto h = apply_permutation(inst.graph, pi);
            ImmOptions iopt = influence_figure_options(opt);
            iopt.num_seeds = 10;
            iopt.epsilon = 2.0;       // relaxed for single-node runtime
            iopt.max_samples = 1200;  // cap (documented above)
            const auto res = imm(h, iopt);
            const double avg_sz = res.stats.num_rrr_sets
                ? double(res.stats.total_visited)
                    / double(res.stats.num_rrr_sets)
                : 0.0;
            t.row({inst.spec->name, s.name,
                   Table::num(res.stats.total_time_s, 3),
                   Table::num(res.stats.sampling_time_s, 3),
                   Table::num(res.stats.selection_time_s, 4),
                   Table::num(res.stats.sampling_throughput(), 0),
                   Table::num(res.stats.num_rrr_sets),
                   Table::num(avg_sz, 0),
                   Table::num(res.stats.estimated_spread, 0)});
        }
    }
    t.print();
    return 0;
}
