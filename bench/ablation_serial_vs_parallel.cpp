/**
 * @file
 * Ablation: serial vs parallel across the whole reordering pipeline.
 *
 * Two parts:
 *
 *  1. Kernel sweep — every parallelized stage (CSR build, transpose,
 *     permutation application, degree sort, hub sort, BOBA, parallel
 *     BFS, gap metrics, and the heavyweight schemes Gorder / SlashBurn
 *     / RCM / Rabbit) is timed at 1/2/4/8 threads on the largest
 *     generated instance.  Each run's output is hashed and compared to
 *     the 1-thread baseline: the deterministic kernels must be
 *     bit-identical at every thread count, and the table prints that
 *     check next to the speedup.  (On a single-core host the speedups
 *     degenerate to ~1x — oversubscribed teams — but the identity
 *     checks still exercise the real multi-threaded code paths.)
 *
 *  2. Application spread (paper §VI-B closing remark) — instrumented
 *     Louvain at 1 thread and at all hardware threads on the largest
 *     instances, reporting the iteration-time spread between the best
 *     (grappolo) and worst (degree) orderings.  The paper reports
 *     serial spreads of 1.3-2.5x vs parallel spreads up to 4x.
 *
 * Results are also dumped to BENCH_reorder.json in the working
 * directory (machine-readable; schema documented in EXPERIMENTS.md).
 */
#include <omp.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <functional>

#include "bench_common.hpp"
#include "community/louvain.hpp"
#include "graph/builder.hpp"
#include "graph/permutation.hpp"
#include "graph/traversal.hpp"
#include "la/gap_measures.hpp"
#include "order/basic.hpp"
#include "order/boba.hpp"
#include "order/gorder.hpp"
#include "order/hub.hpp"
#include "order/rabbit.hpp"
#include "order/rcm.hpp"
#include "order/slashburn.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

using namespace graphorder;
using namespace graphorder::bench;

namespace {

/** FNV-1a over anything trivially hashable, chained across calls. */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ULL;
    void bytes(const void* p, std::size_t len)
    {
        const auto* b = static_cast<const unsigned char*>(p);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= b[i];
            h *= 1099511628211ULL;
        }
    }
    template <typename T> void vec(const std::vector<T>& v)
    {
        bytes(v.data(), v.size() * sizeof(T));
    }
    void f64(double x)
    {
        const auto u = std::bit_cast<std::uint64_t>(x);
        bytes(&u, sizeof(u));
    }
};

std::uint64_t
hash_csr(const Csr& g)
{
    Fnv f;
    f.vec(g.offsets());
    f.vec(g.adjacency());
    return f.h;
}

std::uint64_t
hash_perm(const Permutation& pi)
{
    Fnv f;
    f.vec(pi.ranks());
    return f.h;
}

struct StageRow
{
    std::string stage;
    int threads;
    double secs;
    std::uint64_t hash;
    bool identical; ///< hash equals the 1-thread hash of this stage
};

/** Time @p fn (best of 2 runs) at the current thread setting. */
template <typename Fn>
std::pair<double, std::uint64_t>
time_stage(Fn&& fn)
{
    double best = 0.0;
    std::uint64_t h = 0;
    for (int rep = 0; rep < 2; ++rep) {
        Timer t;
        t.start();
        h = fn();
        const double s = t.elapsed_s();
        if (rep == 0 || s < best)
            best = s;
    }
    return {best, h};
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Ablation", "serial vs parallel reordering pipeline",
                 opt);

    auto instances = make_large_instances(opt);
    if (instances.empty())
        fatal("no large instances");

    // Part 1 runs on the largest instance (by edge count).
    std::size_t big = 0;
    for (std::size_t i = 1; i < instances.size(); ++i)
        if (instances[i].graph.num_edges()
            > instances[big].graph.num_edges())
            big = i;
    // Copy: Part 2 erases from `instances`, which would invalidate a
    // reference before the JSON dump below reads the graph's sizes.
    const Csr g = instances[big].graph;
    const std::string big_name = instances[big].spec->name;
    std::printf("kernel sweep instance: %s (%u vertices, %llu edges)\n\n",
                big_name.c_str(), g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));

    // Inputs shared by the stages, computed once up front: the raw edge
    // list (for the CSR-build stage) and a degree-sort permutation (for
    // the permute/gap stages; deterministic, so thread-independent).
    std::vector<Edge> edges;
    edges.reserve(g.num_edges());
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        for (vid_t w : g.neighbors(v))
            if (v < w)
                edges.push_back({v, w, 1.0});
    const auto pi_deg = degree_sort_order(g, true);

    struct Stage
    {
        const char* name;
        std::function<std::uint64_t()> run;
    };
    const std::vector<Stage> stages{
        {"csr_build",
         [&] { return hash_csr(build_csr(g.num_vertices(), edges)); }},
        {"transpose", [&] { return hash_csr(transpose_csr(g)); }},
        {"apply_permutation",
         [&] { return hash_csr(apply_permutation(g, pi_deg)); }},
        {"degsort",
         [&] { return hash_perm(degree_sort_order(g, true)); }},
        {"hubsort", [&] { return hash_perm(hub_sort_order(g)); }},
        {"boba", [&] { return hash_perm(boba_order(g)); }},
        {"parallel_bfs",
         [&] {
             const auto r = parallel_bfs(g, 0);
             Fnv f;
             f.vec(r.distance);
             f.vec(r.visit_order);
             return f.h;
         }},
        {"gap_metrics",
         [&] {
             const auto m = compute_gap_metrics(g, pi_deg);
             Fnv f;
             f.f64(m.avg_gap);
             f.f64(m.avg_bandwidth);
             f.f64(m.log_gap);
             f.f64(m.total_gap);
             f.f64(m.envelope);
             f.bytes(&m.bandwidth, sizeof(m.bandwidth));
             return f.h;
         }},
        // The heavyweight tier: full scheme runs, not isolated kernels,
        // so the hashes also cover the serial glue between the parallel
        // phases.  Gorder forces blocks = 4 so the partition-parallel
        // greedy runs even at smoke scale (auto would pick 1 block below
        // 16k vertices and the sweep would only exercise the serial
        // path).
        {"rcm", [&] { return hash_perm(rcm_order(g)); }},
        {"slashburn", [&] { return hash_perm(slashburn_order(g)); }},
        {"rabbit", [&] { return hash_perm(rabbit_order(g)); }},
        {"gorder",
         [&] {
             GorderOptions gopt;
             gopt.blocks = 4;
             return hash_perm(gorder_order(g, gopt));
         }},
    };

    const std::vector<int> sweep{1, 2, 4, 8};
    std::vector<StageRow> rows;
    Table t("pipeline stages: time and bit-identity vs 1 thread");
    t.header({"stage", "threads", "time (s)", "speedup", "identical"});
    for (const auto& st : stages) {
        double base_s = 0.0;
        std::uint64_t base_h = 0;
        for (int th : sweep) {
            set_default_threads(th);
            const auto [secs, hash] = time_stage(st.run);
            if (th == 1) {
                base_s = secs;
                base_h = hash;
            }
            const bool same = hash == base_h;
            rows.push_back({st.name, th, secs, hash, same});
            t.row({st.name, Table::num(std::uint64_t(th)),
                   Table::num(secs, 4),
                   Table::num(base_s / std::max(secs, 1e-9), 2),
                   same ? "yes" : "NO"});
        }
    }
    set_default_threads(opt.threads); // back to the CLI setting
    t.print();

    bool all_identical = true;
    for (const auto& r : rows)
        all_identical = all_identical && r.identical;
    std::printf("bit-identity across 1/2/4/8 threads: %s\n\n",
                all_identical ? "PASS" : "FAIL");

    // Part 2: Louvain iteration-time spread, serial vs all threads, on
    // the 4 largest instances (smaller ones are dominated by overheads).
    if (instances.size() > 4)
        instances.erase(instances.begin(), instances.end() - 4);
    const int hw_threads = omp_get_max_threads();
    std::vector<int> thread_counts{1};
    if (hw_threads > 1)
        thread_counts.push_back(hw_threads);

    struct SpreadRow
    {
        std::string instance;
        int threads;
        double grappolo_s;
        double degree_s;
    };
    std::vector<SpreadRow> spread_rows;
    Table ts("iteration-time spread grappolo vs degree");
    ts.header({"instance", "threads", "grappolo iter(s)",
               "degree iter(s)", "spread"});
    for (const auto& inst : instances) {
        for (int threads : thread_counts) {
            double iter_time[2] = {0, 0};
            int idx = 0;
            for (const char* name : {"grappolo", "degree"}) {
                const auto pi =
                    scheme_by_name(name).run(inst.graph, opt.seed);
                const auto h = apply_permutation(inst.graph, pi);
                LouvainOptions lopt;
                lopt.num_threads = threads;
                lopt.max_phases = 1;
                const auto res = louvain(h, lopt);
                iter_time[idx++] =
                    res.phases.front().avg_iteration_time_s();
            }
            spread_rows.push_back({inst.spec->name, threads,
                                   iter_time[0], iter_time[1]});
            ts.row({inst.spec->name, Table::num(std::uint64_t(threads)),
                    Table::num(iter_time[0], 4),
                    Table::num(iter_time[1], 4),
                    Table::num(iter_time[1]
                                   / std::max(iter_time[0], 1e-9),
                               2)});
        }
    }
    ts.print();
    std::printf("(paper: serial spread 1.3-2.5x, parallel up to ~4x)\n");

    // Machine-readable dump.
    std::ofstream out("BENCH_reorder.json");
    if (!out) {
        std::fprintf(stderr, "cannot write BENCH_reorder.json\n");
        return 1;
    }
    out << "{\n  \"bench\": \"ablation_serial_vs_parallel\",\n"
        << "  \"hw_threads\": " << hw_threads << ",\n"
        << "  \"instance\": {\"name\": \"" << big_name
        << "\", \"vertices\": " << g.num_vertices()
        << ", \"edges\": " << g.num_edges() << "},\n"
        << "  \"all_identical\": " << (all_identical ? "true" : "false")
        << ",\n  \"stages\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        out << (i ? "," : "") << "\n    {\"stage\": \"" << r.stage
            << "\", \"threads\": " << r.threads << ", \"time_s\": "
            << r.secs << ", \"hash\": \"" << std::hex << r.hash
            << std::dec << "\", \"identical_to_1thread\": "
            << (r.identical ? "true" : "false") << "}";
    }
    out << "\n  ],\n  \"louvain_spread\": [";
    for (std::size_t i = 0; i < spread_rows.size(); ++i) {
        const auto& r = spread_rows[i];
        out << (i ? "," : "") << "\n    {\"instance\": \"" << r.instance
            << "\", \"threads\": " << r.threads
            << ", \"grappolo_iter_s\": " << r.grappolo_s
            << ", \"degree_iter_s\": " << r.degree_s << "}";
    }
    out << "\n  ]\n}\n";
    std::printf("wrote BENCH_reorder.json\n");
    return all_identical ? 0 : 1;
}
