/**
 * @file
 * Ablation (paper §VI-B, closing remark): the ordering-scheme divide is
 * more pronounced in parallel than in serial execution.
 *
 * Runs the instrumented Louvain with 1 thread and with all available
 * threads on a subset of large instances and reports, per thread count,
 * the iteration-time spread between the best (grappolo) and worst
 * (degree) orderings.  The paper reports serial spreads of 1.3-2.5x vs
 * parallel spreads up to 4x.  (On a single-core host both columns
 * coincide — the harness still demonstrates the measurement.)
 */
#include <omp.h>

#include <cstdio>

#include "bench_common.hpp"
#include "community/louvain.hpp"
#include "graph/permutation.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Ablation", "serial vs parallel ordering sensitivity",
                 opt);

    auto instances = make_large_instances(opt);
    // The 4 largest instances: iteration times on the small ones are
    // sub-millisecond and dominated by loop overheads.
    if (instances.size() > 4)
        instances.erase(instances.begin(), instances.end() - 4);

    const int hw_threads = omp_get_max_threads();
    std::vector<int> thread_counts{1};
    if (hw_threads > 1)
        thread_counts.push_back(hw_threads);
    Table t("iteration-time spread grappolo vs degree");
    t.header({"instance", "threads", "grappolo iter(s)", "degree iter(s)",
              "spread"});
    for (const auto& inst : instances) {
        for (int threads : thread_counts) {
            double iter_time[2] = {0, 0};
            int idx = 0;
            for (const char* name : {"grappolo", "degree"}) {
                const auto pi =
                    scheme_by_name(name).run(inst.graph, opt.seed);
                const auto h = apply_permutation(inst.graph, pi);
                LouvainOptions lopt;
                lopt.num_threads = threads;
                lopt.max_phases = 1;
                const auto res = louvain(h, lopt);
                iter_time[idx++] =
                    res.phases.front().avg_iteration_time_s();
            }
            t.row({inst.spec->name, Table::num(std::uint64_t(threads)),
                   Table::num(iter_time[0], 4),
                   Table::num(iter_time[1], 4),
                   Table::num(iter_time[1] / std::max(iter_time[0], 1e-9),
                              2)});
        }
    }
    t.print();
    std::printf("(paper: serial spread 1.3-2.5x, parallel up to ~4x)\n");
    return 0;
}
