/**
 * @file
 * Figure 6b: profile of relative performance of the average graph
 * bandwidth (beta_hat).
 *
 * Paper finding: no clear winner — most schemes comparable for most
 * inputs, attributed to the skew of real degree distributions.
 */
#include "bench_common.hpp"
#include "la/gap_measures.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header(
        "Figure 6b",
        "relative performance profile of average bandwidth (beta_hat)",
        opt);
    const auto instances = make_small_instances(opt);
    const auto schemes = qualitative_schemes();
    const auto in = cost_matrix(
        instances, schemes,
        [](const Csr& g, const Permutation& pi) {
            return compute_gap_metrics(g, pi).avg_bandwidth;
        },
        opt.seed);
    print_profile("beta_hat profile over "
                      + std::to_string(instances.size()) + " inputs",
                  build_profile(in));
    // Same memory tie-in as Figure 6a, for the averaged measure.
    print_memsim_scan_table(instances.front(), schemes, "fig6b", opt);
    return bench_exit_code();
}
