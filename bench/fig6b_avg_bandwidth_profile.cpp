/**
 * @file
 * Figure 6b: profile of relative performance of the average graph
 * bandwidth (beta_hat).
 *
 * Paper finding: no clear winner — most schemes comparable for most
 * inputs, attributed to the skew of real degree distributions.
 */
#include "bench_common.hpp"
#include "la/gap_measures.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header(
        "Figure 6b",
        "relative performance profile of average bandwidth (beta_hat)",
        opt);
    const auto in = cost_matrix(
        make_small_instances(), paper_schemes(),
        [](const Csr& g, const Permutation& pi) {
            return compute_gap_metrics(g, pi).avg_bandwidth;
        },
        opt.seed);
    print_profile("beta_hat profile over 25 inputs", build_profile(in));
    return 0;
}
