/**
 * @file
 * Ablation (paper §III-A): MinLA simulated-annealing heuristics exist but
 * are "considered expensive in practice".  This bench quantifies that
 * claim: on three small instances it compares the annealer's average-gap
 * quality and wall time against the practical schemes it competes with.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "la/gap_measures.hpp"
#include "order/basic.hpp"
#include "order/minla_sa.hpp"
#include "util/timer.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Ablation", "MinLA simulated annealing vs practical "
                             "schemes",
                 opt);

    Table t("avg gap (xi_hat) and reorder time");
    t.header({"instance", "scheme", "xi_hat", "time(s)"});
    for (const char* name : {"chicago-road", "delaunay_n11", "pgp"}) {
        const auto g = dataset_by_name(name).make(1.0);
        for (const char* s :
             {"natural", "rcm", "metis-32", "grappolo", "minla-sa"}) {
            Timer timer;
            timer.start();
            const auto pi = scheme_by_name(s).run(g, opt.seed);
            const double secs = timer.elapsed_s();
            t.row({name, s,
                   Table::num(compute_gap_metrics(g, pi).avg_gap, 2),
                   Table::num(secs, 3)});
        }
    }
    t.print();
    std::printf("expected shape: minla-sa quality between rcm and the\n"
                "partition schemes at orders of magnitude more time.\n");
    return 0;
}
