/**
 * @file
 * Figure 1: the paper's headline profile — relative performance of all
 * ordering schemes on the average linear arrangement gap, 25 inputs.
 *
 * Figure 1 presents the same measurement as Figure 5 in the introduction;
 * this binary reproduces it with the headline framing: which fraction of
 * inputs each scheme handles within a factor tau of the best, and the
 * best-vs-worst spread (the paper quotes up to ~40x).
 */
#include <cstdio>

#include "bench_common.hpp"
#include "la/gap_measures.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 1",
                 "headline profile: avg linear arrangement gap", opt);

    const auto instances = make_small_instances(opt);
    const auto in = cost_matrix(
        instances, qualitative_schemes(),
        [](const Csr& g, const Permutation& pi) {
            return compute_gap_metrics(g, pi).avg_gap;
        },
        opt.seed);
    const auto profile = build_profile(in);
    print_profile("Figure 1 profile (rho vs tau)", profile);

    // Best-vs-worst spread per instance (the paper's "up to 40x").
    double worst_spread = 0;
    std::string worst_instance;
    for (std::size_t p = 0; p < in.problems.size(); ++p) {
        double lo = in.costs[0][p], hi = in.costs[0][p];
        for (std::size_t s = 1; s < in.schemes.size(); ++s) {
            lo = std::min(lo, in.costs[s][p]);
            hi = std::max(hi, in.costs[s][p]);
        }
        const double spread = hi / std::max(lo, 1e-12);
        if (spread > worst_spread) {
            worst_spread = spread;
            worst_instance = in.problems[p];
        }
    }
    std::printf("largest best-vs-worst spread: %.1fx on %s "
                "(paper: up to ~40x)\n",
                worst_spread, worst_instance.c_str());
    return bench_exit_code();
}
