/**
 * @file
 * Compression figure (post-paper extension): what each ordering scheme's
 * gap structure is worth in *bytes* when the adjacency is stored
 * delta/reference-encoded (graph/compressed_csr.hpp), and what the
 * compressed layout costs to traverse.
 *
 * Two parts:
 *  1. bits/edge performance profile of every registered scheme over the
 *     small-instance roster — the realized counterpart of the Figure 5
 *     log-gap profile (an ordering with small gaps pays few varint
 *     bytes).
 *  2. On one representative instance, a per-scheme table of the encoded
 *     size breakdown (gap/reference/residual bits per edge, reference
 *     take-up) and the simulated memory cost of the canonical neighbor
 *     scan against both backends — flat CSR versus decode-on-traverse —
 *     published as compress/<scheme>/{flat,comp}/* counters for the
 *     benchdiff baselines.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/graph_view.hpp"
#include "graph/permutation.hpp"
#include "la/gap_measures.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/report.hpp"
#include "util/status.hpp"

using namespace graphorder;
using namespace graphorder::bench;

namespace {

/** Gauge the breakdown under compress/<scheme>/* for --report/benchdiff. */
void
publish_breakdown(const std::string& scheme, const CompressionStats& c)
{
    auto& reg = obs::MetricsRegistry::instance();
    const std::string p = "compress/" + scheme + "/";
    reg.gauge(p + "bits_per_edge").set(c.bits_per_edge);
    reg.gauge(p + "gap_bits_per_edge").set(c.gap_bits_per_edge);
    reg.gauge(p + "ref_bits_per_edge").set(c.ref_bits_per_edge);
    reg.gauge(p + "res_bits_per_edge").set(c.res_bits_per_edge);
    reg.gauge(p + "ref_vertex_fraction").set(c.ref_vertex_fraction);
}

void
print_backend_table(const Instance& inst,
                    const std::vector<OrderingScheme>& schemes,
                    const BenchOptions& opt)
{
    const auto cfg = CacheHierarchyConfig::cascade_lake_scaled(16);
    obs::PerfDomain hw("bench/fig_compress/backends");
    Table t("encoded size & flat-vs-compressed neighbor scan (instance: "
            + inst.spec->name + ")");
    t.header({"scheme", "bits/edge", "gap", "ref", "res", "ref-vtx%",
              "flat cyc", "comp cyc", "comp/flat"});
    for (const auto& s : schemes) {
        try {
            const auto pi = s.run(inst.graph, opt.seed);
            const auto h = apply_permutation(inst.graph, pi);
            const auto c = CompressedCsr::encode(h);
            const auto& b = c.breakdown();
            const double arcs =
                static_cast<double>(std::max<eid_t>(h.num_arcs(), 1));
            CompressionStats cs;
            cs.bits_per_edge = c.bits_per_edge();
            cs.gap_bits_per_edge = 8.0 * double(b.gap_bytes) / arcs;
            cs.ref_bits_per_edge = 8.0 * double(b.reference_bytes) / arcs;
            cs.res_bits_per_edge = 8.0 * double(b.residual_bytes) / arcs;
            cs.encoded_bytes = b.total_bytes();
            cs.ref_vertex_fraction = h.num_vertices()
                ? double(b.ref_vertices) / double(h.num_vertices())
                : 0.0;
            publish_breakdown(s.name, cs);
            const auto mf = trace_neighbor_scan(
                GraphView(h), cfg, "compress/" + s.name + "/flat");
            const auto mc = trace_neighbor_scan(
                GraphView(c), cfg, "compress/" + s.name + "/comp");
            const double rel = mf.total_cycles
                ? double(mc.total_cycles) / double(mf.total_cycles)
                : 0.0;
            t.row({s.name, Table::num(cs.bits_per_edge, 2),
                   Table::num(cs.gap_bits_per_edge, 2),
                   Table::num(cs.ref_bits_per_edge, 2),
                   Table::num(cs.res_bits_per_edge, 2),
                   Table::num(100.0 * cs.ref_vertex_fraction, 0),
                   Table::num(double(mf.total_cycles) / 1e6, 2),
                   Table::num(double(mc.total_cycles) / 1e6, 2),
                   Table::num(rel, 2)});
        } catch (...) {
            const auto st = status_from_current_exception();
            t.row({s.name,
                   std::string("FAILED(") + status_code_name(st.code())
                       + ")",
                   "-", "-", "-", "-", "-", "-", "-"});
        }
        obs::sample_rss_peak();
    }
    t.print();
    std::printf("flat/comp cycles are millions of simulated cycles of the "
                "canonical neighbor scan;\ncomp traces the encoded varint"
                "/mask bytes the decoder actually reads.\n\n");
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Compression figure",
                 "bits/edge and compressed-traversal cost per scheme",
                 opt);

    const auto instances = make_small_instances(opt);
    const auto in = cost_matrix(
        instances, all_schemes(),
        [](const Csr& g, const Permutation& pi) {
            return compute_compression_stats(g, pi).bits_per_edge;
        },
        opt.seed);

    const auto profile = build_profile(in);
    print_profile("bits/edge profile (higher rho = better)", profile);

    Table raw("raw bits/edge values");
    std::vector<std::string> head{"instance"};
    for (const auto& s : in.schemes)
        head.push_back(s);
    raw.header(head);
    for (std::size_t p = 0; p < in.problems.size(); ++p) {
        std::vector<std::string> row{in.problems[p]};
        for (std::size_t s = 0; s < in.schemes.size(); ++s)
            row.push_back(Table::num(in.costs[s][p], 2));
        raw.row(row);
    }
    raw.print();

    print_backend_table(instances.front(), all_schemes(), opt);
    return bench_exit_code();
}
