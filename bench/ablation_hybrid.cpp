/**
 * @file
 * Ablation (paper §VII future work): multiscale / hybrid ordering engines.
 *
 * Sweeps the intra-community sub-scheme of the hybrid engine (natural /
 * degree / rcm / bfs) against the paper's grappolo, grappolo-rcm and rcm
 * baselines on three structure classes, reporting all three gap measures.
 * Also quantifies footnote 1: CDFS (RCM without the per-level degree
 * sort) versus RCM.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "la/gap_measures.hpp"
#include "order/cdfs.hpp"
#include "order/hybrid.hpp"
#include "order/rcm.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Ablation", "hybrid multiscale ordering engine", opt);

    Table t("gap measures per (instance, engine)");
    t.header({"instance", "engine", "xi_hat", "beta", "beta_hat"});
    for (const char* name : {"pgp", "cora-citation", "us-powergrid"}) {
        const auto g = dataset_by_name(name).make(1.0);
        auto add = [&](const std::string& label, const Permutation& pi) {
            const auto m = compute_gap_metrics(g, pi);
            t.row({name, label, Table::num(m.avg_gap, 1),
                   Table::num(std::uint64_t{m.bandwidth}),
                   Table::num(m.avg_bandwidth, 1)});
        };
        add("grappolo", scheme_by_name("grappolo").run(g, opt.seed));
        add("grappolo-rcm",
            scheme_by_name("grappolo-rcm").run(g, opt.seed));
        add("rcm", rcm_order(g));
        add("cdfs", cdfs_order(g));
        for (IntraScheme intra :
             {IntraScheme::Natural, IntraScheme::Degree, IntraScheme::Rcm,
              IntraScheme::Bfs}) {
            HybridOptions hopt;
            hopt.intra = intra;
            add(std::string("hybrid/") + intra_scheme_name(intra),
                hybrid_order(g, hopt));
        }
    }
    t.print();
    std::printf("expected shape: hybrid/rcm matches grappolo-rcm on "
                "xi_hat while\nimproving beta_hat (intra-community RCM "
                "tightens local bandwidth);\ncdfs tracks rcm closely on "
                "meshes, trails it on skewed graphs.\n");
    return 0;
}
