/**
 * @file
 * Figure 4: performance profile of reordering *compute time* for the four
 * representative C/C++ schemes — RCM, Degree Sort, Grappolo, METIS-32 —
 * over the 9 large instances, extended with the lightweight hot/cold
 * schemes (HubSort, DBG) whose near-linear cost is their selling point
 * (Faldu et al.).
 *
 * Paper finding: Degree Sort and RCM are the cheap schemes; Grappolo and
 * METIS are substantially more expensive but comparable to each other.
 * The hub/DBG counting sorts should sit at or below Degree Sort.
 *
 * Two side-tables extend the paper figure now that the heavyweight tier
 * (Gorder, SlashBurn, RCM, Rabbit) runs under the shared --threads knob:
 *
 *  - Thread sweep: reorder wall time at 1/2/4/8 threads on a
 *    representative instance.  The kernels are deterministic, so only
 *    the time moves — never the permutation.  (On a single-core host
 *    the speedups degenerate to ~1x; the table is still the regression
 *    gate input, see below.)
 *  - Amortization: reorder time at 8 threads over the per-iteration
 *    traversal time the new layout saves, with the saving taken from
 *    the cache simulator's neighbor-scan cycles (natural vs reordered)
 *    at an assumed 2 GHz clock.  This is the "after how many PageRank
 *    iterations has the reorder paid for itself" number the paper's
 *    cost/benefit discussion asks for.
 *
 * With --report, the per-scheme `order/<name>/time_s` histograms these
 * runs populate are the benchdiff input gating reorder-time regressions
 * (see bench/baselines/BENCH_fig4.json and obs/benchdiff.cpp).
 */
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/permutation.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 4",
                 "reordering compute-time profile (rcm/degree/grappolo/"
                 "metis-32 + hubsort/dbg)",
                 opt);

    const std::vector<OrderingScheme> schemes = {
        scheme_by_name("rcm"),
        scheme_by_name("degree"),
        scheme_by_name("grappolo"),
        scheme_by_name("metis-32"),
        scheme_by_name("hubsort"),
        scheme_by_name("dbg"),
    };
    const auto instances = make_large_instances(opt);

    ProfileInput in;
    for (const auto& s : schemes)
        in.schemes.push_back(s.name);
    for (const auto& inst : instances)
        in.problems.push_back(inst.spec->name);
    in.costs.resize(schemes.size());

    Table raw("reorder wall time (seconds)");
    {
        std::vector<std::string> head{"instance", "gen|E|"};
        for (const auto& s : schemes)
            head.push_back(s.name);
        raw.header(head);
    }
    for (std::size_t p = 0; p < instances.size(); ++p) {
        const auto& inst = instances[p];
        std::fprintf(stderr, "[fig4] %s ...\n", inst.spec->name.c_str());
        std::vector<std::string> row{
            inst.spec->name, Table::num(std::uint64_t{
                                 inst.graph.num_edges()})};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            Timer t;
            t.start();
            const auto pi = schemes[s].run(inst.graph, opt.seed);
            const double secs = t.elapsed_s();
            std::fprintf(stderr, "[fig4]   %s: %.2fs\n",
                         schemes[s].name.c_str(), secs);
            if (!pi.is_valid())
                std::fprintf(stderr, "invalid permutation from %s\n",
                             schemes[s].name.c_str());
            in.costs[s].push_back(std::max(secs, 1e-6));
            row.push_back(Table::num(secs, 3));
        }
        raw.row(row);
    }
    raw.print();
    print_profile("compute-time profile over 9 large inputs",
                  build_profile(in));

    // ---- Heavyweight thread sweep -----------------------------------
    // Smallest instance by edge count: Gorder's per-block greedy is the
    // super-linear outlier of the tier, and the sweep runs every scheme
    // four times.
    std::size_t rep = 0;
    for (std::size_t i = 1; i < instances.size(); ++i)
        if (instances[i].graph.num_edges()
            < instances[rep].graph.num_edges())
            rep = i;
    const Csr& hg = instances[rep].graph;
    const std::vector<std::string> heavy{"gorder", "slashburn", "rcm",
                                         "rabbit"};
    const std::vector<int> sweep{1, 2, 4, 8};

    Table hs("heavyweight reorder time vs threads (instance: "
             + instances[rep].spec->name + ")");
    hs.header({"scheme", "t=1 (s)", "t=2 (s)", "t=4 (s)", "t=8 (s)",
               "speedup@8"});
    std::vector<double> secs_at8(heavy.size(), 0.0);
    std::vector<Permutation> perm_at8;
    auto& reg = obs::MetricsRegistry::instance();
    for (std::size_t s = 0; s < heavy.size(); ++s) {
        const auto& sch = scheme_by_name(heavy[s]);
        std::vector<std::string> row{heavy[s]};
        double base_s = 0.0;
        Permutation pi;
        for (int th : sweep) {
            set_default_threads(th);
            Timer t;
            t.start();
            pi = sch.run(hg, opt.seed);
            const double secs = t.elapsed_s();
            if (th == 1)
                base_s = secs;
            row.push_back(Table::num(secs, 3));
            reg.gauge("order/fig4/" + heavy[s] + "/time_s_t"
                      + std::to_string(th))
                .set(secs);
            if (th == sweep.back())
                secs_at8[s] = secs;
        }
        perm_at8.push_back(std::move(pi));
        row.push_back(
            Table::num(base_s / std::max(secs_at8[s], 1e-9), 2));
        hs.row(row);
    }
    set_default_threads(opt.threads); // back to the CLI setting
    hs.print();

    // ---- Amortization -----------------------------------------------
    // How many neighbor-scan iterations (the PageRank-shaped kernel of
    // Figures 5/6) must run before the 8-thread reorder cost is repaid
    // by the simulated cycles the new layout saves.
    constexpr double kClockHz = 2e9;
    const auto cfg = CacheHierarchyConfig::cascade_lake_scaled(16);
    const auto base = trace_neighbor_scan(hg, cfg, "memsim/fig4");
    const double base_iter_s =
        static_cast<double>(base.total_cycles) / kClockHz;
    Table am("amortization: 8-thread reorder cost vs per-iteration "
             "scan saving");
    am.header({"scheme", "reorder@8t (s)", "scan (ms/iter)",
               "saved (ms/iter)", "iters to amortize"});
    for (std::size_t s = 0; s < heavy.size(); ++s) {
        const auto h = apply_permutation(hg, perm_at8[s]);
        const auto m = trace_neighbor_scan(h, cfg, "memsim/fig4");
        const double iter_s =
            static_cast<double>(m.total_cycles) / kClockHz;
        const double saved_s = base_iter_s - iter_s;
        std::vector<std::string> row{
            heavy[s], Table::num(secs_at8[s], 3),
            Table::num(iter_s * 1e3, 3), Table::num(saved_s * 1e3, 3)};
        if (saved_s > 0.0) {
            const double iters = secs_at8[s] / saved_s;
            row.push_back(Table::num(iters, 1));
            reg.gauge("order/fig4/" + heavy[s] + "/amortize_iters")
                .set(iters);
        } else {
            row.push_back("never"); // layout no better than natural
        }
        am.row(row);
    }
    am.print();
    std::printf("(scan cycles from the cache simulator at %.1f GHz; "
                "'never' = the scheme did not beat the natural order "
                "on this instance)\n",
                kClockHz / 1e9);
    return bench_exit_code();
}
