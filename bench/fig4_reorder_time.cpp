/**
 * @file
 * Figure 4: performance profile of reordering *compute time* for the four
 * representative C/C++ schemes — RCM, Degree Sort, Grappolo, METIS-32 —
 * over the 9 large instances, extended with the lightweight hot/cold
 * schemes (HubSort, DBG) whose near-linear cost is their selling point
 * (Faldu et al.).
 *
 * Paper finding: Degree Sort and RCM are the cheap schemes; Grappolo and
 * METIS are substantially more expensive but comparable to each other.
 * The hub/DBG counting sorts should sit at or below Degree Sort.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 4",
                 "reordering compute-time profile (rcm/degree/grappolo/"
                 "metis-32 + hubsort/dbg)",
                 opt);

    const std::vector<OrderingScheme> schemes = {
        scheme_by_name("rcm"),
        scheme_by_name("degree"),
        scheme_by_name("grappolo"),
        scheme_by_name("metis-32"),
        scheme_by_name("hubsort"),
        scheme_by_name("dbg"),
    };
    const auto instances = make_large_instances(opt);

    ProfileInput in;
    for (const auto& s : schemes)
        in.schemes.push_back(s.name);
    for (const auto& inst : instances)
        in.problems.push_back(inst.spec->name);
    in.costs.resize(schemes.size());

    Table raw("reorder wall time (seconds)");
    {
        std::vector<std::string> head{"instance", "gen|E|"};
        for (const auto& s : schemes)
            head.push_back(s.name);
        raw.header(head);
    }
    for (std::size_t p = 0; p < instances.size(); ++p) {
        const auto& inst = instances[p];
        std::fprintf(stderr, "[fig4] %s ...\n", inst.spec->name.c_str());
        std::vector<std::string> row{
            inst.spec->name, Table::num(std::uint64_t{
                                 inst.graph.num_edges()})};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            Timer t;
            t.start();
            const auto pi = schemes[s].run(inst.graph, opt.seed);
            const double secs = t.elapsed_s();
            std::fprintf(stderr, "[fig4]   %s: %.2fs\n",
                         schemes[s].name.c_str(), secs);
            if (!pi.is_valid())
                std::fprintf(stderr, "invalid permutation from %s\n",
                             schemes[s].name.c_str());
            in.costs[s].push_back(std::max(secs, 1e-6));
            row.push_back(Table::num(secs, 3));
        }
        raw.row(row);
    }
    raw.print();
    print_profile("compute-time profile over 9 large inputs",
                  build_profile(in));
    return 0;
}
