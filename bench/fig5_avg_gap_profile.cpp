/**
 * @file
 * Figure 5: profile of relative performance of the average gap profile
 * (xi_hat) for all schemes over the 25 small instances.
 *
 * Paper findings to compare against: four tiers — (1) metis-32, grappolo,
 * rabbit; (2) rcm at 1-8x; (3) mixed middle at 5-25x; (4) degree/hub
 * schemes at 10-40x.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "la/gap_measures.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 5",
                 "relative performance profile of avg gap (xi_hat)", opt);

    const auto instances = make_small_instances(opt);
    const auto in = cost_matrix(
        instances, qualitative_schemes(),
        [](const Csr& g, const Permutation& pi) {
            return compute_gap_metrics(g, pi).avg_gap;
        },
        opt.seed);

    const auto profile = build_profile(in);
    print_profile("xi_hat profile over 25 inputs (higher rho = better)",
                  profile);

    // Raw per-instance values, for spot checks against the violin data.
    Table raw("raw avg-gap values");
    std::vector<std::string> head{"instance"};
    for (const auto& s : in.schemes)
        head.push_back(s);
    raw.header(head);
    for (std::size_t p = 0; p < in.problems.size(); ++p) {
        std::vector<std::string> row{in.problems[p]};
        for (std::size_t s = 0; s < in.schemes.size(); ++s)
            row.push_back(Table::num(in.costs[s][p], 1));
        raw.row(row);
    }
    raw.print();
    return bench_exit_code();
}
