/**
 * @file
 * Shared infrastructure for the figure/table reproduction binaries.
 *
 * Every bench accepts:
 *   --scale S        divisor applied to the 9 large instances (default 64;
 *                    1 = paper scale, needs a very large machine)
 *   --seed  N        base RNG seed (default 2020)
 *   --quick          even smaller large-instance scale (256) for smoke runs
 *   --smoke          CI mode: --quick plus the small-instance set trimmed
 *                    to its first kSmokeInstances entries
 *   --trace FILE     record obs spans; Chrome trace JSON written to FILE
 *                    at exit (.jsonl extension = JSON-lines)
 *   --metrics FILE   dump the obs metrics registry to FILE at exit
 *                    (JSON, or CSV with a .csv extension)
 *   --report FILE    write a RunReport manifest (obs/report.hpp) to FILE
 *                    at exit: provenance, hw counters, RSS peak and the
 *                    full metrics snapshot — the benchdiff input
 *   --threads N      OpenMP threads for the parallel kernels (default:
 *                    GRAPHORDER_THREADS env, else the OpenMP runtime
 *                    default).  Deterministic kernels give bit-identical
 *                    results at any N.
 *
 * The 25 small qualitative instances are always generated at full paper
 * scale (they are small).  All output is plain text: a Table per figure
 * plus performance-profile CSV where the paper shows profile plots.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/datasets.hpp"
#include "graph/csr.hpp"
#include "graph/graph_view.hpp"
#include "influence/imm.hpp"
#include "memsim/cache.hpp"
#include "order/scheme.hpp"
#include "util/perf_profile.hpp"
#include "util/table.hpp"

namespace graphorder::bench {

/** Small-instance count kept by --smoke runs. */
inline constexpr std::size_t kSmokeInstances = 6;

/** Parsed common command-line options. */
struct BenchOptions
{
    double large_scale = 64.0;
    std::uint64_t seed = 2020;
    bool quick = false;
    bool smoke = false;       ///< CI smoke run: trim the small-instance set
    std::string trace_file;   ///< empty = tracing off
    std::string metrics_file; ///< empty = no metrics dump
    std::string report_file;  ///< empty = no RunReport manifest
    int threads = 0;          ///< 0 = GRAPHORDER_THREADS / runtime default
};

/** Parse the common flags; unrecognized flags are fatal. */
BenchOptions parse_args(int argc, char** argv);

/** A generated instance with its registry entry. */
struct Instance
{
    const Dataset* spec;
    Csr graph;
};

/** Generate the 25 small instances (paper scale); --smoke trims the set
 *  to the first kSmokeInstances. */
std::vector<Instance> make_small_instances(const BenchOptions& opt);

/**
 * Roster of the qualitative figures (1/5/6): the paper's 13 schemes plus
 * the post-paper lightweight extensions (currently DBG), so the figure
 * tables place Faldu et al.'s scheme in the paper's tiers.  HubSort /
 * HubCluster are already part of the paper roster.
 */
std::vector<OrderingScheme> qualitative_schemes();

/** Generate all 9 large instances at opt.large_scale. */
std::vector<Instance> make_large_instances(const BenchOptions& opt);

/**
 * Print a performance profile the way the paper's figures read: one row
 * per scheme with rho(tau) at a standard tau grid, plus the mean
 * log2(ratio-to-best) ranking column.
 */
void print_profile(const std::string& title, const PerfProfile& profile);

/** Banner for a bench binary. */
void print_header(const std::string& figure, const std::string& what,
                  const BenchOptions& opt);

/** Metric extracted from one (graph, ordering) pair; lower is better. */
using MetricFn =
    std::function<double(const Csr&, const Permutation&)>;

/**
 * Cost recorded for a (scheme, instance) cell whose evaluation failed.
 * Large but finite: performance profiles require finite costs, and this
 * pins a failed scheme to the bottom of every ranking it appears in.
 */
inline constexpr double kFailedCellCost = 1e30;

/**
 * Evaluate every scheme on every instance and collect the cost matrix
 * feeding a performance profile (the computation behind Figures 1, 5,
 * 6a, 6b and 7).
 *
 * Robustness: each cell is evaluated independently; a scheme that
 * throws on one instance prints a `FAILED(<code>)` line, records
 * kFailedCellCost for that cell, and the sweep continues.  Failures
 * feed bench_exit_code() and the `bench/cells_{total,failed}` obs
 * counters.
 */
ProfileInput cost_matrix(const std::vector<Instance>& instances,
                         const std::vector<OrderingScheme>& schemes,
                         const MetricFn& metric, std::uint64_t seed);

/**
 * Exit code for a figure binary: 0 while at least one cell succeeded
 * (a partial figure is still a figure), else the documented exit code
 * (util/status.hpp) of the first failure.  Figure mains return this.
 */
int bench_exit_code();

/**
 * IMM options shared by the influence figures (11/12): Independent
 * Cascade at the paper's p = 0.25, seeded from --seed.  Figure binaries
 * layer their figure-specific knobs (k, epsilon, sample caps, tracer)
 * on top.
 */
ImmOptions influence_figure_options(const BenchOptions& opt);

/**
 * Replay the canonical bandwidth kernel — a sequential CSR neighbor scan
 * with an 8-byte gather per endpoint (`sum += x[nbrs[i]]`) — through the
 * cache simulator and publish the counters under `<publish_prefix>/...`.
 * This is the access stream the gap/bandwidth measures of Figures 5/6
 * proxy, so the returned metrics tie those layout scores to simulated
 * memory behaviour.
 */
MemoryMetrics trace_neighbor_scan(const Csr& g,
                                  const CacheHierarchyConfig& cfg,
                                  const std::string& publish_prefix);

/**
 * Backend-neutral neighbor scan: same gather kernel through GraphView.
 * For a flat view the traced stream equals the Csr overload's; for a
 * compressed view the adjacency-entry loads are replaced by the encoded
 * varint/mask byte loads at their at-rest addresses — the
 * compressed-traversal access stream of bench/fig_compress.cpp.
 */
MemoryMetrics trace_neighbor_scan(const GraphView& g,
                                  const CacheHierarchyConfig& cfg,
                                  const std::string& publish_prefix);

/**
 * Print (and publish, under `memsim/<figure>`) the simulated neighbor-
 * scan memory metrics of every scheme on one representative instance —
 * the memsim side-table of the bandwidth figures.
 */
void print_memsim_scan_table(const Instance& inst,
                             const std::vector<OrderingScheme>& schemes,
                             const std::string& figure,
                             const BenchOptions& opt);

} // namespace graphorder::bench
