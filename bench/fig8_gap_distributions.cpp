/**
 * @file
 * Figure 8: gap distributions ("violin plots") for three contrasting
 * instances — chicago-road, fe_4elt2 and vsp — under every scheme.
 *
 * The violin is rendered textually as quantiles plus a per-decade log
 * histogram; the paper's reading (multi-modality, lognormal tails,
 * partition schemes concentrating mass at small gaps) is visible in the
 * decade counts.  The best-vs-worst factors for xi_hat, beta and
 * beta_hat per instance are printed last (paper quotes e.g. 41x/39x/28x
 * for xi_hat).
 */
#include <cstdio>

#include "bench_common.hpp"
#include "la/gap_measures.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 8", "gap distributions for three instances", opt);

    for (const char* name : {"chicago-road", "fe_4elt2", "vsp"}) {
        const auto& spec = dataset_by_name(name);
        const auto g = spec.make(1.0);

        Table t(std::string("gap distribution: ") + name);
        t.header({"scheme", "p25", "median", "p75", "p90", "p99", "max",
                  "decades [0,1) [1,10) [10,1e2) [1e3..) ..."});
        double best_avg = 1e300, worst_avg = 0;
        double best_bw = 1e300, worst_bw = 0;
        double best_abw = 1e300, worst_abw = 0;
        for (const auto& s : paper_schemes()) {
            const auto pi = s.run(g, opt.seed);
            const auto d = gap_distribution(g, pi);
            const auto m = compute_gap_metrics(g, pi);
            best_avg = std::min(best_avg, m.avg_gap);
            worst_avg = std::max(worst_avg, m.avg_gap);
            best_bw = std::min(best_bw, double(m.bandwidth));
            worst_bw = std::max(worst_bw, double(m.bandwidth));
            best_abw = std::min(best_abw, m.avg_bandwidth);
            worst_abw = std::max(worst_abw, m.avg_bandwidth);
            t.row({s.name, Table::num(d.summary.p25, 0),
                   Table::num(d.summary.median, 0),
                   Table::num(d.summary.p75, 0),
                   Table::num(d.summary.p90, 0),
                   Table::num(d.summary.p99, 0),
                   Table::num(d.summary.max, 0),
                   d.histogram.to_string()});
        }
        t.print();
        std::printf("best-vs-worst factors on %s:  xi_hat %.0fx   beta "
                    "%.0fx   beta_hat %.0fx\n\n",
                    name, worst_avg / std::max(best_avg, 1e-12),
                    worst_bw / std::max(best_bw, 1e-12),
                    worst_abw / std::max(best_abw, 1e-12));
    }
    std::printf("(paper, same order of instances: xi_hat 41x/39x/28x, "
                "beta 4x/22x/2x, beta_hat 93x/17x/4x)\n");
    return 0;
}
