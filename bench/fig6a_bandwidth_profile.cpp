/**
 * @file
 * Figure 6a: profile of relative performance of graph bandwidth (beta).
 *
 * Paper finding: RCM clearly outperforms all other schemes; everything
 * else is roughly 2-22x worse.
 */
#include "bench_common.hpp"
#include "la/gap_measures.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 6a",
                 "relative performance profile of graph bandwidth (beta)",
                 opt);
    const auto in = cost_matrix(
        make_small_instances(), paper_schemes(),
        [](const Csr& g, const Permutation& pi) {
            return static_cast<double>(
                compute_gap_metrics(g, pi).bandwidth);
        },
        opt.seed);
    print_profile("beta profile over 25 inputs", build_profile(in));
    return 0;
}
