/**
 * @file
 * Figure 6a: profile of relative performance of graph bandwidth (beta).
 *
 * Paper finding: RCM clearly outperforms all other schemes; everything
 * else is roughly 2-22x worse.
 */
#include "bench_common.hpp"
#include "la/gap_measures.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 6a",
                 "relative performance profile of graph bandwidth (beta)",
                 opt);
    const auto instances = make_small_instances(opt);
    const auto schemes = qualitative_schemes();
    const auto in = cost_matrix(
        instances, schemes,
        [](const Csr& g, const Permutation& pi) {
            return static_cast<double>(
                compute_gap_metrics(g, pi).bandwidth);
        },
        opt.seed);
    print_profile("beta profile over "
                      + std::to_string(instances.size()) + " inputs",
                  build_profile(in));
    // Memory tie-in: bandwidth is a proxy for the spatial locality of
    // the neighbor scan; replay that scan through the cache simulator on
    // one representative instance (counters land under memsim/fig6a, so
    // a --metrics dump re-baselines the figure's memory side).
    print_memsim_scan_table(instances.front(), schemes, "fig6a", opt);
    return bench_exit_code();
}
