/**
 * @file
 * Advisor ablation: score `advise()`'s per-graph picks against the
 * per-graph oracle — the best measured avg-gap improvement any
 * deterministic scalable scheme achieves — over the fig1/fig5 small
 * instance roster.
 *
 * For each instance, every candidate scheme is run and its relative
 * avg-gap improvement over the natural order is recorded:
 *
 *     improvement(s) = max(0, 1 - avg_gap(s) / avg_gap(natural))
 *
 * The advisor's pick passes when its improvement is within 10% of the
 * oracle best (chosen >= 0.9 * oracle).  `none` picks therefore only
 * pass on graphs whose natural order really is near the best any scheme
 * can do — the acceptance bar of the advisor feature.
 *
 * The candidate pool is restricted to deterministic, large-graph-safe
 * schemes so the oracle itself is reproducible in CI: the Louvain-backed
 * schemes (grappolo, grappolo-rcm, hybrid-rcm) vary across runs, and the
 * qualitative-only tier (gorder, slashburn, nd, mindeg, minla-sa) is
 * excluded on cost, as in the paper's own Figure 4 roster.
 *
 * In `--smoke` mode (the CI gate) the binary exits nonzero when any
 * instance misses the 10% bar; in full mode it reports the hit rate.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "la/gap_measures.hpp"
#include "obs/metrics.hpp"
#include "order/advisor.hpp"

using namespace graphorder;
using namespace graphorder::bench;

namespace {

std::vector<OrderingScheme>
candidate_pool()
{
    std::vector<OrderingScheme> out;
    for (const auto& s : all_schemes())
        if (s.deterministic && s.scalable)
            out.push_back(s);
    return out;
}

double
improvement(double natural_gap, double scheme_gap)
{
    if (natural_gap <= 0.0)
        return 0.0;
    return std::max(0.0, 1.0 - scheme_gap / natural_gap);
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Advisor ablation",
                 "advise() picks vs per-graph oracle avg-gap improvement",
                 opt);

    const auto instances = make_small_instances(opt);
    const auto pool = candidate_pool();

    Table probes("advisor probes (inputs to the decision tree)");
    probes.header({"instance", "deg cv", "hub mass", "diam", "diam ratio",
                   "gap ratio", "floor", "locality", "skew", "potential"});
    Table raw("raw avg-gap improvement per candidate scheme");
    {
        std::vector<std::string> head{"instance"};
        for (const auto& s : pool)
            head.push_back(s.name);
        raw.header(head);
    }
    Table t("advisor picks vs oracle (avg-gap improvement over natural)");
    t.header({"instance", "choice", "pick", "pick impr", "oracle",
              "oracle impr", "within 10%"});
    std::size_t hits = 0;
    for (const auto& inst : instances) {
        const auto rep = advise(inst.graph);
        probes.row({inst.spec->name, Table::num(rep.probe.degree_cv, 2),
                    Table::num(rep.probe.hub_mass, 2),
                    Table::num(std::uint64_t{rep.probe.eff_diameter}),
                    Table::num(rep.probe.diameter_ratio, 2),
                    Table::num(rep.probe.gap_ratio, 3),
                    Table::num(rep.probe.gap_floor, 1),
                    Table::num(rep.scores.locality, 2),
                    Table::num(rep.scores.skew, 2),
                    Table::num(rep.scores.potential, 2)});
        const double natural_gap =
            compute_gap_metrics(inst.graph).avg_gap;

        double pick_impr = 0.0;
        double oracle_impr = 0.0;
        std::string oracle_name = "natural";
        std::vector<std::string> raw_row{inst.spec->name};
        for (const auto& s : pool) {
            const auto pi = s.run(inst.graph, opt.seed);
            const double impr = improvement(
                natural_gap,
                compute_gap_metrics(inst.graph, pi).avg_gap);
            raw_row.push_back(Table::num(impr, 3));
            if (impr > oracle_impr) {
                oracle_impr = impr;
                oracle_name = s.name;
            }
            if (s.name == rep.scheme)
                pick_impr = impr;
        }
        raw.row(raw_row);
        // Noise floor, benchdiff-style: when the oracle itself gains
        // under one percentage point (coordinate-sorted meshes where
        // the natural order is already near-optimal), any pick —
        // including "none" — is within measurement noise of the best.
        constexpr double kNoiseFloor = 0.01;
        const bool ok = pick_impr >= 0.9 * oracle_impr - kNoiseFloor;
        hits += ok ? 1 : 0;
        t.row({inst.spec->name, advisor_choice_name(rep.choice),
               rep.scheme, Table::num(pick_impr, 3), oracle_name,
               Table::num(oracle_impr, 3), ok ? "yes" : "NO"});
    }
    probes.print();
    raw.print();
    t.print();

    const std::size_t n = instances.size();
    std::printf("advisor within 10%% of oracle on %zu/%zu instances\n",
                hits, n);
    auto& reg = obs::MetricsRegistry::instance();
    reg.gauge("advisor/ablation/instances")
        .set(static_cast<double>(n));
    reg.gauge("advisor/ablation/within_10pct")
        .set(static_cast<double>(hits));

    // CI acceptance gate: in smoke mode every instance must be within
    // 10% of its oracle; full runs only report (the 25-instance set
    // includes adversarial id-scrambled variants documented in
    // EXPERIMENTS.md).
    if (opt.smoke && hits < n)
        return 1;
    return bench_exit_code();
}
