/**
 * @file
 * Figure 12: memory performance counters for the Ripples hotspot — the
 * RRR-set (reverse reachability) generation routine — on the skitter
 * instance, under the four application orderings.
 *
 * VTune substitute: the stochastic-BFS loads (frontier, adjacency,
 * visited flags) are replayed into the scaled cache hierarchy.
 *
 * Paper findings: degree sort and grappolo lift the share of loads
 * serviced by L1, yet sit at opposite ends of the throughput spectrum —
 * ordering effects on this BFS-heavy workload are weak and ambiguous.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "graph/permutation.hpp"
#include "influence/imm.hpp"
#include "memsim/cache.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 12",
                 "influence maximization: hotspot memory counters "
                 "(skitter)",
                 opt);

    const auto& spec = dataset_by_name("skitter");
    const auto g = spec.make(opt.large_scale);
    const auto cache_cfg =
        CacheHierarchyConfig::cascade_lake_scaled(opt.large_scale / 4.0);

    Table t("RRR-generation memory metrics");
    t.header({"ordering", "latency(cyc)", "L1%", "L2%", "L3%", "DRAM%",
              "loads(M)"});
    for (const auto& s : application_schemes()) {
        const auto pi = s.run(g, opt.seed);
        const auto h = apply_permutation(g, pi);
        CacheTracer tracer(cache_cfg);
        ImmOptions iopt;
        iopt.edge_probability = 0.25;
        iopt.seed = opt.seed;
        iopt.tracer = &tracer;
        std::vector<std::vector<vid_t>> sets;
        sample_rrr_sets(h, iopt, 400, sets);
        tracer.publish_metrics("memsim/fig12");
        const auto m = tracer.metrics();
        t.row({s.name, Table::num(m.avg_load_latency(), 1),
               Table::num(100.0 * m.bound_fraction(0), 0),
               Table::num(100.0 * m.bound_fraction(1), 0),
               Table::num(100.0 * m.bound_fraction(2), 0),
               Table::num(100.0 * m.bound_fraction(3), 0),
               Table::num(static_cast<double>(m.loads) / 1e6, 1)});
    }
    t.print();
    return 0;
}
