/**
 * @file
 * Figure 12: memory performance counters for the Ripples hotspot — the
 * RRR-set (reverse reachability) generation routine — on the skitter
 * instance, under the four application orderings.
 *
 * VTune substitute: the stochastic-BFS loads (frontier, adjacency,
 * visited flags) are replayed into the scaled cache hierarchy.  A
 * second side-table replays the CELF selection engine's coverage scans
 * (inverted-index entries + covered flags at their real arena/index
 * addresses) — a phase the paper folds into "rest of IMM".
 *
 * Paper findings: degree sort and grappolo lift the share of loads
 * serviced by L1, yet sit at opposite ends of the throughput spectrum —
 * ordering effects on this BFS-heavy workload are weak and ambiguous.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "graph/permutation.hpp"
#include "influence/imm.hpp"
#include "influence/rrr.hpp"
#include "memsim/cache.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 12",
                 "influence maximization: hotspot memory counters "
                 "(skitter)",
                 opt);

    const auto& spec = dataset_by_name("skitter");
    const auto g = spec.make(opt.large_scale);
    const auto cache_cfg =
        CacheHierarchyConfig::cascade_lake_scaled(opt.large_scale / 4.0);

    Table t("RRR-generation memory metrics");
    t.header({"ordering", "latency(cyc)", "L1%", "L2%", "L3%", "DRAM%",
              "loads(M)"});
    Table ts("CELF selection memory metrics (k=10)");
    ts.header({"ordering", "latency(cyc)", "L1%", "L2%", "L3%", "DRAM%",
               "loads(K)"});
    for (const auto& s : application_schemes()) {
        const auto pi = s.run(g, opt.seed);
        const auto h = apply_permutation(g, pi);
        CacheTracer tracer(cache_cfg);
        ImmOptions iopt = influence_figure_options(opt);
        iopt.tracer = &tracer;
        RrrArena arena;
        sample_rrr_sets(h, iopt, 400, arena);
        tracer.publish_metrics("memsim/fig12");
        const auto m = tracer.metrics();
        t.row({s.name, Table::num(m.avg_load_latency(), 1),
               Table::num(100.0 * m.bound_fraction(0), 0),
               Table::num(100.0 * m.bound_fraction(1), 0),
               Table::num(100.0 * m.bound_fraction(2), 0),
               Table::num(100.0 * m.bound_fraction(3), 0),
               Table::num(static_cast<double>(m.loads) / 1e6, 1)});

        // Selection replay on a fresh hierarchy: coverage-index build
        // is untraced (parallel), the CELF scans are.
        CacheTracer sel_tracer(cache_cfg);
        CoverageIndex index;
        index.reset(h.num_vertices());
        index.extend(arena);
        double frac = 0.0;
        SelectionStats st;
        celf_select(arena, index, 10, &frac, &st, &sel_tracer);
        sel_tracer.publish_metrics("memsim/fig12_selection");
        const auto ms = sel_tracer.metrics();
        ts.row({s.name, Table::num(ms.avg_load_latency(), 1),
                Table::num(100.0 * ms.bound_fraction(0), 0),
                Table::num(100.0 * ms.bound_fraction(1), 0),
                Table::num(100.0 * ms.bound_fraction(2), 0),
                Table::num(100.0 * ms.bound_fraction(3), 0),
                Table::num(static_cast<double>(ms.loads) / 1e3, 1)});
    }
    t.print();
    ts.print();
    return 0;
}
