/**
 * @file
 * Figure 7: profile of the average gap (xi_hat) of the METIS-style
 * ordering for different partition counts, 8..256, over the 25 small
 * instances.
 *
 * Paper finding: 32 partitions perform best; this sweep is the paper's
 * justification for metis-32 as the representative configuration.
 */
#include "bench_common.hpp"
#include "la/gap_measures.hpp"
#include "order/partition_order.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 7", "METIS-style ordering partition-count sweep",
                 opt);

    std::vector<OrderingScheme> configs;
    for (vid_t k : {8u, 16u, 32u, 64u, 128u, 256u}) {
        OrderingScheme s;
        s.name = "metis-" + std::to_string(k);
        s.category = SchemeCategory::Partitioning;
        s.run = [k](const Csr& g, std::uint64_t seed) {
            PartitionOptions popt;
            popt.seed = seed;
            return metis_style_order(g, k, popt);
        };
        configs.push_back(std::move(s));
    }
    const auto in = cost_matrix(
        make_small_instances(opt), configs,
        [](const Csr& g, const Permutation& pi) {
            return compute_gap_metrics(g, pi).avg_gap;
        },
        opt.seed);
    const auto profile = build_profile(in);
    print_profile("xi_hat profile by partition count", profile);

    // Scalar ranking: which k wins overall (paper: 32).
    std::size_t best = 0;
    for (std::size_t s = 1; s < configs.size(); ++s)
        if (profile.mean_log2_ratio(s) < profile.mean_log2_ratio(best))
            best = s;
    std::printf("best configuration by mean log2 ratio: %s (paper: "
                "metis-32)\n",
                configs[best].name.c_str());
    return bench_exit_code();
}
