/**
 * @file
 * Table I: summary of the 25 small and 9 large instances.
 *
 * Prints, for every registry instance, the paper's reported |V|/|E|
 * alongside the generated stand-in's |V|, |E|, max degree and degree
 * standard deviation, plus the connectivity indicators (triangles,
 * clustering) the paper's Table I discussion mentions.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "graph/stats.hpp"

using namespace graphorder;
using namespace graphorder::bench;

namespace {

void
print_set(const char* title, const std::vector<Instance>& set,
          bool with_triangles)
{
    Table t(title);
    t.header({"instance", "family", "paper|V|", "paper|E|", "gen|V|",
              "gen|E|", "maxdeg", "deg-sd", "triangles", "clustering",
              "components"});
    for (const auto& inst : set) {
        const auto s = compute_stats(inst.graph, with_triangles);
        t.row({inst.spec->name, family_name(inst.spec->family),
               Table::num(std::uint64_t{inst.spec->paper_vertices}),
               Table::num(std::uint64_t{inst.spec->paper_edges}),
               Table::num(std::uint64_t{s.num_vertices}),
               Table::num(std::uint64_t{s.num_edges}),
               Table::num(std::uint64_t{s.max_degree}),
               Table::num(s.degree_stddev, 2),
               with_triangles ? Table::num(s.triangles) : "-",
               with_triangles ? Table::num(s.avg_clustering, 3) : "-",
               Table::num(std::uint64_t{s.num_components})});
    }
    t.print();
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Table I", "instance summary (paper vs generated)", opt);

    print_set("25 qualitative-analysis instances (paper scale)",
              make_small_instances(opt), true);
    std::printf("\n");
    print_set("9 application instances (scaled down by --scale)",
              make_large_instances(opt), false);
    return 0;
}
