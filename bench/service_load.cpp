/**
 * @file
 * `service_load` — load generator and resilience harness for the
 * reorder service (DESIGN.md §16).
 *
 * Three phases, each a fresh ReorderService instance:
 *
 *   steady    N concurrent clients (socketpair + the real wire
 *             protocol, pipelining depth 4) issue a deterministic
 *             mixed light/heavy schedule.  Reports client-observed
 *             p50/p95/p99 latency and throughput, and the cache hit
 *             rate.  The *deterministic* identities — requests, OK
 *             responses, unique (graph, scheme, seed) keys — are
 *             published as exact-gated counters; timing-dependent
 *             rates are gauges.
 *
 *   overload  1 worker, tiny queue, a pipelined no_cache burst: the
 *             bounded queue must reject (`Overloaded`) rather than
 *             grow, and every admitted job must still complete —
 *             `rejected + completed == burst` is asserted, not just
 *             reported.
 *
 *   chaos     sustained fault injection (`service.*` and `order.*`
 *             sites, the `N+`/`*` spec modes) under 8 concurrent
 *             submitters.  Asserts exactly one response per request
 *             and that the service kept answering (degraded or typed
 *             errors, never silence).
 *
 * Extra flags (before the common bench flags): --clients N,
 * --requests N (per client, steady phase), --service-workers N.
 *
 * Exit: 0 when every phase's invariants held, else 4.
 */
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/faultpoint.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

using namespace graphorder;

namespace {

struct LoadOptions
{
    int clients = 8;
    int requests = 40; ///< per client, steady phase
    int service_workers = 4;
};

std::uint64_t
counter_value(const char* name)
{
    return obs::MetricsRegistry::instance().counter(name).value();
}

/** Deterministic steady-phase schedule: client c's i-th request. */
std::string
steady_request(int c, int i)
{
    // 3 graphs x 4 schemes; the heavy scheme (rcm on the larger
    // instance) appears every 8th slot so light traffic dominates, as
    // in the paper's advisor playbook.
    static const char* kGraphs[] = {"pgp", "euroroad", "openflights"};
    static const char* kSchemes[] = {"degree", "natural", "dbg", "rcm"};
    const int slot = c * 7919 + i; // distinct per-client phase
    const char* graph = kGraphs[slot % 3];
    const char* scheme = kSchemes[(slot / 3) % 4];
    return std::string("ORDER graph=") + graph + " scheme=" + scheme
           + " id=c" + std::to_string(c) + "r" + std::to_string(i);
}

/** One steady-phase client over a socketpair: pipelining depth 4. */
struct ClientResult
{
    int sent = 0;
    int ok = 0;
    int err = 0;
    std::vector<double> latencies_ms; ///< server-reported total_ms
};

ClientResult
run_client(service::ReorderService& svc, int c, int requests)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        std::perror("socketpair");
        return {};
    }
    std::thread server([&svc, fd = fds[1]] {
        svc.serve_fd(fd, fd);
        ::close(fd);
    });

    ClientResult res;
    service::LineReader reader(fds[0]);
    std::string line;
    constexpr int kWindow = 4;
    int inflight = 0, next = 0;
    auto send_one = [&] {
        const std::string req = steady_request(c, next++);
        std::string framed = req + "\n";
        (void)!::write(fds[0], framed.data(), framed.size());
        ++res.sent;
        ++inflight;
    };
    auto recv_one = [&] {
        if (reader.next(line) != service::LineReader::Result::kLine)
            return false;
        --inflight;
        try {
            const auto r = service::parse_response(line);
            if (r.ok) {
                ++res.ok;
                const std::string ms = r.get("total_ms", "0");
                res.latencies_ms.push_back(std::atof(ms.c_str()));
            } else {
                ++res.err;
            }
        } catch (...) {
            ++res.err;
        }
        return true;
    };
    while (next < requests || inflight > 0) {
        while (next < requests && inflight < kWindow)
            send_one();
        if (!recv_one())
            break;
    }
    ::shutdown(fds[0], SHUT_WR); // EOF to the server thread
    server.join();
    ::close(fds[0]);
    return res;
}

int
phase_steady(const LoadOptions& lopt, const bench::BenchOptions& opt)
{
    std::printf("== steady: %d clients x %d requests, %d workers ==\n",
                lopt.clients, lopt.requests, lopt.service_workers);
    service::ServiceOptions sopt;
    sopt.workers = lopt.service_workers;
    sopt.queue_capacity = 256;
    sopt.cache_capacity = 256;
    service::ReorderService svc(sopt);
    for (const char* g : {"pgp", "euroroad", "openflights"}) {
        const Status st = svc.gen_graph(g, g);
        if (!st.is_ok()) {
            std::printf("FAILED to generate %s: %s\n", g,
                        st.to_string().c_str());
            return 1;
        }
    }

    const std::uint64_t misses0 = counter_value("service/cache_misses");
    Timer t;
    std::vector<std::thread> threads;
    std::vector<ClientResult> results(
        static_cast<std::size_t>(lopt.clients));
    for (int c = 0; c < lopt.clients; ++c)
        threads.emplace_back([&, c] {
            results[static_cast<std::size_t>(c)] =
                run_client(svc, c, lopt.requests);
        });
    for (auto& th : threads)
        th.join();
    const double elapsed_s = t.elapsed_s();
    svc.stop();

    ClientResult total;
    std::vector<double> lat;
    for (const auto& r : results) {
        total.sent += r.sent;
        total.ok += r.ok;
        total.err += r.err;
        lat.insert(lat.end(), r.latencies_ms.begin(),
                   r.latencies_ms.end());
    }
    std::sort(lat.begin(), lat.end());
    auto pct = [&](double p) {
        if (lat.empty())
            return 0.0;
        const auto idx = static_cast<std::size_t>(
            p * static_cast<double>(lat.size() - 1));
        return lat[idx];
    };
    const std::uint64_t unique =
        counter_value("service/cache_misses") - misses0;
    // Hits and coalesced rides split nondeterministically, but their
    // sum is exact: everything that was not one of the `unique`
    // leader computations was answered without recomputing.
    const double hit_rate =
        total.sent == 0 ? 0.0
                        : 1.0
                              - static_cast<double>(unique)
                                    / static_cast<double>(total.sent);
    const double rps =
        elapsed_s > 0 ? static_cast<double>(total.sent) / elapsed_s
                      : 0.0;

    std::printf("requests %d  ok %d  err %d  unique %llu\n",
                total.sent, total.ok, total.err,
                static_cast<unsigned long long>(unique));
    std::printf(
        "latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
        "throughput %.0f req/s  hit-rate %.3f\n",
        pct(0.50), pct(0.95), pct(0.99), rps, hit_rate);

    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("service_load/steady_requests")
        .add(static_cast<std::uint64_t>(total.sent));
    reg.counter("service_load/steady_ok")
        .add(static_cast<std::uint64_t>(total.ok));
    reg.counter("service_load/steady_unique_keys").add(unique);
    reg.gauge("service_load/cache_hit_rate").set(hit_rate);
    reg.gauge("service_load/throughput_rps").set(rps);
    reg.gauge("service_load/steady_p95_ms").set(pct(0.95));
    auto& h = reg.histogram("service_load/latency_s");
    for (const double ms : lat)
        h.observe(ms / 1000.0);
    (void)opt;

    if (total.ok != total.sent) {
        std::printf("FAILED: %d of %d steady requests errored\n",
                    total.err, total.sent);
        return 1;
    }
    return 0;
}

int
phase_overload(const LoadOptions& lopt)
{
    // Two deterministic halves.  (a) Admission control: with no
    // workers draining, a burst against a 4-slot queue must admit
    // exactly 4 jobs and reject the other 60 as Overloaded — no
    // timing in the split, so the counters diff exactly against the
    // committed baseline.  (b) Completion: with workers running, every
    // admitted job completes.  A single service with one worker would
    // interleave draining with submission and make the admitted count
    // (and the underlying scheme-run histograms) timing-dependent.
    constexpr int kBurst = 64;
    constexpr int kAdmitted = 8;
    std::printf("== overload: burst %d, 0 workers, queue 4 ==\n",
                kBurst);
    std::atomic<int> ok{0}, overloaded{0}, other{0};
    std::atomic<int> responses{0};
    {
        service::ServiceOptions sopt;
        sopt.workers = 0;
        sopt.queue_capacity = 4;
        service::ReorderService svc(sopt);
        Status st = svc.gen_graph("pgp", "pgp");
        if (!st.is_ok()) {
            std::printf("FAILED: %s\n", st.to_string().c_str());
            return 1;
        }
        // no_cache so neither the cache nor single-flight can absorb
        // the burst: every request passes admission individually.
        for (int i = 0; i < kBurst; ++i) {
            service::Request req;
            req.verb = service::Verb::kOrder;
            req.graph = "pgp";
            req.scheme = "rcm";
            req.no_cache = true;
            req.id = "b" + std::to_string(i);
            svc.submit(req, [&](const service::OrderOutcome& o) {
                if (o.status.is_ok())
                    ++ok;
                else if (o.status.code() == StatusCode::Overloaded)
                    ++overloaded;
                else
                    ++other;
                ++responses;
            });
        }
        // stop() answers the 4 queued-but-unrun jobs as Unavailable;
        // they count as neither completed nor rejected.
        svc.stop();
    }
    std::printf("ok %d  overloaded %d  other %d  (of %d)\n", ok.load(),
                overloaded.load(), other.load(), kBurst);

    std::printf("== overload: %d admitted jobs, 2 workers ==\n",
                kAdmitted);
    std::atomic<int> completed{0};
    {
        service::ServiceOptions sopt;
        sopt.workers = 2;
        sopt.queue_capacity = 64;
        service::ReorderService svc(sopt);
        Status st = svc.gen_graph("pgp", "pgp");
        if (!st.is_ok()) {
            std::printf("FAILED: %s\n", st.to_string().c_str());
            return 1;
        }
        std::atomic<int> answered{0};
        for (int i = 0; i < kAdmitted; ++i) {
            service::Request req;
            req.verb = service::Verb::kOrder;
            req.graph = "pgp";
            req.scheme = "rcm";
            req.no_cache = true;
            req.id = "c" + std::to_string(i);
            svc.submit(req, [&](const service::OrderOutcome& o) {
                if (o.status.is_ok())
                    ++completed;
                ++responses;
                ++answered;
            });
        }
        // stop() sheds queued-but-unrun jobs as Unavailable, so wait
        // for every callback before tearing the service down.
        while (answered.load() < kAdmitted)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        svc.stop();
    }
    std::printf("completed %d (of %d)\n", completed.load(), kAdmitted);

    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("service_load/overload_rejected")
        .add(static_cast<std::uint64_t>(overloaded.load()));
    reg.counter("service_load/overload_completed")
        .add(static_cast<std::uint64_t>(completed.load()));
    reg.counter("service_load/overload_responses")
        .add(static_cast<std::uint64_t>(responses.load()));

    if (responses.load() != kBurst + kAdmitted) {
        std::printf("FAILED: %d responses for %d requests\n",
                    responses.load(), kBurst + kAdmitted);
        return 1;
    }
    if (overloaded.load() != kBurst - 4 || other.load() != 4) {
        std::printf("FAILED: admission split %d/%d, expected %d/4\n",
                    overloaded.load(), other.load(), kBurst - 4);
        return 1;
    }
    if (completed.load() != kAdmitted) {
        std::printf("FAILED: only %d of %d admitted jobs completed\n",
                    completed.load(), kAdmitted);
        return 1;
    }
    (void)lopt;
    return 0;
}

int
phase_chaos(const LoadOptions& lopt)
{
    const std::vector<std::string> kSweeps = {
        "service.worker.exec:3+",
        "service.admit:5+",
        "service.cache.lookup:*",
        "order.scheme:2+",
    };
    constexpr int kPerClient = 10;
    int rc = 0;
    for (const auto& spec : kSweeps) {
        std::printf("== chaos: %s, %d clients x %d ==\n", spec.c_str(),
                    lopt.clients, kPerClient);
        service::ServiceOptions sopt;
        sopt.workers = lopt.service_workers;
        sopt.queue_capacity = 64;
        service::ReorderService svc(sopt);
        Status st = svc.gen_graph("pgp", "pgp");
        if (!st.is_ok()) {
            std::printf("FAILED: %s\n", st.to_string().c_str());
            return 1;
        }
        clear_faults();
        apply_fault_spec(spec);

        std::atomic<int> responses{0}, oks{0}, errs{0};
        std::vector<std::thread> threads;
        for (int c = 0; c < lopt.clients; ++c)
            threads.emplace_back([&, c] {
                for (int i = 0; i < kPerClient; ++i) {
                    service::Request req;
                    req.verb = service::Verb::kOrder;
                    req.graph = "pgp";
                    req.scheme = "degree";
                    req.seed = static_cast<std::uint64_t>(
                        c * kPerClient + i); // distinct keys
                    req.id = "x";
                    const auto o = svc.order(req);
                    ++responses;
                    if (o.status.is_ok())
                        ++oks;
                    else
                        ++errs;
                }
            });
        for (auto& th : threads)
            th.join();
        clear_faults();
        svc.stop();

        const int expect = lopt.clients * kPerClient;
        std::printf("responses %d  ok %d  err %d  queue_depth %zu\n",
                    responses.load(), oks.load(), errs.load(),
                    svc.queue_depth());
        obs::MetricsRegistry::instance()
            .counter("service_load/chaos_responses")
            .add(static_cast<std::uint64_t>(responses.load()));
        obs::MetricsRegistry::instance()
            .counter("service_load/chaos_requests")
            .add(static_cast<std::uint64_t>(expect));
        if (responses.load() != expect || svc.queue_depth() != 0) {
            std::printf("FAILED: lost responses or stuck jobs under "
                        "%s\n",
                        spec.c_str());
            rc = 1;
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char** argv)
{
    std::signal(SIGPIPE, SIG_IGN);

    // Pull out the service_load-specific flags, then hand the rest to
    // the common parser (which fatals on anything it does not know).
    LoadOptions lopt;
    std::vector<char*> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--clients" && i + 1 < argc)
            lopt.clients = std::atoi(argv[++i]);
        else if (a == "--requests" && i + 1 < argc)
            lopt.requests = std::atoi(argv[++i]);
        else if (a == "--service-workers" && i + 1 < argc)
            lopt.service_workers = std::atoi(argv[++i]);
        else
            rest.push_back(argv[i]);
    }
    const auto opt = bench::parse_args(static_cast<int>(rest.size()),
                                       rest.data());
    if (opt.smoke || opt.quick)
        lopt.requests = std::min(lopt.requests, 16);

    bench::print_header("service_load",
                        "reorder service load, overload and chaos",
                        opt);

    int rc = 0;
    rc |= phase_steady(lopt, opt);
    rc |= phase_overload(lopt);
    rc |= phase_chaos(lopt);
    std::printf(rc == 0 ? "service_load: all phases passed\n"
                        : "service_load: FAILURES above\n");
    return rc == 0 ? 0 : exit_code_for(StatusCode::Internal);
}
