/**
 * @file
 * Figure 10: memory metrics of the Grappolo hot loop for the five largest
 * graphs under the four application orderings.
 *
 * VTune substitute: the Louvain first phase is replayed with its hot-loop
 * loads fed to the trace-driven cache simulator (see src/memsim); the
 * hierarchy capacities are scaled with the graph scale so the working-set
 * to cache-size ratios track the paper's full-size runs.
 *
 * Columns mirror the paper: average load latency (cycles) and the share
 * of memory cycles serviced at L1 / L2 / L3 / DRAM.  Paper reading:
 * community-aware orderings tend to lower latency; the correlation with
 * boundedness is loose because auxiliary structures add traffic.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "community/louvain.hpp"
#include "graph/permutation.hpp"
#include "memsim/cache.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Figure 10",
                 "community detection: memory-hierarchy metrics", opt);

    const auto& schemes = application_schemes();
    auto instances = make_large_instances(opt);
    // Five largest by paper edge count = the last five registry entries.
    if (instances.size() > 5)
        instances.erase(instances.begin(),
                        instances.end() - 5);

    const auto cache_cfg =
        CacheHierarchyConfig::cascade_lake_scaled(opt.large_scale / 4.0);
    std::printf("simulated hierarchy: L1 %llu KB, L2 %llu KB, L3 %llu KB, "
                "DRAM %u cycles\n\n",
                (unsigned long long)(cache_cfg.levels[0].size_bytes / 1024),
                (unsigned long long)(cache_cfg.levels[1].size_bytes / 1024),
                (unsigned long long)(cache_cfg.levels[2].size_bytes / 1024),
                cache_cfg.dram_latency_cycles);

    Table t("hot-loop memory metrics (traced first phase, <=4 iterations)");
    t.header({"instance", "ordering", "latency(cyc)", "L1%", "L2%", "L3%",
              "DRAM%", "loads(M)"});
    for (const auto& inst : instances) {
        for (const auto& s : schemes) {
            std::fprintf(stderr, "[fig10] %s / %s ...\n",
                         inst.spec->name.c_str(), s.name.c_str());
            const auto pi = s.run(inst.graph, opt.seed);
            const auto h = apply_permutation(inst.graph, pi);
            CacheTracer tracer(cache_cfg);
            LouvainOptions lopt;
            lopt.tracer = &tracer;
            lopt.num_threads = 1;
            lopt.max_phases = 1;
            lopt.max_iterations = 4; // bound the traced stream
            louvain(h, lopt);
            tracer.publish_metrics("memsim/fig10");
            const auto m = tracer.metrics();
            t.row({inst.spec->name, s.name,
                   Table::num(m.avg_load_latency(), 1),
                   Table::num(100.0 * m.bound_fraction(0), 0),
                   Table::num(100.0 * m.bound_fraction(1), 0),
                   Table::num(100.0 * m.bound_fraction(2), 0),
                   Table::num(100.0 * m.bound_fraction(3), 0),
                   Table::num(static_cast<double>(m.loads) / 1e6, 1)});
        }
    }
    t.print();
    return 0;
}
