/**
 * @file
 * Ablation: the "standard suite of prototypical graph operations" the
 * paper contrasts itself with (§VI: prior ordering studies evaluated
 * PageRank, SSSP and Betweenness Centrality).  This bench applies the
 * paper's methodology to that suite: for each kernel and each application
 * ordering it reports runtime and the simulated memory behaviour of the
 * kernel's hot loop, plus the packing-factor amenability metric of
 * Balaji & Lucia.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "graph/permutation.hpp"
#include "kernels/bc.hpp"
#include "kernels/packing.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/sssp.hpp"
#include "memsim/cache.hpp"

using namespace graphorder;
using namespace graphorder::bench;

int
main(int argc, char** argv)
{
    const auto opt = parse_args(argc, argv);
    print_header("Ablation",
                 "prototypical kernels (pagerank / sssp / bc) under "
                 "reordering",
                 opt);

    // Two contrasting instances: a hub-heavy social graph and a road
    // network (the two poles of reordering amenability).
    const auto cache_cfg =
        CacheHierarchyConfig::cascade_lake_scaled(opt.large_scale / 4.0);
    for (const char* inst : {"youtube", "ca-roadnet"}) {
        const auto g = dataset_by_name(inst).make(opt.large_scale);

        Table t(std::string("kernels on ") + inst);
        t.header({"ordering", "packing", "pr iter(s)", "pr lat(cyc)",
                  "sssp(s)", "sssp lat(cyc)", "bc(s)", "bc lat(cyc)"});
        for (const auto& s : application_schemes()) {
            std::fprintf(stderr, "[kernels] %s / %s ...\n", inst,
                         s.name.c_str());
            const auto pi = s.run(g, opt.seed);
            const auto h = apply_permutation(g, pi);
            const auto pack =
                packing_analysis(g, pi); // layout metric, pre-apply

            // PageRank: timed untraced run + traced run for latency.
            PageRankOptions popt;
            const auto pr = pagerank(h, popt);
            CacheTracer pr_tracer(cache_cfg);
            PageRankOptions popt_traced;
            popt_traced.tracer = &pr_tracer;
            popt_traced.max_iterations = 3;
            pagerank(h, popt_traced);

            // SSSP from vertex 0 (same source in every layout via rank).
            const vid_t src = pi.rank(0);
            const auto ss = sssp_dijkstra(h, src);
            CacheTracer ss_tracer(cache_cfg);
            sssp_dijkstra(h, src, &ss_tracer);

            // Sampled BC.
            BcOptions bopt;
            bopt.num_sources = 16;
            bopt.seed = opt.seed;
            const auto bc = betweenness_centrality(h, bopt);
            CacheTracer bc_tracer(cache_cfg);
            BcOptions bopt_traced = bopt;
            bopt_traced.num_sources = 4;
            bopt_traced.tracer = &bc_tracer;
            betweenness_centrality(h, bopt_traced);

            pr_tracer.publish_metrics("memsim/kernels/pagerank");
            ss_tracer.publish_metrics("memsim/kernels/sssp");
            bc_tracer.publish_metrics("memsim/kernels/bc");
            t.row({s.name, Table::num(pack.packing_factor, 1),
                   Table::num(pr.time_per_iteration_s(), 4),
                   Table::num(pr_tracer.metrics().avg_load_latency(), 1),
                   Table::num(ss.total_time_s, 3),
                   Table::num(ss_tracer.metrics().avg_load_latency(), 1),
                   Table::num(bc.total_time_s, 3),
                   Table::num(bc_tracer.metrics().avg_load_latency(), 1)});
        }
        t.print();
    }
    std::printf("expected shape (Balaji & Lucia via the paper): hub-heavy "
                "graphs (high packing\nfactor under natural order) gain "
                "from degree/hub packing; road networks do not.\n");
    return 0;
}
