/**
 * @file
 * Google-benchmark microbenchmarks of the library's primitives: CSR
 * neighbor streaming under different orderings, gap-metric evaluation,
 * reordering-scheme costs, cache-simulator throughput, Louvain iteration
 * and RRR sampling.  These are the kernel-level counterparts of the
 * figure benches and are handy when tuning the implementation.
 */
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>

#include "community/louvain.hpp"
#include "gen/generators.hpp"
#include "influence/imm.hpp"
#include "la/gap_measures.hpp"
#include "memsim/cache.hpp"
#include "order/scheme.hpp"
#include "util/rng.hpp"

using namespace graphorder;

namespace {

const Csr&
social_graph()
{
    static const Csr g = gen_rmat(1 << 14, 1 << 17, 0.57, 0.19, 0.19, 1);
    return g;
}

const Csr&
mesh_graph()
{
    static const Csr g = gen_mesh(1 << 14, 0, 2);
    return g;
}

void
BM_CsrNeighborScan(benchmark::State& state)
{
    const auto& g = social_graph();
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (vid_t v = 0; v < g.num_vertices(); ++v)
            for (vid_t u : g.neighbors(v))
                acc += u;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_CsrNeighborScan);

void
BM_GapMetrics(benchmark::State& state)
{
    const auto& g = social_graph();
    const auto pi = Permutation::identity(g.num_vertices());
    for (auto _ : state) {
        auto m = compute_gap_metrics(g, pi);
        benchmark::DoNotOptimize(m.avg_gap);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_GapMetrics);

void
BM_Reorder(benchmark::State& state, const char* scheme_name,
           const Csr& g)
{
    const auto& scheme = scheme_by_name(scheme_name);
    for (auto _ : state) {
        auto pi = scheme.run(g, 7);
        benchmark::DoNotOptimize(pi.ranks().data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK_CAPTURE(BM_Reorder, degree_social, "degree", social_graph());
BENCHMARK_CAPTURE(BM_Reorder, rcm_mesh, "rcm", mesh_graph());
BENCHMARK_CAPTURE(BM_Reorder, hubsort_social, "hubsort", social_graph());
BENCHMARK_CAPTURE(BM_Reorder, rabbit_social, "rabbit", social_graph());

void
BM_ApplyPermutation(benchmark::State& state)
{
    const auto& g = social_graph();
    Rng rng(3);
    const auto pi = random_permutation(g.num_vertices(), rng);
    for (auto _ : state) {
        auto h = apply_permutation(g, pi);
        benchmark::DoNotOptimize(h.num_arcs());
    }
}
BENCHMARK(BM_ApplyPermutation);

void
BM_CacheSimulator(benchmark::State& state)
{
    CacheHierarchy cache(CacheHierarchyConfig::cascade_lake());
    Rng rng(5);
    std::vector<std::uint64_t> addrs(1 << 16);
    for (auto& a : addrs)
        a = rng.next_below(1ULL << 28);
    for (auto _ : state) {
        for (auto a : addrs)
            cache.load(a);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_CacheSimulator);

void
BM_CacheTracerSampled(benchmark::State& state)
{
    // Sampled tracing: 1-in-k of the calls reach the simulator and the
    // reported counters are extrapolated back by k.  The counters below
    // record how far the scaled loads/cycles of this run sit from the
    // unsampled reference (the tentpole contract: within a few percent
    // on graph-like traces).
    const unsigned sample = static_cast<unsigned>(state.range(0));
    Rng rng(5);
    std::vector<std::uint64_t> addrs(1 << 16);
    for (auto& a : addrs)
        a = rng.next_bool(0.5) ? rng.next_below(1ULL << 12)
                               : rng.next_below(1ULL << 28);
    const auto cfg = CacheHierarchyConfig::cascade_lake();
    for (auto _ : state) {
        CacheTracer tracer(cfg, sample);
        for (auto a : addrs)
            tracer.load(reinterpret_cast<const void*>(a), 8);
        benchmark::DoNotOptimize(tracer.metrics().loads);
    }
    CacheTracer full(cfg), sampled(cfg, sample);
    for (auto a : addrs) {
        full.load(reinterpret_cast<const void*>(a), 8);
        sampled.load(reinterpret_cast<const void*>(a), 8);
    }
    const auto mf = full.metrics(), ms = sampled.metrics();
    state.counters["loads_rel_err"] =
        std::abs(double(ms.loads) - double(mf.loads)) / double(mf.loads);
    state.counters["cycles_rel_err"] =
        std::abs(double(ms.total_cycles) - double(mf.total_cycles))
        / double(mf.total_cycles);
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_CacheTracerSampled)->Arg(1)->Arg(4)->Arg(16);

void
BM_LouvainFirstPhase(benchmark::State& state)
{
    const auto g = gen_sbm(1 << 13, 1 << 16, 32, 0.85, 9);
    for (auto _ : state) {
        LouvainOptions opt;
        opt.max_phases = 1;
        auto res = louvain(g, opt);
        benchmark::DoNotOptimize(res.modularity);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_LouvainFirstPhase);

void
BM_RrrSampling(benchmark::State& state)
{
    const auto& g = social_graph();
    ImmOptions opt;
    opt.edge_probability = 0.05;
    for (auto _ : state) {
        std::vector<std::vector<vid_t>> sets;
        sample_rrr_sets(g, opt, 256, sets);
        benchmark::DoNotOptimize(sets.size());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RrrSampling);

} // namespace

BENCHMARK_MAIN();
