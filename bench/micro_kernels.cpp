/**
 * @file
 * Google-benchmark microbenchmarks of the library's primitives: CSR
 * neighbor streaming under different orderings, gap-metric evaluation,
 * reordering-scheme costs, cache-simulator throughput, Louvain iteration
 * and RRR sampling.  These are the kernel-level counterparts of the
 * figure benches and are handy when tuning the implementation.
 */
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "community/louvain.hpp"
#include "gen/generators.hpp"
#include "influence/imm.hpp"
#include "influence/rrr.hpp"
#include "la/gap_measures.hpp"
#include "memsim/cache.hpp"
#include "obs/metrics.hpp"
#include "order/scheme.hpp"
#include "util/rng.hpp"

using namespace graphorder;

namespace {

const Csr&
social_graph()
{
    static const Csr g = gen_rmat(1 << 14, 1 << 17, 0.57, 0.19, 0.19, 1);
    return g;
}

const Csr&
mesh_graph()
{
    static const Csr g = gen_mesh(1 << 14, 0, 2);
    return g;
}

void
BM_CsrNeighborScan(benchmark::State& state)
{
    const auto& g = social_graph();
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (vid_t v = 0; v < g.num_vertices(); ++v)
            for (vid_t u : g.neighbors(v))
                acc += u;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_CsrNeighborScan);

void
BM_GapMetrics(benchmark::State& state)
{
    const auto& g = social_graph();
    const auto pi = Permutation::identity(g.num_vertices());
    for (auto _ : state) {
        auto m = compute_gap_metrics(g, pi);
        benchmark::DoNotOptimize(m.avg_gap);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_GapMetrics);

void
BM_Reorder(benchmark::State& state, const char* scheme_name,
           const Csr& g)
{
    const auto& scheme = scheme_by_name(scheme_name);
    for (auto _ : state) {
        auto pi = scheme.run(g, 7);
        benchmark::DoNotOptimize(pi.ranks().data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK_CAPTURE(BM_Reorder, degree_social, "degree", social_graph());
BENCHMARK_CAPTURE(BM_Reorder, rcm_mesh, "rcm", mesh_graph());
BENCHMARK_CAPTURE(BM_Reorder, hubsort_social, "hubsort", social_graph());
BENCHMARK_CAPTURE(BM_Reorder, rabbit_social, "rabbit", social_graph());

void
BM_ApplyPermutation(benchmark::State& state)
{
    const auto& g = social_graph();
    Rng rng(3);
    const auto pi = random_permutation(g.num_vertices(), rng);
    for (auto _ : state) {
        auto h = apply_permutation(g, pi);
        benchmark::DoNotOptimize(h.num_arcs());
    }
}
BENCHMARK(BM_ApplyPermutation);

void
BM_CacheSimulator(benchmark::State& state)
{
    CacheHierarchy cache(CacheHierarchyConfig::cascade_lake());
    Rng rng(5);
    std::vector<std::uint64_t> addrs(1 << 16);
    for (auto& a : addrs)
        a = rng.next_below(1ULL << 28);
    for (auto _ : state) {
        for (auto a : addrs)
            cache.load(a);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_CacheSimulator);

void
BM_CacheTracerSampled(benchmark::State& state)
{
    // Sampled tracing: 1-in-k of the calls reach the simulator and the
    // reported counters are extrapolated back by k.  The counters below
    // record how far the scaled loads/cycles of this run sit from the
    // unsampled reference (the tentpole contract: within a few percent
    // on graph-like traces).
    const unsigned sample = static_cast<unsigned>(state.range(0));
    Rng rng(5);
    std::vector<std::uint64_t> addrs(1 << 16);
    for (auto& a : addrs)
        a = rng.next_bool(0.5) ? rng.next_below(1ULL << 12)
                               : rng.next_below(1ULL << 28);
    const auto cfg = CacheHierarchyConfig::cascade_lake();
    for (auto _ : state) {
        CacheTracer tracer(cfg, sample);
        for (auto a : addrs)
            tracer.load(reinterpret_cast<const void*>(a), 8);
        benchmark::DoNotOptimize(tracer.metrics().loads);
    }
    CacheTracer full(cfg), sampled(cfg, sample);
    for (auto a : addrs) {
        full.load(reinterpret_cast<const void*>(a), 8);
        sampled.load(reinterpret_cast<const void*>(a), 8);
    }
    const auto mf = full.metrics(), ms = sampled.metrics();
    state.counters["loads_rel_err"] =
        std::abs(double(ms.loads) - double(mf.loads)) / double(mf.loads);
    state.counters["cycles_rel_err"] =
        std::abs(double(ms.total_cycles) - double(mf.total_cycles))
        / double(mf.total_cycles);
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_CacheTracerSampled)->Arg(1)->Arg(4)->Arg(16);

void
BM_LouvainFirstPhase(benchmark::State& state)
{
    const auto g = gen_sbm(1 << 13, 1 << 16, 32, 0.85, 9);
    for (auto _ : state) {
        LouvainOptions opt;
        opt.max_phases = 1;
        auto res = louvain(g, opt);
        benchmark::DoNotOptimize(res.modularity);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_LouvainFirstPhase);

void
BM_RrrSampling(benchmark::State& state)
{
    const auto& g = social_graph();
    ImmOptions opt;
    opt.edge_probability = 0.05;
    for (auto _ : state) {
        RrrArena arena;
        sample_rrr_sets(g, opt, 256, arena);
        benchmark::DoNotOptimize(arena.num_sets());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RrrSampling);

// --------------------------------------------------- IMM seed selection
//
// The selection-phase benchmarks behind the PR-4 acceptance gate, on a
// synthetic social instance with n >= 100k and k = 50.  The seed
// implementation paid greedy_max_coverage — a from-scratch nested
// inverted-index rebuild plus an O(k·n) argmax per seed — on *every*
// martingale-round selection.  The engine splits that cost: the
// coverage index extends incrementally (once per round, parallel,
// benchmarked as BM_CoverageIndexExtend) and each selection run is a
// CELF pass over the standing index (BM_SeedSelectionCELF).  Greedy
// vs. CELF is the per-selection-run comparison; both produce
// byte-identical seed sets (selection_test.cpp).

struct SelectionInstance
{
    Csr g;
    RrrArena arena;
    std::vector<std::vector<vid_t>> nested; ///< reference-greedy input
    CoverageIndex index;                    ///< standing CELF index
};

const SelectionInstance&
selection_instance()
{
    static const SelectionInstance inst = [] {
        SelectionInstance s;
        s.g = gen_rmat(1 << 17, 1 << 21, 0.57, 0.19, 0.19, 11);
        ImmOptions opt;
        opt.edge_probability = 0.02;
        sample_rrr_sets(s.g, opt, 1 << 14, s.arena);
        s.nested = s.arena.as_sets();
        s.index.reset(s.g.num_vertices());
        s.index.extend(s.arena);
        return s;
    }();
    return inst;
}

constexpr vid_t kSelectionSeeds = 50;

void
BM_SeedSelectionGreedy(benchmark::State& state)
{
    const auto& inst = selection_instance();
    const vid_t n = inst.g.num_vertices();
    for (auto _ : state) {
        double frac = 0.0;
        auto seeds =
            greedy_max_coverage(n, inst.nested, kSelectionSeeds, &frac);
        benchmark::DoNotOptimize(seeds.data());
    }
    state.counters["rrr_sets"] =
        static_cast<double>(inst.arena.num_sets());
    state.counters["arena_entries"] =
        static_cast<double>(inst.arena.num_entries());
}
BENCHMARK(BM_SeedSelectionGreedy);

void
BM_SeedSelectionCELF(benchmark::State& state)
{
    const auto& inst = selection_instance();
    for (auto _ : state) {
        double frac = 0.0;
        SelectionStats st;
        auto seeds = celf_select(inst.arena, inst.index,
                                 kSelectionSeeds, &frac, &st);
        benchmark::DoNotOptimize(seeds.data());
        state.counters["heap_pops"] =
            static_cast<double>(st.heap_pops);
        state.counters["lazy_reevals"] =
            static_cast<double>(st.lazy_reevals);
    }
    state.counters["rrr_sets"] =
        static_cast<double>(inst.arena.num_sets());
}
BENCHMARK(BM_SeedSelectionCELF);

void
BM_CoverageIndexExtend(benchmark::State& state)
{
    // The once-per-round index cost the seed greedy re-paid inside
    // every selection call; parallel counting scatter over the arena.
    const auto& inst = selection_instance();
    for (auto _ : state) {
        CoverageIndex index;
        index.reset(inst.g.num_vertices());
        index.extend(inst.arena);
        benchmark::DoNotOptimize(index.counts().data());
    }
    state.SetItemsProcessed(
        state.iterations()
        * static_cast<std::int64_t>(inst.arena.num_entries()));
}
BENCHMARK(BM_CoverageIndexExtend);

void
BM_ImmSamplingVsSelection(benchmark::State& state)
{
    // End-to-end IMM with the per-phase split the CI smoke artifact
    // (BENCH_imm.json) records: sampling vs. selection seconds.
    const auto& g = social_graph();
    ImmOptions opt;
    opt.num_seeds = 50;
    opt.edge_probability = 0.05;
    opt.epsilon = 1.0;
    opt.max_samples = 1 << 13;
    double sampling = 0.0, selection = 0.0;
    for (auto _ : state) {
        const auto res = imm(g, opt);
        sampling += res.stats.sampling_time_s;
        selection += res.stats.selection_time_s;
        benchmark::DoNotOptimize(res.seeds.data());
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["sampling_time_s"] = sampling / iters;
    state.counters["selection_time_s"] = selection / iters;
}
BENCHMARK(BM_ImmSamplingVsSelection);

void
BM_CounterHotPath(benchmark::State& state)
{
    // The contrast behind the CachedCounter contract: the cached handle
    // resolves its name once, so a hot loop performs zero mutex-guarded
    // registry lookups; the uncached path pays one per call.  The
    // `registry_lookups` counter makes the difference visible in the
    // bench output (cached reports ~0 per iteration), and Debug builds
    // assert it outright.
    static obs::CachedCounter cached{"bench/counter_hot_path"};
    auto& reg = obs::MetricsRegistry::instance();
    const bool use_cached = state.range(0) != 0;
    cached.add(0); // resolve outside the measured region

    const std::uint64_t lookups_before = reg.lookup_count();
    std::uint64_t iters = 0;
    for (auto _ : state) {
        if (use_cached)
            cached.add();
        else
            reg.counter("bench/counter_hot_path").add();
        ++iters;
    }
    const std::uint64_t lookups =
        reg.lookup_count() - lookups_before;
#ifndef NDEBUG
    if (use_cached && lookups != 0)
        std::abort(); // cached hot path must not touch the registry map
#endif
    state.counters["registry_lookups"] = static_cast<double>(lookups)
                                         / static_cast<double>(iters);
    state.SetItemsProcessed(static_cast<std::int64_t>(iters));
}
BENCHMARK(BM_CounterHotPath)
    ->Arg(0)  // uncached: registry lookup per add
    ->Arg(1); // cached: lock-free fast path

} // namespace

BENCHMARK_MAIN();
