#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "graph/permutation.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

namespace graphorder::bench {

namespace {

// Per-process cell accounting behind bench_exit_code(): a figure binary
// only fails outright when *every* cell it attempted failed.
std::size_t g_cells_total = 0;
std::size_t g_cells_failed = 0;
StatusCode g_first_failure = StatusCode::Ok;

// Every sweep cell bumps these; cached handles keep the per-cell cost at
// one atomic add instead of a registry mutex + map lookup.
obs::CachedCounter c_cells_total{"bench/cells_total"};
obs::CachedCounter c_cells_failed{"bench/cells_failed"};

/** basename(argv[0]) — the tool name a RunReport carries. */
std::string
tool_name(const char* argv0)
{
    const std::string s = argv0 ? argv0 : "bench";
    const auto slash = s.rfind('/');
    return slash == std::string::npos ? s : s.substr(slash + 1);
}

/** Record one failed cell; returns its taxonomy code. */
StatusCode
record_cell_failure(const std::string& scheme, const std::string& graph,
                    const Status& st)
{
    ++g_cells_failed;
    if (g_first_failure == StatusCode::Ok)
        g_first_failure = st.code();
    c_cells_failed.add();
    std::printf("FAILED(%s) %s x %s: %s\n", status_code_name(st.code()),
                scheme.c_str(), graph.c_str(), st.to_string().c_str());
    return st.code();
}

} // namespace

BenchOptions
parse_args(int argc, char** argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--scale" && i + 1 < argc) {
            opt.large_scale = std::atof(argv[++i]);
            if (opt.large_scale < 1.0)
                fatal("--scale must be >= 1");
        } else if (a == "--seed" && i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--quick") {
            opt.quick = true;
            opt.large_scale = 256.0;
        } else if (a == "--smoke") {
            opt.smoke = true;
            opt.quick = true;
            opt.large_scale = 256.0;
        } else if (a == "--trace" && i + 1 < argc) {
            opt.trace_file = argv[++i];
        } else if (a == "--metrics" && i + 1 < argc) {
            opt.metrics_file = argv[++i];
        } else if (a == "--report" && i + 1 < argc) {
            opt.report_file = argv[++i];
        } else if (a == "--threads" && i + 1 < argc) {
            opt.threads = std::atoi(argv[++i]);
            if (opt.threads < 0)
                fatal("--threads must be >= 0");
        } else if (a == "--help" || a == "-h") {
            std::printf("usage: %s [--scale S] [--seed N] [--quick]"
                        " [--smoke] [--trace FILE] [--metrics FILE]"
                        " [--report FILE] [--threads N]\n",
                        argv[0]);
            std::exit(0);
        } else {
            fatal("unknown argument: " + a);
        }
    }
    if (!opt.trace_file.empty())
        obs::set_exit_trace_file(opt.trace_file);
    if (!opt.metrics_file.empty())
        obs::set_exit_metrics_file(opt.metrics_file);
    if (!opt.report_file.empty()) {
        // The skeleton is filled from what parse_args already knows; a
        // figure sweep has no single graph, so workload identity stays
        // empty and "sweep" stands in for the scheme.
        obs::RunReport& r = obs::exit_run_report();
        r.tool = tool_name(argc > 0 ? argv[0] : nullptr);
        r.scheme = "sweep";
        r.seed = opt.seed;
        char scale[32];
        std::snprintf(scale, sizeof scale, "scale=%g", opt.large_scale);
        r.params = std::string(scale)
                   + (opt.smoke ? " smoke" : opt.quick ? " quick" : "");
        obs::set_exit_report_file(opt.report_file);
    }
    if (opt.threads > 0)
        set_default_threads(opt.threads);
    return opt;
}

std::vector<Instance>
make_small_instances(const BenchOptions& opt)
{
    std::vector<Instance> out;
    for (const auto& d : small_datasets()) {
        if (opt.smoke && out.size() >= kSmokeInstances)
            break;
        out.push_back({&d, d.make(1.0)});
    }
    return out;
}

std::vector<OrderingScheme>
qualitative_schemes()
{
    auto v = paper_schemes();
    v.push_back(scheme_by_name("dbg"));
    return v;
}

std::vector<Instance>
make_large_instances(const BenchOptions& opt)
{
    std::vector<Instance> out;
    for (const auto& d : large_datasets())
        out.push_back({&d, d.make(opt.large_scale)});
    return out;
}

void
print_profile(const std::string& title, const PerfProfile& profile)
{
    Table t(title);
    std::vector<double> taus{1.0, 1.5, 2.0, 3.0, 5.0, 8.0,
                             12.0, 20.0, 40.0};
    std::vector<std::string> head{"scheme"};
    for (double tau : taus)
        head.push_back("rho(" + Table::num(tau, 1) + ")");
    head.push_back("mean_log2_ratio");
    t.header(head);
    for (std::size_t s = 0; s < profile.curves.size(); ++s) {
        std::vector<std::string> row{profile.curves[s].scheme};
        for (double tau : taus)
            row.push_back(Table::num(profile.fraction_within(s, tau), 2));
        row.push_back(Table::num(profile.mean_log2_ratio(s), 2));
        t.row(row);
    }
    t.print();
    std::printf("max ratio-to-best across table: %.1fx\n\n",
                profile.max_ratio());
}

void
print_header(const std::string& figure, const std::string& what,
             const BenchOptions& opt)
{
    std::printf("==========================================================\n");
    std::printf("%s — %s\n", figure.c_str(), what.c_str());
    std::printf("large-instance scale divisor: %.0f  seed: %llu"
                "  threads: %d (of %d hw)\n",
                opt.large_scale,
                static_cast<unsigned long long>(opt.seed),
                default_threads(), hardware_threads());
    std::printf("==========================================================\n\n");
}

ImmOptions
influence_figure_options(const BenchOptions& opt)
{
    ImmOptions io;
    io.edge_probability = 0.25; // the paper's IC activation probability
    io.seed = opt.seed;
    return io;
}

MemoryMetrics
trace_neighbor_scan(const Csr& g, const CacheHierarchyConfig& cfg,
                    const std::string& publish_prefix)
{
    CacheTracer tracer(cfg);
    std::vector<double> x(g.num_vertices(), 1.0);
    double acc = 0.0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        const auto nbrs = g.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            tracer.load(&nbrs[i], sizeof(vid_t));
            tracer.load(&x[nbrs[i]], sizeof(double));
            acc += x[nbrs[i]];
        }
    }
    (void)acc;
    tracer.publish_metrics(publish_prefix);
    return tracer.metrics();
}

MemoryMetrics
trace_neighbor_scan(const GraphView& g, const CacheHierarchyConfig& cfg,
                    const std::string& publish_prefix)
{
    CacheTracer tracer(cfg);
    GraphView::Scratch scratch;
    const bool trace_entries = !g.compressed();
    std::vector<double> x(g.num_vertices(), 1.0);
    double acc = 0.0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        const auto nbrs = g.neighbors(v, scratch, &tracer);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            if (trace_entries)
                tracer.load(&nbrs[i], sizeof(vid_t));
            tracer.load(&x[nbrs[i]], sizeof(double));
            acc += x[nbrs[i]];
        }
    }
    (void)acc;
    tracer.publish_metrics(publish_prefix);
    return tracer.metrics();
}

void
print_memsim_scan_table(const Instance& inst,
                        const std::vector<OrderingScheme>& schemes,
                        const std::string& figure,
                        const BenchOptions& opt)
{
    const auto cfg = CacheHierarchyConfig::cascade_lake_scaled(16);
    obs::PerfDomain hw("bench/" + figure + "/memsim_scan");
    Table t("simulated neighbor-scan memory (instance: "
            + inst.spec->name + ")");
    t.header({"scheme", "latency(cyc)", "L1%", "DRAM%", "loads(M)"});
    const std::size_t dram = cfg.levels.size();
    for (const auto& s : schemes) {
        ++g_cells_total;
        c_cells_total.add();
        try {
            const auto pi = s.run(inst.graph, opt.seed);
            const auto h = apply_permutation(inst.graph, pi);
            const auto m =
                trace_neighbor_scan(h, cfg, "memsim/" + figure);
            t.row({s.name, Table::num(m.avg_load_latency(), 1),
                   Table::num(100.0 * m.bound_fraction(0), 0),
                   Table::num(100.0 * m.bound_fraction(dram), 0),
                   Table::num(static_cast<double>(m.loads) / 1e6, 2)});
        } catch (...) {
            const auto code = record_cell_failure(
                s.name, inst.spec->name, status_from_current_exception());
            t.row({s.name, std::string("FAILED(") + status_code_name(code)
                               + ")",
                   "-", "-", "-"});
        }
        obs::sample_rss_peak();
    }
    t.print();
}

ProfileInput
cost_matrix(const std::vector<Instance>& instances,
            const std::vector<OrderingScheme>& schemes,
            const MetricFn& metric, std::uint64_t seed)
{
    ProfileInput in;
    for (const auto& s : schemes)
        in.schemes.push_back(s.name);
    for (const auto& inst : instances)
        in.problems.push_back(inst.spec->name);
    in.costs.resize(schemes.size());
    obs::PerfDomain hw("bench/cost_matrix");
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        for (const auto& inst : instances) {
            ++g_cells_total;
            c_cells_total.add();
            try {
                const auto pi = schemes[s].run(inst.graph, seed);
                in.costs[s].push_back(metric(inst.graph, pi));
            } catch (...) {
                record_cell_failure(schemes[s].name, inst.spec->name,
                                    status_from_current_exception());
                in.costs[s].push_back(kFailedCellCost);
            }
        }
        obs::sample_rss_peak();
    }
    return in;
}

int
bench_exit_code()
{
    if (g_cells_total == 0 || g_cells_failed < g_cells_total)
        return 0;
    return exit_code_for(g_first_failure);
}

} // namespace graphorder::bench
