/**
 * @file
 * Tests for the observability layer: span tracer (nesting, export
 * formats, disabled-path cost), metrics registry (counters, gauges,
 * histogram percentiles, JSON round-trip) and its wiring into the
 * ordering registry, Louvain and the cache simulator.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "community/louvain.hpp"
#include "gen/generators.hpp"
#include "memsim/cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "order/scheme.hpp"
#include "testutil.hpp"
#include "util/timer.hpp"

// Count every global allocation so the disabled-tracer test can assert
// that a disarmed TraceScope allocates nothing.
static std::atomic<std::size_t> g_alloc_count{0};

void*
operator new(std::size_t size)
{
    ++g_alloc_count;
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    ++g_alloc_count;
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace graphorder {
namespace {

/** Every test starts from a quiet tracer; the registry is additive so
 *  tests only assert on metric *deltas* or their own metric names. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::Tracer::instance().set_enabled(false);
        obs::Tracer::instance().clear();
    }
    void TearDown() override
    {
        obs::Tracer::instance().set_enabled(false);
        obs::Tracer::instance().clear();
    }
};

const obs::TraceEvent*
find_event(const std::vector<obs::TraceEvent>& events,
           const std::string& name)
{
    for (const auto& e : events)
        if (e.name == name)
            return &e;
    return nullptr;
}

/** Extract the numeric value following `"key": ` in a JSON string. */
double
json_value(const std::string& json, const std::string& key)
{
    const auto pos = json.find("\"" + key + "\": ");
    EXPECT_NE(pos, std::string::npos) << "missing key " << key;
    if (pos == std::string::npos)
        return -1;
    return std::strtod(json.c_str() + pos + key.size() + 4, nullptr);
}

TEST_F(ObsTest, SpanNestingAndOrdering)
{
    obs::Tracer::instance().set_enabled(true);
    {
        GO_TRACE_SCOPE("outer");
        {
            GO_TRACE_SCOPE("inner");
            Timer t;
            t.start();
            while (t.elapsed_s() < 1e-4) {
            }
        }
    }
    {
        GO_TRACE_SCOPE("sibling");
    }
    const auto events = obs::Tracer::instance().snapshot();
    ASSERT_EQ(events.size(), 3u);

    const auto* outer = find_event(events, "outer");
    const auto* inner = find_event(events, "inner");
    const auto* sibling = find_event(events, "sibling");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(sibling, nullptr);

    EXPECT_EQ(outer->depth, 0u);
    EXPECT_EQ(inner->depth, 1u);
    EXPECT_EQ(sibling->depth, 0u);
    // inner is contained in outer, sibling starts after outer ends.
    EXPECT_GE(inner->start_us, outer->start_us);
    EXPECT_LE(inner->start_us + inner->dur_us,
              outer->start_us + outer->dur_us);
    EXPECT_GE(sibling->start_us, outer->start_us + outer->dur_us);
    // snapshot is sorted by start time.
    EXPECT_EQ(events.front().name, "outer");
}

TEST_F(ObsTest, DisabledScopeIsFreeNoAllocationNoEvents)
{
    ASSERT_FALSE(obs::trace_enabled());
    const std::size_t events_before = obs::Tracer::instance().event_count();

    // Warm up (first GO_TRACE_SCOPE in this thread must not lazily touch
    // anything either, but keep the measured loop clean of cold effects).
    for (int i = 0; i < 100; ++i)
        GO_TRACE_SCOPE("warmup");

    constexpr int kIters = 200000;
    const std::size_t allocs_before = g_alloc_count.load();
    Timer t;
    t.start();
    for (int i = 0; i < kIters; ++i)
        GO_TRACE_SCOPE("disabled/should-be-free");
    const double secs = t.elapsed_s();
    const std::size_t allocs_after = g_alloc_count.load();

    EXPECT_EQ(allocs_after, allocs_before)
        << "a disabled TraceScope must not allocate";
    EXPECT_EQ(obs::Tracer::instance().event_count(), events_before);
    // Benchmark-style bound: generous (sanitizer builds), but far below
    // what any clock-reading or locking implementation could reach.
    EXPECT_LT(secs / kIters, 1e-6);
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormed)
{
    obs::Tracer::instance().set_enabled(true);
    {
        GO_TRACE_SCOPE("a");
        GO_TRACE_SCOPE("b");
    }
    std::ostringstream os;
    obs::Tracer::instance().write_chrome_trace(os);
    const std::string s = os.str();
    EXPECT_EQ(s.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(s.find("\"name\":\"a\""), std::string::npos);
    EXPECT_NE(s.find("\"name\":\"b\""), std::string::npos);
    // Balanced braces/brackets (no trailing comma issues show up here).
    long braces = 0, brackets = 0;
    for (char c : s) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST_F(ObsTest, JsonlExportOneObjectPerSpan)
{
    obs::Tracer::instance().set_enabled(true);
    {
        GO_TRACE_SCOPE("x");
    }
    {
        GO_TRACE_SCOPE("y");
    }
    std::ostringstream os;
    obs::Tracer::instance().write_jsonl(os);
    const std::string s = os.str();
    int lines = 0;
    for (char c : s)
        lines += c == '\n';
    EXPECT_EQ(lines, 2);
    EXPECT_NE(s.find("\"name\":\"x\""), std::string::npos);
    EXPECT_NE(s.find("\"dur_us\":"), std::string::npos);
}

TEST_F(ObsTest, HistogramPercentilesAgainstKnownDistribution)
{
    // 100 unit buckets over (0, 100]; observe 0.5, 1.5, ..., 999.5 % 100
    // i.e. each bucket gets exactly 10 samples at its midpoint.
    std::vector<double> bounds;
    for (int i = 1; i <= 100; ++i)
        bounds.push_back(i);
    obs::Histogram h(bounds);
    for (int i = 0; i < 1000; ++i)
        h.observe(static_cast<double>(i % 100) + 0.5);

    EXPECT_EQ(h.count(), 1000u);
    EXPECT_NEAR(h.sum(), 1000 * 50.0, 1e-6);
    // Interpolation error is bounded by one bucket width (1.0).
    EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.95), 95.0, 1.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
    EXPECT_NEAR(h.percentile(0.0), 0.0, 1.0);
    EXPECT_NEAR(h.percentile(1.0), 100.0, 1.0);
}

TEST_F(ObsTest, HistogramOverflowBucketClampsToLastBound)
{
    obs::Histogram h({1.0, 2.0});
    h.observe(1000.0);
    h.observe(2000.0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 2.0);
    const auto counts = h.bucket_counts();
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[2], 2u);
}

TEST_F(ObsTest, MetricsJsonRoundTrip)
{
    auto& reg = obs::MetricsRegistry::instance();
    auto& c = reg.counter("obs_test/answer");
    c.reset();
    c.add(42);
    reg.gauge("obs_test/ratio").set(0.625);
    auto& h = reg.histogram("obs_test/latency", {1.0, 10.0, 100.0});
    h.reset();
    for (int i = 0; i < 100; ++i)
        h.observe(5.0);

    std::ostringstream os;
    reg.write_json(os);
    const std::string json = os.str();

    EXPECT_EQ(json_value(json, "obs_test/answer"), 42.0);
    EXPECT_DOUBLE_EQ(json_value(json, "obs_test/ratio"), 0.625);
    const auto hpos = json.find("\"obs_test/latency\"");
    ASSERT_NE(hpos, std::string::npos);
    const std::string hjson = json.substr(hpos);
    EXPECT_EQ(json_value(hjson, "count"), 100.0);
    EXPECT_DOUBLE_EQ(json_value(hjson, "sum"), 500.0);
    // All mass in bucket (1, 10] -> p50 interpolates inside it.
    const double p50 = json_value(hjson, "p50");
    EXPECT_GT(p50, 1.0);
    EXPECT_LE(p50, 10.0);

    std::ostringstream cs;
    reg.write_csv(cs);
    EXPECT_NE(cs.str().find("counter,obs_test/answer,42"),
              std::string::npos);
}

TEST_F(ObsTest, RegistryRejectsKindMismatch)
{
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("obs_test/kind");
    EXPECT_THROW(reg.gauge("obs_test/kind"), std::logic_error);
    EXPECT_THROW(reg.histogram("obs_test/kind"), std::logic_error);
}

TEST_F(ObsTest, SchemeRunsEmitNestedLouvainSpans)
{
    // The acceptance scenario: a grappolo run must produce an
    // order/grappolo span with louvain run/phase spans nested inside.
    const Csr g = gen_sbm(400, 2000, 8, 0.8, 7);
    obs::Tracer::instance().set_enabled(true);
    const auto& scheme = scheme_by_name("grappolo");
    const auto pi = scheme.run(g, 1);
    obs::Tracer::instance().set_enabled(false);
    EXPECT_EQ(pi.size(), g.num_vertices());

    const auto events = obs::Tracer::instance().snapshot();
    const auto* order = find_event(events, "order/grappolo");
    const auto* run = find_event(events, "louvain/run");
    const auto* phase0 = find_event(events, "louvain/phase/0");
    const auto* iter = find_event(events, "louvain/iteration");
    ASSERT_NE(order, nullptr);
    ASSERT_NE(run, nullptr);
    ASSERT_NE(phase0, nullptr);
    ASSERT_NE(iter, nullptr);

    EXPECT_GT(run->depth, order->depth);
    EXPECT_GT(phase0->depth, run->depth);
    EXPECT_GT(iter->depth, phase0->depth);
    EXPECT_GE(run->start_us, order->start_us);
    EXPECT_LE(run->start_us + run->dur_us,
              order->start_us + order->dur_us);
    EXPECT_GE(phase0->start_us, run->start_us);
    EXPECT_LE(phase0->start_us + phase0->dur_us,
              run->start_us + run->dur_us);
}

TEST_F(ObsTest, LouvainPopulatesRegistryMetrics)
{
    auto& reg = obs::MetricsRegistry::instance();
    const std::uint64_t iters_before =
        reg.counter("louvain/iterations").value();
    const std::uint64_t phases_before =
        reg.counter("louvain/phases").value();

    const Csr g = testing::two_cliques(8);
    const auto res = louvain(g);

    EXPECT_GT(reg.counter("louvain/iterations").value(), iters_before);
    EXPECT_GT(reg.counter("louvain/phases").value(), phases_before);
    EXPECT_DOUBLE_EQ(reg.gauge("louvain/modularity").value(),
                     res.modularity);
}

TEST_F(ObsTest, CachePublishesDeltaMetrics)
{
    auto& reg = obs::MetricsRegistry::instance();
    const std::uint64_t loads_before =
        reg.counter("obs_test_memsim/loads").value();

    CacheHierarchy cache(CacheHierarchyConfig::tiny_test());
    // 8 distinct lines thrash the 4-line direct-mapped L1 -> evictions
    // (and L2 hits from pass 2 on); the repeated load at the end is a
    // guaranteed L1 hit.
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t line = 0; line < 8; ++line)
            cache.load(line * 64, 8);
    cache.load(0, 8);
    cache.load(0, 8);
    cache.publish_metrics("obs_test_memsim");

    const std::uint64_t loads_after =
        reg.counter("obs_test_memsim/loads").value();
    EXPECT_EQ(loads_after - loads_before, 34u);
    EXPECT_GT(reg.counter("obs_test_memsim/evictions").value(), 0u);
    EXPECT_GT(reg.counter("obs_test_memsim/hits/L1").value(), 0u);
    EXPECT_GT(reg.gauge("obs_test_memsim/avg_load_latency").value(), 0.0);

    // Publishing again without new loads must not double-count.
    cache.publish_metrics("obs_test_memsim");
    EXPECT_EQ(reg.counter("obs_test_memsim/loads").value(), loads_after);
}

} // namespace
} // namespace graphorder
