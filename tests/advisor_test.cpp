/**
 * @file
 * Tests of the structural ordering advisor: probe determinism across
 * thread counts, the family recommendations on archetypal synthetic
 * graphs, and the `--scheme auto` path end to end through run_guarded.
 */
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "obs/metrics.hpp"
#include "order/advisor.hpp"
#include "testutil.hpp"
#include "util/parallel.hpp"

namespace graphorder {
namespace {

using testing::grid_graph;

constexpr int kSweep[] = {1, 2, 8};

/** RAII thread-override guard so a failing test can't leak a setting. */
struct ThreadGuard
{
    explicit ThreadGuard(int n) { set_default_threads(n); }
    ~ThreadGuard() { set_default_threads(0); }
};

bool
same_probe(const AdvisorProbe& a, const AdvisorProbe& b)
{
    // Exact equality on purpose: the determinism contract is
    // bit-identical probes for any thread count, not merely close ones.
    return a.num_vertices == b.num_vertices && a.num_edges == b.num_edges
        && a.mean_degree == b.mean_degree && a.max_degree == b.max_degree
        && a.degree_cv == b.degree_cv && a.hub_fraction == b.hub_fraction
        && a.hub_mass == b.hub_mass && a.hub_packing == b.hub_packing
        && a.num_components == b.num_components
        && a.eff_diameter == b.eff_diameter
        && a.diameter_ratio == b.diameter_ratio
        && a.natural_avg_gap == b.natural_avg_gap
        && a.gap_ratio == b.gap_ratio && a.gap_floor == b.gap_floor;
}

TEST(Advisor, ProbeBitIdenticalAcrossThreads)
{
    const auto g = gen_social(3000, 15000, 11);
    ThreadGuard g1(1);
    const auto base = advise(g);
    for (int t : kSweep) {
        ThreadGuard gt(t);
        const auto r = advise(g);
        EXPECT_TRUE(same_probe(base.probe, r.probe)) << "threads=" << t;
        EXPECT_EQ(r.scores.locality, base.scores.locality)
            << "threads=" << t;
        EXPECT_EQ(r.scores.skew, base.scores.skew) << "threads=" << t;
        EXPECT_EQ(r.scores.potential, base.scores.potential)
            << "threads=" << t;
        EXPECT_EQ(r.choice, base.choice) << "threads=" << t;
        EXPECT_EQ(r.scheme, base.scheme) << "threads=" << t;
    }
}

TEST(Advisor, EmptyGraphRecommendsNatural)
{
    GraphBuilder b(0);
    const auto r = advise(b.finalize());
    EXPECT_EQ(r.choice, AdvisorChoice::None);
    EXPECT_EQ(r.scheme, "natural");
    EXPECT_DOUBLE_EQ(r.scores.none, 1.0);
}

TEST(Advisor, EdgelessGraphRecommendsNatural)
{
    GraphBuilder b(64);
    const auto r = advise(b.finalize());
    EXPECT_EQ(r.choice, AdvisorChoice::None);
    EXPECT_EQ(r.scheme, "natural");
}

TEST(Advisor, ExpanderRecommendsNone)
{
    // A dense uniform-random graph is an expander: diameter 2, no
    // degree skew, so no linear arrangement beats random by much.  The
    // achievability floor sits near the natural gap and the advisor
    // must not recommend paying for a reorder.
    const auto g = gen_erdos_renyi(400, 16000, 5);
    const auto r = advise(g);
    EXPECT_EQ(r.choice, AdvisorChoice::None);
    EXPECT_EQ(r.scheme, "natural");
    EXPECT_LT(r.scores.potential, 0.5);
}

TEST(Advisor, SkewScoreSeparatesPowerLawFromMesh)
{
    // The skew probe must rank a hub-dominated graph far above a
    // bounded-degree mesh — the signal that gates the lightweight
    // family.
    const auto hubs = gen_hub_forest(4000, 12000, 5, 3);
    const auto mesh = gen_mesh(4000, 0, 3);
    const auto rh = advise(hubs);
    const auto rm = advise(mesh);
    EXPECT_GT(rh.scores.skew, 2.0 * rm.scores.skew);
    EXPECT_GT(rh.probe.degree_cv, rm.probe.degree_cv);
    EXPECT_GT(rh.probe.hub_mass - rh.probe.hub_fraction,
              rm.probe.hub_mass - rm.probe.hub_fraction);
    // A mesh has no hub mass to segregate: lightweight must never win.
    EXPECT_NE(rm.choice, AdvisorChoice::Lightweight);
}

TEST(Advisor, FanForestWithNaturalLocalityGoesLightweight)
{
    // 40 disconnected fan blocks of 100 consecutive ids with the hub at
    // the block head: strong skew (hub degree 99 vs. leaf degree 1) and
    // preserved locality (no edge spans more than 99 ids) over a low
    // achievability floor — the Faldu et al. zone where hot/cold
    // segregation wins and a rebuild would only destroy the layout.
    GraphBuilder b(4000);
    for (vid_t blk = 0; blk < 40; ++blk)
        for (vid_t v = 1; v < 100; ++v)
            b.add_edge(blk * 100, blk * 100 + v);
    const auto g = b.finalize();
    const auto r = advise(g);
    EXPECT_EQ(r.choice, AdvisorChoice::Lightweight);
    EXPECT_EQ(r.scheme, "dbg");
    EXPECT_GT(r.scores.lightweight, r.scores.heavyweight);
}

TEST(Advisor, LongDiameterMeshGoesHeavyweight)
{
    // A road-like skeleton has huge diameter, a low floor and no skew:
    // the payoff is real but only a heavyweight rebuild captures it.
    const auto g = gen_road(3000, 4000, 7);
    const auto r = advise(g);
    EXPECT_EQ(r.choice, AdvisorChoice::Heavyweight);
    EXPECT_EQ(r.scheme, "metis-32");
    EXPECT_GT(r.probe.diameter_ratio, 1.0);
}

TEST(Advisor, AutoRunEndToEnd)
{
    const auto g = gen_road(1500, 2000, 9);
    const auto res = run_auto(g);
    ASSERT_TRUE(res.has_value()) << res.status().message();
    EXPECT_TRUE(res->run.perm.is_valid());
    EXPECT_EQ(res->run.perm.size(), g.num_vertices());
    // No faults injected: the guarded run must execute the advisor's
    // pick, not a fallback.
    EXPECT_EQ(res->run.scheme_used, res->report.scheme);
    EXPECT_FALSE(res->run.fell_back);
}

TEST(Advisor, AutoRunPropagatesGuardedFailure)
{
    // An impossible deadline with fallback disabled: the guarded run's
    // BudgetExceeded must surface through run_auto's Expected.
    const auto g = gen_road(1500, 2000, 9);
    GuardedRunOptions opt;
    opt.deadline_ms = 1e-9;
    opt.allow_fallback = false;
    const auto res = run_auto(g, opt);
    ASSERT_FALSE(res.has_value());
    EXPECT_EQ(res.status().code(), StatusCode::BudgetExceeded);
}

TEST(Advisor, PublishesProbeGaugesAndRunCounter)
{
    auto& reg = obs::MetricsRegistry::instance();
    const auto before = reg.counter("advisor/runs").value();
    const auto r = advise(grid_graph(20, 20));
    EXPECT_EQ(reg.counter("advisor/runs").value(), before + 1);
    EXPECT_DOUBLE_EQ(reg.gauge("advisor/eff_diameter").value(),
                     static_cast<double>(r.probe.eff_diameter));
    EXPECT_DOUBLE_EQ(reg.gauge("advisor/gap_ratio").value(),
                     r.probe.gap_ratio);
    EXPECT_DOUBLE_EQ(reg.gauge("advisor/potential").value(),
                     r.scores.potential);
    EXPECT_DOUBLE_EQ(reg.gauge("advisor/choice").value(),
                     static_cast<double>(static_cast<int>(r.choice)));
}

TEST(Advisor, ChoiceNames)
{
    EXPECT_STREQ(advisor_choice_name(AdvisorChoice::None), "none");
    EXPECT_STREQ(advisor_choice_name(AdvisorChoice::Lightweight),
                 "lightweight");
    EXPECT_STREQ(advisor_choice_name(AdvisorChoice::Heavyweight),
                 "heavyweight");
}

} // namespace
} // namespace graphorder
