/**
 * @file
 * PR 6 observability surface: the JSON reader, graph fingerprints,
 * hardware-counter degradation, RunReport emission, and the benchdiff
 * comparison engine.  The perf-counter tests exercise the *fallback*
 * contract via the `obs.perf.open` fault site — they must pass both on
 * machines with working PMUs and in containers that deny
 * perf_event_open.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/permutation.hpp"
#include "obs/benchdiff.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "testutil.hpp"
#include "util/faultpoint.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace graphorder {
namespace {

using obs::DiffOptions;
using obs::DiffResult;
using obs::DiffRule;
using obs::DiffVerdict;
using obs::diff_metrics;
using obs::flatten_metrics;
using obs::glob_match;
using testing::figure2_graph;
using testing::figure2_permutation;
using testing::path_graph;

/** Restores a clean fault + perf state on scope exit. */
struct PerfFaultGuard
{
    ~PerfFaultGuard()
    {
        clear_faults();
        obs::PerfCounters::instance().reopen_for_test();
    }
};

} // namespace

// ------------------------------------------------------------ JSON parser

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parse_json("null").is_null());
    EXPECT_EQ(parse_json("true").as_bool(), true);
    EXPECT_EQ(parse_json("false").as_bool(), false);
    EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(parse_json("-1.5e3").as_number(), -1500.0);
    EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure)
{
    const JsonValue v = parse_json(
        R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}})");
    ASSERT_TRUE(v.is_object());
    const auto& a = v.find("a")->as_array();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
    EXPECT_TRUE(a[2].find("b")->as_bool());
    EXPECT_EQ(v.find_path("c/d")->as_string(), "x");
    EXPECT_EQ(v.find_path("c/missing"), nullptr);
    EXPECT_EQ(v.find("zzz"), nullptr);
}

TEST(Json, DecodesEscapes)
{
    const JsonValue v = parse_json(R"("a\"b\\c\ndA")");
    EXPECT_EQ(v.as_string(), "a\"b\\c\ndA");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(parse_json(""), GraphorderError);
    EXPECT_THROW(parse_json("{"), GraphorderError);
    EXPECT_THROW(parse_json("[1,]"), GraphorderError);
    EXPECT_THROW(parse_json("{\"a\" 1}"), GraphorderError);
    EXPECT_THROW(parse_json("1 2"), GraphorderError); // trailing garbage
    EXPECT_THROW(parse_json("nul"), GraphorderError);
    try {
        parse_json("[1, 2");
        FAIL() << "truncated input parsed";
    } catch (const GraphorderError& e) {
        EXPECT_EQ(e.code(), StatusCode::Truncated);
    }
}

TEST(Json, RejectsExcessiveDepth)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_THROW(parse_json(deep), GraphorderError);
}

TEST(Json, TypeMismatchThrowsInvalidInput)
{
    try {
        parse_json("42").as_string();
        FAIL() << "kind mismatch accepted";
    } catch (const GraphorderError& e) {
        EXPECT_EQ(e.code(), StatusCode::InvalidInput);
    }
}

// ----------------------------------------------------- graph fingerprint

TEST(Fingerprint, DeterministicAndStructureSensitive)
{
    const Csr g = figure2_graph();
    EXPECT_EQ(fingerprint(g), fingerprint(figure2_graph()));
    EXPECT_NE(fingerprint(g), fingerprint(path_graph(7)));
    EXPECT_NE(fingerprint(g), 0u);
}

TEST(Fingerprint, DistinguishesOrderingsOfTheSameGraph)
{
    const Csr g = figure2_graph();
    const Csr h = apply_permutation(g, figure2_permutation());
    // Same graph, different vertex order: the fingerprint is an identity
    // for the *layout*, which is exactly what a reordering run varies.
    EXPECT_NE(fingerprint(g), fingerprint(h));
}

// ------------------------------------------------- perf counter fallback

TEST(PerfCounters, InjectedDenialDegradesToUnavailable)
{
    PerfFaultGuard guard;
    auto& pc = obs::PerfCounters::instance();

    arm_fault("obs.perf.open", 1);
    pc.reopen_for_test();

    EXPECT_FALSE(pc.available());
    EXPECT_NE(pc.unavailable_reason().find("injected"),
              std::string::npos);

    // Reads are zero and flagged unavailable — "counted zero" stays
    // distinguishable from "could not count".
    const obs::PerfReading r = pc.read();
    EXPECT_FALSE(r.available);
    for (std::size_t i = 0; i < obs::kNumPerfEvents; ++i)
        EXPECT_EQ(r.value[i], 0u);

    // A PerfDomain in the degraded state must be inert, not fatal.
    {
        obs::PerfDomain d("test/degraded");
        EXPECT_FALSE(d.sample().available);
    }

    // publish_hw_counters surfaces the state as hw/available = 0.
    const obs::PerfReading pub = obs::publish_hw_counters();
    EXPECT_FALSE(pub.available);
    EXPECT_DOUBLE_EQ(
        obs::MetricsRegistry::instance().gauge("hw/available").value(),
        0.0);
}

TEST(PerfCounters, ReportStillWrittenWhenUnavailable)
{
    PerfFaultGuard guard;
    arm_fault("obs.perf.open", 1);
    obs::PerfCounters::instance().reopen_for_test();

    obs::RunReport rep;
    rep.tool = "report_test";
    rep.scheme = "rcm";
    rep.graph = "figure2";
    std::ostringstream os;
    obs::write_run_report_json(rep, os);

    const JsonValue doc = parse_json(os.str());
    EXPECT_FALSE(doc.find_path("hw/available")->as_bool());
    ASSERT_NE(doc.find_path("hw/reason"), nullptr);
    EXPECT_NE(doc.find_path("hw/reason")->as_string().find("injected"),
              std::string::npos);
    // The cross-validation ratio has no hardware side to divide by.
    EXPECT_TRUE(doc.find_path("memsim_vs_hw/ratio")->is_null());
}

// ------------------------------------------------------------- RunReport

TEST(RunReport, EmitsParseableManifest)
{
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("memsim/report_test/lookups/DRAM").add(123);

    obs::RunReport rep;
    rep.tool = "report_test";
    rep.scheme = "degree";
    rep.params = "unit-test";
    rep.seed = 7;
    rep.graph = "figure2";
    const Csr g = figure2_graph();
    rep.graph_fingerprint = fingerprint(g);
    rep.vertices = g.num_vertices();
    rep.edges = g.num_edges();

    std::ostringstream os;
    obs::write_run_report_json(rep, os);
    const JsonValue doc = parse_json(os.str());

    EXPECT_EQ(doc.find("schema")->as_string(),
              "graphorder.run_report.v1");
    EXPECT_EQ(doc.find("tool")->as_string(), "report_test");
    EXPECT_FALSE(doc.find("git_sha")->as_string().empty());
    EXPECT_EQ(doc.find_path("run/scheme")->as_string(), "degree");
    EXPECT_DOUBLE_EQ(doc.find_path("run/seed")->as_number(), 7.0);
    EXPECT_EQ(doc.find_path("graph/name")->as_string(), "figure2");
    EXPECT_DOUBLE_EQ(doc.find_path("graph/vertices")->as_number(), 7.0);
    EXPECT_EQ(doc.find_path("graph/fingerprint")->as_string().size(),
              16u);

    // hw/available is a real boolean either way; shape depends on it.
    const JsonValue* avail = doc.find_path("hw/available");
    ASSERT_NE(avail, nullptr);
    if (avail->as_bool())
        EXPECT_NE(doc.find_path("hw/counters"), nullptr);
    else
        EXPECT_NE(doc.find_path("hw/reason"), nullptr);

#ifdef __linux__
    EXPECT_GT(doc.find_path("mem/rss_peak_bytes")->as_number(), 0.0);
#endif

    // The memsim prediction sums <prefix>/lookups/DRAM counters; ours
    // must be included (other tests may have added more).
    EXPECT_GE(doc.find_path("memsim_vs_hw/memsim_llc_misses")
                  ->as_number(),
              123.0);

    // Full registry snapshot rides along for benchdiff.
    const JsonValue* counters = doc.find_path("metrics/counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_NE(counters->find("memsim/report_test/lookups/DRAM"),
              nullptr);
}

TEST(RunReport, RssPeakIsMonotonic)
{
    const std::uint64_t a = obs::rss_peak_bytes();
    obs::sample_rss_peak();
    const std::uint64_t b = obs::rss_peak_bytes();
    EXPECT_GE(b, a);
#ifdef __linux__
    EXPECT_GT(b, 0u);
#endif
}

// ------------------------------------------------------ cached counters

TEST(CachedCounter, HotPathTakesNoRegistryLookups)
{
    static obs::CachedCounter cached{"report_test/cached_counter"};
    auto& reg = obs::MetricsRegistry::instance();

    cached.add(); // resolve the name once
    const std::uint64_t base_value = cached.get().value();
    const std::uint64_t base_lookups = reg.lookup_count();
    for (int i = 0; i < 1000; ++i)
        cached.add();
    EXPECT_EQ(reg.lookup_count(), base_lookups);
    EXPECT_EQ(cached.get().value(), base_value + 1000);

    // The uncached path pays one lookup per call — the contrast the
    // BM_CounterHotPath microbench quantifies.
    reg.counter("report_test/uncached").add();
    EXPECT_GT(reg.lookup_count(), base_lookups);
}

TEST(CachedGauge, ResolvesOnceAndSets)
{
    static obs::CachedGauge cached{"report_test/cached_gauge"};
    cached.set(1.5);
    auto& reg = obs::MetricsRegistry::instance();
    const std::uint64_t base_lookups = reg.lookup_count();
    cached.set(2.5);
    EXPECT_EQ(reg.lookup_count(), base_lookups);
    EXPECT_DOUBLE_EQ(reg.gauge("report_test/cached_gauge").value(), 2.5);
}

// ------------------------------------------------------------ trace args

TEST(TraceArgs, SerializedIntoChromeTraceAndJsonl)
{
    auto& tr = obs::Tracer::instance();
    tr.set_enabled(true);
    tr.clear();
    tr.record("test/span", 0, 10, 5,
              {{"hw_cycles", 1234}, {"hw_llc_miss", 7}});
    tr.set_enabled(false);

    std::ostringstream chrome;
    tr.write_chrome_trace(chrome);
    const JsonValue doc = parse_json(chrome.str());
    const auto& events = doc.find("traceEvents")->as_array();
    ASSERT_FALSE(events.empty());
    const JsonValue* args = events.back().find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->find("hw_cycles")->as_number(), 1234.0);
    EXPECT_DOUBLE_EQ(args->find("hw_llc_miss")->as_number(), 7.0);

    std::ostringstream jsonl;
    tr.write_jsonl(jsonl);
    EXPECT_NE(jsonl.str().find("hw_cycles"), std::string::npos);
    tr.clear();
}

// ------------------------------------------------------------- benchdiff

TEST(BenchDiff, GlobMatchSemantics)
{
    EXPECT_TRUE(glob_match("counters/memsim/*", "counters/memsim/a/b"));
    EXPECT_TRUE(glob_match("*", "anything/at/all"));
    EXPECT_TRUE(glob_match("a?c", "abc"));
    EXPECT_FALSE(glob_match("a?c", "ac"));
    EXPECT_FALSE(glob_match("counters/memsim/*", "gauges/memsim/x"));
    EXPECT_TRUE(glob_match("*/DRAM", "counters/m/lookups/DRAM"));
    EXPECT_FALSE(glob_match("", "x"));
    EXPECT_TRUE(glob_match("**", ""));
}

TEST(BenchDiff, FlattensRegistryDump)
{
    const JsonValue doc = parse_json(
        R"({"counters": {"a/b": 3}, "gauges": {"g": 1.5},
            "histograms": {"h": {"count": 2, "sum": 4.0, "p50": 1.0,
                                 "p95": 3.0, "p99": 3.0}}})");
    const auto flat = flatten_metrics(doc);
    ASSERT_EQ(flat.size(), 7u);
    EXPECT_EQ(flat[0].first, "counters/a/b");
    EXPECT_DOUBLE_EQ(flat[0].second, 3.0);
    EXPECT_EQ(flat[1].first, "gauges/g");
    EXPECT_EQ(flat[2].first, "histograms/h/count");
}

TEST(BenchDiff, FlattensGoogleBenchmarkOutput)
{
    const JsonValue doc = parse_json(
        R"({"benchmarks": [{"name": "BM_X/8", "real_time": 12.5,
                            "iterations": 1000, "family_index": 0}]})");
    const auto flat = flatten_metrics(doc);
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_EQ(flat[0].first, "benchmarks/BM_X/8/iterations");
    EXPECT_EQ(flat[1].first, "benchmarks/BM_X/8/real_time");
}

TEST(BenchDiff, UnknownShapeThrows)
{
    EXPECT_THROW(flatten_metrics(parse_json(R"({"foo": 1})")),
                 GraphorderError);
    EXPECT_THROW(flatten_metrics(parse_json("[1,2]")), GraphorderError);
}

TEST(BenchDiff, VerdictTaxonomy)
{
    const JsonValue baseline = parse_json(
        R"({"counters": {"m/cycles": 1000, "m/misses": 100,
                         "m/gone": 5, "untracked": 1}})");
    const JsonValue current = parse_json(
        R"({"counters": {"m/cycles": 1200, "m/misses": 80,
                         "untracked": 999, "m/new": 4}})");

    DiffOptions opt;
    opt.rules = {{"counters/m/*", 0.05, 0.0, false}};
    const DiffResult res = diff_metrics(baseline, current, opt);

    ASSERT_EQ(res.diffs.size(), 3u); // untracked ignored, m/new is not
                                     // a baseline metric
    EXPECT_EQ(res.diffs[0].name, "counters/m/cycles");
    EXPECT_EQ(res.diffs[0].verdict, DiffVerdict::kRegression);
    EXPECT_NEAR(res.diffs[0].rel_change, 0.2, 1e-9);
    EXPECT_EQ(res.diffs[1].name, "counters/m/gone");
    EXPECT_EQ(res.diffs[1].verdict, DiffVerdict::kMissing);
    EXPECT_EQ(res.diffs[2].name, "counters/m/misses");
    EXPECT_EQ(res.diffs[2].verdict, DiffVerdict::kImprovement);
    EXPECT_EQ(res.regressions, 1u);
    EXPECT_EQ(res.improvements, 1u);
    EXPECT_EQ(res.missing, 1u);
    EXPECT_TRUE(res.failed);
}

TEST(BenchDiff, WithinThresholdAndNoiseFloorAreUnchanged)
{
    const JsonValue baseline =
        parse_json(R"({"counters": {"m/a": 1000, "m/b": 10}})");
    const JsonValue current =
        parse_json(R"({"counters": {"m/a": 1040, "m/b": 14}})");

    // m/a: +4% < 5% threshold.  m/b: +40% but |delta|=4 <= noise floor.
    DiffOptions opt;
    opt.rules = {{"counters/m/*", 0.05, 5.0, false}};
    const DiffResult res = diff_metrics(baseline, current, opt);
    ASSERT_EQ(res.diffs.size(), 2u);
    EXPECT_EQ(res.diffs[0].verdict, DiffVerdict::kUnchanged);
    EXPECT_EQ(res.diffs[1].verdict, DiffVerdict::kUnchanged);
    EXPECT_FALSE(res.failed);
    EXPECT_EQ(res.unchanged, 2u);
}

TEST(BenchDiff, HigherIsBetterFlipsTheDirection)
{
    const JsonValue baseline =
        parse_json(R"({"counters": {"throughput": 100}})");
    const JsonValue dropped =
        parse_json(R"({"counters": {"throughput": 50}})");

    DiffOptions opt;
    opt.rules = {{"counters/throughput", 0.05, 0.0, true}};
    EXPECT_TRUE(diff_metrics(baseline, dropped, opt).failed);
    // And the same delta upward is an improvement, not a failure.
    EXPECT_FALSE(diff_metrics(dropped, baseline, opt).failed);
}

TEST(BenchDiff, AllowMissingSuppressesTheFailure)
{
    const JsonValue baseline =
        parse_json(R"({"counters": {"m/gone": 5}})");
    const JsonValue current = parse_json(R"({"counters": {}})");

    DiffOptions opt;
    opt.rules = {{"counters/m/*", 0.05, 0.0, false}};
    EXPECT_TRUE(diff_metrics(baseline, current, opt).failed);
    opt.fail_on_missing = false;
    const DiffResult res = diff_metrics(baseline, current, opt);
    EXPECT_FALSE(res.failed);
    EXPECT_EQ(res.missing, 1u);
}

TEST(BenchDiff, DefaultRulesTrackMemsimAndCellHealth)
{
    const JsonValue baseline = parse_json(
        R"({"counters": {"memsim/f/lookups/DRAM": 100000,
                         "bench/cells_failed": 0,
                         "order/rcm/calls": 5}})");
    const JsonValue regressed = parse_json(
        R"({"counters": {"memsim/f/lookups/DRAM": 120000,
                         "bench/cells_failed": 1,
                         "order/rcm/calls": 99}})");
    // Default rules: memsim +20% regresses, a newly failed cell
    // regresses, order/* is untracked.
    const DiffResult res = diff_metrics(baseline, regressed, {});
    EXPECT_EQ(res.diffs.size(), 2u);
    EXPECT_EQ(res.regressions, 2u);
    EXPECT_TRUE(res.failed);

    const DiffResult same = diff_metrics(baseline, baseline, {});
    EXPECT_FALSE(same.failed);
    EXPECT_EQ(same.regressions, 0u);
}

TEST(BenchDiff, FromZeroBaselineIsAnInfiniteRegression)
{
    const JsonValue baseline =
        parse_json(R"({"counters": {"m/errs": 0}})");
    const JsonValue current =
        parse_json(R"({"counters": {"m/errs": 3}})");
    DiffOptions opt;
    opt.rules = {{"counters/m/*", 0.05, 0.0, false}};
    const DiffResult res = diff_metrics(baseline, current, opt);
    ASSERT_EQ(res.diffs.size(), 1u);
    EXPECT_EQ(res.diffs[0].verdict, DiffVerdict::kRegression);
    EXPECT_TRUE(std::isinf(res.diffs[0].rel_change));
    EXPECT_TRUE(res.failed);
}

// ------------------------------------------------ report -> benchdiff

TEST(BenchDiff, ComparesTwoRunReportsEndToEnd)
{
    // Round-trip: emit two real reports whose memsim counters differ by
    // more than the default threshold, and diff them.
    auto& reg = obs::MetricsRegistry::instance();
    obs::RunReport rep;
    rep.tool = "report_test";

    reg.counter("memsim/e2e/lookups/DRAM").add(1000);
    std::ostringstream first;
    obs::write_run_report_json(rep, first);

    reg.counter("memsim/e2e/lookups/DRAM").add(900); // +90%
    std::ostringstream second;
    obs::write_run_report_json(rep, second);

    const DiffResult res = diff_metrics(parse_json(first.str()),
                                        parse_json(second.str()), {});
    EXPECT_TRUE(res.failed);
    bool found = false;
    for (const auto& d : res.diffs)
        if (d.name == "counters/memsim/e2e/lookups/DRAM") {
            EXPECT_EQ(d.verdict, DiffVerdict::kRegression);
            found = true;
        }
    EXPECT_TRUE(found);

    // Identical reports never fail, whatever the environment did to
    // the hw section.
    EXPECT_FALSE(diff_metrics(parse_json(second.str()),
                              parse_json(second.str()), {})
                     .failed);
}

} // namespace graphorder
