#include "testutil.hpp"

#include <algorithm>

namespace graphorder::testing {

Csr
figure2_graph()
{
    // Recovered by exhaustive search over all 7-vertex graphs: this edge
    // set reproduces the paper's Figure 2 gap numbers (natural xi=3.3,
    // beta=5, beta_hat=4.43; reordered beta=3, beta_hat=2.86).  The
    // reordered average gap computes to 1.8 — the paper prints 1.7; no
    // 7-vertex simple graph matches all six printed values, so we treat
    // 1.7 as a rounding slip and assert 1.8.
    GraphBuilder b(7);
    const std::pair<int, int> edges[] = {
        {1, 3}, {1, 4}, {1, 5}, {1, 6}, {2, 5},
        {2, 7}, {3, 5}, {3, 6}, {3, 7}, {4, 6},
    };
    for (auto [u, v] : edges)
        b.add_edge(static_cast<vid_t>(u - 1), static_cast<vid_t>(v - 1));
    return b.finalize();
}

Permutation
figure2_permutation()
{
    // Paper: Pi = [5,1,3,7,2,6,4] — vertex 1 maps to rank 5, 2 to 1, ...
    // (1-based); stored as 0-based ranks.
    return Permutation::from_ranks({4, 0, 2, 6, 1, 5, 3});
}

Csr
path_graph(vid_t n)
{
    GraphBuilder b(n);
    for (vid_t v = 0; v + 1 < n; ++v)
        b.add_edge(v, v + 1);
    return b.finalize();
}

Csr
cycle_graph(vid_t n)
{
    GraphBuilder b(n);
    for (vid_t v = 0; v < n; ++v)
        b.add_edge(v, (v + 1) % n);
    return b.finalize();
}

Csr
complete_graph(vid_t n)
{
    GraphBuilder b(n);
    for (vid_t u = 0; u < n; ++u)
        for (vid_t v = u + 1; v < n; ++v)
            b.add_edge(u, v);
    return b.finalize();
}

Csr
star_graph(vid_t leaves)
{
    GraphBuilder b(leaves + 1);
    for (vid_t v = 1; v <= leaves; ++v)
        b.add_edge(0, v);
    return b.finalize();
}

Csr
two_cliques(vid_t k)
{
    GraphBuilder b(2 * k);
    for (vid_t u = 0; u < k; ++u)
        for (vid_t v = u + 1; v < k; ++v) {
            b.add_edge(u, v);
            b.add_edge(k + u, k + v);
        }
    b.add_edge(k - 1, k); // bridge
    return b.finalize();
}

Csr
grid_graph(vid_t w, vid_t h)
{
    GraphBuilder b(w * h);
    for (vid_t y = 0; y < h; ++y)
        for (vid_t x = 0; x < w; ++x) {
            const vid_t v = y * w + x;
            if (x + 1 < w)
                b.add_edge(v, v + 1);
            if (y + 1 < h)
                b.add_edge(v, v + w);
        }
    return b.finalize();
}

std::vector<NamedGraph>
test_menagerie()
{
    std::vector<NamedGraph> out;
    out.push_back({"path32", path_graph(32)});
    out.push_back({"cycle40", cycle_graph(40)});
    out.push_back({"k8", complete_graph(8)});
    out.push_back({"star64", star_graph(64)});
    out.push_back({"cliques12", two_cliques(12)});
    out.push_back({"grid8x8", grid_graph(8, 8)});
    out.push_back({"figure2", figure2_graph()});
    return out;
}

bool
same_degree_profile(const Csr& a, const Csr& b)
{
    if (a.num_vertices() != b.num_vertices()
        || a.num_edges() != b.num_edges()) {
        return false;
    }
    std::vector<vid_t> da, db;
    for (vid_t v = 0; v < a.num_vertices(); ++v) {
        da.push_back(a.degree(v));
        db.push_back(b.degree(v));
    }
    std::sort(da.begin(), da.end());
    std::sort(db.begin(), db.end());
    return da == db;
}

} // namespace graphorder::testing
