/**
 * @file
 * Shared fixtures and graph factories for the test suite.
 */
#pragma once

#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder::testing {

/** The 7-vertex example graph of the paper's Figure 2 (1-based edges
 *  {1-2, 1-5, 2-3, 2-6, 3-7, 4-6, 4-7, 5-6, 6-7} stored 0-based). */
Csr figure2_graph();

/** The Figure 2 reordering Pi = [5,1,3,7,2,6,4] (1-based), as 0-based
 *  ranks. */
Permutation figure2_permutation();

/** Path graph 0-1-2-...-(n-1). */
Csr path_graph(vid_t n);

/** Cycle graph. */
Csr cycle_graph(vid_t n);

/** Complete graph K_n. */
Csr complete_graph(vid_t n);

/** Star with @p leaves leaves, center = 0. */
Csr star_graph(vid_t leaves);

/** Two cliques of size @p k joined by a single bridge edge. */
Csr two_cliques(vid_t k);

/** 2D grid graph (w x h, 4-neighborhood). */
Csr grid_graph(vid_t w, vid_t h);

/** Deterministic small test-graph menagerie (name, graph) for sweeps. */
struct NamedGraph
{
    std::string name;
    Csr graph;
};
std::vector<NamedGraph> test_menagerie();

/** True if both graphs have identical degree multisets and edge counts. */
bool same_degree_profile(const Csr& a, const Csr& b);

} // namespace graphorder::testing
