/**
 * @file
 * Cross-module integration tests: end-to-end reorder -> measure -> apply
 * pipelines, and qualitative sanity checks that mirror the paper's
 * headline findings at small scale.
 */
#include <gtest/gtest.h>

#include "community/louvain.hpp"
#include "gen/datasets.hpp"
#include "gen/generators.hpp"
#include "influence/imm.hpp"
#include "la/gap_measures.hpp"
#include "memsim/cache.hpp"
#include "order/scheme.hpp"
#include "testutil.hpp"
#include "util/perf_profile.hpp"

namespace graphorder {
namespace {

TEST(Pipeline, ReorderApplyPreservesGapMetrics)
{
    // Measuring gaps of (g, pi) must equal measuring the natural order of
    // the permuted graph — the fundamental consistency of the pipeline.
    const auto g = gen_sbm(500, 3000, 8, 0.85, 1);
    for (const char* name : {"rcm", "degree", "grappolo", "metis-32"}) {
        const auto pi = scheme_by_name(name).run(g, 7);
        const auto via_pi = compute_gap_metrics(g, pi);
        const auto h = apply_permutation(g, pi);
        const auto via_apply = compute_gap_metrics(h);
        EXPECT_DOUBLE_EQ(via_pi.avg_gap, via_apply.avg_gap) << name;
        EXPECT_EQ(via_pi.bandwidth, via_apply.bandwidth) << name;
        EXPECT_DOUBLE_EQ(via_pi.avg_bandwidth, via_apply.avg_bandwidth)
            << name;
    }
}

TEST(Pipeline, ReorderingDoesNotChangeLouvainQuality)
{
    // The paper: modularity spread across orderings is small.  Our check:
    // reordered runs stay within a modest band of the natural run.
    const auto g = gen_sbm(800, 5000, 10, 0.85, 2);
    const double q_nat = louvain(g).modularity;
    for (const char* name : {"rcm", "degree", "random"}) {
        const auto pi = scheme_by_name(name).run(g, 3);
        const auto h = apply_permutation(g, pi);
        const double q = louvain(h).modularity;
        EXPECT_NEAR(q, q_nat, 0.15) << name;
    }
}

TEST(Pipeline, ReorderingDoesNotChangeImmQuality)
{
    const auto g = gen_rmat(512, 3000, 0.57, 0.19, 0.19, 3);
    ImmOptions opt;
    opt.num_seeds = 4;
    opt.edge_probability = 0.1;
    const auto base = imm(g, opt);
    const double base_spread =
        simulate_ic_spread(g, base.seeds, 0.1, 200, 1);

    const auto pi = scheme_by_name("degree").run(g, 5);
    const auto h = apply_permutation(g, pi);
    const auto re = imm(h, opt);
    // Map seeds back to original ids for simulation on g.
    const auto inv = pi.inverse();
    std::vector<vid_t> seeds;
    for (vid_t s : re.seeds)
        seeds.push_back(inv.rank(s));
    const double re_spread = simulate_ic_spread(g, seeds, 0.1, 200, 1);
    EXPECT_NEAR(re_spread, base_spread,
                0.3 * std::max(base_spread, re_spread));
}

TEST(Headline, PartitionSchemesBeatDegreeSchemesOnAvgGap)
{
    // Paper Fig. 5: partition/community schemes form the top tier for
    // xi_hat, degree/hub schemes the bottom tier (10-40x worse).
    const auto g = gen_sbm(1500, 10000, 16, 0.85, 4);
    const double best_partition = std::min(
        {compute_gap_metrics(g, scheme_by_name("metis-32").run(g, 1))
             .avg_gap,
         compute_gap_metrics(g, scheme_by_name("grappolo").run(g, 1))
             .avg_gap,
         compute_gap_metrics(g, scheme_by_name("rabbit").run(g, 1))
             .avg_gap});
    const double degree =
        compute_gap_metrics(g, scheme_by_name("degree").run(g, 1)).avg_gap;
    EXPECT_LT(best_partition * 2, degree);
}

TEST(Headline, RcmWinsBandwidthOnMeshes)
{
    // Paper Fig. 6a: RCM clearly best on beta.
    const auto g = gen_mesh(1600, 0, 5);
    const auto rcm_bw =
        compute_gap_metrics(g, scheme_by_name("rcm").run(g, 1)).bandwidth;
    for (const char* other : {"degree", "random", "grappolo", "hubsort"}) {
        const auto bw =
            compute_gap_metrics(g, scheme_by_name(other).run(g, 1))
                .bandwidth;
        EXPECT_LT(rcm_bw, bw) << other;
    }
}

TEST(Headline, OrderingChangesCacheBehaviourOfLouvain)
{
    // Paper Fig. 10: orderings shift memory-hierarchy boundedness.  At
    // test scale we check the tracer machinery differentiates a good
    // (grappolo) from a bad (random) layout on a community graph.
    const auto g = gen_sbm(2000, 16000, 20, 0.9, 6);

    auto latency_for = [&](const char* scheme) {
        const auto pi = scheme_by_name(scheme).run(g, 2);
        const auto h = apply_permutation(g, pi);
        CacheTracer tracer(CacheHierarchyConfig::tiny_test());
        LouvainOptions opt;
        opt.tracer = &tracer;
        opt.num_threads = 1;
        opt.max_phases = 1;
        louvain(h, opt);
        return tracer.metrics().avg_load_latency();
    };
    EXPECT_LT(latency_for("grappolo"), latency_for("random"));
}

TEST(Profiles, BuildAcrossSchemesAndGraphs)
{
    // Miniature Fig. 5: build a real performance profile over 3 graphs
    // and 4 schemes and verify basic dominance structure.
    std::vector<Csr> graphs;
    graphs.push_back(gen_sbm(600, 4000, 8, 0.85, 7));
    graphs.push_back(gen_mesh(600, 0, 7));
    graphs.push_back(gen_rmat(600, 3000, 0.57, 0.19, 0.19, 7));

    ProfileInput in;
    in.schemes = {"metis-32", "rcm", "degree", "random"};
    in.problems = {"sbm", "mesh", "rmat"};
    in.costs.resize(in.schemes.size());
    for (std::size_t s = 0; s < in.schemes.size(); ++s) {
        for (const auto& g : graphs) {
            const auto pi = scheme_by_name(in.schemes[s]).run(g, 11);
            in.costs[s].push_back(compute_gap_metrics(g, pi).avg_gap);
        }
    }
    const auto prof = build_profile(in);
    // Random must never be the best scheme on any of these graphs.
    EXPECT_DOUBLE_EQ(prof.fraction_within(3, 1.0), 0.0);
    // metis-32 should be within 4x of best everywhere here.
    EXPECT_DOUBLE_EQ(prof.fraction_within(0, 4.0), 1.0);
}

TEST(Datasets, EndToEndOnRegistryInstance)
{
    // Full pipeline on a Table I stand-in: generate, reorder with every
    // paper scheme, verify validity and metric finiteness.
    const auto g = dataset_by_name("euroroad").make(1.0);
    for (const auto& s : paper_schemes()) {
        const auto pi = s.run(g, 13);
        ASSERT_TRUE(pi.is_valid()) << s.name;
        const auto m = compute_gap_metrics(g, pi);
        EXPECT_GE(m.avg_gap, 1.0) << s.name; // every edge has gap >= 1
        EXPECT_GE(m.bandwidth, 1u) << s.name;
    }
}

} // namespace
} // namespace graphorder
