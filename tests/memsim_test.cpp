/**
 * @file
 * Tests of the cache-hierarchy simulator that stands in for VTune.
 *
 * The tiny_test() hierarchy used throughout: L1 = 4 lines direct-mapped,
 * 1-cycle lookup; L2 = 16 lines 2-way, 10-cycle lookup; DRAM 100 cycles.
 * Cumulative service latencies are therefore L1 = 1, L2 = 11, DRAM = 111.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "memsim/cache.hpp"

namespace graphorder {
namespace {

TEST(Cache, FirstTouchMissesThenHits)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);              // cold miss -> DRAM
    c.load(0);              // now L1 hit
    c.load(8);              // same 64B line -> L1 hit
    const auto& m = c.metrics();
    EXPECT_EQ(m.loads, 3u);
    EXPECT_EQ(m.level_hits[0], 2u); // L1
    EXPECT_EQ(m.level_hits.back(), 1u); // DRAM
}

TEST(Cache, LatencyAccountingIsCumulative)
{
    // A hit costs the whole lookup path down to the servicing level:
    // DRAM = 1 + 10 + 100 = 111, L1 = 1.
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);   // DRAM: 111
    c.load(0);   // L1: 1
    const auto& m = c.metrics();
    EXPECT_EQ(m.total_cycles, 112u);
    EXPECT_DOUBLE_EQ(m.avg_load_latency(), 112.0 / 2.0);
    ASSERT_EQ(m.service_latency.size(), 3u);
    EXPECT_EQ(m.service_latency[0], 1u);
    EXPECT_EQ(m.service_latency[1], 11u);
    EXPECT_EQ(m.service_latency[2], 111u);
}

TEST(Cache, GoldenTraceTinyHierarchy)
{
    // Hand-simulated four-load trace on tiny_test.
    //   load 0   : L1 miss, L2 miss -> DRAM; installs line 0 in L1+L2.
    //   load 0   : L1 hit.
    //   load 256 : line 4 conflicts with line 0 in L1 set 0 and misses
    //              L2 set 4 -> DRAM; evicts line 0 from L1.
    //   load 0   : L1 miss (set 0 holds line 4), L2 hit; refills L1,
    //              evicting line 4.
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);
    c.load(0);
    c.load(256);
    c.load(0);
    const auto& m = c.metrics();

    EXPECT_EQ(m.loads, 4u);
    ASSERT_EQ(m.level_hits.size(), 3u);
    EXPECT_EQ(m.level_hits[0], 1u);
    EXPECT_EQ(m.level_hits[1], 1u);
    EXPECT_EQ(m.level_hits[2], 2u);
    EXPECT_EQ(m.level_lookups[0], 4u);
    EXPECT_EQ(m.level_lookups[1], 3u);
    EXPECT_EQ(m.level_lookups[2], 2u);
    EXPECT_EQ(m.evictions, 2u);

    // Cycles: 111 (DRAM) + 1 (L1) + 111 (DRAM) + 11 (L2) = 234.
    EXPECT_EQ(m.total_cycles, 234u);
    EXPECT_DOUBLE_EQ(m.avg_load_latency(), 234.0 / 4.0);

    // Exact per-level cycle attribution: latency[i] * lookups[i].
    EXPECT_NEAR(m.bound_fraction(0), 4.0 / 234.0, 1e-12);
    EXPECT_NEAR(m.bound_fraction(1), 30.0 / 234.0, 1e-12);
    EXPECT_NEAR(m.bound_fraction(2), 200.0 / 234.0, 1e-12);
    const double sum = m.bound_fraction(0) + m.bound_fraction(1)
        + m.bound_fraction(2);
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // Exact miss ratios from the lookup counters.
    EXPECT_DOUBLE_EQ(m.miss_ratio(0), 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(m.miss_ratio(1), 2.0 / 3.0);
    EXPECT_EQ(m.misses(0), 3u);
    EXPECT_EQ(m.misses(1), 2u);
}

TEST(Cache, DramLookupsEqualLastLevelMisses)
{
    // Regression: DRAM used to be probed on every load.  A DRAM lookup
    // must happen only when the last cache level misses, so the identity
    // lookups[DRAM] == lookups[L_last] - hits[L_last] holds on any trace.
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    std::uint64_t a = 1;
    for (int i = 0; i < 500; ++i) {
        a = a * 6364136223846793005ULL + 1442695040888963407ULL;
        c.load(a % (1ULL << 14));
    }
    const auto& m = c.metrics();
    const std::size_t last = m.level_hits.size() - 2; // last cache level
    EXPECT_EQ(m.level_lookups.back(),
              m.level_lookups[last] - m.level_hits[last]);
    // Same filtering property one level up.
    EXPECT_EQ(m.level_lookups[1], m.level_lookups[0] - m.level_hits[0]);
    // Every load probes L1; DRAM "hits" are exactly its lookups.
    EXPECT_EQ(m.level_lookups[0], m.loads);
    EXPECT_EQ(m.level_hits.back(), m.level_lookups.back());
}

TEST(Cache, DirectMappedConflictEviction)
{
    // tiny L1 has 4 direct-mapped sets; lines 0 and 4 collide.
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0 * 64);
    c.load(4 * 64);  // evicts line 0 from L1 (same set), both go to L2
    c.load(0 * 64);  // L1 miss, L2 hit
    const auto& m = c.metrics();
    EXPECT_EQ(m.level_hits[1], 1u); // the L2 hit
    EXPECT_EQ(m.level_hits.back(), 2u); // two cold misses
}

TEST(Cache, LruKeepsHotLine)
{
    // 2-way L2 set behaviour via the tiny config's L2 (16 lines, 2-way ->
    // 8 sets): lines 0, 8, 16 map to set 0.
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0 * 64);
    c.load(8 * 64);
    c.load(0 * 64);  // touch 0 again: L1 may or may not hold it; L2 does
    c.load(16 * 64); // evicts line 8 (LRU in L2 set 0), not line 0
    c.reset_stats();
    c.load(0 * 64);
    const auto& m = c.metrics();
    // Line 0 must still be resident somewhere (not DRAM).
    EXPECT_EQ(m.level_hits.back(), 0u);
}

TEST(Cache, SequentialBeatsRandomStride)
{
    const auto cfg = CacheHierarchyConfig::cascade_lake();
    CacheHierarchy seq(cfg), rnd(cfg);
    for (std::uint64_t i = 0; i < 4096; ++i)
        seq.load(i * 8); // sequential doubles: 8 per line
    for (std::uint64_t i = 0; i < 4096; ++i)
        rnd.load((i * 2654435761ULL) % (1ULL << 26));
    EXPECT_LT(seq.metrics().avg_load_latency(),
              rnd.metrics().avg_load_latency());
}

TEST(Cache, BoundFractionsDecomposeTotalCycles)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    for (int i = 0; i < 100; ++i)
        c.load(0);
    const auto& m = c.metrics();
    // 1 DRAM access (111 cycles) + 99 L1 hits: total 210 cycles, with
    // lookups L1=100, L2=1, DRAM=1.
    EXPECT_EQ(m.total_cycles, 210u);
    EXPECT_NEAR(m.bound_fraction(0), 100.0 / 210.0, 1e-12);
    EXPECT_NEAR(m.bound_fraction(1), 10.0 / 210.0, 1e-12);
    EXPECT_NEAR(m.bound_fraction(2), 100.0 / 210.0, 1e-12);
    double sum = 0.0;
    for (std::size_t i = 0; i < m.level_hits.size(); ++i)
        sum += m.bound_fraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Cache, MissRatioPerLevel)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);
    c.load(0);
    const auto& m = c.metrics();
    EXPECT_DOUBLE_EQ(m.miss_ratio(0), 0.5); // 1 of 2 L1 lookups missed
}

TEST(Cache, FlushForcesMisses)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);
    c.flush();
    c.reset_stats();
    c.load(0);
    EXPECT_EQ(c.metrics().level_hits.back(), 1u); // DRAM again
}

TEST(Cache, WideLoadTouchesTwoLines)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(60, 8); // crosses the 64B boundary
    EXPECT_EQ(c.metrics().loads, 2u);
}

TEST(Cache, CascadeLakeGeometry)
{
    const auto cfg = CacheHierarchyConfig::cascade_lake();
    ASSERT_EQ(cfg.levels.size(), 3u);
    EXPECT_EQ(cfg.levels[0].size_bytes, 32u * 1024);
    EXPECT_EQ(cfg.levels[1].size_bytes, 1024u * 1024);
    EXPECT_EQ(cfg.levels[2].name, "L3");
}

TEST(Tracer, SamplingExtrapolatesCounters)
{
    CacheTracer full(CacheHierarchyConfig::tiny_test(), 1);
    CacheTracer sampled(CacheHierarchyConfig::tiny_test(), 4);
    int x = 0;
    for (int i = 0; i < 1000; ++i) {
        full.load(&x, 4);
        sampled.load(&x, 4);
    }
    EXPECT_EQ(full.metrics().loads, 1000u);
    // 250 simulated loads, reported scaled back by the sampling factor.
    EXPECT_EQ(sampled.cache().metrics().loads, 250u);
    EXPECT_EQ(sampled.metrics().loads, 1000u);
}

TEST(Tracer, SampledMetricsTrackUnsampledWithinFivePercent)
{
    // A mixed hot/cold stream: every third access goes to a 4 KB hot
    // region (L1-resident), the rest stride through a 64 MB region with
    // effectively unique lines (cold misses either way).  The sampled
    // simulation sees a quarter of the stream; extrapolated loads and
    // cycles must land within 5% of the unsampled reference.
    const auto cfg = CacheHierarchyConfig::cascade_lake();
    CacheTracer full(cfg, 1);
    CacheTracer sampled(cfg, 4);
    for (std::uint64_t i = 0; i < 100000; ++i) {
        std::uint64_t a = (i * 2654435761ULL) % (1ULL << 26);
        if (i % 3 == 0)
            a %= 4096;
        full.load(reinterpret_cast<const void*>(a), 4);
        sampled.load(reinterpret_cast<const void*>(a), 4);
    }
    const auto mf = full.metrics();
    const auto ms = sampled.metrics();
    ASSERT_GT(mf.loads, 0u);
    const double load_err =
        std::abs(static_cast<double>(ms.loads)
                 - static_cast<double>(mf.loads))
        / static_cast<double>(mf.loads);
    const double cycle_err =
        std::abs(static_cast<double>(ms.total_cycles)
                 - static_cast<double>(mf.total_cycles))
        / static_cast<double>(mf.total_cycles);
    EXPECT_LE(load_err, 0.05);
    EXPECT_LE(cycle_err, 0.05);
}

TEST(Metrics, ScaledByPreservesRatios)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);
    c.load(0);
    c.load(256);
    const auto& m = c.metrics();
    const auto s = m.scaled_by(4);
    EXPECT_EQ(s.loads, 4 * m.loads);
    EXPECT_EQ(s.total_cycles, 4 * m.total_cycles);
    EXPECT_EQ(s.level_lookups[0], 4 * m.level_lookups[0]);
    EXPECT_DOUBLE_EQ(s.avg_load_latency(), m.avg_load_latency());
    for (std::size_t i = 0; i < m.level_hits.size(); ++i)
        EXPECT_DOUBLE_EQ(s.bound_fraction(i), m.bound_fraction(i));
}

TEST(Cache, PrefetchTurnsSequentialMissesIntoHits)
{
    auto cfg = CacheHierarchyConfig::tiny_test();
    CacheHierarchy plain(cfg);
    cfg.prefetch = PrefetchPolicy::kNextLine;
    CacheHierarchy pref(cfg);
    for (std::uint64_t i = 0; i < 64; ++i) {
        plain.load(i * 64);
        pref.load(i * 64);
    }
    // Streaming access: the prefetcher converts every other demand miss.
    EXPECT_LT(pref.metrics().level_hits.back(),
              plain.metrics().level_hits.back());
    EXPECT_GT(pref.prefetches(), 0u);
    EXPECT_GT(pref.metrics().prefetch_hits, 0u);
    EXPECT_LT(pref.metrics().avg_load_latency(),
              plain.metrics().avg_load_latency());
}

TEST(Cache, PrefetchTrafficInvisibleInDemandCounters)
{
    auto cfg = CacheHierarchyConfig::tiny_test();
    cfg.prefetch = PrefetchPolicy::kNextLine;
    CacheHierarchy c(cfg);
    for (std::uint64_t i = 0; i < 32; ++i)
        c.load(i * 64);
    const auto& m = c.metrics();
    EXPECT_EQ(m.loads, 32u); // prefetches are not loads
    EXPECT_EQ(m.level_lookups[0], 32u); // and probe no level
    // Demand cycles only: every serviced load is one of the 32.
    std::uint64_t serviced = 0;
    for (auto h : m.level_hits)
        serviced += h;
    EXPECT_EQ(serviced, 32u);
}

TEST(Cache, PrefetchFiresOnlyOnFullDemandMiss)
{
    // Regression: the prefetcher used to fire on any L1 miss, including
    // accesses that L2/L3 service.  It must fire only when the access
    // goes all the way to DRAM.
    auto cfg = CacheHierarchyConfig::tiny_test();
    cfg.prefetch = PrefetchPolicy::kNextLine;
    CacheHierarchy c(cfg);
    c.load(0);   // full miss: prefetches line 1          (installs = 1)
    c.load(0);   // L1 hit: no prefetch
    c.load(256); // full miss: prefetches line 5, which
                 // displaces untouched line 1 in L1 set 1 (installs = 2)
    const auto before = c.metrics().prefetch_installs;
    c.load(0);   // L1 miss but L2 hit: must NOT prefetch
    const auto& m = c.metrics();
    EXPECT_EQ(m.prefetch_installs, before);
    EXPECT_EQ(m.prefetch_installs, 2u);
    EXPECT_EQ(m.level_hits[1], 1u); // the gating access was an L2 hit
    EXPECT_EQ(m.prefetch_useless, 1u); // line 1, displaced untouched
}

TEST(Cache, PrefetchOfResidentLineIsNotAnInstall)
{
    // Single fully-associative level so nothing is ever displaced.
    CacheHierarchyConfig cfg;
    cfg.levels = {{"L1", 64ULL * 64, 64, 1, InclusionPolicy::kNonInclusive}};
    cfg.dram_latency_cycles = 100;
    cfg.prefetch = PrefetchPolicy::kNextLine;
    CacheHierarchy c(cfg);
    c.load(6 * 64); // miss: installs prefetched line 7   (installs = 1)
    c.load(5 * 64); // miss: prefetch target 6 is already resident
    EXPECT_EQ(c.metrics().prefetch_installs, 1u);
    c.load(7 * 64); // demand-touches the prefetched line
    EXPECT_EQ(c.metrics().prefetch_hits, 1u);
    EXPECT_EQ(c.metrics().prefetch_useless, 0u);
}

TEST(Cache, StridePrefetcherDetectsConstantStride)
{
    auto cfg = CacheHierarchyConfig::tiny_test();
    CacheHierarchy plain(cfg);
    cfg.prefetch = PrefetchPolicy::kStride;
    CacheHierarchy pref(cfg);
    // Lines 0, 3, 6, ..., 57: a constant stride of 3 lines that the
    // next-line policy would never cover.
    for (std::uint64_t i = 0; i < 20; ++i) {
        plain.load(i * 3 * 64);
        pref.load(i * 3 * 64);
    }
    EXPECT_EQ(plain.metrics().level_hits.back(), 20u); // all cold misses
    // The detector needs two misses to confirm the stride, then
    // alternates: miss at 6k+6 issues the prefetch that the access at
    // 6k+9 hits.
    EXPECT_EQ(pref.metrics().prefetch_hits, 9u);
    EXPECT_EQ(pref.metrics().level_hits.back(), 11u);
}

TEST(Cache, PrefetchOffByDefault)
{
    CacheHierarchy c(CacheHierarchyConfig::cascade_lake());
    c.load(0);
    c.load(4096);
    EXPECT_EQ(c.prefetches(), 0u);
}

TEST(Cache, InclusiveEvictionBackInvalidates)
{
    // L1: 8 lines direct-mapped; L2: 4 lines direct-mapped, inclusive.
    // Evicting a line from L2 must also drop the L1 copy.
    CacheHierarchyConfig cfg;
    cfg.levels = {{"L1", 8ULL * 64, 1, 1, InclusionPolicy::kNonInclusive},
                  {"L2", 4ULL * 64, 1, 10, InclusionPolicy::kInclusive}};
    cfg.dram_latency_cycles = 100;
    CacheHierarchy incl(cfg);
    incl.load(0 * 64); // line 0 -> L1 set 0, L2 set 0
    incl.load(4 * 64); // line 4 -> L2 set 0 evicts line 0, and with it
                       // the L1 copy (L1 sets 0 and 4 do not conflict)
    incl.load(0 * 64); // must go to DRAM again
    EXPECT_EQ(incl.metrics().level_hits.back(), 3u);
    EXPECT_EQ(incl.metrics().level_hits[0], 0u);

    // Control: with a non-inclusive L2 the L1 copy survives.
    cfg.levels[1].policy = InclusionPolicy::kNonInclusive;
    CacheHierarchy plain(cfg);
    plain.load(0 * 64);
    plain.load(4 * 64);
    plain.load(0 * 64);
    EXPECT_EQ(plain.metrics().level_hits.back(), 2u);
    EXPECT_EQ(plain.metrics().level_hits[0], 1u);
}

TEST(Cache, ExclusiveLevelHoldsVictimsOnly)
{
    // L1: 4 lines direct-mapped; L2: 8 lines direct-mapped, exclusive.
    CacheHierarchyConfig cfg;
    cfg.levels = {{"L1", 4ULL * 64, 1, 1, InclusionPolicy::kNonInclusive},
                  {"L2", 8ULL * 64, 1, 10, InclusionPolicy::kExclusive}};
    cfg.dram_latency_cycles = 100;
    CacheHierarchy c(cfg);
    c.load(0);   // DRAM; fills L1 only (exclusive L2 skipped on fill)
    c.load(0);   // L1 hit
    c.load(256); // line 4 conflicts: line 0 demoted into L2, DRAM fill
    c.load(0);   // L2 hit: migrates back to L1, demoting line 4
    c.load(256); // L2 hit on the demoted victim
    const auto& m = c.metrics();
    EXPECT_EQ(m.level_hits[0], 1u);
    EXPECT_EQ(m.level_hits[1], 2u);
    EXPECT_EQ(m.level_hits.back(), 2u); // only the two cold misses
    EXPECT_EQ(m.level_lookups[0], 5u);
    EXPECT_EQ(m.level_lookups[1], 4u);
    EXPECT_EQ(m.level_lookups.back(), 2u);
}

TEST(Cache, BadLineSizeThrows)
{
    CacheHierarchyConfig cfg;
    cfg.line_bytes = 48; // not a power of two
    EXPECT_THROW(CacheHierarchy{cfg}, std::invalid_argument);
}

} // namespace
} // namespace graphorder
