/**
 * @file
 * Tests of the cache-hierarchy simulator that stands in for VTune.
 */
#include <gtest/gtest.h>

#include "memsim/cache.hpp"

namespace graphorder {
namespace {

TEST(Cache, FirstTouchMissesThenHits)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);              // cold miss -> DRAM
    c.load(0);              // now L1 hit
    c.load(8);              // same 64B line -> L1 hit
    const auto& m = c.metrics();
    EXPECT_EQ(m.loads, 3u);
    EXPECT_EQ(m.level_hits[0], 2u); // L1
    EXPECT_EQ(m.level_hits.back(), 1u); // DRAM
}

TEST(Cache, LatencyAccounting)
{
    // tiny_test: L1=1, L2=10, DRAM=100.
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);   // DRAM: 100
    c.load(0);   // L1: 1
    const auto& m = c.metrics();
    EXPECT_EQ(m.total_cycles, 101u);
    EXPECT_DOUBLE_EQ(m.avg_load_latency(), 101.0 / 2.0);
}

TEST(Cache, DirectMappedConflictEviction)
{
    // tiny L1 has 4 direct-mapped sets; lines 0 and 4 collide.
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0 * 64);
    c.load(4 * 64);  // evicts line 0 from L1 (same set), both go to L2
    c.load(0 * 64);  // L1 miss, L2 hit
    const auto& m = c.metrics();
    EXPECT_EQ(m.level_hits[1], 1u); // the L2 hit
    EXPECT_EQ(m.level_hits.back(), 2u); // two cold misses
}

TEST(Cache, LruKeepsHotLine)
{
    // 2-way L2 set behaviour via the tiny config's L2 (16 lines, 2-way ->
    // 8 sets): lines 0, 8, 16 map to set 0.
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0 * 64);
    c.load(8 * 64);
    c.load(0 * 64);  // touch 0 again: L1 may or may not hold it; L2 does
    c.load(16 * 64); // evicts line 8 (LRU in L2 set 0), not line 0
    c.reset_stats();
    c.load(0 * 64);
    const auto& m = c.metrics();
    // Line 0 must still be resident somewhere (not DRAM).
    EXPECT_EQ(m.level_hits.back(), 0u);
}

TEST(Cache, SequentialBeatsRandomStride)
{
    const auto cfg = CacheHierarchyConfig::cascade_lake();
    CacheHierarchy seq(cfg), rnd(cfg);
    for (std::uint64_t i = 0; i < 4096; ++i)
        seq.load(i * 8); // sequential doubles: 8 per line
    for (std::uint64_t i = 0; i < 4096; ++i)
        rnd.load((i * 2654435761ULL) % (1ULL << 26));
    EXPECT_LT(seq.metrics().avg_load_latency(),
              rnd.metrics().avg_load_latency());
}

TEST(Cache, BoundFractionsReflectServiceLevel)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);
    for (int i = 0; i < 99; ++i)
        c.load(0);
    const auto& m = c.metrics();
    // 1 DRAM access (100 cycles) + 99 L1 hits (99 cycles).
    EXPECT_NEAR(m.bound_fraction(0), 99.0 / 199.0, 1e-12);
    EXPECT_NEAR(m.bound_fraction(m.level_hits.size() - 1), 100.0 / 199.0,
                1e-12);
}

TEST(Cache, MissRatioPerLevel)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);
    c.load(0);
    const auto& m = c.metrics();
    EXPECT_DOUBLE_EQ(m.miss_ratio(0), 0.5); // 1 of 2 L1 lookups missed
}

TEST(Cache, FlushForcesMisses)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(0);
    c.flush();
    c.reset_stats();
    c.load(0);
    EXPECT_EQ(c.metrics().level_hits.back(), 1u); // DRAM again
}

TEST(Cache, WideLoadTouchesTwoLines)
{
    CacheHierarchy c(CacheHierarchyConfig::tiny_test());
    c.load(60, 8); // crosses the 64B boundary
    EXPECT_EQ(c.metrics().loads, 2u);
}

TEST(Cache, CascadeLakeGeometry)
{
    const auto cfg = CacheHierarchyConfig::cascade_lake();
    ASSERT_EQ(cfg.levels.size(), 3u);
    EXPECT_EQ(cfg.levels[0].size_bytes, 32u * 1024);
    EXPECT_EQ(cfg.levels[1].size_bytes, 1024u * 1024);
    EXPECT_EQ(cfg.levels[2].name, "L3");
}

TEST(Tracer, SamplingReducesTrafficProportionally)
{
    CacheTracer full(CacheHierarchyConfig::tiny_test(), 1);
    CacheTracer sampled(CacheHierarchyConfig::tiny_test(), 4);
    int x = 0;
    for (int i = 0; i < 1000; ++i) {
        full.load(&x, 4);
        sampled.load(&x, 4);
    }
    EXPECT_EQ(full.metrics().loads, 1000u);
    EXPECT_EQ(sampled.metrics().loads, 250u);
}

TEST(Cache, PrefetchTurnsSequentialMissesIntoHits)
{
    auto cfg = CacheHierarchyConfig::tiny_test();
    CacheHierarchy plain(cfg);
    cfg.next_line_prefetch = true;
    CacheHierarchy pref(cfg);
    for (std::uint64_t i = 0; i < 64; ++i) {
        plain.load(i * 64);
        pref.load(i * 64);
    }
    // Streaming access: the prefetcher converts most demand misses.
    EXPECT_LT(pref.metrics().level_hits.back(),
              plain.metrics().level_hits.back());
    EXPECT_GT(pref.prefetches(), 0u);
    EXPECT_LT(pref.metrics().avg_load_latency(),
              plain.metrics().avg_load_latency());
}

TEST(Cache, PrefetchDoesNotChangeLoadCount)
{
    auto cfg = CacheHierarchyConfig::tiny_test();
    cfg.next_line_prefetch = true;
    CacheHierarchy c(cfg);
    for (std::uint64_t i = 0; i < 32; ++i)
        c.load(i * 64);
    EXPECT_EQ(c.metrics().loads, 32u); // prefetches are not loads
}

TEST(Cache, PrefetchOffByDefault)
{
    CacheHierarchy c(CacheHierarchyConfig::cascade_lake());
    c.load(0);
    c.load(4096);
    EXPECT_EQ(c.prefetches(), 0u);
}

TEST(Cache, BadLineSizeThrows)
{
    CacheHierarchyConfig cfg;
    cfg.line_bytes = 48; // not a power of two
    EXPECT_THROW(CacheHierarchy{cfg}, std::invalid_argument);
}

} // namespace
} // namespace graphorder
