/**
 * @file
 * Tests of the linear-arrangement gap measures (paper §II-A), anchored on
 * the worked example of the paper's Figure 2.
 */
#include <gtest/gtest.h>

#include "la/gap_measures.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace graphorder {
namespace {

using testing::cycle_graph;
using testing::figure2_graph;
using testing::figure2_permutation;
using testing::path_graph;
using testing::star_graph;

TEST(Figure2, NaturalOrderMetricsMatchPaper)
{
    const auto g = figure2_graph();
    ASSERT_EQ(g.num_vertices(), 7u);
    ASSERT_EQ(g.num_edges(), 10u);
    const auto m = compute_gap_metrics(g);
    EXPECT_DOUBLE_EQ(m.avg_gap, 3.3);       // paper: 3.3
    EXPECT_EQ(m.bandwidth, 5u);             // paper: 5
    EXPECT_NEAR(m.avg_bandwidth, 4.43, 0.005); // paper: 4.43 (= 31/7)
}

TEST(Figure2, ReorderedMetricsMatchPaper)
{
    const auto g = figure2_graph();
    const auto pi = figure2_permutation();
    ASSERT_TRUE(pi.is_valid());
    const auto m = compute_gap_metrics(g, pi);
    // Paper prints 1.7; the exact value for any graph matching the other
    // five numbers is 1.8 (see testutil.cpp).
    EXPECT_DOUBLE_EQ(m.avg_gap, 1.8);
    EXPECT_EQ(m.bandwidth, 3u);             // paper: 3
    EXPECT_NEAR(m.avg_bandwidth, 2.86, 0.005); // paper: 2.86 (= 20/7)
}

TEST(Figure2, ReorderingImprovesEveryMetric)
{
    const auto g = figure2_graph();
    const auto nat = compute_gap_metrics(g);
    const auto re = compute_gap_metrics(g, figure2_permutation());
    EXPECT_LT(re.avg_gap, nat.avg_gap);
    EXPECT_LT(re.bandwidth, nat.bandwidth);
    EXPECT_LT(re.avg_bandwidth, nat.avg_bandwidth);
    EXPECT_LT(re.log_gap, nat.log_gap);
}

TEST(GapMeasures, PathNaturalOrderIsOptimal)
{
    const auto g = path_graph(64);
    const auto m = compute_gap_metrics(g);
    EXPECT_DOUBLE_EQ(m.avg_gap, 1.0);
    EXPECT_EQ(m.bandwidth, 1u);
    // Interior vertices have bandwidth 1; so does each endpoint.
    EXPECT_DOUBLE_EQ(m.avg_bandwidth, 1.0);
    EXPECT_DOUBLE_EQ(m.log_gap, 1.0); // log2(1+1) = 1 per edge
}

TEST(GapMeasures, CycleHasOneWrapEdge)
{
    const vid_t n = 50;
    const auto g = cycle_graph(n);
    const auto m = compute_gap_metrics(g);
    EXPECT_EQ(m.bandwidth, n - 1);
    EXPECT_DOUBLE_EQ(m.total_gap, (n - 1) + (n - 1)); // n-1 unit + 1 wrap
}

TEST(GapMeasures, StarBandwidthIsLeafCount)
{
    const auto g = star_graph(30);
    const auto m = compute_gap_metrics(g);
    EXPECT_EQ(m.bandwidth, 30u);
    // Center bandwidth 30, leaf i bandwidth i.
    double expect = 30;
    for (vid_t i = 1; i <= 30; ++i)
        expect += i;
    EXPECT_DOUBLE_EQ(m.avg_bandwidth, expect / 31.0);
}

TEST(GapMeasures, EdgeGapIsSymmetric)
{
    const auto pi = figure2_permutation();
    EXPECT_EQ(edge_gap(pi, 0, 4), edge_gap(pi, 4, 0));
    EXPECT_EQ(edge_gap(pi, 0, 4), 3u); // |5 - 2| (1-based ranks)
}

TEST(GapMeasures, GapProfileHasOneEntryPerEdge)
{
    const auto g = figure2_graph();
    const auto prof = gap_profile(g, Permutation::identity(7));
    EXPECT_EQ(prof.size(), g.num_edges());
    double sum = 0;
    for (double x : prof)
        sum += x;
    EXPECT_DOUBLE_EQ(sum / prof.size(), 3.3);
}

TEST(GapMeasures, VertexBandwidthsMatchDefinition)
{
    const auto g = figure2_graph();
    const auto pi = Permutation::identity(7);
    const auto bw = vertex_bandwidths(g, pi);
    ASSERT_EQ(bw.size(), 7u);
    for (vid_t v = 0; v < 7; ++v) {
        vid_t expect = 0;
        for (vid_t u : g.neighbors(v))
            expect = std::max(expect, edge_gap(pi, v, u));
        EXPECT_EQ(bw[v], expect) << "vertex " << v;
    }
}

TEST(GapMeasures, IdentityAndShiftInvariance)
{
    // Reversing the order leaves all gap statistics unchanged.
    const auto g = figure2_graph();
    std::vector<vid_t> rev(7);
    for (vid_t v = 0; v < 7; ++v)
        rev[v] = 6 - v;
    const auto m1 = compute_gap_metrics(g);
    const auto m2 = compute_gap_metrics(g, Permutation::from_ranks(rev));
    EXPECT_DOUBLE_EQ(m1.avg_gap, m2.avg_gap);
    EXPECT_EQ(m1.bandwidth, m2.bandwidth);
    EXPECT_DOUBLE_EQ(m1.avg_bandwidth, m2.avg_bandwidth);
}

TEST(GapMeasures, RandomPermutationWorseThanNaturalOnPath)
{
    const auto g = path_graph(256);
    Rng rng(42);
    const auto pi = random_permutation(256, rng);
    const auto nat = compute_gap_metrics(g);
    const auto rnd = compute_gap_metrics(g, pi);
    EXPECT_GT(rnd.avg_gap, nat.avg_gap * 10);
    EXPECT_GT(rnd.bandwidth, nat.bandwidth);
}

TEST(GapDistribution, SummaryAndHistogramAgree)
{
    const auto g = testing::grid_graph(16, 16);
    Rng rng(7);
    const auto pi = random_permutation(g.num_vertices(), rng);
    const auto d = gap_distribution(g, pi);
    EXPECT_EQ(d.summary.count, g.num_edges());
    EXPECT_EQ(d.histogram.total(), g.num_edges());
    EXPECT_GE(d.summary.max, d.summary.median);
    EXPECT_GE(d.summary.median, d.summary.min);
}

TEST(GapMeasures, EnvelopeOfPathIsRowCount)
{
    // Path under natural order: every vertex except the first has its
    // leftmost neighbor exactly one position earlier.
    const auto g = path_graph(10);
    const auto m = compute_gap_metrics(g);
    EXPECT_DOUBLE_EQ(m.envelope, 9.0);
}

TEST(GapMeasures, EnvelopeBoundedByNTimesBandwidth)
{
    const auto g = testing::grid_graph(8, 8);
    Rng rng(3);
    const auto pi = random_permutation(g.num_vertices(), rng);
    const auto m = compute_gap_metrics(g, pi);
    EXPECT_LE(m.envelope,
              double(g.num_vertices()) * double(m.bandwidth) + 1e-9);
    EXPECT_GE(m.envelope, double(m.bandwidth)); // the max row is in there
}

TEST(GapMeasures, RcmShrinksEnvelopeVsRandom)
{
    const auto g = testing::grid_graph(12, 12);
    Rng rng(5);
    const auto rnd = compute_gap_metrics(
        g, random_permutation(g.num_vertices(), rng));
    // Natural row-major order of a grid is already near-optimal.
    const auto nat = compute_gap_metrics(g);
    EXPECT_LT(nat.envelope, rnd.envelope / 2);
}

TEST(GapMeasures, EmptyGraphIsAllZero)
{
    const Csr g(std::vector<eid_t>{0}, {});
    const auto m = compute_gap_metrics(g);
    EXPECT_DOUBLE_EQ(m.avg_gap, 0.0);
    EXPECT_EQ(m.bandwidth, 0u);
}

TEST(GapMeasures, MismatchedPermutationThrows)
{
    const auto g = figure2_graph();
    EXPECT_THROW(compute_gap_metrics(g, Permutation::identity(6)),
                 std::invalid_argument);
}

} // namespace
} // namespace graphorder
