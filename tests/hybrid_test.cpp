/**
 * @file
 * Tests of the extension schemes: the hybrid multiscale ordering engine
 * and the CDFS relaxation of RCM.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "gen/generators.hpp"
#include "la/gap_measures.hpp"
#include "order/basic.hpp"
#include "order/cdfs.hpp"
#include "order/community_order.hpp"
#include "order/hybrid.hpp"
#include "order/rcm.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace graphorder {
namespace {

using testing::grid_graph;
using testing::path_graph;
using testing::two_cliques;

class HybridIntraSweep : public ::testing::TestWithParam<IntraScheme>
{};

TEST_P(HybridIntraSweep, ValidOnCommunityGraph)
{
    const auto g = gen_sbm(800, 4800, 10, 0.85, 3);
    HybridOptions opt;
    opt.intra = GetParam();
    const auto pi = hybrid_order(g, opt);
    ASSERT_EQ(pi.size(), g.num_vertices());
    EXPECT_TRUE(pi.is_valid());
}

TEST_P(HybridIntraSweep, CommunitiesStayContiguous)
{
    const auto g = two_cliques(15);
    HybridOptions opt;
    opt.intra = GetParam();
    const auto pi = hybrid_order(g, opt);
    ASSERT_TRUE(pi.is_valid());
    // Each clique's ranks form a contiguous block.
    for (vid_t base : {vid_t{0}, vid_t{15}}) {
        vid_t lo = 30, hi = 0;
        for (vid_t v = base; v < base + 15; ++v) {
            lo = std::min(lo, pi.rank(v));
            hi = std::max(hi, pi.rank(v));
        }
        EXPECT_EQ(hi - lo, 14u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllIntra, HybridIntraSweep,
    ::testing::Values(IntraScheme::Natural, IntraScheme::Degree,
                      IntraScheme::Rcm, IntraScheme::Bfs),
    [](const ::testing::TestParamInfo<IntraScheme>& info) {
        return intra_scheme_name(info.param);
    });

TEST(Hybrid, NaturalIntraMatchesGrappoloRcmGapProfile)
{
    // With the natural intra scheme the hybrid engine *is* grappolo-rcm
    // modulo Louvain tie-breaking; their avg gaps should be very close.
    const auto g = gen_sbm(1000, 6000, 12, 0.9, 5);
    HybridOptions opt;
    opt.intra = IntraScheme::Natural;
    const double hybrid_gap =
        compute_gap_metrics(g, hybrid_order(g, opt)).avg_gap;
    const double gr_gap =
        compute_gap_metrics(g, grappolo_rcm_order(g)).avg_gap;
    EXPECT_NEAR(hybrid_gap, gr_gap, 0.5 * std::max(hybrid_gap, gr_gap));
}

TEST(Hybrid, RcmIntraImprovesIntraCommunityBandwidth)
{
    // On a graph whose communities are meshes (local structure), RCM
    // inside communities should beat natural-inside on avg bandwidth.
    GraphBuilder b(4 * 100);
    // Four 10x10 grid communities chained by single edges; ids scrambled
    // inside each community to destroy natural locality.
    Rng rng(9);
    for (vid_t c = 0; c < 4; ++c) {
        std::vector<vid_t> ids(100);
        std::iota(ids.begin(), ids.end(), vid_t{0});
        shuffle(ids.begin(), ids.end(), rng);
        auto at = [&](vid_t x, vid_t y) {
            return c * 100 + ids[y * 10 + x];
        };
        for (vid_t y = 0; y < 10; ++y)
            for (vid_t x = 0; x < 10; ++x) {
                if (x + 1 < 10)
                    b.add_edge(at(x, y), at(x + 1, y));
                if (y + 1 < 10)
                    b.add_edge(at(x, y), at(x, y + 1));
            }
        if (c + 1 < 4)
            b.add_edge(c * 100, (c + 1) * 100);
    }
    const auto g = b.finalize();

    HybridOptions nat, rcm;
    nat.intra = IntraScheme::Natural;
    rcm.intra = IntraScheme::Rcm;
    const auto m_nat = compute_gap_metrics(g, hybrid_order(g, nat));
    const auto m_rcm = compute_gap_metrics(g, hybrid_order(g, rcm));
    EXPECT_LT(m_rcm.avg_bandwidth, m_nat.avg_bandwidth);
}

TEST(Cdfs, ValidAndReversed)
{
    const auto g = grid_graph(10, 10);
    const auto pi = cdfs_order(g);
    EXPECT_TRUE(pi.is_valid());
}

TEST(Cdfs, PathBandwidthOptimal)
{
    const auto g = path_graph(40);
    EXPECT_EQ(compute_gap_metrics(g, cdfs_order(g)).bandwidth, 1u);
}

TEST(Cdfs, RcmDegreeSortHelpsOrEquals)
{
    // CDFS drops RCM's per-level degree sort; on skew-degree graphs RCM
    // should be at least as good on bandwidth for most seeds.  We assert
    // the weaker property that both massively beat random and land in
    // the same ballpark.
    const auto g = gen_rmat(1024, 5000, 0.57, 0.19, 0.19, 7);
    const auto bw_rcm =
        static_cast<double>(compute_gap_metrics(g, rcm_order(g)).bandwidth);
    const auto bw_cdfs = static_cast<double>(
        compute_gap_metrics(g, cdfs_order(g)).bandwidth);
    const auto bw_rnd = static_cast<double>(
        compute_gap_metrics(g, random_order(g, 3)).bandwidth);
    EXPECT_LT(bw_cdfs, bw_rnd);
    EXPECT_LT(bw_rcm, bw_rnd);
    EXPECT_LT(bw_cdfs, 3.0 * bw_rcm);
}

TEST(Cdfs, IntraLevelOrderDiffersFromRcm)
{
    // The two schemes agree on levels but not (generally) within levels.
    const auto g = gen_rmat(512, 2500, 0.57, 0.19, 0.19, 11);
    EXPECT_NE(cdfs_order(g).ranks(), rcm_order(g).ranks());
}

} // namespace
} // namespace graphorder
