/**
 * @file
 * Determinism tests for the parallel pipeline: every deterministic
 * kernel must produce *bit-identical* output at 1, 2 and 8 threads
 * (oversubscription included — the contract depends only on the
 * block decomposition, never on the granted team size).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/builder.hpp"
#include "graph/traversal.hpp"
#include "la/gap_measures.hpp"
#include "order/basic.hpp"
#include "order/boba.hpp"
#include "order/dbg.hpp"
#include "order/gorder.hpp"
#include "order/hub.hpp"
#include "order/partition_order.hpp"
#include "order/rabbit.hpp"
#include "order/rcm.hpp"
#include "order/scheme.hpp"
#include "order/slashburn.hpp"
#include "testutil.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphorder {
namespace {

using testing::figure2_graph;
using testing::grid_graph;
using testing::star_graph;
using testing::two_cliques;

constexpr int kSweep[] = {1, 2, 8};

/** RAII thread-override guard so a failing test can't leak a setting. */
struct ThreadGuard
{
    explicit ThreadGuard(int n) { set_default_threads(n); }
    ~ThreadGuard() { set_default_threads(0); }
};

/** Random edge set on @p n vertices (deterministic in @p seed). */
std::vector<Edge>
random_edges(vid_t n, std::size_t m, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
        const auto u = static_cast<vid_t>(rng.next_below(n));
        const auto v = static_cast<vid_t>(rng.next_below(n));
        edges.push_back({u, v, 1.0 + static_cast<weight_t>(i % 7)});
    }
    return edges;
}

bool
same_csr(const Csr& a, const Csr& b)
{
    return a.offsets() == b.offsets() && a.adjacency() == b.adjacency()
        && a.weights() == b.weights();
}

TEST(ParallelDeterminism, CsrBuildThreadSweep)
{
    const vid_t n = 1500;
    const auto edges = random_edges(n, 9000, 7);
    ThreadGuard g1(1);
    const auto base = build_csr(n, edges);
    ASSERT_TRUE(base.check_invariants());
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_TRUE(same_csr(base, build_csr(n, edges)))
            << "threads=" << t;
    }
}

TEST(ParallelDeterminism, WeightedCsrBuildKeepsEarliestWeight)
{
    GraphBuilder b(3);
    b.add_edge(0, 1, 5.0);
    b.add_edge(1, 0, 9.0); // duplicate, later weight must lose
    b.add_edge(1, 2, 2.0);
    for (int t : kSweep) {
        ThreadGuard gt(t);
        const auto g = b.finalize(/*weighted=*/true);
        ASSERT_EQ(g.num_edges(), 2u);
        EXPECT_DOUBLE_EQ(g.neighbor_weights(0)[0], 5.0);
        EXPECT_DOUBLE_EQ(g.neighbor_weights(1)[0], 5.0);
    }
}

TEST(ParallelDeterminism, TransposeOfSymmetricGraphIsIdentity)
{
    const vid_t n = 800;
    const auto g = build_csr(n, random_edges(n, 4000, 11));
    for (int t : kSweep) {
        ThreadGuard gt(t);
        const auto gt_csr = transpose_csr(g);
        EXPECT_TRUE(same_csr(g, gt_csr)) << "threads=" << t;
    }
}

TEST(ParallelDeterminism, ApplyPermutationThreadSweep)
{
    const vid_t n = 1200;
    const auto g = build_csr(n, random_edges(n, 7000, 3));
    Rng rng(99);
    const auto pi = random_permutation(n, rng);
    ThreadGuard g1(1);
    const auto base = apply_permutation(g, pi);
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_TRUE(same_csr(base, apply_permutation(g, pi)))
            << "threads=" << t;
    }
}

TEST(ParallelDeterminism, DegreeSortMatchesStableSortReference)
{
    const vid_t n = 2000;
    const auto g = build_csr(n, random_edges(n, 10000, 5));
    // Serial reference: stable sort by descending degree.
    std::vector<vid_t> ref(n);
    std::iota(ref.begin(), ref.end(), vid_t{0});
    std::stable_sort(ref.begin(), ref.end(), [&](vid_t a, vid_t b) {
        return g.degree(a) > g.degree(b);
    });
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_EQ(degree_sort_order(g, true).order(), ref)
            << "threads=" << t;
    }
    // Ascending flavor too.
    std::stable_sort(ref.begin(), ref.end(), [&](vid_t a, vid_t b) {
        return g.degree(a) < g.degree(b);
    });
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_EQ(degree_sort_order(g, false).order(), ref)
            << "threads=" << t;
    }
}

TEST(ParallelDeterminism, HubSortThreadSweep)
{
    const vid_t n = 1500;
    const auto g = build_csr(n, random_edges(n, 8000, 17));
    ThreadGuard g1(1);
    const auto base = hub_sort_order(g).ranks();
    const auto base_cluster = hub_cluster_order(g).ranks();
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_EQ(hub_sort_order(g).ranks(), base) << "threads=" << t;
        EXPECT_EQ(hub_cluster_order(g).ranks(), base_cluster)
            << "threads=" << t;
    }
}

TEST(ParallelDeterminism, DbgThreadSweep)
{
    const vid_t n = 1500;
    const auto g = build_csr(n, random_edges(n, 8000, 19));
    ThreadGuard g1(1);
    const auto base = dbg_order(g).ranks();
    ASSERT_TRUE(dbg_order(g).is_valid());
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_EQ(dbg_order(g).ranks(), base) << "threads=" << t;
    }
}

TEST(ParallelDeterminism, PartitionOrderMatchesStableSortReference)
{
    const vid_t n = 1000;
    Rng rng(23);
    std::vector<vid_t> part(n);
    for (auto& p : part)
        p = static_cast<vid_t>(rng.next_below(17));
    std::vector<vid_t> ref(n);
    std::iota(ref.begin(), ref.end(), vid_t{0});
    std::stable_sort(ref.begin(), ref.end(),
                     [&](vid_t a, vid_t b) { return part[a] < part[b]; });
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_EQ(order_from_partition(part, n).order(), ref)
            << "threads=" << t;
    }
}

TEST(ParallelDeterminism, ParallelBfsMatchesSerialDistances)
{
    for (const auto& [name, g] : testing::test_menagerie()) {
        if (g.num_vertices() == 0)
            continue;
        const auto serial = bfs(g, 0);
        ThreadGuard g1(1);
        const auto base = parallel_bfs(g, 0);
        EXPECT_EQ(base.distance, serial.distance) << name;
        EXPECT_EQ(base.max_distance, serial.max_distance) << name;
        for (int t : kSweep) {
            ThreadGuard gt(t);
            const auto r = parallel_bfs(g, 0);
            EXPECT_EQ(r.distance, serial.distance)
                << name << " threads=" << t;
            EXPECT_EQ(r.visit_order, base.visit_order)
                << name << " threads=" << t;
        }
    }
}

TEST(ParallelDeterminism, BobaValidDeterministicIsolatedLast)
{
    // Graph with isolated vertices: build over n but only wire a prefix.
    const vid_t n = 1200;
    auto edges = random_edges(1000, 5000, 29);
    const auto g = build_csr(n, edges);
    ThreadGuard g1(1);
    const auto base = boba_order(g);
    ASSERT_TRUE(base.is_valid());
    // Isolated vertices occupy the tail ranks in ascending id order.
    std::vector<vid_t> isolated;
    for (vid_t v = 0; v < n; ++v)
        if (g.degree(v) == 0)
            isolated.push_back(v);
    ASSERT_FALSE(isolated.empty());
    const auto order = base.order();
    const std::size_t tail = order.size() - isolated.size();
    EXPECT_TRUE(std::equal(isolated.begin(), isolated.end(),
                           order.begin() + tail));
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_EQ(boba_order(g).ranks(), base.ranks())
            << "threads=" << t;
    }
}

TEST(ParallelDeterminism, BobaFirstAppearanceSemantics)
{
    // star: adjacency stream is 1..n (from center), then 0 repeated.
    const auto g = star_graph(5);
    const auto order = boba_order(g).order();
    const std::vector<vid_t> expect{1, 2, 3, 4, 5, 0};
    EXPECT_EQ(order, expect);
}

TEST(ParallelDeterminism, GapMetricsBitIdenticalAcrossThreads)
{
    const vid_t n = 3000; // > 1 chunk (grain 2048)
    const auto g = build_csr(n, random_edges(n, 15000, 41));
    Rng rng(7);
    const auto pi = random_permutation(n, rng);
    ThreadGuard g1(1);
    const auto base = compute_gap_metrics(g, pi);
    const auto base_profile = gap_profile(g, pi);
    const auto base_bw = vertex_bandwidths(g, pi);
    for (int t : kSweep) {
        ThreadGuard gt(t);
        const auto m = compute_gap_metrics(g, pi);
        // Exact equality on purpose: the chunked reduction must be
        // bit-identical, not merely close.
        EXPECT_EQ(m.avg_gap, base.avg_gap) << "threads=" << t;
        EXPECT_EQ(m.bandwidth, base.bandwidth) << "threads=" << t;
        EXPECT_EQ(m.avg_bandwidth, base.avg_bandwidth)
            << "threads=" << t;
        EXPECT_EQ(m.log_gap, base.log_gap) << "threads=" << t;
        EXPECT_EQ(m.total_gap, base.total_gap) << "threads=" << t;
        EXPECT_EQ(m.envelope, base.envelope) << "threads=" << t;
        EXPECT_EQ(gap_profile(g, pi), base_profile) << "threads=" << t;
        EXPECT_EQ(vertex_bandwidths(g, pi), base_bw) << "threads=" << t;
    }
}

TEST(ParallelDeterminism, DeterministicSchemesStableAcrossThreads)
{
    const auto g = two_cliques(12);
    const std::uint64_t seed = 2020;
    for (const auto& s : all_schemes()) {
        if (!s.deterministic)
            continue;
        ThreadGuard g1(1);
        const auto base = s.run(g, seed).ranks();
        ThreadGuard g4(4);
        EXPECT_EQ(s.run(g, seed).ranks(), base) << s.name;
    }
}

TEST(ParallelDeterminism, BobaRegisteredInRegistry)
{
    const auto& s = scheme_by_name("boba");
    EXPECT_EQ(s.category, SchemeCategory::Extension);
    EXPECT_TRUE(s.scalable);
    EXPECT_TRUE(s.deterministic);
    const auto g = grid_graph(6, 6);
    EXPECT_TRUE(s.run(g, 1).is_valid());
}

TEST(ParallelPrimitives, ExclusivePrefixSumThreadSweep)
{
    std::vector<std::uint64_t> ref(100000);
    Rng rng(3);
    for (auto& x : ref)
        x = rng.next_below(1000);
    std::vector<std::uint64_t> expect(ref.size());
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        expect[i] = run;
        run += ref[i];
    }
    for (int t : kSweep) {
        ThreadGuard gt(t);
        auto v = ref;
        EXPECT_EQ(exclusive_prefix_sum(v), run) << "threads=" << t;
        EXPECT_EQ(v, expect) << "threads=" << t;
    }
}

TEST(ParallelPrimitives, StableOrderByKeyMatchesStableSort)
{
    const vid_t n = 50000;
    Rng rng(13);
    std::vector<vid_t> key(n);
    for (auto& k : key)
        k = static_cast<vid_t>(rng.next_below(97));
    std::vector<vid_t> ref(n);
    std::iota(ref.begin(), ref.end(), vid_t{0});
    std::stable_sort(ref.begin(), ref.end(),
                     [&](vid_t a, vid_t b) { return key[a] < key[b]; });
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_EQ(stable_order_by_key<vid_t>(
                      n, 97, [&](vid_t v) { return key[v]; }),
                  ref)
            << "threads=" << t;
    }
}

TEST(ParallelPrimitives, ThreadKnobResolution)
{
    set_default_threads(3);
    EXPECT_EQ(default_threads(), 3);
    EXPECT_EQ(resolve_threads(0), 3);
    EXPECT_EQ(resolve_threads(5), 5);
    set_default_threads(0);
    EXPECT_GE(default_threads(), 1);
}

TEST(ParallelPrimitives, ConcatBlocksPreservesBlockOrder)
{
    const std::vector<std::vector<vid_t>> bufs{
        {3, 1}, {}, {4, 1, 5}, {9}};
    const std::vector<vid_t> expect{3, 1, 4, 1, 5, 9};
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_EQ(concat_blocks(bufs), expect) << "threads=" << t;
    }
    EXPECT_TRUE(concat_blocks(std::vector<std::vector<vid_t>>{})
                    .empty());
}

// ------------------------------------------------- heavyweight schemes
// The CI sanitizer job re-runs every test whose name contains
// "Heavyweight" at OMP_NUM_THREADS 1 and 4 — keep that token in any
// test added below (see .github/workflows/ci.yml).

/** The four heavyweight schemes by their library entry points. */
const std::vector<
    std::pair<std::string, Permutation (*)(const Csr&)>>&
heavyweight_runners()
{
    static const std::vector<
        std::pair<std::string, Permutation (*)(const Csr&)>>
        runners{
            {"gorder",
             +[](const Csr& g) { return gorder_order(g); }},
            {"slashburn",
             +[](const Csr& g) { return slashburn_order(g); }},
            {"rcm", +[](const Csr& g) { return rcm_order(g); }},
            {"rabbit", +[](const Csr& g) { return rabbit_order(g); }},
        };
    return runners;
}

/** Disconnected graph: a path, a clique, a star and isolated tails —
 *  the shapes that stress SlashBurn's CC rounds and RCM's per-component
 *  restart. */
Csr
disconnected_graph()
{
    GraphBuilder b(64); // vertices 50..63 stay isolated
    for (vid_t v = 0; v + 1 < 16; ++v)
        b.add_edge(v, v + 1); // path on 0..15
    for (vid_t u = 20; u < 28; ++u)
        for (vid_t v = u + 1; v < 28; ++v)
            b.add_edge(u, v); // clique on 20..27
    for (vid_t v = 31; v < 44; ++v)
        b.add_edge(30, v); // star centered at 30
    return b.finalize();
}

TEST(HeavyweightDeterminism, ThreadSweepBitIdenticalOnMenagerie)
{
    for (const auto& [gname, g] : testing::test_menagerie()) {
        for (const auto& [sname, run] : heavyweight_runners()) {
            ThreadGuard g1(1);
            const auto base = run(g);
            ASSERT_TRUE(base.is_valid()) << gname << "/" << sname;
            for (int t : kSweep) {
                ThreadGuard gt(t);
                EXPECT_EQ(run(g).ranks(), base.ranks())
                    << gname << "/" << sname << " threads=" << t;
            }
        }
    }
}

TEST(HeavyweightDeterminism, ThreadSweepBitIdenticalOnDisconnected)
{
    const auto g = disconnected_graph();
    for (const auto& [sname, run] : heavyweight_runners()) {
        ThreadGuard g1(1);
        const auto base = run(g);
        ASSERT_TRUE(base.is_valid()) << sname;
        for (int t : kSweep) {
            ThreadGuard gt(t);
            EXPECT_EQ(run(g).ranks(), base.ranks())
                << sname << " threads=" << t;
        }
    }
}

TEST(HeavyweightDeterminism, GorderForcedBlocksThreadSweep)
{
    // The menagerie graphs are below the auto-block threshold, so they
    // only cover Gorder's serial path; force 4 blocks on a graph large
    // enough that every block holds real work, so the partition +
    // per-block greedy + concat pipeline runs under a real team.
    const vid_t n = 3000;
    const auto g = build_csr(n, random_edges(n, 15000, 83));
    GorderOptions opt;
    opt.blocks = 4;
    ThreadGuard g1(1);
    const auto base = gorder_order(g, opt);
    ASSERT_TRUE(base.is_valid());
    for (int t : kSweep) {
        ThreadGuard gt(t);
        EXPECT_EQ(gorder_order(g, opt).ranks(), base.ranks())
            << "threads=" << t;
    }
    // The block count (not the thread count) is the semantic knob:
    // a different count is a different — still valid — permutation
    // contract, while the same count is bit-stable at any team size.
    opt.blocks = 1;
    ThreadGuard g8(8);
    EXPECT_TRUE(gorder_order(g, opt).is_valid());
}

TEST(HeavyweightDeterminism, RegistryFlagsCoverTheParallelTier)
{
    for (const char* name : {"gorder", "slashburn", "rcm", "rabbit"}) {
        const auto& s = scheme_by_name(name);
        EXPECT_TRUE(s.parallel) << name;
        EXPECT_TRUE(s.deterministic) << name;
    }
    // The Louvain-backed schemes are parallel but *not* deterministic;
    // the serial baselines are neither.
    EXPECT_TRUE(scheme_by_name("grappolo").parallel);
    EXPECT_FALSE(scheme_by_name("grappolo").deterministic);
    EXPECT_FALSE(scheme_by_name("natural").parallel);
    EXPECT_FALSE(scheme_by_name("metis-32").parallel);
    // Every parallel-flagged scheme that also claims determinism must
    // honor it on a real graph: flag combinations are contract, not
    // documentation.
    const auto g = testing::two_cliques(10);
    for (const auto& s : all_schemes()) {
        if (!s.parallel || !s.deterministic)
            continue;
        ThreadGuard g1(1);
        const auto base = s.run(g, 2020).ranks();
        ThreadGuard g8(8);
        EXPECT_EQ(s.run(g, 2020).ranks(), base) << s.name;
    }
}

} // namespace
} // namespace graphorder
