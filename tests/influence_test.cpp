/**
 * @file
 * Tests of the IMM influence-maximization implementation: RRR sampling
 * into the flat arena, the coverage index, greedy/CELF selection and
 * the end-to-end martingale loop.  The CELF-vs-greedy equivalence
 * sweep lives in selection_test.cpp.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/generators.hpp"
#include "influence/imm.hpp"
#include "influence/rrr.hpp"
#include "memsim/cache.hpp"
#include "testutil.hpp"

namespace graphorder {
namespace {

using testing::path_graph;
using testing::star_graph;
using testing::two_cliques;

TEST(Rrr, DeterministicGivenSeed)
{
    const auto g = gen_rmat(256, 1500, 0.57, 0.19, 0.19, 1);
    ImmOptions opt;
    opt.seed = 99;
    RrrArena a, b;
    sample_rrr_sets(g, opt, 100, a);
    sample_rrr_sets(g, opt, 100, b);
    EXPECT_EQ(a, b);
}

TEST(Rrr, SetsAreNonEmptyAndDeduplicated)
{
    const auto g = two_cliques(8);
    ImmOptions opt;
    RrrArena arena;
    sample_rrr_sets(g, opt, 200, arena);
    ASSERT_EQ(arena.num_sets(), 200u);
    for (std::uint64_t s = 0; s < arena.num_sets(); ++s) {
        ASSERT_GT(arena.set_size(s), 0u);
        std::set<vid_t> uniq(arena.set_begin(s), arena.set_end(s));
        EXPECT_EQ(uniq.size(), arena.set_size(s));
    }
}

TEST(Rrr, ProbabilityOneReachesWholeComponent)
{
    const auto g = path_graph(20);
    ImmOptions opt;
    opt.edge_probability = 1.0;
    RrrArena arena;
    sample_rrr_sets(g, opt, 20, arena);
    for (std::uint64_t s = 0; s < arena.num_sets(); ++s)
        EXPECT_EQ(arena.set_size(s), 20u); // the whole path
}

TEST(Rrr, ProbabilityZeroIsJustTheRoot)
{
    const auto g = path_graph(20);
    ImmOptions opt;
    opt.edge_probability = 0.0;
    RrrArena arena;
    sample_rrr_sets(g, opt, 50, arena);
    for (std::uint64_t s = 0; s < arena.num_sets(); ++s)
        EXPECT_EQ(arena.set_size(s), 1u);
}

TEST(Rrr, LinearThresholdWalksWithoutRepeats)
{
    const auto g = gen_sbm(300, 1800, 6, 0.85, 2);
    ImmOptions opt;
    opt.model = DiffusionModel::LinearThreshold;
    RrrArena arena;
    sample_rrr_sets(g, opt, 100, arena);
    for (std::uint64_t s = 0; s < arena.num_sets(); ++s) {
        std::set<vid_t> uniq(arena.set_begin(s), arena.set_end(s));
        EXPECT_EQ(uniq.size(), arena.set_size(s));
        EXPECT_LE(arena.set_size(s), g.num_vertices());
    }
}

TEST(Arena, AppendAcrossRoundsEqualsOneShot)
{
    // The martingale loop grows the arena in rounds with consecutive
    // stream offsets; the result must equal a single-call arena.
    const auto g = gen_rmat(256, 1500, 0.57, 0.19, 0.19, 5);
    ImmOptions opt;
    RrrArena incremental, oneshot;
    sample_rrr_sets(g, opt, 60, incremental);
    sample_rrr_sets(g, opt, 40, incremental, 60);
    sample_rrr_sets(g, opt, 100, oneshot);
    EXPECT_EQ(incremental, oneshot);
}

TEST(Arena, RoundTripThroughNestedSets)
{
    const std::vector<std::vector<vid_t>> sets = {
        {0, 1, 2}, {3}, {}, {2, 4}};
    const auto arena = RrrArena::from_sets(sets);
    ASSERT_EQ(arena.num_sets(), 4u);
    EXPECT_EQ(arena.num_entries(), 6u);
    EXPECT_EQ(arena.set_size(2), 0u);
    EXPECT_EQ(arena.as_sets(), sets);
}

TEST(Index, CountsMatchOccurrencesAndSetIdsAscend)
{
    const auto g = gen_rmat(300, 2000, 0.57, 0.19, 0.19, 7);
    ImmOptions opt;
    RrrArena arena;
    sample_rrr_sets(g, opt, 150, arena);
    CoverageIndex index;
    index.reset(g.num_vertices());
    index.extend(arena);
    ASSERT_EQ(index.num_indexed_sets(), arena.num_sets());

    std::vector<std::uint32_t> expect(g.num_vertices(), 0);
    const auto sets = arena.as_sets();
    for (const auto& s : sets)
        for (vid_t v : s)
            ++expect[v];
    EXPECT_EQ(index.counts(), expect);

    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        std::vector<std::uint32_t> ids;
        index.for_each_set(v, [&](const std::uint32_t& s) {
            ids.push_back(s);
        });
        EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end())) << v;
        EXPECT_EQ(ids.size(), expect[v]) << v;
        for (std::uint32_t s : ids)
            EXPECT_TRUE(std::count(sets[s].begin(), sets[s].end(), v));
    }
}

TEST(Index, IncrementalExtendMatchesFullRebuild)
{
    const auto g = gen_sbm(200, 1200, 4, 0.85, 3);
    ImmOptions opt;
    RrrArena arena;
    sample_rrr_sets(g, opt, 80, arena);

    CoverageIndex incremental;
    incremental.reset(g.num_vertices());
    incremental.extend(arena);
    sample_rrr_sets(g, opt, 70, arena, 80);
    incremental.extend(arena);
    EXPECT_EQ(incremental.num_segments(), 2u);

    CoverageIndex full;
    full.reset(g.num_vertices());
    full.extend(arena);
    EXPECT_EQ(incremental.counts(), full.counts());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        std::vector<std::uint32_t> a, b;
        incremental.for_each_set(v, [&](const std::uint32_t& s) {
            a.push_back(s);
        });
        full.for_each_set(v, [&](const std::uint32_t& s) {
            b.push_back(s);
        });
        EXPECT_EQ(a, b) << v;
    }
}

TEST(Greedy, CoversCraftedSets)
{
    // Sets: {0,1}, {0,2}, {3}.  k=1 must pick 0 (covers 2 of 3);
    // k=2 must pick 0 then 3.
    std::vector<std::vector<vid_t>> sets = {{0, 1}, {0, 2}, {3}};
    double frac = 0;
    auto seeds = greedy_max_coverage(4, sets, 1, &frac);
    ASSERT_EQ(seeds.size(), 1u);
    EXPECT_EQ(seeds[0], 0u);
    EXPECT_NEAR(frac, 2.0 / 3.0, 1e-12);

    seeds = greedy_max_coverage(4, sets, 2, &frac);
    ASSERT_EQ(seeds.size(), 2u);
    EXPECT_EQ(seeds[0], 0u);
    EXPECT_EQ(seeds[1], 3u);
    EXPECT_DOUBLE_EQ(frac, 1.0);
}

TEST(Greedy, MarginalGainsNotRawCounts)
{
    // Vertex 1 appears in 3 sets but all also contain 0 plus extras;
    // after picking 0 the best *marginal* pick is 4 (covers {4},{4,5}).
    std::vector<std::vector<vid_t>> sets = {
        {0, 1}, {0, 1}, {0, 1}, {0}, {4}, {4, 5}};
    auto seeds = greedy_max_coverage(6, sets, 2, nullptr);
    EXPECT_EQ(seeds[0], 0u);
    EXPECT_EQ(seeds[1], 4u);
}

TEST(Greedy, StopsWhenCoverageExhausted)
{
    // Regression: the seed implementation kept argmax-ing over all-zero
    // residual counts once every set was covered and emitted vertex 0
    // over and over.  k exceeding the distinct coverage must yield each
    // useful seed once, then stop.
    std::vector<std::vector<vid_t>> sets = {{0}, {0}, {1}};
    double frac = 0;
    auto seeds = greedy_max_coverage(4, sets, 4, &frac);
    EXPECT_EQ(seeds, (std::vector<vid_t>{0, 1}));
    EXPECT_DOUBLE_EQ(frac, 1.0);

    // All-empty sets: nothing coverable, nothing selected.
    std::vector<std::vector<vid_t>> empty_sets = {{}, {}};
    seeds = greedy_max_coverage(4, empty_sets, 2, &frac);
    EXPECT_TRUE(seeds.empty());
    EXPECT_DOUBLE_EQ(frac, 0.0);
}

TEST(Imm, StarCenterIsTheSeed)
{
    const auto g = star_graph(100);
    ImmOptions opt;
    opt.num_seeds = 1;
    opt.edge_probability = 0.3;
    const auto res = imm(g, opt);
    ASSERT_EQ(res.seeds.size(), 1u);
    EXPECT_EQ(res.seeds[0], 0u);
}

TEST(Imm, TwoCliquesGetOneSeedEach)
{
    const auto g = two_cliques(20);
    ImmOptions opt;
    opt.num_seeds = 2;
    opt.edge_probability = 0.3;
    const auto res = imm(g, opt);
    ASSERT_EQ(res.seeds.size(), 2u);
    const bool in0 = res.seeds[0] < 20;
    const bool in1 = res.seeds[1] < 20;
    EXPECT_NE(in0, in1) << "both seeds landed in one clique";
}

TEST(Imm, StatsPopulated)
{
    const auto g = gen_rmat(512, 3000, 0.57, 0.19, 0.19, 4);
    ImmOptions opt;
    opt.num_seeds = 5;
    const auto res = imm(g, opt);
    EXPECT_EQ(res.seeds.size(), 5u);
    std::set<vid_t> uniq(res.seeds.begin(), res.seeds.end());
    EXPECT_EQ(uniq.size(), 5u);
    EXPECT_GT(res.stats.num_rrr_sets, 0u);
    EXPECT_GT(res.stats.total_visited, res.stats.num_rrr_sets);
    EXPECT_GT(res.stats.sampling_time_s, 0.0);
    EXPECT_GT(res.stats.sampling_throughput(), 0.0);
    EXPECT_GT(res.stats.estimated_spread, 0.0);
    EXPECT_LE(res.stats.estimated_spread,
              static_cast<double>(g.num_vertices()));
}

TEST(Imm, SeedsBeatRandomSeedsInSimulation)
{
    const auto g = gen_rmat(1024, 8000, 0.6, 0.18, 0.18, 6);
    ImmOptions opt;
    opt.num_seeds = 8;
    opt.edge_probability = 0.1;
    const auto res = imm(g, opt);

    const double spread_imm =
        simulate_ic_spread(g, res.seeds, 0.1, 200, 77);
    Rng rng(88);
    std::vector<vid_t> random_seeds;
    std::set<vid_t> used;
    while (random_seeds.size() < 8) {
        const auto v =
            static_cast<vid_t>(rng.next_below(g.num_vertices()));
        if (used.insert(v).second)
            random_seeds.push_back(v);
    }
    const double spread_rnd =
        simulate_ic_spread(g, random_seeds, 0.1, 200, 77);
    EXPECT_GT(spread_imm, spread_rnd);
}

TEST(Imm, EstimatedSpreadTracksSimulation)
{
    const auto g = gen_sbm(600, 3600, 8, 0.85, 8);
    ImmOptions opt;
    opt.num_seeds = 4;
    opt.edge_probability = 0.15;
    const auto res = imm(g, opt);
    const double sim =
        simulate_ic_spread(g, res.seeds, 0.15, 400, 123);
    EXPECT_NEAR(res.stats.estimated_spread, sim,
                0.5 * std::max(sim, res.stats.estimated_spread));
}

TEST(Imm, TracerSeesSamplingLoads)
{
    const auto g = gen_rmat(256, 1500, 0.57, 0.19, 0.19, 9);
    CacheTracer tracer(CacheHierarchyConfig::tiny_test());
    ImmOptions opt;
    opt.tracer = &tracer;
    opt.num_seeds = 2;
    opt.max_samples = 2000; // keep the traced run small
    const auto res = imm(g, opt);
    EXPECT_GT(tracer.metrics().loads, 1000u);
    EXPECT_FALSE(res.seeds.empty());
}

TEST(Simulate, SpreadBoundsAndMonotonicity)
{
    const auto g = two_cliques(15);
    const double s1 = simulate_ic_spread(g, {0}, 0.3, 300, 5);
    EXPECT_GE(s1, 1.0);
    EXPECT_LE(s1, 30.0);
    const double s2 = simulate_ic_spread(g, {0, 15}, 0.3, 300, 5);
    EXPECT_GT(s2, s1); // a second clique seed must help
    const double s_hi = simulate_ic_spread(g, {0}, 0.9, 300, 5);
    EXPECT_GT(s_hi, s1); // higher probability spreads further
}

} // namespace
} // namespace graphorder
