/**
 * @file
 * Tests of the IMM influence-maximization implementation.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/generators.hpp"
#include "influence/imm.hpp"
#include "memsim/cache.hpp"
#include "testutil.hpp"

namespace graphorder {
namespace {

using testing::path_graph;
using testing::star_graph;
using testing::two_cliques;

TEST(Rrr, DeterministicGivenSeed)
{
    const auto g = gen_rmat(256, 1500, 0.57, 0.19, 0.19, 1);
    ImmOptions opt;
    opt.seed = 99;
    std::vector<std::vector<vid_t>> a, b;
    sample_rrr_sets(g, opt, 100, a);
    sample_rrr_sets(g, opt, 100, b);
    EXPECT_EQ(a, b);
}

TEST(Rrr, SetsAreNonEmptyAndDeduplicated)
{
    const auto g = two_cliques(8);
    ImmOptions opt;
    std::vector<std::vector<vid_t>> sets;
    sample_rrr_sets(g, opt, 200, sets);
    ASSERT_EQ(sets.size(), 200u);
    for (const auto& s : sets) {
        ASSERT_FALSE(s.empty());
        std::set<vid_t> uniq(s.begin(), s.end());
        EXPECT_EQ(uniq.size(), s.size());
    }
}

TEST(Rrr, ProbabilityOneReachesWholeComponent)
{
    const auto g = path_graph(20);
    ImmOptions opt;
    opt.edge_probability = 1.0;
    std::vector<std::vector<vid_t>> sets;
    sample_rrr_sets(g, opt, 20, sets);
    for (const auto& s : sets)
        EXPECT_EQ(s.size(), 20u); // the whole path
}

TEST(Rrr, ProbabilityZeroIsJustTheRoot)
{
    const auto g = path_graph(20);
    ImmOptions opt;
    opt.edge_probability = 0.0;
    std::vector<std::vector<vid_t>> sets;
    sample_rrr_sets(g, opt, 50, sets);
    for (const auto& s : sets)
        EXPECT_EQ(s.size(), 1u);
}

TEST(Rrr, LinearThresholdWalksWithoutRepeats)
{
    const auto g = gen_sbm(300, 1800, 6, 0.85, 2);
    ImmOptions opt;
    opt.model = DiffusionModel::LinearThreshold;
    std::vector<std::vector<vid_t>> sets;
    sample_rrr_sets(g, opt, 100, sets);
    for (const auto& s : sets) {
        std::set<vid_t> uniq(s.begin(), s.end());
        EXPECT_EQ(uniq.size(), s.size());
        EXPECT_LE(s.size(), g.num_vertices());
    }
}

TEST(Greedy, CoversCraftedSets)
{
    // Sets: {0,1}, {0,2}, {3}.  k=1 must pick 0 (covers 2 of 3);
    // k=2 must pick 0 then 3.
    std::vector<std::vector<vid_t>> sets = {{0, 1}, {0, 2}, {3}};
    double frac = 0;
    auto seeds = greedy_max_coverage(4, sets, 1, &frac);
    ASSERT_EQ(seeds.size(), 1u);
    EXPECT_EQ(seeds[0], 0u);
    EXPECT_NEAR(frac, 2.0 / 3.0, 1e-12);

    seeds = greedy_max_coverage(4, sets, 2, &frac);
    ASSERT_EQ(seeds.size(), 2u);
    EXPECT_EQ(seeds[0], 0u);
    EXPECT_EQ(seeds[1], 3u);
    EXPECT_DOUBLE_EQ(frac, 1.0);
}

TEST(Greedy, MarginalGainsNotRawCounts)
{
    // Vertex 1 appears in 3 sets but all also contain 0 plus extras;
    // after picking 0 the best *marginal* pick is 4 (covers {4},{4,5}).
    std::vector<std::vector<vid_t>> sets = {
        {0, 1}, {0, 1}, {0, 1}, {0}, {4}, {4, 5}};
    auto seeds = greedy_max_coverage(6, sets, 2, nullptr);
    EXPECT_EQ(seeds[0], 0u);
    EXPECT_EQ(seeds[1], 4u);
}

TEST(Imm, StarCenterIsTheSeed)
{
    const auto g = star_graph(100);
    ImmOptions opt;
    opt.num_seeds = 1;
    opt.edge_probability = 0.3;
    const auto res = imm(g, opt);
    ASSERT_EQ(res.seeds.size(), 1u);
    EXPECT_EQ(res.seeds[0], 0u);
}

TEST(Imm, TwoCliquesGetOneSeedEach)
{
    const auto g = two_cliques(20);
    ImmOptions opt;
    opt.num_seeds = 2;
    opt.edge_probability = 0.3;
    const auto res = imm(g, opt);
    ASSERT_EQ(res.seeds.size(), 2u);
    const bool in0 = res.seeds[0] < 20;
    const bool in1 = res.seeds[1] < 20;
    EXPECT_NE(in0, in1) << "both seeds landed in one clique";
}

TEST(Imm, StatsPopulated)
{
    const auto g = gen_rmat(512, 3000, 0.57, 0.19, 0.19, 4);
    ImmOptions opt;
    opt.num_seeds = 5;
    const auto res = imm(g, opt);
    EXPECT_EQ(res.seeds.size(), 5u);
    std::set<vid_t> uniq(res.seeds.begin(), res.seeds.end());
    EXPECT_EQ(uniq.size(), 5u);
    EXPECT_GT(res.stats.num_rrr_sets, 0u);
    EXPECT_GT(res.stats.total_visited, res.stats.num_rrr_sets);
    EXPECT_GT(res.stats.sampling_time_s, 0.0);
    EXPECT_GT(res.stats.sampling_throughput(), 0.0);
    EXPECT_GT(res.stats.estimated_spread, 0.0);
    EXPECT_LE(res.stats.estimated_spread,
              static_cast<double>(g.num_vertices()));
}

TEST(Imm, SeedsBeatRandomSeedsInSimulation)
{
    const auto g = gen_rmat(1024, 8000, 0.6, 0.18, 0.18, 6);
    ImmOptions opt;
    opt.num_seeds = 8;
    opt.edge_probability = 0.1;
    const auto res = imm(g, opt);

    const double spread_imm =
        simulate_ic_spread(g, res.seeds, 0.1, 200, 77);
    Rng rng(88);
    std::vector<vid_t> random_seeds;
    std::set<vid_t> used;
    while (random_seeds.size() < 8) {
        const auto v =
            static_cast<vid_t>(rng.next_below(g.num_vertices()));
        if (used.insert(v).second)
            random_seeds.push_back(v);
    }
    const double spread_rnd =
        simulate_ic_spread(g, random_seeds, 0.1, 200, 77);
    EXPECT_GT(spread_imm, spread_rnd);
}

TEST(Imm, EstimatedSpreadTracksSimulation)
{
    const auto g = gen_sbm(600, 3600, 8, 0.85, 8);
    ImmOptions opt;
    opt.num_seeds = 4;
    opt.edge_probability = 0.15;
    const auto res = imm(g, opt);
    const double sim =
        simulate_ic_spread(g, res.seeds, 0.15, 400, 123);
    EXPECT_NEAR(res.stats.estimated_spread, sim,
                0.5 * std::max(sim, res.stats.estimated_spread));
}

TEST(Imm, TracerSeesSamplingLoads)
{
    const auto g = gen_rmat(256, 1500, 0.57, 0.19, 0.19, 9);
    CacheTracer tracer(CacheHierarchyConfig::tiny_test());
    ImmOptions opt;
    opt.tracer = &tracer;
    opt.num_seeds = 2;
    opt.max_samples = 2000; // keep the traced run small
    const auto res = imm(g, opt);
    EXPECT_GT(tracer.metrics().loads, 1000u);
    EXPECT_FALSE(res.seeds.empty());
}

TEST(Simulate, SpreadBoundsAndMonotonicity)
{
    const auto g = two_cliques(15);
    const double s1 = simulate_ic_spread(g, {0}, 0.3, 300, 5);
    EXPECT_GE(s1, 1.0);
    EXPECT_LE(s1, 30.0);
    const double s2 = simulate_ic_spread(g, {0, 15}, 0.3, 300, 5);
    EXPECT_GT(s2, s1); // a second clique seed must help
    const double s_hi = simulate_ic_spread(g, {0}, 0.9, 300, 5);
    EXPECT_GT(s_hi, s1); // higher probability spreads further
}

} // namespace
} // namespace graphorder
