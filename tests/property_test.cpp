/**
 * @file
 * Property-based sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P): invariants
 * that must hold for *every* scheme on *every* graph family, for every
 * generator at multiple sizes, and for the measurement machinery itself.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "community/louvain.hpp"
#include "gen/generators.hpp"
#include "la/gap_measures.hpp"
#include "memsim/cache.hpp"
#include "order/scheme.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace graphorder {
namespace {

// --------------------------------------------------------------------
// Scheme x generator-family sweep: structural invariants of orderings
// and the gap measures on realistic (not hand-crafted) graphs.
// --------------------------------------------------------------------

struct FamilyCase
{
    std::string scheme;
    std::string family;
};

Csr
family_graph(const std::string& family)
{
    if (family == "road")
        return gen_road(800, 1000, 1);
    if (family == "mesh")
        return gen_mesh(800, 0, 2);
    if (family == "social")
        return gen_rmat(1024, 6000, 0.57, 0.19, 0.19, 3);
    if (family == "community")
        return gen_sbm(900, 5400, 10, 0.85, 4);
    if (family == "smallworld")
        return gen_watts_strogatz(800, 6, 0.1, 5);
    return gen_erdos_renyi(800, 3200, 6);
}

class SchemeFamilyProperty : public ::testing::TestWithParam<FamilyCase>
{
  protected:
    void SetUp() override
    {
        graph_ = family_graph(GetParam().family);
        scheme_ = &scheme_by_name(GetParam().scheme);
    }
    Csr graph_;
    const OrderingScheme* scheme_ = nullptr;
};

TEST_P(SchemeFamilyProperty, PermutationIsBijective)
{
    const auto pi = scheme_->run(graph_, 7);
    ASSERT_EQ(pi.size(), graph_.num_vertices());
    EXPECT_TRUE(pi.is_valid());
}

TEST_P(SchemeFamilyProperty, DeterministicForFixedSeed)
{
    const auto a = scheme_->run(graph_, 7);
    const auto b = scheme_->run(graph_, 7);
    EXPECT_EQ(a.ranks(), b.ranks());
}

TEST_P(SchemeFamilyProperty, GapMetricsSatisfyDefinitionalBounds)
{
    const auto pi = scheme_->run(graph_, 7);
    const auto m = compute_gap_metrics(graph_, pi);
    const auto n = graph_.num_vertices();
    // Every edge's gap is in [1, n-1].
    EXPECT_GE(m.avg_gap, 1.0);
    EXPECT_LE(m.bandwidth, n - 1);
    EXPECT_GE(static_cast<double>(m.bandwidth), m.avg_gap);
    // Mean vertex bandwidth is bounded by the graph bandwidth.
    EXPECT_LE(m.avg_bandwidth, static_cast<double>(m.bandwidth));
    // total = avg * |E|.
    EXPECT_NEAR(m.total_gap,
                m.avg_gap * static_cast<double>(graph_.num_edges()),
                1e-6 * m.total_gap + 1e-9);
    // log-gap <= log2(1 + max gap).
    EXPECT_LE(m.log_gap, std::log2(1.0 + m.bandwidth) + 1e-12);
}

TEST_P(SchemeFamilyProperty, ApplyingPermutationPreservesIsomorphism)
{
    const auto pi = scheme_->run(graph_, 7);
    const auto h = apply_permutation(graph_, pi);
    EXPECT_TRUE(h.check_invariants());
    EXPECT_TRUE(testing::same_degree_profile(graph_, h));
    // Spot-check 50 edges map across.
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        const auto v = static_cast<vid_t>(
            rng.next_below(graph_.num_vertices()));
        if (graph_.degree(v) == 0)
            continue;
        const auto nbrs = graph_.neighbors(v);
        const vid_t u = nbrs[rng.next_below(nbrs.size())];
        EXPECT_TRUE(h.has_edge(pi.rank(v), pi.rank(u)));
    }
}

std::vector<FamilyCase>
family_cases()
{
    std::vector<FamilyCase> cases;
    for (const auto& s : all_schemes())
        for (const char* fam :
             {"road", "mesh", "social", "community", "smallworld", "er"})
            cases.push_back({s.name, fam});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchemeFamilyProperty, ::testing::ValuesIn(family_cases()),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
        std::string n = info.param.scheme + "_" + info.param.family;
        std::replace(n.begin(), n.end(), '-', '_');
        return n;
    });

// --------------------------------------------------------------------
// Generator sweep across sizes: CSR structural invariants.
// --------------------------------------------------------------------

struct GenCase
{
    std::string generator;
    vid_t n;
};

Csr
build_gen(const GenCase& c)
{
    if (c.generator == "road")
        return gen_road(c.n, c.n + c.n / 4, 11);
    if (c.generator == "mesh")
        return gen_mesh(c.n, 0, 12);
    if (c.generator == "rmat")
        return gen_rmat(c.n, 5ULL * c.n, 0.57, 0.19, 0.19, 13);
    if (c.generator == "ba")
        return gen_barabasi_albert(c.n, 3, 14);
    if (c.generator == "ws")
        return gen_watts_strogatz(c.n, 6, 0.05, 15);
    if (c.generator == "er")
        return gen_erdos_renyi(c.n, 4ULL * c.n, 16);
    if (c.generator == "sbm")
        return gen_sbm(c.n, 6ULL * c.n, 8, 0.85, 17);
    return gen_hub_forest(c.n, 2ULL * c.n, 4, 18);
}

class GeneratorProperty : public ::testing::TestWithParam<GenCase>
{};

TEST_P(GeneratorProperty, CsrInvariantsHold)
{
    const auto g = build_gen(GetParam());
    EXPECT_EQ(g.num_vertices(), GetParam().n);
    EXPECT_TRUE(g.check_invariants());
}

TEST_P(GeneratorProperty, SimpleAndSymmetric)
{
    const auto g = build_gen(GetParam());
    eid_t arcs = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        vid_t prev = kNoVertex;
        for (vid_t u : g.neighbors(v)) {
            EXPECT_NE(u, v);                    // no self loops
            EXPECT_NE(u, prev);                 // no parallel edges
            prev = u;
            EXPECT_TRUE(g.has_edge(u, v));      // symmetry
        }
        arcs += g.degree(v);
    }
    EXPECT_EQ(arcs, g.num_arcs());
    EXPECT_EQ(arcs % 2, 0u);
}

std::vector<GenCase>
gen_cases()
{
    std::vector<GenCase> cases;
    for (const char* g :
         {"road", "mesh", "rmat", "ba", "ws", "er", "sbm", "hub"})
        for (vid_t n : {64u, 500u, 2000u})
            cases.push_back({g, n});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorProperty, ::testing::ValuesIn(gen_cases()),
    [](const ::testing::TestParamInfo<GenCase>& info) {
        return info.param.generator + "_"
            + std::to_string(info.param.n);
    });

// --------------------------------------------------------------------
// Cache-hierarchy property: growing any level never hurts latency.
// --------------------------------------------------------------------

class CacheMonotonicity : public ::testing::TestWithParam<int>
{};

TEST_P(CacheMonotonicity, BiggerCacheNeverSlowerOnFixedTrace)
{
    const int divisor = GetParam();
    auto small = CacheHierarchyConfig::cascade_lake_scaled(divisor * 2);
    auto big = CacheHierarchyConfig::cascade_lake_scaled(divisor);
    CacheHierarchy cs(small), cb(big);
    Rng rng(21);
    // Mixed trace: a hot working set + a cold random stream.
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t addr = rng.next_bool(0.7)
            ? rng.next_below(1ULL << 14)
            : rng.next_below(1ULL << 26);
        cs.load(addr);
        cb.load(addr);
    }
    EXPECT_LE(cb.metrics().avg_load_latency(),
              cs.metrics().avg_load_latency() * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Divisors, CacheMonotonicity,
                         ::testing::Values(4, 16, 64, 256));

// --------------------------------------------------------------------
// Louvain sweep over the menagerie: output validity everywhere.
// --------------------------------------------------------------------

class LouvainProperty : public ::testing::TestWithParam<int>
{};

TEST_P(LouvainProperty, OutputValidOnMenagerie)
{
    const auto menagerie = testing::test_menagerie();
    const auto& ng = menagerie[static_cast<std::size_t>(GetParam())];
    const auto res = louvain(ng.graph);
    ASSERT_EQ(res.community.size(), ng.graph.num_vertices());
    std::set<vid_t> ids(res.community.begin(), res.community.end());
    EXPECT_EQ(ids.size(), res.num_communities) << ng.name;
    EXPECT_GE(res.modularity, -0.5) << ng.name;
    EXPECT_LE(res.modularity, 1.0) << ng.name;
    // Reported modularity must match an independent recomputation.
    EXPECT_NEAR(res.modularity, modularity(ng.graph, res.community),
                1e-9)
        << ng.name;
}

INSTANTIATE_TEST_SUITE_P(Menagerie, LouvainProperty,
                         ::testing::Range(0, 7));

} // namespace
} // namespace graphorder
