/**
 * @file
 * Reorder-service tests: line-protocol parsing (plus a 400-trial
 * mutation fuzz against a *live* service), the bounded priority queue,
 * the retry policy's deterministic jitter, the LRU permutation cache,
 * single-flight coalescing, admission control / load shedding, the
 * degradation ladder, and a concurrent chaos sweep over the
 * `service.*` / `order.*` fault sites using the sustained (`N+`, `*`)
 * injection modes.  Run under TSan in CI (service-tsan job).
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "order/scheme.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/retry.hpp"
#include "service/server.hpp"
#include "testutil.hpp"
#include "util/faultpoint.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace graphorder {
namespace {

using service::CacheEntry;
using service::CacheKey;
using service::JobBase;
using service::JobQueue;
using service::LineReader;
using service::OrderOutcome;
using service::parse_request;
using service::parse_response;
using service::PermutationCache;
using service::ReorderService;
using service::Request;
using service::RetryPolicy;
using service::ServiceOptions;
using service::Verb;
using testing::grid_graph;
using testing::two_cliques;

/** Clears armed faults on scope exit so tests cannot leak arms. */
struct FaultGuard
{
    ~FaultGuard() { clear_faults(); }
};

std::uint64_t
counter_value(const char* name)
{
    return obs::MetricsRegistry::instance().counter(name).value();
}

// ------------------------------------------------------------- protocol

TEST(Protocol, ParsesFullOrderRequest)
{
    const Request r = parse_request(
        "ORDER graph=web scheme=rcm seed=7 deadline_ms=250 "
        "priority=high id=t1 no_cache=1 output=/tmp/x");
    EXPECT_EQ(r.verb, Verb::kOrder);
    EXPECT_EQ(r.graph, "web");
    EXPECT_EQ(r.scheme, "rcm");
    EXPECT_EQ(r.seed, 7u);
    EXPECT_DOUBLE_EQ(r.deadline_ms, 250);
    EXPECT_EQ(r.priority, 0);
    EXPECT_EQ(r.id, "t1");
    EXPECT_TRUE(r.no_cache);
    EXPECT_EQ(r.output, "/tmp/x");
}

TEST(Protocol, OrderDefaults)
{
    const Request r = parse_request("ORDER graph=g scheme=degree");
    EXPECT_EQ(r.seed, 42u);
    EXPECT_DOUBLE_EQ(r.deadline_ms, 0);
    EXPECT_EQ(r.priority, -1); // derive from the scheme's cost class
    EXPECT_FALSE(r.no_cache);
}

TEST(Protocol, ControlVerbsAndSchemas)
{
    EXPECT_EQ(parse_request("PING").verb, Verb::kPing);
    EXPECT_EQ(parse_request("STATS id=s").id, "s");
    EXPECT_EQ(parse_request("QUIT").verb, Verb::kQuit);
    EXPECT_EQ(parse_request("SHUTDOWN").verb, Verb::kShutdown);
    const Request l =
        parse_request("LOAD graph=g path=/tmp/a.edges format=edges");
    EXPECT_EQ(l.verb, Verb::kLoad);
    EXPECT_EQ(l.path, "/tmp/a.edges");
    const Request g = parse_request("GEN graph=g dataset=pgp scale=2");
    EXPECT_DOUBLE_EQ(g.scale, 2.0);
    EXPECT_EQ(parse_request("DROP graph=g").graph, "g");
}

TEST(Protocol, RejectsMalformedRequests)
{
    const char* kBad[] = {
        "",                                  // empty
        "FROB graph=g",                      // unknown verb
        "ORDER graph=g",                     // missing scheme
        "ORDER scheme=rcm",                  // missing graph
        "ORDER graph=g scheme=rcm seed=abc", // bad number
        "ORDER graph=g scheme=rcm seed=-1",  // negative
        "ORDER graph=g scheme=rcm priority=urgent",
        "ORDER graph=g scheme=rcm no_cache=yes",
        "ORDER graph=g scheme=rcm graph=h",  // duplicate field
        "ORDER graph=g scheme=rcm bogus=1",  // unknown field
        "ORDER graph=g scheme=rcm =v",       // empty key
        "ORDER graph=g scheme=rcm naked",    // not key=value
        "LOAD graph=g path=x format=xml",    // bad enum
        "GEN graph=g dataset=pgp scale=0.5", // scale < 1
        "ORDER graph=g scheme=rcm id=\x01",  // control byte
    };
    for (const char* line : kBad)
        EXPECT_THROW(parse_request(line), GraphorderError)
            << "accepted: '" << line << "'";
}

TEST(Protocol, RejectsOversizedFields)
{
    const std::string big(service::kMaxValueBytes + 1, 'a');
    EXPECT_THROW(parse_request("ORDER graph=" + big + " scheme=rcm"),
                 GraphorderError);
    std::string many = "ORDER graph=g scheme=rcm";
    for (std::size_t i = 0; i <= service::kMaxFields; ++i)
        many += " id" + std::to_string(i) + "=x";
    EXPECT_THROW(parse_request(many), GraphorderError);
}

TEST(Protocol, OutcomeRoundTripsThroughResponse)
{
    OrderOutcome o;
    o.id = "t9";
    o.scheme_used = "rcm";
    o.perm_fnv = 0xdeadbeefcafef00dULL;
    o.n = 1234;
    o.cached = true;
    o.degraded = true;
    o.attempts = 3;
    const auto resp = parse_response(service::format_outcome(o));
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.get("id", ""), "t9");
    EXPECT_EQ(resp.get("scheme", ""), "rcm");
    EXPECT_EQ(resp.get("perm_fnv", ""), "0xdeadbeefcafef00d");
    EXPECT_EQ(resp.get("cached", ""), "1");
    EXPECT_EQ(resp.get("degraded", ""), "1");
    EXPECT_EQ(resp.get("attempts", ""), "3");
}

TEST(Protocol, ErrMessageRunsToEndOfLine)
{
    Status st(StatusCode::Overloaded, "queue full (64 queued)");
    st.with_context("while serving tenant a");
    const auto resp = parse_response(service::format_err("", st));
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, StatusCode::Overloaded);
    EXPECT_EQ(resp.get("id", ""), "-"); // empty id becomes "-"
    // Spaces in the message survive: msg is the final field by
    // contract and runs to end of line.
    EXPECT_NE(resp.msg.find("queue full (64 queued)"),
              std::string::npos);
    EXPECT_NE(resp.msg.find("while serving tenant a"),
              std::string::npos);
}

TEST(Protocol, ResponseParsesNewStatusCodes)
{
    EXPECT_EQ(parse_response("ERR id=- code=unavailable msg=x").code,
              StatusCode::Unavailable);
    EXPECT_EQ(parse_response("ERR id=- code=overloaded msg=x").code,
              StatusCode::Overloaded);
    // Unknown labels from a newer server degrade to Internal.
    EXPECT_EQ(parse_response("ERR id=- code=sharded msg=x").code,
              StatusCode::Internal);
    EXPECT_THROW(parse_response("HELLO world"), GraphorderError);
}

TEST(Protocol, LineReaderFramesAndResyncs)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string oversized(service::kMaxLineBytes + 100, 'x');
    const std::string payload =
        "first\r\nsecond\n" + oversized + "\nthird\nunterminated";
    std::thread writer([&] {
        (void)!::write(fds[1], payload.data(), payload.size());
        ::close(fds[1]);
    });
    writer.join(); // payload fits the socket buffer; write completes
    LineReader reader(fds[0]);
    std::string line;
    ASSERT_EQ(reader.next(line), LineReader::Result::kLine);
    EXPECT_EQ(line, "first\r"); // '\r' stripped by parse, not framing
    ASSERT_EQ(reader.next(line), LineReader::Result::kLine);
    EXPECT_EQ(line, "second");
    ASSERT_EQ(reader.next(line), LineReader::Result::kOversized);
    // Resynchronized at the newline: the next frame is intact.
    ASSERT_EQ(reader.next(line), LineReader::Result::kLine);
    EXPECT_EQ(line, "third");
    ASSERT_EQ(reader.next(line), LineReader::Result::kLine);
    EXPECT_EQ(line, "unterminated");
    EXPECT_EQ(reader.next(line), LineReader::Result::kEof);
    ::close(fds[0]);
}

// ---------------------------------------------------------------- retry

TEST(Retry, OnlyTransientCodesAreRetryable)
{
    EXPECT_TRUE(RetryPolicy::retryable(StatusCode::Internal));
    EXPECT_TRUE(RetryPolicy::retryable(StatusCode::BudgetExceeded));
    EXPECT_FALSE(RetryPolicy::retryable(StatusCode::InvalidInput));
    EXPECT_FALSE(RetryPolicy::retryable(StatusCode::Cancelled));
    EXPECT_FALSE(
        RetryPolicy::retryable(StatusCode::InvariantViolation));
    EXPECT_FALSE(RetryPolicy::retryable(StatusCode::Overloaded));
    EXPECT_FALSE(RetryPolicy::retryable(StatusCode::Unavailable));
}

TEST(Retry, BackoffIsDeterministicBoundedAndGrows)
{
    RetryPolicy p; // base 5, x2, cap 250
    EXPECT_DOUBLE_EQ(p.delay_ms(1, 7), 0); // first attempt never waits
    const double d2 = p.delay_ms(2, 7);
    const double d3 = p.delay_ms(3, 7);
    // Same (policy, attempt, job) triple -> same jitter, replayable.
    EXPECT_DOUBLE_EQ(p.delay_ms(2, 7), d2);
    EXPECT_DOUBLE_EQ(p.delay_ms(3, 7), d3);
    // Different jobs decorrelate.
    EXPECT_NE(p.delay_ms(2, 8), d2);
    // Equal jitter: delay in [full/2, full) with full = base*mult^k.
    EXPECT_GE(d2, 2.5);
    EXPECT_LT(d2, 5.0);
    EXPECT_GE(d3, 5.0);
    EXPECT_LT(d3, 10.0);
    // The cap bounds arbitrarily late attempts.
    EXPECT_LT(p.delay_ms(40, 7), 250.0);
    EXPECT_GE(p.delay_ms(40, 7), 125.0);
}

// ---------------------------------------------------------------- queue

std::shared_ptr<JobBase>
make_job(int lane, double deadline_ms = 0)
{
    auto j = std::make_shared<JobBase>();
    j->lane = lane;
    j->enqueued = std::chrono::steady_clock::now();
    if (deadline_ms > 0) {
        j->has_deadline = true;
        j->deadline =
            j->enqueued
            + std::chrono::microseconds(
                static_cast<long>(deadline_ms * 1000));
    }
    return j;
}

TEST(Queue, BoundedAndRejectsWhenFull)
{
    JobQueue q(2);
    std::vector<std::shared_ptr<JobBase>> shed;
    EXPECT_EQ(q.push(make_job(1), shed), JobQueue::Push::kOk);
    EXPECT_EQ(q.push(make_job(1), shed), JobQueue::Push::kOk);
    EXPECT_EQ(q.push(make_job(1), shed), JobQueue::Push::kFull);
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_TRUE(shed.empty());
}

TEST(Queue, ShedsExpiredJobsToAdmitNewOnes)
{
    JobQueue q(2);
    std::vector<std::shared_ptr<JobBase>> shed;
    auto expiring = make_job(1, 0.01); // 10 us
    EXPECT_EQ(q.push(expiring, shed), JobQueue::Push::kOk);
    EXPECT_EQ(q.push(make_job(1), shed), JobQueue::Push::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(q.push(make_job(1), shed), JobQueue::Push::kOk);
    ASSERT_EQ(shed.size(), 1u); // the expired job made room
    EXPECT_EQ(shed[0], expiring);
    EXPECT_EQ(q.depth(), 2u);
}

TEST(Queue, HighLaneIsServedMoreOftenButLowIsNotStarved)
{
    JobQueue q(64);
    std::vector<std::shared_ptr<JobBase>> shed;
    for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(q.push(make_job(0), shed), JobQueue::Push::kOk);
        ASSERT_EQ(q.push(make_job(2), shed), JobQueue::Push::kOk);
    }
    // Schedule {0,0,0,1,0,1,2}: with lane 1 empty its slots fall
    // through to the next lower-priority lane (lane 2), so lane 2 is
    // first served at schedule position 3 — high gets a 3:1 head
    // start, low is never starved.
    int first_low = -1;
    int high_before_low = 0;
    for (int i = 0; i < 8; ++i) {
        auto j = q.pop();
        ASSERT_NE(j, nullptr);
        if (j->lane == 2) {
            first_low = i;
            break;
        }
        ++high_before_low;
    }
    ASSERT_NE(first_low, -1) << "low lane starved";
    EXPECT_EQ(high_before_low, 3); // 3 high slots before low's slot
}

TEST(Queue, StopDrainsAndUnblocksPoppers)
{
    JobQueue q(8);
    std::vector<std::shared_ptr<JobBase>> shed;
    ASSERT_EQ(q.push(make_job(1), shed), JobQueue::Push::kOk);
    ASSERT_EQ(q.push(make_job(0), shed), JobQueue::Push::kOk);
    std::thread popper([&] {
        while (q.pop() != nullptr) {
        }
    });
    q.stop();
    popper.join(); // returns once stopped and empty
    EXPECT_EQ(q.push(make_job(1), shed), JobQueue::Push::kStopped);
    EXPECT_EQ(q.drain().size() + q.depth(), 0u);
}

// ---------------------------------------------------------------- cache

TEST(Cache, LruEvictsOldestAndPromotesOnLookup)
{
    PermutationCache cache(2);
    auto perm = std::make_shared<const Permutation>(
        Permutation::from_ranks({0, 1, 2}));
    const CacheKey a{1, "rcm", "seed=42"};
    const CacheKey b{1, "degree", "seed=42"};
    const CacheKey c{2, "rcm", "seed=42"};
    cache.insert(a, {perm, "rcm", 11});
    cache.insert(b, {perm, "degree", 22});
    CacheEntry e;
    ASSERT_TRUE(cache.lookup(a, e)); // promote a over b
    EXPECT_EQ(e.perm_fnv, 11u);
    cache.insert(c, {perm, "rcm", 33}); // evicts b (LRU), not a
    EXPECT_TRUE(cache.lookup(a, e));
    EXPECT_FALSE(cache.lookup(b, e));
    EXPECT_TRUE(cache.lookup(c, e));
    EXPECT_EQ(cache.size(), 2u);
}

TEST(Cache, InvalidateByFingerprint)
{
    PermutationCache cache(8);
    auto perm = std::make_shared<const Permutation>(
        Permutation::from_ranks({0, 1}));
    cache.insert({1, "rcm", "seed=1"}, {perm, "rcm", 1});
    cache.insert({1, "degree", "seed=1"}, {perm, "degree", 2});
    cache.insert({2, "rcm", "seed=1"}, {perm, "rcm", 3});
    EXPECT_EQ(cache.invalidate_fingerprint(1), 2u);
    EXPECT_EQ(cache.size(), 1u);
    CacheEntry e;
    EXPECT_TRUE(cache.lookup({2, "rcm", "seed=1"}, e));
}

TEST(Cache, ZeroCapacityDisables)
{
    PermutationCache cache(0);
    auto perm = std::make_shared<const Permutation>(
        Permutation::from_ranks({0}));
    cache.insert({1, "rcm", "seed=1"}, {perm, "rcm", 1});
    CacheEntry e;
    EXPECT_FALSE(cache.lookup({1, "rcm", "seed=1"}, e));
}

// ------------------------------------------------------------- service

Request
order_request(const std::string& graph, const std::string& scheme,
              std::uint64_t seed = 42)
{
    Request r;
    r.verb = Verb::kOrder;
    r.graph = graph;
    r.scheme = scheme;
    r.seed = seed;
    return r;
}

TEST(Service, OrderMatchesDirectSchemeRun)
{
    ReorderService svc;
    const Csr g = grid_graph(12, 12);
    ASSERT_TRUE(svc.add_graph("g", Csr(g)).is_ok());
    const auto o = svc.order(order_request("g", "rcm"));
    ASSERT_TRUE(o.status.is_ok()) << o.status.to_string();
    const Permutation direct = scheme_by_name("rcm").run(g, 42);
    EXPECT_EQ(o.perm_fnv, service::permutation_fnv(direct));
    EXPECT_EQ(o.n, g.num_vertices());
    EXPECT_FALSE(o.cached);
    EXPECT_FALSE(o.degraded);
    EXPECT_EQ(o.attempts, 1);
}

TEST(Service, SecondIdenticalRequestIsACacheHit)
{
    ReorderService svc;
    ASSERT_TRUE(svc.add_graph("g", two_cliques(20)).is_ok());
    const auto first = svc.order(order_request("g", "degree"));
    ASSERT_TRUE(first.status.is_ok());
    const auto second = svc.order(order_request("g", "degree"));
    ASSERT_TRUE(second.status.is_ok());
    EXPECT_TRUE(second.cached);
    EXPECT_EQ(second.perm_fnv, first.perm_fnv);
    // Different seed is a different key for seed-sensitive requests.
    const auto third = svc.order(order_request("g", "degree", 43));
    EXPECT_FALSE(third.cached);
}

TEST(Service, NoCacheBypassesCacheAndCoalescing)
{
    ReorderService svc;
    ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());
    Request req = order_request("g", "degree");
    req.no_cache = true;
    const auto a = svc.order(req);
    const auto b = svc.order(req);
    ASSERT_TRUE(a.status.is_ok());
    ASSERT_TRUE(b.status.is_ok());
    EXPECT_FALSE(a.cached);
    EXPECT_FALSE(b.cached);
    // Nothing was inserted: a normal request still misses.
    const auto c = svc.order(order_request("g", "degree"));
    EXPECT_FALSE(c.cached);
}

TEST(Service, UnknownGraphAndSchemeAreInvalidInput)
{
    ReorderService svc;
    EXPECT_EQ(svc.order(order_request("nope", "rcm")).status.code(),
              StatusCode::InvalidInput);
    ASSERT_TRUE(svc.add_graph("g", two_cliques(8)).is_ok());
    EXPECT_EQ(svc.order(order_request("g", "nope")).status.code(),
              StatusCode::InvalidInput);
}

TEST(Service, ReloadInvalidatesTheOldGraphsCacheEntries)
{
    ReorderService svc;
    ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());
    ASSERT_TRUE(svc.order(order_request("g", "degree")).status.is_ok());
    // Re-register under the same name with a different structure: the
    // old fingerprint's entries are reclaimed and the next request
    // recomputes against the new graph.
    ASSERT_TRUE(svc.add_graph("g", grid_graph(6, 6)).is_ok());
    const auto o = svc.order(order_request("g", "degree"));
    ASSERT_TRUE(o.status.is_ok());
    EXPECT_FALSE(o.cached);
    EXPECT_EQ(o.n, 36u);
}

TEST(Service, SingleFlightCoalescesConcurrentIdenticalRequests)
{
    ServiceOptions opt;
    opt.workers = 2;
    ReorderService svc(opt);
    ASSERT_TRUE(svc.add_graph("g", grid_graph(24, 24)).is_ok());

    const auto misses0 = counter_value("service/cache_misses");
    const auto hits0 = counter_value("service/cache_hits");
    const auto coalesced0 = counter_value("service/coalesced");

    constexpr int kN = 8;
    std::vector<std::thread> threads;
    std::atomic<int> ok{0};
    std::atomic<std::uint64_t> fnv{0};
    for (int i = 0; i < kN; ++i)
        threads.emplace_back([&] {
            const auto o = svc.order(order_request("g", "rcm"));
            if (o.status.is_ok()) {
                ++ok;
                fnv.store(o.perm_fnv);
            }
        });
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(ok.load(), kN);
    // Exactly one computation; everyone else rode it (coalesced) or
    // hit the cache after it finished.  The split between those two is
    // timing, their sum is not.
    EXPECT_EQ(counter_value("service/cache_misses") - misses0, 1u);
    EXPECT_EQ((counter_value("service/cache_hits") - hits0)
                  + (counter_value("service/coalesced") - coalesced0),
              static_cast<std::uint64_t>(kN - 1));
    const Permutation direct =
        scheme_by_name("rcm").run(grid_graph(24, 24), 42);
    EXPECT_EQ(fnv.load(), service::permutation_fnv(direct));
}

TEST(Service, OverloadRejectsWithBoundedQueue)
{
    ServiceOptions opt;
    opt.workers = 0; // nothing drains: admission alone is under test
    opt.queue_capacity = 1;
    opt.allow_degraded = true; // no cached fallback exists -> reject
    ReorderService svc(opt);
    ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());

    std::atomic<int> unavailable{0};
    Request filler = order_request("g", "rcm");
    filler.no_cache = true;
    svc.submit(filler, [&](const OrderOutcome& o) {
        if (o.status.code() == StatusCode::Unavailable)
            ++unavailable;
    });

    Request burst = order_request("g", "rcm", 7);
    burst.no_cache = true;
    std::atomic<int> overloaded{0};
    svc.submit(burst, [&](const OrderOutcome& o) {
        EXPECT_EQ(o.status.code(), StatusCode::Overloaded);
        ++overloaded;
    });
    EXPECT_EQ(overloaded.load(), 1);

    svc.stop(); // the queued filler is answered, not dropped
    EXPECT_EQ(unavailable.load(), 1);
    EXPECT_EQ(svc.queue_depth(), 0u);
}

TEST(Service, ShedsExpiredQueuedJobToAdmitANewOne)
{
    ServiceOptions opt;
    opt.workers = 0;
    opt.queue_capacity = 1;
    ReorderService svc(opt);
    ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());

    std::atomic<int> shed{0}, drained{0};
    Request doomed = order_request("g", "rcm");
    doomed.no_cache = true;
    doomed.deadline_ms = 1;
    svc.submit(doomed, [&](const OrderOutcome& o) {
        EXPECT_EQ(o.status.code(), StatusCode::Overloaded);
        ++shed;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    Request fresh = order_request("g", "rcm", 9);
    fresh.no_cache = true;
    svc.submit(fresh, [&](const OrderOutcome& o) {
        if (o.status.code() == StatusCode::Unavailable)
            ++drained;
    });
    // The expired job was evicted to make room: fresh was admitted.
    EXPECT_EQ(shed.load(), 1);
    svc.stop();
    EXPECT_EQ(drained.load(), 1);
}

TEST(Service, DegradedCacheAnswerUnderOverload)
{
    ServiceOptions opt;
    opt.workers = 0;
    opt.queue_capacity = 1;
    ReorderService svc(opt);
    ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());
    // Seed the fallback answer: degree's chain ends in natural.
    ASSERT_TRUE(svc.prewarm("g", "natural").is_ok());

    Request filler = order_request("g", "rcm");
    filler.no_cache = true;
    svc.submit(filler, [](const OrderOutcome&) {});

    const auto o = svc.order(order_request("g", "degree"));
    ASSERT_TRUE(o.status.is_ok()) << o.status.to_string();
    EXPECT_TRUE(o.degraded);
    EXPECT_TRUE(o.cached);
    EXPECT_TRUE(o.fell_back);
    EXPECT_EQ(o.scheme_used, "natural");
    svc.stop();
}

TEST(Service, RetryHealsAOneShotWorkerFault)
{
    FaultGuard guard;
    ReorderService svc;
    ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());
    const auto retries0 = counter_value("service/retries");
    arm_fault("service.worker.exec", 1);
    const auto o = svc.order(order_request("g", "degree"));
    ASSERT_TRUE(o.status.is_ok()) << o.status.to_string();
    EXPECT_EQ(o.attempts, 2); // failed once, healed by retry
    EXPECT_FALSE(o.degraded);
    EXPECT_EQ(counter_value("service/retries") - retries0, 1u);
}

TEST(Service, SustainedWorkerFaultDegradesToFallback)
{
    FaultGuard guard;
    ServiceOptions opt;
    ReorderService svc(opt);
    ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());
    const auto degraded0 = counter_value("service/degraded");
    apply_fault_spec("service.worker.exec:*");
    const auto o = svc.order(order_request("g", "degree"));
    clear_faults();
    ASSERT_TRUE(o.status.is_ok()) << o.status.to_string();
    EXPECT_TRUE(o.degraded);
    EXPECT_TRUE(o.fell_back);
    EXPECT_EQ(o.attempts, opt.retry.max_attempts);
    EXPECT_NE(o.scheme_used, "degree");
    EXPECT_EQ(counter_value("service/degraded") - degraded0, 1u);
}

TEST(Service, SustainedFaultWithoutDegradationSurfacesTypedError)
{
    FaultGuard guard;
    ServiceOptions opt;
    opt.allow_degraded = false;
    ReorderService svc(opt);
    ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());
    apply_fault_spec("service.worker.exec:*");
    const auto o = svc.order(order_request("g", "degree"));
    clear_faults();
    EXPECT_EQ(o.status.code(), StatusCode::Internal);
    EXPECT_NE(o.status.to_string().find("service.worker.exec"),
              std::string::npos);
}

TEST(Service, CacheFaultIsAbsorbedAsAMiss)
{
    FaultGuard guard;
    ReorderService svc;
    ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());
    const auto errors0 = counter_value("service/cache_errors");
    apply_fault_spec("service.cache.lookup:*");
    const auto o = svc.order(order_request("g", "degree"));
    clear_faults();
    ASSERT_TRUE(o.status.is_ok()) << o.status.to_string();
    EXPECT_FALSE(o.cached);
    EXPECT_GE(counter_value("service/cache_errors") - errors0, 1u);
}

TEST(Service, SubmitAfterStopIsUnavailable)
{
    ReorderService svc;
    ASSERT_TRUE(svc.add_graph("g", two_cliques(8)).is_ok());
    svc.stop();
    const auto o = svc.order(order_request("g", "degree"));
    EXPECT_EQ(o.status.code(), StatusCode::Unavailable);
}

// ------------------------------------------------------ wire end-to-end

/** A live service behind a socketpair; joins the server thread. */
struct WireHarness
{
    ReorderService svc;
    int fd = -1; ///< client end
    std::thread server;

    explicit WireHarness(ServiceOptions opt = {}) : svc(opt)
    {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
            throw std::runtime_error("socketpair failed");
        fd = fds[0];
        server = std::thread([this, sfd = fds[1]] {
            svc.serve_fd(sfd, sfd);
            ::close(sfd);
        });
    }
    ~WireHarness()
    {
        ::shutdown(fd, SHUT_WR);
        server.join();
        ::close(fd);
    }
    void send(const std::string& line)
    {
        const std::string framed = line + "\n";
        ASSERT_EQ(::write(fd, framed.data(), framed.size()),
                  static_cast<ssize_t>(framed.size()));
    }
};

TEST(Wire, OrderOverSocketpairMatchesDirectRun)
{
    WireHarness h;
    ASSERT_TRUE(h.svc.add_graph("g", grid_graph(10, 10)).is_ok());
    h.send("PING id=p1");
    h.send("ORDER graph=g scheme=rcm id=r1");
    h.send("ORDER graph=g scheme=rcm id=r2"); // hit or coalesced

    LineReader reader(h.fd);
    std::string line;
    int oks = 0;
    std::string fnv1, fnv2;
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(reader.next(line), LineReader::Result::kLine);
        const auto resp = parse_response(line);
        EXPECT_TRUE(resp.ok) << line;
        ++oks;
        if (resp.get("id", "") == "r1")
            fnv1 = resp.get("perm_fnv", "");
        if (resp.get("id", "") == "r2")
            fnv2 = resp.get("perm_fnv", "");
    }
    EXPECT_EQ(oks, 3);
    EXPECT_FALSE(fnv1.empty());
    EXPECT_EQ(fnv1, fnv2);
}

TEST(Wire, MalformedRequestGetsErrAndConnectionSurvives)
{
    WireHarness h;
    ASSERT_TRUE(h.svc.add_graph("g", two_cliques(8)).is_ok());
    h.send("ORDER graph=g"); // missing scheme
    h.send("GARBAGE \x7f\x7f");
    h.send("ORDER graph=g scheme=degree id=after");

    LineReader reader(h.fd);
    std::string line;
    ASSERT_EQ(reader.next(line), LineReader::Result::kLine);
    EXPECT_FALSE(parse_response(line).ok);
    ASSERT_EQ(reader.next(line), LineReader::Result::kLine);
    EXPECT_FALSE(parse_response(line).ok);
    ASSERT_EQ(reader.next(line), LineReader::Result::kLine);
    const auto resp = parse_response(line);
    EXPECT_TRUE(resp.ok) << line;
    EXPECT_EQ(resp.get("id", ""), "after");
}

// -------------------------------------------------------- mutation fuzz

/** Corrupt @p text at @p edits seeded positions (robust_test idiom). */
std::string
mutate(const std::string& text, Rng& rng, int edits)
{
    static const char kBytes[] = "=0123456789 \n\t%#-x:\xff\x00";
    std::string out = text;
    for (int e = 0; e < edits && !out.empty(); ++e) {
        const auto pos =
            static_cast<std::size_t>(rng.next_below(out.size()));
        const auto action = rng.next_below(3);
        if (action == 0) // overwrite
            out[pos] = kBytes[rng.next_below(sizeof(kBytes) - 1)];
        else if (action == 1) // delete
            out.erase(pos, 1);
        else // insert
            out.insert(pos, 1,
                       kBytes[rng.next_below(sizeof(kBytes) - 1)]);
    }
    return out;
}

const char* kValidOrderLine =
    "ORDER graph=g scheme=degree seed=7 priority=low id=t deadline_ms=900";

TEST(MutationFuzz, RequestParserNeverEscapesTheTaxonomy)
{
    Rng rng(2020);
    for (int trial = 0; trial < 400; ++trial) {
        const std::string corrupted = mutate(
            kValidOrderLine, rng, 1 + static_cast<int>(trial % 8));
        try {
            const Request r = parse_request(corrupted);
            // Parsed despite corruption: the schema still held.
            EXPECT_FALSE(r.graph.empty());
        } catch (const GraphorderError&) {
            // Typed rejection is the other acceptable outcome.
        }
        // Anything else escapes the try and fails the test.
    }
}

TEST(MutationFuzz, LiveServiceSurvives400MalformedFrames)
{
    WireHarness h;
    ASSERT_TRUE(h.svc.add_graph("g", two_cliques(12)).is_ok());
    LineReader reader(h.fd);
    std::string line;
    Rng rng(6060);
    for (int trial = 0; trial < 400; ++trial) {
        // A corrupted frame (which may itself contain newlines, i.e.
        // several frames, or pipeline into the sentinel) followed by a
        // sentinel PING: the service must still answer the sentinel,
        // whatever the garbage did.
        std::string corrupted = mutate(
            kValidOrderLine, rng, 1 + static_cast<int>(trial % 8));
        const std::string sentinel = "s" + std::to_string(trial);
        corrupted += "\nPING id=" + sentinel + "\n";
        ASSERT_EQ(::write(h.fd, corrupted.data(), corrupted.size()),
                  static_cast<ssize_t>(corrupted.size()));
        bool got_sentinel = false;
        while (!got_sentinel) {
            ASSERT_EQ(reader.next(line), LineReader::Result::kLine)
                << "service died at trial " << trial;
            try {
                const auto resp = parse_response(line);
                got_sentinel =
                    resp.ok && resp.get("id", "") == sentinel;
            } catch (const GraphorderError&) {
                // Unparseable response lines cannot happen; but a
                // mutated ORDER accepted by the parser answers OK/ERR
                // lines we simply skim past.
                FAIL() << "service emitted garbage: " << line;
            }
        }
    }
}

// ----------------------------------------------------------- chaos sweep

TEST(Chaos, ConcurrentClientsUnderSustainedFaultSweep)
{
    FaultGuard guard;
    struct Sweep
    {
        const char* spec;
        int expect_ok;  ///< -1 = don't pin
        int expect_err; ///< -1 = don't pin
    };
    // With sustained faults and distinct seeds the outcome split is
    // deterministic: admit lets 4 through before failing every later
    // admission; worker faults heal by degradation; cache faults are
    // absorbed; order.scheme poisons degradation rungs too, so only
    // the request that consumed hit 1 succeeds.
    const Sweep kSweeps[] = {
        {"service.worker.exec:3+", -1, 0},
        {"service.admit:5+", 4, 36},
        {"service.cache.lookup:*", 40, 0},
        {"order.scheme:2+", 1, 39},
    };
    constexpr int kClients = 8;
    constexpr int kPerClient = 5;

    for (const auto& sweep : kSweeps) {
        ServiceOptions opt;
        opt.workers = 4;
        opt.queue_capacity = 64;
        ReorderService svc(opt);
        ASSERT_TRUE(svc.add_graph("g", two_cliques(16)).is_ok());
        const auto retries0 = counter_value("service/retries");
        const auto degraded0 = counter_value("service/degraded");
        clear_faults();
        apply_fault_spec(sweep.spec);

        std::atomic<int> responses{0}, oks{0}, errs{0};
        std::vector<std::thread> threads;
        for (int c = 0; c < kClients; ++c)
            threads.emplace_back([&, c] {
                for (int i = 0; i < kPerClient; ++i) {
                    const auto o = svc.order(order_request(
                        "g", "degree",
                        static_cast<std::uint64_t>(c * kPerClient
                                                   + i)));
                    ++responses;
                    o.status.is_ok() ? ++oks : ++errs;
                }
            });
        for (auto& t : threads)
            t.join();
        clear_faults();

        const int total = kClients * kPerClient;
        EXPECT_EQ(responses.load(), total) << sweep.spec;
        EXPECT_EQ(svc.queue_depth(), 0u) << sweep.spec;
        if (sweep.expect_ok >= 0) {
            EXPECT_EQ(oks.load(), sweep.expect_ok) << sweep.spec;
        }
        if (sweep.expect_err >= 0) {
            EXPECT_EQ(errs.load(), sweep.expect_err) << sweep.spec;
        }

        if (std::string(sweep.spec) == "service.worker.exec:3+") {
            // Hits 1 and 2 succeed outright; every later attempt
            // fails, retries twice, then degrades.  At most 2 jobs
            // dodge the fault entirely.
            const auto degraded =
                counter_value("service/degraded") - degraded0;
            const auto retries =
                counter_value("service/retries") - retries0;
            EXPECT_GE(degraded, static_cast<std::uint64_t>(total - 2));
            EXPECT_LE(degraded, static_cast<std::uint64_t>(total));
            EXPECT_EQ(retries, 2 * degraded);
        }
        svc.stop();
        EXPECT_EQ(svc.queue_depth(), 0u);
    }
}

} // namespace
} // namespace graphorder
