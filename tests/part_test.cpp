/**
 * @file
 * Tests of the multilevel partitioner: matching, FM refinement, recursive
 * k-way partitioning, vertex separators and nested dissection.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "gen/generators.hpp"
#include "graph/traversal.hpp"
#include "part/matching.hpp"
#include "part/partition.hpp"
#include "part/refine.hpp"
#include "part/separator.hpp"
#include "testutil.hpp"

namespace graphorder {
namespace {

using testing::grid_graph;
using testing::path_graph;
using testing::two_cliques;

TEST(Matching, PairsAreMutual)
{
    const auto g = grid_graph(8, 8);
    Rng rng(1);
    const auto match = heavy_edge_matching(g, {}, rng);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        ASSERT_NE(match[v], kNoVertex);
        EXPECT_EQ(match[match[v]], v);
        if (match[v] != v)
            EXPECT_TRUE(g.has_edge(v, match[v]));
    }
}

TEST(Matching, MatchesMostVerticesOnGrid)
{
    const auto g = grid_graph(10, 10);
    Rng rng(2);
    const auto match = heavy_edge_matching(g, {}, rng);
    vid_t matched = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        matched += match[v] != v;
    EXPECT_GT(matched, g.num_vertices() / 2); // grids match well
}

TEST(Matching, PrefersHeavyEdges)
{
    // Triangle with one heavy edge: the heavy pair must match.
    GraphBuilder b(3);
    b.add_edge(0, 1, 10.0);
    b.add_edge(1, 2, 1.0);
    b.add_edge(0, 2, 1.0);
    const auto g = b.finalize(true);
    Rng rng(3);
    const auto match = heavy_edge_matching(g, {}, rng);
    EXPECT_EQ(match[0], 1u);
    EXPECT_EQ(match[1], 0u);
    EXPECT_EQ(match[2], 2u);
}

TEST(Matching, GroupsAreDense)
{
    const auto g = grid_graph(6, 6);
    Rng rng(4);
    const auto match = heavy_edge_matching(g, {}, rng);
    std::vector<vid_t> group;
    const vid_t k = matching_to_groups(match, group);
    EXPECT_LE(k, g.num_vertices());
    for (vid_t gid : group)
        EXPECT_LT(gid, k);
}

TEST(Refine, MakeBisectionComputesCut)
{
    const auto g = two_cliques(4); // bridge between 3 and 4
    std::vector<std::uint8_t> side(8, 0);
    for (vid_t v = 4; v < 8; ++v)
        side[v] = 1;
    const auto b = make_bisection(g, {}, side);
    EXPECT_DOUBLE_EQ(b.cut, 1.0);
    EXPECT_DOUBLE_EQ(b.side_weight[0], 4.0);
    EXPECT_DOUBLE_EQ(b.side_weight[1], 4.0);
}

TEST(Refine, FmRepairsBadSplitOfTwoCliques)
{
    const auto g = two_cliques(8);
    // Deliberately bad: split across both cliques.
    std::vector<std::uint8_t> side(16);
    for (vid_t v = 0; v < 16; ++v)
        side[v] = v % 2;
    auto b = make_bisection(g, {}, std::move(side));
    const double bad_cut = b.cut;
    fm_refine(g, {}, b, 8.0, 0.1, 10);
    EXPECT_LT(b.cut, bad_cut);
    EXPECT_LE(b.cut, 4.0); // clique split costs >= 7; ideal cut is 1
}

TEST(Partition, BisectTwoCliquesFindsBridge)
{
    const auto g = two_cliques(16);
    PartitionOptions opt;
    const auto p = bisect(g, {}, 0.5, opt);
    EXPECT_EQ(p.num_parts, 2u);
    EXPECT_DOUBLE_EQ(p.cut_weight, 1.0);
    // Each clique on one side.
    for (vid_t v = 1; v < 16; ++v)
        EXPECT_EQ(p.part[v], p.part[0]);
    for (vid_t v = 17; v < 32; ++v)
        EXPECT_EQ(p.part[v], p.part[16]);
    EXPECT_NE(p.part[0], p.part[16]);
}

TEST(Partition, KwayCoversAndBalances)
{
    const auto g = gen_mesh(1024, 0, 99);
    PartitionOptions opt;
    for (vid_t k : {2u, 4u, 8u, 16u}) {
        const auto p = partition_kway(g, k, opt);
        EXPECT_EQ(p.num_parts, k);
        const auto sizes = p.part_sizes();
        ASSERT_EQ(sizes.size(), k);
        const double ideal = 1024.0 / k;
        for (vid_t c = 0; c < k; ++c) {
            EXPECT_GT(sizes[c], 0.5 * ideal) << "k=" << k;
            EXPECT_LT(sizes[c], 1.7 * ideal) << "k=" << k;
        }
    }
}

TEST(Partition, CutBeatsRandomAssignment)
{
    const auto g = gen_mesh(900, 0, 5);
    PartitionOptions opt;
    const auto p = partition_kway(g, 8, opt);

    Rng rng(123);
    std::vector<vid_t> random_part(g.num_vertices());
    for (auto& x : random_part)
        x = static_cast<vid_t>(rng.next_below(8));
    const double random_cut = partition_cut(g, random_part);
    EXPECT_LT(p.cut_weight, 0.5 * random_cut);
}

TEST(Partition, GridBisectionCutNearSqrtN)
{
    // A w x w grid has a natural bisection cut of ~w.
    const auto g = grid_graph(24, 24);
    PartitionOptions opt;
    const auto p = bisect(g, {}, 0.5, opt);
    EXPECT_LE(p.cut_weight, 3.0 * 24);
}

TEST(Partition, SingletonAndOnePartEdgeCases)
{
    const auto g = path_graph(5);
    PartitionOptions opt;
    const auto p = partition_kway(g, 1, opt);
    EXPECT_EQ(p.num_parts, 1u);
    EXPECT_DOUBLE_EQ(p.cut_weight, 0.0);
}

TEST(Partition, WeightedVerticesRespectBalance)
{
    const auto g = path_graph(10);
    std::vector<double> w(10, 1.0);
    w[0] = 9.0; // one heavy vertex
    PartitionOptions opt;
    const auto b2 = bisect(g, w, 0.5, opt);
    double w0 = 0, w1 = 0;
    for (vid_t v = 0; v < 10; ++v)
        (b2.part[v] == 0 ? w0 : w1) += w[v];
    // Total weight 18; each side should be near 9.
    EXPECT_GT(std::min(w0, w1), 4.0);
}

TEST(Separator, CoversAllCutEdges)
{
    const auto g = grid_graph(12, 12);
    PartitionOptions opt;
    const auto p = bisect(g, {}, 0.5, opt);
    std::vector<std::uint8_t> side(g.num_vertices());
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        side[v] = static_cast<std::uint8_t>(p.part[v]);
    const auto sep = vertex_separator_from_cut(g, side);
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        for (vid_t u : g.neighbors(v))
            if (side[u] != side[v])
                EXPECT_TRUE(sep[u] || sep[v]);
    // Separator is small relative to n for a grid.
    vid_t nsep = std::accumulate(sep.begin(), sep.end(), vid_t{0});
    EXPECT_LT(nsep, g.num_vertices() / 4);
}

TEST(Separator, RemovalDisconnectsSides)
{
    const auto g = grid_graph(10, 10);
    PartitionOptions opt;
    const auto p = bisect(g, {}, 0.5, opt);
    std::vector<std::uint8_t> side(g.num_vertices());
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        side[v] = static_cast<std::uint8_t>(p.part[v]);
    const auto sep = vertex_separator_from_cut(g, side);
    // No edge may connect a non-separator side-0 vertex to a
    // non-separator side-1 vertex.
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        if (sep[v])
            continue;
        for (vid_t u : g.neighbors(v)) {
            if (sep[u])
                continue;
            EXPECT_EQ(side[u], side[v]);
        }
    }
}

TEST(NestedDissection, OrderIsAPermutation)
{
    const auto g = gen_mesh(512, 0, 3);
    PartitionOptions opt;
    const auto order = nested_dissection_order(g, 16, opt);
    ASSERT_EQ(order.size(), g.num_vertices());
    EXPECT_TRUE(Permutation::from_order(order).is_valid());
}

TEST(NestedDissection, HandlesDisconnectedGraphs)
{
    GraphBuilder b(20);
    for (vid_t v = 0; v + 1 < 10; ++v)
        b.add_edge(v, v + 1);
    for (vid_t v = 10; v + 1 < 20; ++v)
        b.add_edge(v, v + 1);
    const auto g = b.finalize();
    PartitionOptions opt;
    const auto order = nested_dissection_order(g, 4, opt);
    EXPECT_TRUE(Permutation::from_order(order).is_valid());
}

} // namespace
} // namespace graphorder
