/**
 * @file
 * Tests of the prototypical-kernel suite (PageRank, SSSP, betweenness
 * centrality), the packing-factor analysis, and the minimum-degree
 * ordering.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/generators.hpp"
#include "kernels/bc.hpp"
#include "kernels/packing.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/sssp.hpp"
#include "la/gap_measures.hpp"
#include "memsim/cache.hpp"
#include "order/basic.hpp"
#include "order/hub.hpp"
#include "order/mindeg.hpp"
#include "testutil.hpp"

namespace graphorder {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::grid_graph;
using testing::path_graph;
using testing::star_graph;
using testing::two_cliques;

// --------------------------------------------------------------- PageRank

TEST(PageRank, SumsToOne)
{
    const auto g = gen_rmat(512, 3000, 0.57, 0.19, 0.19, 1);
    const auto res = pagerank(g);
    double sum = 0;
    for (double r : res.rank)
        sum += r;
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_GT(res.iterations, 1);
}

TEST(PageRank, UniformOnRegularGraph)
{
    const auto g = cycle_graph(100);
    const auto res = pagerank(g);
    for (double r : res.rank)
        EXPECT_NEAR(r, 0.01, 1e-6);
}

TEST(PageRank, StarCenterDominates)
{
    const auto g = star_graph(50);
    const auto res = pagerank(g);
    for (vid_t v = 1; v <= 50; ++v)
        EXPECT_GT(res.rank[0], res.rank[v]);
    // Closed-form for a star: center = d*L/(1+d) + (1-d)/n-ish; just
    // check the center holds a large share.
    EXPECT_GT(res.rank[0], 0.3);
}

TEST(PageRank, DanglingVerticesHandled)
{
    GraphBuilder b(4);
    b.add_edge(0, 1); // vertices 2, 3 isolated (dangling)
    const auto g = b.finalize();
    const auto res = pagerank(g);
    double sum = 0;
    for (double r : res.rank)
        sum += r;
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_GT(res.rank[2], 0.0);
}

TEST(PageRank, InvariantUnderRelabeling)
{
    const auto g = gen_sbm(300, 1800, 6, 0.85, 2);
    const auto base = pagerank(g);
    Rng rng(5);
    const auto pi = random_permutation(g.num_vertices(), rng);
    const auto re = pagerank(apply_permutation(g, pi));
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        EXPECT_NEAR(base.rank[v], re.rank[pi.rank(v)], 1e-9);
}

TEST(PageRank, TracerSeesPullLoads)
{
    const auto g = grid_graph(16, 16);
    CacheTracer tracer(CacheHierarchyConfig::tiny_test());
    PageRankOptions opt;
    opt.tracer = &tracer;
    opt.max_iterations = 3;
    pagerank(g, opt);
    EXPECT_GE(tracer.metrics().loads, 3u * g.num_arcs());
}

// ------------------------------------------------------------------ SSSP

TEST(Sssp, UnitWeightsMatchBfsDepth)
{
    const auto g = grid_graph(8, 8);
    const auto res = sssp_dijkstra(g, 0);
    // Manhattan distance on a grid.
    for (vid_t y = 0; y < 8; ++y)
        for (vid_t x = 0; x < 8; ++x)
            EXPECT_DOUBLE_EQ(res.distance[y * 8 + x], double(x + y));
}

TEST(Sssp, WeightedShortcutTaken)
{
    GraphBuilder b(4);
    b.add_edge(0, 1, 10.0);
    b.add_edge(0, 2, 1.0);
    b.add_edge(2, 3, 1.0);
    b.add_edge(3, 1, 1.0);
    const auto g = b.finalize(true);
    const auto res = sssp_dijkstra(g, 0);
    EXPECT_DOUBLE_EQ(res.distance[1], 3.0); // via 2 and 3, not direct
}

TEST(Sssp, UnreachableIsInfinite)
{
    GraphBuilder b(3);
    b.add_edge(0, 1);
    const auto g = b.finalize();
    const auto res = sssp_dijkstra(g, 0);
    EXPECT_TRUE(std::isinf(res.distance[2]));
}

TEST(Sssp, DeltaSteppingMatchesDijkstra)
{
    // Random weighted graph: both algorithms must agree everywhere.
    Rng rng(7);
    GraphBuilder b(400);
    for (int e = 0; e < 2400; ++e) {
        const auto u = static_cast<vid_t>(rng.next_below(400));
        const auto v = static_cast<vid_t>(rng.next_below(400));
        if (u != v)
            b.add_edge(u, v, 0.5 + rng.next_double() * 4.0);
    }
    const auto g = b.finalize(true);
    const auto dj = sssp_dijkstra(g, 0);
    for (double delta : {0.0, 0.5, 2.0, 100.0}) {
        const auto ds = sssp_delta_stepping(g, 0, delta);
        for (vid_t v = 0; v < 400; ++v) {
            if (std::isinf(dj.distance[v]))
                EXPECT_TRUE(std::isinf(ds.distance[v]));
            else
                EXPECT_NEAR(ds.distance[v], dj.distance[v], 1e-9)
                    << "delta=" << delta << " v=" << v;
        }
    }
}

TEST(Sssp, RelaxationCountersPopulated)
{
    const auto g = grid_graph(10, 10);
    const auto res = sssp_dijkstra(g, 0);
    EXPECT_GE(res.edges_relaxed, g.num_arcs() / 2);
}

// -------------------------------------------------------------------- BC

TEST(Bc, PathCentralityIsQuadratic)
{
    // Exact BC of a path: vertex i lies on (i)(n-1-i) shortest paths.
    const vid_t n = 11;
    const auto g = path_graph(n);
    BcOptions opt;
    opt.num_sources = 0; // exact
    const auto res = betweenness_centrality(g, opt);
    for (vid_t i = 0; i < n; ++i)
        EXPECT_NEAR(res.centrality[i], double(i) * double(n - 1 - i),
                    1e-9)
            << "vertex " << i;
}

TEST(Bc, StarCenterTakesAll)
{
    const vid_t leaves = 20;
    const auto g = star_graph(leaves);
    BcOptions opt;
    opt.num_sources = 0;
    const auto res = betweenness_centrality(g, opt);
    // Center: C(leaves, 2) pairs routed through it.
    EXPECT_NEAR(res.centrality[0], leaves * (leaves - 1) / 2.0, 1e-9);
    for (vid_t v = 1; v <= leaves; ++v)
        EXPECT_NEAR(res.centrality[v], 0.0, 1e-9);
}

TEST(Bc, BridgeVertexScoresHighest)
{
    const auto g = two_cliques(8); // bridge between 7 and 8
    BcOptions opt;
    opt.num_sources = 0;
    const auto res = betweenness_centrality(g, opt);
    for (vid_t v = 0; v < 16; ++v) {
        if (v == 7 || v == 8)
            continue;
        EXPECT_GT(res.centrality[7], res.centrality[v]);
        EXPECT_GT(res.centrality[8], res.centrality[v]);
    }
}

TEST(Bc, SampledApproximatesExactRanking)
{
    const auto g = gen_sbm(300, 1800, 6, 0.85, 3);
    BcOptions exact;
    exact.num_sources = 0;
    BcOptions sampled;
    sampled.num_sources = 100;
    const auto e = betweenness_centrality(g, exact);
    const auto s = betweenness_centrality(g, sampled);
    // The exact top vertex should be near the top of the sampled ranking.
    const vid_t top = static_cast<vid_t>(
        std::max_element(e.centrality.begin(), e.centrality.end())
        - e.centrality.begin());
    vid_t better = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        better += s.centrality[v] > s.centrality[top];
    EXPECT_LT(better, g.num_vertices() / 10);
}

// --------------------------------------------------------------- packing

TEST(Packing, ScatteredHubsHaveHighFactor)
{
    // Star-forest: hubs scattered through the id space.
    const auto g = gen_hub_forest(4096, 8000, 16, 5);
    const auto natural =
        packing_analysis(g, Permutation::identity(g.num_vertices()));
    const auto packed = packing_analysis(g, hub_sort_order(g));
    EXPECT_GT(natural.num_hubs, 0u);
    EXPECT_GE(natural.packing_factor, 1.0);
    // Hub Sort packs hubs into the fewest possible lines.
    EXPECT_NEAR(packed.packing_factor, 1.0, 1e-9);
    EXPECT_GT(natural.packing_factor, 1.5);
}

TEST(Packing, HubArcFractionIsLarge)
{
    const auto g = gen_hub_forest(2048, 4000, 8, 6);
    const auto a =
        packing_analysis(g, Permutation::identity(g.num_vertices()));
    EXPECT_GT(a.hub_arc_fraction, 0.3); // hubs dominate traffic
}

TEST(Packing, EmptyGraphSafe)
{
    const Csr g(std::vector<eid_t>{0}, {});
    const auto a = packing_analysis(g, Permutation::identity(0));
    EXPECT_EQ(a.num_hubs, 0u);
}

// ---------------------------------------------------------------- mindeg

TEST(MinDegree, ValidPermutation)
{
    const auto g = gen_mesh(400, 0, 7);
    const auto pi = min_degree_order(g);
    EXPECT_TRUE(pi.is_valid());
}

TEST(MinDegree, PathEliminatesFromEnds)
{
    const auto g = path_graph(9);
    const auto pi = min_degree_order(g);
    // First eliminated (rank 0) must be an endpoint (degree 1).
    const auto order = pi.order();
    EXPECT_TRUE(order[0] == 0 || order[0] == 8);
}

TEST(MinDegree, TreeHasNoFillCost)
{
    // On a star the center cannot be eliminated before its degree drops
    // to 1, i.e. before at least 11 of the 12 leaves are gone (it then
    // ties with the last leaf).
    const auto g = star_graph(12);
    const auto pi = min_degree_order(g);
    EXPECT_GE(pi.rank(0), 11u);
}

TEST(MinDegree, CliqueAnyOrderIsFine)
{
    const auto g = complete_graph(6);
    EXPECT_TRUE(min_degree_order(g).is_valid());
}

} // namespace
} // namespace graphorder
