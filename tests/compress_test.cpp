/**
 * @file
 * Tests of the compressed CSR backend: varint/zigzag boundary values,
 * encode/decode round trips, reference-mode selection, thread-count
 * byte-identity of the encoder, byte-identical kernel results across
 * backends, and the encoded-byte tracing contract.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/compressed_csr.hpp"
#include "graph/graph_view.hpp"
#include "graph/traversal.hpp"
#include "kernels/bc.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/sssp.hpp"
#include "la/gap_measures.hpp"
#include "memsim/cache.hpp"
#include "testutil.hpp"
#include "util/parallel.hpp"

namespace graphorder {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::grid_graph;
using testing::path_graph;
using testing::star_graph;
using testing::test_menagerie;
using testing::two_cliques;

std::uint64_t
roundtrip(std::uint64_t x, unsigned* len_out = nullptr)
{
    std::uint8_t buf[varint::kMaxBytes];
    const unsigned wrote = varint::encode(x, buf);
    EXPECT_EQ(wrote, varint::length(x));
    std::uint64_t back = 0;
    const unsigned read = varint::decode(buf, &back);
    EXPECT_EQ(read, wrote);
    if (len_out)
        *len_out = wrote;
    return back;
}

TEST(Varint, BoundaryValuesRoundTrip)
{
    // Group boundaries of base-128 continuation coding.
    const std::uint64_t cases[] = {
        0,       1,       127,        128,
        16383,   16384,   (1u << 21) - 1, (1u << 21),
        std::uint64_t{kNoVertex} - 1,   // 2^32 - 2: neighbor-id range
        std::uint64_t{kNoVertex},       // 2^32 - 1
        std::uint64_t{kNoVertex} + 1,   // 2^32: zigzagged first deltas
        ~std::uint64_t{0} >> 1,         // max int64
        ~std::uint64_t{0},              // max uint64 (10-byte encoding)
    };
    for (std::uint64_t x : cases) {
        unsigned len = 0;
        EXPECT_EQ(roundtrip(x, &len), x) << x;
        EXPECT_GE(len, 1u);
        EXPECT_LE(len, varint::kMaxBytes);
    }
    EXPECT_EQ(varint::length(0), 1u);
    EXPECT_EQ(varint::length(127), 1u);
    EXPECT_EQ(varint::length(128), 2u);
    EXPECT_EQ(varint::length(~std::uint64_t{0}), varint::kMaxBytes);
}

TEST(Varint, ZigzagRoundTripsSignedDeltas)
{
    const std::int64_t cases[] = {
        0,  1,  -1, 63, -63, 64, -64,
        static_cast<std::int64_t>(kNoVertex),
        -static_cast<std::int64_t>(kNoVertex),
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min(),
    };
    for (std::int64_t s : cases)
        EXPECT_EQ(varint::unzigzag(varint::zigzag(s)), s) << s;
    // Small magnitudes must stay in one byte either sign.
    EXPECT_EQ(varint::length(varint::zigzag(-1)), 1u);
    EXPECT_EQ(varint::length(varint::zigzag(63)), 1u);
}

TEST(CompressedCsr, EmptyAndDegreeBoundaries)
{
    // Empty graph.
    const Csr empty;
    const auto ce = CompressedCsr::encode(empty);
    EXPECT_EQ(ce.num_vertices(), 0u);
    EXPECT_EQ(ce.num_arcs(), 0u);
    EXPECT_EQ(ce.bits_per_edge(), 0.0);

    // Degree-0 vertices encode to zero bytes; degree-1 lists and
    // neighbor id 0 survive the zigzagged first delta.
    const Csr g({0, 0, 1, 2}, {2, 1}); // vertex 0 isolated, edge 1-2
    const auto c = CompressedCsr::encode(g);
    EXPECT_EQ(c.degree(0), 0u);
    EXPECT_EQ(c.encoded_list(0).size(), 0u);
    CompressedCsr::DecodeScratch s;
    EXPECT_TRUE(c.neighbors(0, s).empty());
    ASSERT_EQ(c.neighbors(1, s).size(), 1u);
    EXPECT_EQ(c.neighbors(1, s)[0], 2u);

    // Neighbor id 0 (negative first delta from every v > 0).
    const auto star = star_graph(5); // center 0
    const auto cs = CompressedCsr::encode(star);
    for (vid_t v = 1; v <= 5; ++v) {
        ASSERT_EQ(cs.neighbors(v, s).size(), 1u);
        EXPECT_EQ(cs.neighbors(v, s)[0], 0u);
    }
}

TEST(CompressedCsr, RoundTripsMenagerieWithEqualFingerprint)
{
    for (const auto& [name, g] : test_menagerie()) {
        const auto c = CompressedCsr::encode(g);
        EXPECT_EQ(c.num_vertices(), g.num_vertices()) << name;
        EXPECT_EQ(c.num_arcs(), g.num_arcs()) << name;
        const Csr back = c.decode();
        EXPECT_EQ(fingerprint(back), fingerprint(g)) << name;
        // Per-vertex spot check through the span API too.
        CompressedCsr::DecodeScratch s;
        for (vid_t v = 0; v < g.num_vertices(); ++v) {
            const auto nb = c.neighbors(v, s);
            ASSERT_EQ(nb.size(), g.neighbors(v).size()) << name;
            EXPECT_TRUE(std::equal(nb.begin(), nb.end(),
                                   g.neighbors(v).begin()))
                << name << " v=" << v;
        }
    }
}

TEST(CompressedCsr, ReferenceModeFallsBackWhenNoPriorVertexHelps)
{
    // Path neighbor lists {v-1, v+1} share nothing profitable with their
    // predecessors: gap coding must win everywhere.
    const auto c = CompressedCsr::encode(path_graph(64));
    EXPECT_EQ(c.breakdown().ref_vertices, 0u);
    EXPECT_EQ(c.breakdown().residual_bytes, 0u);

    // A clique's lists overlap almost fully: reference mode must be
    // taken, and still decode correctly.
    const auto k = complete_graph(16);
    const auto ck = CompressedCsr::encode(k);
    EXPECT_GT(ck.breakdown().ref_vertices, 0u);
    EXPECT_EQ(fingerprint(ck.decode()), fingerprint(k));

    // ref_window = 0 disables reference mode outright.
    CompressedCsr::EncodeOptions no_ref;
    no_ref.ref_window = 0;
    const auto cg = CompressedCsr::encode(k, no_ref);
    EXPECT_EQ(cg.breakdown().ref_vertices, 0u);
    EXPECT_EQ(fingerprint(cg.decode()), fingerprint(k));
    // Reference coding never loses to its own fallback.
    EXPECT_LE(ck.breakdown().total_bytes(), cg.breakdown().total_bytes());
}

TEST(CompressedCsr, EncoderBytesAreThreadCountInvariant)
{
    const int saved = default_threads();
    for (const auto& [name, g] : test_menagerie()) {
        set_default_threads(1);
        const auto c1 = CompressedCsr::encode(g);
        set_default_threads(2);
        const auto c2 = CompressedCsr::encode(g);
        set_default_threads(8);
        const auto c8 = CompressedCsr::encode(g);
        EXPECT_EQ(c1.bytes(), c2.bytes()) << name;
        EXPECT_EQ(c1.bytes(), c8.bytes()) << name;
    }
    set_default_threads(saved);
}

TEST(CompressedCsr, RejectsWeightedGraphs)
{
    const Csr w({0, 1, 2}, {1, 0}, {1.5, 1.5});
    EXPECT_THROW(CompressedCsr::encode(w), GraphorderError);
}

TEST(CompressedCsr, TracerSeesOnlyEncodedBytes)
{
    struct Recorder : AccessTracer
    {
        std::vector<std::pair<const std::uint8_t*, unsigned>> loads;
        void load(const void* addr, unsigned bytes) override
        {
            loads.emplace_back(static_cast<const std::uint8_t*>(addr),
                               bytes);
        }
    };
    const auto g = two_cliques(8);
    const auto c = CompressedCsr::encode(g);
    Recorder rec;
    CompressedCsr::DecodeScratch s;
    std::uint64_t traced = 0;
    for (vid_t v = 0; v < c.num_vertices(); ++v)
        c.neighbors(v, s, &rec);
    const auto* lo = c.bytes().data();
    const auto* hi = lo + c.bytes().size();
    for (const auto& [addr, bytes] : rec.loads) {
        EXPECT_GE(addr, lo);
        EXPECT_LE(addr + bytes, hi);
        traced += bytes;
    }
    // Every at-rest byte is read at least once (each list decoded once,
    // referenced lists possibly more).
    EXPECT_GE(traced, c.bytes().size());
}

TEST(GraphView, KernelsAreByteIdenticalAcrossBackends)
{
    for (const auto& [name, g] : test_menagerie()) {
        if (g.num_vertices() == 0)
            continue;
        const auto c = CompressedCsr::encode(g);
        const GraphView fv(g), cv(c);

        const auto bf = parallel_bfs(fv, 0);
        const auto bcmp = parallel_bfs(cv, 0);
        EXPECT_EQ(bf.distance, bcmp.distance) << name;
        EXPECT_EQ(bf.visit_order, bcmp.visit_order) << name;

        const auto pf = pagerank(fv);
        const auto pc = pagerank(cv);
        EXPECT_EQ(pf.iterations, pc.iterations) << name;
        EXPECT_EQ(pf.rank, pc.rank) << name; // bitwise, not approximate

        const auto sf = sssp_dijkstra(fv, 0);
        const auto sc = sssp_dijkstra(cv, 0);
        EXPECT_EQ(sf.distance, sc.distance) << name;

        const auto df = sssp_delta_stepping(fv, 0);
        const auto dc = sssp_delta_stepping(cv, 0);
        EXPECT_EQ(df.distance, dc.distance) << name;

        BcOptions bo;
        bo.num_sources = 4;
        const auto cf = betweenness_centrality(fv, bo);
        const auto cc = betweenness_centrality(cv, bo);
        EXPECT_EQ(cf.centrality, cc.centrality) << name;
        EXPECT_EQ(cf.edges_traversed, cc.edges_traversed) << name;
    }
}

TEST(CompressionStats, MatchesEncoderAndScoresOrderings)
{
    const auto g = grid_graph(12, 12);
    const auto s = compute_compression_stats(g);
    const auto c = CompressedCsr::encode(g);
    EXPECT_DOUBLE_EQ(s.bits_per_edge, c.bits_per_edge());
    EXPECT_EQ(s.encoded_bytes, c.breakdown().total_bytes());
    EXPECT_NEAR(s.bits_per_edge,
                s.gap_bits_per_edge + s.ref_bits_per_edge
                    + s.res_bits_per_edge,
                1e-9);

    // A scrambling permutation inflates the gaps and hence the bytes.
    std::vector<vid_t> ranks(g.num_vertices());
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        ranks[v] = (v * 37u) % g.num_vertices(); // 37 coprime to 144
    const auto worse = compute_compression_stats(
        g, Permutation::from_ranks(std::move(ranks)));
    EXPECT_GT(worse.bits_per_edge, s.bits_per_edge);

    EXPECT_THROW(compute_compression_stats(
                     g, Permutation::identity(g.num_vertices() - 1)),
                 std::invalid_argument);
}

} // namespace
} // namespace graphorder
