/**
 * @file
 * Tests of the parallel Louvain (Grappolo re-implementation).
 */
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "community/coloring.hpp"
#include "community/louvain.hpp"
#include "gen/generators.hpp"
#include "memsim/cache.hpp"
#include "testutil.hpp"

namespace graphorder {
namespace {

using testing::complete_graph;
using testing::two_cliques;

TEST(Modularity, SingletonPartitionOfCliqueIsNegative)
{
    const auto g = complete_graph(6);
    std::vector<vid_t> comm(6);
    std::iota(comm.begin(), comm.end(), vid_t{0});
    EXPECT_LT(modularity(g, comm), 0.0);
}

TEST(Modularity, OneCommunityIsZero)
{
    const auto g = complete_graph(6);
    const std::vector<vid_t> comm(6, 0);
    EXPECT_NEAR(modularity(g, comm), 0.0, 1e-12);
}

TEST(Modularity, TwoCliquesKnownValue)
{
    // Two k-cliques plus one bridge: the 2-community split has
    // Q = in/2m - sum (tot/2m)^2 computed explicitly below.
    const vid_t k = 8;
    const auto g = two_cliques(k);
    std::vector<vid_t> comm(2 * k, 0);
    for (vid_t v = k; v < 2 * k; ++v)
        comm[v] = 1;
    const double m = static_cast<double>(g.num_edges());
    const double in_c = k * (k - 1) / 2.0;           // per clique
    const double tot0 = 2.0 * in_c + 1.0;            // + bridge endpoint
    const double q_expect =
        2.0 * (in_c / m) - 2.0 * (tot0 / (2 * m)) * (tot0 / (2 * m));
    EXPECT_NEAR(modularity(g, comm), q_expect, 1e-12);
    EXPECT_GT(modularity(g, comm), 0.4);
}

TEST(Louvain, RecoversTwoCliques)
{
    const auto g = two_cliques(10);
    const auto res = louvain(g);
    EXPECT_EQ(res.num_communities, 2u);
    // All of clique 0 in one community.
    for (vid_t v = 1; v < 10; ++v)
        EXPECT_EQ(res.community[v], res.community[0]);
    for (vid_t v = 11; v < 20; ++v)
        EXPECT_EQ(res.community[v], res.community[10]);
    EXPECT_GT(res.modularity, 0.4);
}

TEST(Louvain, CommunityIdsAreDense)
{
    const auto g = gen_sbm(1000, 6000, 10, 0.85, 3);
    const auto res = louvain(g);
    std::set<vid_t> ids(res.community.begin(), res.community.end());
    EXPECT_EQ(ids.size(), res.num_communities);
    EXPECT_EQ(*ids.rbegin(), res.num_communities - 1);
}

TEST(Louvain, ImprovesOverSingletons)
{
    const auto g = gen_sbm(800, 5000, 8, 0.85, 5);
    const auto res = louvain(g);
    std::vector<vid_t> singles(g.num_vertices());
    std::iota(singles.begin(), singles.end(), vid_t{0});
    EXPECT_GT(res.modularity, modularity(g, singles) + 0.3);
}

TEST(Louvain, FindsPlantedCommunities)
{
    // SBM with strong structure: Louvain's Q should approach the planted
    // partition's Q.
    const auto g = gen_sbm(1200, 9000, 12, 0.9, 7);
    const auto res = louvain(g);
    EXPECT_GT(res.modularity, 0.4);
    EXPECT_GE(res.num_communities, 4u);
    EXPECT_LE(res.num_communities, 200u);
}

TEST(Louvain, PhaseStatsPopulated)
{
    const auto g = gen_sbm(600, 4000, 8, 0.85, 9);
    const auto res = louvain(g);
    ASSERT_FALSE(res.phases.empty());
    const auto& p0 = res.phases.front();
    EXPECT_GT(p0.iterations, 0);
    EXPECT_EQ(static_cast<int>(p0.iteration_times_s.size()), p0.iterations);
    EXPECT_GT(p0.phase_time_s, 0.0);
    EXPECT_GE(p0.modularity_after, p0.modularity_before);
    EXPECT_GT(p0.work_per_edge, 0.0);
    EXPECT_EQ(p0.num_vertices, g.num_vertices());
    EXPECT_GT(res.total_time_s, 0.0);
}

TEST(Louvain, ModularityMonotoneAcrossPhases)
{
    const auto g = gen_sbm(1000, 8000, 10, 0.8, 11);
    const auto res = louvain(g);
    for (std::size_t i = 1; i < res.phases.size(); ++i) {
        EXPECT_GE(res.phases[i].modularity_after,
                  res.phases[i - 1].modularity_after - 1e-6);
    }
}

TEST(Louvain, SingleThreadDeterministic)
{
    const auto g = gen_sbm(500, 3000, 6, 0.85, 13);
    LouvainOptions opt;
    opt.num_threads = 1;
    const auto a = louvain(g, opt);
    const auto b = louvain(g, opt);
    EXPECT_EQ(a.community, b.community);
    EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(Louvain, EmptyAndTinyGraphs)
{
    const Csr empty(std::vector<eid_t>{0}, {});
    const auto r0 = louvain(empty);
    EXPECT_EQ(r0.community.size(), 0u);

    GraphBuilder b(2);
    b.add_edge(0, 1);
    const auto r2 = louvain(b.finalize());
    EXPECT_EQ(r2.community.size(), 2u);
    EXPECT_EQ(r2.community[0], r2.community[1]); // one edge = one community
}

TEST(Louvain, TracerReceivesFirstPhaseLoads)
{
    const auto g = gen_sbm(300, 2000, 6, 0.85, 17);
    CacheTracer tracer(CacheHierarchyConfig::tiny_test());
    LouvainOptions opt;
    opt.tracer = &tracer;
    opt.num_threads = 1;
    const auto res = louvain(g, opt);
    EXPECT_GT(tracer.metrics().loads, g.num_arcs()); // >= 3 loads per arc
    EXPECT_GT(res.modularity, 0.0);
}

TEST(Coloring, ProperOnVariousGraphs)
{
    for (const auto& ng : testing::test_menagerie()) {
        const auto c = greedy_coloring(ng.graph);
        EXPECT_TRUE(is_proper_coloring(ng.graph, c.color)) << ng.name;
        // Greedy first-fit uses at most maxdeg + 1 colors.
        vid_t maxdeg = 0;
        for (vid_t v = 0; v < ng.graph.num_vertices(); ++v)
            maxdeg = std::max(maxdeg, ng.graph.degree(v));
        EXPECT_LE(c.num_colors, maxdeg + 1) << ng.name;
    }
}

TEST(Coloring, BipartiteGridUsesTwoColors)
{
    const auto g = testing::grid_graph(8, 8);
    const auto c = greedy_coloring(g);
    EXPECT_EQ(c.num_colors, 2u);
}

TEST(Coloring, ClassesPartitionTheVertexSet)
{
    const auto g = gen_sbm(400, 2400, 6, 0.85, 19);
    const auto c = greedy_coloring(g);
    vid_t total = 0;
    for (const auto& cls : c.classes())
        total += static_cast<vid_t>(cls.size());
    EXPECT_EQ(total, g.num_vertices());
}

TEST(Louvain, ColorSynchronizedModeMatchesQuality)
{
    const auto g = gen_sbm(800, 5000, 10, 0.85, 23);
    LouvainOptions plain, colored;
    colored.use_coloring = true;
    const auto a = louvain(g, plain);
    const auto b = louvain(g, colored);
    // Same algorithm, different schedule: quality must be comparable.
    EXPECT_NEAR(a.modularity, b.modularity, 0.1);
    EXPECT_GT(b.modularity, 0.3);
}

TEST(Louvain, WeightedGraphSupported)
{
    GraphBuilder b(6);
    // Two triangles joined by a light edge; heavy internal edges.
    for (auto [u, v] : {std::pair{0, 1}, {1, 2}, {0, 2}})
        b.add_edge(u, v, 5.0);
    for (auto [u, v] : {std::pair{3, 4}, {4, 5}, {3, 5}})
        b.add_edge(u, v, 5.0);
    b.add_edge(2, 3, 0.1);
    const auto g = b.finalize(true);
    const auto res = louvain(g);
    EXPECT_EQ(res.num_communities, 2u);
    EXPECT_EQ(res.community[0], res.community[2]);
    EXPECT_EQ(res.community[3], res.community[5]);
}

} // namespace
} // namespace graphorder
