/**
 * @file
 * Edge-case and robustness sweeps: degenerate graphs (empty, singleton,
 * edgeless, disconnected, star-of-stars) through every public entry
 * point, plus option-boundary checks for the configurable algorithms.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "community/louvain.hpp"
#include "gen/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "influence/imm.hpp"
#include "kernels/bc.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/sssp.hpp"
#include "la/gap_measures.hpp"
#include "order/gorder.hpp"
#include "order/scheme.hpp"
#include "part/partition.hpp"
#include "testutil.hpp"

namespace graphorder {
namespace {

/** Degenerate graph factory. */
Csr
degenerate(const std::string& kind)
{
    if (kind == "empty")
        return Csr(std::vector<eid_t>{0}, {});
    if (kind == "singleton")
        return Csr(std::vector<eid_t>{0, 0}, {});
    if (kind == "edgeless") {
        return Csr(std::vector<eid_t>(17, 0), {});
    }
    if (kind == "one-edge") {
        GraphBuilder b(2);
        b.add_edge(0, 1);
        return b.finalize();
    }
    if (kind == "isolated-mix") {
        // A triangle plus five isolated vertices.
        GraphBuilder b(8);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        return b.finalize();
    }
    // star-of-stars: hub 0 connected to 4 sub-hubs with 4 leaves each.
    GraphBuilder b(21);
    for (vid_t h = 1; h <= 4; ++h) {
        b.add_edge(0, h);
        for (vid_t l = 0; l < 4; ++l)
            b.add_edge(h, 5 + (h - 1) * 4 + l);
    }
    return b.finalize();
}

class DegenerateGraphs : public ::testing::TestWithParam<std::string>
{
  protected:
    void SetUp() override { graph_ = degenerate(GetParam()); }
    Csr graph_;
};

TEST_P(DegenerateGraphs, EverySchemeSurvives)
{
    for (const auto& s : all_schemes()) {
        const auto pi = s.run(graph_, 3);
        EXPECT_EQ(pi.size(), graph_.num_vertices()) << s.name;
        EXPECT_TRUE(pi.is_valid()) << s.name;
    }
}

TEST_P(DegenerateGraphs, GapMetricsAreFinite)
{
    const auto m = compute_gap_metrics(graph_);
    EXPECT_GE(m.avg_gap, 0.0);
    EXPECT_GE(m.avg_bandwidth, 0.0);
    EXPECT_GE(m.envelope, 0.0);
}

TEST_P(DegenerateGraphs, StatsAndLouvainSurvive)
{
    const auto s = compute_stats(graph_);
    EXPECT_EQ(s.num_vertices, graph_.num_vertices());
    const auto res = louvain(graph_);
    EXPECT_EQ(res.community.size(), graph_.num_vertices());
}

TEST_P(DegenerateGraphs, KernelsSurvive)
{
    const auto pr = pagerank(graph_);
    EXPECT_EQ(pr.rank.size(), graph_.num_vertices());
    if (graph_.num_vertices() > 0) {
        const auto ss = sssp_dijkstra(graph_, 0);
        EXPECT_EQ(ss.distance.size(), graph_.num_vertices());
        BcOptions opt;
        opt.num_sources = 0;
        const auto bc = betweenness_centrality(graph_, opt);
        EXPECT_EQ(bc.centrality.size(), graph_.num_vertices());
    }
}

TEST_P(DegenerateGraphs, PartitionerSurvives)
{
    PartitionOptions opt;
    const auto p = partition_kway(graph_, 4, opt);
    EXPECT_EQ(p.part.size(), graph_.num_vertices());
    for (vid_t c : p.part)
        EXPECT_LT(c, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, DegenerateGraphs,
    ::testing::Values("empty", "singleton", "edgeless", "one-edge",
                      "isolated-mix", "star-of-stars"),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string n = info.param;
        std::replace(n.begin(), n.end(), '-', '_');
        return n;
    });

// ------------------------------------------------------ option boundaries

TEST(OptionBounds, GorderHubCutoffZeroMeansUnbounded)
{
    const auto g = gen_hub_forest(512, 1024, 4, 1);
    GorderOptions opt;
    opt.hub_cutoff = 0;
    EXPECT_TRUE(gorder_order(g, opt).is_valid());
}

TEST(OptionBounds, LouvainSinglePhaseCap)
{
    const auto g = gen_sbm(400, 2400, 6, 0.85, 2);
    LouvainOptions opt;
    opt.max_phases = 1;
    const auto res = louvain(g, opt);
    EXPECT_EQ(res.phases.size(), 1u);
}

TEST(OptionBounds, LouvainSingleIterationCap)
{
    const auto g = gen_sbm(400, 2400, 6, 0.85, 2);
    LouvainOptions opt;
    opt.max_iterations = 1;
    const auto res = louvain(g, opt);
    for (const auto& p : res.phases)
        EXPECT_EQ(p.iterations, 1);
}

TEST(OptionBounds, ImmSeedCountClampedToN)
{
    const auto g = testing::path_graph(5);
    ImmOptions opt;
    opt.num_seeds = 50; // > n
    const auto res = imm(g, opt);
    EXPECT_LE(res.seeds.size(), 5u);
}

TEST(OptionBounds, ImmMaxSamplesHonored)
{
    const auto g = gen_rmat(256, 1500, 0.57, 0.19, 0.19, 3);
    ImmOptions opt;
    opt.max_samples = 100;
    const auto res = imm(g, opt);
    EXPECT_LE(res.stats.num_rrr_sets, 100u);
}

TEST(OptionBounds, PartitionMoreBucketsThanVertices)
{
    const auto g = testing::path_graph(3);
    PartitionOptions opt;
    const auto p = partition_kway(g, 8, opt);
    EXPECT_EQ(p.part.size(), 3u);
    for (vid_t c : p.part)
        EXPECT_LT(c, 8u);
}

// --------------------------------------------------------- io robustness

TEST(IoRobustness, BlankAndMalformedLinesSkipped)
{
    std::stringstream ss("\n\n1 2\ngarbage line\n3 4 extra tokens\n");
    const auto g = read_edge_list(ss);
    // "1 2" and "3 4" parse (extra tokens ignored); garbage skipped.
    EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoRobustness, SelfLoopsInFileDropped)
{
    std::stringstream ss("1 1\n1 2\n");
    const auto g = read_edge_list(ss);
    EXPECT_EQ(g.num_edges(), 1u);
}

TEST(IoRobustness, MissingFileThrows)
{
    EXPECT_THROW(load_edge_list("/nonexistent/really.edges"),
                 std::runtime_error);
}

TEST(IoRobustness, MetisNeighborOutOfRangeThrows)
{
    std::stringstream ss("2 1\n2\n3\n"); // vertex 2 lists neighbor 3 > n
    EXPECT_THROW(read_metis(ss), std::runtime_error);
}

} // namespace
} // namespace graphorder
