/**
 * @file
 * Tests for RNG, statistics, performance profiles and table rendering.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/perf_profile.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace graphorder {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.next_below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.next_double();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02); // LLN sanity
}

TEST(Rng, BernoulliFrequencyTracksP)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.next_bool(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, GaussianMomentsAreSane)
{
    Rng rng(9);
    std::vector<double> xs(20000);
    for (auto& x : xs)
        x = rng.next_gaussian(10.0, 2.0);
    EXPECT_NEAR(mean_of(xs), 10.0, 0.1);
    EXPECT_NEAR(stddev_of(xs), 2.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(42);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 4);
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(13);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    shuffle(v.begin(), v.end(), rng);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sorted[i], i);
    // And it actually moved things.
    int moved = 0;
    for (int i = 0; i < 100; ++i)
        moved += v[i] != i;
    EXPECT_GT(moved, 50);
}

TEST(Stats, QuantilesOfKnownSample)
{
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.0);
}

TEST(Stats, SummaryOfConstantSample)
{
    const auto s = summarize({4, 4, 4, 4});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 4.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 4.0);
}

TEST(Stats, SummaryEmptyIsZero)
{
    const auto s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, LogHistogramBinsByDecade)
{
    LogHistogram h(10.0);
    h.add(0.5);   // bin 0: [0,1)
    h.add(1.0);   // bin 1: [1,10)
    h.add(9.99);  // bin 1
    h.add(10.0);  // bin 2: [10,100)
    h.add(99.0);  // bin 2
    h.add(100.0); // bin 3
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(1), 2u);
    EXPECT_EQ(h.bin_count(2), 2u);
    EXPECT_EQ(h.bin_count(3), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.bin_lower(1), 1.0);
    EXPECT_DOUBLE_EQ(h.bin_lower(2), 10.0);
}

TEST(Stats, GeomeanOfPowers)
{
    EXPECT_NEAR(geomean_of({1.0, 100.0}), 10.0, 1e-9);
}

TEST(PerfProfile, BestSchemeHugsYAxis)
{
    // Scheme A is best everywhere; B is 2x worse everywhere.
    ProfileInput in;
    in.schemes = {"A", "B"};
    in.problems = {"p1", "p2", "p3"};
    in.costs = {{1, 2, 3}, {2, 4, 6}};
    const auto prof = build_profile(in);
    EXPECT_DOUBLE_EQ(prof.fraction_within(0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(prof.fraction_within(1, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(prof.fraction_within(1, 1.99), 0.0);
    EXPECT_DOUBLE_EQ(prof.fraction_within(1, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(prof.max_ratio(), 2.0);
    EXPECT_DOUBLE_EQ(prof.mean_log2_ratio(0), 0.0);
    EXPECT_DOUBLE_EQ(prof.mean_log2_ratio(1), 1.0);
}

TEST(PerfProfile, MixedWinners)
{
    ProfileInput in;
    in.schemes = {"A", "B"};
    in.problems = {"p1", "p2"};
    in.costs = {{1, 4}, {2, 2}};
    const auto prof = build_profile(in);
    EXPECT_DOUBLE_EQ(prof.fraction_within(0, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(prof.fraction_within(1, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(prof.fraction_within(0, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(prof.fraction_within(1, 2.0), 1.0);
}

TEST(PerfProfile, ZeroCostsClampedNotInf)
{
    ProfileInput in;
    in.schemes = {"A", "B"};
    in.problems = {"p"};
    in.costs = {{0.0}, {0.0}};
    const auto prof = build_profile(in);
    EXPECT_DOUBLE_EQ(prof.fraction_within(0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(prof.fraction_within(1, 1.0), 1.0);
}

TEST(PerfProfile, ShapeMismatchThrows)
{
    ProfileInput in;
    in.schemes = {"A"};
    in.problems = {"p1", "p2"};
    in.costs = {{1.0}};
    EXPECT_THROW(build_profile(in), std::invalid_argument);
}

TEST(PerfProfile, CsvHasHeaderAndRows)
{
    ProfileInput in;
    in.schemes = {"A", "B"};
    in.problems = {"p"};
    in.costs = {{1.0}, {3.0}};
    const auto prof = build_profile(in);
    const auto csv = prof.to_csv({1.0, 2.0, 4.0});
    EXPECT_NE(csv.find("scheme"), std::string::npos);
    EXPECT_NE(csv.find("A,1,1,1"), std::string::npos);
    EXPECT_NE(csv.find("B,0,0,1"), std::string::npos);
}

TEST(PerfProfile, DefaultTauGridMonotone)
{
    const auto taus = default_tau_grid(40.0);
    ASSERT_GE(taus.size(), 2u);
    EXPECT_DOUBLE_EQ(taus.front(), 1.0);
    for (std::size_t i = 1; i < taus.size(); ++i)
        EXPECT_GT(taus[i], taus[i - 1]);
    EXPECT_GE(taus.back(), 40.0 / 1.25);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"alpha", Table::num(1.5)});
    t.row({"b", Table::num(std::uint64_t{42})});
    const auto s = t.to_string();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("1.500"), std::string::npos);
}

TEST(Table, NumFormatsExtremesInScientific)
{
    EXPECT_NE(Table::num(1.23e9).find("e"), std::string::npos);
    EXPECT_EQ(Table::num(0.0), "0.000");
}

TEST(Timer, ElapsedIsMonotone)
{
    Timer t;
    t.start();
    const double a = t.elapsed_s();
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink += std::sqrt(static_cast<double>(i));
    const double b = t.elapsed_s();
    EXPECT_GE(b, a);
    (void)sink;
}

TEST(TimeSeries, Aggregates)
{
    TimeSeries ts;
    ts.add(1.0);
    ts.add(3.0);
    ts.add(2.0);
    EXPECT_FALSE(ts.empty());
    EXPECT_EQ(ts.count(), 3u);
    EXPECT_DOUBLE_EQ(ts.total(), 6.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 2.0);
    EXPECT_DOUBLE_EQ(ts.min(), 1.0);
    EXPECT_DOUBLE_EQ(ts.max(), 3.0);
}

TEST(TimeSeries, EmptySeriesAggregatesAreZero)
{
    const TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_EQ(ts.count(), 0u);
    EXPECT_DOUBLE_EQ(ts.total(), 0.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
    EXPECT_DOUBLE_EQ(ts.min(), 0.0);
    EXPECT_DOUBLE_EQ(ts.max(), 0.0);
}

} // namespace
} // namespace graphorder
