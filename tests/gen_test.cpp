/**
 * @file
 * Tests of the synthetic generators and the Table I dataset registry.
 */
#include <gtest/gtest.h>

#include "gen/datasets.hpp"
#include "gen/generators.hpp"
#include "graph/stats.hpp"
#include "graph/traversal.hpp"

namespace graphorder {
namespace {

TEST(Generators, RoadIsConnectedAndSparse)
{
    const auto g = gen_road(1000, 1300, 1);
    EXPECT_EQ(g.num_vertices(), 1000u);
    vid_t nc = 0;
    connected_components(g, &nc);
    EXPECT_EQ(nc, 1u); // spanning tree guarantees connectivity
    EXPECT_LE(g.num_edges(), 1300u);
    EXPECT_GE(g.num_edges(), 999u); // at least the tree
    const auto s = compute_stats(g, false);
    EXPECT_LE(s.max_degree, 4u); // grid edges only
}

TEST(Generators, RoadDeterministic)
{
    const auto a = gen_road(500, 700, 42);
    const auto b = gen_road(500, 700, 42);
    EXPECT_EQ(a.adjacency(), b.adjacency());
    const auto c = gen_road(500, 700, 43);
    EXPECT_NE(a.adjacency(), c.adjacency());
}

TEST(Generators, MeshDegreeBounded)
{
    const auto g = gen_mesh(1024, 0, 7);
    EXPECT_EQ(g.num_vertices(), 1024u);
    const auto s = compute_stats(g, false);
    EXPECT_LE(s.max_degree, 8u); // grid + diagonals
    // Triangulated: m ~ 3n.
    EXPECT_GT(g.num_edges(), 2 * 1024u);
    vid_t nc = 0;
    connected_components(g, &nc);
    EXPECT_EQ(nc, 1u);
}

TEST(Generators, QuadMeshNearDegreeFour)
{
    const auto g = gen_mesh(900, -1, 7);
    const auto s = compute_stats(g, false);
    EXPECT_LE(s.max_degree, 4u);
    EXPECT_NEAR(s.mean_degree, 4.0, 0.5);
}

TEST(Generators, StiffenedMeshDenser)
{
    const auto flat = gen_mesh(900, 0, 7);
    const auto stiff = gen_mesh(900, 2, 7);
    EXPECT_GT(stiff.num_edges(), flat.num_edges());
}

TEST(Generators, RmatSkewedDegrees)
{
    const auto g = gen_rmat(4096, 40000, 0.57, 0.19, 0.19, 11);
    EXPECT_EQ(g.num_vertices(), 4096u);
    EXPECT_GT(g.num_edges(), 20000u);
    const auto s = compute_stats(g, false);
    // Power-law-ish: max degree far above the mean.
    EXPECT_GT(static_cast<double>(s.max_degree), 5.0 * s.mean_degree);
}

TEST(Generators, RmatDeterministic)
{
    const auto a = gen_rmat(512, 2000, 0.57, 0.19, 0.19, 5);
    const auto b = gen_rmat(512, 2000, 0.57, 0.19, 0.19, 5);
    EXPECT_EQ(a.adjacency(), b.adjacency());
}

TEST(Generators, BarabasiAlbertHubsEmerge)
{
    const auto g = gen_barabasi_albert(2000, 3, 3);
    EXPECT_EQ(g.num_vertices(), 2000u);
    const auto s = compute_stats(g, false);
    EXPECT_GT(static_cast<double>(s.max_degree), 4.0 * s.mean_degree);
    vid_t nc = 0;
    connected_components(g, &nc);
    EXPECT_EQ(nc, 1u); // attachment keeps it connected
}

TEST(Generators, WattsStrogatzDegreeNearK)
{
    const auto g = gen_watts_strogatz(1000, 6, 0.1, 9);
    const auto s = compute_stats(g, false);
    EXPECT_NEAR(s.mean_degree, 6.0, 0.5);
}

TEST(Generators, ErdosRenyiHitsTarget)
{
    const auto g = gen_erdos_renyi(1000, 5000, 17);
    EXPECT_NEAR(static_cast<double>(g.num_edges()), 5000.0, 100.0);
}

TEST(Generators, SbmIsModular)
{
    const auto g = gen_sbm(2000, 12000, 16, 0.9, 21);
    EXPECT_EQ(g.num_vertices(), 2000u);
    EXPECT_GT(g.num_edges(), 8000u);
    // With 90% intra edges over 16 blocks the graph must have far more
    // triangles than an equivalent random graph would.
    const auto s = compute_stats(g);
    EXPECT_GT(s.triangles, 100u);
}

TEST(Generators, SocialCombinesCommunitiesAndHubs)
{
    const auto g = gen_social(4000, 30000, 31);
    EXPECT_EQ(g.num_vertices(), 4000u);
    const auto s = compute_stats(g, false);
    // Hub overlay: max degree far beyond the mean.
    EXPECT_GT(static_cast<double>(s.max_degree), 8.0 * s.mean_degree);
    // Community backbone: far more triangles than an ER graph of the
    // same density would have (~ (2m/n)^3 / 6 per vertex ~ tiny).
    const auto full = compute_stats(g, true);
    EXPECT_GT(full.triangles, 2000u);
}

TEST(Generators, HubForestMaxDegreeHuge)
{
    const auto g = gen_hub_forest(4000, 4200, 4, 23);
    const auto s = compute_stats(g, false);
    EXPECT_GT(s.max_degree, 200u);
}

TEST(Datasets, RegistryMatchesTableI)
{
    EXPECT_EQ(small_datasets().size(), 25u);
    EXPECT_EQ(large_datasets().size(), 9u);
    for (const auto& d : small_datasets())
        EXPECT_FALSE(d.large) << d.name;
    for (const auto& d : large_datasets())
        EXPECT_TRUE(d.large) << d.name;
}

TEST(Datasets, LookupByName)
{
    EXPECT_EQ(dataset_by_name("fe_4elt2").paper_vertices, 11143u);
    EXPECT_EQ(dataset_by_name("orkut").paper_edges, 117184899u);
    EXPECT_THROW(dataset_by_name("nope"), std::out_of_range);
}

TEST(Datasets, SmallInstancesGenerateNearPaperScale)
{
    for (const auto& d : small_datasets()) {
        const auto g = d.make(1.0);
        EXPECT_TRUE(g.check_invariants()) << d.name;
        const double nv = static_cast<double>(g.num_vertices());
        EXPECT_NEAR(nv, static_cast<double>(d.paper_vertices),
                    0.12 * static_cast<double>(d.paper_vertices))
            << d.name;
        // Edge counts track the target within a factor band (generators
        // reject duplicates, like real R-MAT).
        const double me = static_cast<double>(g.num_edges());
        EXPECT_GT(me, 0.4 * static_cast<double>(d.paper_edges)) << d.name;
        EXPECT_LT(me, 1.8 * static_cast<double>(d.paper_edges)) << d.name;
    }
}

TEST(Datasets, LargeInstancesScaleDown)
{
    const auto& lj = dataset_by_name("livejournal");
    const auto g = lj.make(256.0);
    EXPECT_NEAR(static_cast<double>(g.num_vertices()),
                static_cast<double>(lj.paper_vertices) / 256.0,
                0.15 * static_cast<double>(lj.paper_vertices) / 256.0);
}

TEST(Datasets, FamiliesAssignedSensibly)
{
    EXPECT_EQ(dataset_by_name("chicago-road").family, GraphFamily::Road);
    EXPECT_EQ(dataset_by_name("delaunay_n13").family, GraphFamily::Mesh);
    EXPECT_EQ(dataset_by_name("orkut").family, GraphFamily::Social);
    EXPECT_EQ(dataset_by_name("pgp").family, GraphFamily::Community);
    EXPECT_STREQ(family_name(GraphFamily::Mesh), "mesh");
}

TEST(Datasets, GenerationIsDeterministic)
{
    const auto& d = dataset_by_name("euroroad");
    const auto a = d.make(1.0);
    const auto b = d.make(1.0);
    EXPECT_EQ(a.adjacency(), b.adjacency());
}

} // namespace
} // namespace graphorder
