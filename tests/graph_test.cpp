/**
 * @file
 * Tests of the CSR core: builder, invariants, traversal, statistics,
 * permutation application, coarsening and I/O.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/coarsen.hpp"
#include "graph/subgraph.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "graph/traversal.hpp"
#include "obs/metrics.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace graphorder {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::figure2_graph;
using testing::grid_graph;
using testing::path_graph;
using testing::star_graph;
using testing::two_cliques;

TEST(Builder, DeduplicatesAndSymmetrizes)
{
    GraphBuilder b(4);
    b.add_edge(0, 1);
    b.add_edge(1, 0); // duplicate in reverse
    b.add_edge(0, 1); // duplicate
    b.add_edge(2, 3);
    const auto g = b.finalize();
    EXPECT_EQ(g.num_edges(), 2u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Builder, DropsSelfLoops)
{
    GraphBuilder b(3);
    b.add_edge(1, 1);
    b.add_edge(0, 2);
    const auto g = b.finalize();
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_EQ(g.degree(1), 0u);
}

TEST(Builder, OutOfRangeThrows)
{
    GraphBuilder b(3);
    EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
}

TEST(Builder, WeightsPreserved)
{
    GraphBuilder b(3);
    b.add_edge(0, 1, 2.5);
    b.add_edge(1, 2, 0.5);
    const auto g = b.finalize(true);
    ASSERT_TRUE(g.weighted());
    EXPECT_DOUBLE_EQ(g.total_arc_weight(), 2 * (2.5 + 0.5));
    EXPECT_DOUBLE_EQ(g.weighted_degree(1), 3.0);
}

TEST(Csr, InvariantsAndAccessors)
{
    const auto g = figure2_graph();
    EXPECT_TRUE(g.check_invariants());
    EXPECT_EQ(g.num_arcs(), 20u);
    eid_t total = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        total += g.degree(v);
    EXPECT_EQ(total, g.num_arcs());
}

TEST(Csr, NeighborsSorted)
{
    const auto g = figure2_graph();
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        const auto nbrs = g.neighbors(v);
        for (std::size_t i = 1; i < nbrs.size(); ++i)
            EXPECT_LT(nbrs[i - 1], nbrs[i]);
    }
}

TEST(Csr, BadOffsetsThrow)
{
    EXPECT_THROW(Csr({1, 2}, {0, 0}), std::invalid_argument);
    EXPECT_THROW(Csr({0, 3}, {0, 0}), std::invalid_argument);
    EXPECT_THROW(Csr({}, {}), std::invalid_argument);
}

TEST(Traversal, BfsDistancesOnPath)
{
    const auto g = path_graph(10);
    const auto r = bfs(g, 0);
    for (vid_t v = 0; v < 10; ++v)
        EXPECT_EQ(r.distance[v], v);
    EXPECT_EQ(r.max_distance, 9u);
    EXPECT_EQ(r.visit_order.size(), 10u);
}

TEST(Traversal, BfsUnreachedMarked)
{
    GraphBuilder b(4);
    b.add_edge(0, 1);
    const auto g = b.finalize();
    const auto r = bfs(g, 0);
    EXPECT_EQ(r.distance[2], BfsResult::kUnreached);
    EXPECT_EQ(r.distance[3], BfsResult::kUnreached);
}

TEST(Traversal, ConnectedComponentsCount)
{
    GraphBuilder b(7);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(3, 4);
    // 5, 6 isolated.
    const auto g = b.finalize();
    vid_t nc = 0;
    const auto comp = connected_components(g, &nc);
    EXPECT_EQ(nc, 4u);
    EXPECT_EQ(comp[0], comp[2]);
    EXPECT_EQ(comp[3], comp[4]);
    EXPECT_NE(comp[0], comp[3]);
    const auto sizes = component_sizes(comp, nc);
    std::vector<vid_t> sorted(sizes);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<vid_t>{1, 1, 2, 3}));
}

TEST(Traversal, PseudoPeripheralOnPathIsEndpoint)
{
    const auto g = path_graph(21);
    const vid_t p = pseudo_peripheral_vertex(g, 10);
    EXPECT_TRUE(p == 0 || p == 20) << "got " << p;
}

TEST(Stats, TriangleCounts)
{
    EXPECT_EQ(count_triangles(complete_graph(3)), 1u);
    EXPECT_EQ(count_triangles(complete_graph(4)), 4u);
    EXPECT_EQ(count_triangles(complete_graph(5)), 10u);
    EXPECT_EQ(count_triangles(path_graph(10)), 0u);
    EXPECT_EQ(count_triangles(cycle_graph(3)), 1u);
    EXPECT_EQ(count_triangles(cycle_graph(4)), 0u);
}

TEST(Stats, DegreeStatistics)
{
    const auto s = compute_stats(star_graph(10));
    EXPECT_EQ(s.num_vertices, 11u);
    EXPECT_EQ(s.num_edges, 10u);
    EXPECT_EQ(s.max_degree, 10u);
    EXPECT_NEAR(s.mean_degree, 20.0 / 11.0, 1e-12);
    EXPECT_EQ(s.num_components, 1u);
    EXPECT_EQ(s.triangles, 0u);
}

TEST(Stats, ClusteringOfClique)
{
    const auto s = compute_stats(complete_graph(6));
    EXPECT_DOUBLE_EQ(s.avg_clustering, 1.0);
}

TEST(Stats, HubMassFractionGuardsDegenerateGraphs)
{
    // Regression: edgeless (and empty) graphs must yield 0, not NaN
    // from a 0/0 — the advisor divides and compares this value.
    EXPECT_EQ(hub_mass_fraction(Csr()), 0.0);
    const Csr edgeless({0, 0, 0, 0}, {}); // 3 isolated vertices
    EXPECT_EQ(hub_mass_fraction(edgeless), 0.0);
    EXPECT_FALSE(std::isnan(hub_mass_fraction(edgeless)));
    // Sanity on a star: every arc touches the hub once.
    EXPECT_NEAR(hub_mass_fraction(star_graph(10)), 0.5, 1e-12);
}

TEST(Stats, EffectiveDiameterSeedsFromLargestComponent)
{
    // Disjoint union: a high-degree star (small diameter) next to a long
    // path (the largest component).  Seeding from the global max-degree
    // vertex — the star center — would report the star's eccentricity 1;
    // the estimate must come from the path instead.
    GraphBuilder b(8 + 50);
    for (vid_t leaf = 1; leaf < 8; ++leaf)
        b.add_edge(0, leaf); // star: center 0, degree 7
    for (vid_t v = 8; v < 8 + 49; ++v)
        b.add_edge(v, v + 1); // path of 50 vertices, diameter 49
    const auto g = b.finalize();
    EXPECT_EQ(compute_stats(g).num_components, 2u);
    EXPECT_EQ(estimate_effective_diameter(g), 49u);
    // Connected graphs are unaffected by the component scan.
    EXPECT_EQ(estimate_effective_diameter(path_graph(30)), 29u);
    EXPECT_EQ(estimate_effective_diameter(star_graph(6)), 2u);
    EXPECT_EQ(estimate_effective_diameter(Csr()), 0u);
}

TEST(Permutation, IdentityRoundTrips)
{
    const auto p = Permutation::identity(5);
    EXPECT_TRUE(p.is_valid());
    for (vid_t v = 0; v < 5; ++v)
        EXPECT_EQ(p.rank(v), v);
    EXPECT_EQ(p.order(), (std::vector<vid_t>{0, 1, 2, 3, 4}));
}

TEST(Permutation, OrderAndRanksAreInverses)
{
    const auto p = Permutation::from_ranks({2, 0, 1});
    const auto ord = p.order();
    EXPECT_EQ(ord, (std::vector<vid_t>{1, 2, 0}));
    const auto q = Permutation::from_order(ord);
    EXPECT_EQ(q.ranks(), p.ranks());
}

TEST(Permutation, InverseComposesToIdentity)
{
    Rng rng(99);
    const auto p = random_permutation(50, rng);
    const auto id = p.then(p.inverse());
    for (vid_t v = 0; v < 50; ++v)
        EXPECT_EQ(id.rank(v), v);
}

TEST(Permutation, ValidityDetectsDuplicates)
{
    EXPECT_FALSE(Permutation::from_ranks({0, 0, 1}).is_valid());
    EXPECT_FALSE(Permutation::from_ranks({0, 3, 1}).is_valid());
    EXPECT_TRUE(Permutation::from_ranks({2, 1, 0}).is_valid());
}

TEST(Permutation, ApplyPreservesStructure)
{
    const auto g = figure2_graph();
    const auto pi = testing::figure2_permutation();
    const auto h = apply_permutation(g, pi);
    EXPECT_TRUE(h.check_invariants());
    EXPECT_TRUE(testing::same_degree_profile(g, h));
    // Every edge maps across.
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        for (vid_t u : g.neighbors(v))
            EXPECT_TRUE(h.has_edge(pi.rank(v), pi.rank(u)));
}

TEST(Permutation, ApplyPreservesWeights)
{
    GraphBuilder b(3);
    b.add_edge(0, 1, 5.0);
    b.add_edge(1, 2, 7.0);
    const auto g = b.finalize(true);
    const auto pi = Permutation::from_ranks({2, 1, 0});
    const auto h = apply_permutation(g, pi);
    ASSERT_TRUE(h.weighted());
    EXPECT_DOUBLE_EQ(h.total_arc_weight(), g.total_arc_weight());
    EXPECT_DOUBLE_EQ(h.weighted_degree(1), 12.0); // old vertex 1
}

TEST(Permutation, ApplyIdentityIsNoop)
{
    const auto g = figure2_graph();
    const auto h = apply_permutation(g, Permutation::identity(7));
    EXPECT_EQ(g.offsets(), h.offsets());
    EXPECT_EQ(g.adjacency(), h.adjacency());
}

TEST(Coarsen, TwoCliquesCollapseToTwoVertices)
{
    const auto g = two_cliques(5);
    std::vector<vid_t> group(10);
    for (vid_t v = 0; v < 10; ++v)
        group[v] = v < 5 ? 0 : 1;
    const auto c = coarsen_by_groups(g, group, 2);
    EXPECT_EQ(c.graph.num_vertices(), 2u);
    EXPECT_EQ(c.graph.num_edges(), 1u); // the bridge
    EXPECT_DOUBLE_EQ(c.self_weight[0], 10.0); // C(5,2) internal edges
    EXPECT_DOUBLE_EQ(c.self_weight[1], 10.0);
    EXPECT_EQ(c.group_size[0], 5u);
    const auto ws = c.graph.neighbor_weights(0);
    ASSERT_EQ(ws.size(), 1u);
    EXPECT_DOUBLE_EQ(ws[0], 1.0);
}

TEST(Coarsen, DensifyLabels)
{
    std::vector<vid_t> labels{7, 3, 7, 9, 3};
    const vid_t k = densify_labels(labels);
    EXPECT_EQ(k, 3u);
    EXPECT_EQ(labels, (std::vector<vid_t>{0, 1, 0, 2, 1}));
}

TEST(Subgraph, MaskExtractsInducedEdges)
{
    const auto g = two_cliques(4); // bridge 3-4
    std::vector<std::uint8_t> keep(8, 0);
    for (vid_t v = 0; v < 4; ++v)
        keep[v] = 1;
    const auto sg = induced_subgraph(g, keep);
    EXPECT_EQ(sg.graph.num_vertices(), 4u);
    EXPECT_EQ(sg.graph.num_edges(), 6u); // the clique, bridge dropped
    EXPECT_EQ(sg.to_parent, (std::vector<vid_t>{0, 1, 2, 3}));
}

TEST(Subgraph, MemberListOrderRespected)
{
    const auto g = testing::path_graph(6);
    const auto sg = induced_subgraph(g, std::vector<vid_t>{4, 3, 5});
    EXPECT_EQ(sg.graph.num_vertices(), 3u);
    EXPECT_EQ(sg.graph.num_edges(), 2u); // 3-4 and 4-5
    // Sub id 0 is parent 4, which neighbors both others.
    EXPECT_EQ(sg.graph.degree(0), 2u);
}

TEST(Subgraph, WeightsSurviveExtraction)
{
    GraphBuilder b(3);
    b.add_edge(0, 1, 2.5);
    b.add_edge(1, 2, 7.0);
    const auto g = b.finalize(true);
    const auto sg = induced_subgraph(g, std::vector<vid_t>{1, 2});
    ASSERT_TRUE(sg.graph.weighted());
    EXPECT_DOUBLE_EQ(sg.graph.total_arc_weight(), 14.0);
}

TEST(Subgraph, DuplicateMemberThrows)
{
    const auto g = testing::path_graph(4);
    EXPECT_THROW(induced_subgraph(g, std::vector<vid_t>{1, 1}),
                 std::invalid_argument);
}

TEST(Subgraph, EmptyMaskYieldsEmptyGraph)
{
    const auto g = testing::path_graph(4);
    const auto sg = induced_subgraph(g, std::vector<std::uint8_t>(4, 0));
    EXPECT_EQ(sg.graph.num_vertices(), 0u);
}

TEST(Io, EdgeListRoundTrip)
{
    const auto g = figure2_graph();
    std::stringstream ss;
    write_edge_list(ss, g);
    const auto h = read_edge_list(ss);
    EXPECT_EQ(h.num_vertices(), g.num_vertices());
    EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(Io, EdgeListSkipsCommentsAndCompacts)
{
    std::stringstream ss("# comment\n% other\n100 200\n200 300\n");
    const auto g = read_edge_list(ss);
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, MetisRoundTrip)
{
    const auto g = testing::grid_graph(4, 4);
    std::stringstream ss;
    write_metis(ss, g);
    const auto h = read_metis(ss);
    EXPECT_EQ(h.num_vertices(), g.num_vertices());
    EXPECT_EQ(h.num_edges(), g.num_edges());
    EXPECT_TRUE(testing::same_degree_profile(g, h));
}

TEST(Io, MetisBadHeaderThrows)
{
    std::stringstream ss("not a header\n");
    EXPECT_THROW(read_metis(ss), std::runtime_error);
}

TEST(Io, MetisSingleListingKeepsAllEdges)
{
    // The METIS spec lists every edge on both endpoints, but real files
    // often list each edge only once.  Here the path 0-1-2 is listed only
    // on the higher-numbered endpoint of each edge; the reader used to
    // drop these edges silently.
    std::stringstream ss("3 2\n\n1\n2\n");
    const auto g = read_metis(ss);
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.num_edges(), 2u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Io, MetisHeaderMismatchBumpsCounter)
{
    auto& counter = obs::MetricsRegistry::instance().counter(
        "io/metis/header_mismatch");
    const auto before = counter.value();
    // Header claims 5 edges; the adjacency lines hold one.
    std::stringstream ss("2 5\n2\n1\n");
    const auto g = read_metis(ss);
    EXPECT_EQ(g.num_edges(), 1u); // parsed count wins
    EXPECT_EQ(counter.value(), before + 1);

    // A consistent file must not touch the counter.
    std::stringstream ok("2 1\n2\n1\n");
    read_metis(ok);
    EXPECT_EQ(counter.value(), before + 1);
}

TEST(Io, EdgeListCountsMalformedAndSelfLoops)
{
    auto& reg = obs::MetricsRegistry::instance();
    const auto malformed_before =
        reg.counter("io/edge_list/malformed_lines").value();
    const auto loops_before =
        reg.counter("io/edge_list/self_loops").value();
    std::stringstream ss("1 2\nbogus line\n3 3\n2 3\n");
    const auto g = read_edge_list(ss);
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.num_edges(), 2u); // 1-2 and 2-3 survive
    EXPECT_EQ(reg.counter("io/edge_list/malformed_lines").value(),
              malformed_before + 1);
    EXPECT_EQ(reg.counter("io/edge_list/self_loops").value(),
              loops_before + 1);
}

TEST(Io, EdgeListWeightedMissingWeightThrows)
{
    std::stringstream ok("1 2 2.5\n2 3 1.5\n");
    const auto g = read_edge_list(ok, true);
    ASSERT_TRUE(g.weighted());
    EXPECT_EQ(g.num_edges(), 2u);

    std::stringstream bad("1 2 2.5\n2 3\n");
    EXPECT_THROW(read_edge_list(bad, true), std::runtime_error);
}

} // namespace
} // namespace graphorder
