/**
 * @file
 * Tests of the reordering schemes: per-scheme behavioural checks plus a
 * parameterized validity sweep of every scheme over every test graph.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.hpp"
#include "la/gap_measures.hpp"
#include "obs/metrics.hpp"
#include "order/basic.hpp"
#include "order/community_order.hpp"
#include "order/dbg.hpp"
#include "order/gorder.hpp"
#include "order/hub.hpp"
#include "order/minla_sa.hpp"
#include "order/partition_order.hpp"
#include "order/rabbit.hpp"
#include "order/rcm.hpp"
#include "order/scheme.hpp"
#include "order/slashburn.hpp"
#include "testutil.hpp"

namespace graphorder {
namespace {

using testing::grid_graph;
using testing::path_graph;
using testing::star_graph;
using testing::two_cliques;

// ---------------------------------------------------------------- sweeps

struct SweepCase
{
    std::string scheme;
    std::string graph;
};

class SchemeSweep : public ::testing::TestWithParam<SweepCase>
{};

TEST_P(SchemeSweep, ProducesValidPermutation)
{
    const auto& [scheme_name, graph_name] = GetParam();
    const auto& scheme = scheme_by_name(scheme_name);
    for (const auto& ng : testing::test_menagerie()) {
        if (ng.name != graph_name)
            continue;
        const auto pi = scheme.run(ng.graph, 42);
        EXPECT_EQ(pi.size(), ng.graph.num_vertices());
        EXPECT_TRUE(pi.is_valid())
            << scheme_name << " on " << graph_name;
    }
}

std::vector<SweepCase>
sweep_cases()
{
    std::vector<SweepCase> cases;
    for (const auto& s : all_schemes())
        for (const auto& g : testing::test_menagerie())
            cases.push_back({s.name, g.name});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllGraphs, SchemeSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
        std::string n = info.param.scheme + "_" + info.param.graph;
        std::replace(n.begin(), n.end(), '-', '_');
        return n;
    });

// ------------------------------------------------------------- baselines

TEST(Basic, NaturalIsIdentity)
{
    const auto g = path_graph(20);
    const auto pi = natural_order(g);
    for (vid_t v = 0; v < 20; ++v)
        EXPECT_EQ(pi.rank(v), v);
}

TEST(Basic, RandomIsSeedDeterministic)
{
    const auto g = path_graph(100);
    EXPECT_EQ(random_order(g, 7).ranks(), random_order(g, 7).ranks());
    EXPECT_NE(random_order(g, 7).ranks(), random_order(g, 8).ranks());
}

TEST(Basic, DegreeSortDescending)
{
    const auto g = star_graph(10); // center degree 10, leaves 1
    const auto pi = degree_sort_order(g, true);
    EXPECT_EQ(pi.rank(0), 0u); // hub first
    // Leaves keep natural relative order (stable sort).
    for (vid_t v = 1; v < 10; ++v)
        EXPECT_LT(pi.rank(v), pi.rank(v + 1));
}

TEST(Basic, DegreeSortAscendingReverses)
{
    const auto g = star_graph(10);
    const auto pi = degree_sort_order(g, false);
    EXPECT_EQ(pi.rank(0), 10u); // hub last
}

TEST(Basic, BfsOrderContiguousOnPath)
{
    const auto g = path_graph(50);
    const auto pi = bfs_order(g);
    const auto m = compute_gap_metrics(g, pi);
    EXPECT_EQ(m.bandwidth, 1u); // BFS from an endpoint walks the path
}

// ------------------------------------------------------------- hub-based

TEST(Hub, HubSortPutsSortedHubsFirst)
{
    // Two hubs of different size + low-degree rest.
    GraphBuilder b(20);
    for (vid_t v = 2; v < 14; ++v)
        b.add_edge(0, v); // deg(0) = 12
    for (vid_t v = 6; v < 14; ++v)
        b.add_edge(1, v); // deg(1) = 8
    const auto g = b.finalize();
    const auto pi = hub_sort_order(g);
    EXPECT_EQ(pi.rank(0), 0u);
    EXPECT_EQ(pi.rank(1), 1u);
}

TEST(Hub, HubClusterKeepsHubNaturalOrder)
{
    GraphBuilder b(20);
    for (vid_t v = 2; v < 10; ++v)
        b.add_edge(1, v); // hub at id 1 (deg 8)
    for (vid_t v = 10; v < 19; ++v)
        b.add_edge(5, v); // bigger hub at id 5 (deg 9 + edge from 1)
    const auto g = b.finalize();
    const auto pi = hub_cluster_order(g);
    // Both hubs packed first but in natural id order: 1 before 5.
    EXPECT_EQ(pi.rank(1), 0u);
    EXPECT_EQ(pi.rank(5), 1u);
    // Hub sort would place 5 (higher degree) first instead.
    const auto ps = hub_sort_order(g);
    EXPECT_EQ(ps.rank(5), 0u);
}

TEST(Hub, NonHubsKeepRelativeOrder)
{
    const auto g = star_graph(30);
    const auto pi = hub_sort_order(g);
    for (vid_t v = 1; v < 30; ++v)
        EXPECT_LT(pi.rank(v), pi.rank(v + 1));
}

// ------------------------------------------------------------------ DBG

TEST(Dbg, HotVertexFirstColdTailKeepsNaturalOrder)
{
    // star: center degree 30 >> avg (~1.9), leaves degree 1 are cold.
    const auto g = star_graph(30);
    const auto pi = dbg_order(g);
    EXPECT_EQ(pi.rank(0), 0u);
    for (vid_t v = 1; v < 30; ++v)
        EXPECT_LT(pi.rank(v), pi.rank(v + 1));
}

TEST(Dbg, HotterBinsPrecedeCoolerBins)
{
    // cut = 1.5: deg-64 vertex lands in a far hotter power-of-two bin
    // than the deg-2 pair, despite its higher id.
    GraphBuilder b(80);
    for (vid_t v = 11; v < 75; ++v)
        b.add_edge(10, v); // deg(10) = 64
    b.add_edge(2, 3);      // deg(2) = deg(3) = 2: coolest hot bin
    b.add_edge(2, 4);
    b.add_edge(3, 5);
    const auto g = b.finalize();
    const auto pi = dbg_order(g, {1.5, 7});
    EXPECT_EQ(pi.rank(10), 0u);
    // Same bin: stable, natural id order preserved.
    EXPECT_EQ(pi.rank(2), 1u);
    EXPECT_EQ(pi.rank(3), 2u);
}

TEST(Dbg, StableWithinBinsByNaturalId)
{
    // Two equal-degree hubs: the lower id must keep its lead (DBG's
    // intra-bin stability is the property HubSort gives up).
    GraphBuilder b(30);
    for (vid_t v = 10; v < 20; ++v)
        b.add_edge(2, v); // deg(2) = 10
    for (vid_t v = 20; v < 30; ++v)
        b.add_edge(7, v); // deg(7) = 10
    const auto g = b.finalize();
    const auto pi = dbg_order(g);
    EXPECT_EQ(pi.rank(2), 0u);
    EXPECT_EQ(pi.rank(7), 1u);
}

TEST(Dbg, EdgelessGraphIsIdentity)
{
    GraphBuilder b(6);
    const auto pi = dbg_order(b.finalize());
    for (vid_t v = 0; v < 6; ++v)
        EXPECT_EQ(pi.rank(v), v);
}

// ------------------------------------------------------------------ RCM

TEST(Rcm, BandwidthOptimalOnPath)
{
    const auto g = path_graph(64);
    const auto m = compute_gap_metrics(g, rcm_order(g));
    EXPECT_EQ(m.bandwidth, 1u);
}

TEST(Rcm, GridBandwidthNearWidth)
{
    const auto g = grid_graph(12, 12);
    const auto m = compute_gap_metrics(g, rcm_order(g));
    // Level sets of a 12x12 grid have <= 12 vertices + boundary effects.
    EXPECT_LE(m.bandwidth, 2u * 12u);
    // Natural (row-major) order has bandwidth 12; RCM's diagonal levels
    // should not be far off.
    EXPECT_LE(m.bandwidth, 24u);
}

TEST(Rcm, BeatsRandomBandwidthOnMesh)
{
    const auto g = gen_mesh(900, 0, 1);
    const auto rcm = compute_gap_metrics(g, rcm_order(g));
    const auto rnd = compute_gap_metrics(g, random_order(g, 5));
    EXPECT_LT(rcm.bandwidth, rnd.bandwidth / 4);
}

TEST(Rcm, IsReverseOfCm)
{
    const auto g = grid_graph(6, 6);
    const auto cm = cm_order(g).order();
    auto rcm = rcm_order(g).order();
    std::reverse(rcm.begin(), rcm.end());
    EXPECT_EQ(cm, rcm);
}

TEST(Rcm, HandlesDisconnectedComponents)
{
    GraphBuilder b(12);
    for (vid_t v = 0; v + 1 < 6; ++v)
        b.add_edge(v, v + 1);
    for (vid_t v = 6; v + 1 < 12; ++v)
        b.add_edge(v, v + 1);
    const auto g = b.finalize();
    const auto pi = rcm_order(g);
    EXPECT_TRUE(pi.is_valid());
    EXPECT_EQ(compute_gap_metrics(g, pi).bandwidth, 1u);
}

TEST(Rcm, LevelParallelKernelMatchesSerialQueueReference)
{
    // The level-set kernel promises exact serial Cuthill-McKee
    // visitation: the classic FIFO queue where each dequeued parent
    // appends its unvisited neighbors sorted by (degree, id).  Replay
    // that textbook loop — seeded with the component starts the library
    // picked — and require the full orders to match vertex for vertex.
    for (const auto& ng : testing::test_menagerie()) {
        const auto& g = ng.graph;
        const vid_t n = g.num_vertices();
        const auto cm = cm_order(g).order();
        ASSERT_EQ(cm.size(), n) << ng.name;
        std::vector<char> visited(n, 0);
        std::vector<vid_t> ref;
        ref.reserve(n);
        while (ref.size() < n) {
            // Each new component's start is wherever the library's
            // order resumes; the reference only re-derives everything
            // that follows from it.
            const vid_t start = cm[ref.size()];
            ASSERT_FALSE(visited[start]) << ng.name;
            std::vector<vid_t> queue{start};
            visited[start] = 1;
            for (std::size_t head = 0; head < queue.size(); ++head) {
                const vid_t v = queue[head];
                const auto nbrs = g.neighbors(v);
                std::vector<vid_t> kids(nbrs.begin(), nbrs.end());
                std::stable_sort(kids.begin(), kids.end(),
                                 [&](vid_t a, vid_t b) {
                                     return g.degree(a) < g.degree(b);
                                 });
                for (vid_t u : kids) {
                    if (!visited[u]) {
                        visited[u] = 1;
                        queue.push_back(u);
                    }
                }
            }
            ref.insert(ref.end(), queue.begin(), queue.end());
        }
        EXPECT_EQ(ref, cm) << ng.name;
    }
}

// ------------------------------------------------------------ SlashBurn

TEST(SlashBurn, HubGetsLowestId)
{
    const auto g = star_graph(50);
    const auto pi = slashburn_order(g, 1);
    EXPECT_EQ(pi.rank(0), 0u); // the center is slashed first
}

TEST(SlashBurn, SpokesGoToTheBack)
{
    // Star + one far clique: after slashing the center, leaves are
    // spokes (size-1 components) and the clique is the giant component.
    GraphBuilder b(30);
    for (vid_t v = 1; v <= 10; ++v)
        b.add_edge(0, v);
    for (vid_t u = 11; u < 30; ++u)
        for (vid_t v = u + 1; v < 30; ++v)
            b.add_edge(u, v);
    const auto g = b.finalize();
    const auto pi = slashburn_order(g, 1);
    EXPECT_TRUE(pi.is_valid());
    // Leaves 1..10 must rank after every clique vertex.
    vid_t min_leaf = 30;
    vid_t max_clique = 0;
    for (vid_t v = 1; v <= 10; ++v)
        min_leaf = std::min(min_leaf, pi.rank(v));
    for (vid_t v = 11; v < 30; ++v)
        max_clique = std::max(max_clique, pi.rank(v));
    EXPECT_GT(min_leaf, max_clique);
}

TEST(SlashBurn, DefaultKTerminates)
{
    const auto g = gen_rmat(2048, 10000, 0.57, 0.19, 0.19, 3);
    const auto pi = slashburn_order(g);
    EXPECT_TRUE(pi.is_valid());
}

// --------------------------------------------------------------- Gorder

TEST(Gorder, ValidAndBeatsRandomGscore)
{
    const auto g = gen_sbm(400, 2400, 8, 0.85, 3);
    const auto pi = gorder_order(g);
    ASSERT_TRUE(pi.is_valid());
    const double gs = gscore(g, pi);
    const double gs_rnd = gscore(g, random_order(g, 9));
    EXPECT_GT(gs, 1.5 * gs_rnd);
}

TEST(Gorder, WindowOneStillValid)
{
    GorderOptions opt;
    opt.window = 1;
    const auto g = grid_graph(8, 8);
    EXPECT_TRUE(gorder_order(g, opt).is_valid());
}

TEST(Gorder, KeepsCliqueVerticesTogether)
{
    const auto g = two_cliques(10);
    const auto pi = gorder_order(g);
    const auto m = compute_gap_metrics(g, pi);
    // Both cliques contiguous => avg gap far below random.
    const auto rnd = compute_gap_metrics(g, random_order(g, 1));
    EXPECT_LT(m.avg_gap, rnd.avg_gap);
}

TEST(Gorder, HeapCompactionBoundsStarGraphPeak)
{
    // A star with hub propagation enabled (hub_cutoff = 0) is the worst
    // case for the lazy heap: every leaf placement re-bumps every other
    // unplaced leaf through the center, so entries pile up quadratically
    // and decay to stale as the window slides.  With compaction off the
    // heap peaks near the total event count; with it on the peak stays
    // within ~2x the live leaf count — and the emitted order must not
    // move, because compaction only drops entries a pop would have
    // discarded anyway.
    const auto g = star_graph(1000);
    auto& reg = obs::MetricsRegistry::instance();
    GorderOptions opt;
    opt.hub_cutoff = 0;
    opt.heap_compaction = false;
    const auto pi_off = gorder_order(g, opt);
    const double peak_off = reg.gauge("order/gorder/heap_peak").value();
    const auto compactions_before =
        reg.counter("order/gorder/heap_compactions").value();
    opt.heap_compaction = true;
    const auto pi_on = gorder_order(g, opt);
    const double peak_on = reg.gauge("order/gorder/heap_peak").value();
    const auto compactions_after =
        reg.counter("order/gorder/heap_compactions").value();
    EXPECT_EQ(pi_on.ranks(), pi_off.ranks());
    EXPECT_GT(compactions_after, compactions_before);
    EXPECT_LT(peak_on, peak_off / 2.0)
        << "peak_on=" << peak_on << " peak_off=" << peak_off;
}

// ------------------------------------------------- partition / community

TEST(PartitionOrder, PartsAreContiguousBlocks)
{
    const auto g = gen_mesh(512, 0, 9);
    PartitionOptions popt;
    const auto p = partition_kway(g, 8, popt);
    const auto pi = order_from_partition(p.part, g.num_vertices());
    // Ranks within a part form a contiguous range.
    std::vector<vid_t> lo(8, kNoVertex), hi(8, 0), count(8, 0);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        const vid_t c = p.part[v];
        lo[c] = std::min(lo[c], pi.rank(v));
        hi[c] = std::max(hi[c], pi.rank(v));
        ++count[c];
    }
    for (vid_t c = 0; c < 8; ++c)
        EXPECT_EQ(hi[c] - lo[c] + 1, count[c]) << "part " << c;
}

TEST(PartitionOrder, MetisStyleReducesAvgGapOnMesh)
{
    const auto g = gen_mesh(1024, 0, 12);
    const auto metis = compute_gap_metrics(g, metis_style_order(g, 32));
    const auto rnd = compute_gap_metrics(g, random_order(g, 3));
    EXPECT_LT(metis.avg_gap, rnd.avg_gap / 3);
}

TEST(CommunityOrder, GrappoloPacksCommunities)
{
    const auto g = two_cliques(12);
    const auto pi = grappolo_order(g);
    ASSERT_TRUE(pi.is_valid());
    // Clique members contiguous: max rank diff inside a clique = 11.
    vid_t lo0 = 24, hi0 = 0;
    for (vid_t v = 0; v < 12; ++v) {
        lo0 = std::min(lo0, pi.rank(v));
        hi0 = std::max(hi0, pi.rank(v));
    }
    EXPECT_EQ(hi0 - lo0, 11u);
}

TEST(CommunityOrder, GrappoloRcmOrdersCommunitiesByAdjacency)
{
    // Chain of 6 cliques: grappolo-rcm should order the blocks along the
    // chain, giving a much smaller bandwidth than arbitrary block order.
    const vid_t k = 8, blocks = 6;
    GraphBuilder b(k * blocks);
    for (vid_t c = 0; c < blocks; ++c) {
        for (vid_t u = 0; u < k; ++u)
            for (vid_t v = u + 1; v < k; ++v)
                b.add_edge(c * k + u, c * k + v);
        if (c + 1 < blocks)
            b.add_edge(c * k + k - 1, (c + 1) * k);
    }
    const auto g = b.finalize();
    const auto pi = grappolo_rcm_order(g);
    ASSERT_TRUE(pi.is_valid());
    const auto m = compute_gap_metrics(g, pi);
    EXPECT_LE(m.bandwidth, 2 * k); // adjacent blocks adjacent in rank
}

TEST(Rabbit, MergesCliquesIntoContiguousBlocks)
{
    const auto g = two_cliques(12);
    const auto pi = rabbit_order(g);
    ASSERT_TRUE(pi.is_valid());
    const auto m = compute_gap_metrics(g, pi);
    const auto rnd = compute_gap_metrics(g, random_order(g, 2));
    EXPECT_LT(m.avg_gap, rnd.avg_gap);
}

TEST(Rabbit, BeatsRandomOnSbm)
{
    const auto g = gen_sbm(1000, 6000, 12, 0.9, 31);
    const auto rab = compute_gap_metrics(g, rabbit_order(g));
    const auto rnd = compute_gap_metrics(g, random_order(g, 4));
    EXPECT_LT(rab.avg_gap, rnd.avg_gap / 2);
}

// ----------------------------------------------------------- extensions

TEST(MinLaSa, NeverWorseThanStart)
{
    const auto g = gen_mesh(256, 0, 2);
    const auto start = natural_order(g);
    MinLaSaOptions opt;
    opt.steps = 20;
    const auto pi = minla_sa_order(g, start, opt);
    ASSERT_TRUE(pi.is_valid());
    EXPECT_LE(compute_gap_metrics(g, pi).total_gap,
              compute_gap_metrics(g, start).total_gap);
}

TEST(MinLaSa, ImprovesRandomStartOnPath)
{
    const auto g = path_graph(64);
    const auto start = random_order(g, 17);
    const auto pi = minla_sa_order(g, start);
    EXPECT_LT(compute_gap_metrics(g, pi).total_gap,
              0.8 * compute_gap_metrics(g, start).total_gap);
}

// ------------------------------------------------------------- registry

TEST(Registry, PaperSchemeRosterMatchesSectionV)
{
    const auto& schemes = paper_schemes();
    EXPECT_EQ(schemes.size(), 13u); // 11 of §V + grappolo-rcm + hubcluster
    for (const char* name :
         {"natural", "random", "degree", "hubsort", "hubcluster",
          "slashburn", "gorder", "metis-32", "grappolo", "grappolo-rcm",
          "rabbit", "rcm", "nd"}) {
        EXPECT_NO_THROW(scheme_by_name(name)) << name;
    }
}

TEST(Registry, ApplicationSchemesMatchFigure9)
{
    const auto& app = application_schemes();
    ASSERT_EQ(app.size(), 4u);
    EXPECT_EQ(app[0].name, "grappolo");
    EXPECT_EQ(app[1].name, "rcm");
    EXPECT_EQ(app[2].name, "natural");
    EXPECT_EQ(app[3].name, "degree");
}

TEST(Registry, UnknownSchemeThrows)
{
    EXPECT_THROW(scheme_by_name("bogus"), std::out_of_range);
}

TEST(Registry, CategoriesNamed)
{
    EXPECT_STREQ(category_name(SchemeCategory::Window), "window");
    EXPECT_STREQ(category_name(SchemeCategory::FillReducing),
                 "fill-reducing");
}

TEST(Registry, DbgMetadata)
{
    const auto& s = scheme_by_name("dbg");
    EXPECT_EQ(s.category, SchemeCategory::DegreeHub);
    EXPECT_TRUE(s.scalable);
    EXPECT_TRUE(s.deterministic);
    EXPECT_EQ(s.cost_class, CostClass::NearLinear);
    const std::vector<std::string> chain{"hubcluster", "degree",
                                         "natural"};
    EXPECT_EQ(s.fallback, chain);
    // DBG postdates the paper's §V study: registered as an extension to
    // all_schemes(), never in the paper roster.
    for (const auto& p : paper_schemes())
        EXPECT_NE(p.name, "dbg");
}

TEST(Registry, CostClassesSpanTheTiers)
{
    EXPECT_EQ(scheme_by_name("degree").cost_class, CostClass::NearLinear);
    EXPECT_EQ(scheme_by_name("rcm").cost_class, CostClass::Linearithmic);
    EXPECT_EQ(scheme_by_name("metis-32").cost_class,
              CostClass::Linearithmic);
    EXPECT_EQ(scheme_by_name("gorder").cost_class, CostClass::SuperLinear);
    EXPECT_STREQ(cost_class_name(CostClass::NearLinear), "near-linear");
    EXPECT_STREQ(cost_class_name(CostClass::Linearithmic),
                 "linearithmic");
    EXPECT_STREQ(cost_class_name(CostClass::SuperLinear), "super-linear");
}

} // namespace
} // namespace graphorder
