/**
 * @file
 * Robustness layer tests: the status taxonomy, deterministic fault
 * injection (every registered FaultPoint fired through a real driver),
 * guarded runs with budgets + fallback, and a mutation-fuzz pass over
 * the text parsers.  Run under ASan/UBSan in the CI fault-injection job.
 */
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "community/louvain.hpp"
#include "gen/datasets.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/permutation.hpp"
#include "influence/imm.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "order/gorder.hpp"
#include "order/runner.hpp"
#include "order/scheme.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "testutil.hpp"
#include "util/cancel.hpp"
#include "util/faultpoint.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace graphorder {
namespace {

using testing::figure2_graph;
using testing::grid_graph;
using testing::path_graph;
using testing::two_cliques;

/** Valid 5-vertex METIS text (path 1-2-3-4-5, symmetric listing). */
const char* kMetisText = "5 4\n2\n1 3\n2 4\n3 5\n4\n";

/** Valid edge-list text with comments and a weighted column. */
const char* kEdgeListText =
    "# comment\n0 1 1.5\n1 2 2.0\n2 3 0.5\n3 0 1.0\n% other comment\n";

/** Clears armed faults on scope exit so tests cannot leak arms. */
struct FaultGuard
{
    ~FaultGuard() { clear_faults(); }
};

} // namespace

// ---------------------------------------------------------------- taxonomy

TEST(Status, ExitCodeMapping)
{
    EXPECT_EQ(exit_code_for(StatusCode::Ok), 0);
    EXPECT_EQ(exit_code_for(StatusCode::InvalidInput), 2);
    EXPECT_EQ(exit_code_for(StatusCode::Truncated), 2);
    EXPECT_EQ(exit_code_for(StatusCode::BudgetExceeded), 3);
    EXPECT_EQ(exit_code_for(StatusCode::Cancelled), 3);
    EXPECT_EQ(exit_code_for(StatusCode::InvariantViolation), 4);
    EXPECT_EQ(exit_code_for(StatusCode::Internal), 4);
    // The service codes are transient like a blown budget: exit 3, and
    // the pre-existing codes above must keep their values forever.
    EXPECT_EQ(exit_code_for(StatusCode::Overloaded), 3);
    EXPECT_EQ(exit_code_for(StatusCode::Unavailable), 3);
    EXPECT_STREQ(status_code_name(StatusCode::Overloaded), "overloaded");
    EXPECT_STREQ(status_code_name(StatusCode::Unavailable),
                 "unavailable");
}

TEST(Status, ToStringCarriesCodeMessageAndContext)
{
    Status s(StatusCode::InvalidInput, "bad header");
    s.with_context("loading x.graph").with_context("building figure 1");
    const std::string text = s.to_string();
    EXPECT_NE(text.find("invalid-input"), std::string::npos);
    EXPECT_NE(text.find("bad header"), std::string::npos);
    EXPECT_NE(text.find("loading x.graph"), std::string::npos);
    EXPECT_NE(text.find("building figure 1"), std::string::npos);
}

TEST(Status, GraphorderErrorIsARuntimeError)
{
    // Legacy call sites catch std::runtime_error; the taxonomy must
    // remain visible to them.
    try {
        throw GraphorderError(StatusCode::Truncated, "cut off");
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
}

TEST(Status, FromCurrentException)
{
    try {
        throw GraphorderError(StatusCode::BudgetExceeded, "x");
    } catch (...) {
        EXPECT_EQ(status_from_current_exception().code(),
                  StatusCode::BudgetExceeded);
    }
    try {
        throw std::bad_alloc();
    } catch (...) {
        EXPECT_EQ(status_from_current_exception().code(),
                  StatusCode::BudgetExceeded);
    }
    try {
        throw std::runtime_error("plain");
    } catch (...) {
        const Status s = status_from_current_exception();
        EXPECT_EQ(s.code(), StatusCode::Internal);
        EXPECT_NE(s.message().find("plain"), std::string::npos);
    }
}

TEST(Status, ExpectedValueAndError)
{
    Expected<int> ok = 7;
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(*ok, 7);
    EXPECT_TRUE(ok.status().is_ok());

    Expected<int> err = Status(StatusCode::InvalidInput, "nope");
    ASSERT_FALSE(err.has_value());
    EXPECT_EQ(err.status().code(), StatusCode::InvalidInput);
    EXPECT_THROW(err.value(), GraphorderError);
}

// ------------------------------------------------------------- validation

TEST(Validation, PermutationDetectsEachCorruption)
{
    EXPECT_TRUE(validate_permutation(Permutation::identity(5), 5).is_ok());
    // Size mismatch.
    EXPECT_EQ(validate_permutation(Permutation::identity(4), 5).code(),
              StatusCode::InvariantViolation);
    // Out-of-range rank.
    auto out_of_range = Permutation::from_ranks({0, 1, 9});
    EXPECT_EQ(validate_permutation(out_of_range, 3).code(),
              StatusCode::InvariantViolation);
    // Duplicate rank.
    auto dup = Permutation::from_ranks({0, 1, 1});
    const Status s = validate_permutation(dup, 3);
    EXPECT_EQ(s.code(), StatusCode::InvariantViolation);
    EXPECT_NE(s.message().find("twice"), std::string::npos);
}

TEST(Validation, CsrValidateDetectsCorruption)
{
    const Csr good = figure2_graph();
    EXPECT_TRUE(good.validate().is_ok());

    // Decreasing offsets (the endpoints still satisfy the constructor's
    // cheap checks; only validate() walks the interior).
    Csr bad_offsets(std::vector<eid_t>{0, 3, 2, 3},
                    std::vector<vid_t>{0, 1, 0}, {});
    EXPECT_EQ(bad_offsets.validate().code(),
              StatusCode::InvariantViolation);

    // Adjacency entry out of range.
    Csr bad_adj(std::vector<eid_t>{0, 1, 2}, std::vector<vid_t>{9, 0}, {});
    EXPECT_EQ(bad_adj.validate().code(), StatusCode::InvariantViolation);
}

// ---------------------------------------------------------- fault registry

TEST(FaultPoints, RegistryEnumeratesDocumentedSites)
{
    for (const char* name :
         {"io.open", "io.edge_list.truncate", "io.metis.truncate",
          "graph.csr.build", "gen.dataset.make", "order.scheme",
          "order.oom", "louvain.phase", "imm.round"}) {
        EXPECT_NE(find_fault_point(name), nullptr)
            << "fault point not registered: " << name;
    }
}

TEST(FaultPoints, FiresOnNthHitExactlyOnce)
{
    FaultGuard guard;
    auto* fp = find_fault_point("graph.csr.build");
    ASSERT_NE(fp, nullptr);
    arm_fault("graph.csr.build", 2);
    EXPECT_NO_THROW(fp->maybe_fire()); // hit 1 of 2
    EXPECT_THROW(fp->maybe_fire(), GraphorderError); // hit 2 fires
    EXPECT_NO_THROW(fp->maybe_fire()); // fired once; disarmed now
}

TEST(FaultPoints, SpecParsing)
{
    FaultGuard guard;
    EXPECT_EQ(apply_fault_spec("io.open:1,order.scheme:3"), 2u);
    clear_faults();
    // Sustained modes ride the same grammar.
    EXPECT_EQ(apply_fault_spec("io.open:*"), 1u);
    clear_faults();
    EXPECT_EQ(apply_fault_spec("io.open:2+,order.scheme:*"), 2u);
    clear_faults();
    EXPECT_THROW(apply_fault_spec("io.open"), GraphorderError);
    EXPECT_THROW(apply_fault_spec("io.open:zero"), GraphorderError);
    EXPECT_THROW(apply_fault_spec("io.open:0"), GraphorderError);
    EXPECT_THROW(apply_fault_spec(":3"), GraphorderError);
    EXPECT_THROW(apply_fault_spec("io.open:+"), GraphorderError);
    EXPECT_THROW(apply_fault_spec("io.open:*2"), GraphorderError);
    EXPECT_THROW(apply_fault_spec("io.open:0+"), GraphorderError);
}

TEST(FaultPoints, SustainedFiresOnEveryHit)
{
    FaultGuard guard;
    auto* fp = find_fault_point("graph.csr.build");
    ASSERT_NE(fp, nullptr);
    arm_fault("graph.csr.build", 1, /*repeat=*/true);
    EXPECT_THROW(fp->maybe_fire(), GraphorderError);
    EXPECT_THROW(fp->maybe_fire(), GraphorderError); // never disarms
    EXPECT_TRUE(faults_armed());
    clear_faults();
    EXPECT_NO_THROW(fp->maybe_fire());
}

TEST(FaultPoints, SustainedFromNthHitOnward)
{
    FaultGuard guard;
    auto* fp = find_fault_point("graph.csr.build");
    ASSERT_NE(fp, nullptr);
    EXPECT_EQ(apply_fault_spec("graph.csr.build:2+"), 1u);
    EXPECT_NO_THROW(fp->maybe_fire());                // hit 1: below N
    EXPECT_THROW(fp->maybe_fire(), GraphorderError);  // hit 2 fires
    EXPECT_THROW(fp->maybe_fire(), GraphorderError);  // ...and stays
}

TEST(FaultPoints, DisarmedWhenNoneArmed)
{
    clear_faults();
    EXPECT_FALSE(faults_armed());
}

// ------------------------------------------------------------ fault matrix

/**
 * Every registered fault point must have a driver that reaches its site
 * through the real code path, and firing it must surface a
 * GraphorderError carrying the site's declared StatusCode — the "no
 * failure path is untyped" guarantee.
 */
TEST(FaultMatrix, EveryRegisteredSiteFiresItsDeclaredCode)
{
    FaultGuard guard;
    const Csr g = two_cliques(6);

    const std::map<std::string, std::function<void()>> drivers = {
        {"io.open", [] { load_edge_list("fault-matrix.edges"); }},
        {"io.edge_list.truncate",
         [] {
             std::istringstream in(kEdgeListText);
             read_edge_list(in);
         }},
        {"io.metis.truncate",
         [] {
             std::istringstream in(kMetisText);
             read_metis(in);
         }},
        {"graph.csr.build",
         [] {
             build_csr(3, {{0, 1, 1.0}, {1, 2, 1.0}});
         }},
        {"gen.dataset.make",
         [] { dataset_by_name("chicago-road").make(256.0); }},
        {"order.scheme",
         [&g] { scheme_by_name("natural").run(g, 42); }},
        {"order.oom",
         [&g] {
             GuardedRunOptions opt;
             opt.allow_fallback = false;
             run_guarded("natural", g, opt).value();
         }},
        {"louvain.phase", [&g] { louvain(g); }},
        // The real consumer (PerfCounters::open_all) *catches* this
        // site's error and degrades to available=false — that contract
        // is covered by report_test.PerfFallback.  Here the site is
        // fired directly so the matrix still proves it throws its
        // declared code.
        {"obs.perf.open",
         [] {
             // Touch the owning translation unit so its namespace-scope
             // registration is linked into this binary.
             (void)obs::perf_event_name(obs::PerfEvent::kCycles);
             find_fault_point("obs.perf.open")->maybe_fire();
         }},
        {"imm.round",
         [&g] {
             ImmOptions io;
             io.num_seeds = 2;
             io.max_samples = 1u << 10;
             imm(g, io);
         }},
        {"service.proto.parse",
         [] { service::parse_request("PING"); }},
        {"service.admit",
         [&g] {
             service::ServiceOptions so;
             so.workers = 1;
             service::ReorderService svc(so);
             svc.add_graph("g", Csr(g));
             service::Request req;
             req.verb = service::Verb::kOrder;
             req.graph = "g";
             req.scheme = "natural";
             const auto o = svc.order(req);
             if (!o.status.is_ok())
                 throw GraphorderError(o.status);
         }},
        {"service.worker.exec",
         [&g] {
             // One attempt, no degradation: the injected failure must
             // surface instead of being healed by retry/fallback (that
             // healing is service_test's subject).
             service::ServiceOptions so;
             so.workers = 1;
             so.retry.max_attempts = 1;
             so.allow_degraded = false;
             service::ReorderService svc(so);
             svc.add_graph("g", Csr(g));
             service::Request req;
             req.verb = service::Verb::kOrder;
             req.graph = "g";
             req.scheme = "natural";
             const auto o = svc.order(req);
             if (!o.status.is_ok())
                 throw GraphorderError(o.status);
         }},
        // The real consumer (ReorderService::cache_lookup_guarded)
        // *absorbs* this site's error as a cache miss — that contract
        // is covered by service_test.  Direct fire keeps the matrix
        // exhaustive, mirroring obs.perf.open above.
        {"service.cache.lookup",
         [] { find_fault_point("service.cache.lookup")->maybe_fire(); }},
    };

    for (const FaultPoint* fp : all_fault_points()) {
        const auto it = drivers.find(fp->name());
        ASSERT_NE(it, drivers.end())
            << "registered fault point has no test driver: " << fp->name()
            << " — add one to keep the fault matrix exhaustive";
        clear_faults();
        arm_fault(fp->name(), 1);
        try {
            it->second();
            FAIL() << "armed fault did not fire: " << fp->name();
        } catch (const GraphorderError& e) {
            EXPECT_EQ(e.code(), fp->code()) << "wrong code from "
                                            << fp->name();
            EXPECT_NE(std::string(e.what()).find(fp->name()),
                      std::string::npos);
        }
    }
    clear_faults();
}

// ------------------------------------------------------------ guarded runs

TEST(GuardedRun, SucceedsAndValidates)
{
    const Csr g = grid_graph(8, 8);
    const auto r = run_guarded("rcm", g);
    ASSERT_TRUE(r.has_value()) << r.status().to_string();
    EXPECT_EQ(r->scheme_used, "rcm");
    EXPECT_FALSE(r->fell_back);
    EXPECT_TRUE(validate_permutation(r->perm, g.num_vertices()).is_ok());
}

TEST(GuardedRun, UnknownSchemeIsInvalidInput)
{
    const Csr g = path_graph(4);
    const auto r = run_guarded("no-such-scheme", g);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.status().code(), StatusCode::InvalidInput);
}

TEST(GuardedRun, CorruptInputGraphIsRejected)
{
    Csr bad(std::vector<eid_t>{0, 2, 1, 2}, std::vector<vid_t>{1, 0}, {});
    const auto r = run_guarded("natural", bad);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.status().code(), StatusCode::InvariantViolation);
}

TEST(GuardedRun, EverySchemeRecoversFromInjectedFaultViaFallback)
{
    FaultGuard guard;
    const Csr g = two_cliques(8);
    auto& fallbacks =
        obs::MetricsRegistry::instance().counter("robust/fallbacks");
    const std::uint64_t fallbacks_before = fallbacks.value();

    for (const auto& s : all_schemes()) {
        clear_faults();
        arm_fault("order.scheme", 1);
        const auto r = run_guarded(s, g);
        ASSERT_TRUE(r.has_value())
            << s.name << ": " << r.status().to_string();
        EXPECT_TRUE(
            validate_permutation(r->perm, g.num_vertices()).is_ok())
            << s.name;
        ASSERT_FALSE(r->failures.empty()) << s.name;
        EXPECT_EQ(r->failures.front().status.code(), StatusCode::Internal)
            << s.name;
        // natural retries itself (the fault fires once), so it recovers
        // without switching schemes; everything else must fall back.
        EXPECT_EQ(r->fell_back, s.name != "natural") << s.name;
    }
    clear_faults();
    // all_schemes() minus natural fell back; the counter must have moved.
    EXPECT_GE(fallbacks.value(),
              fallbacks_before + all_schemes().size() - 1);
}

TEST(GuardedRun, FallbackDisabledSurfacesTheFailure)
{
    FaultGuard guard;
    const Csr g = path_graph(16);
    arm_fault("order.scheme", 1);
    GuardedRunOptions opt;
    opt.allow_fallback = false;
    const auto r = run_guarded("degree", g, opt);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.status().code(), StatusCode::Internal);
}

TEST(GuardedRun, FallbackOverrideIsHonored)
{
    FaultGuard guard;
    const Csr g = path_graph(16);
    arm_fault("order.scheme", 1);
    GuardedRunOptions opt;
    opt.fallback_override = {"bfs"};
    const auto r = run_guarded("degree", g, opt);
    ASSERT_TRUE(r.has_value()) << r.status().to_string();
    EXPECT_EQ(r->scheme_used, "bfs");
    EXPECT_TRUE(r->fell_back);
}

TEST(GuardedRun, DeadlineStopsGorderAndFallbackRecovers)
{
    // A graph big enough that gorder (priority-queue emit loop, polled
    // every 256 emits) cannot finish in 2 ms, while degree/natural
    // finish comfortably inside a fresh 2 ms budget.
    Rng rng(7);
    GraphBuilder b(20000);
    for (int i = 0; i < 80000; ++i) {
        const auto u = static_cast<vid_t>(rng.next_below(20000));
        const auto v = static_cast<vid_t>(rng.next_below(20000));
        if (u != v)
            b.add_edge(u, v);
    }
    const Csr g = b.finalize();

    GuardedRunOptions opt;
    opt.deadline_ms = 2.0;
    opt.allow_fallback = false;
    const auto blown = run_guarded("gorder", g, opt);
    ASSERT_FALSE(blown.has_value());
    EXPECT_EQ(blown.status().code(), StatusCode::BudgetExceeded);

    opt.allow_fallback = true;
    const auto recovered = run_guarded("gorder", g, opt);
    ASSERT_TRUE(recovered.has_value()) << recovered.status().to_string();
    EXPECT_TRUE(recovered->fell_back);
    EXPECT_TRUE(
        validate_permutation(recovered->perm, g.num_vertices()).is_ok());
}

TEST(CancelToken, MemoryBudgetTripsOnRssGrowth)
{
    if (current_rss_bytes() == 0)
        GTEST_SKIP() << "RSS sampling unavailable on this platform";
    CancelToken token({0, 1}); // 1-byte growth budget
    // Touch every page so the allocation lands in RSS.
    std::vector<char> ballast(64 << 20, 1);
    const Status s = token.check("test-site");
    EXPECT_EQ(s.code(), StatusCode::BudgetExceeded);
    EXPECT_NE(s.message().find("test-site"), std::string::npos);
    (void)ballast;
}

TEST(CancelToken, ManualCancellation)
{
    CancelToken token({0, 0});
    EXPECT_TRUE(token.check("x").is_ok());
    token.cancel();
    EXPECT_EQ(token.check("x").code(), StatusCode::Cancelled);
    ScopedCancelToken scope(token);
    EXPECT_THROW(checkpoint("x"), GraphorderError);
}

TEST(CancelToken, CheckpointIsANoOpWithoutAToken)
{
    EXPECT_NO_THROW(checkpoint("anywhere"));
}

// ----------------------------------------- cancellation under parallelism

namespace {

/** RAII thread-override guard (mirrors tests/parallel_test.cpp). */
struct ThreadGuard
{
    explicit ThreadGuard(int n) { set_default_threads(n); }
    ~ThreadGuard() { set_default_threads(0); }
};

} // namespace

TEST(CancelToken, ParallelCheckpointLatchesAndRethrows)
{
    CancelToken token({0, 0});
    ScopedCancelToken scope(token);
    ParallelCheckpoint cp("test/region");
    EXPECT_FALSE(cp.stop());
    EXPECT_NO_THROW(cp.rethrow());
    token.cancel(); // as if another thread cancelled mid-region
    EXPECT_TRUE(cp.stop());
    EXPECT_TRUE(cp.stop()); // latched
    try {
        cp.rethrow();
        FAIL() << "expected Cancelled";
    } catch (const GraphorderError& e) {
        EXPECT_EQ(e.code(), StatusCode::Cancelled);
        EXPECT_NE(std::string(e.what()).find("test/region"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CancelToken, ParallelCheckpointIsANoOpWithoutAToken)
{
    ParallelCheckpoint cp("test/region");
    EXPECT_FALSE(cp.stop());
    EXPECT_NO_THROW(cp.rethrow());
}

TEST(CancelToken, HeavyweightSchemesObserveCancelUnderParallelism)
{
    // A pre-cancelled token must stop every heavyweight scheme even
    // when its kernels run on a real OpenMP team: the serial round
    // checkpoints and the ParallelCheckpoint bridges both feed off the
    // installing thread's token.
    const auto g = two_cliques(12);
    for (const char* name : {"gorder", "slashburn", "rcm", "rabbit"}) {
        CancelToken token({0, 0});
        token.cancel();
        ScopedCancelToken scope(token);
        ThreadGuard tg(4);
        EXPECT_THROW(scheme_by_name(name).run(g, 2020),
                     GraphorderError)
            << name;
    }
}

TEST(CancelToken, GorderBlockedEmitStopsOnExpiredDeadline)
{
    // Force the partition-parallel Gorder path (blocks = 4) on a graph
    // big enough that the greedy emit cannot finish inside a 1 ms
    // budget: the run must die with BudgetExceeded whichever side
    // observes it first — the serial partition checkpoint or the
    // ParallelCheckpoint rethrow after the block loop.
    Rng rng(17);
    GraphBuilder b(20000);
    for (int i = 0; i < 80000; ++i) {
        const auto u = static_cast<vid_t>(rng.next_below(20000));
        const auto v = static_cast<vid_t>(rng.next_below(20000));
        if (u != v)
            b.add_edge(u, v);
    }
    const Csr g = b.finalize();
    GorderOptions opt;
    opt.blocks = 4;
    CancelToken token({1.0, 0});
    ScopedCancelToken scope(token);
    ThreadGuard tg(4);
    try {
        gorder_order(g, opt);
        FAIL() << "expected BudgetExceeded";
    } catch (const GraphorderError& e) {
        EXPECT_EQ(e.code(), StatusCode::BudgetExceeded) << e.what();
    }
}

// -------------------------------------------------------- parser messages

TEST(IoErrors, CarryPathAndLineNumber)
{
    std::istringstream in("3 2\n2\n1 3\n"); // ends at vertex 3 of 3
    try {
        read_metis(in, "dir/x.graph");
        FAIL() << "expected Truncated";
    } catch (const GraphorderError& e) {
        EXPECT_EQ(e.code(), StatusCode::Truncated);
        EXPECT_NE(std::string(e.what()).find("dir/x.graph:4"),
                  std::string::npos)
            << e.what();
    }

    std::istringstream bad("0 1 2.0\n1 2\n");
    try {
        read_edge_list(bad, true, "y.edges");
        FAIL() << "expected InvalidInput";
    } catch (const GraphorderError& e) {
        EXPECT_EQ(e.code(), StatusCode::InvalidInput);
        EXPECT_NE(std::string(e.what()).find("y.edges:2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(IoErrors, MetisHeaderSanity)
{
    // Vertex count overflowing vid_t.
    std::istringstream huge("99999999999 1\n");
    EXPECT_THROW(read_metis(huge), GraphorderError);
    // An edge count impossible for n is a header/body mismatch, not an
    // error: the parsed count wins (the seed-era lenient contract) and
    // the mismatch counter is bumped.  The lying m only feeds a capped
    // reserve, so leniency cannot poison allocations.
    auto& mismatch = obs::MetricsRegistry::instance().counter(
        "io/metis/header_mismatch");
    const auto before = mismatch.value();
    std::istringstream impossible("4 999999\n\n\n\n\n");
    const Csr g = read_metis(impossible);
    EXPECT_EQ(g.num_edges(), 0u);
    EXPECT_EQ(mismatch.value(), before + 1);
    // Unsupported fmt.
    std::istringstream fmt("2 1 11\n2\n1\n");
    EXPECT_THROW(read_metis(fmt), GraphorderError);
}

// ------------------------------------------------------------ mutation fuzz

namespace {

/** Corrupt @p text at @p edits seeded positions. */
std::string
mutate(const std::string& text, Rng& rng, int edits)
{
    static const char kBytes[] = "0123456789 \n\t%#-x:\xff\x00";
    std::string out = text;
    for (int e = 0; e < edits && !out.empty(); ++e) {
        const auto pos =
            static_cast<std::size_t>(rng.next_below(out.size()));
        const auto action = rng.next_below(3);
        if (action == 0) // overwrite
            out[pos] = kBytes[rng.next_below(sizeof(kBytes) - 1)];
        else if (action == 1) // delete
            out.erase(pos, 1);
        else // insert
            out.insert(pos, 1,
                       kBytes[rng.next_below(sizeof(kBytes) - 1)]);
    }
    return out;
}

} // namespace

TEST(MutationFuzz, MetisParserNeverEscapesTheTaxonomy)
{
    Rng rng(2020);
    for (int trial = 0; trial < 400; ++trial) {
        const std::string corrupted =
            mutate(kMetisText, rng, 1 + static_cast<int>(trial % 8));
        std::istringstream in(corrupted);
        try {
            const Csr g = read_metis(in, "fuzz.graph");
            // Parsed despite corruption: the result must still be a
            // structurally valid graph.
            EXPECT_TRUE(g.validate().is_ok());
        } catch (const GraphorderError&) {
            // Typed rejection is the other acceptable outcome.
        }
        // Anything else (std::bad_alloc, std::length_error, UB caught by
        // the sanitizers) fails the test by escaping the try.
    }
}

TEST(MutationFuzz, EdgeListParserNeverEscapesTheTaxonomy)
{
    Rng rng(4040);
    for (int trial = 0; trial < 400; ++trial) {
        const std::string corrupted =
            mutate(kEdgeListText, rng, 1 + static_cast<int>(trial % 8));
        std::istringstream in(corrupted);
        try {
            const Csr g = read_edge_list(in, trial % 2 == 0, "fuzz.edges");
            EXPECT_TRUE(g.validate().is_ok());
        } catch (const GraphorderError&) {
        }
    }
}

} // namespace graphorder
