/**
 * @file
 * The CELF ⇔ exact-greedy equivalence suite: the selection engine's
 * central contract is that celf_select() returns *byte-identical* seed
 * sets to the retained reference greedy_max_coverage() — same vertices,
 * same order, same covered fraction — for any diffusion model, thread
 * count and k.  Lazy evaluation is sound because submodularity makes
 * cached gains upper bounds; identical tie-breaking ((gain desc,
 * vertex-id asc)) makes the match exact, not just equal-quality.
 */
#include <gtest/gtest.h>

#include <vector>

#include "gen/generators.hpp"
#include "influence/imm.hpp"
#include "influence/rrr.hpp"
#include "util/parallel.hpp"

namespace graphorder {
namespace {

struct ThreadGuard
{
    ~ThreadGuard() { set_default_threads(0); }
};

/// Sample an arena, then check CELF == greedy for every requested k.
void
expect_equivalence(const Csr& g, const ImmOptions& opt,
                   std::uint64_t num_sets,
                   const std::vector<vid_t>& ks)
{
    RrrArena arena;
    sample_rrr_sets(g, opt, num_sets, arena);
    const auto nested = arena.as_sets();
    CoverageIndex index;
    index.reset(g.num_vertices());
    index.extend(arena);

    for (vid_t k : ks) {
        double frac_greedy = 0.0, frac_celf = 0.0;
        const auto ref =
            greedy_max_coverage(g.num_vertices(), nested, k, &frac_greedy);
        SelectionStats st;
        const auto got = celf_select(arena, index, k, &frac_celf, &st);
        EXPECT_EQ(got, ref) << "k=" << k;
        EXPECT_DOUBLE_EQ(frac_celf, frac_greedy) << "k=" << k;
        EXPECT_GE(st.heap_pops, got.size()) << "k=" << k;
        EXPECT_LE(st.lazy_reevals, st.heap_pops) << "k=" << k;
    }
}

TEST(SelectionEquivalence, IndependentCascadeAcrossThreadCounts)
{
    const auto g = gen_rmat(2000, 16000, 0.57, 0.19, 0.19, 21);
    ImmOptions opt;
    opt.edge_probability = 0.08;
    const std::vector<vid_t> ks{1, 8, g.num_vertices()};
    ThreadGuard guard;
    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        set_default_threads(threads);
        expect_equivalence(g, opt, 600, ks);
    }
}

TEST(SelectionEquivalence, LinearThresholdAcrossThreadCounts)
{
    const auto g = gen_sbm(1500, 12000, 10, 0.85, 22);
    ImmOptions opt;
    opt.model = DiffusionModel::LinearThreshold;
    const std::vector<vid_t> ks{1, 8, g.num_vertices()};
    ThreadGuard guard;
    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        set_default_threads(threads);
        expect_equivalence(g, opt, 600, ks);
    }
}

TEST(SelectionEquivalence, SeedsIdenticalAtEveryThreadCount)
{
    // The stronger form of the determinism contract: the whole pipeline
    // (sampling + index + CELF) yields byte-identical seeds at 1, 2 and
    // 8 threads, not merely greedy-equivalent ones per thread count.
    const auto g = gen_rmat(3000, 24000, 0.57, 0.19, 0.19, 23);
    ImmOptions opt;
    opt.edge_probability = 0.05;
    ThreadGuard guard;

    std::vector<std::vector<vid_t>> per_threads;
    RrrArena reference_arena;
    for (int threads : {1, 2, 8}) {
        set_default_threads(threads);
        RrrArena arena;
        sample_rrr_sets(g, opt, 800, arena);
        if (threads == 1)
            reference_arena = arena;
        else
            EXPECT_EQ(arena, reference_arena) << threads;
        CoverageIndex index;
        index.reset(g.num_vertices());
        index.extend(arena);
        per_threads.push_back(celf_select(arena, index, 16));
    }
    ASSERT_EQ(per_threads.size(), 3u);
    EXPECT_EQ(per_threads[0], per_threads[1]);
    EXPECT_EQ(per_threads[0], per_threads[2]);
}

TEST(SelectionEquivalence, IncrementalIndexSelectsLikeFullRebuild)
{
    // The martingale loop extends the index round by round; selection
    // over the accumulated segments must match a one-shot index.
    const auto g = gen_rmat(1200, 9000, 0.57, 0.19, 0.19, 24);
    ImmOptions opt;
    opt.edge_probability = 0.1;

    RrrArena arena;
    CoverageIndex incremental;
    incremental.reset(g.num_vertices());
    std::uint64_t produced = 0;
    for (std::uint64_t round : {100u, 200u, 400u}) {
        sample_rrr_sets(g, opt, round, arena, produced);
        produced += round;
        incremental.extend(arena);
    }
    ASSERT_EQ(incremental.num_segments(), 3u);

    CoverageIndex full;
    full.reset(g.num_vertices());
    full.extend(arena);

    for (vid_t k : {1u, 8u, 64u}) {
        double fa = 0.0, fb = 0.0;
        const auto a = celf_select(arena, incremental, k, &fa);
        const auto b = celf_select(arena, full, k, &fb);
        EXPECT_EQ(a, b) << "k=" << k;
        EXPECT_DOUBLE_EQ(fa, fb) << "k=" << k;
        EXPECT_EQ(a, greedy_max_coverage(g.num_vertices(),
                                         arena.as_sets(), k))
            << "k=" << k;
    }
}

TEST(SelectionEquivalence, StopsAtZeroResidualGainLikeGreedy)
{
    // k larger than the distinct coverage: both implementations must
    // stop at the same (shorter) seed list — the greedy duplicate-seed
    // regression, exercised through CELF as well.
    const std::vector<std::vector<vid_t>> sets = {
        {0, 1}, {0, 1}, {2}, {2}, {3}};
    const auto arena = RrrArena::from_sets(sets);
    CoverageIndex index;
    index.reset(8);
    index.extend(arena);

    double fg = 0.0, fc = 0.0;
    const auto ref = greedy_max_coverage(8, sets, 8, &fg);
    const auto got = celf_select(arena, index, 8, &fc);
    EXPECT_EQ(got, ref);
    EXPECT_EQ(got, (std::vector<vid_t>{0, 2, 3}));
    EXPECT_DOUBLE_EQ(fc, fg);
    EXPECT_DOUBLE_EQ(fc, 1.0);
}

TEST(SelectionEquivalence, EmptyArenaAndZeroK)
{
    RrrArena arena;
    CoverageIndex index;
    index.reset(16);
    index.extend(arena);
    double frac = 1.0;
    EXPECT_TRUE(celf_select(arena, index, 4, &frac).empty());
    EXPECT_DOUBLE_EQ(frac, 0.0);

    const auto filled = RrrArena::from_sets({{1, 2}, {3}});
    CoverageIndex idx2;
    idx2.reset(16);
    idx2.extend(filled);
    EXPECT_TRUE(celf_select(filled, idx2, 0, &frac).empty());
    EXPECT_DOUBLE_EQ(frac, 0.0);
}

} // namespace
} // namespace graphorder
