#include "community/coloring.hpp"

#include <algorithm>

namespace graphorder {

std::vector<std::vector<vid_t>>
Coloring::classes() const
{
    std::vector<std::vector<vid_t>> out(num_colors);
    for (vid_t v = 0; v < color.size(); ++v)
        out[color[v]].push_back(v);
    return out;
}

Coloring
greedy_coloring(const Csr& g)
{
    const vid_t n = g.num_vertices();
    Coloring c;
    c.color.assign(n, kNoVertex);
    std::vector<vid_t> forbidden; // color -> last vertex that forbade it
    for (vid_t v = 0; v < n; ++v) {
        for (vid_t u : g.neighbors(v)) {
            const vid_t cu = u < v ? c.color[u] : kNoVertex;
            if (cu != kNoVertex) {
                if (cu >= forbidden.size())
                    forbidden.resize(cu + 1, kNoVertex);
                forbidden[cu] = v;
            }
        }
        vid_t pick = 0;
        while (pick < forbidden.size() && forbidden[pick] == v)
            ++pick;
        c.color[v] = pick;
        c.num_colors = std::max(c.num_colors, pick + 1);
    }
    return c;
}

bool
is_proper_coloring(const Csr& g, const std::vector<vid_t>& color)
{
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        for (vid_t u : g.neighbors(v))
            if (color[u] == color[v])
                return false;
    return true;
}

} // namespace graphorder
