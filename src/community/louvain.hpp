/**
 * @file
 * Parallel Louvain community detection — a re-implementation of Grappolo
 * (Lu, Halappanavar, Kalyanaraman, Parallel Computing 2015), the tool the
 * paper both benchmarks (§VI-B) and repurposes as an ordering generator
 * (§III-D).
 *
 * The algorithm runs in *phases*; each phase performs *iterations* over
 * all vertices, greedily moving each vertex to the neighboring community
 * with the best modularity gain, until the per-iteration modularity gain
 * drops below a threshold.  The phase then contracts communities into
 * vertices and the next phase runs on the coarser graph.
 *
 * Instrumentation mirrors the paper's Figure 9 heat maps: per-phase and
 * per-iteration wall time, iteration counts, modularity, parallel work
 * efficiency ("Work%") and loads-per-edge of the hot routine (which uses
 * a per-thread map from community id to accumulated edge weight, exactly
 * the auxiliary structure the paper blames for extra memory traffic).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace graphorder {

class AccessTracer;

/** Tuning and instrumentation knobs. */
struct LouvainOptions
{
    /** A phase stops when an iteration improves Q by less than this. */
    double min_gain = 1e-4;
    /** Hard cap on iterations per phase. */
    int max_iterations = 500;
    /** Hard cap on phases. */
    int max_phases = 12;
    /** OpenMP threads (0 = runtime default). */
    int num_threads = 0;
    /**
     * Color-synchronized iterations: process greedy-coloring classes one
     * after another (vertices within a class share no edge), removing
     * the stale-neighbor races of the default vertex-parallel schedule —
     * Grappolo's coloring mode.
     */
    bool use_coloring = false;
    /**
     * Optional memory tracer: when set, the *first phase's* hot-routine
     * loads (adjacency, community ids, community weights, scratch map) are
     * replayed into it.  Tracing forces single-threaded execution so the
     * address stream is well defined.
     */
    AccessTracer* tracer = nullptr;
};

/** Counters for one phase (the paper reports phase 1). */
struct LouvainPhaseStats
{
    double phase_time_s = 0;
    std::vector<double> iteration_times_s;
    int iterations = 0;
    double modularity_before = 0;
    double modularity_after = 0;
    /** Loads in the hot routine divided by number of arcs. */
    double work_per_edge = 0;
    /** Parallel efficiency: busy thread time / (threads * wall). */
    double work_fraction = 0;
    vid_t num_vertices = 0;
    vid_t num_communities = 0;

    double avg_iteration_time_s() const
    {
        return iterations ? phase_time_s / iterations : 0.0;
    }
};

/** Full result of a Louvain run. */
struct LouvainResult
{
    /** Final community of each original vertex, ids dense in [0, k). */
    std::vector<vid_t> community;
    vid_t num_communities = 0;
    double modularity = 0;
    std::vector<LouvainPhaseStats> phases;
    double total_time_s = 0;
};

/** Run parallel Louvain on an undirected (optionally weighted) graph. */
LouvainResult louvain(const Csr& g, const LouvainOptions& opt = {});

/**
 * Modularity of a community assignment on @p g (Newman 2006):
 * Q = sum_c [ in_c / 2m - (tot_c / 2m)^2 ], with in_c twice the internal
 * edge weight of c.
 */
double modularity(const Csr& g, const std::vector<vid_t>& community);

} // namespace graphorder
