#include "community/louvain.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "community/coloring.hpp"
#include "graph/coarsen.hpp"
#include "memsim/cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/faultpoint.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace graphorder {

namespace {

FaultPoint fp_louvain_phase{
    "louvain.phase", StatusCode::Internal,
    "Louvain aborts at a phase boundary as if the level build failed"};

} // namespace

double
modularity(const Csr& g, const std::vector<vid_t>& community)
{
    const vid_t n = g.num_vertices();
    const double two_m = g.total_arc_weight();
    if (two_m == 0)
        return 0.0;
    vid_t k = 0;
    for (vid_t c : community)
        k = std::max(k, static_cast<vid_t>(c + 1));
    std::vector<double> in(k, 0.0), tot(k, 0.0);
    for (vid_t v = 0; v < n; ++v) {
        const auto nbrs = g.neighbors(v);
        const auto ws = g.neighbor_weights(v);
        tot[community[v]] += g.weighted_degree(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            if (community[nbrs[i]] == community[v])
                in[community[v]] += ws.empty() ? 1.0 : ws[i];
        }
    }
    double q = 0.0;
    for (vid_t c = 0; c < k; ++c) {
        q += in[c] / two_m;
        const double frac = tot[c] / two_m;
        q -= frac * frac;
    }
    return q;
}

namespace {

/** One level of the Louvain hierarchy. */
struct LouvainLevel
{
    Csr graph;
    std::vector<weight_t> self_loop; ///< collapsed internal weight per vertex
};

/**
 * Exact modularity of the level graph under assignment @p comm.
 *
 * Evaluated once per iteration, so the O(m) edge scan is parallelized
 * with the same deterministic chunk-ordered FP reduction as the gap
 * measures: block boundaries depend only on n, partials combine in
 * block order — bit-identical at any thread count.  The internal-weight
 * term only ever enters q as a whole-graph sum, so it needs no
 * per-community table; the Σ tot_c² term accumulates per-block
 * community-weight tables that are merged per community in block order.
 */
double
level_modularity(const LouvainLevel& lvl, const std::vector<vid_t>& comm,
                 double two_m)
{
    const Csr& g = lvl.graph;
    const std::size_t n = g.num_vertices();
    if (n == 0)
        return 0.0;

    // Σ_c in_c — the O(m) hot scan — as a flat per-vertex sum.
    const double in_sum = chunk_ordered_reduce<double>(
        n, 2048, [&](std::size_t lo, std::size_t hi) {
            double s = 0.0;
            for (std::size_t sv = lo; sv < hi; ++sv) {
                const vid_t v = static_cast<vid_t>(sv);
                s += 2.0 * lvl.self_loop[v];
                const auto nbrs = g.neighbors(v);
                const auto ws = g.neighbor_weights(v);
                for (std::size_t i = 0; i < nbrs.size(); ++i)
                    if (comm[nbrs[i]] == comm[v])
                        s += ws.empty() ? 1.0 : ws[i];
            }
            return s;
        });

    // Per-community totals.  Community ids are level vertex ids, so the
    // tables are n wide; the block count is kept small to bound the
    // tables' footprint, and each community is summed across blocks in
    // block order (deterministic for any team size).
    const std::size_t tb =
        num_blocks(n, std::max<std::size_t>(4096, n / 8), 16);
    std::vector<std::vector<double>> part(tb);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < tb; ++b) {
        const auto [lo, hi] = block_range(n, tb, b);
        std::vector<double> t(n, 0.0);
        for (std::size_t sv = lo; sv < hi; ++sv) {
            const vid_t v = static_cast<vid_t>(sv);
            t[comm[v]] +=
                g.weighted_degree(v) + 2.0 * lvl.self_loop[v];
        }
        part[b] = std::move(t);
    }
    std::vector<double> tot_c(n, 0.0);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t c = 0; c < n; ++c) {
        double s = 0.0;
        for (std::size_t b = 0; b < tb; ++b)
            s += part[b][c];
        tot_c[c] = s;
    }

    const double tot_sq = chunk_ordered_reduce<double>(
        n, 4096, [&](std::size_t lo, std::size_t hi) {
            double s = 0.0;
            for (std::size_t c = lo; c < hi; ++c) {
                const double f = tot_c[c] / two_m;
                s += f * f;
            }
            return s;
        });
    return in_sum / two_m - tot_sq;
}

/**
 * Run one Louvain phase on @p lvl.
 *
 * @param[out] comm final community of each level vertex (dense ids after
 *             return).
 * @return stats for the phase.
 */
LouvainPhaseStats
run_phase(const LouvainLevel& lvl, const LouvainOptions& opt,
          std::vector<vid_t>& comm, AccessTracer* tracer)
{
    const Csr& g = lvl.graph;
    const vid_t n = g.num_vertices();
    LouvainPhaseStats stats;
    stats.num_vertices = n;

    const double two_m = g.total_arc_weight()
        + 2.0 * std::accumulate(lvl.self_loop.begin(), lvl.self_loop.end(),
                                weight_t{0});
    if (two_m == 0) {
        comm.resize(n);
        std::iota(comm.begin(), comm.end(), vid_t{0});
        stats.num_communities = n;
        return stats;
    }

    // Initial singleton communities.
    comm.resize(n);
    std::iota(comm.begin(), comm.end(), vid_t{0});
    std::vector<double> k_v(n), tot(n);
    for (vid_t v = 0; v < n; ++v) {
        k_v[v] = g.weighted_degree(v) + 2.0 * lvl.self_loop[v];
        tot[v] = k_v[v];
    }

    // opt.num_threads == 0 falls back to the shared --threads /
    // GRAPHORDER_THREADS knob (util/parallel.hpp).
    const int threads = resolve_threads(opt.num_threads);
    const bool traced = tracer != nullptr;

    std::vector<std::uint8_t> active(n, 1), next_active(n, 0);
    std::uint64_t hot_loads = 0;
    double busy_time = 0.0;
    int used_threads = 1;

    stats.modularity_before = level_modularity(lvl, comm, two_m);
    double q_prev = stats.modularity_before;

    // Vertex visit schedule: one segment in the default (Grappolo's
    // vertex-parallel) mode; one segment per color class in the
    // color-synchronized mode, where intra-segment vertices share no
    // edge and therefore never read a stale neighbor community.
    std::vector<vid_t> visit(n);
    std::iota(visit.begin(), visit.end(), vid_t{0});
    std::vector<std::pair<vid_t, vid_t>> segments; // [begin, end) in visit
    if (opt.use_coloring && n > 0) {
        const auto coloring = greedy_coloring(g);
        std::size_t pos = 0;
        for (const auto& cls : coloring.classes()) {
            const auto begin = static_cast<vid_t>(pos);
            for (vid_t v : cls)
                visit[pos++] = v;
            segments.emplace_back(begin, static_cast<vid_t>(pos));
        }
    } else {
        segments.emplace_back(0, n);
    }

    Timer phase_timer;
    phase_timer.start();

    auto& reg = obs::MetricsRegistry::instance();
    auto& iter_counter = reg.counter("louvain/iterations");
    auto& move_counter = reg.counter("louvain/moves");
    auto& iter_hist = reg.histogram("louvain/iteration_time_s");

    for (int iter = 0; iter < opt.max_iterations; ++iter) {
        GO_TRACE_SCOPE("louvain/iteration");
        checkpoint("louvain/iteration");
        Timer iter_timer;
        iter_timer.start();
        std::uint64_t iter_loads = 0;
        std::uint64_t moves = 0;
        std::fill(next_active.begin(), next_active.end(), 0);

        for (const auto& [seg_begin, seg_end] : segments) {
        #pragma omp parallel num_threads(threads) \
            reduction(+ : iter_loads, moves, busy_time) if (!traced)
        {
            #pragma omp single
            { used_threads = omp_get_num_threads(); }

            const double t_in = omp_get_wtime();
            // Per-thread scratch: community -> accumulated edge weight.
            std::vector<double> acc(n, 0.0);
            std::vector<vid_t> touched;
            touched.reserve(64);

            #pragma omp for schedule(dynamic, 256)
            for (vid_t vi = seg_begin; vi < seg_end; ++vi) {
                const vid_t v = visit[vi];
                if (!active[v])
                    continue;
                const vid_t cur = comm[v];
                const auto nbrs = g.neighbors(v);
                const auto ws = g.neighbor_weights(v);

                // Hot routine: gather neighboring community weights.
                // Loads counted: adjacency entry, comm[], acc slot.
                for (std::size_t i = 0; i < nbrs.size(); ++i) {
                    const vid_t u = nbrs[i];
                    const vid_t cu = comm[u];
                    const double w = ws.empty() ? 1.0 : ws[i];
                    if (traced) {
                        tracer->load(&nbrs[i], sizeof(vid_t));
                        tracer->load(&comm[u], sizeof(vid_t));
                        tracer->load(&acc[cu], sizeof(double));
                    }
                    if (acc[cu] == 0.0)
                        touched.push_back(cu);
                    acc[cu] += w;
                }
                iter_loads += 3 * nbrs.size();

                // Best destination community.
                const double e_cur = acc[cur];
                double best_score = e_cur - k_v[v] * (tot[cur] - k_v[v])
                    / two_m;
                vid_t best = cur;
                for (vid_t c : touched) {
                    if (c == cur)
                        continue;
                    if (traced)
                        tracer->load(&tot[c], sizeof(double));
                    const double score =
                        acc[c] - k_v[v] * tot[c] / two_m;
                    if (score > best_score + 1e-12
                        || (score > best_score - 1e-12 && c < best)) {
                        best_score = score;
                        best = c;
                    }
                }
                iter_loads += touched.size();

                for (vid_t c : touched)
                    acc[c] = 0.0;
                touched.clear();

                if (best != cur) {
                    #pragma omp atomic
                    tot[cur] -= k_v[v];
                    #pragma omp atomic
                    tot[best] += k_v[v];
                    comm[v] = best;
                    ++moves;
                    next_active[v] = 1;
                    for (vid_t u : nbrs)
                        next_active[u] = 1;
                }
            }
            busy_time += omp_get_wtime() - t_in;
        }
        } // segments

        hot_loads += iter_loads;
        stats.iteration_times_s.push_back(iter_timer.elapsed_s());
        iter_counter.add();
        move_counter.add(moves);
        iter_hist.observe(iter_timer.elapsed_s());
        ++stats.iterations;
        active.swap(next_active);

        const double q_now = level_modularity(lvl, comm, two_m);
        const double gain = q_now - q_prev;
        q_prev = q_now;
        if (moves == 0 || gain < opt.min_gain)
            break;
    }

    stats.phase_time_s = phase_timer.elapsed_s();
    stats.modularity_after = q_prev;
    stats.work_per_edge = g.num_arcs() && stats.iterations
        ? static_cast<double>(hot_loads)
            / static_cast<double>(g.num_arcs())
            / static_cast<double>(stats.iterations)
        : 0.0;
    stats.work_fraction = stats.phase_time_s > 0
        ? busy_time / (stats.phase_time_s * used_threads)
        : 0.0;

    std::vector<vid_t> dense = comm;
    stats.num_communities = densify_labels(dense);
    comm = std::move(dense);
    return stats;
}

} // namespace

LouvainResult
louvain(const Csr& g, const LouvainOptions& opt)
{
    GO_TRACE_SCOPE("louvain/run");
    LouvainResult result;
    const vid_t n = g.num_vertices();
    result.community.resize(n);
    std::iota(result.community.begin(), result.community.end(), vid_t{0});
    if (n == 0)
        return result;

    Timer total;
    total.start();

    LouvainLevel lvl;
    lvl.graph = g;
    lvl.self_loop.assign(n, 0.0);

    auto& reg = obs::MetricsRegistry::instance();
    auto& phase_counter = reg.counter("louvain/phases");
    auto& phase_hist = reg.histogram("louvain/phase_time_s");
    auto& modularity_gauge = reg.gauge("louvain/modularity");

    for (int phase = 0; phase < opt.max_phases; ++phase) {
        GO_TRACE_SCOPE("louvain/phase/" + std::to_string(phase));
        fp_louvain_phase.maybe_fire();
        checkpoint("louvain/phase");
        std::vector<vid_t> comm;
        // Only the first phase sees the input ordering; tracing later
        // phases would measure a derivative graph (paper's footnote).
        AccessTracer* tracer = phase == 0 ? opt.tracer : nullptr;
        auto stats = run_phase(lvl, opt, comm, tracer);
        const vid_t k = stats.num_communities;
        result.phases.push_back(stats);
        phase_counter.add();
        phase_hist.observe(stats.phase_time_s);
        modularity_gauge.set(stats.modularity_after);

        // Map the level communities back to original vertices.
        for (vid_t v = 0; v < n; ++v)
            result.community[v] = comm[result.community[v]];
        result.num_communities = k;

        const bool contracted = k < lvl.graph.num_vertices();
        const bool improved =
            stats.modularity_after > stats.modularity_before + opt.min_gain;
        if (!contracted || (!improved && phase > 0))
            break;

        // Contract communities into the next level's vertices.
        auto coarse = coarsen_by_groups(lvl.graph, comm, k);
        std::vector<weight_t> new_self(k, 0.0);
        for (vid_t v = 0; v < lvl.graph.num_vertices(); ++v)
            new_self[comm[v]] += lvl.self_loop[v];
        for (vid_t c = 0; c < k; ++c)
            new_self[c] += coarse.self_weight[c];
        lvl.graph = std::move(coarse.graph);
        lvl.self_loop = std::move(new_self);
    }

    result.modularity = modularity(g, result.community);
    modularity_gauge.set(result.modularity);
    result.total_time_s = total.elapsed_s();
    return result;
}

} // namespace graphorder
