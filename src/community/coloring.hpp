/**
 * @file
 * Distance-1 greedy graph coloring.
 *
 * Grappolo's signature parallelization device (Lu, Halappanavar,
 * Kalyanaraman 2015): vertices of one color class share no edge, so a
 * Louvain iteration can process a whole color class in parallel without
 * stale-neighbor races.  The Louvain driver exposes this as an optional
 * "color-synchronized" mode.
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace graphorder {

/** Result of a coloring. */
struct Coloring
{
    std::vector<vid_t> color; ///< color[v] in [0, num_colors)
    vid_t num_colors = 0;

    /** Vertices grouped by color (computed on demand). */
    std::vector<std::vector<vid_t>> classes() const;
};

/**
 * Greedy first-fit coloring in natural order; uses at most maxdeg + 1
 * colors.
 */
Coloring greedy_coloring(const Csr& g);

/** True iff no edge connects two vertices of the same color. */
bool is_proper_coloring(const Csr& g, const std::vector<vid_t>& color);

} // namespace graphorder
