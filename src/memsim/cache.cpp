#include "memsim/cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace graphorder {

CacheHierarchyConfig
CacheHierarchyConfig::cascade_lake()
{
    CacheHierarchyConfig c;
    c.line_bytes = 64;
    c.levels = {
        {"L1", 32ULL * 1024, 8, 4},
        {"L2", 1ULL * 1024 * 1024, 16, 14},
        {"L3", 38ULL * 1024 * 1024 + 512 * 1024, 11, 60},
    };
    c.dram_latency_cycles = 200;
    return c;
}

CacheHierarchyConfig
CacheHierarchyConfig::tiny_test()
{
    CacheHierarchyConfig c;
    c.line_bytes = 64;
    c.levels = {
        {"L1", 4ULL * 64, 1, 1},   // 4 lines, direct mapped
        {"L2", 16ULL * 64, 2, 10}, // 16 lines, 2-way
    };
    c.dram_latency_cycles = 100;
    return c;
}

CacheHierarchyConfig
CacheHierarchyConfig::cascade_lake_scaled(double divisor)
{
    auto c = cascade_lake();
    divisor = std::max(divisor, 1.0);
    for (auto& l : c.levels) {
        const std::uint64_t floor_bytes =
            4ULL * c.line_bytes * l.associativity;
        l.size_bytes = std::max<std::uint64_t>(
            floor_bytes,
            static_cast<std::uint64_t>(
                static_cast<double>(l.size_bytes) / divisor));
    }
    return c;
}

double
MemoryMetrics::avg_load_latency() const
{
    return loads == 0
        ? 0.0
        : static_cast<double>(total_cycles) / static_cast<double>(loads);
}

double
MemoryMetrics::bound_fraction(std::size_t i) const
{
    if (total_cycles == 0 || i >= level_hits.size())
        return 0.0;
    const double cycles = static_cast<double>(level_hits[i])
        * static_cast<double>(level_latency[i]);
    return cycles / static_cast<double>(total_cycles);
}

double
MemoryMetrics::miss_ratio(std::size_t i) const
{
    if (i >= level_lookups.size() || level_lookups[i] == 0)
        return 0.0;
    return 1.0
        - static_cast<double>(level_hits[i])
        / static_cast<double>(level_lookups[i]);
}

CacheHierarchy::CacheHierarchy(CacheHierarchyConfig config)
    : config_(std::move(config))
{
    if (config_.line_bytes == 0 || (config_.line_bytes & (config_.line_bytes - 1)))
        throw std::invalid_argument("cache: line size must be a power of 2");
    for (const auto& lc : config_.levels) {
        Level l;
        l.assoc = std::max(1u, lc.associativity);
        const std::uint64_t lines = lc.size_bytes / config_.line_bytes;
        l.num_sets = std::max<std::uint64_t>(1, lines / l.assoc);
        l.latency = lc.latency_cycles;
        l.ways.assign(l.num_sets * l.assoc, Way{});
        levels_.push_back(std::move(l));
        metrics_.level_names.push_back(lc.name);
        metrics_.level_latency.push_back(lc.latency_cycles);
    }
    metrics_.level_names.push_back("DRAM");
    metrics_.level_latency.push_back(config_.dram_latency_cycles);
    metrics_.level_hits.assign(levels_.size() + 1, 0);
    metrics_.level_lookups.assign(levels_.size() + 1, 0);
}

std::size_t
CacheHierarchy::access_line(std::uint64_t line_addr)
{
    std::size_t hit_level = levels_.size(); // DRAM by default
    for (std::size_t li = 0; li < levels_.size(); ++li) {
        Level& l = levels_[li];
        ++metrics_.level_lookups[li];
        const std::uint64_t set = line_addr % l.num_sets;
        Way* base = &l.ways[set * l.assoc];
        bool hit = false;
        for (unsigned w = 0; w < l.assoc; ++w) {
            if (base[w].valid && base[w].tag == line_addr) {
                base[w].lru = ++l.tick;
                hit = true;
                break;
            }
        }
        if (hit) {
            hit_level = li;
            break;
        }
    }
    ++metrics_.level_lookups[levels_.size()];
    if (hit_level == levels_.size())
        ++metrics_.level_hits[levels_.size()];
    else
        ++metrics_.level_hits[hit_level];

    // Install the line in every level above (and including) the miss path.
    install_line(line_addr, std::min(hit_level, levels_.size()));

    // Next-line prefetch on a demand miss past L1.
    if (config_.next_line_prefetch && hit_level > 0) {
        install_line(line_addr + 1, std::min(hit_level, levels_.size()));
        ++prefetches_;
    }
    return hit_level;
}

void
CacheHierarchy::install_line(std::uint64_t line_addr, std::size_t upto)
{
    for (std::size_t li = 0; li < upto; ++li) {
        Level& l = levels_[li];
        const std::uint64_t set = line_addr % l.num_sets;
        Way* base = &l.ways[set * l.assoc];
        // Skip install if already present (prefetch of a resident line).
        bool present = false;
        for (unsigned w = 0; w < l.assoc; ++w) {
            if (base[w].valid && base[w].tag == line_addr) {
                present = true;
                break;
            }
        }
        if (present)
            continue;
        Way* victim = base;
        for (unsigned w = 0; w < l.assoc; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
            if (base[w].lru < victim->lru)
                victim = &base[w];
        }
        if (victim->valid)
            ++metrics_.evictions;
        victim->valid = true;
        victim->tag = line_addr;
        victim->lru = ++l.tick;
    }
}

void
CacheHierarchy::load(std::uint64_t addr, unsigned bytes)
{
    const std::uint64_t first = addr / config_.line_bytes;
    const std::uint64_t last =
        (addr + std::max(1u, bytes) - 1) / config_.line_bytes;
    for (std::uint64_t line = first; line <= last; ++line) {
        const std::size_t lvl = access_line(line);
        ++metrics_.loads;
        metrics_.total_cycles += metrics_.level_latency[lvl];
    }
}

void
CacheHierarchy::flush()
{
    for (auto& l : levels_)
        for (auto& w : l.ways)
            w.valid = false;
}

void
CacheHierarchy::reset_stats()
{
    metrics_.loads = 0;
    metrics_.total_cycles = 0;
    metrics_.evictions = 0;
    std::fill(metrics_.level_hits.begin(), metrics_.level_hits.end(), 0);
    std::fill(metrics_.level_lookups.begin(), metrics_.level_lookups.end(),
              0);
    published_ = MemoryMetrics{};
    published_prefetches_ = 0;
}

void
CacheHierarchy::publish_metrics(const std::string& prefix)
{
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter(prefix + "/loads").add(metrics_.loads - published_.loads);
    reg.counter(prefix + "/evictions")
        .add(metrics_.evictions - published_.evictions);
    reg.counter(prefix + "/prefetches")
        .add(prefetches_ - published_prefetches_);
    if (published_.level_hits.empty())
        published_.level_hits.assign(metrics_.level_hits.size(), 0);
    for (std::size_t i = 0; i < metrics_.level_hits.size(); ++i) {
        reg.counter(prefix + "/hits/" + metrics_.level_names[i])
            .add(metrics_.level_hits[i] - published_.level_hits[i]);
        // DRAM "hits" are misses of the last cache level; surface the
        // aggregate miss count under its own name as well.
        if (i + 1 == metrics_.level_hits.size())
            reg.counter(prefix + "/misses")
                .add(metrics_.level_hits[i] - published_.level_hits[i]);
    }
    reg.gauge(prefix + "/avg_load_latency")
        .set(metrics_.avg_load_latency());
    published_ = metrics_;
    published_prefetches_ = prefetches_;
}

CacheTracer::CacheTracer(CacheHierarchyConfig config, unsigned sample)
    : cache_(std::move(config)), sample_(std::max(1u, sample))
{}

void
CacheTracer::load(const void* addr, unsigned bytes)
{
    if (sample_ > 1 && (++counter_ % sample_) != 0)
        return;
    cache_.load_ptr(addr, bytes);
}

} // namespace graphorder
