#include "memsim/cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace graphorder {

CacheHierarchyConfig
CacheHierarchyConfig::cascade_lake()
{
    CacheHierarchyConfig c;
    c.line_bytes = 64;
    c.levels = {
        {"L1", 32ULL * 1024, 8, 4},
        {"L2", 1ULL * 1024 * 1024, 16, 14},
        {"L3", 38ULL * 1024 * 1024 + 512 * 1024, 11, 60},
    };
    c.dram_latency_cycles = 200;
    return c;
}

CacheHierarchyConfig
CacheHierarchyConfig::tiny_test()
{
    CacheHierarchyConfig c;
    c.line_bytes = 64;
    c.levels = {
        {"L1", 4ULL * 64, 1, 1},   // 4 lines, direct mapped
        {"L2", 16ULL * 64, 2, 10}, // 16 lines, 2-way
    };
    c.dram_latency_cycles = 100;
    return c;
}

CacheHierarchyConfig
CacheHierarchyConfig::cascade_lake_scaled(double divisor)
{
    auto c = cascade_lake();
    divisor = std::max(divisor, 1.0);
    for (auto& l : c.levels) {
        const std::uint64_t floor_bytes =
            4ULL * c.line_bytes * l.associativity;
        l.size_bytes = std::max<std::uint64_t>(
            floor_bytes,
            static_cast<std::uint64_t>(
                static_cast<double>(l.size_bytes) / divisor));
    }
    return c;
}

double
MemoryMetrics::avg_load_latency() const
{
    return loads == 0
        ? 0.0
        : static_cast<double>(total_cycles) / static_cast<double>(loads);
}

double
MemoryMetrics::bound_fraction(std::size_t i) const
{
    if (total_cycles == 0 || i >= level_lookups.size())
        return 0.0;
    // Every cycle in total_cycles is one level's lookup latency spent on
    // one probe, so attributing latency[i] * lookups[i] to level i is an
    // exact decomposition: the fractions sum to 1.
    const double cycles = static_cast<double>(level_lookups[i])
        * static_cast<double>(level_latency[i]);
    return cycles / static_cast<double>(total_cycles);
}

double
MemoryMetrics::miss_ratio(std::size_t i) const
{
    if (i >= level_lookups.size() || level_lookups[i] == 0)
        return 0.0;
    return 1.0
        - static_cast<double>(level_hits[i])
        / static_cast<double>(level_lookups[i]);
}

std::uint64_t
MemoryMetrics::misses(std::size_t i) const
{
    if (i >= level_lookups.size())
        return 0;
    return level_lookups[i] - level_hits[i];
}

MemoryMetrics
MemoryMetrics::scaled_by(std::uint64_t factor) const
{
    MemoryMetrics m = *this;
    m.loads *= factor;
    m.total_cycles *= factor;
    m.evictions *= factor;
    m.prefetch_installs *= factor;
    m.prefetch_hits *= factor;
    m.prefetch_useless *= factor;
    for (auto& h : m.level_hits)
        h *= factor;
    for (auto& l : m.level_lookups)
        l *= factor;
    return m;
}

CacheHierarchy::CacheHierarchy(CacheHierarchyConfig config)
    : config_(std::move(config))
{
    if (config_.line_bytes == 0 || (config_.line_bytes & (config_.line_bytes - 1)))
        throw std::invalid_argument("cache: line size must be a power of 2");
    unsigned path_latency = 0;
    for (const auto& lc : config_.levels) {
        Level l;
        l.assoc = std::max(1u, lc.associativity);
        const std::uint64_t lines = lc.size_bytes / config_.line_bytes;
        l.num_sets = std::max<std::uint64_t>(1, lines / l.assoc);
        l.latency = lc.latency_cycles;
        l.policy = lc.policy;
        l.ways.assign(l.num_sets * l.assoc, Way{});
        levels_.push_back(std::move(l));
        metrics_.level_names.push_back(lc.name);
        metrics_.level_latency.push_back(lc.latency_cycles);
        path_latency += lc.latency_cycles;
        metrics_.service_latency.push_back(path_latency);
    }
    metrics_.level_names.push_back("DRAM");
    metrics_.level_latency.push_back(config_.dram_latency_cycles);
    metrics_.service_latency.push_back(path_latency
                                       + config_.dram_latency_cycles);
    metrics_.level_hits.assign(levels_.size() + 1, 0);
    metrics_.level_lookups.assign(levels_.size() + 1, 0);
}

CacheHierarchy::Way*
CacheHierarchy::find_way(Level& l, std::uint64_t line_addr)
{
    const std::uint64_t set = line_addr % l.num_sets;
    Way* base = &l.ways[set * l.assoc];
    for (unsigned w = 0; w < l.assoc; ++w)
        if (base[w].valid && base[w].tag == line_addr)
            return &base[w];
    return nullptr;
}

bool
CacheHierarchy::resident_anywhere(std::uint64_t line_addr) const
{
    for (const auto& l : levels_) {
        const std::uint64_t set = line_addr % l.num_sets;
        const Way* base = &l.ways[set * l.assoc];
        for (unsigned w = 0; w < l.assoc; ++w)
            if (base[w].valid && base[w].tag == line_addr)
                return true;
    }
    return false;
}

std::size_t
CacheHierarchy::access_line(std::uint64_t line_addr)
{
    std::size_t hit_level = levels_.size(); // DRAM unless a level hits
    for (std::size_t li = 0; li < levels_.size(); ++li) {
        Level& l = levels_[li];
        ++metrics_.level_lookups[li];
        Way* w = find_way(l, line_addr);
        if (!w)
            continue; // probe the next level
        hit_level = li;
        w->lru = ++l.tick;
        if (w->prefetched) {
            ++metrics_.prefetch_hits;
            w->prefetched = false;
        }
        ++metrics_.level_hits[li];
        if (li > 0) {
            // An exclusive level hands the line back to the inner levels
            // instead of keeping a copy.
            if (l.policy == InclusionPolicy::kExclusive)
                w->valid = false;
            fill_path(line_addr, li);
        }
        break;
    }
    if (hit_level == levels_.size()) {
        // Only a miss of the last cache level reaches DRAM.
        ++metrics_.level_lookups[levels_.size()];
        ++metrics_.level_hits[levels_.size()];
        fill_path(line_addr, levels_.size());
    }
    prefetch_step(line_addr, hit_level == levels_.size());
    return hit_level;
}

void
CacheHierarchy::fill_path(std::uint64_t line_addr, std::size_t upto)
{
    for (std::size_t li = 0; li < upto; ++li) {
        if (li > 0 && levels_[li].policy == InclusionPolicy::kExclusive)
            continue; // exclusive levels are filled by victims only
        insert_line(li, line_addr, /*prefetched=*/false);
    }
}

void
CacheHierarchy::insert_line(std::size_t li, std::uint64_t line_addr,
                            bool prefetched)
{
    Level& l = levels_[li];
    const std::uint64_t set = line_addr % l.num_sets;
    Way* base = &l.ways[set * l.assoc];
    // Already present (e.g. prefetch of a resident line): refresh LRU,
    // don't displace anything and don't count an install.
    for (unsigned w = 0; w < l.assoc; ++w) {
        if (base[w].valid && base[w].tag == line_addr) {
            base[w].lru = ++l.tick;
            return;
        }
    }
    Way* victim = base;
    for (unsigned w = 0; w < l.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    if (victim->valid) {
        const std::uint64_t victim_line = victim->tag;
        const bool victim_prefetched = victim->prefetched;
        ++metrics_.evictions;
        if (l.policy == InclusionPolicy::kInclusive)
            invalidate_inner(victim_line, li);
        bool demoted = false;
        if (li + 1 < levels_.size()
            && levels_[li + 1].policy == InclusionPolicy::kExclusive) {
            // Victim demotion: the line (and its prefetched flag) moves
            // into the exclusive next level rather than leaving the
            // hierarchy.
            victim->valid = false;
            insert_line(li + 1, victim_line, victim_prefetched);
            demoted = true;
        }
        if (victim_prefetched && !demoted)
            ++metrics_.prefetch_useless;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->prefetched = prefetched;
    victim->lru = ++l.tick;
}

void
CacheHierarchy::invalidate_inner(std::uint64_t line_addr, std::size_t outer)
{
    for (std::size_t li = 0; li < outer; ++li) {
        Way* w = find_way(levels_[li], line_addr);
        if (!w)
            continue;
        w->valid = false;
        ++metrics_.evictions;
        if (w->prefetched) {
            ++metrics_.prefetch_useless;
            w->prefetched = false;
        }
    }
}

void
CacheHierarchy::prefetch_step(std::uint64_t line_addr, bool demand_miss)
{
    if (config_.prefetch == PrefetchPolicy::kNone)
        return;

    std::uint64_t target = 0;
    bool issue = false;
    switch (config_.prefetch) {
    case PrefetchPolicy::kNextLine:
        if (demand_miss) {
            target = line_addr + 1;
            issue = true;
        }
        break;
    case PrefetchPolicy::kStride: {
        // Train on every demand access; issue only when a demand miss
        // continues the previously confirmed stride.
        if (have_last_line_) {
            const std::int64_t stride =
                static_cast<std::int64_t>(line_addr)
                - static_cast<std::int64_t>(last_line_);
            if (demand_miss && have_last_stride_ && stride != 0
                && stride == last_stride_) {
                target = line_addr + static_cast<std::uint64_t>(stride);
                issue = true;
            }
            last_stride_ = stride;
            have_last_stride_ = true;
        }
        last_line_ = line_addr;
        have_last_line_ = true;
        break;
    }
    case PrefetchPolicy::kNone:
        break;
    }

    // A prefetch of a resident line is a no-op, not an install.  Actual
    // installs go into L1 only, flagged, so that hit/useless attribution
    // stays exact (one flagged copy per issued prefetch).
    if (issue && !resident_anywhere(target)) {
        insert_line(0, target, /*prefetched=*/true);
        ++metrics_.prefetch_installs;
    }
}

void
CacheHierarchy::load(std::uint64_t addr, unsigned bytes)
{
    const std::uint64_t first = addr / config_.line_bytes;
    const std::uint64_t last =
        (addr + std::max(1u, bytes) - 1) / config_.line_bytes;
    for (std::uint64_t line = first; line <= last; ++line) {
        const std::size_t lvl = access_line(line);
        ++metrics_.loads;
        metrics_.total_cycles += metrics_.service_latency[lvl];
    }
}

void
CacheHierarchy::flush()
{
    for (auto& l : levels_)
        for (auto& w : l.ways) {
            w.valid = false;
            w.prefetched = false;
        }
}

void
CacheHierarchy::reset_stats()
{
    metrics_.loads = 0;
    metrics_.total_cycles = 0;
    metrics_.evictions = 0;
    metrics_.prefetch_installs = 0;
    metrics_.prefetch_hits = 0;
    metrics_.prefetch_useless = 0;
    std::fill(metrics_.level_hits.begin(), metrics_.level_hits.end(), 0);
    std::fill(metrics_.level_lookups.begin(), metrics_.level_lookups.end(),
              0);
    published_ = MemoryMetrics{};
}

void
CacheHierarchy::publish_metrics(const std::string& prefix,
                                std::uint64_t scale)
{
    auto& reg = obs::MetricsRegistry::instance();
    const auto delta = [scale](std::uint64_t now, std::uint64_t then) {
        return (now - then) * scale;
    };
    reg.counter(prefix + "/loads")
        .add(delta(metrics_.loads, published_.loads));
    reg.counter(prefix + "/cycles")
        .add(delta(metrics_.total_cycles, published_.total_cycles));
    reg.counter(prefix + "/evictions")
        .add(delta(metrics_.evictions, published_.evictions));
    reg.counter(prefix + "/prefetch_installs")
        .add(delta(metrics_.prefetch_installs,
                   published_.prefetch_installs));
    reg.counter(prefix + "/prefetch_hits")
        .add(delta(metrics_.prefetch_hits, published_.prefetch_hits));
    reg.counter(prefix + "/prefetch_useless")
        .add(delta(metrics_.prefetch_useless, published_.prefetch_useless));
    if (published_.level_hits.empty()) {
        published_.level_hits.assign(metrics_.level_hits.size(), 0);
        published_.level_lookups.assign(metrics_.level_lookups.size(), 0);
    }
    for (std::size_t i = 0; i < metrics_.level_hits.size(); ++i) {
        reg.counter(prefix + "/hits/" + metrics_.level_names[i])
            .add(delta(metrics_.level_hits[i], published_.level_hits[i]));
        reg.counter(prefix + "/lookups/" + metrics_.level_names[i])
            .add(delta(metrics_.level_lookups[i],
                       published_.level_lookups[i]));
        // DRAM "hits" are misses of the last cache level; surface the
        // aggregate miss count under its own name as well.
        if (i + 1 == metrics_.level_hits.size())
            reg.counter(prefix + "/misses")
                .add(delta(metrics_.level_hits[i],
                           published_.level_hits[i]));
    }
    reg.gauge(prefix + "/avg_load_latency")
        .set(metrics_.avg_load_latency());
    published_ = metrics_;
}

CacheTracer::CacheTracer(CacheHierarchyConfig config, unsigned sample)
    : cache_(std::move(config)), sample_(std::max(1u, sample))
{}

void
CacheTracer::load(const void* addr, unsigned bytes)
{
    if (sample_ > 1 && (++counter_ % sample_) != 0)
        return;
    cache_.load_ptr(addr, bytes);
}

} // namespace graphorder
