/**
 * @file
 * Trace-driven multi-level cache simulator.
 *
 * The paper measures memory behaviour with Intel VTune on a Cascade Lake
 * node: average load latency (cycles) and "memory hierarchy boundedness"
 * (share of stalled cycles attributable to L1/L2/L3/DRAM).  VTune is not
 * available here, so the application kernels are instrumented to emit
 * their load addresses into this simulator instead.  Each level is
 * set-associative with LRU replacement; a load is serviced by the first
 * level that hits and the line is installed in all levels above it.
 *
 * The reported metrics are proxies for VTune's:
 *  - avg_load_latency: mean service latency over all simulated loads;
 *  - levelX_bound: share of total memory cycles spent servicing loads at
 *    that level (hits_at_level * level_latency / total_cycles).
 * Like the paper's metrics these are *not* a decomposition of runtime,
 * but they respond to ordering-induced locality exactly the way the
 * paper's do: better locality shifts weight toward L1 and drops latency.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace graphorder {

/** Geometry and latency of one cache level. */
struct CacheLevelConfig
{
    std::string name;
    std::uint64_t size_bytes = 0;
    unsigned associativity = 8;
    unsigned latency_cycles = 4;
};

/** Whole-hierarchy configuration. */
struct CacheHierarchyConfig
{
    unsigned line_bytes = 64;
    std::vector<CacheLevelConfig> levels;
    unsigned dram_latency_cycles = 200;
    /**
     * Next-line prefetch: a demand miss additionally installs the
     * following line without charging its latency.  Mirrors the paper's
     * metric semantics, where DRAM-bound counts *demand* (not
     * prefetched) loads, and widens the sequential-vs-random contrast
     * exactly the way a hardware streamer does.
     */
    bool next_line_prefetch = false;

    /**
     * The paper's test platform (per-core slice): L1 32 KB / 8-way / 4
     * cycles, L2 1 MB / 16-way / 14 cycles, L3 38.5 MB / 11-way / 60
     * cycles, DRAM ~200 cycles.
     */
    static CacheHierarchyConfig cascade_lake();

    /** A tiny hierarchy for unit tests (direct-mapped 4-line L1). */
    static CacheHierarchyConfig tiny_test();

    /**
     * Cascade Lake with every level's capacity divided by @p divisor
     * (latencies unchanged, capacities floored at 4 lines).  Used by the
     * memory benches: when the benchmark graphs are scaled down by S, a
     * hierarchy scaled by ~S/4 keeps the working-set-to-cache ratios —
     * and hence the L1/L2/L3/DRAM-bound shape — comparable to the
     * paper's full-size runs.
     */
    static CacheHierarchyConfig cascade_lake_scaled(double divisor);
};

/** Counters accumulated by a simulation run. */
struct MemoryMetrics
{
    std::uint64_t loads = 0;
    /** Hits serviced per level, DRAM last. */
    std::vector<std::uint64_t> level_hits;
    std::vector<std::string> level_names;
    std::uint64_t total_cycles = 0;
    /** Valid lines displaced across all levels (demand + prefetch). */
    std::uint64_t evictions = 0;

    double avg_load_latency() const;
    /** Share of total memory cycles serviced at level @p i. */
    double bound_fraction(std::size_t i) const;
    /** Miss ratio of level @p i (misses / lookups at that level). */
    double miss_ratio(std::size_t i) const;

    /** Lookups per level (level 0 sees all loads). */
    std::vector<std::uint64_t> level_lookups;
    std::vector<unsigned> level_latency;
};

/** LRU set-associative multi-level cache. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(CacheHierarchyConfig config);

    /** Simulate a load of @p bytes at @p addr (split across lines). */
    void load(std::uint64_t addr, unsigned bytes = 8);

    /** Convenience for tracing real data structures. */
    void load_ptr(const void* p, unsigned bytes = 8)
    {
        load(reinterpret_cast<std::uint64_t>(p), bytes);
    }

    /** Forget all cached lines but keep the counters. */
    void flush();

    /** Prefetched lines installed so far (not counted as loads). */
    std::uint64_t prefetches() const { return prefetches_; }

    /** Reset counters (keeps cache contents). */
    void reset_stats();

    /**
     * Surface this run's counters in the global obs::MetricsRegistry
     * under `<prefix>/...`: loads, per-level hits (`hits/L1`, ...,
     * `hits/DRAM`), evictions, prefetches, plus an `avg_load_latency`
     * gauge.  Publishes the delta since the previous publish (counters
     * in the registry stay monotonic across repeated calls and across
     * multiple hierarchies sharing a prefix).
     */
    void publish_metrics(const std::string& prefix = "memsim");

    const MemoryMetrics& metrics() const { return metrics_; }
    const CacheHierarchyConfig& config() const { return config_; }

  private:
    struct Way
    {
        std::uint64_t tag = ~0ULL;
        std::uint64_t lru = 0;
        bool valid = false;
    };
    struct Level
    {
        std::uint64_t num_sets = 0;
        unsigned assoc = 0;
        unsigned latency = 0;
        std::uint64_t tick = 0;
        std::vector<Way> ways; // num_sets * assoc
    };

    /** Access one line; returns index of the servicing level (levels.size()
     *  == DRAM). */
    std::size_t access_line(std::uint64_t line_addr);

    /** Install @p line_addr into levels [0, upto) without accounting. */
    void install_line(std::uint64_t line_addr, std::size_t upto);

    CacheHierarchyConfig config_;
    std::vector<Level> levels_;
    MemoryMetrics metrics_;
    std::uint64_t prefetches_ = 0;
    /** Snapshot at the last publish_metrics() call (delta baseline). */
    MemoryMetrics published_;
    std::uint64_t published_prefetches_ = 0;
};

/**
 * Abstract sink for load addresses; application kernels take an optional
 * tracer pointer so that the untraced path stays free of virtual calls.
 */
class AccessTracer
{
  public:
    virtual ~AccessTracer() = default;
    virtual void load(const void* addr, unsigned bytes) = 0;
};

/** Tracer feeding a CacheHierarchy, optionally sampling 1-in-k calls. */
class CacheTracer : public AccessTracer
{
  public:
    explicit CacheTracer(CacheHierarchyConfig config, unsigned sample = 1);

    void load(const void* addr, unsigned bytes) override;

    /** See CacheHierarchy::publish_metrics(). */
    void publish_metrics(const std::string& prefix = "memsim")
    {
        cache_.publish_metrics(prefix);
    }

    const MemoryMetrics& metrics() const { return cache_.metrics(); }
    CacheHierarchy& cache() { return cache_; }

  private:
    CacheHierarchy cache_;
    unsigned sample_;
    unsigned counter_ = 0;
};

} // namespace graphorder
