/**
 * @file
 * Trace-driven multi-level cache simulator.
 *
 * The paper measures memory behaviour with Intel VTune on a Cascade Lake
 * node: average load latency (cycles) and "memory hierarchy boundedness"
 * (share of stalled cycles attributable to L1/L2/L3/DRAM).  VTune is not
 * available here, so the application kernels are instrumented to emit
 * their load addresses into this simulator instead.  Each level is
 * set-associative with LRU replacement; a load is serviced by the first
 * level that hits and the line is installed in the levels above it
 * (subject to the per-level inclusion policy).
 *
 * Accounting model (see DESIGN.md "Memory-hierarchy model" for the spec):
 *  - level_lookups[i] counts demand probes of level i: level 0 sees every
 *    load, level i+1 sees exactly the misses of level i, and a DRAM
 *    lookup happens only when the last cache level misses, so
 *    lookups[DRAM] == lookups[L_last] - hits[L_last] holds by
 *    construction.
 *  - A hit at level i costs the *cumulative* lookup path: the sum of
 *    lookup latencies of levels 0..i.  A DRAM access costs the full
 *    cache path plus the DRAM latency.  avg_load_latency is the mean of
 *    that service latency over all demand loads.
 *  - bound_fraction(i) attributes each level its own lookup latency times
 *    its lookup count; because every cycle in total_cycles is one level's
 *    lookup latency on one probe, the fractions over {L1, ..., DRAM} sum
 *    to exactly 1 — a true decomposition, matching VTune's boundedness
 *    semantics.
 *  - Prefetched lines are not demand loads: they appear in no
 *    lookup/hit/latency counter.  Their effect is visible only through
 *    the demand stream (converted misses) and the dedicated
 *    prefetch_installs / prefetch_hits / prefetch_useless counters.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace graphorder {

/**
 * Inclusion policy of one cache level with respect to the levels closer
 * to the core (lower indices):
 *  - kNonInclusive (default): fills propagate to every level on the miss
 *    path; evictions at different levels are independent.  This is the
 *    Cascade Lake L3 behaviour.
 *  - kInclusive: the level must contain every line the inner levels
 *    hold; evicting a line from it back-invalidates the inner copies.
 *  - kExclusive: the level holds only victims of the level above it.  It
 *    is skipped on the fill path, receives the inner level's evicted
 *    lines, and a demand hit migrates the line back up (invalidating it
 *    here).
 */
enum class InclusionPolicy { kNonInclusive, kInclusive, kExclusive };

/**
 * Hardware-prefetcher model.  Both policies trigger only on a *demand
 * miss* — a demand access that no cache level services — never on L2/L3
 * hits and never on prefetched traffic, mirroring the paper's metric
 * semantics where DRAM-bound counts demand loads.
 *  - kNextLine: a demand miss on line a prefetches line a+1.
 *  - kStride: a single-stream stride detector; it trains on every demand
 *    access and, when a demand miss continues the previously observed
 *    stride, prefetches the next line of the stream (a + stride).
 * Prefetched lines install into L1 only, flagged, so hit/useless
 * attribution is exact: the first demand hit on a flagged line counts
 * prefetch_hits, a flagged line displaced before any demand touch counts
 * prefetch_useless.
 */
enum class PrefetchPolicy { kNone, kNextLine, kStride };

/** Geometry and latency of one cache level. */
struct CacheLevelConfig
{
    std::string name;
    std::uint64_t size_bytes = 0;
    unsigned associativity = 8;
    unsigned latency_cycles = 4;
    InclusionPolicy policy = InclusionPolicy::kNonInclusive;
};

/** Whole-hierarchy configuration. */
struct CacheHierarchyConfig
{
    unsigned line_bytes = 64;
    std::vector<CacheLevelConfig> levels;
    unsigned dram_latency_cycles = 200;
    PrefetchPolicy prefetch = PrefetchPolicy::kNone;

    /**
     * The paper's test platform (per-core slice): L1 32 KB / 8-way / 4
     * cycles, L2 1 MB / 16-way / 14 cycles, L3 38.5 MB / 11-way / 60
     * cycles, DRAM ~200 cycles.  All levels non-inclusive (Cascade Lake
     * dropped the inclusive L3 of earlier generations).
     */
    static CacheHierarchyConfig cascade_lake();

    /** A tiny hierarchy for unit tests (direct-mapped 4-line L1). */
    static CacheHierarchyConfig tiny_test();

    /**
     * Cascade Lake with every level's capacity divided by @p divisor
     * (latencies unchanged, capacities floored at 4 lines).  Used by the
     * memory benches: when the benchmark graphs are scaled down by S, a
     * hierarchy scaled by ~S/4 keeps the working-set-to-cache ratios —
     * and hence the L1/L2/L3/DRAM-bound shape — comparable to the
     * paper's full-size runs.
     */
    static CacheHierarchyConfig cascade_lake_scaled(double divisor);
};

/** Counters accumulated by a simulation run (demand traffic only). */
struct MemoryMetrics
{
    std::uint64_t loads = 0;
    /** Demand accesses serviced per level, DRAM last. */
    std::vector<std::uint64_t> level_hits;
    std::vector<std::string> level_names;
    std::uint64_t total_cycles = 0;
    /** Valid lines displaced across all levels (demand + prefetch). */
    std::uint64_t evictions = 0;

    /** Demand lookups per level: level 0 sees all loads, level i+1 the
     *  misses of level i, DRAM only the misses of the last cache level. */
    std::vector<std::uint64_t> level_lookups;
    /** Per-level lookup latency (DRAM last). */
    std::vector<unsigned> level_latency;
    /** Cumulative service latency of a hit at level i (sum of lookup
     *  latencies 0..i; the DRAM entry includes the full cache path). */
    std::vector<unsigned> service_latency;

    /** Prefetched lines actually installed (resident no-ops excluded). */
    std::uint64_t prefetch_installs = 0;
    /** Demand hits serviced by a line that prefetching brought in. */
    std::uint64_t prefetch_hits = 0;
    /** Prefetched lines displaced before any demand touch. */
    std::uint64_t prefetch_useless = 0;

    /** Mean demand service latency (total_cycles / loads). */
    double avg_load_latency() const;
    /**
     * Share of total memory cycles attributed to level @p i:
     * level_latency[i] * level_lookups[i] / total_cycles.  Sums to
     * exactly 1 over all levels including DRAM.
     */
    double bound_fraction(std::size_t i) const;
    /** Miss ratio of level @p i (misses / lookups at that level). */
    double miss_ratio(std::size_t i) const;
    /** Demand misses of level @p i (lookups minus hits). */
    std::uint64_t misses(std::size_t i) const;

    /** Copy with every counter multiplied by @p factor (sampling
     *  extrapolation; ratios like avg_load_latency are unchanged). */
    MemoryMetrics scaled_by(std::uint64_t factor) const;
};

/** LRU set-associative multi-level cache. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(CacheHierarchyConfig config);

    /** Simulate a demand load of @p bytes at @p addr (split across
     *  lines). */
    void load(std::uint64_t addr, unsigned bytes = 8);

    /** Convenience for tracing real data structures. */
    void load_ptr(const void* p, unsigned bytes = 8)
    {
        load(reinterpret_cast<std::uint64_t>(p), bytes);
    }

    /** Forget all cached lines but keep the counters. */
    void flush();

    /** Prefetched lines actually installed so far (== metrics()
     *  .prefetch_installs; resident-line no-ops are not counted). */
    std::uint64_t prefetches() const { return metrics_.prefetch_installs; }

    /** Reset counters (keeps cache contents). */
    void reset_stats();

    /**
     * Surface this run's counters in the global obs::MetricsRegistry
     * under `<prefix>/...`: loads, cycles, per-level hits (`hits/L1`,
     * ..., `hits/DRAM`) and lookups (`lookups/L1`, ...), evictions,
     * prefetch_installs / prefetch_hits / prefetch_useless, plus an
     * `avg_load_latency` gauge.  Publishes the delta since the previous
     * publish, multiplied by @p scale (counters in the registry stay
     * monotonic across repeated calls and across multiple hierarchies
     * sharing a prefix).  @p scale is the sampling extrapolation factor
     * used by CacheTracer.
     */
    void publish_metrics(const std::string& prefix = "memsim",
                         std::uint64_t scale = 1);

    const MemoryMetrics& metrics() const { return metrics_; }
    const CacheHierarchyConfig& config() const { return config_; }

  private:
    struct Way
    {
        std::uint64_t tag = ~0ULL;
        std::uint64_t lru = 0;
        bool valid = false;
        /** Brought in by the prefetcher and not demand-touched yet. */
        bool prefetched = false;
    };
    struct Level
    {
        std::uint64_t num_sets = 0;
        unsigned assoc = 0;
        unsigned latency = 0;
        InclusionPolicy policy = InclusionPolicy::kNonInclusive;
        std::uint64_t tick = 0;
        std::vector<Way> ways; // num_sets * assoc
    };

    /** Demand access of one line with full accounting; returns index of
     *  the servicing level (levels_.size() == DRAM). */
    std::size_t access_line(std::uint64_t line_addr);

    Way* find_way(Level& l, std::uint64_t line_addr);
    bool resident_anywhere(std::uint64_t line_addr) const;

    /** Install @p line_addr into levels [0, upto), skipping exclusive
     *  levels (they are filled by victims only). */
    void fill_path(std::uint64_t line_addr, std::size_t upto);

    /** Install one line into level @p li, evicting a victim if needed
     *  (inclusive back-invalidation, exclusive victim demotion). */
    void insert_line(std::size_t li, std::uint64_t line_addr,
                     bool prefetched);

    /** Drop @p line_addr from levels [0, outer) (inclusive eviction). */
    void invalidate_inner(std::uint64_t line_addr, std::size_t outer);

    /** Run the prefetcher after a demand access (issues only on a full
     *  demand miss). */
    void prefetch_step(std::uint64_t line_addr, bool demand_miss);

    CacheHierarchyConfig config_;
    std::vector<Level> levels_;
    MemoryMetrics metrics_;
    /** Stride-detector state (kStride policy). */
    std::uint64_t last_line_ = 0;
    std::int64_t last_stride_ = 0;
    bool have_last_line_ = false;
    bool have_last_stride_ = false;
    /** Snapshot at the last publish_metrics() call (delta baseline). */
    MemoryMetrics published_;
};

/**
 * Abstract sink for load addresses; application kernels take an optional
 * tracer pointer so that the untraced path stays free of virtual calls.
 */
class AccessTracer
{
  public:
    virtual ~AccessTracer() = default;
    virtual void load(const void* addr, unsigned bytes) = 0;
};

/**
 * Tracer feeding a CacheHierarchy, optionally sampling 1-in-k calls.
 * Reported metrics are extrapolated back by the sampling factor, so
 * loads/cycles from a sampled run are comparable to an unsampled one
 * (ratios such as avg_load_latency and bound fractions are unaffected by
 * the uniform scaling).
 */
class CacheTracer : public AccessTracer
{
  public:
    explicit CacheTracer(CacheHierarchyConfig config, unsigned sample = 1);

    void load(const void* addr, unsigned bytes) override;

    /** See CacheHierarchy::publish_metrics(); deltas are scaled by the
     *  sampling factor. */
    void publish_metrics(const std::string& prefix = "memsim")
    {
        cache_.publish_metrics(prefix, sample_);
    }

    /** Metrics extrapolated by the sampling factor.  For the raw
     *  (unscaled) simulated counters use cache().metrics(). */
    MemoryMetrics metrics() const
    {
        return cache_.metrics().scaled_by(sample_);
    }
    CacheHierarchy& cache() { return cache_; }

  private:
    CacheHierarchy cache_;
    unsigned sample_;
    unsigned counter_ = 0;
};

} // namespace graphorder
