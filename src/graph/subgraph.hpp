/**
 * @file
 * Induced-subgraph extraction.
 *
 * Used by recursive bisection, nested dissection and the hybrid ordering
 * engine, and part of the public API (community-wise analysis needs it).
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace graphorder {

/** A subgraph together with its mapping back to the parent ids. */
struct Subgraph
{
    Csr graph;
    /** to_parent[sub id] = parent id. */
    std::vector<vid_t> to_parent;
};

/**
 * Extract the subgraph induced by the vertices with @p keep[v] != 0.
 * Edge weights are preserved when the parent graph is weighted.
 * Sub ids follow parent-id order.
 */
Subgraph induced_subgraph(const Csr& g,
                          const std::vector<std::uint8_t>& keep);

/** Extract the subgraph induced by an explicit member list (parent-id
 *  order is taken from the list, which must be duplicate-free). */
Subgraph induced_subgraph(const Csr& g, const std::vector<vid_t>& members);

} // namespace graphorder
