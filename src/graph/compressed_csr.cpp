#include "graph/compressed_csr.hpp"

#include <algorithm>
#include <cassert>

#include "memsim/cache.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

namespace graphorder {

namespace varint {

unsigned
encode(std::uint64_t x, std::uint8_t* out)
{
    unsigned i = 0;
    while (x >= 0x80) {
        out[i++] = static_cast<std::uint8_t>(x) | 0x80;
        x >>= 7;
    }
    out[i++] = static_cast<std::uint8_t>(x);
    return i;
}

unsigned
decode(const std::uint8_t* p, std::uint64_t* x)
{
    std::uint64_t v = 0;
    unsigned shift = 0, i = 0;
    while (p[i] & 0x80) {
        v |= static_cast<std::uint64_t>(p[i] & 0x7f) << shift;
        shift += 7;
        ++i;
    }
    v |= static_cast<std::uint64_t>(p[i]) << shift;
    *x = v;
    return i + 1;
}

unsigned
length(std::uint64_t x)
{
    unsigned len = 1;
    while (x >= 0x80) {
        x >>= 7;
        ++len;
    }
    return len;
}

} // namespace varint

namespace {

/** Block grain of the encoder: references never cross block boundaries,
 *  and boundaries depend only on n, so the encoding is thread-count
 *  independent (see util/parallel.hpp). */
constexpr std::size_t kEncodeGrain = 4096;

void
emit(std::vector<std::uint8_t>& out, std::uint64_t x)
{
    std::uint8_t buf[varint::kMaxBytes];
    const unsigned len = varint::encode(x, buf);
    out.insert(out.end(), buf, buf + len);
}

/** Varint bytes of a sorted list coded as (zigzag first delta from
 *  @p anchor, then gap-1); 0 for an empty list. */
std::uint64_t
gap_coded_size(std::span<const vid_t> list, vid_t anchor)
{
    if (list.empty())
        return 0;
    std::uint64_t sz = varint::length(varint::zigzag(
        static_cast<std::int64_t>(list[0])
        - static_cast<std::int64_t>(anchor)));
    for (std::size_t i = 1; i < list.size(); ++i)
        sz += varint::length(list[i] - list[i - 1] - 1);
    return sz;
}

void
emit_gap_coded(std::vector<std::uint8_t>& out,
               std::span<const vid_t> list, vid_t anchor)
{
    if (list.empty())
        return;
    emit(out, varint::zigzag(static_cast<std::int64_t>(list[0])
                             - static_cast<std::int64_t>(anchor)));
    for (std::size_t i = 1; i < list.size(); ++i)
        emit(out, list[i] - list[i - 1] - 1);
}

/** Per-block encoder output, combined in block order. */
struct BlockOut
{
    std::vector<std::uint8_t> bytes;
    CompressedSizeBreakdown breakdown;
};

} // namespace

CompressedCsr
CompressedCsr::encode(const Csr& g, EncodeOptions opt)
{
    if (g.weighted())
        throw GraphorderError(
            StatusCode::InvalidInput,
            "compressed csr: weighted graphs are not supported");

    CompressedCsr c;
    c.max_ref_chain_ = opt.max_ref_chain;
    const vid_t n = g.num_vertices();
    c.degrees_.resize(n);
    c.byte_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
    c.arcs_ = g.num_arcs();
    if (n == 0)
        return c;

    const std::size_t nb = num_blocks(n, kEncodeGrain);
    std::vector<BlockOut> blocks(nb);
    // Per-vertex encoded sizes; prefix-summed into byte_offsets_ below.
    std::vector<eid_t> sizes(n, 0);
    Status first_error = Status::ok();

    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        BlockOut& out = blocks[b];
        // Reference-chain length per vertex of this block (0 = gap
        // mode); a vertex is a usable reference only while its chain
        // stays under the cap, bounding decode recursion.
        std::vector<unsigned> chain(hi - lo, 0);
        std::vector<vid_t> residual;
        for (std::size_t sv = lo; sv < hi; ++sv) {
            const vid_t v = static_cast<vid_t>(sv);
            c.degrees_[v] = g.degree(v);
            const auto nbrs = g.neighbors(v);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                if (nbrs[i] == v
                    || (i > 0 && nbrs[i] <= nbrs[i - 1])) {
                    #pragma omp critical(go_compress_error)
                    if (first_error.is_ok())
                        first_error = Status(
                            StatusCode::InvalidInput,
                            "compressed csr: neighbor list of vertex "
                                + std::to_string(v)
                                + " is not sorted/simple");
                }
            }
            if (nbrs.empty())
                continue; // degree 0: zero bytes
            const std::uint64_t gap_size = gap_coded_size(nbrs, v);
            const std::uint64_t standalone =
                varint::length(0) + gap_size;

            // Best reference in the window, nearest first so ties keep
            // the cheapest header; candidates never leave the block.
            vid_t best_ref = kNoVertex;
            std::uint64_t best_size = standalone;
            std::uint64_t best_res_size = 0;
            const std::size_t wlo =
                sv - lo >= opt.ref_window ? sv - opt.ref_window : lo;
            for (std::size_t sr = sv; sr-- > wlo;) {
                if (chain[sr - lo] >= opt.max_ref_chain)
                    continue;
                const vid_t r = static_cast<vid_t>(sr);
                const auto rn = g.neighbors(r);
                if (rn.empty())
                    continue;
                // N(v) \ N(r) by sorted merge.
                residual.clear();
                std::size_t i = 0, j = 0;
                while (i < nbrs.size()) {
                    if (j == rn.size() || nbrs[i] < rn[j])
                        residual.push_back(nbrs[i++]);
                    else if (rn[j] < nbrs[i])
                        ++j;
                    else {
                        ++i;
                        ++j;
                    }
                }
                const std::uint64_t res_size =
                    gap_coded_size(residual, v);
                const std::uint64_t sz = varint::length(v - r)
                    + (rn.size() + 7) / 8 + res_size;
                if (sz < best_size) {
                    best_size = sz;
                    best_ref = r;
                    best_res_size = res_size;
                }
            }

            const std::size_t start = out.bytes.size();
            if (best_ref == kNoVertex) {
                emit(out.bytes, 0);
                out.breakdown.reference_bytes += varint::length(0);
                emit_gap_coded(out.bytes, nbrs, v);
                out.breakdown.gap_bytes += gap_size;
            } else {
                const vid_t r = best_ref;
                const auto rn = g.neighbors(r);
                emit(out.bytes, v - r);
                // Copy mask over r's list, LSB-first.
                const std::size_t mask_len = (rn.size() + 7) / 8;
                const std::size_t mask_at = out.bytes.size();
                out.bytes.resize(mask_at + mask_len, 0);
                residual.clear();
                std::size_t i = 0, j = 0;
                while (i < nbrs.size()) {
                    if (j == rn.size() || nbrs[i] < rn[j])
                        residual.push_back(nbrs[i++]);
                    else if (rn[j] < nbrs[i])
                        ++j;
                    else {
                        out.bytes[mask_at + j / 8] |=
                            static_cast<std::uint8_t>(1u << (j % 8));
                        ++i;
                        ++j;
                    }
                }
                emit_gap_coded(out.bytes, residual, v);
                out.breakdown.reference_bytes +=
                    varint::length(v - r) + mask_len;
                out.breakdown.residual_bytes += best_res_size;
                ++out.breakdown.ref_vertices;
                chain[sv - lo] = chain[best_ref - lo] + 1;
            }
            sizes[sv] = out.bytes.size() - start;
        }
    }
    if (!first_error.is_ok())
        throw GraphorderError(first_error);

    // Global byte offsets (prefix sum depends only on the sizes) and a
    // block-order combine of the breakdown counters.
    const eid_t total = exclusive_prefix_sum(sizes);
    for (vid_t v = 0; v < n; ++v)
        c.byte_offsets_[v] = sizes[v];
    c.byte_offsets_[n] = total;
    for (const auto& blk : blocks) {
        c.breakdown_.gap_bytes += blk.breakdown.gap_bytes;
        c.breakdown_.reference_bytes += blk.breakdown.reference_bytes;
        c.breakdown_.residual_bytes += blk.breakdown.residual_bytes;
        c.breakdown_.ref_vertices += blk.breakdown.ref_vertices;
    }

    c.bytes_.resize(total);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        (void)hi;
        std::copy(blocks[b].bytes.begin(), blocks[b].bytes.end(),
                  c.bytes_.begin()
                      + static_cast<std::ptrdiff_t>(c.byte_offsets_[lo]));
    }
    return c;
}

void
CompressedCsr::decode_into(vid_t v, unsigned depth,
                           std::vector<vid_t>& out,
                           DecodeScratch& scratch,
                           AccessTracer* tracer) const
{
    out.clear();
    const vid_t d = degrees_[v];
    if (d == 0)
        return;
    out.reserve(d);
    const std::uint8_t* p = bytes_.data() + byte_offsets_[v];

    std::uint64_t ref_delta = 0;
    unsigned len = varint::decode(p, &ref_delta);
    if (tracer)
        tracer->load(p, len);
    p += len;

    if (ref_delta == 0) {
        std::uint64_t u = 0;
        len = varint::decode(p, &u);
        if (tracer)
            tracer->load(p, len);
        p += len;
        std::int64_t cur =
            static_cast<std::int64_t>(v) + varint::unzigzag(u);
        out.push_back(static_cast<vid_t>(cur));
        for (vid_t i = 1; i < d; ++i) {
            len = varint::decode(p, &u);
            if (tracer)
                tracer->load(p, len);
            p += len;
            cur += static_cast<std::int64_t>(u) + 1;
            out.push_back(static_cast<vid_t>(cur));
        }
        return;
    }

    // Reference mode: materialize r's list (bounded recursion), read the
    // copy mask, decode the residuals, then merge the two sorted runs.
    // The scratch pools were pre-sized in neighbors() — growing them
    // here would invalidate the buffer references held by outer frames.
    const vid_t r = v - static_cast<vid_t>(ref_delta);
    decode_into(r, depth + 1, scratch.ref[depth], scratch, tracer);
    std::vector<vid_t>& rl = scratch.ref[depth];
    std::vector<vid_t>& res = scratch.res[depth];

    const std::uint8_t* mask = p;
    const std::size_t mask_len = (rl.size() + 7) / 8;
    if (tracer)
        tracer->load(mask, static_cast<unsigned>(mask_len));
    p += mask_len;

    vid_t copied = 0;
    for (std::size_t j = 0; j < rl.size(); ++j)
        copied += (mask[j / 8] >> (j % 8)) & 1u;

    res.clear();
    if (d > copied) {
        std::uint64_t u = 0;
        len = varint::decode(p, &u);
        if (tracer)
            tracer->load(p, len);
        p += len;
        std::int64_t cur =
            static_cast<std::int64_t>(v) + varint::unzigzag(u);
        res.push_back(static_cast<vid_t>(cur));
        for (vid_t i = 1; i < d - copied; ++i) {
            len = varint::decode(p, &u);
            if (tracer)
                tracer->load(p, len);
            p += len;
            cur += static_cast<std::int64_t>(u) + 1;
            res.push_back(static_cast<vid_t>(cur));
        }
    }

    std::size_t j = 0, k = 0;
    for (std::size_t i = 0; i < rl.size(); ++i) {
        if (!((mask[i / 8] >> (i % 8)) & 1u))
            continue;
        while (k < res.size() && res[k] < rl[i])
            out.push_back(res[k++]);
        out.push_back(rl[i]);
        ++j;
    }
    while (k < res.size())
        out.push_back(res[k++]);
    assert(out.size() == d);
    (void)j;
}

std::span<const vid_t>
CompressedCsr::neighbors(vid_t v, DecodeScratch& scratch,
                         AccessTracer* tracer) const
{
    if (scratch.ref.size() <= max_ref_chain_) {
        scratch.ref.resize(max_ref_chain_ + 1);
        scratch.res.resize(max_ref_chain_ + 1);
    }
    decode_into(v, 0, scratch.out, scratch, tracer);
    return {scratch.out.data(), scratch.out.size()};
}

Csr
CompressedCsr::decode() const
{
    const vid_t n = num_vertices();
    std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);
    for (vid_t v = 0; v < n; ++v)
        offsets[v + 1] = offsets[v] + degrees_[v];
    std::vector<vid_t> adjacency(offsets[n]);

    const std::size_t nb = num_blocks(n, kEncodeGrain);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        DecodeScratch scratch;
        for (std::size_t sv = lo; sv < hi; ++sv) {
            const vid_t v = static_cast<vid_t>(sv);
            const auto nbrs = neighbors(v, scratch);
            std::copy(nbrs.begin(), nbrs.end(),
                      adjacency.begin()
                          + static_cast<std::ptrdiff_t>(offsets[v]));
        }
    }
    return Csr(std::move(offsets), std::move(adjacency));
}

} // namespace graphorder
