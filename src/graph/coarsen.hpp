/**
 * @file
 * Graph contraction by a vertex->group map.
 *
 * Used in three places that mirror the paper: Louvain's phase compaction
 * (communities become vertices of the next-level graph), the Grappolo-RCM
 * ordering (RCM runs on the community coarsened graph), and the multilevel
 * partitioner (matching-based coarsening).
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace graphorder {

/** Result of contracting a graph by a group map. */
struct CoarseGraph
{
    /** Weighted graph over groups; self-loop weight excluded. */
    Csr graph;
    /** Total internal (intra-group) edge weight per group (self loops). */
    std::vector<weight_t> self_weight;
    /** Number of fine vertices in each group. */
    std::vector<vid_t> group_size;
};

/**
 * Contract @p g by @p group (vertex -> group id, ids must be dense in
 * [0, num_groups)).  Parallel edges between groups are merged with weights
 * accumulated; intra-group weight is reported separately in self_weight
 * (Louvain needs it for modularity bookkeeping).
 */
CoarseGraph coarsen_by_groups(const Csr& g, const std::vector<vid_t>& group,
                              vid_t num_groups);

/**
 * Renumber an arbitrary labeling to dense ids [0, k); returns k.
 * Label order of first appearance is preserved.
 */
vid_t densify_labels(std::vector<vid_t>& labels);

} // namespace graphorder
