#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/builder.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace graphorder {

Csr
read_edge_list(std::istream& in, bool weighted)
{
    auto& reg = obs::MetricsRegistry::instance();
    auto& malformed = reg.counter("io/edge_list/malformed_lines");
    auto& self_loops = reg.counter("io/edge_list/self_loops");
    std::uint64_t malformed_here = 0, self_loops_here = 0;

    std::vector<Edge> edges;
    std::unordered_map<std::uint64_t, vid_t> compact;
    auto intern = [&](std::uint64_t raw) {
        auto [it, fresh] =
            compact.emplace(raw, static_cast<vid_t>(compact.size()));
        (void)fresh;
        return it->second;
    };

    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ls(line);
        std::uint64_t u, v;
        if (!(ls >> u >> v)) {
            malformed.add();
            ++malformed_here;
            continue;
        }
        double w = 1.0;
        if (weighted && !(ls >> w))
            throw std::runtime_error(
                "edge list: line " + std::to_string(line_no)
                + " is missing the weight required by a weighted parse: \""
                + line + "\"");
        const vid_t cu = intern(u);
        const vid_t cv = intern(v);
        if (cu == cv) {
            self_loops.add();
            ++self_loops_here;
            continue;
        }
        edges.push_back({cu, cv, w});
    }
    if (malformed_here > 0)
        warn("edge list: skipped " + std::to_string(malformed_here)
             + " malformed line(s)");
    if (self_loops_here > 0)
        warn("edge list: dropped " + std::to_string(self_loops_here)
             + " self loop(s)");
    return build_csr(static_cast<vid_t>(compact.size()), edges, weighted);
}

Csr
load_edge_list(const std::string& path, bool weighted)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open edge list: " + path);
    return read_edge_list(in, weighted);
}

void
write_edge_list(std::ostream& out, const Csr& g)
{
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        for (vid_t w : g.neighbors(v))
            if (v < w)
                out << v << ' ' << w << '\n';
}

Csr
read_metis(std::istream& in)
{
    std::string line;
    // Header: skip comments (%).
    do {
        if (!std::getline(in, line))
            throw std::runtime_error("metis: missing header");
    } while (!line.empty() && line[0] == '%');

    std::istringstream hs(line);
    std::uint64_t n = 0, m = 0;
    if (!(hs >> n >> m))
        throw std::runtime_error("metis: bad header");
    std::uint64_t fmt = 0;
    hs >> fmt;
    if (fmt != 0)
        throw std::runtime_error("metis: only fmt 0 supported");

    // Collect every listed (v, w) pair in both its roles and let
    // build_csr symmetrize + deduplicate.  The format specifies that
    // each edge appears in both endpoints' lines, but real-world files
    // often list each undirected edge only once (on either endpoint);
    // keeping every direction makes both conventions parse to the same
    // graph instead of silently dropping the single-listed edges.
    std::vector<Edge> edges;
    edges.reserve(2 * m);
    for (std::uint64_t v = 0; v < n; ++v) {
        if (!std::getline(in, line))
            throw std::runtime_error("metis: truncated file");
        if (!line.empty() && line[0] == '%') {
            --v; // comment line does not consume a vertex
            continue;
        }
        std::istringstream ls(line);
        std::uint64_t w;
        while (ls >> w) {
            if (w == 0 || w > n)
                throw std::runtime_error("metis: neighbor id out of range");
            if (v != w - 1)
                edges.push_back({static_cast<vid_t>(v),
                                 static_cast<vid_t>(w - 1), 1.0});
        }
    }
    Csr g = build_csr(static_cast<vid_t>(n), edges, false);
    if (g.num_edges() != m) {
        obs::MetricsRegistry::instance()
            .counter("io/metis/header_mismatch")
            .add();
        warn("metis: header claims " + std::to_string(m)
             + " edges but the adjacency lines contain "
             + std::to_string(g.num_edges())
             + " distinct undirected edges; using the parsed count");
    }
    return g;
}

void
write_metis(std::ostream& out, const Csr& g)
{
    out << g.num_vertices() << ' ' << g.num_edges() << '\n';
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        bool first = true;
        for (vid_t w : g.neighbors(v)) {
            if (!first)
                out << ' ';
            out << (w + 1);
            first = false;
        }
        out << '\n';
    }
}

} // namespace graphorder
