#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "graph/builder.hpp"
#include "obs/metrics.hpp"
#include "util/faultpoint.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

namespace graphorder {

namespace {

// Fault-injection sites covering the loader paths (enumerable via
// all_fault_points(); exercised by tests/robust_test.cpp).
FaultPoint fp_io_open{
    "io.open", StatusCode::InvalidInput,
    "file open fails as if the path were missing or unreadable"};
FaultPoint fp_edge_list_truncate{
    "io.edge_list.truncate", StatusCode::Truncated,
    "edge-list parse aborts mid-stream as if the file were cut off"};
FaultPoint fp_metis_truncate{
    "io.metis.truncate", StatusCode::Truncated,
    "METIS parse aborts mid-adjacency as if the file were cut off"};

/** "source:line: what" message prefix (1-based lines). */
std::string
at(const std::string& source, std::uint64_t line, const std::string& what)
{
    return source + ":" + std::to_string(line) + ": " + what;
}

} // namespace

Csr
read_edge_list(std::istream& in, bool weighted, const std::string& source)
{
    auto& reg = obs::MetricsRegistry::instance();
    auto& malformed = reg.counter("io/edge_list/malformed_lines");
    auto& self_loops = reg.counter("io/edge_list/self_loops");
    std::uint64_t malformed_here = 0, self_loops_here = 0;

    std::vector<Edge> edges;
    std::unordered_map<std::uint64_t, vid_t> compact;

    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        fp_edge_list_truncate.maybe_fire();
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ls(line);
        std::uint64_t u, v;
        if (!(ls >> u >> v)) {
            malformed.add();
            ++malformed_here;
            continue;
        }
        double w = 1.0;
        if (weighted && !(ls >> w))
            throw GraphorderError(
                StatusCode::InvalidInput,
                at(source, line_no,
                   "missing the weight required by a weighted parse: \""
                       + line + "\""));
        // Compacted ids are vid_t (32-bit); kNoVertex is reserved as the
        // sentinel, so the id space holds at most kNoVertex vertices.
        if (compact.size() >= static_cast<std::size_t>(kNoVertex)
            && !compact.count(u))
            throw GraphorderError(
                StatusCode::InvalidInput,
                at(source, line_no,
                   "vertex-id overflow: more than "
                       + std::to_string(kNoVertex)
                       + " distinct vertex ids"));
        auto intern = [&](std::uint64_t raw) {
            auto [it, fresh] =
                compact.emplace(raw, static_cast<vid_t>(compact.size()));
            (void)fresh;
            return it->second;
        };
        const vid_t cu = intern(u);
        if (compact.size() >= static_cast<std::size_t>(kNoVertex)
            && !compact.count(v))
            throw GraphorderError(
                StatusCode::InvalidInput,
                at(source, line_no,
                   "vertex-id overflow: more than "
                       + std::to_string(kNoVertex)
                       + " distinct vertex ids"));
        const vid_t cv = intern(v);
        if (cu == cv) {
            self_loops.add();
            ++self_loops_here;
            continue;
        }
        edges.push_back({cu, cv, w});
    }
    if (malformed_here > 0)
        warn(source + ": skipped " + std::to_string(malformed_here)
             + " malformed line(s)");
    if (self_loops_here > 0)
        warn(source + ": dropped " + std::to_string(self_loops_here)
             + " self loop(s)");
    return build_csr(static_cast<vid_t>(compact.size()), edges, weighted);
}

Csr
load_edge_list(const std::string& path, bool weighted)
{
    fp_io_open.maybe_fire();
    std::ifstream in(path);
    if (!in)
        throw GraphorderError(StatusCode::InvalidInput,
                              "cannot open edge list: " + path);
    return read_edge_list(in, weighted, path);
}

void
write_edge_list(std::ostream& out, const Csr& g)
{
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        for (vid_t w : g.neighbors(v))
            if (v < w)
                out << v << ' ' << w << '\n';
}

Csr
read_metis(std::istream& in, const std::string& source)
{
    std::string line;
    std::uint64_t line_no = 0;
    // Header: skip comments (%).
    do {
        if (!std::getline(in, line))
            throw GraphorderError(
                StatusCode::Truncated,
                at(source, line_no + 1, "metis: missing header"));
        ++line_no;
    } while (!line.empty() && line[0] == '%');
    const std::uint64_t header_line = line_no;

    std::istringstream hs(line);
    std::uint64_t n = 0, m = 0;
    if (!(hs >> n >> m))
        throw GraphorderError(
            StatusCode::InvalidInput,
            at(source, header_line,
               "metis: bad header \"" + line + "\" (expected \"n m [fmt]\")"));
    std::uint64_t fmt = 0;
    hs >> fmt;
    if (fmt != 0)
        throw GraphorderError(
            StatusCode::InvalidInput,
            at(source, header_line,
               "metis: only fmt 0 supported, got "
                   + std::to_string(fmt)));
    if (n > static_cast<std::uint64_t>(kNoVertex))
        throw GraphorderError(
            StatusCode::InvalidInput,
            at(source, header_line,
               "metis: vertex count " + std::to_string(n)
                   + " overflows the 32-bit id space"));
    // A header edge count impossible for a simple graph (m > n(n-1)/2)
    // is treated like any other header/body mismatch below: the parsed
    // count wins and io/metis/header_mismatch is bumped.  The header's m
    // only feeds a capped reserve, so a lying value cannot poison
    // allocations.

    // Collect every listed (v, w) pair in both its roles and let
    // build_csr symmetrize + deduplicate.  The format specifies that
    // each edge appears in both endpoints' lines, but real-world files
    // often list each undirected edge only once (on either endpoint);
    // keeping every direction makes both conventions parse to the same
    // graph instead of silently dropping the single-listed edges.
    std::vector<Edge> edges;
    // Cap the speculative reserve: the header's m is untrusted input.
    edges.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(2 * m, std::uint64_t{1} << 20)));
    for (std::uint64_t v = 0; v < n; ++v) {
        fp_metis_truncate.maybe_fire();
        if (!std::getline(in, line))
            throw GraphorderError(
                StatusCode::Truncated,
                at(source, line_no + 1,
                   "metis: file ends at vertex " + std::to_string(v + 1)
                       + " of " + std::to_string(n)));
        ++line_no;
        if (!line.empty() && line[0] == '%') {
            --v; // comment line does not consume a vertex
            continue;
        }
        std::istringstream ls(line);
        std::uint64_t w;
        while (ls >> w) {
            if (w == 0 || w > n)
                throw GraphorderError(
                    StatusCode::InvalidInput,
                    at(source, line_no,
                       "metis: neighbor id " + std::to_string(w)
                           + " out of range [1, " + std::to_string(n)
                           + "]"));
            if (v != w - 1)
                edges.push_back({static_cast<vid_t>(v),
                                 static_cast<vid_t>(w - 1), 1.0});
        }
    }
    Csr g = build_csr(static_cast<vid_t>(n), edges, false);
    if (g.num_edges() != m) {
        obs::MetricsRegistry::instance()
            .counter("io/metis/header_mismatch")
            .add();
        warn(source + ": metis header claims " + std::to_string(m)
             + " edges but the adjacency lines contain "
             + std::to_string(g.num_edges())
             + " distinct undirected edges; using the parsed count");
    }
    return g;
}

Csr
load_metis(const std::string& path)
{
    fp_io_open.maybe_fire();
    std::ifstream in(path);
    if (!in)
        throw GraphorderError(StatusCode::InvalidInput,
                              "cannot open metis file: " + path);
    return read_metis(in, path);
}

void
write_metis(std::ostream& out, const Csr& g)
{
    out << g.num_vertices() << ' ' << g.num_edges() << '\n';
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        bool first = true;
        for (vid_t w : g.neighbors(v)) {
            if (!first)
                out << ' ';
            out << (w + 1);
            first = false;
        }
        out << '\n';
    }
}

} // namespace graphorder
