#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/builder.hpp"

namespace graphorder {

Csr
read_edge_list(std::istream& in, bool weighted)
{
    std::vector<Edge> edges;
    std::unordered_map<std::uint64_t, vid_t> compact;
    auto intern = [&](std::uint64_t raw) {
        auto [it, fresh] =
            compact.emplace(raw, static_cast<vid_t>(compact.size()));
        (void)fresh;
        return it->second;
    };

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ls(line);
        std::uint64_t u, v;
        if (!(ls >> u >> v))
            continue;
        double w = 1.0;
        if (weighted)
            ls >> w;
        const vid_t cu = intern(u);
        const vid_t cv = intern(v);
        if (cu != cv)
            edges.push_back({cu, cv, w});
    }
    return build_csr(static_cast<vid_t>(compact.size()), edges, weighted);
}

Csr
load_edge_list(const std::string& path, bool weighted)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open edge list: " + path);
    return read_edge_list(in, weighted);
}

void
write_edge_list(std::ostream& out, const Csr& g)
{
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        for (vid_t w : g.neighbors(v))
            if (v < w)
                out << v << ' ' << w << '\n';
}

Csr
read_metis(std::istream& in)
{
    std::string line;
    // Header: skip comments (%).
    do {
        if (!std::getline(in, line))
            throw std::runtime_error("metis: missing header");
    } while (!line.empty() && line[0] == '%');

    std::istringstream hs(line);
    std::uint64_t n = 0, m = 0;
    if (!(hs >> n >> m))
        throw std::runtime_error("metis: bad header");
    std::uint64_t fmt = 0;
    hs >> fmt;
    if (fmt != 0)
        throw std::runtime_error("metis: only fmt 0 supported");

    std::vector<Edge> edges;
    edges.reserve(m);
    for (std::uint64_t v = 0; v < n; ++v) {
        if (!std::getline(in, line))
            throw std::runtime_error("metis: truncated file");
        if (!line.empty() && line[0] == '%') {
            --v; // comment line does not consume a vertex
            continue;
        }
        std::istringstream ls(line);
        std::uint64_t w;
        while (ls >> w) {
            if (w == 0 || w > n)
                throw std::runtime_error("metis: neighbor id out of range");
            if (v < w - 1)
                edges.push_back({static_cast<vid_t>(v),
                                 static_cast<vid_t>(w - 1), 1.0});
        }
    }
    return build_csr(static_cast<vid_t>(n), edges, false);
}

void
write_metis(std::ostream& out, const Csr& g)
{
    out << g.num_vertices() << ' ' << g.num_edges() << '\n';
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        bool first = true;
        for (vid_t w : g.neighbors(v)) {
            if (!first)
                out << ' ';
            out << (w + 1);
            first = false;
        }
        out << '\n';
    }
}

} // namespace graphorder
