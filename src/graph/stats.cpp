#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "graph/traversal.hpp"

namespace graphorder {

std::uint64_t
count_triangles(const Csr& g)
{
    // Orient edges from lower-degree to higher-degree endpoint (ties by
    // id) and intersect forward-neighbor lists: the standard
    // degree-ordered counting that visits each triangle exactly once.
    const vid_t n = g.num_vertices();
    auto precedes = [&](vid_t a, vid_t b) {
        const vid_t da = g.degree(a), db = g.degree(b);
        return da != db ? da < db : a < b;
    };
    std::vector<std::vector<vid_t>> fwd(n);
    for (vid_t v = 0; v < n; ++v) {
        for (vid_t w : g.neighbors(v))
            if (precedes(v, w))
                fwd[v].push_back(w);
        std::sort(fwd[v].begin(), fwd[v].end());
    }
    std::uint64_t count = 0;
    for (vid_t v = 0; v < n; ++v) {
        for (vid_t w : fwd[v]) {
            // |fwd[v] ∩ fwd[w]| by sorted merge.
            auto it1 = fwd[v].begin();
            auto it2 = fwd[w].begin();
            while (it1 != fwd[v].end() && it2 != fwd[w].end()) {
                if (*it1 < *it2) {
                    ++it1;
                } else if (*it2 < *it1) {
                    ++it2;
                } else {
                    ++count;
                    ++it1;
                    ++it2;
                }
            }
        }
    }
    return count;
}

double
hub_mass_fraction(const Csr& g, double degree_threshold)
{
    const vid_t n = g.num_vertices();
    const eid_t arcs = g.num_arcs();
    if (n == 0 || arcs == 0)
        return 0.0;
    const double cut = degree_threshold > 0.0
        ? degree_threshold
        : static_cast<double>(arcs) / static_cast<double>(n);
    std::uint64_t hub_arcs = 0;
    for (vid_t v = 0; v < n; ++v) {
        const vid_t d = g.degree(v);
        if (static_cast<double>(d) > cut)
            hub_arcs += d;
    }
    return static_cast<double>(hub_arcs) / static_cast<double>(arcs);
}

vid_t
estimate_effective_diameter(const Csr& g, unsigned sweeps)
{
    const vid_t n = g.num_vertices();
    if (n == 0)
        return 0;
    // Seed inside the largest connected component (lowest component id on
    // size ties); the global max-degree vertex may sit in a small side
    // component, which caps every sweep at that component's diameter.
    vid_t num_comp = 0;
    const auto comp = connected_components(g, &num_comp);
    const auto sizes = component_sizes(comp, num_comp);
    vid_t big = 0;
    for (vid_t c = 1; c < num_comp; ++c)
        if (sizes[c] > sizes[big])
            big = c;
    vid_t src = kNoVertex;
    for (vid_t v = 0; v < n; ++v) {
        if (comp[v] != big)
            continue;
        if (src == kNoVertex || g.degree(v) > g.degree(src))
            src = v;
    }
    vid_t best = 0;
    for (unsigned s = 0; s < sweeps; ++s) {
        const auto r = parallel_bfs(g, src);
        if (r.max_distance <= best && s > 0)
            break; // the sweep stopped improving
        best = std::max(best, r.max_distance);
        // Next sweep starts from the farthest reached vertex (lowest id
        // on ties, so the walk is deterministic).
        vid_t far = src;
        for (vid_t v = 0; v < n; ++v) {
            if (r.distance[v] == BfsResult::kUnreached)
                continue;
            if (far == src || r.distance[v] > r.distance[far])
                far = v;
        }
        if (far == src)
            break;
        src = far;
    }
    return best;
}

GraphStats
compute_stats(const Csr& g, bool with_triangles)
{
    GraphStats s;
    s.num_vertices = g.num_vertices();
    s.num_edges = g.num_edges();

    const vid_t n = g.num_vertices();
    double sum = 0.0, sum2 = 0.0;
    for (vid_t v = 0; v < n; ++v) {
        const double d = g.degree(v);
        s.max_degree = std::max(s.max_degree, g.degree(v));
        sum += d;
        sum2 += d * d;
    }
    if (n > 0) {
        s.mean_degree = sum / n;
        const double var = sum2 / n - s.mean_degree * s.mean_degree;
        s.degree_stddev = std::sqrt(std::max(var, 0.0));
    }

    connected_components(g, &s.num_components);

    if (with_triangles && n > 0) {
        s.triangles = count_triangles(g);
        // Average local clustering: for each vertex, triangles through it
        // over deg*(deg-1)/2.  Recomputed per vertex with a marker array.
        std::vector<std::uint8_t> mark(n, 0);
        double acc = 0.0;
        for (vid_t v = 0; v < n; ++v) {
            const auto nbrs = g.neighbors(v);
            if (nbrs.size() < 2)
                continue;
            for (vid_t w : nbrs)
                mark[w] = 1;
            std::uint64_t links = 0;
            for (vid_t w : nbrs)
                for (vid_t x : g.neighbors(w))
                    if (x != v && mark[x])
                        ++links;
            for (vid_t w : nbrs)
                mark[w] = 0;
            const double d = static_cast<double>(nbrs.size());
            acc += static_cast<double>(links) / (d * (d - 1.0));
        }
        s.avg_clustering = acc / n;
    }
    return s;
}

std::string
to_string(const GraphStats& s)
{
    std::ostringstream os;
    os << "n=" << s.num_vertices << " m=" << s.num_edges
       << " maxdeg=" << s.max_degree << " meandeg=" << s.mean_degree
       << " sd=" << s.degree_stddev << " tri=" << s.triangles
       << " cc=" << s.avg_clustering << " comps=" << s.num_components;
    return os.str();
}

} // namespace graphorder
