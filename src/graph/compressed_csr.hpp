/**
 * @file
 * Compressed CSR: delta-gap / reference-encoded neighbor lists.
 *
 * The paper's gap measures (la/gap_measures.hpp) score an ordering by
 * |Pi(i) - Pi(j)| over the edges; the same quantity is what a
 * delta-encoded adjacency pays in bytes, so every ordering scheme in the
 * registry has a second, directly measurable payoff: bits per edge of
 * the at-rest graph.  This backend stores each vertex's sorted neighbor
 * list as LEB128 varint gaps, optionally reference-encoded against a
 * recent preceding vertex's list (copy-mask + residuals, the
 * community-aware WebGraph idiom), picking per vertex whichever is
 * smaller.  Kernels traverse it through GraphView (graph/graph_view.hpp)
 * with byte-identical results to the flat Csr.
 *
 * Format (per vertex v with sorted neighbors n_0 < n_1 < ... < n_{d-1};
 * see DESIGN.md §14 for the full spec):
 *  - d == 0: zero bytes.
 *  - header varint R (counted as reference bytes):
 *     - R == 0 (gap mode): d varints follow — zigzag(n_0 - v), then
 *       n_i - n_{i-1} - 1 for i >= 1 (gap bytes).
 *     - R > 0 (reference mode): r = v - R must precede v in the same
 *       encode block.  ceil(deg(r)/8) copy-mask bytes follow (bit i,
 *       LSB first, means r's i-th neighbor is also a neighbor of v;
 *       reference bytes), then the residual list N(v) \ N(r) coded like
 *       gap mode (residual bytes).
 *
 * Determinism contract: encoding decisions are made sequentially inside
 * fixed vertex blocks whose boundaries depend only on n (util/parallel
 * block-indexed decomposition), references never cross a block boundary,
 * and reference chains are capped — so the encoded bytes are identical
 * for any thread count, and decode cost per vertex is bounded by
 * max_ref_chain + 1 list decodes.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace graphorder {

class AccessTracer;

/**
 * LEB128 varint + zigzag primitives of the compressed format, exposed
 * for the boundary-value round-trip tests (tests/compress_test.cpp).
 */
namespace varint {

/** Longest possible encoding of a uint64 (ceil(64/7) groups). */
inline constexpr unsigned kMaxBytes = 10;

/** Encode @p x little-endian base-128; returns bytes written (1..10). */
unsigned encode(std::uint64_t x, std::uint8_t* out);

/** Decode one varint at @p p; returns bytes consumed. */
unsigned decode(const std::uint8_t* p, std::uint64_t* x);

/** Encoded length of @p x without materializing the bytes. */
unsigned length(std::uint64_t x);

/** Map a signed delta onto unsigned so small |s| stays small. */
inline std::uint64_t
zigzag(std::int64_t s)
{
    return (static_cast<std::uint64_t>(s) << 1)
        ^ static_cast<std::uint64_t>(s >> 63);
}

/** Inverse of zigzag(). */
inline std::int64_t
unzigzag(std::uint64_t u)
{
    return static_cast<std::int64_t>(u >> 1)
        ^ -static_cast<std::int64_t>(u & 1);
}

} // namespace varint

/** Byte accounting of one encoded graph, split by format component. */
struct CompressedSizeBreakdown
{
    /** Varint bytes of gap-coded neighbors in gap-mode lists. */
    std::uint64_t gap_bytes = 0;
    /** Header varints (every non-empty list) + copy-mask bytes. */
    std::uint64_t reference_bytes = 0;
    /** Varint bytes of residual neighbors in reference-mode lists. */
    std::uint64_t residual_bytes = 0;
    /** Vertices that chose reference mode. */
    vid_t ref_vertices = 0;

    std::uint64_t total_bytes() const
    {
        return gap_bytes + reference_bytes + residual_bytes;
    }
};

/**
 * Immutable compressed adjacency of an unweighted undirected graph.
 * Construction sorts nothing: it requires the Csr contract every
 * builder path in this repo already guarantees (sorted, deduplicated,
 * self-loop-free neighbor lists) and throws InvalidInput otherwise.
 * Weighted graphs are rejected — the format carries no weights.
 */
class CompressedCsr
{
  public:
    struct EncodeOptions
    {
        /** Candidate references: the window [v-ref_window, v) clipped
         *  to v's encode block.  0 disables reference encoding. */
        unsigned ref_window = 8;
        /** Longest allowed chain of reference-mode decodes; bounds the
         *  per-vertex decode cost at max_ref_chain + 1 list decodes. */
        unsigned max_ref_chain = 4;
    };

    CompressedCsr() = default;

    /**
     * Encode @p g.  Parallel over fixed vertex blocks, sequential and
     * greedy inside each block; bit-identical bytes at any thread
     * count.  O(|V| + |E| * ref_window) work.
     * @throws GraphorderError(InvalidInput) for weighted graphs or
     *         unsorted/duplicate neighbor lists.
     */
    static CompressedCsr encode(const Csr& g, EncodeOptions opt);
    static CompressedCsr encode(const Csr& g)
    {
        // Overload instead of a default argument: nested-class default
        // member initializers are not usable as default args inside the
        // enclosing class definition.
        return encode(g, EncodeOptions());
    }

    vid_t num_vertices() const
    {
        return degrees_.empty()
            ? 0 : static_cast<vid_t>(degrees_.size());
    }
    eid_t num_edges() const { return arcs_ / 2; }
    eid_t num_arcs() const { return arcs_; }
    vid_t degree(vid_t v) const { return degrees_[v]; }

    /** Encoded adjacency bytes (the at-rest payload). */
    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

    /** Byte slice [offsets[v], offsets[v+1]) holding v's list. */
    std::span<const std::uint8_t> encoded_list(vid_t v) const
    {
        return {bytes_.data() + byte_offsets_[v],
                bytes_.data() + byte_offsets_[v + 1]};
    }

    const CompressedSizeBreakdown& breakdown() const { return breakdown_; }

    /** Encoded payload bits per adjacency arc (2|E| arcs). */
    double bits_per_edge() const
    {
        return arcs_ == 0
            ? 0.0
            : 8.0 * static_cast<double>(breakdown_.total_bytes())
                / static_cast<double>(arcs_);
    }

    /** Reusable per-thread decode buffers; one per concurrent caller. */
    struct DecodeScratch
    {
        std::vector<vid_t> out;
        /** Per-recursion-depth buffers for referenced lists/residuals. */
        std::vector<std::vector<vid_t>> ref;
        std::vector<std::vector<vid_t>> res;
    };

    /**
     * Decode v's neighbor list (ascending) into @p scratch and return a
     * span over it — valid until the next call with the same scratch.
     * With @p tracer set, every encoded byte actually read (v's slice,
     * referenced slices down the chain, copy masks) is traced as a load
     * at its real address, varint-granular — the compressed-path access
     * stream of the memsim benches.  Thread-safe for distinct scratch
     * objects.
     */
    std::span<const vid_t> neighbors(vid_t v, DecodeScratch& scratch,
                                     AccessTracer* tracer = nullptr) const;

    /**
     * Round-trip to a flat Csr (parallel per vertex).  Byte-identical
     * CSR arrays — equal fingerprint (csr.hpp) — to the encode() input.
     */
    Csr decode() const;

  private:
    void decode_into(vid_t v, unsigned depth, std::vector<vid_t>& out,
                     DecodeScratch& scratch, AccessTracer* tracer) const;

    std::vector<std::uint8_t> bytes_;
    std::vector<eid_t> byte_offsets_; ///< n+1 offsets into bytes_
    std::vector<vid_t> degrees_;      ///< O(1) degree / decode count
    eid_t arcs_ = 0;
    unsigned max_ref_chain_ = 4;      ///< sizes the scratch pools
    CompressedSizeBreakdown breakdown_;
};

} // namespace graphorder
