/**
 * @file
 * Fundamental integer types for graph entities.
 *
 * Vertices are 32-bit (the paper's largest instance, Orkut, has 3.07M
 * vertices; 32 bits leave ample headroom), edge offsets are 64-bit so CSR
 * index arrays never overflow even for multi-billion-edge graphs.
 */
#pragma once

#include <cstdint>

namespace graphorder {

/** Vertex identifier, in [0, n). */
using vid_t = std::uint32_t;

/** Edge offset / edge count. */
using eid_t = std::uint64_t;

/** Edge weight. */
using weight_t = double;

/** Sentinel for "no vertex". */
inline constexpr vid_t kNoVertex = static_cast<vid_t>(-1);

} // namespace graphorder
