/**
 * @file
 * Vertex permutations (orderings) and their application to graphs.
 *
 * Following the paper's notation, an ordering Pi maps each vertex id to its
 * *rank* (new id) in [0, n).  The natural order is the identity.  Applying
 * Pi to a graph relabels every vertex v as Pi(v) and rebuilds the CSR so
 * that subsequent computations see the reordered memory layout.
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace graphorder {

class Rng;

/** A bijection V -> [0, n): rank(v) is the new id of old vertex v. */
class Permutation
{
  public:
    Permutation() = default;

    /** Identity permutation over @p n vertices. */
    static Permutation identity(vid_t n);

    /** From an explicit rank vector (old id -> new id). */
    static Permutation from_ranks(std::vector<vid_t> ranks);

    /**
     * From an order vector: order[k] is the old id placed at rank k.
     * This is the inverse representation of ranks.
     */
    static Permutation from_order(const std::vector<vid_t>& order);

    vid_t size() const { return static_cast<vid_t>(ranks_.size()); }

    /** New id (rank) of old vertex @p v. */
    vid_t rank(vid_t v) const { return ranks_[v]; }

    /** Whole rank vector. */
    const std::vector<vid_t>& ranks() const { return ranks_; }

    /** order()[k] = old id at rank k (computed on demand). */
    std::vector<vid_t> order() const;

    /** Inverse permutation (rank -> old id becomes old id -> rank). */
    Permutation inverse() const;

    /** Composition: result.rank(v) == outer.rank(this->rank(v)). */
    Permutation then(const Permutation& outer) const;

    /** True iff ranks form a bijection onto [0, n). */
    bool is_valid() const;

  private:
    std::vector<vid_t> ranks_;
};

/**
 * Verify that @p pi is a bijection of exactly [0, @p n): size matches
 * and every rank in [0, n) appears once.  Returns Ok or an
 * InvariantViolation Status naming the first offending vertex — the
 * stage-boundary check run_guarded (order/runner.hpp) applies to every
 * scheme result and `reorder --check` applies from the CLI.
 */
Status validate_permutation(const Permutation& pi, vid_t n);

/**
 * Rebuild @p g with vertex v relabeled to pi.rank(v); weights preserved.
 *
 * Parallel over the new vertex ids (each fills and sorts its own span);
 * runs on default_threads() and is bit-identical for any thread count.
 */
Csr apply_permutation(const Csr& g, const Permutation& pi);

/** Uniformly random permutation (the paper's "random" scheme). */
Permutation random_permutation(vid_t n, Rng& rng);

} // namespace graphorder
