#include "graph/subgraph.hpp"

#include <stdexcept>

namespace graphorder {

namespace {

Subgraph
extract(const Csr& g, const std::vector<vid_t>& members,
        std::vector<vid_t>& to_sub)
{
    Subgraph sg;
    sg.to_parent = members;
    const vid_t ns = static_cast<vid_t>(members.size());
    for (vid_t sv = 0; sv < ns; ++sv) {
        if (to_sub[members[sv]] != kNoVertex)
            throw std::invalid_argument("induced_subgraph: duplicate id");
        to_sub[members[sv]] = sv;
    }

    const bool weighted = g.weighted();
    std::vector<eid_t> offsets(ns + 1, 0);
    std::vector<vid_t> adjacency;
    std::vector<weight_t> weights;
    for (vid_t sv = 0; sv < ns; ++sv) {
        const vid_t v = members[sv];
        const auto nbrs = g.neighbors(v);
        const auto ws = g.neighbor_weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const vid_t su = to_sub[nbrs[i]];
            if (su == kNoVertex)
                continue;
            adjacency.push_back(su);
            if (weighted)
                weights.push_back(ws[i]);
        }
        offsets[sv + 1] = adjacency.size();
    }
    // Reset the scratch map for the caller.
    for (vid_t v : members)
        to_sub[v] = kNoVertex;
    sg.graph =
        Csr(std::move(offsets), std::move(adjacency), std::move(weights));
    return sg;
}

} // namespace

Subgraph
induced_subgraph(const Csr& g, const std::vector<std::uint8_t>& keep)
{
    if (keep.size() != g.num_vertices())
        throw std::invalid_argument("induced_subgraph: mask size");
    std::vector<vid_t> members;
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        if (keep[v])
            members.push_back(v);
    std::vector<vid_t> to_sub(g.num_vertices(), kNoVertex);
    return extract(g, members, to_sub);
}

Subgraph
induced_subgraph(const Csr& g, const std::vector<vid_t>& members)
{
    std::vector<vid_t> to_sub(g.num_vertices(), kNoVertex);
    return extract(g, members, to_sub);
}

} // namespace graphorder
