#include "graph/coarsen.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace graphorder {

vid_t
densify_labels(std::vector<vid_t>& labels)
{
    std::unordered_map<vid_t, vid_t> remap;
    remap.reserve(labels.size());
    vid_t next = 0;
    for (auto& l : labels) {
        auto [it, inserted] = remap.emplace(l, next);
        if (inserted)
            ++next;
        l = it->second;
    }
    return next;
}

CoarseGraph
coarsen_by_groups(const Csr& g, const std::vector<vid_t>& group,
                  vid_t num_groups)
{
    const vid_t n = g.num_vertices();
    if (group.size() != n)
        throw std::invalid_argument("coarsen: group map size mismatch");

    CoarseGraph out;
    out.self_weight.assign(num_groups, 0);
    out.group_size.assign(num_groups, 0);
    for (vid_t v = 0; v < n; ++v) {
        if (group[v] >= num_groups)
            throw std::invalid_argument("coarsen: group id out of range");
        ++out.group_size[group[v]];
    }

    // Accumulate inter-group weights group by group using a scratch map
    // keyed by destination group; avoids a full hash of (src,dst) pairs.
    std::vector<std::vector<vid_t>> members(num_groups);
    for (vid_t v = 0; v < n; ++v)
        members[group[v]].push_back(v);

    std::vector<eid_t> offsets(num_groups + 1, 0);
    std::vector<vid_t> adjacency;
    std::vector<weight_t> weights;
    std::unordered_map<vid_t, weight_t> acc;

    for (vid_t gc = 0; gc < num_groups; ++gc) {
        acc.clear();
        for (vid_t v : members[gc]) {
            const auto nbrs = g.neighbors(v);
            const auto ws = g.neighbor_weights(v);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                const weight_t w = ws.empty() ? 1.0 : ws[i];
                const vid_t dg = group[nbrs[i]];
                if (dg == gc)
                    out.self_weight[gc] += w; // both arc directions counted
                else
                    acc[dg] += w;
            }
        }
        std::vector<std::pair<vid_t, weight_t>> sorted(acc.begin(),
                                                       acc.end());
        std::sort(sorted.begin(), sorted.end());
        for (const auto& [dg, w] : sorted) {
            adjacency.push_back(dg);
            weights.push_back(w);
        }
        offsets[gc + 1] = adjacency.size();
    }
    // Intra-group weight was accumulated once per arc; halve to undirected
    // convention (w(e) per undirected internal edge counted twice).
    for (auto& w : out.self_weight)
        w /= 2.0;

    out.graph =
        Csr(std::move(offsets), std::move(adjacency), std::move(weights));
    return out;
}

} // namespace graphorder
