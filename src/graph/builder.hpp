/**
 * @file
 * Edge-list accumulation and conversion to CSR.
 *
 * Generators and file loaders emit (u, v[, w]) tuples in arbitrary order;
 * the builder deduplicates, symmetrizes and drops self loops, matching the
 * preprocessing the paper applies (undirected simple graphs).
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace graphorder {

/** A single undirected edge with optional weight. */
struct Edge
{
    vid_t u = 0;
    vid_t v = 0;
    weight_t w = 1.0;
};

/** Mutable edge accumulator; finalize() produces an immutable Csr. */
class GraphBuilder
{
  public:
    /** @param num_vertices fixed vertex-count of the graph under build. */
    explicit GraphBuilder(vid_t num_vertices);

    vid_t num_vertices() const { return n_; }

    /** Number of raw (possibly duplicate) edges added so far. */
    std::size_t num_raw_edges() const { return edges_.size(); }

    /**
     * Add an undirected edge; self loops are silently dropped, duplicates
     * are removed at finalize() (keeping the first weight seen).
     */
    void add_edge(vid_t u, vid_t v, weight_t w = 1.0);

    /** True if (u,v) was already added (linear in edges added; test use). */
    bool has_edge_slow(vid_t u, vid_t v) const;

    /**
     * Build the CSR: symmetrize, sort neighbor lists, deduplicate
     * (keeping the earliest-added weight among duplicates).
     *
     * Parallel (per-block degree counting, prefix-sum scatter, per-vertex
     * sort); runs on default_threads() and produces bit-identical output
     * for any thread count.
     */
    Csr finalize(bool weighted = false) const;

  private:
    vid_t n_;
    std::vector<Edge> edges_;
};

/** Convenience: build an unweighted CSR straight from an edge vector. */
Csr build_csr(vid_t num_vertices, const std::vector<Edge>& edges,
              bool weighted = false);

/**
 * CSR of the reversed arcs (parallel count/scan/scatter, deterministic).
 * For the symmetric graphs this library stores, transpose_csr(g) == g
 * including neighbor order — a structural self-check used by the tests —
 * and the kernel doubles as the substrate for directed workloads.
 */
Csr transpose_csr(const Csr& g);

} // namespace graphorder
