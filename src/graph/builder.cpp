#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace graphorder {

GraphBuilder::GraphBuilder(vid_t num_vertices) : n_(num_vertices) {}

void
GraphBuilder::add_edge(vid_t u, vid_t v, weight_t w)
{
    if (u >= n_ || v >= n_)
        throw std::out_of_range("GraphBuilder::add_edge: vertex id >= n");
    if (u == v)
        return; // simple graphs only
    edges_.push_back({u, v, w});
}

bool
GraphBuilder::has_edge_slow(vid_t u, vid_t v) const
{
    for (const auto& e : edges_)
        if ((e.u == u && e.v == v) || (e.u == v && e.v == u))
            return true;
    return false;
}

Csr
GraphBuilder::finalize(bool weighted) const
{
    // Symmetrize into directed arcs, normalizing each undirected edge so
    // duplicates collapse after sorting.
    struct Arc
    {
        vid_t src, dst;
        weight_t w;
    };
    std::vector<Arc> arcs;
    arcs.reserve(edges_.size() * 2);
    for (const auto& e : edges_) {
        arcs.push_back({e.u, e.v, e.w});
        arcs.push_back({e.v, e.u, e.w});
    }
    std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
        return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    // Deduplicate keeping the first weight.
    std::vector<Arc> dedup;
    dedup.reserve(arcs.size());
    for (const auto& a : arcs) {
        if (!dedup.empty() && dedup.back().src == a.src
            && dedup.back().dst == a.dst) {
            continue;
        }
        dedup.push_back(a);
    }

    std::vector<eid_t> offsets(n_ + 1, 0);
    for (const auto& a : dedup)
        ++offsets[a.src + 1];
    for (vid_t v = 0; v < n_; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<vid_t> adjacency(dedup.size());
    std::vector<weight_t> weights;
    if (weighted)
        weights.resize(dedup.size());
    for (std::size_t i = 0; i < dedup.size(); ++i) {
        adjacency[i] = dedup[i].dst;
        if (weighted)
            weights[i] = dedup[i].w;
    }
    return Csr(std::move(offsets), std::move(adjacency), std::move(weights));
}

Csr
build_csr(vid_t num_vertices, const std::vector<Edge>& edges, bool weighted)
{
    GraphBuilder b(num_vertices);
    for (const auto& e : edges)
        b.add_edge(e.u, e.v, e.w);
    return b.finalize(weighted);
}

} // namespace graphorder
