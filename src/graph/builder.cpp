#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/faultpoint.hpp"
#include "util/parallel.hpp"

namespace graphorder {

namespace {

FaultPoint fp_csr_build{
    "graph.csr.build", StatusCode::InvariantViolation,
    "CSR finalize aborts as if a construction pass corrupted the arrays"};

// Builder blocks carry an O(blocks * n) table of per-block per-vertex
// counts (the scatter cursors), so the block count is capped low; eight
// blocks are enough to saturate the memory bandwidth this kernel is
// bound by.
constexpr std::size_t kBuilderBlockCap = 8;

/**
 * Stable-sort one adjacency span by destination and drop duplicate
 * destinations in place, keeping the first occurrence (== the earliest
 * added edge, since the span arrives in insertion order).
 * @return number of unique entries kept at the front of the span.
 */
eid_t
sort_dedup_span(vid_t* adj, weight_t* w, eid_t len)
{
    if (w == nullptr) {
        std::sort(adj, adj + len);
        return static_cast<eid_t>(std::unique(adj, adj + len) - adj);
    }
    // Weighted: sort (dst, weight) pairs together, stably, so the first
    // kept duplicate is the earliest-added edge.
    std::vector<std::pair<vid_t, weight_t>> tmp;
    tmp.reserve(len);
    for (eid_t i = 0; i < len; ++i)
        tmp.emplace_back(adj[i], w[i]);
    std::stable_sort(tmp.begin(), tmp.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    eid_t out = 0;
    for (eid_t i = 0; i < len; ++i) {
        if (out > 0 && adj[out - 1] == tmp[i].first)
            continue;
        adj[out] = tmp[i].first;
        w[out] = tmp[i].second;
        ++out;
    }
    return out;
}

} // namespace

GraphBuilder::GraphBuilder(vid_t num_vertices) : n_(num_vertices) {}

void
GraphBuilder::add_edge(vid_t u, vid_t v, weight_t w)
{
    if (u >= n_ || v >= n_)
        throw std::out_of_range("GraphBuilder::add_edge: vertex id >= n");
    if (u == v)
        return; // simple graphs only
    edges_.push_back({u, v, w});
}

bool
GraphBuilder::has_edge_slow(vid_t u, vid_t v) const
{
    for (const auto& e : edges_)
        if ((e.u == u && e.v == v) || (e.u == v && e.v == u))
            return true;
    return false;
}

Csr
GraphBuilder::finalize(bool weighted) const
{
    fp_csr_build.maybe_fire();
    // Parallel CSR construction in five deterministic passes.  Work is
    // split into blocks of the *edge array* whose boundaries depend only
    // on the input size, so the result is bit-identical for any thread
    // count (tests/parallel_test.cpp).
    const std::size_t m = edges_.size();
    const std::size_t n = n_;
    const int threads = default_threads();
    const std::size_t nb = num_blocks(m, std::size_t{1} << 14,
                                      kBuilderBlockCap);

    // Pass 1: per-block arc counting (each edge is an arc at both ends).
    // cnt[b * n + v] = arcs with source v contributed by block b.
    std::vector<eid_t> cnt(nb * n, 0);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(m, nb, b);
        eid_t* c = cnt.data() + b * n;
        for (std::size_t i = lo; i < hi; ++i) {
            ++c[edges_[i].u];
            ++c[edges_[i].v];
        }
    }

    // Pass 2: column-wise scan.  offsets[v] gets the start of v's slot
    // range; cnt[b * n + v] becomes block b's private cursor into it.
    // Cursor order (block-major = edge-insertion order) keeps every
    // adjacency span in insertion order after the scatter.
    std::vector<eid_t> offsets(n + 1, 0);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t v = 0; v < n; ++v) {
        eid_t total = 0;
        for (std::size_t b = 0; b < nb; ++b)
            total += cnt[b * n + v];
        offsets[v] = total; // arc count of v; scanned below
    }
    exclusive_prefix_sum(offsets); // offsets[v] = start of v's range
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t v = 0; v < n; ++v) {
        eid_t run = offsets[v];
        for (std::size_t b = 0; b < nb; ++b) {
            const eid_t c = cnt[b * n + v];
            cnt[b * n + v] = run;
            run += c;
        }
    }

    // Pass 3: scatter arcs into each vertex's slot range.  Blocks write
    // disjoint sub-ranges, so no atomics and no races.
    std::vector<vid_t> adjacency(2 * m);
    std::vector<weight_t> weights;
    if (weighted)
        weights.resize(2 * m);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(m, nb, b);
        eid_t* cur = cnt.data() + b * n;
        for (std::size_t i = lo; i < hi; ++i) {
            const Edge& e = edges_[i];
            const eid_t pu = cur[e.u]++;
            const eid_t pv = cur[e.v]++;
            adjacency[pu] = e.v;
            adjacency[pv] = e.u;
            if (weighted) {
                weights[pu] = e.w;
                weights[pv] = e.w;
            }
        }
    }
    cnt.clear();
    cnt.shrink_to_fit();

    // Pass 4: per-vertex sort + dedup (independent spans).  uniq[v]
    // holds the surviving count; offsets keep the *old* (padded) ranges.
    std::vector<eid_t> uniq(n + 1, 0);
    #pragma omp parallel for num_threads(threads) schedule(dynamic, 64)
    for (std::size_t v = 0; v < n; ++v) {
        const eid_t lo = offsets[v];
        const eid_t len = offsets[v + 1] - lo;
        uniq[v] = sort_dedup_span(adjacency.data() + lo,
                                  weighted ? weights.data() + lo : nullptr,
                                  len);
    }

    // Pass 5: compact the deduplicated spans into the final arrays.
    exclusive_prefix_sum(uniq);
    // After the scan uniq[v] = final start of v, uniq[n] = final arcs.
    const eid_t total = uniq[n];
    std::vector<vid_t> out_adj(total);
    std::vector<weight_t> out_w;
    if (weighted)
        out_w.resize(total);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t v = 0; v < n; ++v) {
        const eid_t src = offsets[v];
        const eid_t dst = uniq[v];
        const eid_t len = uniq[v + 1] - dst;
        std::copy_n(adjacency.data() + src, len, out_adj.data() + dst);
        if (weighted)
            std::copy_n(weights.data() + src, len, out_w.data() + dst);
    }
    return Csr(std::move(uniq), std::move(out_adj), std::move(out_w));
}

Csr
build_csr(vid_t num_vertices, const std::vector<Edge>& edges, bool weighted)
{
    GraphBuilder b(num_vertices);
    for (const auto& e : edges)
        b.add_edge(e.u, e.v, e.w);
    return b.finalize(weighted);
}

Csr
transpose_csr(const Csr& g)
{
    // Same block-indexed count/scan/scatter pipeline as finalize(), over
    // vertex blocks: block b contributes the arcs (v -> w) for its
    // sources v, counted and scattered by destination w.
    const std::size_t n = g.num_vertices();
    const eid_t m = g.num_arcs();
    const int threads = default_threads();
    const std::size_t nb = num_blocks(n, std::size_t{1} << 13,
                                      kBuilderBlockCap);
    const bool weighted = g.weighted();

    std::vector<eid_t> cnt(nb * n, 0);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        eid_t* c = cnt.data() + b * n;
        for (std::size_t v = lo; v < hi; ++v)
            for (vid_t w : g.neighbors(static_cast<vid_t>(v)))
                ++c[w];
    }

    std::vector<eid_t> offsets(n + 1, 0);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t w = 0; w < n; ++w) {
        eid_t total = 0;
        for (std::size_t b = 0; b < nb; ++b)
            total += cnt[b * n + w];
        offsets[w] = total; // in-degree of w; scanned below
    }
    exclusive_prefix_sum(offsets); // offsets[w] = start of w's range
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t w = 0; w < n; ++w) {
        eid_t run = offsets[w];
        for (std::size_t b = 0; b < nb; ++b) {
            const eid_t c = cnt[b * n + w];
            cnt[b * n + w] = run;
            run += c;
        }
    }

    std::vector<vid_t> adjacency(m);
    std::vector<weight_t> weights;
    if (weighted)
        weights.resize(m);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        eid_t* cur = cnt.data() + b * n;
        for (std::size_t v = lo; v < hi; ++v) {
            const auto nbrs = g.neighbors(static_cast<vid_t>(v));
            const auto ws = g.neighbor_weights(static_cast<vid_t>(v));
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                const eid_t p = cur[nbrs[i]]++;
                adjacency[p] = static_cast<vid_t>(v);
                if (weighted)
                    weights[p] = ws[i];
            }
        }
    }
    // Sources were visited in ascending order within and across blocks,
    // so every destination's list is already sorted ascending.
    return Csr(std::move(offsets), std::move(adjacency),
               std::move(weights));
}

} // namespace graphorder
