/**
 * @file
 * Immutable compressed-sparse-row (CSR) graph.
 *
 * This is the data structure whose memory layout the whole paper is about:
 * reordering vertices permutes both the index array and the adjacency
 * array, which changes the spatial locality of neighbor scans.  The graph
 * is undirected and stored symmetrically (each edge appears in both
 * endpoints' adjacency lists); |E| counts undirected edges, so the
 * adjacency array has 2|E| entries.
 */
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/status.hpp"

namespace graphorder {

/** Immutable undirected graph in CSR form, optionally edge-weighted. */
class Csr
{
  public:
    Csr() = default;

    /**
     * Construct from raw CSR arrays.
     *
     * @param offsets size n+1, offsets[0] == 0, non-decreasing.
     * @param adjacency size offsets[n]; neighbor lists need not be sorted.
     * @param weights empty (unweighted) or same size as adjacency.
     */
    Csr(std::vector<eid_t> offsets, std::vector<vid_t> adjacency,
        std::vector<weight_t> weights = {});

    /** Number of vertices. */
    vid_t num_vertices() const
    {
        return offsets_.empty()
            ? 0 : static_cast<vid_t>(offsets_.size() - 1);
    }

    /** Number of undirected edges (adjacency entries / 2). */
    eid_t num_edges() const { return adjacency_.size() / 2; }

    /** Number of directed adjacency entries (2|E|). */
    eid_t num_arcs() const { return adjacency_.size(); }

    /** Degree of vertex @p v. */
    vid_t degree(vid_t v) const
    {
        return static_cast<vid_t>(offsets_[v + 1] - offsets_[v]);
    }

    /** Neighbors of @p v as a read-only span. */
    std::span<const vid_t> neighbors(vid_t v) const
    {
        return {adjacency_.data() + offsets_[v],
                adjacency_.data() + offsets_[v + 1]};
    }

    /** Edge weights parallel to neighbors(v); empty if unweighted. */
    std::span<const weight_t> neighbor_weights(vid_t v) const
    {
        if (weights_.empty())
            return {};
        return {weights_.data() + offsets_[v],
                weights_.data() + offsets_[v + 1]};
    }

    bool weighted() const { return !weights_.empty(); }

    /** Sum of weights of all adjacency entries (2x total edge weight). */
    weight_t total_arc_weight() const;

    /** Weighted degree of @p v (= degree if unweighted). */
    weight_t weighted_degree(vid_t v) const;

    /** Raw arrays, for kernels that stream them directly. */
    const std::vector<eid_t>& offsets() const { return offsets_; }
    const std::vector<vid_t>& adjacency() const { return adjacency_; }
    const std::vector<weight_t>& weights() const { return weights_; }

    /** True if @p u and @p v are adjacent (linear scan of shorter list). */
    bool has_edge(vid_t u, vid_t v) const;

    /**
     * Verify structural invariants: monotone offsets, adjacency ids in
     * [0, n), weight array sized like the adjacency.  Returns Ok or an
     * InvariantViolation Status naming the first corrupt entry — the
     * stage-boundary check used by run_guarded (order/runner.hpp) and
     * `reorder --check`.
     */
    Status validate() const;

    /** Convenience: validate().is_ok(). */
    bool check_invariants() const { return validate().is_ok(); }

  private:
    std::vector<eid_t> offsets_;
    std::vector<vid_t> adjacency_;
    std::vector<weight_t> weights_;
};

/**
 * Structural fingerprint of @p g: FNV-1a over vertex count, offsets,
 * adjacency and (bit-cast) weights.  Two graphs hash equal iff their
 * CSR arrays are byte-identical — so it distinguishes orderings of the
 * same graph, which is exactly what a RunReport (obs/report.hpp) needs
 * to key "same input" across runs and machines.  Not cryptographic.
 */
std::uint64_t fingerprint(const Csr& g);

} // namespace graphorder
