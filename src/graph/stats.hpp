/**
 * @file
 * Whole-graph statistics reported in Table I of the paper: vertex/edge
 * counts, maximum degree, standard deviation of degrees, plus the
 * connectivity indicators the paper mentions (triangle count, average
 * clustering coefficient).
 */
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace graphorder {

/** Table I style statistics for a graph. */
struct GraphStats
{
    vid_t num_vertices = 0;
    eid_t num_edges = 0;
    vid_t max_degree = 0;       ///< Delta in Table I
    double mean_degree = 0.0;
    double degree_stddev = 0.0; ///< "Std Dev" column in Table I
    std::uint64_t triangles = 0;
    double avg_clustering = 0.0;
    vid_t num_components = 0;
};

/**
 * Compute statistics.
 * @param with_triangles triangle counting is O(sum deg^1.5-ish); disable
 *        for very large graphs when only degree stats are needed.
 */
GraphStats compute_stats(const Csr& g, bool with_triangles = true);

/** Count triangles (each counted once) by sorted-adjacency merge. */
std::uint64_t count_triangles(const Csr& g);

/**
 * Fraction of arc endpoints incident to hub vertices, i.e.
 * sum of hub degrees / num_arcs, where a hub has degree > @p
 * degree_threshold (0 = average degree).  1 edge touching a hub on both
 * sides counts twice, matching the arc-centric view of the cache study.
 * O(n); deterministic.  This is the skew probe of the ordering advisor
 * (order/advisor.hpp): heavy-tailed graphs concentrate most arcs on few
 * hubs, mesh-like graphs spread them evenly.
 */
double hub_mass_fraction(const Csr& g, double degree_threshold = 0.0);

/**
 * Cheap diameter estimate: repeated double-sweep BFS (at most @p sweeps
 * sweeps) starting from the lowest-id maximum-degree vertex of the
 * *largest connected component* (lowest component id on size ties),
 * returning the largest eccentricity seen.  A lower bound on the true
 * diameter of that component; in practice within a few hops for
 * road/mesh graphs and exact for trees.  Seeding inside the largest
 * component matters on disconnected graphs: a global max-degree hub in
 * a small side component would cap the estimate at that fragment's
 * diameter.  Each sweep is one parallel_bfs — O(m) work, deterministic
 * at any thread count.
 */
vid_t estimate_effective_diameter(const Csr& g, unsigned sweeps = 4);

/** Render one stats row: "n=... m=... maxdeg=... sd=...". */
std::string to_string(const GraphStats& s);

} // namespace graphorder
