/**
 * @file
 * Whole-graph statistics reported in Table I of the paper: vertex/edge
 * counts, maximum degree, standard deviation of degrees, plus the
 * connectivity indicators the paper mentions (triangle count, average
 * clustering coefficient).
 */
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace graphorder {

/** Table I style statistics for a graph. */
struct GraphStats
{
    vid_t num_vertices = 0;
    eid_t num_edges = 0;
    vid_t max_degree = 0;       ///< Delta in Table I
    double mean_degree = 0.0;
    double degree_stddev = 0.0; ///< "Std Dev" column in Table I
    std::uint64_t triangles = 0;
    double avg_clustering = 0.0;
    vid_t num_components = 0;
};

/**
 * Compute statistics.
 * @param with_triangles triangle counting is O(sum deg^1.5-ish); disable
 *        for very large graphs when only degree stats are needed.
 */
GraphStats compute_stats(const Csr& g, bool with_triangles = true);

/** Count triangles (each counted once) by sorted-adjacency merge. */
std::uint64_t count_triangles(const Csr& g);

/** Render one stats row: "n=... m=... maxdeg=... sd=...". */
std::string to_string(const GraphStats& s);

} // namespace graphorder
