/**
 * @file
 * Graph traversal primitives: BFS, connected components, and the
 * pseudo-peripheral vertex heuristic (George & Liu) used as the RCM and
 * nested-dissection start-vertex selector.
 */
#pragma once

#include <functional>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph_view.hpp"
#include "graph/types.hpp"

namespace graphorder {

/** Result of a BFS from a single source. */
struct BfsResult
{
    /** distance[v] = hops from source, or kUnreached. */
    std::vector<vid_t> distance;
    /** Vertices in visit order. */
    std::vector<vid_t> visit_order;
    /** Eccentricity of the source within its component. */
    vid_t max_distance = 0;

    static constexpr vid_t kUnreached = kNoVertex;
};

/** Breadth-first search from @p source (serial, FIFO visit order). */
BfsResult bfs(const Csr& g, vid_t source);

/**
 * Level-synchronous parallel frontier BFS from @p source.
 *
 * Distances and max_distance are identical to bfs(); visit_order is the
 * *canonical* level order — vertices sorted by ascending id within each
 * level — which is deterministic for any thread count but differs from
 * the serial FIFO order.  Runs on default_threads().
 */
BfsResult parallel_bfs(const Csr& g, vid_t source);

/** parallel_bfs against either storage backend (flat or compressed);
 *  results are identical across backends for any thread count. */
BfsResult parallel_bfs(const GraphView& g, vid_t source);

/**
 * Connected components via repeated BFS.
 * @return component id per vertex, ids in [0, num_components).
 */
std::vector<vid_t> connected_components(const Csr& g,
                                        vid_t* num_components = nullptr);

/** Sizes of each component given the labeling from connected_components. */
std::vector<vid_t> component_sizes(const std::vector<vid_t>& comp,
                                   vid_t num_components);

/**
 * Pseudo-peripheral vertex of the component containing @p start:
 * repeatedly BFS to the farthest minimum-degree vertex in the last level
 * until eccentricity stops growing.
 */
vid_t pseudo_peripheral_vertex(const Csr& g, vid_t start);

} // namespace graphorder
