#include "graph/csr.hpp"

#include <numeric>
#include <stdexcept>
#include <string>

namespace graphorder {

Csr::Csr(std::vector<eid_t> offsets, std::vector<vid_t> adjacency,
         std::vector<weight_t> weights)
    : offsets_(std::move(offsets)),
      adjacency_(std::move(adjacency)),
      weights_(std::move(weights))
{
    if (offsets_.empty())
        throw std::invalid_argument("Csr: offsets must have >= 1 entry");
    if (offsets_.front() != 0)
        throw std::invalid_argument("Csr: offsets[0] != 0");
    if (offsets_.back() != adjacency_.size())
        throw std::invalid_argument("Csr: offsets.back() != |adjacency|");
    if (!weights_.empty() && weights_.size() != adjacency_.size())
        throw std::invalid_argument("Csr: |weights| != |adjacency|");
}

weight_t
Csr::total_arc_weight() const
{
    if (weights_.empty())
        return static_cast<weight_t>(adjacency_.size());
    return std::accumulate(weights_.begin(), weights_.end(), weight_t{0});
}

weight_t
Csr::weighted_degree(vid_t v) const
{
    if (weights_.empty())
        return static_cast<weight_t>(degree(v));
    weight_t acc = 0;
    for (eid_t e = offsets_[v]; e < offsets_[v + 1]; ++e)
        acc += weights_[e];
    return acc;
}

bool
Csr::has_edge(vid_t u, vid_t v) const
{
    // Scan the shorter adjacency list.
    if (degree(u) > degree(v))
        std::swap(u, v);
    for (vid_t w : neighbors(u))
        if (w == v)
            return true;
    return false;
}

Status
Csr::validate() const
{
    const vid_t n = num_vertices();
    if (offsets_.empty())
        return Status(StatusCode::InvariantViolation,
                      "csr: empty offsets array");
    if (offsets_.front() != 0)
        return Status(StatusCode::InvariantViolation,
                      "csr: offsets[0] != 0");
    for (vid_t v = 0; v < n; ++v)
        if (offsets_[v + 1] < offsets_[v])
            return Status(StatusCode::InvariantViolation,
                          "csr: offsets decrease at vertex "
                              + std::to_string(v));
    if (offsets_.back() != adjacency_.size())
        return Status(StatusCode::InvariantViolation,
                      "csr: offsets.back() != |adjacency| ("
                          + std::to_string(offsets_.back()) + " vs "
                          + std::to_string(adjacency_.size()) + ")");
    for (std::size_t i = 0; i < adjacency_.size(); ++i)
        if (adjacency_[i] >= n)
            return Status(StatusCode::InvariantViolation,
                          "csr: adjacency[" + std::to_string(i)
                              + "] = " + std::to_string(adjacency_[i])
                              + " out of range [0, " + std::to_string(n)
                              + ")");
    if (!weights_.empty() && weights_.size() != adjacency_.size())
        return Status(StatusCode::InvariantViolation,
                      "csr: |weights| != |adjacency|");
    return Status::ok();
}

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnv1a(std::uint64_t h, const void* data, std::size_t bytes)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

std::uint64_t
fingerprint(const Csr& g)
{
    std::uint64_t h = kFnvOffset;
    const std::uint64_t n = g.num_vertices();
    h = fnv1a(h, &n, sizeof n);
    h = fnv1a(h, g.offsets().data(),
              g.offsets().size() * sizeof(eid_t));
    h = fnv1a(h, g.adjacency().data(),
              g.adjacency().size() * sizeof(vid_t));
    h = fnv1a(h, g.weights().data(),
              g.weights().size() * sizeof(weight_t));
    return h;
}

} // namespace graphorder
