/**
 * @file
 * Backend-neutral traversal view over a flat Csr or a CompressedCsr.
 *
 * The application kernels (kernels, graph/traversal.hpp parallel_bfs)
 * are written against this view so one implementation serves both
 * storage backends with byte-identical outputs: flat neighbor spans are
 * returned in place, compressed lists are decoded on traverse into a
 * caller-owned scratch.  Both backends yield ascending neighbor ids
 * (the Csr builder contract), so floating-point accumulation order —
 * and hence every kernel result bit — is independent of the backend.
 *
 * Tracing contract: for the compressed backend, neighbors() replays the
 * *encoded byte* reads (varint-granular, including referenced lists and
 * copy masks) into the tracer — the real at-rest addresses.  For the
 * flat backend neighbors() traces nothing; kernels trace the adjacency
 * entries themselves per neighbor, preserving the exact access streams
 * the memsim baselines were recorded with.
 */
#pragma once

#include <span>

#include "graph/compressed_csr.hpp"
#include "graph/csr.hpp"

namespace graphorder {

/** Non-owning view; the referenced backend must outlive it. */
class GraphView
{
  public:
    /*implicit*/ GraphView(const Csr& g) : flat_(&g) {}
    /*implicit*/ GraphView(const CompressedCsr& c) : comp_(&c) {}

    bool compressed() const { return comp_ != nullptr; }

    vid_t num_vertices() const
    {
        return comp_ ? comp_->num_vertices() : flat_->num_vertices();
    }
    eid_t num_edges() const
    {
        return comp_ ? comp_->num_edges() : flat_->num_edges();
    }
    eid_t num_arcs() const
    {
        return comp_ ? comp_->num_arcs() : flat_->num_arcs();
    }
    vid_t degree(vid_t v) const
    {
        return comp_ ? comp_->degree(v) : flat_->degree(v);
    }

    /** Per-caller decode buffers; unused by the flat backend. */
    using Scratch = CompressedCsr::DecodeScratch;

    /**
     * Neighbors of @p v, ascending.  Flat: a span into the adjacency
     * array, valid for the graph's lifetime.  Compressed: decoded into
     * @p scratch (valid until the next call with the same scratch),
     * tracing the encoded bytes when @p tracer is set.
     */
    std::span<const vid_t> neighbors(vid_t v, Scratch& scratch,
                                     AccessTracer* tracer = nullptr) const
    {
        return comp_ ? comp_->neighbors(v, scratch, tracer)
                     : flat_->neighbors(v);
    }

    /** Edge weights parallel to neighbors(v); always empty for the
     *  compressed backend (it stores unweighted graphs only). */
    std::span<const weight_t> neighbor_weights(vid_t v) const
    {
        return comp_ ? std::span<const weight_t>{}
                     : flat_->neighbor_weights(v);
    }

    const Csr* flat() const { return flat_; }
    const CompressedCsr* comp() const { return comp_; }

  private:
    const Csr* flat_ = nullptr;
    const CompressedCsr* comp_ = nullptr;
};

} // namespace graphorder
