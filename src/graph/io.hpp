/**
 * @file
 * Text I/O for graphs: whitespace-separated edge lists (the common format
 * of KONECT / SNAP dumps) and the METIS graph format used by the DIMACS
 * challenge instances.  Lets users run the harness on real downloads of
 * the paper's datasets when available.
 *
 * Error handling: every parse failure throws GraphorderError
 * (util/status.hpp) with an InvalidInput or Truncated code and a
 * "source:line:" prefix (1-based line numbers), so the CLI can map it to
 * the documented exit codes.  Fault-injection sites `io.open`,
 * `io.edge_list.truncate` and `io.metis.truncate` (util/faultpoint.hpp)
 * cover the loader paths.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace graphorder {

/**
 * Parse an edge list: one "u v [w]" pair per line, '#' or '%' comments.
 * Vertex ids may be arbitrary non-negative integers; they are compacted
 * to [0, n).  Graph is treated as undirected and simple.  Malformed
 * lines and self loops are skipped with a warning and counted in the
 * obs registry (`io/edge_list/malformed_lines`,
 * `io/edge_list/self_loops`).
 *
 * @param source name used in error messages ("path:line: ...").
 * @throws GraphorderError(InvalidInput) when a weighted parse hits a
 *         line without a weight, or when the number of distinct vertex
 *         ids overflows the 32-bit vid_t id space.
 */
Csr read_edge_list(std::istream& in, bool weighted = false,
                   const std::string& source = "<edge-list>");

/**
 * Load an edge list from a file path.
 * @throws GraphorderError(InvalidInput) when the file cannot be opened,
 *         plus everything read_edge_list throws.
 */
Csr load_edge_list(const std::string& path, bool weighted = false);

/** Write "u v" per undirected edge (u < v). */
void write_edge_list(std::ostream& out, const Csr& g);

/**
 * Parse METIS .graph format: header "n m [fmt]", then line i holds the
 * 1-based neighbors of vertex i.  Only unweighted (fmt 0) is supported.
 * Accepts both the specified symmetric listing (each edge on both
 * endpoints' lines) and the common single-listing variant (each edge on
 * either endpoint only); duplicates are merged.  Warns — and bumps the
 * `io/metis/header_mismatch` obs counter — when the parsed edge count
 * disagrees with the header's m.
 *
 * @param source name used in error messages ("path:line: ...").
 * @throws GraphorderError(Truncated) when the stream ends before the
 *         header or before every vertex line was read;
 *         GraphorderError(InvalidInput) on a malformed header,
 *         unsupported fmt, overflowing vertex count, or out-of-range
 *         neighbor id.
 */
Csr read_metis(std::istream& in, const std::string& source = "<metis>");

/**
 * Load a METIS .graph file from a path.
 * @throws GraphorderError(InvalidInput) when the file cannot be opened,
 *         plus everything read_metis throws.
 */
Csr load_metis(const std::string& path);

/** Write METIS .graph format. */
void write_metis(std::ostream& out, const Csr& g);

} // namespace graphorder
