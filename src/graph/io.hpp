/**
 * @file
 * Text I/O for graphs: whitespace-separated edge lists (the common format
 * of KONECT / SNAP dumps) and the METIS graph format used by the DIMACS
 * challenge instances.  Lets users run the harness on real downloads of
 * the paper's datasets when available.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace graphorder {

/**
 * Parse an edge list: one "u v [w]" pair per line, '#' or '%' comments.
 * Vertex ids may be arbitrary non-negative integers; they are compacted
 * to [0, n).  Graph is treated as undirected and simple.  Malformed
 * lines and self loops are skipped with a warning and counted in the
 * obs registry (`io/edge_list/malformed_lines`,
 * `io/edge_list/self_loops`).  With @p weighted set, a line without a
 * weight is an error (@throws std::runtime_error) rather than a silent
 * w = 1.
 */
Csr read_edge_list(std::istream& in, bool weighted = false);

/** Load an edge list from a file path. @throws std::runtime_error. */
Csr load_edge_list(const std::string& path, bool weighted = false);

/** Write "u v" per undirected edge (u < v). */
void write_edge_list(std::ostream& out, const Csr& g);

/**
 * Parse METIS .graph format: header "n m [fmt]", then line i holds the
 * 1-based neighbors of vertex i.  Only unweighted (fmt 0) is supported.
 * Accepts both the specified symmetric listing (each edge on both
 * endpoints' lines) and the common single-listing variant (each edge on
 * either endpoint only); duplicates are merged.  Warns — and bumps the
 * `io/metis/header_mismatch` obs counter — when the parsed edge count
 * disagrees with the header's m.
 */
Csr read_metis(std::istream& in);

/** Write METIS .graph format. */
void write_metis(std::ostream& out, const Csr& g);

} // namespace graphorder
