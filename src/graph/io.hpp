/**
 * @file
 * Text I/O for graphs: whitespace-separated edge lists (the common format
 * of KONECT / SNAP dumps) and the METIS graph format used by the DIMACS
 * challenge instances.  Lets users run the harness on real downloads of
 * the paper's datasets when available.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace graphorder {

/**
 * Parse an edge list: one "u v [w]" pair per line, '#' or '%' comments.
 * Vertex ids may be arbitrary non-negative integers; they are compacted
 * to [0, n).  Graph is treated as undirected and simple.
 */
Csr read_edge_list(std::istream& in, bool weighted = false);

/** Load an edge list from a file path. @throws std::runtime_error. */
Csr load_edge_list(const std::string& path, bool weighted = false);

/** Write "u v" per undirected edge (u < v). */
void write_edge_list(std::ostream& out, const Csr& g);

/**
 * Parse METIS .graph format: header "n m [fmt]", then line i holds the
 * 1-based neighbors of vertex i.  Only unweighted (fmt 0) is supported.
 */
Csr read_metis(std::istream& in);

/** Write METIS .graph format. */
void write_metis(std::ostream& out, const Csr& g);

} // namespace graphorder
