#include "graph/traversal.hpp"

#include <algorithm>
#include <atomic>
#include <deque>

#include "util/parallel.hpp"

namespace graphorder {

BfsResult
bfs(const Csr& g, vid_t source)
{
    const vid_t n = g.num_vertices();
    BfsResult r;
    r.distance.assign(n, BfsResult::kUnreached);
    r.visit_order.reserve(64);

    std::deque<vid_t> queue;
    queue.push_back(source);
    r.distance[source] = 0;
    while (!queue.empty()) {
        const vid_t v = queue.front();
        queue.pop_front();
        r.visit_order.push_back(v);
        r.max_distance = std::max(r.max_distance, r.distance[v]);
        for (vid_t w : g.neighbors(v)) {
            if (r.distance[w] == BfsResult::kUnreached) {
                r.distance[w] = r.distance[v] + 1;
                queue.push_back(w);
            }
        }
    }
    return r;
}

BfsResult
parallel_bfs(const GraphView& g, vid_t source)
{
    const vid_t n = g.num_vertices();
    const int threads = default_threads();
    BfsResult r;
    r.distance.assign(n, BfsResult::kUnreached);
    r.visit_order.reserve(64);

    std::vector<vid_t> frontier{source};
    r.distance[source] = 0;
    r.visit_order.push_back(source);
    vid_t level = 0;
    while (!frontier.empty()) {
        ++level;
        const std::size_t fs = frontier.size();
        const std::size_t nb = num_blocks(fs, 1024);
        // Discovery is claimed with a CAS on the distance slot, so each
        // vertex lands in exactly one block's buffer; which block wins a
        // tie is scheduling-dependent, but the level (distance value) is
        // not, and the canonical sort below restores a deterministic
        // visit order.
        std::vector<std::vector<vid_t>> claimed(nb);
        #pragma omp parallel for num_threads(threads) \
            schedule(dynamic, 1)
        for (std::size_t b = 0; b < nb; ++b) {
            auto& out = claimed[b];
            GraphView::Scratch scratch; // per-block decode buffers
            const auto [lo, hi] = block_range(fs, nb, b);
            for (std::size_t i = lo; i < hi; ++i) {
                for (vid_t w : g.neighbors(frontier[i], scratch)) {
                    std::atomic_ref<vid_t> slot(r.distance[w]);
                    vid_t expect = BfsResult::kUnreached;
                    if (slot.load(std::memory_order_relaxed)
                            == BfsResult::kUnreached
                        && slot.compare_exchange_strong(
                               expect, level, std::memory_order_relaxed))
                        out.push_back(w);
                }
            }
        }
        std::size_t total = 0;
        for (const auto& c : claimed)
            total += c.size();
        std::vector<vid_t> next;
        next.reserve(total);
        for (auto& c : claimed)
            next.insert(next.end(), c.begin(), c.end());
        // Canonical intra-level order: ascending vertex id.
        std::sort(next.begin(), next.end());
        if (!next.empty()) {
            r.max_distance = level;
            r.visit_order.insert(r.visit_order.end(), next.begin(),
                                 next.end());
        }
        frontier = std::move(next);
    }
    return r;
}

BfsResult
parallel_bfs(const Csr& g, vid_t source)
{
    return parallel_bfs(GraphView(g), source);
}

std::vector<vid_t>
connected_components(const Csr& g, vid_t* num_components)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> comp(n, kNoVertex);
    vid_t next = 0;
    std::vector<vid_t> stack;
    for (vid_t s = 0; s < n; ++s) {
        if (comp[s] != kNoVertex)
            continue;
        comp[s] = next;
        stack.push_back(s);
        while (!stack.empty()) {
            const vid_t v = stack.back();
            stack.pop_back();
            for (vid_t w : g.neighbors(v)) {
                if (comp[w] == kNoVertex) {
                    comp[w] = next;
                    stack.push_back(w);
                }
            }
        }
        ++next;
    }
    if (num_components)
        *num_components = next;
    return comp;
}

std::vector<vid_t>
component_sizes(const std::vector<vid_t>& comp, vid_t num_components)
{
    std::vector<vid_t> sizes(num_components, 0);
    for (vid_t c : comp)
        ++sizes[c];
    return sizes;
}

vid_t
pseudo_peripheral_vertex(const Csr& g, vid_t start)
{
    vid_t current = start;
    auto r = bfs(g, current);
    vid_t ecc = r.max_distance;
    for (int iter = 0; iter < 16; ++iter) { // converges in a few rounds
        // Among the last BFS level, take a minimum-degree vertex.
        vid_t best = kNoVertex;
        for (vid_t v : r.visit_order) {
            if (r.distance[v] != ecc)
                continue;
            if (best == kNoVertex || g.degree(v) < g.degree(best))
                best = v;
        }
        if (best == kNoVertex)
            break;
        auto r2 = bfs(g, best);
        if (r2.max_distance <= ecc) {
            current = best;
            break;
        }
        current = best;
        ecc = r2.max_distance;
        r = std::move(r2);
    }
    return current;
}

} // namespace graphorder
