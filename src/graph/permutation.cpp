#include "graph/permutation.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphorder {

Permutation
Permutation::identity(vid_t n)
{
    Permutation p;
    p.ranks_.resize(n);
    std::iota(p.ranks_.begin(), p.ranks_.end(), vid_t{0});
    return p;
}

Permutation
Permutation::from_ranks(std::vector<vid_t> ranks)
{
    Permutation p;
    p.ranks_ = std::move(ranks);
    return p;
}

Permutation
Permutation::from_order(const std::vector<vid_t>& order)
{
    Permutation p;
    p.ranks_.resize(order.size());
    for (vid_t k = 0; k < order.size(); ++k)
        p.ranks_[order[k]] = k;
    return p;
}

std::vector<vid_t>
Permutation::order() const
{
    const vid_t n = size();
    std::vector<vid_t> ord(n);
    // Bijective scatter: every slot is written exactly once, so the
    // parallel loop is race-free and deterministic.
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (vid_t v = 0; v < n; ++v)
        ord[ranks_[v]] = v;
    return ord;
}

Permutation
Permutation::inverse() const
{
    return from_ranks(order());
}

Permutation
Permutation::then(const Permutation& outer) const
{
    if (outer.size() != size())
        throw std::invalid_argument("Permutation::then: size mismatch");
    const vid_t n = size();
    std::vector<vid_t> composed(n);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (vid_t v = 0; v < n; ++v)
        composed[v] = outer.rank(ranks_[v]);
    return from_ranks(std::move(composed));
}

bool
Permutation::is_valid() const
{
    return validate_permutation(*this, size()).is_ok();
}

Status
validate_permutation(const Permutation& pi, vid_t n)
{
    if (pi.size() != n)
        return Status(StatusCode::InvariantViolation,
                      "permutation covers " + std::to_string(pi.size())
                          + " vertices, graph has " + std::to_string(n));
    std::vector<std::uint8_t> seen(n, 0);
    const auto& ranks = pi.ranks();
    for (vid_t v = 0; v < n; ++v) {
        const vid_t r = ranks[v];
        if (r >= n)
            return Status(StatusCode::InvariantViolation,
                          "rank of vertex " + std::to_string(v) + " is "
                              + std::to_string(r) + ", out of [0, "
                              + std::to_string(n) + ")");
        if (seen[r])
            return Status(StatusCode::InvariantViolation,
                          "rank " + std::to_string(r)
                              + " assigned twice (second at vertex "
                              + std::to_string(v) + ")");
        seen[r] = 1;
    }
    return Status::ok();
}

Csr
apply_permutation(const Csr& g, const Permutation& pi)
{
    const vid_t n = g.num_vertices();
    if (pi.size() != n)
        throw std::invalid_argument("apply_permutation: size mismatch");

    const int threads = default_threads();
    const auto order = pi.order(); // new id -> old id
    std::vector<eid_t> offsets(n + 1, 0);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (vid_t nv = 0; nv < n; ++nv)
        offsets[nv] = g.degree(order[nv]);
    exclusive_prefix_sum(offsets); // offsets[n] becomes num_arcs

    const bool weighted = g.weighted();
    std::vector<vid_t> adjacency(g.num_arcs());
    std::vector<weight_t> weights;
    if (weighted)
        weights.resize(g.num_arcs());

    // Each new vertex fills and sorts its own disjoint span — no races,
    // and the output is bit-identical to a serial run.
    #pragma omp parallel for num_threads(threads) schedule(dynamic, 64)
    for (vid_t nv = 0; nv < n; ++nv) {
        const vid_t old = order[nv];
        eid_t out = offsets[nv];
        const auto nbrs = g.neighbors(old);
        const auto ws = g.neighbor_weights(old);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            adjacency[out] = pi.rank(nbrs[i]);
            if (weighted)
                weights[out] = ws[i];
            ++out;
        }
        // Sorted neighbor lists keep traversal order deterministic and
        // make gap statistics reproducible across schemes.
        if (weighted) {
            std::vector<std::pair<vid_t, weight_t>> tmp;
            tmp.reserve(offsets[nv + 1] - offsets[nv]);
            for (eid_t e = offsets[nv]; e < offsets[nv + 1]; ++e)
                tmp.emplace_back(adjacency[e], weights[e]);
            std::sort(tmp.begin(), tmp.end());
            eid_t e = offsets[nv];
            for (const auto& [a, w] : tmp) {
                adjacency[e] = a;
                weights[e] = w;
                ++e;
            }
        } else {
            std::sort(adjacency.begin() + static_cast<long>(offsets[nv]),
                      adjacency.begin() + static_cast<long>(offsets[nv + 1]));
        }
    }
    return Csr(std::move(offsets), std::move(adjacency), std::move(weights));
}

Permutation
random_permutation(vid_t n, Rng& rng)
{
    std::vector<vid_t> ranks(n);
    std::iota(ranks.begin(), ranks.end(), vid_t{0});
    shuffle(ranks.begin(), ranks.end(), rng);
    return Permutation::from_ranks(std::move(ranks));
}

} // namespace graphorder
