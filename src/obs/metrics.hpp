/**
 * @file
 * Global metrics registry: counters, gauges and fixed-bucket histograms.
 *
 * Where the tracer (trace.hpp) answers "where did the time go", the
 * registry answers "how much work happened": RRR sets sampled, cache
 * hits per level, Louvain vertex moves, modularity reached.  Metrics are
 * always on — updates are single atomic operations — and every figure
 * binary can dump the registry as JSON or CSV (`--metrics FILE`,
 * `GRAPHORDER_METRICS=FILE`).
 *
 * Naming convention: slash-separated paths grouped by subsystem, e.g.
 * `louvain/iterations`, `imm/rrr_sets`, `imm/selection_heap_pops`,
 * `memsim/louvain/hits/L1`, `order/rcm/time_s`.  The IMM selection
 * engine publishes its work under `imm/selection_*` (runs, heap pops,
 * lazy re-evaluations, per-run time histogram) and `imm/index_*`
 * (segments, entries).
 *
 * Hot-path note: `MetricsRegistry::counter(name)` takes a mutex and a map
 * lookup — never call it inside a loop.  The instrument objects are
 * never destroyed, so references stay valid for the process lifetime;
 * either hoist the reference out of the loop or, for counters bumped
 * from many call sites, declare a `CachedCounter`/`CachedGauge` handle
 * at namespace or static scope: it resolves the name once and every
 * later use is a single lock-free atomic load.
 * `MetricsRegistry::lookup_count()` counts map lookups so a microbench
 * (bench/micro_kernels.cpp BM_CounterHotPath) can assert the cached
 * fast path takes zero registry locks.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace graphorder::obs {

/** Monotonic counter (atomic). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value-wins gauge (atomic double). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram.  Bucket i counts observations x with
 * bounds[i-1] < x <= bounds[i]; one implicit overflow bucket catches the
 * rest.  Percentiles are estimated by linear interpolation inside the
 * bucket containing the target rank, so their error is bounded by the
 * bucket width — pick bounds to match the metric's dynamic range.
 */
class Histogram
{
  public:
    /** @p upper_bounds must be sorted ascending and non-empty. */
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double x);

    std::uint64_t count() const;
    double sum() const;
    /** Estimated value at quantile @p p in [0,1]; 0 when empty. */
    double percentile(double p) const;

    const std::vector<double>& bounds() const { return bounds_; }
    /** Count per bucket (bounds().size() + 1 entries, overflow last). */
    std::vector<std::uint64_t> bucket_counts() const;
    void reset();

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Default histogram bounds for durations in seconds: a 1-2-5 decade
 *  grid from 1 µs to 1000 s. */
std::vector<double> default_time_buckets();

/**
 * Point-in-time copy of every instrument, in sorted-name order (the
 * registry map is ordered).  This is the machine-readable face of the
 * registry: RunReport embeds it, benchdiff flattens it.
 */
struct MetricsSnapshot
{
    struct HistogramSummary
    {
        std::string name;
        std::uint64_t count = 0;
        double sum = 0, p50 = 0, p95 = 0, p99 = 0;
    };
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSummary> histograms;
};

/**
 * Process-wide registry.  Instruments are created on first use and live
 * forever; names are unique across kinds (re-requesting a name with a
 * different kind throws std::logic_error).
 */
class MetricsRegistry
{
  public:
    /** The singleton (never destroyed). */
    static MetricsRegistry& instance();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /** @p upper_bounds used only on first creation; empty = time buckets. */
    Histogram& histogram(const std::string& name,
                         std::vector<double> upper_bounds = {});

    /**
     * JSON object: {"counters":{...},"gauges":{...},"histograms":
     * {name:{count,sum,p50,p95,p99,buckets:[{le,count},...]}}}.
     * Keys are sorted, output is deterministic given fixed values.
     */
    void write_json(std::ostream& os) const;

    /** CSV: kind,name,value,count,sum,p50,p95,p99 (blank when n/a). */
    void write_csv(std::ostream& os) const;

    /** Copy of every instrument's current value (see MetricsSnapshot). */
    MetricsSnapshot snapshot() const;

    /**
     * Number of name-keyed map lookups (counter/gauge/histogram calls)
     * performed so far.  Each one takes the registry mutex; hot paths
     * must keep this flat (use CachedCounter / hoisted references).
     */
    std::uint64_t lookup_count() const;

    /** Zero every instrument (keeps registrations). Intended for tests. */
    void reset();

  private:
    MetricsRegistry();
    struct Impl;
    Impl* impl_;
};

/**
 * Lock-free handle to a named counter.  The name is resolved through
 * the registry on first use only; every later `add` is one relaxed
 * atomic load plus the counter's own fetch_add — safe for scheme and
 * kernel inner loops.  Declare at namespace scope (or function-static)
 * in the owning .cpp:
 *
 *   static obs::CachedCounter c_lines{"io/edge_list/malformed_lines"};
 *   ...
 *   c_lines.add();           // no mutex, no map lookup
 *
 * Safe because instruments are never destroyed.  The handle itself must
 * outlive its users (namespace scope does).
 */
class CachedCounter
{
  public:
    explicit constexpr CachedCounter(const char* name) : name_(name) {}

    Counter& get()
    {
        Counter* c = ptr_.load(std::memory_order_acquire);
        if (c == nullptr) {
            c = &MetricsRegistry::instance().counter(name_);
            ptr_.store(c, std::memory_order_release);
        }
        return *c;
    }
    void add(std::uint64_t n = 1) { get().add(n); }

  private:
    const char* name_;
    std::atomic<Counter*> ptr_{nullptr};
};

/** Lock-free handle to a named gauge; see CachedCounter. */
class CachedGauge
{
  public:
    explicit constexpr CachedGauge(const char* name) : name_(name) {}

    Gauge& get()
    {
        Gauge* g = ptr_.load(std::memory_order_acquire);
        if (g == nullptr) {
            g = &MetricsRegistry::instance().gauge(name_);
            ptr_.store(g, std::memory_order_release);
        }
        return *g;
    }
    void set(double v) { get().set(v); }

  private:
    const char* name_;
    std::atomic<Gauge*> ptr_{nullptr};
};

/**
 * Write the registry to @p path; `.csv` extension selects CSV, anything
 * else JSON.
 */
void write_metrics_file(const std::string& path);

/** Arrange for write_metrics_file(@p path) at process exit. */
void set_exit_metrics_file(const std::string& path);

} // namespace graphorder::obs
