/**
 * @file
 * Global metrics registry: counters, gauges and fixed-bucket histograms.
 *
 * Where the tracer (trace.hpp) answers "where did the time go", the
 * registry answers "how much work happened": RRR sets sampled, cache
 * hits per level, Louvain vertex moves, modularity reached.  Metrics are
 * always on — updates are single atomic operations — and every figure
 * binary can dump the registry as JSON or CSV (`--metrics FILE`,
 * `GRAPHORDER_METRICS=FILE`).
 *
 * Naming convention: slash-separated paths grouped by subsystem, e.g.
 * `louvain/iterations`, `imm/rrr_sets`, `imm/selection_heap_pops`,
 * `memsim/louvain/hits/L1`, `order/rcm/time_s`.  The IMM selection
 * engine publishes its work under `imm/selection_*` (runs, heap pops,
 * lazy re-evaluations, per-run time histogram) and `imm/index_*`
 * (segments, entries).
 *
 * Hot-path note: `MetricsRegistry::counter(name)` takes a mutex and a map
 * lookup — cache the returned reference outside loops.  The instrument
 * objects themselves are never destroyed, so cached references stay
 * valid for the process lifetime.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace graphorder::obs {

/** Monotonic counter (atomic). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value-wins gauge (atomic double). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram.  Bucket i counts observations x with
 * bounds[i-1] < x <= bounds[i]; one implicit overflow bucket catches the
 * rest.  Percentiles are estimated by linear interpolation inside the
 * bucket containing the target rank, so their error is bounded by the
 * bucket width — pick bounds to match the metric's dynamic range.
 */
class Histogram
{
  public:
    /** @p upper_bounds must be sorted ascending and non-empty. */
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double x);

    std::uint64_t count() const;
    double sum() const;
    /** Estimated value at quantile @p p in [0,1]; 0 when empty. */
    double percentile(double p) const;

    const std::vector<double>& bounds() const { return bounds_; }
    /** Count per bucket (bounds().size() + 1 entries, overflow last). */
    std::vector<std::uint64_t> bucket_counts() const;
    void reset();

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Default histogram bounds for durations in seconds: a 1-2-5 decade
 *  grid from 1 µs to 1000 s. */
std::vector<double> default_time_buckets();

/**
 * Process-wide registry.  Instruments are created on first use and live
 * forever; names are unique across kinds (re-requesting a name with a
 * different kind throws std::logic_error).
 */
class MetricsRegistry
{
  public:
    /** The singleton (never destroyed). */
    static MetricsRegistry& instance();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /** @p upper_bounds used only on first creation; empty = time buckets. */
    Histogram& histogram(const std::string& name,
                         std::vector<double> upper_bounds = {});

    /**
     * JSON object: {"counters":{...},"gauges":{...},"histograms":
     * {name:{count,sum,p50,p95,p99,buckets:[{le,count},...]}}}.
     * Keys are sorted, output is deterministic given fixed values.
     */
    void write_json(std::ostream& os) const;

    /** CSV: kind,name,value,count,sum,p50,p95,p99 (blank when n/a). */
    void write_csv(std::ostream& os) const;

    /** Zero every instrument (keeps registrations). Intended for tests. */
    void reset();

  private:
    MetricsRegistry();
    struct Impl;
    Impl* impl_;
};

/**
 * Write the registry to @p path; `.csv` extension selects CSV, anything
 * else JSON.
 */
void write_metrics_file(const std::string& path);

/** Arrange for write_metrics_file(@p path) at process exit. */
void set_exit_metrics_file(const std::string& path);

} // namespace graphorder::obs
