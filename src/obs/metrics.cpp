#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <variant>

#include "util/log.hpp"

namespace graphorder::obs {

namespace {

/** CAS loop: atomic<double> += x without C++20 fetch_add(double). */
void
atomic_add(std::atomic<double>& a, double x)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + x,
                                    std::memory_order_relaxed))
        ;
}

std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** JSON number: shortest round-trip double; non-finite becomes null. */
std::string
json_number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof probe, "%.*g", prec, v);
        if (std::strtod(probe, nullptr) == v)
            return probe;
    }
    return buf;
}

} // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds))
{
    if (bounds_.empty())
        throw std::invalid_argument("Histogram: needs >= 1 bucket bound");
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::invalid_argument("Histogram: bounds must be sorted");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double x)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, x);
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t>
Histogram::bucket_counts() const
{
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

double
Histogram::percentile(double p) const
{
    const auto counts = bucket_counts();
    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(total);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const double next = static_cast<double>(cum + counts[i]);
        if (next >= target) {
            // Interpolate within bucket i: (lo, hi].
            const double lo = i == 0 ? 0.0 : bounds_[i - 1];
            // Overflow bucket has no finite upper edge; report its floor.
            if (i == bounds_.size())
                return bounds_.back();
            const double hi = bounds_[i];
            const double frac =
                (target - static_cast<double>(cum))
                / static_cast<double>(counts[i]);
            return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        }
        cum += counts[i];
    }
    return bounds_.back();
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double>
default_time_buckets()
{
    std::vector<double> b;
    for (double decade = 1e-6; decade < 1e4; decade *= 10) {
        b.push_back(decade);
        b.push_back(2 * decade);
        b.push_back(5 * decade);
    }
    return b;
}

struct MetricsRegistry::Impl
{
    using Instrument = std::variant<std::unique_ptr<Counter>,
                                    std::unique_ptr<Gauge>,
                                    std::unique_ptr<Histogram>>;
    mutable std::mutex mutex;
    std::map<std::string, Instrument> instruments;
    std::atomic<std::uint64_t> lookups{0};
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry&
MetricsRegistry::instance()
{
    // Deliberately leaked; see Tracer::instance().
    static MetricsRegistry* reg = new MetricsRegistry();
    return *reg;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    impl_->lookups.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->instruments.find(name);
    if (it == impl_->instruments.end()) {
        it = impl_->instruments
                 .emplace(name, std::make_unique<Counter>())
                 .first;
    }
    auto* p = std::get_if<std::unique_ptr<Counter>>(&it->second);
    if (p == nullptr)
        throw std::logic_error("metric is not a counter: " + name);
    return **p;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    impl_->lookups.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->instruments.find(name);
    if (it == impl_->instruments.end()) {
        it = impl_->instruments.emplace(name, std::make_unique<Gauge>())
                 .first;
    }
    auto* p = std::get_if<std::unique_ptr<Gauge>>(&it->second);
    if (p == nullptr)
        throw std::logic_error("metric is not a gauge: " + name);
    return **p;
}

Histogram&
MetricsRegistry::histogram(const std::string& name,
                           std::vector<double> upper_bounds)
{
    impl_->lookups.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->instruments.find(name);
    if (it == impl_->instruments.end()) {
        if (upper_bounds.empty())
            upper_bounds = default_time_buckets();
        it = impl_->instruments
                 .emplace(name, std::make_unique<Histogram>(
                                    std::move(upper_bounds)))
                 .first;
    }
    auto* p = std::get_if<std::unique_ptr<Histogram>>(&it->second);
    if (p == nullptr)
        throw std::logic_error("metric is not a histogram: " + name);
    return **p;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    MetricsSnapshot out;
    for (const auto& [name, inst] : impl_->instruments) {
        if (auto* c = std::get_if<std::unique_ptr<Counter>>(&inst)) {
            out.counters.emplace_back(name, (*c)->value());
        } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&inst)) {
            out.gauges.emplace_back(name, (*g)->value());
        } else if (auto* h =
                       std::get_if<std::unique_ptr<Histogram>>(&inst)) {
            out.histograms.push_back({name, (*h)->count(), (*h)->sum(),
                                      (*h)->percentile(0.50),
                                      (*h)->percentile(0.95),
                                      (*h)->percentile(0.99)});
        }
    }
    return out;
}

std::uint64_t
MetricsRegistry::lookup_count() const
{
    return impl_->lookups.load(std::memory_order_relaxed);
}

void
MetricsRegistry::write_json(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, inst] : impl_->instruments) {
        if (auto* c = std::get_if<std::unique_ptr<Counter>>(&inst)) {
            os << (first ? "" : ",") << "\n    \"" << json_escape(name)
               << "\": " << (*c)->value();
            first = false;
        }
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, inst] : impl_->instruments) {
        if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&inst)) {
            os << (first ? "" : ",") << "\n    \"" << json_escape(name)
               << "\": " << json_number((*g)->value());
            first = false;
        }
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, inst] : impl_->instruments) {
        auto* h = std::get_if<std::unique_ptr<Histogram>>(&inst);
        if (h == nullptr)
            continue;
        os << (first ? "" : ",") << "\n    \"" << json_escape(name)
           << "\": {\"count\": " << (*h)->count()
           << ", \"sum\": " << json_number((*h)->sum())
           << ", \"p50\": " << json_number((*h)->percentile(0.50))
           << ", \"p95\": " << json_number((*h)->percentile(0.95))
           << ", \"p99\": " << json_number((*h)->percentile(0.99))
           << ", \"buckets\": [";
        const auto& bounds = (*h)->bounds();
        const auto counts = (*h)->bucket_counts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            os << (i ? "," : "") << "{\"le\": "
               << (i < bounds.size() ? json_number(bounds[i])
                                     : std::string("null"))
               << ", \"count\": " << counts[i] << "}";
        }
        os << "]}";
        first = false;
    }
    os << "\n  }\n}\n";
}

void
MetricsRegistry::write_csv(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    os << "kind,name,value,count,sum,p50,p95,p99\n";
    for (const auto& [name, inst] : impl_->instruments) {
        if (auto* c = std::get_if<std::unique_ptr<Counter>>(&inst)) {
            os << "counter," << name << "," << (*c)->value() << ",,,,,\n";
        } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&inst)) {
            os << "gauge," << name << "," << json_number((*g)->value())
               << ",,,,,\n";
        } else if (auto* h =
                       std::get_if<std::unique_ptr<Histogram>>(&inst)) {
            os << "histogram," << name << ",," << (*h)->count() << ","
               << json_number((*h)->sum()) << ","
               << json_number((*h)->percentile(0.50)) << ","
               << json_number((*h)->percentile(0.95)) << ","
               << json_number((*h)->percentile(0.99)) << "\n";
        }
    }
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto& [name, inst] : impl_->instruments) {
        if (auto* c = std::get_if<std::unique_ptr<Counter>>(&inst))
            (*c)->reset();
        else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&inst))
            (*g)->reset();
        else if (auto* h = std::get_if<std::unique_ptr<Histogram>>(&inst))
            (*h)->reset();
    }
}

namespace {

std::string&
exit_metrics_path()
{
    static std::string* path = new std::string();
    return *path;
}

void
write_exit_metrics()
{
    if (!exit_metrics_path().empty())
        write_metrics_file(exit_metrics_path());
}

} // namespace

void
write_metrics_file(const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        warn("obs: cannot open metrics file: " + path);
        return;
    }
    const bool csv = path.size() >= 4
        && path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        MetricsRegistry::instance().write_csv(out);
    else
        MetricsRegistry::instance().write_json(out);
}

void
set_exit_metrics_file(const std::string& path)
{
    const bool registered = !exit_metrics_path().empty();
    exit_metrics_path() = path;
    if (!registered)
        std::atexit(write_exit_metrics);
}

} // namespace graphorder::obs
