#include "obs/benchdiff.hpp"

#include <cmath>
#include <limits>
#include <map>

namespace graphorder::obs {

const char*
diff_verdict_name(DiffVerdict v)
{
    switch (v) {
      case DiffVerdict::kUnchanged: return "unchanged";
      case DiffVerdict::kImprovement: return "improvement";
      case DiffVerdict::kRegression: return "regression";
      case DiffVerdict::kMissing: return "missing";
    }
    return "?";
}

std::vector<DiffRule>
default_diff_rules()
{
    return {
        // Exact bench health: a newly failing cell is always a
        // regression, whatever its count.
        {"counters/bench/cells_failed", 0.0, 0.0, false},
        // Deterministic simulator counters: identical runs should
        // reproduce them exactly; 5% + a small floor absorbs residual
        // nondeterminism (Louvain-backed schemes at >1 thread).
        {"counters/memsim/*", 0.05, 64.0, false},
        {"gauges/memsim/*", 0.05, 0.25, false},
        // Compressed-path metrics (bench/fig_compress): the encoder is
        // deterministic at any thread count, so bits/edge must match the
        // baseline exactly — any growth is a real coding regression.
        // Order matters: this rule precedes the gauges/compress catch-all
        // (first match wins).
        {"gauges/compress/*bits_per_edge*", 0.0, 0.0, false},
        // Simulated traversal cycles over the encoded bytes: same
        // tolerances as the memsim family.
        {"counters/compress/*", 0.05, 64.0, false},
        {"gauges/compress/*", 0.05, 0.25, false},
        // Service-load request accounting (bench/service_load): the
        // steady/overload/chaos phases use fixed request counts and a
        // deterministic request mix, so sent/ok/unique-key counters
        // must reproduce exactly at any thread count.
        {"counters/service_load/*", 0.0, 0.0, false},
        // Cache hit rate is 1 - unique_keys/sent (misses == unique keys
        // by the single-flight invariant): deterministic up to the
        // hit-vs-coalesced split, which this gauge does not separate.
        // Higher is better; 2% absolute absorbs nothing today but keeps
        // the rule valid if the mix ever gains a timing-split metric.
        {"gauges/service_load/cache_hit_rate", 0.10, 0.02, true},
        // Throughput is hardware-bound: only flag a collapse (>90%
        // drop), not machine-to-machine variance.  Higher is better.
        {"gauges/service_load/throughput_rps", 0.90, 0.0, true},
        // End-to-end request latency under concurrency: wall-clock
        // noise dominates at smoke scale (the `sum` field aggregates
        // it over every sample), so only a blowup — 2x past a
        // two-second floor — is a regression.
        {"histograms/service/latency_s/*", 1.0, 2.0, false},
        {"histograms/service_load/latency_s/*", 1.0, 2.0, false},
        // Reorder wall time per scheme (the fig4 heavyweight sweep runs
        // at a pinned GRAPHORDER_THREADS=8 in CI): 10% guards real
        // slowdowns in the parallel kernels; the quarter-second floor
        // absorbs scheduler noise on smoke-scale cells, which finish in
        // fractions of a second.  Lower is better.
        {"histograms/order/*/time_s/*", 0.10, 0.25, false},
    };
}

bool
glob_match(const std::string& glob, const std::string& name)
{
    // Iterative '*'-backtracking match; '*' spans '/', '?' is one char.
    std::size_t g = 0, n = 0;
    std::size_t star = std::string::npos, star_n = 0;
    while (n < name.size()) {
        if (g < glob.size()
            && (glob[g] == name[n] || glob[g] == '?')) {
            ++g;
            ++n;
        } else if (g < glob.size() && glob[g] == '*') {
            star = g++;
            star_n = n;
        } else if (star != std::string::npos) {
            g = star + 1;
            n = ++star_n;
        } else {
            return false;
        }
    }
    while (g < glob.size() && glob[g] == '*')
        ++g;
    return g == glob.size();
}

namespace {

void
flatten_registry(const JsonValue& metrics,
                 std::vector<std::pair<std::string, double>>& out)
{
    static const char* kHistFields[] = {"count", "sum", "p50", "p95",
                                        "p99"};
    if (const JsonValue* c = metrics.find("counters"))
        for (const auto& [name, v] : c->as_object())
            if (v.is_number())
                out.emplace_back("counters/" + name, v.as_number());
    if (const JsonValue* g = metrics.find("gauges"))
        for (const auto& [name, v] : g->as_object())
            if (v.is_number())
                out.emplace_back("gauges/" + name, v.as_number());
    if (const JsonValue* h = metrics.find("histograms"))
        for (const auto& [name, v] : h->as_object())
            for (const char* field : kHistFields)
                if (const JsonValue* f = v.find(field);
                    f != nullptr && f->is_number())
                    out.emplace_back(
                        "histograms/" + name + "/" + field,
                        f->as_number());
}

} // namespace

std::vector<std::pair<std::string, double>>
flatten_metrics(const JsonValue& doc)
{
    std::vector<std::pair<std::string, double>> out;
    if (const JsonValue* metrics = doc.find("metrics");
        metrics != nullptr && metrics->is_object()) {
        // RunReport: registry dump nested under "metrics", plus the
        // top-level hw/mem sections surfaced as pseudo-metrics.
        flatten_registry(*metrics, out);
        if (const JsonValue* mem = doc.find_path("mem/rss_peak_bytes");
            mem != nullptr && mem->is_number())
            out.emplace_back("report/rss_peak_bytes",
                             mem->as_number());
        if (const JsonValue* ratio =
                doc.find_path("memsim_vs_hw/ratio");
            ratio != nullptr && ratio->is_number())
            out.emplace_back("report/memsim_vs_hw_ratio",
                             ratio->as_number());
        return out;
    }
    if (doc.find("counters") != nullptr || doc.find("gauges") != nullptr
        || doc.find("histograms") != nullptr) {
        flatten_registry(doc, out);
        return out;
    }
    if (const JsonValue* benches = doc.find("benchmarks");
        benches != nullptr && benches->is_array()) {
        // Google Benchmark --benchmark_out format: one object per
        // benchmark; every numeric field becomes a metric.
        for (const JsonValue& b : benches->as_array()) {
            const JsonValue* name = b.find("name");
            if (name == nullptr || !name->is_string())
                continue;
            for (const auto& [field, v] : b.as_object())
                if (v.is_number() && field != "repetition_index"
                    && field != "family_index"
                    && field != "per_family_instance_index")
                    out.emplace_back("benchmarks/" + name->as_string()
                                         + "/" + field,
                                     v.as_number());
        }
        return out;
    }
    throw GraphorderError(
        StatusCode::InvalidInput,
        "benchdiff: document is neither a run report, a metrics dump "
        "nor a Google Benchmark output");
}

DiffResult
diff_metrics(const JsonValue& baseline, const JsonValue& current,
             const DiffOptions& opt)
{
    const std::vector<DiffRule> rules =
        opt.rules.empty() ? default_diff_rules() : opt.rules;
    const auto old_metrics = flatten_metrics(baseline);
    const auto new_metrics = flatten_metrics(current);

    // Sorted-source lookup would do, but the sets are small; a map
    // keeps this obviously correct.
    std::map<std::string, double> new_by_name(new_metrics.begin(),
                                              new_metrics.end());

    DiffResult res;
    for (const auto& [name, old_value] : old_metrics) {
        std::size_t rule_index = rules.size();
        for (std::size_t i = 0; i < rules.size(); ++i) {
            if (glob_match(rules[i].glob, name)) {
                rule_index = i;
                break;
            }
        }
        if (rule_index == rules.size())
            continue; // untracked

        const DiffRule& rule = rules[rule_index];
        MetricDiff d;
        d.name = name;
        d.old_value = old_value;
        d.rule_index = rule_index;

        const auto it = new_by_name.find(name);
        if (it == new_by_name.end()) {
            d.verdict = DiffVerdict::kMissing;
            ++res.missing;
            res.diffs.push_back(std::move(d));
            continue;
        }
        d.new_value = it->second;
        const double delta = d.new_value - d.old_value;
        d.rel_change =
            old_value != 0.0
                ? delta / std::fabs(old_value)
                : (delta == 0.0
                       ? 0.0
                       : std::copysign(
                             std::numeric_limits<double>::infinity(),
                             delta));
        if (std::fabs(delta) <= rule.noise_floor
            || std::fabs(d.rel_change) <= rule.rel_threshold) {
            d.verdict = DiffVerdict::kUnchanged;
            ++res.unchanged;
        } else {
            const bool got_worse =
                rule.higher_is_better ? delta < 0 : delta > 0;
            d.verdict = got_worse ? DiffVerdict::kRegression
                                  : DiffVerdict::kImprovement;
            ++(got_worse ? res.regressions : res.improvements);
        }
        res.diffs.push_back(std::move(d));
    }
    res.failed = res.regressions > 0
                 || (opt.fail_on_missing && res.missing > 0);
    return res;
}

} // namespace graphorder::obs
