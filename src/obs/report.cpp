#include "obs/report.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "util/cancel.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

#ifdef __linux__
#include <unistd.h>
#endif

#ifndef GO_GIT_SHA
#define GO_GIT_SHA "unknown"
#endif

namespace graphorder::obs {

namespace {

std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** JSON number: shortest round-trip double; non-finite becomes null. */
std::string
json_number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof probe, "%.*g", prec, v);
        if (std::strtod(probe, nullptr) == v)
            return probe;
    }
    return buf;
}

std::string
hostname()
{
#ifdef __linux__
    char buf[256] = {0};
    if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0')
        return buf;
#endif
    if (const char* h = std::getenv("HOSTNAME"); h != nullptr && *h)
        return h;
    return "unknown";
}

/** Sampled RSS high-water mark (see rss_peak_bytes). */
std::atomic<std::uint64_t> g_rss_peak{0};

/** VmHWM from /proc/self/status in bytes; 0 when unavailable. */
std::uint64_t
vm_hwm_bytes()
{
#ifdef __linux__
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (std::sscanf(line, "VmHWM: %llu kB",
                        reinterpret_cast<unsigned long long*>(&kb))
            == 1)
            break;
    }
    std::fclose(f);
    return kb * 1024ULL;
#else
    return 0;
#endif
}

} // namespace

const char*
build_git_sha()
{
    return GO_GIT_SHA;
}

void
sample_rss_peak()
{
    const std::uint64_t rss = current_rss_bytes();
    std::uint64_t prev = g_rss_peak.load(std::memory_order_relaxed);
    while (rss > prev
           && !g_rss_peak.compare_exchange_weak(
               prev, rss, std::memory_order_relaxed))
        ;
}

std::uint64_t
rss_peak_bytes()
{
    sample_rss_peak();
    const std::uint64_t hwm = vm_hwm_bytes();
    const std::uint64_t sampled =
        g_rss_peak.load(std::memory_order_relaxed);
    return hwm > sampled ? hwm : sampled;
}

void
write_run_report_json(const RunReport& r, std::ostream& os)
{
    // Volatile state, collected now: hardware counters (publishing
    // them first so the metrics snapshot below carries hw/* too), the
    // RSS high-water mark, and the registry snapshot.
    const PerfReading hw = publish_hw_counters();
    const std::uint64_t rss_peak = rss_peak_bytes();
    MetricsRegistry::instance().gauge("mem/rss_peak_bytes")
        .set(static_cast<double>(rss_peak));
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();

    os << "{\n  \"schema\": \"graphorder.run_report.v1\",\n";
    os << "  \"tool\": \"" << json_escape(r.tool) << "\",\n";
    os << "  \"git_sha\": \"" << json_escape(build_git_sha())
       << "\",\n";
    os << "  \"hostname\": \"" << json_escape(hostname()) << "\",\n";
    os << "  \"created_unix\": "
       << static_cast<long long>(std::time(nullptr)) << ",\n";
    os << "  \"threads\": " << default_threads() << ",\n";

    os << "  \"graph\": {\"name\": \"" << json_escape(r.graph)
       << "\", \"fingerprint\": \"";
    {
        char fp[32];
        std::snprintf(fp, sizeof fp, "%016llx",
                      static_cast<unsigned long long>(
                          r.graph_fingerprint));
        os << fp;
    }
    os << "\", \"vertices\": " << r.vertices << ", \"edges\": "
       << r.edges << "},\n";

    os << "  \"run\": {\"scheme\": \"" << json_escape(r.scheme)
       << "\", \"params\": \"" << json_escape(r.params)
       << "\", \"seed\": " << r.seed << "},\n";

    os << "  \"hw\": {\"available\": "
       << (hw.available ? "true" : "false");
    if (!hw.available) {
        os << ", \"reason\": \""
           << json_escape(
                  PerfCounters::instance().unavailable_reason())
           << "\"";
    } else {
        os << ", \"multiplex_correction\": "
           << json_number(hw.multiplex_correction) << ", \"counters\": {";
        for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
            os << (i ? ", " : "") << "\""
               << perf_event_name(static_cast<PerfEvent>(i)) << "\": "
               << hw.value[i];
        }
        os << "}";
    }
    os << "},\n";

    os << "  \"mem\": {\"rss_peak_bytes\": " << rss_peak << "},\n";

    // Cross-validation: every memsim run publishes its last-level
    // demand misses as `<prefix>/lookups/DRAM`; the sum over memsim
    // prefixes is the simulator's LLC-miss prediction for everything
    // this process traced.  The measured side is hw llc_miss for the
    // *whole process* — the ratio is an order-of-magnitude honesty
    // check (the simulator sees only traced kernels, the PMU sees
    // everything), not an equality assertion.  See DESIGN.md §12.
    std::uint64_t memsim_llc = 0;
    for (const auto& [name, value] : snap.counters) {
        if (name.rfind("memsim/", 0) == 0
            && name.size() > 12
            && name.compare(name.size() - 13, 13, "/lookups/DRAM") == 0)
            memsim_llc += value;
    }
    const std::uint64_t hw_llc =
        hw[PerfEvent::kLlcLoadMisses];
    os << "  \"memsim_vs_hw\": {\"memsim_llc_misses\": " << memsim_llc
       << ", \"hw_llc_misses\": " << hw_llc << ", \"ratio\": ";
    if (hw.available && hw_llc > 0 && memsim_llc > 0)
        os << json_number(static_cast<double>(memsim_llc)
                          / static_cast<double>(hw_llc));
    else
        os << "null";
    os << "},\n";

    os << "  \"metrics\": {\n    \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
        os << (first ? "" : ",") << "\n      \"" << json_escape(name)
           << "\": " << value;
        first = false;
    }
    os << "\n    },\n    \"gauges\": {";
    first = true;
    for (const auto& [name, value] : snap.gauges) {
        os << (first ? "" : ",") << "\n      \"" << json_escape(name)
           << "\": " << json_number(value);
        first = false;
    }
    os << "\n    },\n    \"histograms\": {";
    first = true;
    for (const auto& h : snap.histograms) {
        os << (first ? "" : ",") << "\n      \"" << json_escape(h.name)
           << "\": {\"count\": " << h.count << ", \"sum\": "
           << json_number(h.sum) << ", \"p50\": " << json_number(h.p50)
           << ", \"p95\": " << json_number(h.p95) << ", \"p99\": "
           << json_number(h.p99) << "}";
        first = false;
    }
    os << "\n    }\n  }\n}\n";
}

void
write_run_report(const RunReport& r, const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        warn("obs: cannot open report file: " + path);
        return;
    }
    write_run_report_json(r, out);
}

namespace {

RunReport g_exit_report;

std::string&
exit_report_path()
{
    static std::string* path = new std::string();
    return *path;
}

void
write_exit_report()
{
    if (!exit_report_path().empty())
        write_run_report(g_exit_report, exit_report_path());
}

} // namespace

RunReport&
exit_run_report()
{
    return g_exit_report;
}

void
set_exit_report_file(const std::string& path)
{
    const bool registered = !exit_report_path().empty();
    exit_report_path() = path;
    if (!registered)
        std::atexit(write_exit_report);
}

} // namespace graphorder::obs
