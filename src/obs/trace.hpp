/**
 * @file
 * Phase-scoped span tracer.
 *
 * The paper's analysis lives and dies by attribution: which *phase* of a
 * reordering scheme or application kernel the time went to.  This tracer
 * records RAII scopes (`GO_TRACE_SCOPE("order/rcm")`) into per-thread
 * buffers and exports them either as JSON-lines or as Chrome
 * `trace_event` "complete" events, loadable in `chrome://tracing` and
 * Perfetto (https://ui.perfetto.dev).
 *
 * Cost model: tracing is off by default.  A disabled scope is a relaxed
 * atomic load and two dead branches — no clock read, no allocation — so
 * instrumentation can stay in hot-ish paths permanently.  Enabled scopes
 * take one steady_clock read at entry and one at exit, and append to a
 * per-thread vector guarded by an uncontended mutex.
 *
 * Enabling:
 *  - programmatically: `Tracer::instance().set_enabled(true)`;
 *  - `GRAPHORDER_TRACE=1` enables recording (dump it yourself);
 *  - `GRAPHORDER_TRACE=path.json` additionally writes a Chrome trace to
 *    that path at process exit (`.jsonl` extension selects JSON-lines).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace graphorder::obs {

/** One completed span, times in microseconds since tracer start. */
struct TraceEvent
{
    std::string name;
    std::uint32_t tid = 0;   ///< tracer-assigned dense thread id
    std::uint32_t depth = 0; ///< nesting depth within the thread
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
    /**
     * Optional per-span annotations, serialized into the Chrome trace
     * "args" object (and the JSONL records).  PerfDomain
     * (obs/perf_counters.hpp) attaches hardware-counter deltas here, so
     * a span in Perfetto shows the cycles / LLC misses it cost, not
     * just its duration.  Empty for plain GO_TRACE_SCOPE spans.
     */
    std::vector<std::pair<std::string, std::uint64_t>> args;
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;

/** Per-thread span nesting depth, shared by TraceScope and PerfDomain
 *  (obs/perf_counters.hpp) so mixed scopes nest correctly.  push
 *  returns the depth of the new span. */
std::uint32_t push_span_depth();
void pop_span_depth();
} // namespace detail

/** Fast global check used by TraceScope; relaxed load. */
inline bool
trace_enabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/**
 * Process-wide collector of completed spans.  Thread-safe: each thread
 * appends to its own buffer; snapshot/export merge across threads.
 */
class Tracer
{
  public:
    /** The singleton (never destroyed, safe to use in atexit handlers). */
    static Tracer& instance();

    void set_enabled(bool on);

    /** Drop all recorded events (e.g. between test cases). */
    void clear();

    /** Number of events recorded so far, across all threads. */
    std::size_t event_count() const;

    /** Merged copy of all events, sorted by (start_us, depth). */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Chrome trace_event JSON: `{"traceEvents":[...]}` with one complete
     * ("ph":"X") event per span.  Open in chrome://tracing or Perfetto.
     */
    void write_chrome_trace(std::ostream& os) const;

    /** One JSON object per line per span. */
    void write_jsonl(std::ostream& os) const;

    /** Microseconds since tracer construction (the trace timebase). */
    std::uint64_t now_us() const;

    /** Append one completed span for the calling thread. */
    void record(std::string name, std::uint32_t depth,
                std::uint64_t start_us, std::uint64_t dur_us,
                std::vector<std::pair<std::string, std::uint64_t>>
                    args = {});

  private:
    Tracer();
    struct Impl;
    Impl* impl_;
};

/**
 * Write the current trace to @p path; format picked by extension
 * (`.jsonl` = JSON-lines, anything else = Chrome trace JSON).
 */
void write_trace_file(const std::string& path);

/**
 * Arrange for write_trace_file(@p path) to run at process exit (atexit).
 * Also enables the tracer.  Used by `--trace FILE` flags and the
 * GRAPHORDER_TRACE env var.
 */
void set_exit_trace_file(const std::string& path);

/**
 * RAII span.  Construction with tracing disabled does nothing (no clock
 * read, no allocation); destruction records the completed span.
 */
class TraceScope
{
  public:
    explicit TraceScope(const char* name)
    {
        if (trace_enabled())
            begin(std::string(name));
    }
    explicit TraceScope(std::string name)
    {
        if (trace_enabled())
            begin(std::move(name));
    }
    ~TraceScope()
    {
        if (armed_)
            end();
    }
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

  private:
    void begin(std::string name);
    void end();

    std::string name_; ///< empty (SSO, no allocation) while disarmed
    std::uint64_t start_ = 0;
    std::uint32_t depth_ = 0;
    bool armed_ = false;
};

} // namespace graphorder::obs

#define GO_TRACE_CONCAT2(a, b) a##b
#define GO_TRACE_CONCAT(a, b) GO_TRACE_CONCAT2(a, b)
/** RAII span covering the enclosing scope; @p name may be a runtime
 *  std::string ("louvain/phase/" + std::to_string(i)) or a literal. */
#define GO_TRACE_SCOPE(name) \
    ::graphorder::obs::TraceScope GO_TRACE_CONCAT(go_trace_scope_, \
                                                  __LINE__)(name)
