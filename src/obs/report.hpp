/**
 * @file
 * RunReport: one machine-readable manifest per run.
 *
 * The bench trajectory needs *comparable* artifacts: a figure binary
 * that prints tables is useful to a human, but regression detection
 * (tools/benchdiff.cpp) and cross-machine comparison need every run to
 * emit the same structured record.  A RunReport captures, in one JSON
 * document:
 *
 *  - provenance: tool name, git sha (compiled in), hostname, thread
 *    count, wall-clock timestamp;
 *  - workload identity: graph name + structural fingerprint
 *    (graph/csr.hpp) + sizes, scheme and parameter string, seed;
 *  - hardware truth: the perf-counter reading (obs/perf_counters.hpp)
 *    with its `available` flag — `false` is a first-class value, CI
 *    containers deny the syscall;
 *  - memory: the process RSS high-water mark (`mem/rss_peak_bytes`);
 *  - cross-validation: the memsim-predicted LLC miss count (summed
 *    `memsim/.../lookups/DRAM` counters) next to the measured
 *    `hw/llc_miss`, with their ratio — the contract that keeps the
 *    simulator honest against the machine (DESIGN.md §12);
 *  - the full metrics-registry snapshot, so benchdiff can track any
 *    counter without the writer anticipating it.
 *
 * Emission: every bench binary and the CLI accept `--report FILE`.
 * The writer is registered atexit (like --metrics/--trace), and the
 * report skeleton is a mutable global that the binary fills in as it
 * learns the workload (`exit_run_report().scheme = ...`), so even an
 * error path leaves a parseable artifact.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace graphorder::obs {

/** The caller-supplied part of a report; the writer adds provenance,
 *  hw counters, RSS and the metrics snapshot at write time. */
struct RunReport
{
    std::string tool;   ///< binary name ("reorder", "fig6a", ...)
    std::string scheme; ///< scheme name, or "sweep" for figure matrices
    std::string params; ///< free-form knob summary ("scale=256 smoke")
    std::uint64_t seed = 0;

    /** Workload identity; empty/zero for multi-instance sweeps. */
    std::string graph;
    std::uint64_t graph_fingerprint = 0;
    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;
};

/** Git sha the library was configured from ("unknown" outside git). */
const char* build_git_sha();

/**
 * Process RSS high-water mark in bytes: the max of the kernel's VmHWM
 * (/proc/self/status) and every `sample_rss_peak()` observation (the
 * /proc/self/statm sampler shared with the runner's memory budget).
 * 0 on platforms without /proc.
 */
std::uint64_t rss_peak_bytes();

/** Fold the current RSS (util/cancel.hpp current_rss_bytes) into the
 *  high-water mark; callers sprinkle this at phase boundaries. */
void sample_rss_peak();

/**
 * Write @p r to @p path as `graphorder.run_report.v1` JSON.  Collects
 * everything volatile at call time: publishes + embeds the hw counter
 * reading, publishes `mem/rss_peak_bytes`, computes the memsim-vs-
 * hardware LLC-miss ratio, snapshots the metrics registry.  Failures
 * to open the file warn and return (a report must never fail the run).
 */
void write_run_report(const RunReport& r, const std::string& path);

/** Serialize to a stream (write_run_report's engine; testable). */
void write_run_report_json(const RunReport& r, std::ostream& os);

/** The mutable report skeleton written at process exit. */
RunReport& exit_run_report();

/** Arrange for write_run_report(exit_run_report(), @p path) at process
 *  exit — the `--report FILE` implementation. */
void set_exit_report_file(const std::string& path);

} // namespace graphorder::obs
