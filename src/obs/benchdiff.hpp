/**
 * @file
 * Bench-regression comparison engine behind tools/benchdiff.cpp.
 *
 * Compares two structured run artifacts — RunReport manifests
 * (obs/report.hpp), bare metrics-registry dumps (`--metrics FILE`), or
 * Google-Benchmark `--benchmark_out` JSON — metric by metric, under
 * per-metric rules carrying a relative-change threshold and an absolute
 * noise floor.  CI commits baseline artifacts and fails the build when
 * a tracked metric regresses beyond its rule.
 *
 * The verdict taxonomy is exactly what the tests pin:
 *   - kUnchanged:  |delta| under the noise floor, or relative change
 *                  within the threshold;
 *   - kImprovement: beyond threshold in the good direction;
 *   - kRegression:  beyond threshold in the bad direction (default:
 *                  higher is worse — cycles, misses, latencies);
 *   - kMissing:     tracked in the baseline, absent from the new run
 *                  (a silently dropped metric must not pass CI).
 *
 * Tracked set: metrics of the *baseline* matching any rule; the first
 * matching rule wins (order your specific rules before catch-alls).
 * Metrics only present in the new run are additions, never failures.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace graphorder::obs {

/** One tracked-metric rule.  Globs match flattened metric names
 *  (`counters/memsim/fig6a/loads`); '*' spans any characters including
 *  '/', '?' matches one character. */
struct DiffRule
{
    std::string glob;
    /** Allowed relative change |new-old|/|old| before flagging. */
    double rel_threshold = 0.05;
    /** Absolute |new-old| at or under this is always kUnchanged —
     *  keeps counting jitter on small counters out of the verdict. */
    double noise_floor = 0.0;
    /** Direction of goodness; false = an increase is a regression. */
    bool higher_is_better = false;
};

enum class DiffVerdict
{
    kUnchanged,
    kImprovement,
    kRegression,
    kMissing,
};

const char* diff_verdict_name(DiffVerdict v);

/** One tracked metric's comparison. */
struct MetricDiff
{
    std::string name;
    double old_value = 0;
    double new_value = 0; ///< meaningless when verdict == kMissing
    /** (new-old)/|old|; +-inf when old == 0 and new != 0. */
    double rel_change = 0;
    DiffVerdict verdict = DiffVerdict::kUnchanged;
    std::size_t rule_index = 0; ///< into the rule list that was applied
};

struct DiffOptions
{
    /** Empty = default_diff_rules(). */
    std::vector<DiffRule> rules;
    /** When false, kMissing does not fail the comparison. */
    bool fail_on_missing = true;
};

struct DiffResult
{
    std::vector<MetricDiff> diffs; ///< tracked metrics, baseline order
    std::size_t regressions = 0;
    std::size_t improvements = 0;
    std::size_t missing = 0;
    std::size_t unchanged = 0;
    bool failed = false; ///< regression, or missing while fail_on_missing
};

/**
 * Default tracked set: the deterministic simulator and bench-health
 * metrics that must not drift between runs of the same commit —
 * `memsim/...` counters and gauges (5% / small noise floors) and
 * `bench/cells_failed` (exact).  Wall-clock metrics are deliberately
 * absent: they are machine noise, track them explicitly if you want
 * them.
 */
std::vector<DiffRule> default_diff_rules();

/** '*'-spans-everything glob match (see DiffRule::glob). */
bool glob_match(const std::string& glob, const std::string& name);

/**
 * Flatten a parsed artifact into (name, value) pairs:
 *  - RunReport: descends into "metrics";
 *  - registry dump: `counters/<n>`, `gauges/<n>`,
 *    `histograms/<n>/{count,sum,p50,p95,p99}`;
 *  - Google Benchmark: `benchmarks/<name>/<numeric field>`.
 * @throws GraphorderError(InvalidInput) when the document matches no
 *         known shape.
 */
std::vector<std::pair<std::string, double>>
flatten_metrics(const JsonValue& doc);

/** Compare @p baseline to @p current under @p opt. */
DiffResult diff_metrics(const JsonValue& baseline,
                        const JsonValue& current,
                        const DiffOptions& opt = {});

} // namespace graphorder::obs
