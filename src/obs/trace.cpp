#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace graphorder::obs {

namespace {
thread_local std::uint32_t t_span_depth = 0;
} // namespace

namespace detail {
std::atomic<bool> g_trace_enabled{false};

std::uint32_t
push_span_depth()
{
    return t_span_depth++;
}

void
pop_span_depth()
{
    --t_span_depth;
}
} // namespace detail

namespace {

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Per-thread append buffer; kept alive past thread exit by the registry
 *  holding a shared_ptr. The mutex only contends with snapshot/clear. */
struct ThreadBuffer
{
    mutable std::mutex m;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
};

} // namespace

struct Tracer::Impl
{
    std::chrono::steady_clock::time_point epoch;
    mutable std::mutex registry_mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::atomic<std::uint32_t> next_tid{0};

    ThreadBuffer& local_buffer()
    {
        thread_local std::shared_ptr<ThreadBuffer> buf = [this] {
            auto b = std::make_shared<ThreadBuffer>();
            b->tid = next_tid.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(registry_mutex);
            buffers.push_back(b);
            return b;
        }();
        return *buf;
    }
};

Tracer::Tracer() : impl_(new Impl)
{
    impl_->epoch = std::chrono::steady_clock::now();
}

Tracer&
Tracer::instance()
{
    // Deliberately leaked: usable from atexit handlers and destructors
    // of objects with static storage duration regardless of init order.
    static Tracer* tracer = new Tracer();
    return *tracer;
}

void
Tracer::set_enabled(bool on)
{
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    for (auto& b : impl_->buffers) {
        std::lock_guard<std::mutex> bl(b->m);
        b->events.clear();
    }
}

std::size_t
Tracer::event_count() const
{
    std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    std::size_t n = 0;
    for (const auto& b : impl_->buffers) {
        std::lock_guard<std::mutex> bl(b->m);
        n += b->events.size();
    }
    return n;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(impl_->registry_mutex);
        for (const auto& b : impl_->buffers) {
            std::lock_guard<std::mutex> bl(b->m);
            out.insert(out.end(), b->events.begin(), b->events.end());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.start_us != b.start_us)
                      return a.start_us < b.start_us;
                  return a.depth < b.depth;
              });
    return out;
}

std::uint64_t
Tracer::now_us() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - impl_->epoch)
            .count());
}

void
Tracer::record(std::string name, std::uint32_t depth,
               std::uint64_t start_us, std::uint64_t dur_us,
               std::vector<std::pair<std::string, std::uint64_t>> args)
{
    ThreadBuffer& buf = impl_->local_buffer();
    std::lock_guard<std::mutex> lock(buf.m);
    buf.events.push_back({std::move(name), buf.tid, depth, start_us,
                          dur_us, std::move(args)});
}

void
Tracer::write_chrome_trace(std::ostream& os) const
{
    const auto events = snapshot();
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto& e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << json_escape(e.name)
           << "\",\"cat\":\"graphorder\",\"ph\":\"X\",\"pid\":1"
           << ",\"tid\":" << e.tid << ",\"ts\":" << e.start_us
           << ",\"dur\":" << e.dur_us << ",\"args\":{\"depth\":"
           << e.depth;
        for (const auto& [k, v] : e.args)
            os << ",\"" << json_escape(k) << "\":" << v;
        os << "}}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
Tracer::write_jsonl(std::ostream& os) const
{
    for (const auto& e : snapshot()) {
        os << "{\"name\":\"" << json_escape(e.name) << "\",\"tid\":"
           << e.tid << ",\"depth\":" << e.depth << ",\"ts_us\":"
           << e.start_us << ",\"dur_us\":" << e.dur_us;
        for (const auto& [k, v] : e.args)
            os << ",\"" << json_escape(k) << "\":" << v;
        os << "}\n";
    }
}

void
TraceScope::begin(std::string name)
{
    name_ = std::move(name);
    start_ = Tracer::instance().now_us();
    depth_ = detail::push_span_depth();
    armed_ = true;
}

void
TraceScope::end()
{
    detail::pop_span_depth();
    Tracer& tr = Tracer::instance();
    tr.record(std::move(name_), depth_, start_, tr.now_us() - start_);
}

namespace {

bool
has_suffix(const std::string& s, const char* suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string&
exit_trace_path()
{
    static std::string* path = new std::string();
    return *path;
}

void
write_exit_files()
{
    if (!exit_trace_path().empty())
        write_trace_file(exit_trace_path());
}

/** Reads GRAPHORDER_TRACE / GRAPHORDER_METRICS before main() runs. */
struct EnvInit
{
    EnvInit()
    {
        if (const char* e = std::getenv("GRAPHORDER_TRACE");
            e != nullptr && *e != '\0') {
            if (std::strcmp(e, "1") == 0)
                Tracer::instance().set_enabled(true);
            else
                set_exit_trace_file(e);
        }
        if (const char* m = std::getenv("GRAPHORDER_METRICS");
            m != nullptr && *m != '\0')
            set_exit_metrics_file(m);
    }
} env_init;

} // namespace

void
write_trace_file(const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        warn("obs: cannot open trace file: " + path);
        return;
    }
    if (has_suffix(path, ".jsonl"))
        Tracer::instance().write_jsonl(out);
    else
        Tracer::instance().write_chrome_trace(out);
}

void
set_exit_trace_file(const std::string& path)
{
    Tracer::instance().set_enabled(true);
    const bool registered = !exit_trace_path().empty();
    exit_trace_path() = path;
    if (!registered)
        std::atexit(write_exit_files);
}

} // namespace graphorder::obs
