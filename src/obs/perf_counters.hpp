/**
 * @file
 * Hardware performance-counter profiling via Linux perf_event_open.
 *
 * The source paper's memory-hierarchy claims rest on *measured* hardware
 * behaviour (VTune cache and bandwidth profiles); until now this repo
 * only simulated the hierarchy (memsim) and timed itself with wall
 * clocks.  This module closes that loop: it programs a fixed set of
 * hardware events — cycles, instructions, LLC loads / LLC load misses,
 * branches / branch misses, dTLB load misses — and exposes them behind
 * an RAII `PerfDomain` scope that
 *
 *   1. publishes the counter deltas of the scope into the metrics
 *      registry under `hw/<event>` (monotonic counters, so nested and
 *      repeated domains accumulate like every other subsystem), and
 *   2. when tracing is enabled, records a span whose Chrome-trace
 *      `args` carry the deltas — a Perfetto track where each phase
 *      shows the cycles and LLC misses it cost, not just its duration.
 *
 * Graceful degradation is a hard contract: perf_event_open is denied in
 * most containers and CI runners (perf_event_paranoid, seccomp) and
 * absent on non-Linux.  The first failed open flips the process-wide
 * state to "unavailable": every later PerfDomain is a single relaxed
 * atomic load — no syscalls, no allocation — and `hw/available`
 * publishes 0 so RunReport consumers can tell "zero events" from
 * "counted zero".  Exit codes and output shape are identical either
 * way; the acceptance bar is that `reorder --report r.json` succeeds
 * with the same exit code whether or not the syscall is permitted.
 *
 * Counter scheduling: events are opened as independent fds (not one
 * group) so a PMU with fewer slots than events still measures what it
 * can; each value is multiplex-corrected by time_enabled/time_running
 * the way `perf stat` scales, and the correction factor is surfaced as
 * `hw/multiplex_correction` (1.0 = all events ran the whole time).
 *
 * Fault injection: the open path hosts the `obs.perf.open` fault site,
 * which simulates an EACCES-style denial — the substrate for testing
 * the fallback path without a locked-down kernel.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace graphorder::obs {

/** The fixed event set, indexable into PerfReading::value. */
enum class PerfEvent : std::size_t
{
    kCycles = 0,
    kInstructions,
    kLlcLoads,
    kLlcLoadMisses,
    kBranches,
    kBranchMisses,
    kDtlbLoadMisses,
    kCount_, // sentinel
};

inline constexpr std::size_t kNumPerfEvents =
    static_cast<std::size_t>(PerfEvent::kCount_);

/** Registry/metric suffix of @p e ("cycles", "llc_miss", ...). */
const char* perf_event_name(PerfEvent e);

/** One multiplex-corrected sample of every event. */
struct PerfReading
{
    /** False when the counters could not be opened (or a per-event read
     *  failed); values are all zero then. */
    bool available = false;

    /** Corrected event counts, indexed by PerfEvent. */
    std::array<std::uint64_t, kNumPerfEvents> value{};

    /** Mean time_enabled/time_running across scheduled events; 1.0
     *  when nothing was multiplexed, 0 when unavailable. */
    double multiplex_correction = 0.0;

    std::uint64_t operator[](PerfEvent e) const
    {
        return value[static_cast<std::size_t>(e)];
    }

    /** this - earlier, per event (counters are monotonic; a counter
     *  that wrapped or was re-opened clamps to 0). */
    PerfReading delta_since(const PerfReading& earlier) const;
};

/**
 * Process-wide counter set.  Opened lazily on first use; never closed
 * (the fds live for the process, like every obs singleton).  All
 * methods are thread-safe; the counters measure the whole process
 * (inherit=1 covers OpenMP worker threads spawned after opening).
 */
class PerfCounters
{
  public:
    static PerfCounters& instance();

    /** True when at least one event is being counted.  The first call
     *  performs the opens; later calls are one atomic load. */
    bool available();

    /** Reason the counters are unavailable ("" while available):
     *  "EACCES (perf_event_paranoid?)", "ENOSYS", ... */
    const std::string& unavailable_reason() const;

    /** Current cumulative reading (zeros when unavailable). */
    PerfReading read();

    /**
     * Re-probe availability (test hook): closes nothing but re-runs the
     * open path when the previous attempt failed — used with the
     * `obs.perf.open` fault site to exercise the denial path and then
     * restore real counters for later tests.
     */
    void reopen_for_test();

  private:
    PerfCounters();
    struct Impl;
    Impl* impl_;
};

/**
 * RAII profiling scope: reads the counters at construction and
 * destruction, publishes the deltas under `hw/<event>` and — when
 * tracing is on — records a `<name>` span carrying the deltas as trace
 * args.  Construction when counters are unavailable costs one relaxed
 * atomic load and arms nothing.
 *
 * Nesting is safe (counters are cumulative, deltas are per-scope), but
 * remember that the `hw/...` registry counters accumulate across *all*
 * domains: nested scopes double-publish their overlap.  Keep domains at
 * phase granularity (one per scheme run, one per app kernel), mirroring
 * where GO_TRACE_SCOPE already sits.
 */
class PerfDomain
{
  public:
    explicit PerfDomain(const char* name);
    explicit PerfDomain(std::string name);
    ~PerfDomain();
    PerfDomain(const PerfDomain&) = delete;
    PerfDomain& operator=(const PerfDomain&) = delete;

    /** The delta accumulated so far (reads the counters now). */
    PerfReading sample() const;

  private:
    void begin(std::string name);

    std::string name_;
    PerfReading start_;
    std::uint64_t start_us_ = 0;
    std::uint32_t depth_ = 0;
    bool armed_ = false;
    bool traced_ = false;
};

/**
 * Publish the *cumulative* process counters under `hw/...` without a
 * domain: `hw/available` (gauge 0/1), per-event counters as deltas
 * since the previous publish, and `hw/multiplex_correction`.  Called by
 * RunReport emission so every report carries hardware numbers even when
 * no PerfDomain was placed.  Returns the reading it published.
 */
PerfReading publish_hw_counters();

} // namespace graphorder::obs
