#include "obs/perf_counters.hpp"

#include <cerrno>
#include <cstring>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/faultpoint.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace graphorder::obs {

namespace {

// Simulates the kernel denying perf_event_open (EACCES under
// perf_event_paranoid, ENOSYS under seccomp).  The open path *catches*
// the injected error and degrades to unavailable — this site tests the
// fallback contract, not an error-propagation path.
FaultPoint fp_perf_open{
    "obs.perf.open", StatusCode::Internal,
    "perf_event_open denied; counters degrade to available=false"};

const char* const kEventNames[kNumPerfEvents] = {
    "cycles",     "instructions", "llc_loads", "llc_miss",
    "branches",   "branch_miss",  "dtlb_miss",
};

#ifdef __linux__

/** (type, config) pair of each PerfEvent, in enum order. */
struct EventConfig
{
    std::uint32_t type;
    std::uint64_t config;
};

constexpr std::uint64_t
hw_cache_config(std::uint64_t cache, std::uint64_t op,
                std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

const EventConfig kEventConfigs[kNumPerfEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HW_CACHE,
     hw_cache_config(PERF_COUNT_HW_CACHE_DTLB,
                     PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
};

long
sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                    int group_fd, unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

std::string
describe_errno(int err)
{
    switch (err) {
      case EACCES:
      case EPERM:
        return "EACCES (lower /proc/sys/kernel/perf_event_paranoid or "
               "grant CAP_PERFMON)";
      case ENOSYS:
        return "ENOSYS (perf_event_open unavailable; seccomp?)";
      case ENOENT:
        return "ENOENT (event not supported by this PMU)";
      default:
        return std::strerror(err);
    }
}

#endif // __linux__

} // namespace

const char*
perf_event_name(PerfEvent e)
{
    return kEventNames[static_cast<std::size_t>(e)];
}

PerfReading
PerfReading::delta_since(const PerfReading& earlier) const
{
    PerfReading d;
    d.available = available && earlier.available;
    d.multiplex_correction = multiplex_correction;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i)
        d.value[i] = value[i] >= earlier.value[i]
                         ? value[i] - earlier.value[i]
                         : 0;
    return d;
}

struct PerfCounters::Impl
{
    std::mutex mutex;
    // 0 = unprobed, 1 = available, 2 = unavailable.
    std::atomic<int> state{0};
    std::string reason;
    int fds[kNumPerfEvents];

    Impl()
    {
        for (auto& fd : fds)
            fd = -1;
    }

    /** Open every event; called under mutex. */
    void open_all()
    {
#ifdef __linux__
        try {
            fp_perf_open.maybe_fire();
        } catch (const GraphorderError& e) {
            reason = std::string("injected: ") + e.what();
            state.store(2, std::memory_order_release);
            return;
        }
        int first_errno = 0;
        std::size_t opened = 0;
        for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
            perf_event_attr attr{};
            attr.size = sizeof(attr);
            attr.type = kEventConfigs[i].type;
            attr.config = kEventConfigs[i].config;
            attr.disabled = 0;
            attr.exclude_kernel = 1;
            attr.exclude_hv = 1;
            // Inherit into threads created after the open (the OpenMP
            // team), so process-level reads see parallel-kernel work.
            attr.inherit = 1;
            attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED
                               | PERF_FORMAT_TOTAL_TIME_RUNNING;
            const long fd =
                sys_perf_event_open(&attr, 0, -1, -1, 0);
            if (fd < 0) {
                if (first_errno == 0)
                    first_errno = errno;
                continue;
            }
            fds[i] = static_cast<int>(fd);
            ++opened;
        }
        if (opened == 0) {
            reason = describe_errno(first_errno);
            state.store(2, std::memory_order_release);
            return;
        }
        state.store(1, std::memory_order_release);
#else
        reason = "perf_event_open is Linux-only";
        state.store(2, std::memory_order_release);
#endif
    }

    void close_all()
    {
#ifdef __linux__
        for (auto& fd : fds) {
            if (fd >= 0)
                close(fd);
            fd = -1;
        }
#endif
    }

    int probe()
    {
        int s = state.load(std::memory_order_acquire);
        if (s != 0)
            return s;
        std::lock_guard<std::mutex> lock(mutex);
        s = state.load(std::memory_order_acquire);
        if (s == 0) {
            open_all();
            s = state.load(std::memory_order_acquire);
        }
        return s;
    }
};

PerfCounters::PerfCounters() : impl_(new Impl) {}

PerfCounters&
PerfCounters::instance()
{
    // Deliberately leaked; see Tracer::instance().
    static PerfCounters* pc = new PerfCounters();
    return *pc;
}

bool
PerfCounters::available()
{
    return impl_->probe() == 1;
}

const std::string&
PerfCounters::unavailable_reason() const
{
    return impl_->reason;
}

PerfReading
PerfCounters::read()
{
    PerfReading r;
    if (impl_->probe() != 1)
        return r;
#ifdef __linux__
    double correction_sum = 0.0;
    std::size_t correction_n = 0;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        const int fd = impl_->fds[i];
        if (fd < 0)
            continue;
        // PERF_FORMAT_TOTAL_TIME_{ENABLED,RUNNING}: value, enabled ns,
        // running ns.  running < enabled means the PMU multiplexed this
        // event off-core part of the time; scale like `perf stat`.
        std::uint64_t buf[3] = {0, 0, 0};
        const ssize_t got = ::read(fd, buf, sizeof buf);
        if (got != static_cast<ssize_t>(sizeof buf))
            continue;
        double v = static_cast<double>(buf[0]);
        if (buf[2] > 0 && buf[2] < buf[1]) {
            const double scale = static_cast<double>(buf[1])
                                 / static_cast<double>(buf[2]);
            v *= scale;
            correction_sum += scale;
        } else {
            correction_sum += 1.0;
        }
        ++correction_n;
        r.value[i] = static_cast<std::uint64_t>(v);
    }
    if (correction_n > 0) {
        r.available = true;
        r.multiplex_correction =
            correction_sum / static_cast<double>(correction_n);
    }
#endif
    return r;
}

void
PerfCounters::reopen_for_test()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->close_all();
    impl_->reason.clear();
    impl_->state.store(0, std::memory_order_release);
    impl_->open_all();
}

void
PerfDomain::begin(std::string name)
{
    auto& pc = PerfCounters::instance();
    if (!pc.available())
        return;
    name_ = std::move(name);
    start_ = pc.read();
    armed_ = true;
    traced_ = trace_enabled();
    if (traced_) {
        start_us_ = Tracer::instance().now_us();
        depth_ = detail::push_span_depth();
    }
}

PerfDomain::PerfDomain(const char* name)
{
    begin(std::string(name));
}

PerfDomain::PerfDomain(std::string name)
{
    begin(std::move(name));
}

PerfReading
PerfDomain::sample() const
{
    if (!armed_)
        return {};
    return PerfCounters::instance().read().delta_since(start_);
}

PerfDomain::~PerfDomain()
{
    if (!armed_)
        return;
    const PerfReading d =
        PerfCounters::instance().read().delta_since(start_);
    auto& reg = MetricsRegistry::instance();
    for (std::size_t i = 0; i < kNumPerfEvents; ++i)
        reg.counter("hw/" + name_ + "/" + kEventNames[i]).add(d.value[i]);
    if (traced_) {
        detail::pop_span_depth();
        Tracer& tr = Tracer::instance();
        std::vector<std::pair<std::string, std::uint64_t>> args;
        args.reserve(kNumPerfEvents);
        for (std::size_t i = 0; i < kNumPerfEvents; ++i)
            args.emplace_back(std::string("hw_") + kEventNames[i],
                              d.value[i]);
        tr.record(std::move(name_), depth_, start_us_,
                  tr.now_us() - start_us_, std::move(args));
    }
}

PerfReading
publish_hw_counters()
{
    // Delta bookkeeping so `hw/<event>` registry counters stay
    // monotonic across repeated publishes (reports, metric dumps).
    static std::mutex mutex;
    static PerfReading last;

    auto& pc = PerfCounters::instance();
    auto& reg = MetricsRegistry::instance();
    const PerfReading now = pc.read();
    reg.gauge("hw/available").set(now.available ? 1.0 : 0.0);
    if (!now.available)
        return now;
    reg.gauge("hw/multiplex_correction").set(now.multiplex_correction);
    std::lock_guard<std::mutex> lock(mutex);
    const PerfReading d = now.delta_since(last);
    for (std::size_t i = 0; i < kNumPerfEvents; ++i)
        reg.counter(std::string("hw/") + kEventNames[i]).add(d.value[i]);
    last = now;
    return now;
}

} // namespace graphorder::obs
