/**
 * @file
 * Bounded, lane-prioritized job queue — the admission-control core of
 * the reorder service.
 *
 * Three lanes keyed by scheme cost class (0 = near-linear, 1 =
 * linearithmic, 2 = super-linear), so a burst of Gorder requests cannot
 * starve cheap degree-sort traffic.  Capacity is a hard bound across all
 * lanes: a full queue first evicts already-expired queued jobs (their
 * deadline passed while waiting — serving them would waste a worker on
 * an answer nobody can use) and only then rejects the newcomer, which
 * the service surfaces as `Overloaded`.  That is the textbook
 * reject-new / drop-expired combination: bounded memory, no silent
 * tail-latency collapse.
 *
 * Pop order is a fixed weighted round-robin over the lanes
 * ({0,0,0,1,0,1,2}: four high slots, two normal, one low per cycle),
 * falling through to any non-empty lane, so low priority means "served
 * less often", never "served never".
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace graphorder::service {

/** Queueable unit; the server's Job derives from this. */
struct JobBase
{
    virtual ~JobBase() = default;

    int lane = 1; ///< 0 high, 1 normal, 2 low
    std::uint64_t job_id = 0;
    std::chrono::steady_clock::time_point enqueued{};
    bool has_deadline = false;
    /** Absolute point after which the job is not worth running. */
    std::chrono::steady_clock::time_point deadline{};

    bool expired(std::chrono::steady_clock::time_point now) const
    {
        return has_deadline && now >= deadline;
    }
};

class JobQueue
{
  public:
    static constexpr int kLanes = 3;

    explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

    enum class Push
    {
        kOk,
        kFull,    ///< rejected: queue at capacity with no expired slack
        kStopped, ///< rejected: queue is shutting down
    };

    /**
     * Admit @p job (jobs are shared with the server's in-flight map,
     * hence shared_ptr).  When full, expired queued jobs are moved into
     * @p shed_out (the caller answers them `Overloaded`) to make room;
     * kFull is returned only if no room could be made.
     */
    Push push(std::shared_ptr<JobBase> job,
              std::vector<std::shared_ptr<JobBase>>& shed_out);

    /**
     * Block until a job is available or the queue is stopped.
     * @return the next job by lane schedule, or nullptr after stop().
     */
    std::shared_ptr<JobBase> pop();

    /** Wake all poppers; subsequent push() returns kStopped. */
    void stop();

    /** Remove and return every queued job (used at shutdown to answer
     *  them `Unavailable`). */
    std::vector<std::shared_ptr<JobBase>> drain();

    std::size_t depth() const;
    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<JobBase>> lanes_[kLanes];
    std::size_t size_ = 0;
    std::size_t schedule_pos_ = 0;
    bool stopped_ = false;
};

} // namespace graphorder::service
