#include "service/retry.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace graphorder::service {

double
RetryPolicy::delay_ms(int attempt, std::uint64_t job_id) const
{
    if (attempt <= 1)
        return 0;
    double full = base_ms;
    for (int i = 2; i < attempt; ++i)
        full = std::min(full * multiplier, max_delay_ms);
    full = std::min(full, max_delay_ms);

    // Chain splitmix64 over (salt, job, attempt): the same triple always
    // yields the same jitter, independent of call order or thread.
    std::uint64_t state = jitter_seed;
    state ^= splitmix64(state) + job_id;
    state ^= splitmix64(state) + static_cast<std::uint64_t>(attempt);
    const std::uint64_t draw = splitmix64(state);
    const double unit =
        static_cast<double>(draw >> 11) * 0x1.0p-53; // [0, 1)
    return full / 2 + unit * (full / 2);
}

} // namespace graphorder::service
