#include "service/queue.hpp"

namespace graphorder::service {

namespace {

/** Four high slots, two normal, one low per cycle. */
constexpr int kSchedule[] = {0, 0, 0, 1, 0, 1, 2};
constexpr std::size_t kScheduleLen = sizeof(kSchedule) / sizeof(int);

} // namespace

JobQueue::Push
JobQueue::push(std::shared_ptr<JobBase> job,
               std::vector<std::shared_ptr<JobBase>>& shed_out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_)
        return Push::kStopped;
    if (size_ >= capacity_) {
        // Make room by shedding queued jobs whose deadline already
        // passed: they would be dropped by the worker anyway, so evict
        // them now and let a servable job in.
        const auto now = std::chrono::steady_clock::now();
        for (auto& lane : lanes_) {
            for (auto it = lane.begin();
                 it != lane.end() && size_ >= capacity_;) {
                if ((*it)->expired(now)) {
                    shed_out.push_back(std::move(*it));
                    it = lane.erase(it);
                    --size_;
                } else {
                    ++it;
                }
            }
        }
        if (size_ >= capacity_)
            return Push::kFull;
    }
    const int lane = job->lane < 0          ? 1
                     : job->lane >= kLanes ? kLanes - 1
                                           : job->lane;
    lanes_[lane].push_back(std::move(job));
    ++size_;
    cv_.notify_one();
    return Push::kOk;
}

std::shared_ptr<JobBase>
JobQueue::pop()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return size_ > 0 || stopped_; });
    if (size_ == 0)
        return nullptr; // stopped and empty
    // Advance the round-robin schedule; fall through to the next
    // non-empty lane so a slot for an empty lane is never wasted.
    const int want = kSchedule[schedule_pos_ % kScheduleLen];
    ++schedule_pos_;
    for (int off = 0; off < kLanes; ++off) {
        const int lane = (want + off) % kLanes;
        if (!lanes_[lane].empty()) {
            auto job = std::move(lanes_[lane].front());
            lanes_[lane].pop_front();
            --size_;
            return job;
        }
    }
    return nullptr; // unreachable: size_ > 0 implies a non-empty lane
}

void
JobQueue::stop()
{
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    cv_.notify_all();
}

std::vector<std::shared_ptr<JobBase>>
JobQueue::drain()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::shared_ptr<JobBase>> out;
    out.reserve(size_);
    for (auto& lane : lanes_) {
        for (auto& j : lane)
            out.push_back(std::move(j));
        lane.clear();
    }
    size_ = 0;
    return out;
}

std::size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
}

} // namespace graphorder::service
