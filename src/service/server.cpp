#include "service/server.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "gen/datasets.hpp"
#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "order/runner.hpp"
#include "order/scheme.hpp"
#include "util/faultpoint.hpp"

namespace graphorder::service {

namespace {

using Clock = std::chrono::steady_clock;

// ---- fault sites ----------------------------------------------------
// service.proto.parse lives in protocol.cpp; these three cover the
// remaining stages of the request path.
FaultPoint fp_admit{"service.admit", StatusCode::Overloaded,
                    "admission control rejects the request"};
FaultPoint fp_worker_exec{
    "service.worker.exec", StatusCode::Internal,
    "worker execution attempt fails before the scheme runs"};
FaultPoint fp_cache_lookup{
    "service.cache.lookup", StatusCode::Internal,
    "permutation cache lookup fails (absorbed: treated as a miss)"};

// ---- metrics --------------------------------------------------------
obs::CachedCounter c_requests{"service/requests_total"};
obs::CachedCounter c_accepted{"service/accepted"};
obs::CachedCounter c_rejected{"service/rejected"};
obs::CachedCounter c_shed{"service/shed"};
obs::CachedCounter c_retries{"service/retries"};
obs::CachedCounter c_degraded{"service/degraded"};
obs::CachedCounter c_cache_hits{"service/cache_hits"};
obs::CachedCounter c_cache_misses{"service/cache_misses"};
obs::CachedCounter c_cache_errors{"service/cache_errors"};
obs::CachedCounter c_coalesced{"service/coalesced"};
obs::CachedCounter c_completed{"service/completed"};
obs::CachedCounter c_failed{"service/failed"};
obs::CachedCounter c_unavailable{"service/unavailable"};
obs::CachedCounter c_proto_errors{"service/proto_errors"};
obs::CachedGauge g_queue_depth{"service/queue_depth"};

obs::Histogram&
h_latency()
{
    static obs::Histogram& h =
        obs::MetricsRegistry::instance().histogram("service/latency_s");
    return h;
}

obs::Histogram&
h_queue_wait()
{
    static obs::Histogram& h = obs::MetricsRegistry::instance().histogram(
        "service/queue_wait_s");
    return h;
}

obs::Histogram&
h_run()
{
    static obs::Histogram& h =
        obs::MetricsRegistry::instance().histogram("service/run_s");
    return h;
}

double
ms_since(Clock::time_point start, Clock::time_point end)
{
    return std::chrono::duration<double, std::milli>(end - start)
        .count();
}

int
lane_for(CostClass c)
{
    switch (c) {
      case CostClass::NearLinear: return 0;
      case CostClass::Linearithmic: return 1;
      case CostClass::SuperLinear: return 2;
    }
    return 1;
}

bool
write_ranks(const std::string& path, const Permutation& p)
{
    std::ofstream f(path);
    if (!f)
        return false;
    for (const auto r : p.ranks())
        f << r << '\n';
    f.flush();
    return static_cast<bool>(f);
}

} // namespace

// ---- job ------------------------------------------------------------

struct ReorderService::Job : JobBase
{
    struct Waiter
    {
        std::string id;
        std::string output;
        Callback cb;
    };

    CacheKey key;
    bool tracked = false; ///< present in the in-flight map
    bool no_cache = false;
    std::shared_ptr<const Csr> graph;
    const OrderingScheme* scheme = nullptr;
    std::uint64_t seed = 42;

    std::mutex mu; ///< guards waiters (always acquired under inflight_mu_)
    std::vector<Waiter> waiters;
};

// ---- lifecycle ------------------------------------------------------

ReorderService::ReorderService(ServiceOptions opt)
    : opt_(opt), queue_(opt.queue_capacity), cache_(opt.cache_capacity)
{
    workers_.reserve(static_cast<std::size_t>(
        opt_.workers < 0 ? 0 : opt_.workers));
    for (int i = 0; i < opt_.workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ReorderService::~ReorderService()
{
    stop();
}

void
ReorderService::stop()
{
    std::call_once(stop_once_, [this] {
        draining_.store(true, std::memory_order_relaxed);
        queue_.stop();
        {
            std::lock_guard<std::mutex> lock(stop_mu_);
        }
        stop_cv_.notify_all(); // interrupt backoff sleepers
        // Queued-but-never-picked jobs are answered, not dropped: every
        // submit gets exactly one outcome even across shutdown.
        for (auto& jb : queue_.drain()) {
            c_unavailable.add();
            OrderOutcome o;
            o.status = Status(StatusCode::Unavailable,
                              "service stopped before the job ran");
            finish(std::static_pointer_cast<Job>(jb), std::move(o));
        }
        for (auto& t : workers_)
            t.join();
        workers_.clear();
        update_depth_gauge();
    });
}

void
ReorderService::update_depth_gauge()
{
    g_queue_depth.set(static_cast<double>(queue_.depth()));
}

// ---- graph registry -------------------------------------------------

Status
ReorderService::add_graph(const std::string& name, Csr g)
{
    if (name.empty())
        return Status(StatusCode::InvalidInput, "graph name is empty");
    GraphRec rec;
    rec.g = std::make_shared<const Csr>(std::move(g));
    rec.fp = fingerprint(*rec.g);
    std::uint64_t old_fp = 0;
    bool replaced = false;
    {
        std::lock_guard<std::mutex> lock(graphs_mu_);
        auto it = graphs_.find(name);
        if (it != graphs_.end()) {
            replaced = true;
            old_fp = it->second.fp;
        }
        graphs_[name] = rec;
    }
    // Reload invalidation: entries of the replaced graph could never be
    // *served* for the new one (keys carry the fingerprint), but they
    // would pin dead rank vectors in the LRU until natural eviction.
    if (replaced && old_fp != rec.fp)
        cache_.invalidate_fingerprint(old_fp);
    return Status::ok();
}

Status
ReorderService::load_graph(const std::string& name,
                           const std::string& path,
                           const std::string& format)
{
    try {
        std::string fmt = format;
        if (fmt == "auto") {
            const auto dot = path.rfind('.');
            const std::string ext =
                dot == std::string::npos ? "" : path.substr(dot + 1);
            fmt = (ext == "metis" || ext == "graph") ? "metis" : "edges";
        }
        Csr g;
        if (fmt == "metis")
            g = load_metis(path);
        else if (fmt == "edges")
            g = load_edge_list(path);
        else
            return Status(StatusCode::InvalidInput,
                          "unknown graph format '" + format + "'");
        return add_graph(name, std::move(g));
    } catch (...) {
        return status_from_current_exception().with_context(
            "while loading graph '" + name + "' from " + path);
    }
}

Status
ReorderService::gen_graph(const std::string& name,
                          const std::string& dataset, double scale)
{
    try {
        const Dataset& ds = dataset_by_name(dataset);
        return add_graph(name, ds.make(scale));
    } catch (const std::out_of_range&) {
        return Status(StatusCode::InvalidInput,
                      "unknown dataset '" + dataset + "'");
    } catch (...) {
        return status_from_current_exception().with_context(
            "while generating dataset '" + dataset + "'");
    }
}

Status
ReorderService::drop_graph(const std::string& name)
{
    std::uint64_t fp = 0;
    {
        std::lock_guard<std::mutex> lock(graphs_mu_);
        auto it = graphs_.find(name);
        if (it == graphs_.end())
            return Status(StatusCode::InvalidInput,
                          "unknown graph '" + name + "'");
        fp = it->second.fp;
        graphs_.erase(it);
    }
    cache_.invalidate_fingerprint(fp);
    return Status::ok();
}

Status
ReorderService::graph_info(const std::string& name, std::uint64_t& n,
                           std::uint64_t& m) const
{
    std::lock_guard<std::mutex> lock(graphs_mu_);
    const auto it = graphs_.find(name);
    if (it == graphs_.end())
        return Status(StatusCode::InvalidInput,
                      "unknown graph '" + name + "'");
    n = it->second.g->num_vertices();
    m = it->second.g->num_edges();
    return Status::ok();
}

Status
ReorderService::prewarm(const std::string& name,
                        const std::string& scheme, std::uint64_t seed)
{
    GraphRec rec;
    {
        std::lock_guard<std::mutex> lock(graphs_mu_);
        const auto it = graphs_.find(name);
        if (it == graphs_.end())
            return Status(StatusCode::InvalidInput,
                          "unknown graph '" + name + "'");
        rec = it->second;
    }
    GuardedRunOptions gopt;
    gopt.seed = seed;
    gopt.validate = opt_.validate;
    gopt.allow_fallback = false;
    auto r = run_guarded(scheme, *rec.g, gopt);
    if (!r)
        return r.status().with_context("while prewarming '" + scheme
                                       + "' on '" + name + "'");
    auto perm = std::make_shared<const Permutation>(std::move(r->perm));
    CacheEntry entry{perm, r->scheme_used, permutation_fnv(*perm)};
    cache_.insert({rec.fp, scheme, "seed=" + std::to_string(seed)},
                  std::move(entry));
    return Status::ok();
}

// ---- cache ----------------------------------------------------------

bool
ReorderService::cache_lookup_guarded(const CacheKey& key, CacheEntry& out)
{
    // A flaky cache must degrade the service to "compute it again",
    // never take it down: the injected failure is absorbed as a miss.
    try {
        fp_cache_lookup.maybe_fire();
    } catch (...) {
        c_cache_errors.add();
        return false;
    }
    return cache_.lookup(key, out);
}

// ---- submission -----------------------------------------------------

void
ReorderService::submit(const Request& req, Callback cb)
{
    c_requests.add();
    const auto submit_tp = Clock::now();

    auto respond_err = [&](StatusCode code, std::string msg) {
        OrderOutcome o;
        o.status = Status(code, std::move(msg));
        o.id = req.id;
        o.total_ms = ms_since(submit_tp, Clock::now());
        cb(o);
    };

    if (draining_.load(std::memory_order_relaxed)) {
        c_unavailable.add();
        respond_err(StatusCode::Unavailable, "service is draining");
        return;
    }

    GraphRec rec;
    bool have_graph = false;
    {
        std::lock_guard<std::mutex> lock(graphs_mu_);
        const auto it = graphs_.find(req.graph);
        if (it != graphs_.end()) {
            rec = it->second;
            have_graph = true;
        }
    }
    if (!have_graph) {
        respond_err(StatusCode::InvalidInput,
                    "unknown graph '" + req.graph
                        + "' (LOAD or GEN it first)");
        return;
    }
    const OrderingScheme* scheme = nullptr;
    try {
        scheme = &scheme_by_name(req.scheme);
    } catch (const std::out_of_range&) {
        respond_err(StatusCode::InvalidInput,
                    "unknown scheme '" + req.scheme + "'");
        return;
    }

    const CacheKey key{rec.fp, req.scheme,
                       "seed=" + std::to_string(req.seed)};
    auto job = std::make_shared<Job>();

    if (!req.no_cache) {
        // Cache check and single-flight resolution are one critical
        // section: finish() inserts into the cache *before* retiring
        // the in-flight entry, so whichever state a concurrent
        // identical request observes here, it gets an answer without
        // recomputing.
        std::unique_lock<std::mutex> lock(inflight_mu_);
        CacheEntry e;
        if (cache_lookup_guarded(key, e)) {
            lock.unlock();
            c_cache_hits.add();
            c_completed.add();
            OrderOutcome o;
            o.id = req.id;
            o.scheme_used = e.scheme_used;
            o.perm = e.perm;
            o.perm_fnv = e.perm_fnv;
            o.n = e.perm->size();
            o.cached = true;
            o.fell_back = e.scheme_used != req.scheme;
            if (!req.output.empty()
                && !write_ranks(req.output, *e.perm))
                o.status = Status(StatusCode::InvalidInput,
                                  "cannot write output file "
                                      + req.output);
            o.total_ms = ms_since(submit_tp, Clock::now());
            cb(o);
            return;
        }
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            {
                std::lock_guard<std::mutex> jl(it->second->mu);
                it->second->waiters.push_back(
                    {req.id, req.output, std::move(cb)});
            }
            c_coalesced.add();
            return;
        }
        // This request is the leader for its key: the *unique* miss.
        c_cache_misses.add();
        job->tracked = true;
        inflight_[key] = job;
    }

    job->key = key;
    job->no_cache = req.no_cache;
    job->graph = rec.g;
    job->scheme = scheme;
    job->seed = req.seed;
    job->job_id =
        next_job_id_.fetch_add(1, std::memory_order_relaxed);
    job->lane =
        req.priority >= 0 ? req.priority : lane_for(scheme->cost_class);
    job->enqueued = submit_tp;
    const double dl = req.deadline_ms > 0 ? req.deadline_ms
                                          : opt_.default_deadline_ms;
    if (dl > 0) {
        job->has_deadline = true;
        job->deadline =
            submit_tp
            + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(dl));
    }
    job->waiters.push_back({req.id, req.output, std::move(cb)});

    try {
        fp_admit.maybe_fire();
    } catch (...) {
        Status st = status_from_current_exception();
        if (st.code() == StatusCode::Overloaded)
            c_rejected.add();
        OrderOutcome o;
        o.status = std::move(st);
        finish(job, std::move(o));
        return;
    }

    std::vector<std::shared_ptr<JobBase>> shed;
    const auto res = queue_.push(job, shed);
    for (auto& sb : shed) {
        c_shed.add();
        OrderOutcome o;
        o.status = Status(StatusCode::Overloaded,
                          "shed: deadline expired while queued");
        finish(std::static_pointer_cast<Job>(sb), std::move(o));
    }
    switch (res) {
      case JobQueue::Push::kOk:
          c_accepted.add();
          update_depth_gauge();
          return;
      case JobQueue::Push::kStopped: {
          c_unavailable.add();
          OrderOutcome o;
          o.status =
              Status(StatusCode::Unavailable, "service is draining");
          finish(job, std::move(o));
          return;
      }
      case JobQueue::Push::kFull: {
          // Last resort before rejecting: a cached permutation from the
          // scheme's own fallback chain is a *useful* answer under
          // overload — worse locality than asked for, but available
          // now and honestly flagged degraded.
          if (opt_.allow_degraded && !req.no_cache) {
              auto chain = scheme->fallback;
              if (chain.empty())
                  chain = {"natural"};
              for (const auto& fb : chain) {
                  CacheEntry e;
                  if (!cache_lookup_guarded(
                          {key.fingerprint, fb, key.params}, e))
                      continue;
                  c_cache_hits.add();
                  c_degraded.add();
                  OrderOutcome o;
                  o.scheme_used = e.scheme_used;
                  o.perm = e.perm;
                  o.perm_fnv = e.perm_fnv;
                  o.n = e.perm->size();
                  o.cached = true;
                  o.degraded = true;
                  o.fell_back = true;
                  finish(job, std::move(o));
                  return;
              }
          }
          c_rejected.add();
          OrderOutcome o;
          o.status = Status(
              StatusCode::Overloaded,
              "queue full ("
                  + std::to_string(queue_.capacity())
                  + " queued); retry later or lower the request rate");
          finish(job, std::move(o));
          return;
      }
    }
}

OrderOutcome
ReorderService::order(const Request& req)
{
    struct Sync
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        OrderOutcome out;
    };
    auto s = std::make_shared<Sync>();
    submit(req, [s](const OrderOutcome& o) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->out = o;
        s->done = true;
        s->cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(s->mu);
    s->cv.wait(lock, [&] { return s->done; });
    return s->out;
}

// ---- execution ------------------------------------------------------

void
ReorderService::worker_loop()
{
    while (auto jb = queue_.pop()) {
        update_depth_gauge();
        auto job = std::static_pointer_cast<Job>(jb);
        if (job->expired(Clock::now())) {
            c_shed.add();
            OrderOutcome o;
            o.status = Status(StatusCode::Overloaded,
                              "shed: deadline expired while queued");
            o.queue_ms = ms_since(job->enqueued, Clock::now());
            finish(job, std::move(o));
            continue;
        }
        execute(job);
    }
}

bool
ReorderService::backoff_sleep(double ms)
{
    std::unique_lock<std::mutex> lock(stop_mu_);
    return !stop_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(ms), [this] {
            return draining_.load(std::memory_order_relaxed);
        });
}

void
ReorderService::execute(const std::shared_ptr<Job>& job)
{
    OrderOutcome out;
    const auto picked = Clock::now();
    out.queue_ms = ms_since(job->enqueued, picked);
    h_queue_wait().observe(out.queue_ms / 1000.0);

    Status first_failure;
    bool success = false;
    int attempts = 0;
    for (int a = 1; a <= opt_.retry.max_attempts; ++a) {
        if (draining_.load(std::memory_order_relaxed)) {
            if (first_failure.is_ok())
                first_failure = Status(StatusCode::Unavailable,
                                       "service stopped mid-retry");
            break;
        }
        ++attempts;
        Status st;
        try {
            fp_worker_exec.maybe_fire();
            GuardedRunOptions gopt;
            gopt.seed = job->seed;
            gopt.mem_budget_mb = opt_.mem_budget_mb;
            gopt.validate = opt_.validate;
            gopt.allow_fallback = false; // degradation is ours, below
            if (job->has_deadline) {
                const double rem =
                    ms_since(Clock::now(), job->deadline);
                if (rem <= 0)
                    throw GraphorderError(
                        StatusCode::BudgetExceeded,
                        "deadline expired before attempt "
                            + std::to_string(a));
                gopt.deadline_ms = rem;
            }
            auto r = run_guarded(*job->scheme, *job->graph, gopt);
            if (r) {
                out.perm = std::make_shared<const Permutation>(
                    std::move(r->perm));
                out.scheme_used = r->scheme_used;
                out.fell_back = r->fell_back;
                out.run_ms = r->elapsed_s * 1000.0;
                success = true;
                break;
            }
            st = r.status();
        } catch (...) {
            st = status_from_current_exception();
        }
        if (first_failure.is_ok())
            first_failure = st;
        if (!RetryPolicy::retryable(st.code())
            || a == opt_.retry.max_attempts)
            break;
        const double delay = opt_.retry.delay_ms(a + 1, job->job_id);
        if (job->has_deadline
            && ms_since(Clock::now(), job->deadline) <= delay)
            break; // the backoff alone would blow the deadline
        c_retries.add();
        if (!backoff_sleep(delay))
            break; // interrupted by stop()
    }
    out.attempts = attempts;

    if (!success && opt_.allow_degraded
        && first_failure.code() != StatusCode::Unavailable)
        success = degrade(job, out);

    if (!success)
        out.status = first_failure.is_ok()
                         ? Status(StatusCode::Internal,
                                  "no attempt executed")
                         : first_failure;
    finish(job, std::move(out));
}

bool
ReorderService::degrade(const std::shared_ptr<Job>& job,
                        OrderOutcome& out)
{
    auto chain = job->scheme->fallback;
    if (chain.empty())
        chain = {"natural"};

    // Rung 1: actually run the (cheaper) fallback chain, fresh budget
    // per attempt — the same policy run_guarded applies, but here each
    // rung is also behind the service's own fault accounting.
    for (const auto& name : chain) {
        if (name == job->scheme->name)
            continue;
        if (draining_.load(std::memory_order_relaxed))
            return false;
        try {
            GuardedRunOptions gopt;
            gopt.seed = job->seed;
            gopt.mem_budget_mb = opt_.mem_budget_mb;
            gopt.validate = opt_.validate;
            gopt.allow_fallback = false;
            auto r = run_guarded(name, *job->graph, gopt);
            if (!r)
                continue;
            out.perm = std::make_shared<const Permutation>(
                std::move(r->perm));
            out.scheme_used = name;
            out.fell_back = true;
            out.degraded = true;
            out.run_ms = r->elapsed_s * 1000.0;
            c_degraded.add();
            return true;
        } catch (...) {
            // a fallback rung failing is just the next rung's turn
        }
    }

    // Rung 2: any cached permutation of a chain scheme — stale-but-
    // usable beats unavailable.
    for (const auto& name : chain) {
        CacheEntry e;
        if (!cache_lookup_guarded(
                {job->key.fingerprint, name, job->key.params}, e))
            continue;
        out.perm = e.perm;
        out.scheme_used = e.scheme_used;
        out.perm_fnv = e.perm_fnv;
        out.cached = true;
        out.fell_back = true;
        out.degraded = true;
        c_degraded.add();
        return true;
    }
    return false;
}

void
ReorderService::finish(const std::shared_ptr<Job>& job,
                       OrderOutcome base)
{
    if (base.status.is_ok() && base.perm) {
        base.n = base.perm->size();
        if (base.perm_fnv == 0)
            base.perm_fnv = permutation_fnv(*base.perm);
        // Insert *before* retiring the in-flight entry: a concurrent
        // identical submit that misses the in-flight map below is
        // guaranteed to hit the cache (see submit()).
        if (!job->no_cache && !base.cached)
            cache_.insert(job->key, {base.perm, base.scheme_used,
                                     base.perm_fnv});
    }

    std::vector<Job::Waiter> waiters;
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        if (job->tracked) {
            const auto it = inflight_.find(job->key);
            if (it != inflight_.end() && it->second == job)
                inflight_.erase(it);
        }
        std::lock_guard<std::mutex> jl(job->mu);
        waiters = std::move(job->waiters);
        job->waiters.clear();
    }

    base.total_ms = ms_since(job->enqueued, Clock::now());
    h_latency().observe(base.total_ms / 1000.0);
    if (base.run_ms > 0)
        h_run().observe(base.run_ms / 1000.0);
    if (base.status.is_ok())
        c_completed.add();
    else
        c_failed.add();

    bool first = true;
    for (auto& w : waiters) {
        OrderOutcome o = base; // shares the permutation
        o.id = w.id;
        o.coalesced = !first;
        first = false;
        if (o.status.is_ok() && !w.output.empty() && o.perm
            && !write_ranks(w.output, *o.perm))
            o.status = Status(StatusCode::InvalidInput,
                              "cannot write output file " + w.output);
        if (w.cb)
            w.cb(o);
    }
}

// ---- wire protocol --------------------------------------------------

ReorderService::ServeResult
ReorderService::serve_fd(int in_fd, int out_fd)
{
    struct Conn
    {
        int fd;
        std::mutex mu;
        std::condition_variable cv;
        int outstanding = 0;

        void write_line(const std::string& s)
        {
            std::lock_guard<std::mutex> lock(mu);
            std::string line = s;
            line += '\n';
            const char* p = line.data();
            std::size_t left = line.size();
            while (left > 0) {
                const ssize_t n = ::write(fd, p, left);
                if (n < 0 && errno == EINTR)
                    continue;
                if (n <= 0)
                    break; // peer gone; orders still drain
                p += n;
                left -= static_cast<std::size_t>(n);
            }
        }
    };
    auto conn = std::make_shared<Conn>();
    conn->fd = out_fd;

    auto wait_drained = [&conn] {
        std::unique_lock<std::mutex> lock(conn->mu);
        conn->cv.wait(lock, [&] { return conn->outstanding == 0; });
    };
    auto reply_status = [&](const Request& req, const Status& st,
                            std::vector<std::pair<std::string,
                                                  std::string>> kv) {
        if (st.is_ok()) {
            kv.insert(kv.begin(), {"id", req.id.empty() ? "-" : req.id});
            conn->write_line(format_ok(kv));
        } else {
            conn->write_line(format_err(req.id, st));
        }
    };

    LineReader reader(in_fd);
    std::string line;
    for (;;) {
        const auto res = reader.next(line);
        if (res == LineReader::Result::kEof) {
            wait_drained();
            return ServeResult::kEof;
        }
        if (res == LineReader::Result::kOversized) {
            c_proto_errors.add();
            conn->write_line(format_err(
                "-", Status(StatusCode::InvalidInput,
                            "request line exceeds "
                                + std::to_string(kMaxLineBytes)
                                + " bytes")));
            continue;
        }
        if (line.find_first_not_of(" \r") == std::string::npos)
            continue; // blank line (interactive use)

        Request req;
        try {
            req = parse_request(line);
        } catch (...) {
            c_proto_errors.add();
            conn->write_line(
                format_err("-", status_from_current_exception()));
            continue;
        }

        switch (req.verb) {
          case Verb::kPing:
              reply_status(req, Status::ok(), {{"pong", "1"}});
              break;
          case Verb::kStats: {
              std::size_t n_graphs;
              {
                  std::lock_guard<std::mutex> lock(graphs_mu_);
                  n_graphs = graphs_.size();
              }
              reply_status(
                  req, Status::ok(),
                  {{"graphs", std::to_string(n_graphs)},
                   {"queue_depth", std::to_string(queue_.depth())},
                   {"cache_size", std::to_string(cache_.size())},
                   {"accepted",
                    std::to_string(c_accepted.get().value())},
                   {"rejected",
                    std::to_string(c_rejected.get().value())},
                   {"shed", std::to_string(c_shed.get().value())},
                   {"retries", std::to_string(c_retries.get().value())},
                   {"degraded",
                    std::to_string(c_degraded.get().value())},
                   {"cache_hits",
                    std::to_string(c_cache_hits.get().value())},
                   {"cache_misses",
                    std::to_string(c_cache_misses.get().value())},
                   {"coalesced",
                    std::to_string(c_coalesced.get().value())}});
              break;
          }
          case Verb::kLoad: {
              const Status st =
                  load_graph(req.graph, req.path, req.format);
              std::uint64_t n = 0, m = 0;
              if (st.is_ok())
                  graph_info(req.graph, n, m);
              reply_status(req, st,
                           {{"graph", req.graph},
                            {"n", std::to_string(n)},
                            {"m", std::to_string(m)}});
              break;
          }
          case Verb::kGen: {
              const Status st =
                  gen_graph(req.graph, req.dataset, req.scale);
              std::uint64_t n = 0, m = 0;
              if (st.is_ok())
                  graph_info(req.graph, n, m);
              reply_status(req, st,
                           {{"graph", req.graph},
                            {"n", std::to_string(n)},
                            {"m", std::to_string(m)}});
              break;
          }
          case Verb::kDrop:
              reply_status(req, drop_graph(req.graph),
                           {{"graph", req.graph}});
              break;
          case Verb::kOrder: {
              {
                  std::lock_guard<std::mutex> lock(conn->mu);
                  ++conn->outstanding;
              }
              submit(req, [conn](const OrderOutcome& o) {
                  conn->write_line(format_outcome(o));
                  std::lock_guard<std::mutex> lock(conn->mu);
                  --conn->outstanding;
                  conn->cv.notify_all();
              });
              break;
          }
          case Verb::kQuit:
              wait_drained();
              reply_status(req, Status::ok(), {{"bye", "1"}});
              return ServeResult::kQuit;
          case Verb::kShutdown:
              wait_drained();
              reply_status(req, Status::ok(), {{"bye", "1"}});
              return ServeResult::kShutdown;
        }
    }
}

} // namespace graphorder::service
