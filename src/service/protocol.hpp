/**
 * @file
 * Line protocol of the multi-tenant reorder service
 * (`graphorder.service.v1`).
 *
 * Newline-delimited ASCII, one request or response per line, so the
 * daemon is equally drivable over TCP, a socketpair, or a Unix pipe
 * (`reorderd --stdio`).  Requests are `VERB key=value key=value ...`;
 * responses are `OK key=value ...` or `ERR id=<id> code=<status-name>
 * msg=<text to end of line>`.  `msg` is always the *last* response
 * field and runs to end of line, so error text needs no quoting.
 *
 * Verbs:
 *   ORDER graph=G scheme=S [seed=N] [deadline_ms=X]
 *         [priority=high|normal|low] [id=TAG] [no_cache=1] [output=PATH]
 *   LOAD  graph=G path=FILE [format=edges|metis|auto]   (re-LOAD of an
 *         existing name swaps the graph and invalidates its cache)
 *   GEN   graph=G dataset=NAME [scale=S]
 *   DROP  graph=G
 *   STATS | PING | QUIT | SHUTDOWN
 *
 * Hardening contract (mirrors the PR 5 parser hardening): every parse
 * failure — malformed verb, unknown/duplicate/oversized field, bad
 * number, truncated frame — throws GraphorderError(InvalidInput), which
 * the connection loop answers with a per-request `ERR` line and keeps
 * the connection (and the daemon) alive.  The 400-trial mutation fuzz
 * in tests/service_test.cpp pins this.  Fault site `service.proto.parse`
 * injects a parse failure for the chaos tests.
 *
 * Responses deliberately carry a permutation *fingerprint* (FNV-1a over
 * the rank vector), not the permutation itself: multi-megabyte rank
 * dumps do not belong on the control channel.  Clients that want the
 * ranks pass `output=PATH` and the daemon writes them server-side.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/permutation.hpp"
#include "util/status.hpp"

namespace graphorder::service {

/** Hard cap on one protocol line (bytes, excluding the newline);
 *  longer frames are answered `ERR code=invalid-input` and skipped. */
inline constexpr std::size_t kMaxLineBytes = 4096;
/** Hard cap on one `key=value` value. */
inline constexpr std::size_t kMaxValueBytes = 1024;
/** Hard cap on fields per request. */
inline constexpr std::size_t kMaxFields = 64;

enum class Verb
{
    kOrder,
    kLoad,
    kGen,
    kDrop,
    kStats,
    kPing,
    kQuit,
    kShutdown,
};

/** Wire name of a verb ("ORDER", ...); static, never null. */
const char* verb_name(Verb v);

/** One parsed request; fields beyond the verb's schema keep defaults. */
struct Request
{
    Verb verb = Verb::kPing;
    std::string id; ///< optional client tag, echoed in the response

    // ORDER
    std::string graph;
    std::string scheme;
    std::uint64_t seed = 42;
    double deadline_ms = 0; ///< 0 = service default / none
    /** Queue lane: 0 high, 1 normal, 2 low; -1 = derive from the
     *  scheme's registered cost class. */
    int priority = -1;
    bool no_cache = false; ///< bypass cache and coalescing
    std::string output;    ///< server-side rank-dump path; empty = none

    // LOAD / GEN / DROP
    std::string path;
    std::string format = "auto"; ///< edges | metis | auto
    std::string dataset;
    double scale = 1.0;
};

/**
 * Parse one request line (no trailing newline; a trailing '\r' is
 * stripped).  @throws GraphorderError(InvalidInput) on any malformation;
 * the message names the offending token.
 */
Request parse_request(const std::string& line);

/** Everything an ORDER answer carries; also the in-process result type
 *  of ReorderService::order(). */
struct OrderOutcome
{
    Status status; ///< Ok, or why the request failed
    std::string id;
    std::string scheme_used; ///< scheme that produced the permutation
    std::uint64_t perm_fnv = 0; ///< FNV-1a over the rank vector
    std::uint64_t n = 0;        ///< vertices in the permutation
    bool cached = false;    ///< answered from the permutation cache
    bool coalesced = false; ///< rode an identical in-flight request
    bool degraded = false;  ///< fallback-chain / cached-lightweight answer
    bool fell_back = false; ///< scheme_used != requested scheme
    int attempts = 0;       ///< execution attempts (retries + 1)
    double queue_ms = 0;    ///< admission -> worker pickup
    double run_ms = 0;      ///< successful attempt wall time
    double total_ms = 0;    ///< admission -> response
    /** The permutation itself (in-process consumers only; never on the
     *  wire). */
    std::shared_ptr<const Permutation> perm;
};

/** Serialize an outcome as one `OK ...` / `ERR ...` line (no '\n'). */
std::string format_outcome(const OrderOutcome& o);

/** `OK k=v k=v ...` from explicit pairs (control-verb answers). */
std::string
format_ok(const std::vector<std::pair<std::string, std::string>>& kv);

/** `ERR id=<id> code=<name> msg=<text>`; empty id becomes "-". */
std::string format_err(const std::string& id, const Status& st);

/** Client-side view of one response line. */
struct Response
{
    bool ok = false;
    StatusCode code = StatusCode::Ok; ///< parsed from `code=` on ERR
    std::vector<std::pair<std::string, std::string>> kv;
    std::string msg; ///< ERR trailing text

    /** First value for @p key, or @p fallback. */
    const std::string& get(const std::string& key,
                           const std::string& fallback = "") const;
};

/**
 * Parse one response line.  @throws GraphorderError(InvalidInput) when
 * the line is neither `OK ...` nor `ERR ...`.
 */
Response parse_response(const std::string& line);

/** FNV-1a over raw bytes (the hash behind `perm_fnv`). */
std::uint64_t fnv1a64(const void* data, std::size_t len);

/** FNV-1a over a permutation's rank vector. */
std::uint64_t permutation_fnv(const Permutation& p);

/**
 * Incremental newline framing over a file descriptor, enforcing
 * kMaxLineBytes: an overlong frame is reported once as kOversized and
 * the stream resynchronizes at the next newline.  A final unterminated
 * line before EOF is delivered as a normal line (pipes end that way).
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    enum class Result
    {
        kLine,
        kEof,
        kOversized,
    };

    /** Blocking read of the next frame into @p out. */
    Result next(std::string& out);

  private:
    int fd_;
    std::string buf_;
    bool discarding_ = false;
};

} // namespace graphorder::service
