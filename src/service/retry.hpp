/**
 * @file
 * Retry policy of the reorder service: bounded attempts with
 * exponential backoff and deterministic equal jitter.
 *
 * Only *transient* taxonomy categories are retried: Internal (the bucket
 * injected faults and unexpected kernel errors land in) and
 * BudgetExceeded (a deadline blown under momentary contention can
 * succeed on a quieter queue).  InvalidInput / InvariantViolation are
 * deterministic — retrying them burns a worker for the same answer — and
 * Cancelled / Overloaded / Unavailable mean the caller or the service
 * itself asked us to stop.
 *
 * Jitter is derived from splitmix64 over (seed, job id, attempt), not
 * from a global RNG or the clock, so a chaos run replays with identical
 * sleep schedules and the tests can assert exact delays.  The "equal
 * jitter" shape (half the exponential delay fixed, half uniform) keeps a
 * floor under the spread so retries never stampede at t=0.
 */
#pragma once

#include <cstdint>

#include "util/status.hpp"

namespace graphorder::service {

struct RetryPolicy
{
    int max_attempts = 3;       ///< total attempts (first try included)
    double base_ms = 5;         ///< delay before attempt 2
    double multiplier = 2;      ///< exponential growth per attempt
    double max_delay_ms = 250;  ///< cap on any single delay
    std::uint64_t jitter_seed = 0x5e77ce; ///< service-wide jitter salt

    /** Should a failure with @p code be retried at all? */
    static bool retryable(StatusCode code)
    {
        return code == StatusCode::Internal
               || code == StatusCode::BudgetExceeded;
    }

    /**
     * Deterministic backoff before attempt @p attempt (2-based: the
     * delay slept after attempt N failed is delay_ms(N+1, ...)) of job
     * @p job_id.  Equal jitter: half of min(base * mult^(attempt-2),
     * max_delay) fixed, half drawn uniformly via splitmix64.
     */
    double delay_ms(int attempt, std::uint64_t job_id) const;
};

} // namespace graphorder::service
