/**
 * @file
 * LRU permutation cache of the reorder service.
 *
 * Keyed by (graph fingerprint, scheme, params): the *fingerprint* — not
 * the graph name — so re-LOADing a graph under the same name can never
 * serve a stale permutation (the new fingerprint simply misses), and two
 * names bound to identical graphs share entries.  `invalidate` by
 * fingerprint still exists for eager reclamation on reload/DROP.
 *
 * Entries hold shared_ptr<const Permutation>; a hit hands out the same
 * immutable object concurrently without copying the rank vector.
 * Single-flight coalescing of concurrent identical misses lives in the
 * server (it needs the job machinery), not here — this class is a plain
 * bounded map under one mutex.
 */
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/permutation.hpp"

namespace graphorder::service {

struct CacheKey
{
    std::uint64_t fingerprint = 0; ///< graph fingerprint (csr.hpp)
    std::string scheme;            ///< *requested* scheme name
    std::string params;            ///< canonical extras, e.g. "seed=42"

    bool operator==(const CacheKey& o) const
    {
        return fingerprint == o.fingerprint && scheme == o.scheme
               && params == o.params;
    }
};

struct CacheKeyHash
{
    std::size_t operator()(const CacheKey& k) const
    {
        std::size_t h = std::hash<std::uint64_t>{}(k.fingerprint);
        h ^= std::hash<std::string>{}(k.scheme) + 0x9e3779b9
             + (h << 6) + (h >> 2);
        h ^= std::hash<std::string>{}(k.params) + 0x9e3779b9
             + (h << 6) + (h >> 2);
        return h;
    }
};

struct CacheEntry
{
    std::shared_ptr<const Permutation> perm;
    std::string scheme_used; ///< may differ from key when degraded
    std::uint64_t perm_fnv = 0;
};

class PermutationCache
{
  public:
    explicit PermutationCache(std::size_t capacity)
        : capacity_(capacity)
    {
    }

    /** Copy of the entry (shared perm), promoting it to most-recent. */
    bool lookup(const CacheKey& key, CacheEntry& out);

    /** Insert or overwrite; evicts least-recently-used past capacity.
     *  A capacity of 0 disables the cache entirely. */
    void insert(const CacheKey& key, CacheEntry entry);

    /** Drop every entry for @p fingerprint (graph reloaded/dropped).
     *  @return entries removed. */
    std::size_t invalidate_fingerprint(std::uint64_t fingerprint);

    void clear();
    std::size_t size() const;

  private:
    using LruList = std::list<std::pair<CacheKey, CacheEntry>>;

    const std::size_t capacity_;
    mutable std::mutex mu_;
    LruList lru_; ///< front = most recent
    std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> map_;
};

} // namespace graphorder::service
