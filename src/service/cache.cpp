#include "service/cache.hpp"

namespace graphorder::service {

bool
PermutationCache::lookup(const CacheKey& key, CacheEntry& out)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end())
        return false;
    lru_.splice(lru_.begin(), lru_, it->second); // promote
    out = it->second->second;
    return true;
}

void
PermutationCache::insert(const CacheKey& key, CacheEntry entry)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
        it->second->second = std::move(entry);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(entry));
    map_[key] = lru_.begin();
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

std::size_t
PermutationCache::invalidate_fingerprint(std::uint64_t fingerprint)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t removed = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->first.fingerprint == fingerprint) {
            map_.erase(it->first);
            it = lru_.erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    return removed;
}

void
PermutationCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
}

std::size_t
PermutationCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

} // namespace graphorder::service
