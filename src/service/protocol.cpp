#include "service/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "util/faultpoint.hpp"

namespace graphorder::service {

namespace {

// Chaos-test hook: makes "the parser itself blew up" an injectable
// event, distinct from genuinely malformed input.  The connection loop
// answers either with a per-request ERR line and carries on.
FaultPoint fp_proto_parse{
    "service.proto.parse", StatusCode::InvalidInput,
    "request line fails to parse regardless of its content"};

[[noreturn]] void
bad(const std::string& what)
{
    throw GraphorderError(StatusCode::InvalidInput,
                          "protocol: " + what);
}

/** Split on single spaces; empty tokens (runs of spaces) are skipped. */
std::vector<std::string>
tokenize(const std::string& line)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < line.size()) {
        const std::size_t sp = line.find(' ', pos);
        const std::size_t end = sp == std::string::npos ? line.size() : sp;
        if (end > pos)
            out.push_back(line.substr(pos, end - pos));
        if (out.size() > kMaxFields)
            bad("too many fields (max "
                + std::to_string(kMaxFields) + ")");
        pos = end + 1;
    }
    return out;
}

std::uint64_t
parse_u64(const std::string& key, const std::string& value)
{
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE
        || value[0] == '-')
        bad("field '" + key + "': not a non-negative integer: '" + value
            + "'");
    return v;
}

double
parse_double(const std::string& key, const std::string& value)
{
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !(v >= 0)
        || !(v < 1e18))
        bad("field '" + key + "': not a finite non-negative number: '"
            + value + "'");
    return v;
}

bool
parse_bool(const std::string& key, const std::string& value)
{
    if (value == "1")
        return true;
    if (value == "0")
        return false;
    bad("field '" + key + "': expected 0 or 1, got '" + value + "'");
}

const std::map<std::string, Verb>&
verb_table()
{
    static const std::map<std::string, Verb> t = {
        {"ORDER", Verb::kOrder},   {"LOAD", Verb::kLoad},
        {"GEN", Verb::kGen},       {"DROP", Verb::kDrop},
        {"STATS", Verb::kStats},   {"PING", Verb::kPing},
        {"QUIT", Verb::kQuit},     {"SHUTDOWN", Verb::kShutdown},
    };
    return t;
}

std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
ms_str(double ms)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", ms);
    return buf;
}

/** Reverse of status_code_name; Internal for unknown labels (a client
 *  talking to a newer server must not crash on a new code). */
StatusCode
status_code_from_name(const std::string& name)
{
    static const StatusCode all[] = {
        StatusCode::Ok,           StatusCode::InvalidInput,
        StatusCode::Truncated,    StatusCode::BudgetExceeded,
        StatusCode::Cancelled,    StatusCode::InvariantViolation,
        StatusCode::Internal,     StatusCode::Overloaded,
        StatusCode::Unavailable,
    };
    for (StatusCode c : all)
        if (name == status_code_name(c))
            return c;
    return StatusCode::Internal;
}

} // namespace

const char*
verb_name(Verb v)
{
    switch (v) {
      case Verb::kOrder: return "ORDER";
      case Verb::kLoad: return "LOAD";
      case Verb::kGen: return "GEN";
      case Verb::kDrop: return "DROP";
      case Verb::kStats: return "STATS";
      case Verb::kPing: return "PING";
      case Verb::kQuit: return "QUIT";
      case Verb::kShutdown: return "SHUTDOWN";
    }
    return "?";
}

Request
parse_request(const std::string& raw)
{
    fp_proto_parse.maybe_fire();

    std::string line = raw;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    if (line.size() > kMaxLineBytes)
        bad("line exceeds " + std::to_string(kMaxLineBytes) + " bytes");
    for (char c : line)
        if (c == '\0' || (static_cast<unsigned char>(c) < 0x20
                          && c != ' '))
            bad("control byte in request line");

    const auto tokens = tokenize(line);
    if (tokens.empty())
        bad("empty request");
    const auto vit = verb_table().find(tokens[0]);
    if (vit == verb_table().end())
        bad("unknown verb '" + tokens[0] + "'");

    Request req;
    req.verb = vit->second;

    std::map<std::string, std::string> kv;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& tok = tokens[i];
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            bad("expected key=value, got '" + tok + "'");
        std::string key = tok.substr(0, eq);
        std::string value = tok.substr(eq + 1);
        if (value.size() > kMaxValueBytes)
            bad("field '" + key + "': value exceeds "
                + std::to_string(kMaxValueBytes) + " bytes");
        if (!kv.emplace(std::move(key), std::move(value)).second)
            bad("duplicate field '" + tok.substr(0, eq) + "'");
    }

    // Per-verb schema: every present key must be known, and required
    // keys must be present.  Unknown keys are rejected rather than
    // ignored so a typo ("schem=") cannot silently pick defaults.
    auto take = [&kv](const char* key) {
        auto it = kv.find(key);
        if (it == kv.end())
            return std::pair<bool, std::string>{false, {}};
        std::pair<bool, std::string> out{true, std::move(it->second)};
        kv.erase(it);
        return out;
    };
    auto require = [&take](const char* key) {
        auto [present, value] = take(key);
        if (!present || value.empty())
            bad(std::string("missing required field '") + key + "'");
        return value;
    };

    if (auto [p, v] = take("id"); p)
        req.id = v;

    switch (req.verb) {
      case Verb::kOrder: {
          req.graph = require("graph");
          req.scheme = require("scheme");
          if (auto [p, v] = take("seed"); p)
              req.seed = parse_u64("seed", v);
          if (auto [p, v] = take("deadline_ms"); p)
              req.deadline_ms = parse_double("deadline_ms", v);
          if (auto [p, v] = take("priority"); p) {
              if (v == "high")
                  req.priority = 0;
              else if (v == "normal")
                  req.priority = 1;
              else if (v == "low")
                  req.priority = 2;
              else
                  bad("field 'priority': expected high|normal|low, got '"
                      + v + "'");
          }
          if (auto [p, v] = take("no_cache"); p)
              req.no_cache = parse_bool("no_cache", v);
          if (auto [p, v] = take("output"); p)
              req.output = v;
          break;
      }
      case Verb::kLoad: {
          req.graph = require("graph");
          req.path = require("path");
          if (auto [p, v] = take("format"); p) {
              if (v != "edges" && v != "metis" && v != "auto")
                  bad("field 'format': expected edges|metis|auto, got '"
                      + v + "'");
              req.format = v;
          }
          break;
      }
      case Verb::kGen: {
          req.graph = require("graph");
          req.dataset = require("dataset");
          if (auto [p, v] = take("scale"); p) {
              req.scale = parse_double("scale", v);
              if (req.scale < 1.0)
                  bad("field 'scale': must be >= 1");
          }
          break;
      }
      case Verb::kDrop:
          req.graph = require("graph");
          break;
      case Verb::kStats:
      case Verb::kPing:
      case Verb::kQuit:
      case Verb::kShutdown:
          break;
    }

    if (!kv.empty())
        bad("unknown field '" + kv.begin()->first + "' for "
            + verb_name(req.verb));
    return req;
}

std::string
format_outcome(const OrderOutcome& o)
{
    if (!o.status.is_ok())
        return format_err(o.id, o.status);
    std::string s = "OK id=";
    s += o.id.empty() ? "-" : o.id;
    s += " scheme=" + o.scheme_used;
    s += " n=" + std::to_string(o.n);
    s += " perm_fnv=" + hex64(o.perm_fnv);
    s += std::string(" cached=") + (o.cached ? "1" : "0");
    s += std::string(" coalesced=") + (o.coalesced ? "1" : "0");
    s += std::string(" degraded=") + (o.degraded ? "1" : "0");
    s += std::string(" fell_back=") + (o.fell_back ? "1" : "0");
    s += " attempts=" + std::to_string(o.attempts);
    s += " queue_ms=" + ms_str(o.queue_ms);
    s += " run_ms=" + ms_str(o.run_ms);
    s += " total_ms=" + ms_str(o.total_ms);
    return s;
}

std::string
format_ok(const std::vector<std::pair<std::string, std::string>>& kv)
{
    std::string s = "OK";
    for (const auto& [k, v] : kv)
        s += " " + k + "=" + (v.empty() ? "-" : v);
    return s;
}

std::string
format_err(const std::string& id, const Status& st)
{
    std::string s = "ERR id=";
    s += id.empty() ? "-" : id;
    s += " code=";
    s += status_code_name(st.code());
    // msg is the final field by contract: it runs to end of line, so the
    // human-readable text (which may contain spaces) needs no quoting.
    std::string text = st.to_string();
    for (char& c : text)
        if (c == '\n' || c == '\r')
            c = ' ';
    s += " msg=" + text;
    return s;
}

const std::string&
Response::get(const std::string& key, const std::string& fallback) const
{
    for (const auto& [k, v] : kv)
        if (k == key)
            return v;
    return fallback;
}

Response
parse_response(const std::string& raw)
{
    std::string line = raw;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();

    Response r;
    std::size_t pos;
    if (line.rfind("OK", 0) == 0
        && (line.size() == 2 || line[2] == ' ')) {
        r.ok = true;
        pos = 2;
    } else if (line.rfind("ERR", 0) == 0
               && (line.size() == 3 || line[3] == ' ')) {
        r.ok = false;
        pos = 3;
    } else {
        bad("response line is neither OK nor ERR: '" + line + "'");
    }

    while (pos < line.size()) {
        while (pos < line.size() && line[pos] == ' ')
            ++pos;
        if (pos >= line.size())
            break;
        if (line.compare(pos, 4, "msg=") == 0) {
            r.msg = line.substr(pos + 4); // runs to end of line
            break;
        }
        const std::size_t sp = line.find(' ', pos);
        const std::size_t end = sp == std::string::npos ? line.size() : sp;
        const std::string tok = line.substr(pos, end - pos);
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            bad("response token is not key=value: '" + tok + "'");
        r.kv.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
        pos = end;
    }
    if (!r.ok)
        r.code = status_code_from_name(r.get("code", "internal"));
    return r;
}

std::uint64_t
fnv1a64(const void* data, std::size_t len)
{
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
permutation_fnv(const Permutation& p)
{
    const auto& ranks = p.ranks();
    return fnv1a64(ranks.data(), ranks.size() * sizeof(ranks[0]));
}

LineReader::Result
LineReader::next(std::string& out)
{
    out.clear();
    for (;;) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (discarding_) { // tail of an oversized frame
                discarding_ = false;
                continue;
            }
            if (line.size() > kMaxLineBytes) {
                // The newline arrived in the same chunk that blew the
                // cap: still an oversized frame, already resynced.
                return Result::kOversized;
            }
            out = std::move(line);
            return Result::kLine;
        }
        if (!discarding_ && buf_.size() > kMaxLineBytes) {
            // Frame too long: report once, then swallow bytes through
            // the next newline so the stream resynchronizes.
            buf_.clear();
            discarding_ = true;
            return Result::kOversized;
        }
        char chunk[4096];
        ssize_t n;
        do {
            n = ::read(fd_, chunk, sizeof chunk);
        } while (n < 0 && errno == EINTR);
        if (n < 0)
            return Result::kEof; // connection error == end of stream
        if (n == 0) {
            if (!buf_.empty() && !discarding_) {
                out = std::move(buf_); // unterminated final line
                buf_.clear();
                return Result::kLine;
            }
            return Result::kEof;
        }
        if (discarding_) {
            // Only keep bytes from the resync newline onward.
            const char* p =
                static_cast<const char*>(memchr(chunk, '\n', n));
            if (p != nullptr) {
                discarding_ = false;
                buf_.append(p + 1, chunk + n - (p + 1));
            }
            continue;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace graphorder::service
