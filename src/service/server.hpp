/**
 * @file
 * ReorderService: the resilient multi-tenant reorder daemon core.
 *
 * Request path (DESIGN.md §16):
 *
 *   submit ─▶ cache lookup ─▶ single-flight coalesce ─▶ admission
 *          (hit: answer)    (ride identical in-flight)  (bounded queue,
 *                                                        priority lanes,
 *                                                        shed expired,
 *                                                        else Overloaded)
 *          ─▶ worker: run_guarded under per-request deadline/memory
 *             budgets, retry transient failures with exponential
 *             backoff + deterministic jitter
 *          ─▶ on exhausted retries: degrade — run the fallback chain,
 *             else answer a cached lightweight permutation, always
 *             flagged `degraded=1`
 *          ─▶ deliver to every coalesced waiter; successful leaders
 *             populate the permutation cache.
 *
 * All tenant state (named graphs, cache, queue) lives in the service
 * object: tests run several isolated instances in one process, the
 * daemon (`tools/reorderd`) runs one.  Thread-safety: every public
 * method is safe to call concurrently; callbacks run on worker threads
 * (or the submitting thread for immediate answers) and must not block
 * for long.
 *
 * Fault sites `service.{admit,worker.exec,cache.lookup,proto.parse}`
 * plus the preexisting `order.*` sites make the whole ladder chaos-
 * testable: tests/service_test.cpp sweeps them under concurrent load
 * and asserts no crash, no stuck job, and counter deltas matching the
 * injected faults.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/retry.hpp"
#include "util/status.hpp"

namespace graphorder::service {

struct ServiceOptions
{
    int workers = 2;
    std::size_t queue_capacity = 64;
    std::size_t cache_capacity = 256;
    RetryPolicy retry;
    /** Applied to requests that carry no deadline_ms; 0 = none. */
    double default_deadline_ms = 0;
    /** Per-attempt memory budget handed to run_guarded; 0 = none. */
    std::uint64_t mem_budget_mb = 0;
    bool validate = true;
    /** Degrade (fallback chain, cached lightweight) instead of failing
     *  when retries are exhausted or admission is impossible. */
    bool allow_degraded = true;
};

class ReorderService
{
  public:
    explicit ReorderService(ServiceOptions opt = {});
    ~ReorderService(); ///< stop()s if still running

    ReorderService(const ReorderService&) = delete;
    ReorderService& operator=(const ReorderService&) = delete;

    // ---- tenant graph registry --------------------------------------
    /** Load from file; re-LOAD of an existing name swaps the graph and
     *  invalidates its cache entries.  format: edges|metis|auto. */
    Status load_graph(const std::string& name, const std::string& path,
                      const std::string& format = "auto");
    /** Generate a named synthetic instance (gen/datasets.hpp). */
    Status gen_graph(const std::string& name, const std::string& dataset,
                     double scale = 1.0);
    /** Register an already-built graph (tests, bench, prewarm). */
    Status add_graph(const std::string& name, Csr g);
    Status drop_graph(const std::string& name);
    /** Vertices/edges of a registered graph; InvalidInput when absent. */
    Status graph_info(const std::string& name, std::uint64_t& n,
                      std::uint64_t& m) const;

    /**
     * Synchronously compute (scheme, seed) on @p name and populate the
     * cache — seeds the degraded-answer path and daemon warmup.
     */
    Status prewarm(const std::string& name, const std::string& scheme,
                   std::uint64_t seed = 42);

    // ---- ordering ----------------------------------------------------
    using Callback = std::function<void(const OrderOutcome&)>;

    /**
     * Asynchronous ORDER.  Exactly one callback per submit, always —
     * rejected, shed, drained and failed requests all get an outcome
     * whose status says why.  The callback may run on the submitting
     * thread (cache hit / rejection) or a worker thread.
     */
    void submit(const Request& req, Callback cb);

    /** Synchronous wrapper around submit(). */
    OrderOutcome order(const Request& req);

    // ---- wire protocol ----------------------------------------------
    enum class ServeResult
    {
        kEof,      ///< peer closed the stream
        kQuit,     ///< client sent QUIT (connection ends, daemon lives)
        kShutdown, ///< client sent SHUTDOWN (daemon should stop)
    };

    /**
     * Serve one connection: read request lines from @p in_fd, write one
     * response line per request to @p out_fd.  Malformed lines get an
     * `ERR` and the connection survives.  Blocks until EOF / QUIT /
     * SHUTDOWN, then waits for this connection's in-flight orders.
     */
    ServeResult serve_fd(int in_fd, int out_fd);

    /**
     * Drain and stop: new submits answer `Unavailable`, queued jobs are
     * answered `Unavailable`, running jobs finish, workers join.
     * Idempotent.
     */
    void stop();

    std::size_t queue_depth() const { return queue_.depth(); }
    const ServiceOptions& options() const { return opt_; }

  private:
    struct Job;
    struct GraphRec
    {
        std::shared_ptr<const Csr> g;
        std::uint64_t fp = 0;
    };

    void worker_loop();
    void execute(const std::shared_ptr<Job>& job);
    /** Answer every waiter and retire the job from the in-flight map. */
    void finish(const std::shared_ptr<Job>& job, OrderOutcome base);
    bool degrade(const std::shared_ptr<Job>& job, OrderOutcome& out);
    /** Cache lookup with the service.cache.lookup fault absorbed. */
    bool cache_lookup_guarded(const CacheKey& key, CacheEntry& out);
    /** Sleep @p ms unless stop() interrupts; false when interrupted. */
    bool backoff_sleep(double ms);
    void update_depth_gauge();

    ServiceOptions opt_;
    JobQueue queue_;
    PermutationCache cache_;

    mutable std::mutex graphs_mu_;
    std::unordered_map<std::string, GraphRec> graphs_;

    std::mutex inflight_mu_;
    std::unordered_map<CacheKey, std::shared_ptr<Job>, CacheKeyHash>
        inflight_;

    std::atomic<bool> draining_{false};
    std::atomic<std::uint64_t> next_job_id_{1};
    std::mutex stop_mu_;
    std::condition_variable stop_cv_;
    std::vector<std::thread> workers_;
    std::once_flag stop_once_;
};

} // namespace graphorder::service
