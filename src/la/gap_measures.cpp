#include "la/gap_measures.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace graphorder {

vid_t
edge_gap(const Permutation& pi, vid_t i, vid_t j)
{
    const vid_t ri = pi.rank(i);
    const vid_t rj = pi.rank(j);
    return ri > rj ? ri - rj : rj - ri;
}

GapMetrics
compute_gap_metrics(const Csr& g, const Permutation& pi)
{
    const vid_t n = g.num_vertices();
    if (pi.size() != n)
        throw std::invalid_argument("gap metrics: permutation size");

    GapMetrics m;
    double sum_gap = 0.0, sum_log = 0.0, sum_bw = 0.0, envelope = 0.0;
    vid_t max_gap = 0;
    for (vid_t v = 0; v < n; ++v) {
        vid_t bw_v = 0;
        const vid_t rv = pi.rank(v);
        vid_t leftmost = rv;
        for (vid_t w : g.neighbors(v)) {
            const vid_t gap = edge_gap(pi, v, w);
            bw_v = std::max(bw_v, gap);
            leftmost = std::min(leftmost, pi.rank(w));
            if (v < w) { // count each undirected edge once
                sum_gap += gap;
                sum_log += std::log2(1.0 + gap);
            }
        }
        envelope += static_cast<double>(rv - leftmost);
        sum_bw += bw_v;
        max_gap = std::max(max_gap, bw_v);
    }
    m.envelope = envelope;
    const double me = static_cast<double>(std::max<eid_t>(g.num_edges(), 1));
    m.total_gap = sum_gap;
    m.avg_gap = sum_gap / me;
    m.log_gap = sum_log / me;
    m.bandwidth = max_gap;
    m.avg_bandwidth = n ? sum_bw / static_cast<double>(n) : 0.0;
    return m;
}

GapMetrics
compute_gap_metrics(const Csr& g)
{
    return compute_gap_metrics(g, Permutation::identity(g.num_vertices()));
}

std::vector<double>
gap_profile(const Csr& g, const Permutation& pi)
{
    std::vector<double> gaps;
    gaps.reserve(g.num_edges());
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        for (vid_t w : g.neighbors(v))
            if (v < w)
                gaps.push_back(static_cast<double>(edge_gap(pi, v, w)));
    return gaps;
}

std::vector<vid_t>
vertex_bandwidths(const Csr& g, const Permutation& pi)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> bw(n, 0);
    for (vid_t v = 0; v < n; ++v)
        for (vid_t w : g.neighbors(v))
            bw[v] = std::max(bw[v], edge_gap(pi, v, w));
    return bw;
}

GapDistribution
gap_distribution(const Csr& g, const Permutation& pi)
{
    GapDistribution d;
    auto gaps = gap_profile(g, pi);
    for (double x : gaps)
        d.histogram.add(x);
    d.summary = summarize(std::move(gaps));
    return d;
}

} // namespace graphorder
