#include "la/gap_measures.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/compressed_csr.hpp"
#include "util/parallel.hpp"

namespace graphorder {

namespace {

/** Per-chunk partial sums for the deterministic metric reduction. */
struct GapPartial
{
    double sum_gap = 0.0;
    double sum_log = 0.0;
    double sum_bw = 0.0;
    double envelope = 0.0;
    vid_t max_gap = 0;
};

// Chunk size of the vertex-block decomposition.  Chunk boundaries depend
// only on n, never on the thread count, so the serial combine below adds
// the same partials in the same order no matter how many threads ran —
// bit-identical floating-point results for any team size (and equal to
// the old serial code whenever a single chunk covers the graph).
constexpr std::size_t kGapGrain = 2048;

} // namespace

vid_t
edge_gap(const Permutation& pi, vid_t i, vid_t j)
{
    const vid_t ri = pi.rank(i);
    const vid_t rj = pi.rank(j);
    return ri > rj ? ri - rj : rj - ri;
}

GapMetrics
compute_gap_metrics(const Csr& g, const Permutation& pi)
{
    const vid_t n = g.num_vertices();
    if (pi.size() != n)
        throw std::invalid_argument("gap metrics: permutation size");

    GapMetrics m;
    if (n == 0)
        return m;

    const std::size_t nb = num_blocks(n, kGapGrain);
    std::vector<GapPartial> part(nb);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        GapPartial p;
        for (std::size_t sv = lo; sv < hi; ++sv) {
            const vid_t v = static_cast<vid_t>(sv);
            vid_t bw_v = 0;
            const vid_t rv = pi.rank(v);
            vid_t leftmost = rv;
            for (vid_t w : g.neighbors(v)) {
                const vid_t gap = edge_gap(pi, v, w);
                bw_v = std::max(bw_v, gap);
                leftmost = std::min(leftmost, pi.rank(w));
                if (v < w) { // count each undirected edge once
                    p.sum_gap += gap;
                    p.sum_log += std::log2(1.0 + gap);
                }
            }
            p.envelope += static_cast<double>(rv - leftmost);
            p.sum_bw += bw_v;
            p.max_gap = std::max(p.max_gap, bw_v);
        }
        part[b] = p;
    }

    // Serial combine in chunk order: the FP addition order is fixed.
    GapPartial tot;
    for (const auto& p : part) {
        tot.sum_gap += p.sum_gap;
        tot.sum_log += p.sum_log;
        tot.sum_bw += p.sum_bw;
        tot.envelope += p.envelope;
        tot.max_gap = std::max(tot.max_gap, p.max_gap);
    }

    const double me = static_cast<double>(std::max<eid_t>(g.num_edges(), 1));
    m.envelope = tot.envelope;
    m.total_gap = tot.sum_gap;
    m.avg_gap = tot.sum_gap / me;
    m.log_gap = tot.sum_log / me;
    m.bandwidth = tot.max_gap;
    m.avg_bandwidth = tot.sum_bw / static_cast<double>(n);
    return m;
}

GapMetrics
compute_gap_metrics(const Csr& g)
{
    return compute_gap_metrics(g, Permutation::identity(g.num_vertices()));
}

std::vector<double>
gap_profile(const Csr& g, const Permutation& pi)
{
    const vid_t n = g.num_vertices();
    const std::size_t nb = num_blocks(n, kGapGrain);
    const int threads = default_threads();

    // Count the v<w edges per block, scan, then fill each block's slice;
    // the output keeps the serial (source-major, adjacency) edge order.
    std::vector<std::size_t> cnt(nb + 1, 0);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        std::size_t c = 0;
        for (std::size_t sv = lo; sv < hi; ++sv)
            for (vid_t w : g.neighbors(static_cast<vid_t>(sv)))
                if (static_cast<vid_t>(sv) < w)
                    ++c;
        cnt[b] = c;
    }
    const std::size_t total = exclusive_prefix_sum(cnt);

    std::vector<double> gaps(total);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        std::size_t pos = cnt[b];
        for (std::size_t sv = lo; sv < hi; ++sv) {
            const vid_t v = static_cast<vid_t>(sv);
            for (vid_t w : g.neighbors(v))
                if (v < w)
                    gaps[pos++] =
                        static_cast<double>(edge_gap(pi, v, w));
        }
    }
    return gaps;
}

std::vector<vid_t>
vertex_bandwidths(const Csr& g, const Permutation& pi)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> bw(n, 0);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(dynamic, 1024)
    for (vid_t v = 0; v < n; ++v)
        for (vid_t w : g.neighbors(v))
            bw[v] = std::max(bw[v], edge_gap(pi, v, w));
    return bw;
}

namespace {

CompressionStats
stats_from_encode(const Csr& g)
{
    // The coder carries no weights; stats describe the unweighted
    // structure, so strip them rather than reject weighted inputs.
    const CompressedCsr c = g.weighted()
        ? CompressedCsr::encode(Csr(g.offsets(), g.adjacency()))
        : CompressedCsr::encode(g);
    const auto& b = c.breakdown();
    CompressionStats s;
    s.encoded_bytes = b.total_bytes();
    const vid_t n = g.num_vertices();
    if (const double arcs = static_cast<double>(g.num_arcs()); arcs > 0) {
        s.bits_per_edge = 8.0 * static_cast<double>(b.total_bytes()) / arcs;
        s.gap_bits_per_edge = 8.0 * static_cast<double>(b.gap_bytes) / arcs;
        s.ref_bits_per_edge =
            8.0 * static_cast<double>(b.reference_bytes) / arcs;
        s.res_bits_per_edge =
            8.0 * static_cast<double>(b.residual_bytes) / arcs;
    }
    if (n > 0)
        s.ref_vertex_fraction = static_cast<double>(b.ref_vertices)
            / static_cast<double>(n);
    return s;
}

} // namespace

CompressionStats
compute_compression_stats(const Csr& g, const Permutation& pi)
{
    if (pi.size() != g.num_vertices())
        throw std::invalid_argument("compression stats: permutation size");
    return stats_from_encode(apply_permutation(g, pi));
}

CompressionStats
compute_compression_stats(const Csr& g)
{
    return stats_from_encode(g);
}

GapDistribution
gap_distribution(const Csr& g, const Permutation& pi)
{
    GapDistribution d;
    auto gaps = gap_profile(g, pi);
    for (double x : gaps)
        d.histogram.add(x);
    d.summary = summarize(std::move(gaps));
    return d;
}

} // namespace graphorder
