/**
 * @file
 * Linear-arrangement "gap" measures (paper §II-A).
 *
 * For an ordering Pi of an undirected graph G=(V,E):
 *
 *  - gap of an edge (i,j):        xi(i,j) = |Pi(i) - Pi(j)|
 *  - average gap profile:         xi_hat  = (1/|E|) * sum_E xi(i,j)
 *  - vertex bandwidth:            beta_i  = max_{j in N(i)} xi(i,j)
 *  - graph bandwidth:             beta    = max_E xi(i,j)
 *  - average graph bandwidth:     beta_hat= (1/|V|) * sum_V beta_v
 *  - log-gap (MinLogA objective): (1/|E|) * sum_E log2(1 + xi(i,j))
 *
 * Lower is better for all of them.  RCM targets beta; partition/community
 * schemes target xi_hat; MinLogA matters for compression.
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/permutation.hpp"
#include "util/stats.hpp"

namespace graphorder {

/** All global gap metrics for one (graph, ordering) pair. */
struct GapMetrics
{
    double avg_gap = 0.0;       ///< xi_hat, average linear arrangement gap
    vid_t bandwidth = 0;        ///< beta, graph bandwidth (max gap)
    double avg_bandwidth = 0.0; ///< beta_hat, mean vertex bandwidth
    double log_gap = 0.0;       ///< MinLogA-style mean log2(1+gap)
    double total_gap = 0.0;     ///< sum of gaps (MinLA objective)
    /**
     * Matrix envelope (a.k.a. profile): sum over vertices of the
     * distance from each row's diagonal to its leftmost nonzero,
     * sum_v max(0, rank(v) - min_{u in N(v)} rank(u)).  The storage cost
     * of an envelope/skyline Cholesky factorization — the quantity RCM
     * was originally built to shrink (George & Liu 1981).
     */
    double envelope = 0.0;
};

/**
 * Gap of a single edge under @p pi.
 *
 * Preconditions: i, j < pi.size().  Complexity: O(1).  Thread-safety:
 * pure read of @p pi, safe to call concurrently.
 */
vid_t edge_gap(const Permutation& pi, vid_t i, vid_t j);

/**
 * Compute all global gap metrics of @p g under @p pi.
 *
 * Preconditions: pi.size() == g.num_vertices() (throws
 * std::invalid_argument otherwise).
 * Complexity: O(|V| + |E|) work, parallel over fixed-size vertex chunks
 * with a serial chunk-order combine — the floating-point sums are
 * bit-identical for every thread count (see DESIGN.md "Parallelism &
 * determinism").
 * Thread-safety: reads only; safe to call concurrently.  Spawns its own
 * OpenMP team sized by default_threads().
 */
GapMetrics compute_gap_metrics(const Csr& g, const Permutation& pi);

/**
 * Metrics of the natural (identity) order of @p g.
 * Same contract as the two-argument overload.
 */
GapMetrics compute_gap_metrics(const Csr& g);

/**
 * Full per-edge gap profile (one entry per undirected edge) — the sample
 * behind the violin plots of Fig. 8.
 *
 * Preconditions: pi.size() == g.num_vertices().
 * Complexity: O(|V| + |E|), parallel count + prefix-sum + fill; entries
 * appear in source-major adjacency order, identical to the serial scan.
 * Thread-safety: reads only; safe to call concurrently.
 */
std::vector<double> gap_profile(const Csr& g, const Permutation& pi);

/**
 * Per-vertex bandwidths beta_v.
 *
 * Preconditions: pi.size() == g.num_vertices().
 * Complexity: O(|V| + |E|), embarrassingly parallel per vertex (each
 * output slot is written by exactly one iteration).
 * Thread-safety: reads only; safe to call concurrently.
 */
std::vector<vid_t> vertex_bandwidths(const Csr& g, const Permutation& pi);

/**
 * Violin-plot substitute: summary + log10 histogram of the gap profile
 * (counts per decade), capturing the multi-modality / lognormal tails the
 * paper reads off the violins.
 */
struct GapDistribution
{
    Summary summary;
    LogHistogram histogram{10.0};
};

/**
 * Summarize the gap profile of @p g under @p pi.
 *
 * Preconditions: pi.size() == g.num_vertices().
 * Complexity: O(|E| log |E|) (the summary sorts the profile); the
 * profile itself is built in parallel.
 * Thread-safety: reads only; safe to call concurrently.
 */
GapDistribution gap_distribution(const Csr& g, const Permutation& pi);

/**
 * Compression-aware gap measures: what the ordering's gaps cost in
 * *bytes* when the adjacency is stored delta/reference-encoded
 * (graph/compressed_csr.hpp).  The realized counterpart of log_gap —
 * log2(1+gap) is the information content of one gap, bits_per_edge is
 * what the actual varint/reference coder achieves.
 */
struct CompressionStats
{
    double bits_per_edge = 0.0;     ///< total encoded bits / num_arcs
    double gap_bits_per_edge = 0.0; ///< gap-coded neighbor varints
    double ref_bits_per_edge = 0.0; ///< headers + copy masks
    double res_bits_per_edge = 0.0; ///< residual varints
    std::uint64_t encoded_bytes = 0;
    /** Fraction of vertices whose list chose reference mode. */
    double ref_vertex_fraction = 0.0;
};

/**
 * Encode @p g (weights ignored — stats describe the unweighted
 * structure) under ordering @p pi and report the size breakdown.
 *
 * Preconditions: pi.size() == g.num_vertices() (throws
 * std::invalid_argument otherwise).
 * Complexity: O(|V| + |E| * ref_window) — it applies the permutation and
 * runs the parallel deterministic encoder; results are identical for
 * every thread count.
 * Thread-safety: reads only; safe to call concurrently.
 */
CompressionStats compute_compression_stats(const Csr& g,
                                           const Permutation& pi);

/** Compression stats of the natural (identity) order of @p g. */
CompressionStats compute_compression_stats(const Csr& g);

} // namespace graphorder
