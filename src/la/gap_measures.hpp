/**
 * @file
 * Linear-arrangement "gap" measures (paper §II-A).
 *
 * For an ordering Pi of an undirected graph G=(V,E):
 *
 *  - gap of an edge (i,j):        xi(i,j) = |Pi(i) - Pi(j)|
 *  - average gap profile:         xi_hat  = (1/|E|) * sum_E xi(i,j)
 *  - vertex bandwidth:            beta_i  = max_{j in N(i)} xi(i,j)
 *  - graph bandwidth:             beta    = max_E xi(i,j)
 *  - average graph bandwidth:     beta_hat= (1/|V|) * sum_V beta_v
 *  - log-gap (MinLogA objective): (1/|E|) * sum_E log2(1 + xi(i,j))
 *
 * Lower is better for all of them.  RCM targets beta; partition/community
 * schemes target xi_hat; MinLogA matters for compression.
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/permutation.hpp"
#include "util/stats.hpp"

namespace graphorder {

/** All global gap metrics for one (graph, ordering) pair. */
struct GapMetrics
{
    double avg_gap = 0.0;       ///< xi_hat, average linear arrangement gap
    vid_t bandwidth = 0;        ///< beta, graph bandwidth (max gap)
    double avg_bandwidth = 0.0; ///< beta_hat, mean vertex bandwidth
    double log_gap = 0.0;       ///< MinLogA-style mean log2(1+gap)
    double total_gap = 0.0;     ///< sum of gaps (MinLA objective)
    /**
     * Matrix envelope (a.k.a. profile): sum over vertices of the
     * distance from each row's diagonal to its leftmost nonzero,
     * sum_v max(0, rank(v) - min_{u in N(v)} rank(u)).  The storage cost
     * of an envelope/skyline Cholesky factorization — the quantity RCM
     * was originally built to shrink (George & Liu 1981).
     */
    double envelope = 0.0;
};

/** Gap of a single edge under @p pi. */
vid_t edge_gap(const Permutation& pi, vid_t i, vid_t j);

/** Compute all global gap metrics of @p g under @p pi. */
GapMetrics compute_gap_metrics(const Csr& g, const Permutation& pi);

/** Metrics of the natural (identity) order of @p g. */
GapMetrics compute_gap_metrics(const Csr& g);

/**
 * Full per-edge gap profile (one entry per undirected edge) — the sample
 * behind the violin plots of Fig. 8.
 */
std::vector<double> gap_profile(const Csr& g, const Permutation& pi);

/** Per-vertex bandwidths beta_v. */
std::vector<vid_t> vertex_bandwidths(const Csr& g, const Permutation& pi);

/**
 * Violin-plot substitute: summary + log10 histogram of the gap profile
 * (counts per decade), capturing the multi-modality / lognormal tails the
 * paper reads off the violins.
 */
struct GapDistribution
{
    Summary summary;
    LogHistogram histogram{10.0};
};

GapDistribution gap_distribution(const Csr& g, const Permutation& pi);

} // namespace graphorder
