#include "order/runner.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/faultpoint.hpp"

namespace graphorder {

namespace {

// Simulates the guarded run's own budget machinery reporting an
// out-of-memory condition (bad_alloc surfaced as BudgetExceeded); fired
// at attempt start so the fallback walk is exercised end to end.
FaultPoint fp_order_oom{
    "order.oom", StatusCode::BudgetExceeded,
    "guarded attempt fails as if an allocation blew the memory budget"};

/**
 * One attempt: fresh token with the per-attempt budgets, run, validate
 * the permutation.  Failures come back as a non-ok Status; the elapsed
 * time of the attempt (successful or not) is written to @p elapsed_s.
 */
Status
attempt_once(const OrderingScheme& s, const Csr& g,
             const GuardedRunOptions& opt, Permutation& out,
             double& elapsed_s)
{
    CancelToken token({opt.deadline_ms,
                       opt.mem_budget_mb * std::uint64_t{1} << 20});
    ScopedCancelToken scope(token);
    try {
        fp_order_oom.maybe_fire();
        Permutation pi = s.run(g, opt.seed);
        elapsed_s = token.elapsed_ms() * 1e-3;
        if (opt.validate) {
            Status v = validate_permutation(pi, g.num_vertices());
            if (!v.is_ok())
                return v.with_context("validating output of '" + s.name
                                      + "'");
        }
        out = std::move(pi);
        return Status::ok();
    } catch (...) {
        elapsed_s = token.elapsed_ms() * 1e-3;
        return status_from_current_exception()
            .with_context("running scheme '" + s.name + "'");
    }
}

} // namespace

Expected<GuardedRunResult>
run_guarded(const OrderingScheme& scheme, const Csr& g,
            const GuardedRunOptions& opt)
{
    GO_TRACE_SCOPE("robust/run_guarded");
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("robust/guarded_runs").add();

    if (opt.validate) {
        Status v = g.validate();
        if (!v.is_ok()) {
            reg.counter("robust/failures").add();
            return v.with_context("validating input graph for '"
                                  + scheme.name + "'");
        }
    }

    // The attempt chain: the requested scheme, then its fallback names.
    //
    // Walk semantics (the contract docs/scheme-selection.md publishes
    // per scheme):
    //  - Chain source precedence: opt.fallback_override when non-empty,
    //    else the scheme's registered `fallback` metadata, else the
    //    {"natural"} terminator — so every chain terminates even for
    //    schemes registered without metadata.
    //  - opt.allow_fallback == false leaves the chain empty: the
    //    requested scheme gets exactly one attempt.
    //  - Names resolve lazily, one at a time: an unregistered entry is
    //    recorded as an InvalidInput AttemptFailure and the walk simply
    //    continues, so one bad entry only costs its own attempt.
    //  - Each attempt gets a *fresh* CancelToken (attempt_once), i.e.
    //    the full deadline/memory budget — a fallback is not penalized
    //    for the time its predecessor burned.
    //  - The chain is not followed transitively: only the requested
    //    scheme's own chain is walked, never the fallbacks' fallbacks.
    //  - `fell_back` is true only when the *successful* scheme differs
    //    from the requested one ("natural" falling back to "natural"
    //    after a one-shot fault counts as a plain success).
    std::vector<std::string> chain;
    if (opt.allow_fallback) {
        chain = !opt.fallback_override.empty() ? opt.fallback_override
                : !scheme.fallback.empty()     ? scheme.fallback
                                               : std::vector<std::string>{
                                                     "natural"};
    }

    GuardedRunResult result;
    std::vector<AttemptFailure> failures;

    auto try_scheme = [&](const OrderingScheme& s) -> bool {
        double elapsed_s = 0;
        Permutation pi;
        Status st = attempt_once(s, g, opt, pi, elapsed_s);
        if (st.is_ok()) {
            result.perm = std::move(pi);
            result.scheme_used = s.name;
            result.elapsed_s = elapsed_s;
            return true;
        }
        reg.counter("robust/failures").add();
        if (st.code() == StatusCode::BudgetExceeded
            || st.code() == StatusCode::Cancelled)
            reg.counter("robust/budget_exceeded").add();
        failures.push_back({s.name, std::move(st)});
        return false;
    };

    bool ok = try_scheme(scheme);
    if (!ok) {
        for (const auto& name : chain) {
            const OrderingScheme* next = nullptr;
            try {
                next = &scheme_by_name(name);
            } catch (const std::out_of_range&) {
                failures.push_back(
                    {name, Status(StatusCode::InvalidInput,
                                  "fallback scheme '" + name
                                      + "' is not registered")});
                continue;
            }
            if (try_scheme(*next)) {
                ok = true;
                result.fell_back = result.scheme_used != scheme.name;
                if (result.fell_back)
                    reg.counter("robust/fallbacks").add();
                break;
            }
        }
    }

    if (!ok) {
        std::string tried;
        for (const auto& f : failures) {
            if (!tried.empty())
                tried += ", ";
            tried += f.scheme;
        }
        Status first = failures.front().status;
        return first.with_context("guarded run of '" + scheme.name
                                  + "' (attempted: " + tried + ")");
    }
    result.failures = std::move(failures);
    return result;
}

Expected<GuardedRunResult>
run_guarded(const std::string& scheme_name, const Csr& g,
            const GuardedRunOptions& opt)
{
    try {
        return run_guarded(scheme_by_name(scheme_name), g, opt);
    } catch (const std::out_of_range& e) {
        return Status(StatusCode::InvalidInput, e.what());
    }
}

} // namespace graphorder
