#include "order/slashburn.hpp"

#include <algorithm>
#include <numeric>

#include "util/cancel.hpp"

namespace graphorder {

namespace {

/** Degrees restricted to alive vertices. */
void
alive_degrees(const Csr& g, const std::vector<std::uint8_t>& alive,
              std::vector<vid_t>& deg)
{
    const vid_t n = g.num_vertices();
    deg.assign(n, 0);
    for (vid_t v = 0; v < n; ++v) {
        if (!alive[v])
            continue;
        vid_t d = 0;
        for (vid_t u : g.neighbors(v))
            if (alive[u])
                ++d;
        deg[v] = d;
    }
}

/** Connected components of the alive subgraph. */
vid_t
alive_components(const Csr& g, const std::vector<std::uint8_t>& alive,
                 std::vector<vid_t>& comp)
{
    const vid_t n = g.num_vertices();
    comp.assign(n, kNoVertex);
    vid_t next = 0;
    std::vector<vid_t> stack;
    for (vid_t s = 0; s < n; ++s) {
        if (!alive[s] || comp[s] != kNoVertex)
            continue;
        comp[s] = next;
        stack.push_back(s);
        while (!stack.empty()) {
            const vid_t v = stack.back();
            stack.pop_back();
            for (vid_t u : g.neighbors(v)) {
                if (alive[u] && comp[u] == kNoVertex) {
                    comp[u] = next;
                    stack.push_back(u);
                }
            }
        }
        ++next;
    }
    return next;
}

} // namespace

Permutation
slashburn_order(const Csr& g, vid_t k)
{
    const vid_t n = g.num_vertices();
    if (k == 0)
        k = std::max<vid_t>(1, n / 200);

    std::vector<vid_t> rank(n, kNoVertex);
    std::vector<std::uint8_t> alive(n, 1);
    vid_t front = 0;       // next low id to hand out (hubs)
    vid_t back = n;        // one past the next high id (spokes)
    vid_t alive_count = n;

    std::vector<vid_t> deg, comp, ids;
    while (alive_count > 0) {
        checkpoint("slashburn/round");
        if (alive_count <= k) {
            // Terminal round: remaining vertices become hubs up front.
            ids.clear();
            for (vid_t v = 0; v < n; ++v)
                if (alive[v])
                    ids.push_back(v);
            alive_degrees(g, alive, deg);
            std::stable_sort(ids.begin(), ids.end(), [&](vid_t a, vid_t b) {
                return deg[a] > deg[b];
            });
            for (vid_t v : ids)
                rank[v] = front++;
            break;
        }

        // Slash: remove the k highest-degree alive vertices.
        alive_degrees(g, alive, deg);
        ids.clear();
        for (vid_t v = 0; v < n; ++v)
            if (alive[v])
                ids.push_back(v);
        std::stable_sort(ids.begin(), ids.end(), [&](vid_t a, vid_t b) {
            return deg[a] > deg[b];
        });
        for (vid_t i = 0; i < k; ++i) {
            const vid_t hub = ids[i];
            rank[hub] = front++;
            alive[hub] = 0;
            --alive_count;
        }

        // Burn: spokes (all but the giant component) go to the back,
        // ordered by decreasing component size.
        const vid_t ncomp = alive_components(g, alive, comp);
        if (ncomp == 0)
            break;
        std::vector<vid_t> sizes(ncomp, 0);
        for (vid_t v = 0; v < n; ++v)
            if (alive[v])
                ++sizes[comp[v]];
        vid_t giant = 0;
        for (vid_t c = 1; c < ncomp; ++c)
            if (sizes[c] > sizes[giant])
                giant = c;

        std::vector<vid_t> spoke_comps;
        for (vid_t c = 0; c < ncomp; ++c)
            if (c != giant)
                spoke_comps.push_back(c);
        std::stable_sort(spoke_comps.begin(), spoke_comps.end(),
                         [&](vid_t a, vid_t b) {
                             return sizes[a] < sizes[b];
                         });
        // Smallest component placed last (deepest at the back): assign
        // from the back in increasing size order.
        for (vid_t c : spoke_comps) {
            // Members in natural order, assigned a contiguous back block.
            back -= sizes[c];
            vid_t slot = back;
            for (vid_t v = 0; v < n; ++v) {
                if (alive[v] && comp[v] == c) {
                    rank[v] = slot++;
                    alive[v] = 0;
                    --alive_count;
                }
            }
        }
    }

    // Any leftover (empty alive set edge cases) gets remaining front slots.
    for (vid_t v = 0; v < n; ++v)
        if (rank[v] == kNoVertex)
            rank[v] = front++;
    return Permutation::from_ranks(std::move(rank));
}

} // namespace graphorder
