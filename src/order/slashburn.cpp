#include "order/slashburn.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace graphorder {

namespace {

/** Degrees restricted to alive vertices (parallel, per-vertex writes). */
void
alive_degrees(const Csr& g, const std::vector<std::uint8_t>& alive,
              std::vector<vid_t>& deg)
{
    const vid_t n = g.num_vertices();
    deg.assign(n, 0);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (vid_t v = 0; v < n; ++v) {
        if (!alive[v])
            continue;
        vid_t d = 0;
        for (vid_t u : g.neighbors(v))
            if (alive[u])
                ++d;
        deg[v] = d;
    }
}

/** Max accumulator for chunk_ordered_reduce. */
struct MaxVid
{
    vid_t v = 0;
    MaxVid& operator+=(const MaxVid& o)
    {
        v = std::max(v, o.v);
        return *this;
    }
};

/**
 * Connected components of the alive subgraph by deterministic min-label
 * propagation: every alive vertex starts labelled with its own id, each
 * sweep pulls the minimum label over alive neighbors (double-buffered),
 * then pointer-jumps labels to their current fixed point so long paths
 * converge in O(log n) sweeps instead of O(diameter).  The fixed point —
 * each vertex labelled with the minimum id of its component — is unique,
 * so the result is schedule- and thread-count-independent.
 *
 * @return number of label-propagation + jump iterations (telemetry).
 */
std::size_t
alive_components(const Csr& g, const std::vector<std::uint8_t>& alive,
                 std::vector<vid_t>& comp, std::vector<vid_t>& next)
{
    const vid_t n = g.num_vertices();
    comp.assign(n, kNoVertex);
    next.assign(n, kNoVertex);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (vid_t v = 0; v < n; ++v)
        if (alive[v])
            comp[v] = v;

    std::size_t iters = 0;
    for (bool changed = true; changed;) {
        checkpoint("slashburn/cc");
        ++iters;
        std::atomic<int> any{0};
        #pragma omp parallel for num_threads(default_threads()) \
            schedule(static)
        for (vid_t v = 0; v < n; ++v) {
            if (!alive[v])
                continue;
            vid_t m = comp[v];
            for (vid_t u : g.neighbors(v))
                if (alive[u] && comp[u] < m)
                    m = comp[u];
            next[v] = m;
            if (m != comp[v])
                any.store(1, std::memory_order_relaxed);
        }
        comp.swap(next);
        changed = any.load(std::memory_order_relaxed) != 0;

        // Pointer jumping: labels are alive vertex ids, so comp[comp[v]]
        // is defined; iterate to the current fixed point.
        for (bool jumped = true; jumped;) {
            std::atomic<int> jmp{0};
            #pragma omp parallel for num_threads(default_threads()) \
                schedule(static)
            for (vid_t v = 0; v < n; ++v) {
                if (!alive[v])
                    continue;
                const vid_t r = comp[comp[v]];
                next[v] = r;
                if (r != comp[v])
                    jmp.store(1, std::memory_order_relaxed);
            }
            comp.swap(next);
            jumped = jmp.load(std::memory_order_relaxed) != 0;
            if (jumped)
                ++iters;
        }
    }
    return iters;
}

} // namespace

Permutation
slashburn_order(const Csr& g, vid_t k)
{
    const vid_t n = g.num_vertices();
    if (k == 0)
        k = std::max<vid_t>(1, n / 200);

    std::vector<vid_t> rank(n, kNoVertex);
    std::vector<std::uint8_t> alive(n, 1);
    vid_t front = 0;       // next low id to hand out (hubs)
    vid_t back = n;        // one past the next high id (spokes)
    vid_t alive_count = n;

    std::vector<vid_t> deg, comp, scratch, sizes, spoke_rank;
    std::size_t rounds = 0, cc_iters = 0;

    // Alive vertices by (degree desc, id asc) — the slash order.  Dead
    // vertices key past the degree range so the first alive_count
    // entries are exactly the alive set in slash order; this reproduces
    // std::stable_sort by descending alive-degree via one deterministic
    // parallel counting sort.
    auto slash_order = [&](vid_t max_deg) {
        return stable_order_by_key<vid_t>(
            n, static_cast<std::size_t>(max_deg) + 2, [&](vid_t v) {
                return alive[v]
                           ? static_cast<std::size_t>(max_deg - deg[v])
                           : static_cast<std::size_t>(max_deg) + 1;
            });
    };

    while (alive_count > 0) {
        checkpoint("slashburn/round");
        ++rounds;

        GO_TRACE_SCOPE("slashburn/round");
        alive_degrees(g, alive, deg);
        const vid_t max_deg =
            chunk_ordered_reduce<MaxVid>(
                n, std::size_t{1} << 15,
                [&](std::size_t lo, std::size_t hi) {
                    MaxVid m;
                    for (std::size_t i = lo; i < hi; ++i)
                        m.v = std::max(m.v, deg[i]);
                    return m;
                })
                .v;
        const auto by_deg = slash_order(max_deg);

        if (alive_count <= k) {
            // Terminal round: remaining vertices become hubs up front.
            for (vid_t i = 0; i < alive_count; ++i)
                rank[by_deg[i]] = front++;
            break;
        }

        // Slash: remove the k highest-degree alive vertices.
        for (vid_t i = 0; i < k; ++i) {
            const vid_t hub = by_deg[i];
            rank[hub] = front++;
            alive[hub] = 0;
            --alive_count;
        }

        // Burn: spokes (all but the giant component) go to the back,
        // ordered by decreasing component size (smallest deepest).
        cc_iters += alive_components(g, alive, comp, scratch);
        sizes.assign(n, 0);
        #pragma omp parallel for num_threads(default_threads()) \
            schedule(static)
        for (vid_t v = 0; v < n; ++v) {
            if (!alive[v])
                continue;
            #pragma omp atomic
            ++sizes[comp[v]];
        }

        // Roots in ascending label order; giant = max size, tie min label.
        std::vector<vid_t> roots;
        for (vid_t v = 0; v < n; ++v)
            if (alive[v] && comp[v] == v)
                roots.push_back(v);
        if (roots.empty())
            break; // unreachable: alive_count > 0 after the slash
        vid_t giant = roots.front();
        for (vid_t r : roots)
            if (sizes[r] > sizes[giant])
                giant = r;

        // Address-ascending spoke order: (size desc, label asc).
        std::vector<vid_t> spokes;
        for (vid_t r : roots)
            if (r != giant)
                spokes.push_back(r);
        std::sort(spokes.begin(), spokes.end(), [&](vid_t a, vid_t b) {
            return sizes[a] != sizes[b] ? sizes[a] > sizes[b] : a < b;
        });
        vid_t total_spokes = 0;
        spoke_rank.assign(n, 0);
        for (std::size_t i = 0; i < spokes.size(); ++i) {
            spoke_rank[spokes[i]] = static_cast<vid_t>(i);
            total_spokes += sizes[spokes[i]];
        }
        if (total_spokes > 0) {
            // One counting sort groups every spoke vertex by its
            // component's address rank, members ascending-id within.
            const std::size_t nspokes = spokes.size();
            const auto grouped = stable_order_by_key<vid_t>(
                n, nspokes + 1, [&](vid_t v) {
                    return (alive[v] && comp[v] != giant)
                               ? static_cast<std::size_t>(
                                     spoke_rank[comp[v]])
                               : nspokes;
                });
            const vid_t base = back - total_spokes;
            #pragma omp parallel for num_threads(default_threads()) \
                schedule(static)
            for (vid_t i = 0; i < total_spokes; ++i) {
                const vid_t v = grouped[i];
                rank[v] = base + i;
                alive[v] = 0;
            }
            back = base;
            alive_count -= total_spokes;
        }
    }

    // Any leftover (empty alive set edge cases) gets remaining front slots.
    for (vid_t v = 0; v < n; ++v)
        if (rank[v] == kNoVertex)
            rank[v] = front++;

    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("order/slashburn/parallel_rounds").add(rounds);
    reg.counter("order/slashburn/parallel_cc_iters").add(cc_iters);
    return Permutation::from_ranks(std::move(rank));
}

} // namespace graphorder
