/**
 * @file
 * Gorder (Wei, Yu, Lu, Lin — SIGMOD 2016; paper §III-C).
 *
 * Window-based greedy: vertices are emitted one at a time; the next vertex
 * is the one maximizing the GScore against the last w emitted vertices,
 * where GScore(u, v) = S_s(u, v) + S_n(u, v): the number of common
 * neighbors plus the number of edges between u and v.  Implemented with
 * the unit-increment lazy priority queue of the original paper: when a
 * vertex enters (leaves) the window, the keys of its neighbors and of its
 * neighbors' neighbors are incremented (decremented).
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Gorder tuning knobs. */
struct GorderOptions
{
    /** Sliding window length (the paper and Wei et al. use w = 5). */
    vid_t window = 5;
    /**
     * Skip sibling-score propagation through vertices of degree above
     * this cutoff.  Scoring through a hub of degree d costs O(d) per
     * window event; the cutoff bounds the overall cost near
     * O(sum of squared degrees) without changing low-degree behaviour.
     * 0 = no cutoff.
     */
    vid_t hub_cutoff = 2048;
};

/** Compute the Gorder permutation. */
Permutation gorder_order(const Csr& g, const GorderOptions& opt = {});

/**
 * GScore of a full ordering: sum over all emitted positions of the scores
 * between each vertex and its w predecessors.  Used by tests to verify
 * Gorder beats random on locality-friendly graphs.
 */
double gscore(const Csr& g, const Permutation& pi, vid_t window = 5);

} // namespace graphorder
