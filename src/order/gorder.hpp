/**
 * @file
 * Gorder (Wei, Yu, Lu, Lin — SIGMOD 2016; paper §III-C).
 *
 * Window-based greedy: vertices are emitted one at a time; the next vertex
 * is the one maximizing the GScore against the last w emitted vertices,
 * where GScore(u, v) = S_s(u, v) + S_n(u, v): the number of common
 * neighbors plus the number of edges between u and v.  Implemented with
 * the unit-increment lazy priority queue of the original paper: when a
 * vertex enters (leaves) the window, the keys of its neighbors and of its
 * neighbors' neighbors are incremented (decremented).
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Gorder tuning knobs. */
struct GorderOptions
{
    /** Sliding window length (the paper and Wei et al. use w = 5). */
    vid_t window = 5;
    /**
     * Skip sibling-score propagation through vertices of degree above
     * this cutoff.  Scoring through a hub of degree d costs O(d) per
     * window event; the cutoff bounds the overall cost near
     * O(sum of squared degrees) without changing low-degree behaviour.
     * 0 = no cutoff.
     */
    vid_t hub_cutoff = 2048;
    /**
     * Block count for the partition-parallel greedy.  Blocks are formed
     * by the multilevel partitioner (src/part), the windowed greedy runs
     * independently per block, and the block orders are concatenated in
     * block-index order.  The permutation is a function of the *block
     * count* — never the thread count — so any thread count produces
     * bit-identical output (DESIGN.md §15).
     *
     * 0 = auto: the `GRAPHORDER_GORDER_BLOCKS` environment variable if
     * set, else derived from the vertex count alone (one block per 16k
     * vertices, capped at 64 — small graphs get the exact serial
     * algorithm).  1 = the exact serial Gorder of Wei et al.
     */
    vid_t blocks = 0;
    /** Seed of the partitioner forming the blocks (blocks > 1). */
    std::uint64_t partition_seed = 12345;
    /**
     * Periodically rebuild the lazy max-heap to one entry per unplaced
     * positive-key vertex once stale entries (decremented or
     * already-placed keys) outnumber live ones ~2:1.  Compaction never
     * changes the emitted order — the rebuilt entry set is exactly the
     * set pops can return (see LazyMaxHeap in gorder.cpp) — but bounds
     * the heap to O(block vertices) instead of O(window events) on
     * hub-heavy graphs.  Off only for tests.
     */
    bool heap_compaction = true;
};

/** Compute the Gorder permutation. */
Permutation gorder_order(const Csr& g, const GorderOptions& opt = {});

/**
 * GScore of a full ordering: sum over all emitted positions of the scores
 * between each vertex and its w predecessors.  Used by tests to verify
 * Gorder beats random on locality-friendly graphs.
 */
double gscore(const Csr& g, const Permutation& pi, vid_t window = 5);

} // namespace graphorder
