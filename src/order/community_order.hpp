/**
 * @file
 * Community-detection-based orderings (paper §III-D).
 *
 * "Grappolo": run (our re-implementation of) the parallel Louvain tool,
 * then label each community's vertices contiguously; the communities
 * themselves appear in arbitrary (first-appearance) order.
 *
 * "Grappolo-RCM": additionally coarsen the graph to one vertex per
 * community and order the *communities* by RCM on that coarse graph, so
 * adjacent communities receive nearby label blocks.
 */
#pragma once

#include "community/louvain.hpp"
#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Order by (community, natural id), communities in arbitrary order. */
Permutation grappolo_order(const Csr& g, const LouvainOptions& opt = {});

/** Order by (RCM rank of community, natural id). */
Permutation grappolo_rcm_order(const Csr& g, const LouvainOptions& opt = {});

/** Shared helper: order vertices by a community map + community ranks. */
Permutation order_by_communities(const std::vector<vid_t>& community,
                                 const std::vector<vid_t>& community_rank,
                                 vid_t n);

} // namespace graphorder
