#include "order/partition_order.hpp"

#include <algorithm>
#include <numeric>

#include "part/separator.hpp"

namespace graphorder {

Permutation
order_from_partition(const std::vector<vid_t>& part, vid_t n)
{
    std::vector<vid_t> order(n);
    std::iota(order.begin(), order.end(), vid_t{0});
    std::stable_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
        return part[a] < part[b]; // stable keeps natural order inside parts
    });
    return Permutation::from_order(order);
}

Permutation
metis_style_order(const Csr& g, vid_t k, const PartitionOptions& opt)
{
    auto p = partition_kway(g, k, opt);
    return order_from_partition(p.part, g.num_vertices());
}

Permutation
nested_dissection_ordering(const Csr& g, const PartitionOptions& opt)
{
    return Permutation::from_order(
        nested_dissection_order(g, 32, opt));
}

} // namespace graphorder
