#include "order/partition_order.hpp"

#include <algorithm>
#include <numeric>

#include "part/separator.hpp"
#include "util/parallel.hpp"

namespace graphorder {

Permutation
order_from_partition(const std::vector<vid_t>& part, vid_t n)
{
    if (n == 0)
        return Permutation::identity(0);
    vid_t max_part = 0;
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static) reduction(max : max_part)
    for (vid_t v = 0; v < n; ++v)
        max_part = std::max(max_part, part[v]);
    // Parallel stable counting sort by part id: vertices inside a part
    // keep natural relative order, deterministic for any thread count.
    return Permutation::from_order(stable_order_by_key<vid_t>(
        n, static_cast<std::size_t>(max_part) + 1,
        [&](vid_t v) { return part[v]; }));
}

Permutation
metis_style_order(const Csr& g, vid_t k, const PartitionOptions& opt)
{
    auto p = partition_kway(g, k, opt);
    return order_from_partition(p.part, g.num_vertices());
}

Permutation
nested_dissection_ordering(const Csr& g, const PartitionOptions& opt)
{
    return Permutation::from_order(
        nested_dissection_order(g, 32, opt));
}

} // namespace graphorder
