/**
 * @file
 * Partitioning-based orderings (paper §III-D).
 *
 * The METIS-style scheme partitions V into k balanced parts minimizing the
 * edge cut and numbers vertices part by part (vertices inside a part keep
 * natural relative order).  The paper sweeps k from 8 to 256 and finds
 * k = 32 best (Figure 7); 32 is the default here too.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"
#include "part/partition.hpp"

namespace graphorder {

/** Order by a precomputed partition: (part id, natural id). */
Permutation order_from_partition(const std::vector<vid_t>& part, vid_t n);

/** METIS-style ordering with @p k parts. */
Permutation metis_style_order(const Csr& g, vid_t k = 32,
                              const PartitionOptions& opt = {});

/** Nested-dissection ordering (paper §III-E), via src/part/separator. */
Permutation nested_dissection_ordering(const Csr& g,
                                       const PartitionOptions& opt = {});

} // namespace graphorder
