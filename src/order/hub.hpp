/**
 * @file
 * Hub-based lightweight orderings (paper §III-B).
 *
 * Hub Sort (Zhang et al. 2016) packs the high-degree "hub" vertices first,
 * sorted by non-increasing degree; the remaining vertices keep their
 * natural relative order.  Hub Clustering (Balaji & Lucia 2018) is the
 * cheaper variant that packs hubs contiguously *without* sorting them.
 * The hub threshold is the average degree, as in the original papers.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/**
 * Hub Sort.  Parallel (counting-sort based), deterministic for any
 * thread count; equal-degree hubs keep ascending vertex id.
 * @param degree_threshold vertices with degree > threshold are hubs;
 *        0 = use average degree.
 */
Permutation hub_sort_order(const Csr& g, double degree_threshold = 0.0);

/** Hub Clustering: hubs first in natural relative order (parallel
 *  stable partition; same determinism guarantee as hub_sort_order). */
Permutation hub_cluster_order(const Csr& g, double degree_threshold = 0.0);

} // namespace graphorder
