/**
 * @file
 * Hub-based lightweight orderings (paper §III-B; Faldu et al., "A Closer
 * Look at Lightweight Graph Reordering", IISWC 2019).
 *
 * Hub Sort (Zhang et al. 2016) packs the high-degree "hub" vertices first,
 * sorted by non-increasing degree; the remaining vertices keep their
 * natural relative order.  Hub Clustering (Balaji & Lucia 2018) is the
 * cheaper variant that packs hubs contiguously *without* sorting them, so
 * hubs that were close in the original order stay close — i.e. hubs are
 * clustered per cache block instead of scattered by the sort.  The hub
 * threshold is the average degree, as in the original papers.
 *
 * Both run in O(n + m) via one parallel stable counting sort
 * (stable_order_by_key, util/parallel.hpp) and are bit-identical at any
 * thread count.  For the binned middle ground between these two, see
 * dbg_order (order/dbg.hpp).  Each poll checkpoint() at phase
 * boundaries, so run_guarded deadlines and cancellation apply.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/**
 * Resolve the hub degree cut actually used by the hub family and DBG:
 * @p degree_threshold when positive, otherwise the average degree
 * (num_arcs / n); 0 for an empty graph.
 */
double effective_hub_threshold(const Csr& g, double degree_threshold = 0.0);

/** Number of hubs, i.e. vertices with degree > effective threshold. */
vid_t count_hubs(const Csr& g, double degree_threshold = 0.0);

/**
 * Hub Sort.  Parallel (counting-sort based), deterministic for any
 * thread count; equal-degree hubs keep ascending vertex id.
 * @param degree_threshold vertices with degree > threshold are hubs;
 *        0 = use average degree.
 */
Permutation hub_sort_order(const Csr& g, double degree_threshold = 0.0);

/** Hub Clustering: hubs first in natural relative order (parallel
 *  stable partition; same determinism guarantee as hub_sort_order). */
Permutation hub_cluster_order(const Csr& g, double degree_threshold = 0.0);

} // namespace graphorder
