#include "order/hybrid.hpp"

#include <algorithm>
#include <numeric>

#include "graph/coarsen.hpp"
#include "graph/subgraph.hpp"
#include "obs/trace.hpp"
#include "order/rcm.hpp"
#include "util/parallel.hpp"

namespace graphorder {

namespace {

/** Local order of one community under the chosen intra scheme. */
std::vector<vid_t>
intra_order(const Subgraph& lg, IntraScheme scheme)
{
    const vid_t ns = lg.graph.num_vertices();
    std::vector<vid_t> local(ns);
    std::iota(local.begin(), local.end(), vid_t{0});
    switch (scheme) {
      case IntraScheme::Natural:
        break;
      case IntraScheme::Degree:
        std::stable_sort(local.begin(), local.end(),
                         [&](vid_t a, vid_t b) {
                             return lg.graph.degree(a)
                                 > lg.graph.degree(b);
                         });
        break;
      case IntraScheme::Rcm:
        local = rcm_order(lg.graph).order();
        break;
      case IntraScheme::Bfs: {
        // BFS from the community's max-degree vertex; unreached members
        // appended in natural order.
        vid_t start = 0;
        for (vid_t v = 1; v < ns; ++v)
            if (lg.graph.degree(v) > lg.graph.degree(start))
                start = v;
        std::vector<std::uint8_t> seen(ns, 0);
        std::vector<vid_t> order;
        order.reserve(ns);
        seen[start] = 1;
        order.push_back(start);
        for (std::size_t head = 0; head < order.size(); ++head)
            for (vid_t u : lg.graph.neighbors(order[head]))
                if (!seen[u]) {
                    seen[u] = 1;
                    order.push_back(u);
                }
        for (vid_t v = 0; v < ns; ++v)
            if (!seen[v])
                order.push_back(v);
        local = std::move(order);
        break;
      }
    }
    return local;
}

} // namespace

const char*
intra_scheme_name(IntraScheme s)
{
    switch (s) {
      case IntraScheme::Natural: return "natural";
      case IntraScheme::Degree: return "degree";
      case IntraScheme::Rcm: return "rcm";
      case IntraScheme::Bfs: return "bfs";
    }
    return "?";
}

Permutation
hybrid_order(const Csr& g, const HybridOptions& opt)
{
    const vid_t n = g.num_vertices();
    const auto res = louvain(g, opt.louvain);
    const vid_t k = res.num_communities;

    // Inter scale: RCM on the coarsened community graph.
    const auto coarse = coarsen_by_groups(g, res.community, k);
    const auto pi_c = rcm_order(coarse.graph);
    std::vector<vid_t> comm_at_rank(k);
    for (vid_t c = 0; c < k; ++c)
        comm_at_rank[pi_c.rank(c)] = c;

    std::vector<std::vector<vid_t>> members(k);
    for (vid_t v = 0; v < n; ++v)
        members[res.community[v]].push_back(v);

    // Intra scale: sub-order each community's induced subgraph.
    // Communities are independent, so this fans out one task per
    // community; concatenation in rank order keeps the result identical
    // to the serial loop (the intra schemes themselves are serial and
    // deterministic).
    std::vector<std::vector<vid_t>> local(k);
    {
        GO_TRACE_SCOPE("order/hybrid/intra");
        #pragma omp parallel for num_threads(default_threads()) \
            schedule(dynamic, 1)
        for (vid_t r = 0; r < k; ++r) {
            const auto& mem = members[comm_at_rank[r]];
            const auto lg = induced_subgraph(g, mem);
            auto& out = local[r];
            out.reserve(mem.size());
            for (vid_t lv : intra_order(lg, opt.intra))
                out.push_back(mem[lv]);
        }
    }
    std::vector<vid_t> order;
    order.reserve(n);
    for (vid_t r = 0; r < k; ++r)
        order.insert(order.end(), local[r].begin(), local[r].end());
    return Permutation::from_order(order);
}

} // namespace graphorder
