/**
 * @file
 * SlashBurn ordering (Kang & Faloutsos 2011; paper §III-B).
 *
 * Iteratively "slashes" the k highest-degree hubs, assigning them the
 * lowest available ids, then "burns": the non-giant connected components
 * (spokes) of the remainder are assigned the highest available ids in
 * decreasing size order, and the process recurses on the giant connected
 * component.  The result concentrates the adjacency matrix near a
 * block-diagonal-plus-hubs form.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/**
 * SlashBurn.
 * @param k hubs removed per round; 0 = max(1, 0.5% of |V|), the
 *        original paper's default.
 */
Permutation slashburn_order(const Csr& g, vid_t k = 0);

} // namespace graphorder
