#include "order/dbg.hpp"

#include <algorithm>
#include <cmath>

#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace graphorder {

Permutation
dbg_order(const Csr& g, const DbgOptions& opt)
{
    const vid_t n = g.num_vertices();
    if (n == 0)
        return Permutation::identity(0);
    checkpoint("order/dbg");

    double cut = opt.degree_threshold;
    if (cut <= 0.0)
        cut = static_cast<double>(g.num_arcs()) / static_cast<double>(n);
    if (cut <= 0.0)
        return Permutation::identity(n); // edgeless graph: nothing is hot

    const unsigned hot_bins = std::max(1u, opt.max_hot_bins);
    // Key layout: 0 = hottest bin, ..., hot_bins - 1 = coolest hot bin,
    // hot_bins = the cold bin.  stable_order_by_key sorts ascending keys,
    // so hot vertices land first and the cold majority keeps its natural
    // relative order at the tail.
    const double inv_log2 = 1.0 / std::log(2.0);
    auto key = [&](vid_t v) -> unsigned {
        const double d = static_cast<double>(g.degree(v));
        if (d <= cut)
            return hot_bins;
        const auto bin = static_cast<unsigned>(
            std::min(std::log(d / cut) * inv_log2,
                     static_cast<double>(hot_bins - 1)));
        return hot_bins - 1 - bin;
    };
    auto order = stable_order_by_key<vid_t>(n, hot_bins + 1, key);
    checkpoint("order/dbg");
    return Permutation::from_order(order);
}

} // namespace graphorder
