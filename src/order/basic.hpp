/**
 * @file
 * Baseline and degree-based orderings (paper §III-B):
 * natural, random, degree sort, and a plain BFS order (extension).
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** The input order itself (identity permutation). */
Permutation natural_order(const Csr& g);

/** Uniformly random shuffle of the ids. */
Permutation random_order(const Csr& g, std::uint64_t seed);

/** Maximum vertex degree of @p g (parallel reduction). */
vid_t max_degree(const Csr& g);

/**
 * Degree Sort: stable sort of vertices by degree, via a parallel
 * counting sort (O(|V| + maxdeg), deterministic for any thread count;
 * ties keep ascending vertex id).
 * @param descending non-increasing degree when true (the common variant).
 */
Permutation degree_sort_order(const Csr& g, bool descending = true);

/** Plain BFS numbering from a pseudo-peripheral start (extension). */
Permutation bfs_order(const Csr& g);

} // namespace graphorder
