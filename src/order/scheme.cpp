#include "order/scheme.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "order/basic.hpp"
#include "order/boba.hpp"
#include "order/cdfs.hpp"
#include "order/community_order.hpp"
#include "order/dbg.hpp"
#include "order/gorder.hpp"
#include "order/hybrid.hpp"
#include "order/hub.hpp"
#include "order/mindeg.hpp"
#include "order/minla_sa.hpp"
#include "order/partition_order.hpp"
#include "order/rabbit.hpp"
#include "order/rcm.hpp"
#include "order/slashburn.hpp"
#include "util/cancel.hpp"
#include "util/faultpoint.hpp"

namespace graphorder {

namespace {

std::vector<OrderingScheme>
build_paper_schemes()
{
    using C = SchemeCategory;
    std::vector<OrderingScheme> v;
    v.push_back({"natural", C::Baseline,
                 [](const Csr& g, std::uint64_t) {
                     return natural_order(g);
                 },
                 true});
    v.push_back({"random", C::Baseline,
                 [](const Csr& g, std::uint64_t seed) {
                     return random_order(g, seed);
                 },
                 true});
    v.push_back({"degree", C::DegreeHub,
                 [](const Csr& g, std::uint64_t) {
                     return degree_sort_order(g, true);
                 },
                 true});
    v.push_back({"hubsort", C::DegreeHub,
                 [](const Csr& g, std::uint64_t) {
                     return hub_sort_order(g);
                 },
                 true});
    v.push_back({"hubcluster", C::DegreeHub,
                 [](const Csr& g, std::uint64_t) {
                     return hub_cluster_order(g);
                 },
                 true});
    v.push_back({"slashburn", C::DegreeHub,
                 [](const Csr& g, std::uint64_t) {
                     return slashburn_order(g);
                 },
                 false});
    v.push_back({"gorder", C::Window,
                 [](const Csr& g, std::uint64_t) {
                     return gorder_order(g);
                 },
                 false});
    v.push_back({"metis-32", C::Partitioning,
                 [](const Csr& g, std::uint64_t seed) {
                     PartitionOptions opt;
                     opt.seed = seed;
                     return metis_style_order(g, 32, opt);
                 },
                 true});
    // The Louvain phase moves vertices from a parallel queue, so the
    // resulting communities depend on thread interleaving.
    v.push_back({"grappolo", C::Partitioning,
                 [](const Csr& g, std::uint64_t) {
                     return grappolo_order(g);
                 },
                 true, /*deterministic=*/false});
    v.push_back({"grappolo-rcm", C::Partitioning,
                 [](const Csr& g, std::uint64_t) {
                     return grappolo_rcm_order(g);
                 },
                 true, /*deterministic=*/false});
    v.push_back({"rabbit", C::Partitioning,
                 [](const Csr& g, std::uint64_t) {
                     return rabbit_order(g);
                 },
                 true});
    v.push_back({"rcm", C::FillReducing,
                 [](const Csr& g, std::uint64_t) {
                     return rcm_order(g);
                 },
                 true});
    v.push_back({"nd", C::FillReducing,
                 [](const Csr& g, std::uint64_t seed) {
                     PartitionOptions opt;
                     opt.seed = seed;
                     return nested_dissection_ordering(g, opt);
                 },
                 false});
    return v;
}

std::vector<OrderingScheme>
build_all_schemes()
{
    using C = SchemeCategory;
    auto v = build_paper_schemes();
    // DBG (Faldu et al. 2019) joins the degree/hub family but not the
    // paper roster: the §V study predates it.
    v.push_back({"dbg", C::DegreeHub,
                 [](const Csr& g, std::uint64_t) {
                     return dbg_order(g);
                 },
                 true});
    v.push_back({"bfs", C::Extension,
                 [](const Csr& g, std::uint64_t) { return bfs_order(g); },
                 true});
    v.push_back({"cdfs", C::Extension,
                 [](const Csr& g, std::uint64_t) { return cdfs_order(g); },
                 true});
    v.push_back({"hybrid-rcm", C::Extension,
                 [](const Csr& g, std::uint64_t) {
                     HybridOptions opt;
                     opt.intra = IntraScheme::Rcm;
                     return hybrid_order(g, opt);
                 },
                 true, /*deterministic=*/false}); // Louvain-backed
    v.push_back({"boba", C::Extension,
                 [](const Csr& g, std::uint64_t) {
                     return boba_order(g);
                 },
                 true});
    v.push_back({"mindeg", C::Extension,
                 [](const Csr& g, std::uint64_t) {
                     return min_degree_order(g);
                 },
                 false});
    v.push_back({"minla-sa", C::Extension,
                 [](const Csr& g, std::uint64_t seed) {
                     MinLaSaOptions opt;
                     opt.seed = seed;
                     return minla_sa_order(g, natural_order(g), opt);
                 },
                 false});
    return v;
}

/**
 * Fault-injection site shared by every scheme: instrument_schemes plants
 * it inside each wrapped run(), so arming `order.scheme` makes the next
 * ordering run (whichever scheme executes) fail with a typed error —
 * the substrate for the scheme × fault fallback matrix in
 * tests/robust_test.cpp.
 */
FaultPoint fp_order_scheme{
    "order.scheme", StatusCode::Internal,
    "ordering run aborts as if the scheme hit an internal error"};

/**
 * Attach the run_guarded fallback chains (order/runner.hpp) and the
 * cost-class metadata.  Fallback policy: each scheme degrades to the
 * cheapest member of a similar flavor, then to a baseline — e.g.
 * window/partitioning schemes retreat to degree sort (keeps some hub
 * locality at sort cost), fill-reducing schemes to their BFS-flavored
 * kin, and DBG to the cheaper hub packing it refines.  "natural" falls
 * back to itself: faults fire exactly once, so the retry succeeds and
 * the chain still terminates.
 */
std::vector<OrderingScheme>
assign_metadata(std::vector<OrderingScheme> v)
{
    for (auto& s : v) {
        if (s.name == "natural")
            s.fallback = {"natural"};
        else if (s.name == "dbg")
            s.fallback = {"hubcluster", "degree", "natural"};
        else if (s.name == "slashburn")
            s.fallback = {"hubcluster", "degree", "natural"};
        else if (s.name == "rcm")
            s.fallback = {"bfs", "natural"};
        else if (s.name == "nd")
            s.fallback = {"rcm", "degree", "natural"};
        else if (s.name == "mindeg")
            s.fallback = {"rcm", "natural"};
        else if (s.category == SchemeCategory::Window
                 || s.category == SchemeCategory::Partitioning
                 || s.name == "minla-sa" || s.name == "hybrid-rcm")
            s.fallback = {"degree", "natural"};
        else
            s.fallback = {"natural"};
        // Cost classes from the paper's Figure 4 timings (and our fig4
        // measurements for the extensions): the super-linear tier gets a
        // generous deadline hint, the rest none.  SlashBurn graduated to
        // the linearithmic tier when its burn phase moved from serial
        // BFS to parallel label-propagation CC (O((n+m) log n) a round);
        // Gorder's per-block greedy is still super-linear in the block
        // size, but the partition-parallel blocks shrink the practical
        // deadline by an order of magnitude.
        if (s.name == "gorder" || s.name == "minla-sa"
            || s.name == "mindeg" || s.name == "nd") {
            s.cost_class = CostClass::SuperLinear;
            s.deadline_hint_ms =
                s.name == "gorder" ? 120000 : 600000;
        } else if (s.name == "rcm" || s.name == "hybrid-rcm"
                   || s.name == "rabbit" || s.name == "metis-32"
                   || s.name == "grappolo" || s.name == "grappolo-rcm"
                   || s.name == "slashburn") {
            s.cost_class = CostClass::Linearithmic;
            if (s.name == "slashburn")
                s.deadline_hint_ms = 120000;
        } else {
            s.cost_class = CostClass::NearLinear;
        }
        // Threaded kernels: every scheme whose dominant work runs under
        // the shared --threads knob.  The multilevel partitioner behind
        // metis-32/nd is still serial (only the final packing is
        // threaded), so those stay false; likewise the purely serial
        // baselines and refinement extensions.
        s.parallel = s.name == "degree" || s.name == "hubsort"
            || s.name == "hubcluster" || s.name == "dbg"
            || s.name == "boba" || s.name == "slashburn"
            || s.name == "gorder" || s.name == "rcm"
            || s.name == "rabbit" || s.name == "grappolo"
            || s.name == "grappolo-rcm" || s.name == "hybrid-rcm";
    }
    return v;
}

/**
 * Wrap every scheme's run() in an `order/<name>` trace span plus registry
 * metrics (run counter and per-scheme time histogram), so any caller
 * iterating the registry gets telemetry without touching the scheme code.
 * The wrapper also hosts the `order.scheme` fault point and a
 * cancellation checkpoint at entry, so guarded runs observe deadlines
 * even for schemes without internal checkpoints.
 */
std::vector<OrderingScheme>
instrument_schemes(std::vector<OrderingScheme> v)
{
    for (auto& s : v) {
        auto inner = std::move(s.run);
        const std::string span = "order/" + s.name;
        s.run = [inner = std::move(inner), span](const Csr& g,
                                                 std::uint64_t seed) {
            GO_TRACE_SCOPE(span);
            fp_order_scheme.maybe_fire();
            checkpoint(span.c_str());
            const std::uint64_t t0 = obs::Tracer::instance().now_us();
            auto pi = inner(g, seed);
            auto& reg = obs::MetricsRegistry::instance();
            reg.counter("order/runs").add();
            reg.histogram(span + "/time_s")
                .observe(static_cast<double>(
                             obs::Tracer::instance().now_us() - t0)
                         * 1e-6);
            return pi;
        };
    }
    return v;
}

} // namespace

const std::vector<OrderingScheme>&
paper_schemes()
{
    static const auto schemes =
        instrument_schemes(assign_metadata(build_paper_schemes()));
    return schemes;
}

const std::vector<OrderingScheme>&
all_schemes()
{
    static const auto schemes =
        instrument_schemes(assign_metadata(build_all_schemes()));
    return schemes;
}

const std::vector<OrderingScheme>&
application_schemes()
{
    // Figure 9/10/11 compare Grappolo, RCM, Natural and Degree Sort.
    static const std::vector<OrderingScheme> schemes = {
        scheme_by_name("grappolo"),
        scheme_by_name("rcm"),
        scheme_by_name("natural"),
        scheme_by_name("degree"),
    };
    return schemes;
}

const OrderingScheme&
scheme_by_name(const std::string& name)
{
    for (const auto& s : all_schemes())
        if (s.name == name)
            return s;
    throw std::out_of_range("unknown ordering scheme: " + name);
}

const char*
category_name(SchemeCategory c)
{
    switch (c) {
      case SchemeCategory::Baseline: return "baseline";
      case SchemeCategory::DegreeHub: return "degree/hub";
      case SchemeCategory::Window: return "window";
      case SchemeCategory::Partitioning: return "partitioning";
      case SchemeCategory::FillReducing: return "fill-reducing";
      case SchemeCategory::Extension: return "extension";
    }
    return "?";
}

const char*
cost_class_name(CostClass c)
{
    switch (c) {
      case CostClass::NearLinear: return "near-linear";
      case CostClass::Linearithmic: return "linearithmic";
      case CostClass::SuperLinear: return "super-linear";
    }
    return "?";
}

} // namespace graphorder
