#include "order/minla_sa.hpp"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "la/gap_measures.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace graphorder {

namespace {

/** Change in total gap if vertices a and b swapped their ranks. */
double
swap_delta(const Csr& g, const std::vector<vid_t>& rank, vid_t a, vid_t b)
{
    auto cost_of = [&](vid_t v, vid_t v_rank, vid_t skip) {
        double c = 0;
        for (vid_t u : g.neighbors(v)) {
            if (u == skip)
                continue;
            c += std::abs(static_cast<double>(v_rank)
                          - static_cast<double>(rank[u]));
        }
        return c;
    };
    const double before = cost_of(a, rank[a], b) + cost_of(b, rank[b], a);
    const double after = cost_of(a, rank[b], b) + cost_of(b, rank[a], a);
    // The (a,b) edge, if present, keeps its gap under a swap.
    return after - before;
}

} // namespace

Permutation
minla_sa_order(const Csr& g, const Permutation& start,
               const MinLaSaOptions& opt)
{
    const vid_t n = g.num_vertices();
    if (n < 2)
        return start;
    Rng rng(opt.seed);
    std::vector<vid_t> rank = start.ranks();

    const auto base = compute_gap_metrics(g, start);
    double temp = std::max(1.0, base.avg_gap * opt.initial_temp_factor);
    const std::uint64_t moves = opt.moves_per_step
        ? opt.moves_per_step
        : 4ULL * n;

    double current = base.total_gap;
    double best_cost = current;
    std::vector<vid_t> best = rank;

    for (int step = 0; step < opt.steps; ++step) {
        checkpoint("minla_sa/step");
        for (std::uint64_t mv = 0; mv < moves; ++mv) {
            const auto a = static_cast<vid_t>(rng.next_below(n));
            const auto b = static_cast<vid_t>(rng.next_below(n));
            if (a == b)
                continue;
            const double delta = swap_delta(g, rank, a, b);
            if (delta <= 0.0
                || rng.next_double() < std::exp(-delta / temp)) {
                std::swap(rank[a], rank[b]);
                current += delta;
                if (current < best_cost) {
                    best_cost = current;
                    best = rank;
                }
            }
        }
        temp *= opt.cooling;
    }
    return Permutation::from_ranks(std::move(best));
}

} // namespace graphorder
