/**
 * @file
 * Hybrid / multiscale ordering engine — the paper's "future research"
 * direction (§VII: "potential use of coarsening to explore the benefits
 * of a multiscale and/or hybrid ordering engines") made concrete.
 *
 * The engine decomposes ordering into two scales:
 *   - *inter*-community: communities (from Louvain) are ordered by RCM on
 *     the community-coarsened graph, as in Grappolo-RCM;
 *   - *intra*-community: vertices inside each community are ordered by a
 *     configurable sub-scheme applied to the community's induced
 *     subgraph (natural, degree sort, RCM, or BFS).
 *
 * Grappolo-RCM is the special case with the natural intra scheme.
 */
#pragma once

#include "community/louvain.hpp"
#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Intra-community sub-ordering choices. */
enum class IntraScheme
{
    Natural, ///< keep natural relative order (== grappolo-rcm)
    Degree,  ///< non-increasing degree inside each community
    Rcm,     ///< RCM on the community's induced subgraph
    Bfs,     ///< BFS from the community's max-degree vertex
};

/** Configuration of the hybrid engine. */
struct HybridOptions
{
    IntraScheme intra = IntraScheme::Rcm;
    LouvainOptions louvain;
};

/** Run the hybrid ordering. */
Permutation hybrid_order(const Csr& g, const HybridOptions& opt = {});

/** Name of an intra scheme (for tables). */
const char* intra_scheme_name(IntraScheme s);

} // namespace graphorder
