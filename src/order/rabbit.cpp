#include "order/rabbit.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

namespace graphorder {

namespace {

/** Union-find with path halving. */
vid_t
find_root(std::vector<vid_t>& parent, vid_t v)
{
    while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
    }
    return v;
}

} // namespace

Permutation
rabbit_order(const Csr& g)
{
    const vid_t n = g.num_vertices();
    const double two_m = std::max<double>(g.total_arc_weight(), 1.0);

    // Super-vertex state: adjacency maps (root -> accumulated weight) and
    // total weighted degree.  Merging moves the smaller map into the
    // larger one.
    std::vector<std::unordered_map<vid_t, double>> adj(n);
    std::vector<double> wdeg(n);
    std::vector<vid_t> parent(n);
    std::iota(parent.begin(), parent.end(), vid_t{0});
    // Dendrogram: children recorded in merge order.
    std::vector<std::vector<vid_t>> children(n);

    for (vid_t v = 0; v < n; ++v) {
        wdeg[v] = g.weighted_degree(v);
        const auto nbrs = g.neighbors(v);
        const auto ws = g.neighbor_weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            adj[v][nbrs[i]] += ws.empty() ? 1.0 : ws[i];
    }

    // Increasing-degree scan (Arai et al. §III: small vertices first so
    // hubs become community roots).
    std::vector<vid_t> scan(n);
    std::iota(scan.begin(), scan.end(), vid_t{0});
    std::stable_sort(scan.begin(), scan.end(), [&](vid_t a, vid_t b) {
        return g.degree(a) < g.degree(b);
    });

    for (vid_t v : scan) {
        const vid_t rv = find_root(parent, v);
        if (rv != v)
            continue; // already absorbed into another super-vertex

        // Rebuild v's adjacency onto current roots.
        std::unordered_map<vid_t, double> onto_roots;
        onto_roots.reserve(adj[rv].size());
        for (const auto& [u, w] : adj[rv]) {
            const vid_t ru = find_root(parent, u);
            if (ru != rv)
                onto_roots[ru] += w;
        }
        adj[rv] = std::move(onto_roots);

        // Best positive modularity gain:
        // dQ(v -> u) = w(v,u)/m - wdeg(v)*wdeg(u)/(2 m^2)  (x2 constant
        // dropped; comparisons unaffected).
        vid_t best = kNoVertex;
        double best_gain = 0.0;
        for (const auto& [ru, w] : adj[rv]) {
            const double gain =
                w / two_m - (wdeg[rv] * wdeg[ru]) / (two_m * two_m);
            if (gain > best_gain
                || (gain == best_gain && best != kNoVertex && ru < best)) {
                best_gain = gain;
                best = ru;
            }
        }
        if (best == kNoVertex || best_gain <= 0.0)
            continue; // v stays a root

        // Merge rv into best: move adjacency (small into large).
        auto& src = adj[rv];
        auto& dst = adj[best];
        for (const auto& [u, w] : src) {
            if (u != best)
                dst[u] += w;
        }
        src.clear();
        dst.erase(rv);
        wdeg[best] += wdeg[rv];
        parent[rv] = best;
        children[best].push_back(rv);
    }

    // DFS over each dendrogram tree; trees in natural root order.
    std::vector<vid_t> order;
    order.reserve(n);
    std::vector<vid_t> stack;
    for (vid_t r = 0; r < n; ++r) {
        if (parent[r] != r)
            continue;
        stack.push_back(r);
        while (!stack.empty()) {
            const vid_t v = stack.back();
            stack.pop_back();
            order.push_back(v);
            // Children pushed in reverse so the first merge is visited
            // first (keeps tightly-merged vertices adjacent).
            for (auto it = children[v].rbegin(); it != children[v].rend();
                 ++it) {
                stack.push_back(*it);
            }
        }
    }
    return Permutation::from_order(order);
}

} // namespace graphorder
