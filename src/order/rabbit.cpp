#include "order/rabbit.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace graphorder {

namespace {

/**
 * One round's merge decisions: each active super-vertex points at the
 * neighbor with the best positive modularity gain, under a strict total
 * order on *edges* — (gain desc, min endpoint asc, max endpoint asc).
 * Gain is symmetric, so along any pointer cycle the chosen edge
 * priorities strictly increase, which is only possible for 2-cycles;
 * breaking those (root = larger weighted degree, tie smaller id, so hubs
 * stay community roots as in Arai et al. §III) leaves a forest and the
 * merge set is schedule-independent.
 */
struct RoundGraph
{
    std::vector<vid_t> active;      ///< rep ids, ascending
    std::vector<std::size_t> off;   ///< active.size() + 1 arc offsets
    std::vector<vid_t> src;         ///< arc source rep (parallel to dst)
    std::vector<vid_t> dst;         ///< arc target rep
    std::vector<double> w;          ///< aggregated arc weight
};

} // namespace

Permutation
rabbit_order(const Csr& g)
{
    const vid_t n = g.num_vertices();
    const double two_m = std::max<double>(g.total_arc_weight(), 1.0);
    const int threads = default_threads();

    std::vector<double> wdeg(n);
    std::vector<vid_t> parent(n);
    std::iota(parent.begin(), parent.end(), vid_t{0});
    // Dendrogram: children recorded in merge (round, id) order.
    std::vector<std::vector<vid_t>> children(n);

    // Round 0 graph = the input: every vertex active, arcs as in the CSR.
    RoundGraph rg;
    rg.active.resize(n);
    std::iota(rg.active.begin(), rg.active.end(), vid_t{0});
    rg.off.resize(static_cast<std::size_t>(n) + 1, 0);
    for (vid_t v = 0; v < n; ++v) {
        wdeg[v] = g.weighted_degree(v);
        rg.off[static_cast<std::size_t>(v) + 1] =
            rg.off[v] + g.degree(v);
    }
    rg.src.resize(rg.off[n]);
    rg.dst.resize(rg.off[n]);
    rg.w.resize(rg.off[n]);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (vid_t v = 0; v < n; ++v) {
        const auto nbrs = g.neighbors(v);
        const auto ws = g.neighbor_weights(v);
        std::size_t p = rg.off[v];
        for (std::size_t i = 0; i < nbrs.size(); ++i, ++p) {
            rg.src[p] = v;
            rg.dst[p] = nbrs[i];
            rg.w[p] = ws.empty() ? 1.0 : ws[i];
        }
    }

    // Scratch indexed by rep id.
    std::vector<vid_t> aidx(n, 0);   // rep -> active index
    std::vector<vid_t> jmp(n), jmp2(n);
    std::vector<vid_t> choice, merged_to;
    std::size_t rounds = 0, total_merges = 0;

    while (!rg.active.empty()) {
        checkpoint("rabbit/round");
        const std::size_t na = rg.active.size();
        for (std::size_t i = 0; i < na; ++i)
            aidx[rg.active[i]] = static_cast<vid_t>(i);

        // Best positive-gain neighbor per active super-vertex:
        // dQ(v -> u) = w(v,u)/m - wdeg(v)*wdeg(u)/(2 m^2)  (x2 constant
        // dropped; comparisons unaffected).
        choice.assign(na, kNoVertex);
        {
            GO_TRACE_SCOPE("rabbit/aggregate");
            #pragma omp parallel for num_threads(threads) \
                schedule(static)
            for (std::size_t i = 0; i < na; ++i) {
                const vid_t v = rg.active[i];
                vid_t best = kNoVertex;
                double best_gain = 0.0;
                for (std::size_t e = rg.off[i]; e < rg.off[i + 1]; ++e) {
                    const vid_t u = rg.dst[e];
                    const double gain = rg.w[e] / two_m
                        - (wdeg[v] * wdeg[u]) / (two_m * two_m);
                    if (gain <= 0.0)
                        continue;
                    bool take = best == kNoVertex;
                    if (!take) {
                        if (gain != best_gain) {
                            take = gain > best_gain;
                        } else {
                            const vid_t mn1 = std::min(v, u);
                            const vid_t mx1 = std::max(v, u);
                            const vid_t mn2 = std::min(v, best);
                            const vid_t mx2 = std::max(v, best);
                            take = mn1 != mn2 ? mn1 < mn2 : mx1 < mx2;
                        }
                    }
                    if (take) {
                        best = u;
                        best_gain = gain;
                    }
                }
                choice[i] = best;
            }
        }

        // Break mutual pairs: the larger-wdeg endpoint (tie: smaller id)
        // stays a root.  choice[] is read-only here; merged_to[] is the
        // resolved pointer.
        merged_to.assign(na, kNoVertex);
        #pragma omp parallel for num_threads(threads) schedule(static)
        for (std::size_t i = 0; i < na; ++i) {
            const vid_t t = choice[i];
            if (t == kNoVertex)
                continue;
            const vid_t v = rg.active[i];
            if (choice[aidx[t]] == v) {
                const bool v_is_root = wdeg[v] != wdeg[t]
                                           ? wdeg[v] > wdeg[t]
                                           : v < t;
                if (v_is_root)
                    continue;
            }
            merged_to[i] = t;
        }

        std::size_t merges = 0;
        for (std::size_t i = 0; i < na; ++i)
            if (merged_to[i] != kNoVertex)
                ++merges;
        if (merges == 0)
            break;
        ++rounds;
        total_merges += merges;

        // Record the round's merges in ascending-id order: dendrogram
        // children, final parents, and the root pointer for jumping.
        for (std::size_t i = 0; i < na; ++i) {
            const vid_t v = rg.active[i];
            const vid_t t = merged_to[i];
            jmp[v] = t == kNoVertex ? v : t;
            if (t != kNoVertex) {
                parent[v] = t;
                children[t].push_back(v);
            }
        }

        // Pointer-jump merge chains to their round roots (the pointer
        // graph is a forest, so this converges; double-buffered for
        // determinism under any schedule).
        for (bool changed = true; changed;) {
            std::atomic<int> any{0};
            #pragma omp parallel for num_threads(threads) \
                schedule(static)
            for (std::size_t i = 0; i < na; ++i) {
                const vid_t v = rg.active[i];
                const vid_t r = jmp[jmp[v]];
                jmp2[v] = r;
                if (r != jmp[v])
                    any.store(1, std::memory_order_relaxed);
            }
            for (std::size_t i = 0; i < na; ++i) {
                const vid_t v = rg.active[i];
                jmp[v] = jmp2[v];
            }
            changed = any.load(std::memory_order_relaxed) != 0;
        }

        // Fold merged weighted degrees into their roots in ascending-id
        // order — a fixed FP summation order, so results are bit-equal
        // for any thread count.
        for (std::size_t i = 0; i < na; ++i) {
            const vid_t v = rg.active[i];
            if (merged_to[i] != kNoVertex)
                wdeg[jmp[v]] += wdeg[v];
        }

        // Contract: survivors keep their rep id; arcs re-point to round
        // roots, drop intra-community arcs, and aggregate duplicates.
        GO_TRACE_SCOPE("rabbit/contract");
        std::vector<vid_t> survivors;
        survivors.reserve(na - merges);
        for (std::size_t i = 0; i < na; ++i)
            if (merged_to[i] == kNoVertex)
                survivors.push_back(rg.active[i]);
        const std::size_t ns = survivors.size();
        for (std::size_t i = 0; i < ns; ++i)
            aidx[survivors[i]] = static_cast<vid_t>(i);

        // Sort arcs by (new source, new target, arc index) with two
        // stable counting sorts; the trailing arc-index tie-break fixes
        // the within-pair summation order, keeping the aggregated
        // weights deterministic.
        const std::size_t ne = rg.src.size();
        auto by_dst = stable_order_by_key<std::size_t>(
            ne, ns, [&](std::size_t e) {
                return static_cast<std::size_t>(aidx[jmp[rg.dst[e]]]);
            });
        // Stable sort of the by_dst sequence by source key: reuse
        // stable_order_by_key over positions in by_dst.
        auto by_src_pos = stable_order_by_key<std::size_t>(
            ne, ns, [&](std::size_t p) {
                return static_cast<std::size_t>(
                    aidx[jmp[rg.src[by_dst[p]]]]);
            });

        // Per-source segment boundaries from a deterministic histogram.
        std::vector<std::size_t> seg(ns + 1, 0);
        for (std::size_t e = 0; e < ne; ++e)
            ++seg[aidx[jmp[rg.src[e]]] + 1];
        for (std::size_t i = 0; i < ns; ++i)
            seg[i + 1] += seg[i];

        // Pass 1: count surviving (deduplicated, non-self) arcs per
        // source; pass 2: fill.  Both walk each segment in sorted order.
        std::vector<std::size_t> new_off(ns + 1, 0);
        #pragma omp parallel for num_threads(threads) schedule(static)
        for (std::size_t i = 0; i < ns; ++i) {
            const vid_t self = survivors[i];
            std::size_t cnt = 0;
            vid_t prev = kNoVertex;
            for (std::size_t p = seg[i]; p < seg[i + 1]; ++p) {
                const vid_t ru = jmp[rg.dst[by_dst[by_src_pos[p]]]];
                if (ru == self)
                    continue;
                if (ru != prev) {
                    ++cnt;
                    prev = ru;
                }
            }
            new_off[i + 1] = cnt;
        }
        for (std::size_t i = 0; i < ns; ++i)
            new_off[i + 1] += new_off[i];

        std::vector<vid_t> new_src(new_off[ns]), new_dst(new_off[ns]);
        std::vector<double> new_w(new_off[ns]);
        #pragma omp parallel for num_threads(threads) schedule(static)
        for (std::size_t i = 0; i < ns; ++i) {
            const vid_t self = survivors[i];
            std::size_t out = new_off[i];
            vid_t prev = kNoVertex;
            for (std::size_t p = seg[i]; p < seg[i + 1]; ++p) {
                const std::size_t e = by_dst[by_src_pos[p]];
                const vid_t ru = jmp[rg.dst[e]];
                if (ru == self)
                    continue;
                if (ru != prev) {
                    new_src[out] = self;
                    new_dst[out] = ru;
                    new_w[out] = rg.w[e];
                    prev = ru;
                    ++out;
                } else {
                    new_w[out - 1] += rg.w[e];
                }
            }
        }

        rg.active.swap(survivors);
        rg.off.swap(new_off);
        rg.src.swap(new_src);
        rg.dst.swap(new_dst);
        rg.w.swap(new_w);
    }

    // DFS over each dendrogram tree; trees in natural root order.
    std::vector<vid_t> order;
    order.reserve(n);
    std::vector<vid_t> stack;
    for (vid_t r = 0; r < n; ++r) {
        if (parent[r] != r)
            continue;
        stack.push_back(r);
        while (!stack.empty()) {
            const vid_t v = stack.back();
            stack.pop_back();
            order.push_back(v);
            // Children pushed in reverse so the first merge is visited
            // first (keeps tightly-merged vertices adjacent).
            for (auto it = children[v].rbegin(); it != children[v].rend();
                 ++it) {
                stack.push_back(*it);
            }
        }
    }
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("order/rabbit/parallel_rounds").add(rounds);
    reg.counter("order/rabbit/parallel_merges").add(total_merges);
    return Permutation::from_order(order);
}

} // namespace graphorder
