/**
 * @file
 * Common interface and registry for vertex-reordering schemes.
 *
 * The registry mirrors Figure 3 of the paper: every scheme is tagged with
 * its category (degree/hub-based, window-based, partitioning-based,
 * fill-reducing, baseline) and the benches iterate the registry instead of
 * hard-coding scheme lists.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Category taxonomy of Figure 3. */
enum class SchemeCategory
{
    Baseline,     ///< natural, random
    DegreeHub,    ///< degree sort, hub sort, hub cluster, slashburn
    Window,       ///< gorder
    Partitioning, ///< metis-style, grappolo, grappolo-rcm, rabbit
    FillReducing, ///< rcm, nested dissection
    Extension,    ///< schemes beyond the paper's 11 (bfs, minla-sa)
};

/** A named reordering scheme. */
struct OrderingScheme
{
    std::string name;
    SchemeCategory category;
    /**
     * Compute the ordering.  @p seed drives any internal randomness;
     * deterministic schemes ignore it.
     */
    std::function<Permutation(const Csr&, std::uint64_t seed)> run;
    /**
     * Cheap enough for the 9 large application instances (Gorder and
     * SlashBurn are only used in the qualitative study, as in the paper's
     * Figure 4 which times just RCM/Degree/Grappolo/METIS).
     */
    bool scalable = true;
};

/**
 * The 11 schemes of the qualitative study (§V): natural, random,
 * degree-sort, hub-sort, hub-cluster, slashburn, gorder, rcm, nd,
 * metis-32, grappolo, grappolo-rcm, rabbit.
 */
const std::vector<OrderingScheme>& paper_schemes();

/** paper_schemes() plus the extensions (bfs, minla-sa). */
const std::vector<OrderingScheme>& all_schemes();

/** The 4 schemes of the application study (§VI). */
const std::vector<OrderingScheme>& application_schemes();

/** Lookup by name; throws std::out_of_range. */
const OrderingScheme& scheme_by_name(const std::string& name);

/** Human-readable category label. */
const char* category_name(SchemeCategory c);

} // namespace graphorder
