/**
 * @file
 * Common interface and registry for vertex-reordering schemes.
 *
 * The registry mirrors Figure 3 of the paper: every scheme is tagged with
 * its category (degree/hub-based, window-based, partitioning-based,
 * fill-reducing, baseline) and the benches iterate the registry instead of
 * hard-coding scheme lists.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Category taxonomy of Figure 3. */
enum class SchemeCategory
{
    Baseline,     ///< natural, random
    DegreeHub,    ///< degree sort, hub sort, hub cluster, slashburn
    Window,       ///< gorder
    Partitioning, ///< metis-style, grappolo, grappolo-rcm, rabbit
    FillReducing, ///< rcm, nested dissection
    Extension,    ///< schemes beyond the paper's 11 (bfs, boba, minla-sa)
};

/**
 * Asymptotic cost tier of a scheme, from the paper's Figure 4 timings
 * (and our own fig4/ablation measurements for the extensions).  This is
 * the "can I afford it?" half of the metadata the ordering advisor and
 * `reorder --list` surface; `docs/scheme-selection.md` groups its
 * playbook tables by this tier.
 */
enum class CostClass
{
    NearLinear,   ///< O(n + m): counting sorts, single traversals
    Linearithmic, ///< sort/refinement-bound: RCM, SlashBurn, partitioners
    SuperLinear,  ///< qualitative-study only: Gorder, ND, SA, MinDeg
};

/** A named reordering scheme. */
struct OrderingScheme
{
    std::string name;
    SchemeCategory category;
    /**
     * Compute the ordering.  @p seed drives any internal randomness;
     * deterministic schemes ignore it.
     *
     * Preconditions: the graph may be empty, disconnected or weighted;
     * every scheme returns a valid permutation of [0, n).
     * Thread-safety: safe to call concurrently on distinct graphs; the
     * parallel schemes spawn their own OpenMP teams sized by
     * default_threads() (util/parallel.hpp).
     */
    std::function<Permutation(const Csr&, std::uint64_t seed)> run;
    /**
     * Cheap enough for the 9 large application instances (Gorder and
     * SlashBurn are only used in the qualitative study, as in the paper's
     * Figure 4 which times just RCM/Degree/Grappolo/METIS).
     */
    bool scalable = true;
    /**
     * True when a fixed (graph, seed) pair yields the same permutation
     * for every thread count and schedule.  False only for the
     * Louvain-backed schemes (grappolo, grappolo-rcm, hybrid-rcm), whose
     * parallel vertex moves are interleaving-dependent.  See DESIGN.md
     * "Parallelism & determinism" for the tie-breaking rules behind the
     * deterministic ones.
     */
    bool deterministic = true;
    /**
     * True when the scheme's dominant work runs under the shared
     * `--threads`/`GRAPHORDER_THREADS` knob (util/parallel.hpp).  All
     * parallel schemes except the Louvain-backed ones are also
     * deterministic: their kernels decompose work by input size, never
     * thread count, so any team size yields the same permutation
     * (DESIGN.md §15 covers the heavyweight tier).  Assigned by the
     * registry builders, not by positional init.
     */
    bool parallel = false;
    /**
     * Fallback chain walked by run_guarded (order/runner.hpp) when this
     * scheme fails or blows its budget: cheaper schemes of a similar
     * flavor first, ending in a baseline.  Empty means "no fallback"
     * (run_guarded substitutes {"natural"} so every chain terminates).
     * Assigned by the registry builders, not by positional init.
     */
    std::vector<std::string> fallback;
    /**
     * Soft deadline suggestion in milliseconds for guarded runs, derived
     * from the scheme's paper-reported cost class; 0 = no suggestion.
     * run_guarded only enforces deadlines the caller sets explicitly —
     * this is advisory metadata for harnesses that budget whole figures.
     */
    double deadline_hint_ms = 0;
    /**
     * Cost tier backing deadline_hint_ms, surfaced by `reorder --list`
     * and `--list --json` so the scheme-selection playbook can be
     * regenerated from the binary.  Assigned by the registry builders.
     */
    CostClass cost_class = CostClass::NearLinear;
};

/**
 * The schemes of the qualitative study (§V): natural, random,
 * degree-sort, hub-sort, hub-cluster, slashburn, gorder, rcm, nd,
 * metis-32, grappolo, grappolo-rcm, rabbit.
 *
 * Complexity: the list is built (and instrumented with obs spans and
 * per-scheme time histograms) once; subsequent calls return the cached
 * registry.  Thread-safety: safe after first call; first call is guarded
 * by C++ static-initialization semantics.
 */
const std::vector<OrderingScheme>& paper_schemes();

/**
 * paper_schemes() plus the extensions (bfs, cdfs, hybrid-rcm, mindeg,
 * boba, minla-sa).  Same caching and thread-safety as paper_schemes().
 */
const std::vector<OrderingScheme>& all_schemes();

/**
 * The 4 schemes of the application study (§VI): grappolo, rcm, natural,
 * degree.  Same caching and thread-safety as paper_schemes().
 */
const std::vector<OrderingScheme>& application_schemes();

/**
 * Lookup by registry name.
 * @throws std::out_of_range when @p name is not registered.
 * Complexity: linear scan of the registry (~20 entries).
 */
const OrderingScheme& scheme_by_name(const std::string& name);

/** Human-readable category label (static string, never null). */
const char* category_name(SchemeCategory c);

/** Human-readable cost-class label ("near-linear", "linearithmic",
 *  "super-linear"; static string, never null). */
const char* cost_class_name(CostClass c);

} // namespace graphorder
