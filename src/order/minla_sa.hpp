/**
 * @file
 * Simulated-annealing heuristic for Minimum Linear Arrangement (extension).
 *
 * The paper (§III-A) notes that MinLA is NP-hard and that simulated
 * annealing heuristics exist but "are considered expensive in practice".
 * This module makes that claim testable: it anneals the total-gap (MinLA)
 * objective with rank-swap moves so the ablation bench can compare its
 * quality/cost against the practical schemes.
 */
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Annealing schedule parameters. */
struct MinLaSaOptions
{
    /** Moves attempted per temperature step. */
    std::uint64_t moves_per_step = 0; ///< 0 = 4 * |V|
    /** Number of temperature steps. */
    int steps = 60;
    /** Geometric cooling factor per step. */
    double cooling = 0.9;
    /** Initial temperature as a multiple of the average gap. */
    double initial_temp_factor = 2.0;
    std::uint64_t seed = 7;
};

/**
 * Anneal from @p start (e.g. natural or RCM) toward lower total gap.
 * Returns the best permutation found.
 */
Permutation minla_sa_order(const Csr& g, const Permutation& start,
                           const MinLaSaOptions& opt = {});

} // namespace graphorder
