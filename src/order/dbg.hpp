/**
 * @file
 * Degree-Based Grouping (Faldu, Diamond & Grot, "A Closer Look at
 * Lightweight Graph Reordering", IISWC 2019).
 *
 * DBG coarsens Hub Sort: instead of fully sorting hot vertices by degree
 * (which scatters vertices that were adjacent in the original order), it
 * assigns each vertex to one of a small number of power-of-two *hotness
 * bins* relative to the average degree and concatenates the bins from
 * hottest to coldest.  Within a bin every vertex keeps its original
 * relative position, so existing spatial locality inside a hotness class
 * survives — the property that makes DBG the best-behaved lightweight
 * scheme in Faldu et al.'s study.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Tuning knobs for dbg_order. */
struct DbgOptions
{
    /**
     * Vertices with degree > threshold are "hot" and are split into
     * log2-spaced bins; 0 = use the average degree (the paper's default).
     */
    double degree_threshold = 0.0;
    /**
     * Cap on the number of hot bins.  Faldu et al. use 8 groups total;
     * bins beyond the cap collapse into the hottest bin.  Must be >= 1.
     */
    unsigned max_hot_bins = 7;
};

/**
 * Degree-Based Grouping ordering.
 *
 * Bin assignment for a vertex of degree d with threshold t:
 * degrees <= t land in the single cold bin (placed last); hot degrees
 * land in bin floor(log2(d / t)), clamped to `max_hot_bins - 1`, with
 * higher bins placed earlier.  The permutation is produced by one
 * parallel stable counting sort over bin keys
 * (stable_order_by_key, util/parallel.hpp).
 *
 * Determinism: bit-identical output for any thread count — the key
 * function depends only on the graph, and the counting sort is stable by
 * construction.  Cost: O(n + m) work, one checkpoint() poll per phase so
 * run_guarded deadlines and cancellation apply.
 */
Permutation dbg_order(const Csr& g, const DbgOptions& opt = {});

} // namespace graphorder
