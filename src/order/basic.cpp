#include "order/basic.hpp"

#include <algorithm>
#include <numeric>

#include "graph/traversal.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphorder {

vid_t
max_degree(const Csr& g)
{
    const vid_t n = g.num_vertices();
    vid_t maxdeg = 0;
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static) reduction(max : maxdeg)
    for (vid_t v = 0; v < n; ++v)
        maxdeg = std::max(maxdeg, g.degree(v));
    return maxdeg;
}

Permutation
natural_order(const Csr& g)
{
    return Permutation::identity(g.num_vertices());
}

Permutation
random_order(const Csr& g, std::uint64_t seed)
{
    Rng rng(seed);
    return random_permutation(g.num_vertices(), rng);
}

Permutation
degree_sort_order(const Csr& g, bool descending)
{
    // Parallel stable counting sort keyed on degree (descending maps
    // degree d to key maxdeg - d).  Output is exactly what a stable
    // comparison sort by degree produces: ties keep ascending vertex id.
    const vid_t n = g.num_vertices();
    if (n == 0)
        return Permutation::identity(0);
    const vid_t maxdeg = max_degree(g);
    const auto order = stable_order_by_key<vid_t>(
        n, static_cast<std::size_t>(maxdeg) + 1, [&](vid_t v) {
            return descending ? maxdeg - g.degree(v) : g.degree(v);
        });
    return Permutation::from_order(order);
}

Permutation
bfs_order(const Csr& g)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> order;
    order.reserve(n);
    std::vector<std::uint8_t> seen(n, 0);
    for (vid_t s = 0; s < n; ++s) {
        if (seen[s])
            continue;
        const vid_t start = pseudo_peripheral_vertex(g, s);
        auto r = bfs(g, start);
        for (vid_t v : r.visit_order) {
            if (!seen[v]) {
                seen[v] = 1;
                order.push_back(v);
            }
        }
        if (!seen[s]) { // isolated or unreachable corner cases
            seen[s] = 1;
            order.push_back(s);
        }
    }
    return Permutation::from_order(order);
}

} // namespace graphorder
