#include "order/basic.hpp"

#include <algorithm>
#include <numeric>

#include "graph/traversal.hpp"
#include "util/rng.hpp"

namespace graphorder {

Permutation
natural_order(const Csr& g)
{
    return Permutation::identity(g.num_vertices());
}

Permutation
random_order(const Csr& g, std::uint64_t seed)
{
    Rng rng(seed);
    return random_permutation(g.num_vertices(), rng);
}

Permutation
degree_sort_order(const Csr& g, bool descending)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> order(n);
    std::iota(order.begin(), order.end(), vid_t{0});
    std::stable_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
        return descending ? g.degree(a) > g.degree(b)
                          : g.degree(a) < g.degree(b);
    });
    return Permutation::from_order(order);
}

Permutation
bfs_order(const Csr& g)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> order;
    order.reserve(n);
    std::vector<std::uint8_t> seen(n, 0);
    for (vid_t s = 0; s < n; ++s) {
        if (seen[s])
            continue;
        const vid_t start = pseudo_peripheral_vertex(g, s);
        auto r = bfs(g, start);
        for (vid_t v : r.visit_order) {
            if (!seen[v]) {
                seen[v] = 1;
                order.push_back(v);
            }
        }
        if (!seen[s]) { // isolated or unreachable corner cases
            seen[s] = 1;
            order.push_back(s);
        }
    }
    return Permutation::from_order(order);
}

} // namespace graphorder
