#include "order/hub.hpp"

#include <algorithm>
#include <numeric>

namespace graphorder {

namespace {

double
effective_threshold(const Csr& g, double threshold)
{
    if (threshold > 0.0)
        return threshold;
    const vid_t n = g.num_vertices();
    return n == 0
        ? 0.0
        : static_cast<double>(g.num_arcs()) / static_cast<double>(n);
}

Permutation
hub_pack(const Csr& g, double threshold, bool sort_hubs)
{
    const vid_t n = g.num_vertices();
    const double cut = effective_threshold(g, threshold);

    std::vector<vid_t> hubs, rest;
    hubs.reserve(n / 8);
    rest.reserve(n);
    for (vid_t v = 0; v < n; ++v) {
        if (static_cast<double>(g.degree(v)) > cut)
            hubs.push_back(v);
        else
            rest.push_back(v);
    }
    if (sort_hubs) {
        std::stable_sort(hubs.begin(), hubs.end(), [&](vid_t a, vid_t b) {
            return g.degree(a) > g.degree(b);
        });
    }
    std::vector<vid_t> order;
    order.reserve(n);
    order.insert(order.end(), hubs.begin(), hubs.end());
    order.insert(order.end(), rest.begin(), rest.end());
    return Permutation::from_order(order);
}

} // namespace

Permutation
hub_sort_order(const Csr& g, double degree_threshold)
{
    return hub_pack(g, degree_threshold, true);
}

Permutation
hub_cluster_order(const Csr& g, double degree_threshold)
{
    return hub_pack(g, degree_threshold, false);
}

} // namespace graphorder
