#include "order/hub.hpp"

#include <algorithm>
#include <numeric>

#include "order/basic.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace graphorder {

double
effective_hub_threshold(const Csr& g, double degree_threshold)
{
    if (degree_threshold > 0.0)
        return degree_threshold;
    const vid_t n = g.num_vertices();
    return n == 0
        ? 0.0
        : static_cast<double>(g.num_arcs()) / static_cast<double>(n);
}

vid_t
count_hubs(const Csr& g, double degree_threshold)
{
    const vid_t n = g.num_vertices();
    const double cut = effective_hub_threshold(g, degree_threshold);
    vid_t hubs = 0;
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static) reduction(+ : hubs)
    for (vid_t v = 0; v < n; ++v)
        hubs += static_cast<double>(g.degree(v)) > cut ? 1 : 0;
    return hubs;
}

namespace {

Permutation
hub_pack(const Csr& g, double threshold, bool sort_hubs)
{
    const vid_t n = g.num_vertices();
    if (n == 0)
        return Permutation::identity(0);
    checkpoint("order/hub");
    const double cut = effective_hub_threshold(g, threshold);

    // Stable two-key counting sort = parallel stable partition: hubs
    // first, natural relative order preserved on both sides.
    auto order = stable_order_by_key<vid_t>(n, 2, [&](vid_t v) {
        return static_cast<double>(g.degree(v)) > cut ? 0u : 1u;
    });
    if (sort_hubs) {
        checkpoint("order/hub");
        vid_t num_hubs = 0;
        while (num_hubs < n
               && static_cast<double>(g.degree(order[num_hubs])) > cut)
            ++num_hubs;
        if (num_hubs > 1) {
            // Counting-sort the hub prefix by non-increasing degree
            // (stable, so equal-degree hubs keep ascending id).
            const vid_t maxdeg = max_degree(g);
            const auto by_deg = stable_order_by_key<vid_t>(
                num_hubs, static_cast<std::size_t>(maxdeg) + 1,
                [&](vid_t i) { return maxdeg - g.degree(order[i]); });
            std::vector<vid_t> sorted_hubs(num_hubs);
            #pragma omp parallel for num_threads(default_threads()) \
                schedule(static)
            for (vid_t i = 0; i < num_hubs; ++i)
                sorted_hubs[i] = order[by_deg[i]];
            std::copy(sorted_hubs.begin(), sorted_hubs.end(),
                      order.begin());
        }
    }
    return Permutation::from_order(order);
}

} // namespace

Permutation
hub_sort_order(const Csr& g, double degree_threshold)
{
    return hub_pack(g, degree_threshold, true);
}

Permutation
hub_cluster_order(const Csr& g, double degree_threshold)
{
    return hub_pack(g, degree_threshold, false);
}

} // namespace graphorder
