/**
 * @file
 * BOBA-style lightweight parallel ordering.
 *
 * BOBA (Drescher et al.) renumbers vertices by *first appearance in the
 * edge stream*: the earlier a vertex is first touched while scanning the
 * edges, the smaller its new id.  Vertices that are streamed together
 * tend to be referenced together, so the scheme inherits much of the
 * input's locality structure at a cost of two linear passes — the point
 * of the lightweight-reordering line of work (Faldu et al.): an ordering
 * only pays off if computing it is cheap relative to the workload.
 *
 * Our edge stream is the CSR adjacency array (arcs in source-major
 * order), so for the natural order this is close to an identity — the
 * scheme is interesting precisely when the input ids are scrambled, the
 * regime the paper's KONECT stand-ins model.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/**
 * First-appearance (BOBA-style) ordering over the adjacency stream.
 *
 * Rank of v = position of v's first occurrence in the adjacency array;
 * vertices that never occur (isolated) go last in ascending id order.
 * Parallel (atomic-min first-touch pass + block-indexed emission),
 * O(|E| + |V|) work, deterministic for any thread count.
 */
Permutation boba_order(const Csr& g);

} // namespace graphorder
