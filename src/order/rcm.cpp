#include "order/rcm.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>

#include "graph/traversal.hpp"
#include "obs/metrics.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace graphorder {

namespace {

/**
 * Cuthill–McKee visit order, computed level-set-parallel but
 * bit-identical to the textbook serial algorithm ("append each vertex's
 * unvisited neighbors in non-decreasing degree order").
 *
 * Equivalence: with CSR adjacency sorted ascending, the serial per-parent
 * stable sort appends children in (degree, id) order, and a child is
 * appended by the *first* of its parents processed — i.e. the parent at
 * the minimum position in the previous level.  The serial level order is
 * therefore exactly ascending (first-parent position, degree, id).  The
 * parallel version discovers each level with a CAS-min claim on the
 * first-parent position and materializes that order with one sort per
 * level, so any thread count reproduces the serial visitation exactly
 * (asserted against a serial reference in tests/order_test.cpp).
 */
std::vector<vid_t>
cuthill_mckee(const Csr& g)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> order;
    order.reserve(n);
    std::vector<std::uint8_t> visited(n, 0);

    // Component start vertices: smallest degree first (paper: "the search
    // resumes with another unvisited vertex of the smallest current
    // degree"), ties by ascending id — the stable_sort order.
    struct MaxVid
    {
        vid_t v = 0;
        MaxVid& operator+=(const MaxVid& o)
        {
            v = std::max(v, o.v);
            return *this;
        }
    };
    const vid_t max_deg =
        chunk_ordered_reduce<MaxVid>(
            n, std::size_t{1} << 15,
            [&](std::size_t lo, std::size_t hi) {
                MaxVid m;
                for (std::size_t i = lo; i < hi; ++i)
                    m.v = std::max(m.v,
                                   g.degree(static_cast<vid_t>(i)));
                return m;
            })
            .v;
    const auto by_degree = stable_order_by_key<vid_t>(
        n, static_cast<std::size_t>(max_deg) + 1,
        [&](vid_t v) { return static_cast<std::size_t>(g.degree(v)); });

    // first_parent[u]: position (within the current frontier) of the
    // first parent to discover u; kNoVertex = unclaimed.  Claimed
    // vertices become visited the same level, so entries never need
    // resetting across levels or components.
    std::unique_ptr<std::atomic<vid_t>[]> first_parent(
        new std::atomic<vid_t>[n]);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (vid_t v = 0; v < n; ++v)
        first_parent[v].store(kNoVertex, std::memory_order_relaxed);

    std::vector<vid_t> frontier, next_level;
    std::vector<std::vector<vid_t>> bufs;
    std::size_t levels = 0;

    for (vid_t cand : by_degree) {
        if (visited[cand])
            continue;
        const vid_t start = pseudo_peripheral_vertex(g, cand);

        visited[start] = 1;
        order.push_back(start);
        frontier.assign(1, start);
        while (!frontier.empty()) {
            checkpoint("rcm/level");
            ++levels;
            const std::size_t f = frontier.size();
            const std::size_t nb = num_blocks(f, 512);
            bufs.assign(nb, {});
            // Claim each unvisited neighbor for its minimum-position
            // parent; exactly one CAS observes the unclaimed state, so
            // every discovered vertex lands in exactly one buffer.
            // visited[] is only written between levels, so the reads
            // here are race-free.
            #pragma omp parallel for num_threads(default_threads()) \
                schedule(static)
            for (std::size_t b = 0; b < nb; ++b) {
                const auto [lo, hi] = block_range(f, nb, b);
                auto& out = bufs[b];
                for (std::size_t i = lo; i < hi; ++i) {
                    const vid_t pos = static_cast<vid_t>(i);
                    for (vid_t u : g.neighbors(frontier[i])) {
                        if (visited[u])
                            continue;
                        vid_t cur = first_parent[u].load(
                            std::memory_order_relaxed);
                        while (pos < cur) {
                            if (first_parent[u].compare_exchange_weak(
                                    cur, pos,
                                    std::memory_order_relaxed)) {
                                if (cur == kNoVertex)
                                    out.push_back(u);
                                break;
                            }
                        }
                    }
                }
            }
            next_level = concat_blocks(bufs);
            // Serial-equivalent level order (see the function comment).
            std::sort(next_level.begin(), next_level.end(),
                      [&](vid_t a, vid_t b) {
                          const vid_t pa = first_parent[a].load(
                              std::memory_order_relaxed);
                          const vid_t pb = first_parent[b].load(
                              std::memory_order_relaxed);
                          if (pa != pb)
                              return pa < pb;
                          if (g.degree(a) != g.degree(b))
                              return g.degree(a) < g.degree(b);
                          return a < b;
                      });
            for (vid_t u : next_level) {
                visited[u] = 1;
                order.push_back(u);
            }
            frontier.swap(next_level);
        }
    }
    obs::MetricsRegistry::instance()
        .counter("order/rcm/parallel_levels")
        .add(levels);
    return order;
}

} // namespace

Permutation
cm_order(const Csr& g)
{
    return Permutation::from_order(cuthill_mckee(g));
}

Permutation
rcm_order(const Csr& g)
{
    auto order = cuthill_mckee(g);
    std::reverse(order.begin(), order.end());
    return Permutation::from_order(order);
}

} // namespace graphorder
