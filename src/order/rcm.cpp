#include "order/rcm.hpp"

#include <algorithm>
#include <numeric>

#include "graph/traversal.hpp"

namespace graphorder {

namespace {

std::vector<vid_t>
cuthill_mckee(const Csr& g)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> order;
    order.reserve(n);
    std::vector<std::uint8_t> visited(n, 0);

    // Component start vertices: smallest degree first (paper: "the search
    // resumes with another unvisited vertex of the smallest current
    // degree").
    std::vector<vid_t> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), vid_t{0});
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](vid_t a, vid_t b) {
                         return g.degree(a) < g.degree(b);
                     });

    std::vector<vid_t> scratch;
    for (vid_t cand : by_degree) {
        if (visited[cand])
            continue;
        const vid_t start = pseudo_peripheral_vertex(g, cand);

        // BFS appending each vertex's unvisited neighbors in
        // non-decreasing degree order.
        std::size_t head = order.size();
        visited[start] = 1;
        order.push_back(start);
        while (head < order.size()) {
            const vid_t v = order[head++];
            scratch.clear();
            for (vid_t u : g.neighbors(v))
                if (!visited[u])
                    scratch.push_back(u);
            std::stable_sort(scratch.begin(), scratch.end(),
                             [&](vid_t a, vid_t b) {
                                 return g.degree(a) < g.degree(b);
                             });
            for (vid_t u : scratch) {
                if (!visited[u]) { // scratch may contain duplicates
                    visited[u] = 1;
                    order.push_back(u);
                }
            }
        }
    }
    return order;
}

} // namespace

Permutation
cm_order(const Csr& g)
{
    return Permutation::from_order(cuthill_mckee(g));
}

Permutation
rcm_order(const Csr& g)
{
    auto order = cuthill_mckee(g);
    std::reverse(order.begin(), order.end());
    return Permutation::from_order(order);
}

} // namespace graphorder
