/**
 * @file
 * Rabbit Order (Arai et al., IPDPS 2016; paper §III-D).
 *
 * Two steps: (1) *incremental aggregation* — vertices are scanned in
 * increasing degree order and each is merged into the neighboring
 * super-vertex with the highest positive modularity gain, recording the
 * merge as a parent/child edge of a dendrogram forest; (2) *ordering
 * generation* — new ids are assigned by depth-first traversal of each
 * dendrogram tree, so vertices of the same (hierarchical) community are
 * consecutive, mapping community hierarchy onto cache hierarchy.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Rabbit Order. */
Permutation rabbit_order(const Csr& g);

} // namespace graphorder
