#include "order/gorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "part/partition.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace graphorder {

namespace {

/**
 * Lazy max-heap keyed by an external key array, with periodic
 * compaction.  Entries are (key, item) pairs on a binary heap; bumps
 * mutate the key array (pushing a fresh entry on increments), and pops
 * re-check each entry against the live key.
 *
 * Pop semantics are canonical: a popped entry whose recorded key went
 * stale is re-filed at the item's *current* key (when positive), so
 * pop_max() always returns the unplaced item with the maximum
 * (current key, id) among items holding at least one entry — a value
 * that depends only on the key array and the set of items present,
 * never on entry duplication or heap layout.  (Discarding stale
 * entries instead would make the result history-dependent: a stale
 * entry becomes live again when its item's key decrements back to the
 * recorded value, and decrements never push.)
 *
 * Compaction exploits that canonicity: every increment pushes, so an
 * unplaced item with a positive key always holds an entry, and the
 * heap can be rebuilt as exactly one entry per such item — same item
 * set, same keys, hence the same pop sequence and the same Gorder
 * output — with the memory bound improved from O(window events) to
 * O(items).
 */
class LazyMaxHeap
{
  public:
    explicit LazyMaxHeap(vid_t n, bool compaction)
        : key_(n, 0), placed_(n, 0), compaction_(compaction)
    {
    }

    void bump(vid_t v, int delta)
    {
        key_[v] += delta;
        if (!placed_[v] && delta > 0) {
            heap_.emplace_back(key_[v], v);
            std::push_heap(heap_.begin(), heap_.end());
            if (heap_.size() > peak_)
                peak_ = heap_.size();
            if (compaction_ && heap_.size() >= next_compact_)
                compact();
        }
        // Decrements leave stale (too-high) entries; pops re-check.
    }

    void mark_placed(vid_t v) { placed_[v] = 1; }
    bool placed(vid_t v) const { return placed_[v]; }
    int key(vid_t v) const { return key_[v]; }

    /** Pop the unplaced item with the highest current key, or kNoVertex.
     *  Key ties break toward the larger item id (max (key, id) pair). */
    vid_t pop_max()
    {
        while (!heap_.empty()) {
            const auto [k, v] = heap_.front();
            std::pop_heap(heap_.begin(), heap_.end());
            heap_.pop_back();
            if (placed_[v])
                continue;
            if (k != key_[v]) {
                // Stale: re-file at the current key and keep looking.
                if (key_[v] > 0) {
                    heap_.emplace_back(key_[v], v);
                    std::push_heap(heap_.begin(), heap_.end());
                }
                continue;
            }
            return v;
        }
        return kNoVertex;
    }

    std::size_t peak_size() const { return peak_; }
    std::size_t compactions() const { return compactions_; }

  private:
    void compact()
    {
        heap_.clear();
        const vid_t n = static_cast<vid_t>(key_.size());
        for (vid_t v = 0; v < n; ++v)
            if (!placed_[v] && key_[v] > 0)
                heap_.emplace_back(key_[v], v);
        std::make_heap(heap_.begin(), heap_.end());
        // Re-arm at ~2x the live size, floored at a fraction of the
        // item count so the O(items) rebuild scan amortizes to O(1)
        // per push even when few items are live.
        next_compact_ = std::max<std::size_t>(2 * heap_.size() + 64,
                                              key_.size() / 4);
        ++compactions_;
    }

    std::vector<int> key_;
    std::vector<std::uint8_t> placed_;
    std::vector<std::pair<int, vid_t>> heap_;
    bool compaction_;
    std::size_t next_compact_ = 64;
    std::size_t peak_ = 0;
    std::size_t compactions_ = 0;
};

struct HeapStats
{
    std::size_t peak = 0;
    std::size_t compactions = 0;
};

/**
 * Windowed greedy over the members of one block.  @p members maps the
 * block-local index to the global vertex id (ascending); @p local maps
 * global id to block-local index (valid only for block members).  When
 * @p part is empty the block is the whole graph; otherwise scoring is
 * restricted to in-block vertices (propagation still walks through
 * out-of-block intermediaries, so shared out-of-block neighbors count).
 *
 * @p poll is called every 256 emits; returning true abandons the block
 * (cooperative cancellation — the caller rethrows).
 */
template <typename PollFn>
std::vector<vid_t>
greedy_block(const Csr& g, const GorderOptions& opt,
             const std::vector<vid_t>& members,
             const std::vector<vid_t>& local,
             const std::vector<vid_t>& part, vid_t b, PollFn&& poll,
             HeapStats& stats)
{
    const vid_t bn = static_cast<vid_t>(members.size());
    const std::size_t w =
        static_cast<std::size_t>(std::max<vid_t>(opt.window, 1));
    LazyMaxHeap heap(bn, opt.heap_compaction);
    auto in_block = [&](vid_t v) { return part.empty() || part[v] == b; };

    // Apply GScore key updates caused by @p v entering/leaving the window.
    auto window_event = [&](vid_t v, int delta) {
        for (vid_t u : g.neighbors(v)) {
            if (in_block(u))
                heap.bump(local[u], delta); // S_n: direct edge to v
            if (opt.hub_cutoff && g.degree(u) > opt.hub_cutoff)
                continue; // bound hub fan-out (see header)
            for (vid_t s : g.neighbors(u))
                if (s != v && in_block(s))
                    heap.bump(local[s], delta); // S_s: shares neighbor u
        }
    };

    // Seed order for fresh starts: by decreasing degree (Wei et al. start
    // from the max-degree vertex).
    std::vector<vid_t> by_degree(members);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](vid_t a, vid_t c) {
                         return g.degree(a) > g.degree(c);
                     });

    std::vector<vid_t> order;
    order.reserve(bn);
    std::deque<vid_t> window;
    std::size_t seed_scan = 0;

    while (order.size() < bn) {
        // Stride the poll: the emit loop runs once per vertex, which is
        // too hot to check the clock every iteration.
        if ((order.size() & 0xFF) == 0 && poll())
            break; // cancelled; caller rethrows
        const vid_t nl = heap.pop_max();
        vid_t next;
        if (nl == kNoVertex) {
            while (seed_scan < bn
                   && heap.placed(local[by_degree[seed_scan]]))
                ++seed_scan;
            if (seed_scan >= bn)
                break;
            next = by_degree[seed_scan];
        } else {
            next = members[nl];
        }
        heap.mark_placed(local[next]);
        order.push_back(next);
        window.push_back(next);
        window_event(next, +1);
        if (window.size() > w) {
            window_event(window.front(), -1);
            window.pop_front();
        }
    }
    stats.peak = heap.peak_size();
    stats.compactions = heap.compactions();
    return order;
}

/** Resolve the block count: explicit option, else env override, else
 *  size-derived (never thread-derived — see GorderOptions::blocks). */
vid_t
resolve_blocks(const GorderOptions& opt, vid_t n)
{
    if (opt.blocks > 0)
        return opt.blocks;
    if (const char* env = std::getenv("GRAPHORDER_GORDER_BLOCKS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<vid_t>(v);
    }
    return static_cast<vid_t>(
        num_blocks(static_cast<std::size_t>(n), std::size_t{1} << 14, 64));
}

} // namespace

Permutation
gorder_order(const Csr& g, const GorderOptions& opt)
{
    const vid_t n = g.num_vertices();
    const vid_t nblocks = std::min<vid_t>(std::max<vid_t>(n, 1),
                                          resolve_blocks(opt, n));
    auto& reg = obs::MetricsRegistry::instance();
    reg.gauge("order/gorder/parallel_blocks")
        .set(static_cast<double>(nblocks));

    std::vector<vid_t> identity(n);
    std::iota(identity.begin(), identity.end(), vid_t{0});

    if (nblocks <= 1) {
        // Exact serial Gorder; throwing checkpoints are fine here.
        HeapStats stats;
        auto order = greedy_block(g, opt, identity, identity, {}, 0,
                                  [] {
                                      checkpoint("gorder/emit");
                                      return false;
                                  },
                                  stats);
        reg.gauge("order/gorder/heap_peak")
            .set(static_cast<double>(stats.peak));
        reg.counter("order/gorder/heap_compactions")
            .add(stats.compactions);
        return Permutation::from_order(order);
    }

    // Block formation: multilevel k-way partition with a fixed seed, so
    // the blocks (and hence the output) depend only on (graph, options).
    std::vector<vid_t> part;
    {
        GO_TRACE_SCOPE("gorder/partition");
        PartitionOptions popt;
        popt.seed = opt.partition_seed;
        part = partition_kway(g, nblocks, popt).part;
    }
    checkpoint("gorder/partition");

    // Members of block b = vertices with part[v] == b, ascending id;
    // local[v] = index of v within its block's member list.
    auto grouped = stable_order_by_key<vid_t>(
        n, static_cast<std::size_t>(nblocks),
        [&](vid_t v) { return static_cast<std::size_t>(part[v]); });
    std::vector<vid_t> offsets(static_cast<std::size_t>(nblocks) + 1, 0);
    for (vid_t v = 0; v < n; ++v)
        ++offsets[part[v] + 1];
    for (std::size_t b = 0; b + 1 < offsets.size(); ++b)
        offsets[b + 1] += offsets[b];
    std::vector<vid_t> local(n, 0);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (vid_t b = 0; b < nblocks; ++b)
        for (vid_t i = offsets[b]; i < offsets[b + 1]; ++i)
            local[grouped[i]] = i - offsets[b];

    // Independent per-block greedy; token captured before the region so
    // workers can poll cancellation without touching thread-local state.
    std::vector<std::vector<vid_t>> block_order(nblocks);
    std::vector<HeapStats> stats(nblocks);
    ParallelCheckpoint cp("gorder/emit");
    {
        GO_TRACE_SCOPE("gorder/greedy");
        #pragma omp parallel for num_threads(default_threads()) \
            schedule(dynamic)
        for (vid_t b = 0; b < nblocks; ++b) {
            if (cp.stop())
                continue;
            std::vector<vid_t> members(
                grouped.begin() + offsets[b],
                grouped.begin() + offsets[b + 1]);
            block_order[b] =
                greedy_block(g, opt, members, local, part, b,
                             [&cp] { return cp.stop(); }, stats[b]);
        }
    }
    cp.rethrow();

    std::size_t peak = 0, compactions = 0;
    for (const auto& s : stats) {
        peak = std::max(peak, s.peak);
        compactions += s.compactions;
    }
    reg.gauge("order/gorder/heap_peak").set(static_cast<double>(peak));
    reg.counter("order/gorder/heap_compactions").add(compactions);

    return Permutation::from_order(concat_blocks(block_order));
}

double
gscore(const Csr& g, const Permutation& pi, vid_t window)
{
    const auto order = pi.order();
    const vid_t n = static_cast<vid_t>(order.size());
    double total = 0;

    std::unordered_set<vid_t> nbrs_of;
    for (vid_t i = 0; i < n; ++i) {
        const vid_t v = order[i];
        nbrs_of.clear();
        for (vid_t u : g.neighbors(v))
            nbrs_of.insert(u);
        const vid_t lo = i >= window ? i - window : 0;
        for (vid_t j = lo; j < i; ++j) {
            const vid_t u = order[j];
            // S_n: edge between u and v.
            if (nbrs_of.count(u))
                total += 1.0;
            // S_s: common neighbors (scan the cheaper list).
            const vid_t probe =
                g.degree(u) <= g.degree(v) ? u : v;
            const vid_t other = probe == u ? v : u;
            for (vid_t x : g.neighbors(probe)) {
                if (x == u || x == v)
                    continue;
                for (vid_t y : g.neighbors(other)) {
                    if (y == x) {
                        total += 1.0;
                        break;
                    }
                }
            }
        }
    }
    return total;
}

} // namespace graphorder
