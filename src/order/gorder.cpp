#include "order/gorder.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/cancel.hpp"

namespace graphorder {

namespace {

/** Lazy max-heap keyed by an external key array. */
class LazyMaxHeap
{
  public:
    explicit LazyMaxHeap(vid_t n) : key_(n, 0), placed_(n, 0) {}

    void bump(vid_t v, int delta)
    {
        key_[v] += delta;
        if (!placed_[v] && delta > 0)
            heap_.emplace(key_[v], v);
        // Decrements leave stale (too-high) entries; pops re-check.
    }

    void mark_placed(vid_t v) { placed_[v] = 1; }
    bool placed(vid_t v) const { return placed_[v]; }
    int key(vid_t v) const { return key_[v]; }

    /** Pop the unplaced vertex with the highest current key, or kNoVertex. */
    vid_t pop_max()
    {
        while (!heap_.empty()) {
            const auto [k, v] = heap_.top();
            if (placed_[v] || k != key_[v]) {
                heap_.pop();
                continue; // stale
            }
            heap_.pop();
            return v;
        }
        return kNoVertex;
    }

  private:
    std::vector<int> key_;
    std::vector<std::uint8_t> placed_;
    std::priority_queue<std::pair<int, vid_t>> heap_;
};

} // namespace

Permutation
gorder_order(const Csr& g, const GorderOptions& opt)
{
    const vid_t n = g.num_vertices();
    const vid_t w = std::max<vid_t>(opt.window, 1);
    LazyMaxHeap heap(n);

    // Apply GScore key updates caused by @p v entering/leaving the window.
    auto window_event = [&](vid_t v, int delta) {
        for (vid_t u : g.neighbors(v)) {
            heap.bump(u, delta); // S_n: direct edge to v
            if (opt.hub_cutoff && g.degree(u) > opt.hub_cutoff)
                continue; // bound hub fan-out (see header)
            for (vid_t s : g.neighbors(u))
                if (s != v)
                    heap.bump(s, delta); // S_s: shares neighbor u with v
        }
    };

    std::vector<vid_t> order;
    order.reserve(n);
    std::deque<vid_t> window;

    // Seed order for fresh starts: by decreasing degree (Wei et al. start
    // from the max-degree vertex).
    std::vector<vid_t> by_degree(n);
    for (vid_t v = 0; v < n; ++v)
        by_degree[v] = v;
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](vid_t a, vid_t b) {
                         return g.degree(a) > g.degree(b);
                     });
    std::size_t seed_scan = 0;

    while (order.size() < n) {
        // Stride the poll: the emit loop runs once per vertex, which is
        // too hot to check the clock every iteration.
        if ((order.size() & 0xFF) == 0)
            checkpoint("gorder/emit");
        vid_t next = heap.pop_max();
        if (next == kNoVertex) {
            while (seed_scan < n && heap.placed(by_degree[seed_scan]))
                ++seed_scan;
            if (seed_scan >= n)
                break;
            next = by_degree[seed_scan];
        }
        heap.mark_placed(next);
        order.push_back(next);
        window.push_back(next);
        window_event(next, +1);
        if (window.size() > w) {
            window_event(window.front(), -1);
            window.pop_front();
        }
    }
    return Permutation::from_order(order);
}

double
gscore(const Csr& g, const Permutation& pi, vid_t window)
{
    const auto order = pi.order();
    const vid_t n = static_cast<vid_t>(order.size());
    double total = 0;

    std::unordered_set<vid_t> nbrs_of;
    for (vid_t i = 0; i < n; ++i) {
        const vid_t v = order[i];
        nbrs_of.clear();
        for (vid_t u : g.neighbors(v))
            nbrs_of.insert(u);
        const vid_t lo = i >= window ? i - window : 0;
        for (vid_t j = lo; j < i; ++j) {
            const vid_t u = order[j];
            // S_n: edge between u and v.
            if (nbrs_of.count(u))
                total += 1.0;
            // S_s: common neighbors (scan the cheaper list).
            const vid_t probe =
                g.degree(u) <= g.degree(v) ? u : v;
            const vid_t other = probe == u ? v : u;
            for (vid_t x : g.neighbors(probe)) {
                if (x == u || x == v)
                    continue;
                for (vid_t y : g.neighbors(other)) {
                    if (y == x) {
                        total += 1.0;
                        break;
                    }
                }
            }
        }
    }
    return total;
}

} // namespace graphorder
