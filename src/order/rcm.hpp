/**
 * @file
 * Reverse Cuthill–McKee ordering (paper §III-E).
 *
 * Classic bandwidth-reducing scheme: starting from a pseudo-peripheral
 * vertex of minimum degree, vertices are numbered in BFS order with each
 * level's unvisited neighbors appended in non-decreasing degree order;
 * the final numbering is reversed (George & Liu 1981).  Components are
 * processed in order of their minimum-degree representative.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** Reverse Cuthill–McKee. */
Permutation rcm_order(const Csr& g);

/** Cuthill–McKee without the final reversal (for tests/ablation). */
Permutation cm_order(const Csr& g);

} // namespace graphorder
