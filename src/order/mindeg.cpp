#include "order/mindeg.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>
#include <vector>

namespace graphorder {

Permutation
min_degree_order(const Csr& g, vid_t fill_cap)
{
    const vid_t n = g.num_vertices();

    // Elimination graph as hash-set adjacency (fill edges get added).
    std::vector<std::unordered_set<vid_t>> adj(n);
    for (vid_t v = 0; v < n; ++v)
        for (vid_t u : g.neighbors(v))
            adj[v].insert(u);

    // Lazy min-heap keyed by current degree.
    using Entry = std::pair<vid_t, vid_t>; // (degree, vertex)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::vector<std::uint8_t> eliminated(n, 0);
    for (vid_t v = 0; v < n; ++v)
        heap.emplace(static_cast<vid_t>(adj[v].size()), v);

    std::vector<vid_t> order;
    order.reserve(n);
    while (!heap.empty()) {
        const auto [deg, v] = heap.top();
        heap.pop();
        if (eliminated[v] || deg != adj[v].size())
            continue; // stale
        eliminated[v] = 1;
        order.push_back(v);

        // Turn v's remaining neighborhood into a clique (bounded: very
        // large neighborhoods skip fill tracking — the heap keys then
        // under-estimate, which only affects tie quality, not validity).
        std::vector<vid_t> nbrs(adj[v].begin(), adj[v].end());
        for (vid_t u : nbrs)
            adj[u].erase(v);
        if (nbrs.size() <= fill_cap) {
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
                    const vid_t a = nbrs[i], b = nbrs[j];
                    if (eliminated[a] || eliminated[b])
                        continue;
                    if (adj[a].insert(b).second)
                        adj[b].insert(a);
                }
            }
        }
        for (vid_t u : nbrs)
            if (!eliminated[u])
                heap.emplace(static_cast<vid_t>(adj[u].size()), u);
        adj[v].clear();
    }
    return Permutation::from_order(order);
}

} // namespace graphorder
