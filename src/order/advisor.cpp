#include "order/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "graph/stats.hpp"
#include "la/gap_measures.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "order/hub.hpp"
#include "order/scheme.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace graphorder {

namespace {

/**
 * Cache-line scatter of hubs under the identity order: lines (8 vertices
 * per 64-byte line of 8-byte entries) holding at least one hub, over the
 * ceil(hubs / 8) lines a packed layout would need.
 */
double
natural_hub_packing(const Csr& g, double cut)
{
    constexpr vid_t kVertsPerLine = 8;
    const vid_t n = g.num_vertices();
    vid_t hubs = 0;
    vid_t lines_touched = 0;
    bool line_has_hub = false;
    for (vid_t v = 0; v < n; ++v) {
        if (v % kVertsPerLine == 0) {
            lines_touched += line_has_hub ? 1 : 0;
            line_has_hub = false;
        }
        if (static_cast<double>(g.degree(v)) > cut) {
            ++hubs;
            line_has_hub = true;
        }
    }
    lines_touched += line_has_hub ? 1 : 0;
    if (hubs == 0)
        return 1.0;
    const vid_t packed = (hubs + kVertsPerLine - 1) / kVertsPerLine;
    return static_cast<double>(lines_touched)
        / static_cast<double>(packed);
}

void
publish(const AdvisorReport& r)
{
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("advisor/runs").add();
    reg.gauge("advisor/degree_cv").set(r.probe.degree_cv);
    reg.gauge("advisor/hub_mass").set(r.probe.hub_mass);
    reg.gauge("advisor/hub_packing").set(r.probe.hub_packing);
    reg.gauge("advisor/eff_diameter")
        .set(static_cast<double>(r.probe.eff_diameter));
    reg.gauge("advisor/diameter_ratio").set(r.probe.diameter_ratio);
    reg.gauge("advisor/natural_avg_gap").set(r.probe.natural_avg_gap);
    reg.gauge("advisor/gap_ratio").set(r.probe.gap_ratio);
    reg.gauge("advisor/gap_floor").set(r.probe.gap_floor);
    reg.gauge("advisor/locality").set(r.scores.locality);
    reg.gauge("advisor/skew").set(r.scores.skew);
    reg.gauge("advisor/potential").set(r.scores.potential);
    reg.gauge("advisor/score_none").set(r.scores.none);
    reg.gauge("advisor/score_lightweight").set(r.scores.lightweight);
    reg.gauge("advisor/score_heavyweight").set(r.scores.heavyweight);
    reg.gauge("advisor/choice")
        .set(static_cast<double>(static_cast<int>(r.choice)));
    reg.gauge("advisor/parallel_budget")
        .set(static_cast<double>(r.cost.threads));
    reg.gauge("advisor/cost_serial_passes").set(r.cost.serial_passes);
    reg.gauge("advisor/cost_parallel_passes")
        .set(r.cost.parallel_passes);
}

/**
 * Fill the cost model for the picked scheme.  Pass coefficients per
 * cost class are order-of-magnitude calibrations against fig4 timings
 * normalized to one O(m) neighbor scan; the point is the *ratio* the
 * parallel budget buys, not absolute seconds.  Thread scaling applies
 * only to schemes whose kernels run under the shared --threads knob
 * (OrderingScheme::parallel), and never changes the family scores —
 * the pick stays machine-independent.
 */
void
fill_cost_model(AdvisorReport& r)
{
    double passes = 2.0; // near-linear: counting sorts, one traversal
    bool parallel = false;
    for (const auto& s : all_schemes()) {
        if (s.name != r.scheme)
            continue;
        parallel = s.parallel;
        switch (s.cost_class) {
          case CostClass::NearLinear: passes = 2.0; break;
          case CostClass::Linearithmic: passes = 12.0; break;
          case CostClass::SuperLinear: passes = 80.0; break;
        }
        break;
    }
    r.cost.threads = default_threads();
    r.cost.parallel_scheme = parallel;
    r.cost.serial_passes = passes;
    r.cost.parallel_passes =
        parallel ? passes / static_cast<double>(r.cost.threads) : passes;
}

} // namespace

AdvisorReport
advise(const Csr& g)
{
    GO_TRACE_SCOPE("advisor/probe");
    AdvisorReport r;
    auto& p = r.probe;
    const vid_t n = g.num_vertices();
    p.num_vertices = n;
    p.num_edges = g.num_edges();
    if (n == 0 || g.num_arcs() == 0) {
        r.choice = AdvisorChoice::None;
        r.scheme = "natural";
        r.rationale = "empty or edgeless graph: nothing to reorder";
        r.scores.none = 1.0;
        fill_cost_model(r);
        publish(r);
        return r;
    }

    // Stage 1: degree statistics + component count (serial scans,
    // deterministic).
    checkpoint("advisor/probe");
    const GraphStats s = compute_stats(g, /*with_triangles=*/false);
    p.mean_degree = s.mean_degree;
    p.max_degree = s.max_degree;
    p.degree_cv =
        s.mean_degree > 0.0 ? s.degree_stddev / s.mean_degree : 0.0;
    p.num_components = s.num_components;
    const double cut = effective_hub_threshold(g);
    p.hub_fraction = static_cast<double>(count_hubs(g))
        / static_cast<double>(n);
    p.hub_mass = hub_mass_fraction(g);
    p.hub_packing = natural_hub_packing(g, cut);

    // Stage 2: diameter estimate by double-sweep BFS.
    checkpoint("advisor/probe");
    p.eff_diameter = estimate_effective_diameter(g);
    const double log2n = std::log2(static_cast<double>(n) + 1.0);
    p.diameter_ratio =
        static_cast<double>(p.eff_diameter) / (2.0 * log2n);

    // Stage 3: locality of the order we already have.
    checkpoint("advisor/probe");
    p.natural_avg_gap = compute_gap_metrics(g).avg_gap;
    const double random_gap = (static_cast<double>(n) + 1.0) / 3.0;
    p.gap_ratio = p.natural_avg_gap / random_gap;

    // Achievability floor: a level-synchronous order of a component
    // reaches average gap about its mean BFS level width; the best
    // partitioners land around half of that on the fig5 sweep, hence
    // the 0.5 calibration (see bench/ablation_advisor.cpp).
    constexpr double kFloorCalibration = 0.5;
    const double mean_comp = static_cast<double>(n)
        / static_cast<double>(std::max<vid_t>(p.num_components, 1));
    p.gap_floor = kFloorCalibration * mean_comp
        / static_cast<double>(std::max<vid_t>(p.eff_diameter, 1));

    // Scores.  locality: how much of the natural order is worth keeping.
    // skew: how hub-concentrated the arc mass is — the *excess* of hub
    // arc mass over hub population (in a flat degree distribution the
    // two roughly match; only a heavy tail concentrates mass on few
    // vertices), damped by the degree CV.  potential: how far the
    // natural order sits above the achievability floor — the payoff
    // *any* scheme could realize.
    auto& sc = r.scores;
    sc.locality = 1.0 - std::min(p.gap_ratio, 1.0);
    sc.skew = std::max(0.0, p.hub_mass - p.hub_fraction)
        * (p.degree_cv / (p.degree_cv + 1.0));
    sc.potential = p.natural_avg_gap > 0.0
        ? std::clamp((p.natural_avg_gap - p.gap_floor)
                         / p.natural_avg_gap,
                     0.0, 1.0)
        : 0.0;

    // The lightweight family fits when there is locality to preserve
    // *and* hub mass to segregate (Faldu et al.); otherwise a paying
    // graph should be rebuilt by the heavyweight family.  The none
    // score is squared to bias toward acting: a reorder is paid once,
    // bad locality is paid on every traversal.
    constexpr double kSkewSaturation = 0.4;
    const double light_affinity =
        sc.locality * std::min(1.0, sc.skew / kSkewSaturation);
    sc.none = (1.0 - sc.potential) * (1.0 - sc.potential);
    sc.lightweight = sc.potential * light_affinity;
    sc.heavyweight = sc.potential * (1.0 - light_affinity);

    // Ties break toward the cheaper action: none, then lightweight.
    if (sc.none >= sc.lightweight && sc.none >= sc.heavyweight) {
        r.choice = AdvisorChoice::None;
        r.scheme = "natural";
        std::ostringstream os;
        os << "natural order is near the achievability floor (avg gap "
           << p.natural_avg_gap << " vs floor " << p.gap_floor
           << "): reordering won't pay";
        r.rationale = os.str();
    } else if (sc.lightweight >= sc.heavyweight) {
        r.choice = AdvisorChoice::Lightweight;
        r.scheme = "dbg";
        std::ostringstream os;
        os << "existing locality (gap ratio " << p.gap_ratio
           << ") with skewed hub mass (" << p.hub_mass
           << "): segregate hot vertices, keep the rest";
        r.rationale = os.str();
    } else {
        r.choice = AdvisorChoice::Heavyweight;
        // metis-32 is the only *deterministic* member of the paper's
        // top avg-gap tier (metis/grappolo/rabbit), and on the fig5
        // sweep it is the one heavyweight scheme that stays within 10%
        // of the oracle on every family — including coordinate-sorted
        // roads, where RCM loses to the existing geometric order (see
        // bench/ablation_advisor.cpp).
        r.scheme = "metis-32";
        std::ostringstream os;
        os << "payoff " << sc.potential << " with little hub skew to "
           << "exploit cheaply (skew " << sc.skew
           << "): rebuild the order with " << r.scheme;
        r.rationale = os.str();
    }
    fill_cost_model(r);
    publish(r);
    return r;
}

Expected<AutoRunResult>
run_auto(const Csr& g, const GuardedRunOptions& opt)
{
    AutoRunResult out;
    out.report = advise(g);
    auto run = run_guarded(out.report.scheme, g, opt);
    if (!run)
        return run.status();
    out.run = std::move(*run);
    return out;
}

const char*
advisor_choice_name(AdvisorChoice c)
{
    switch (c) {
      case AdvisorChoice::None: return "none";
      case AdvisorChoice::Lightweight: return "lightweight";
      case AdvisorChoice::Heavyweight: return "heavyweight";
    }
    return "?";
}

} // namespace graphorder
