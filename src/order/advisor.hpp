/**
 * @file
 * Structural ordering advisor: decides *whether* reordering a graph will
 * pay and *which scheme family* to run, from a cheap structural probe —
 * no trial reorderings.
 *
 * The paper's central finding is that no scheme wins everywhere, which
 * in production means the system must pick per graph.  The advisor
 * combines two published observations:
 *
 *  - Faldu et al. ("A Closer Look at Lightweight Graph Reordering",
 *    IISWC 2019): on skewed graphs whose natural order already has
 *    locality, lightweight hot/cold segregation (DBG / hub family)
 *    captures most of the benefit without destroying that locality.
 *  - The locality-vs-diameter thesis (arXiv:2111.12281): degree skew and
 *    diameter estimates predict when reordering pays at all — expanders
 *    admit no good linear arrangement, long-diameter meshes/roads do.
 *
 * Probe cost: O(n + m) — one degree scan, connected components, a few
 * double-sweep BFS rounds, the natural-order gap metrics, and a
 * cache-line hub-packing scan.  Every stage is deterministic for any
 * thread count (serial scans or the deterministic parallel primitives of
 * util/parallel.hpp), so the same graph always yields the same
 * recommendation.  checkpoint() is polled between stages, so guarded
 * callers can cancel a probe.
 *
 * Exposed as `reorder --scheme auto` (probe, then run the pick under
 * run_guarded) and `reorder --advise` (probe only); see
 * docs/scheme-selection.md for the decision tree and DESIGN.md §13 for
 * the score definitions and thresholds.
 */
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "order/runner.hpp"
#include "util/status.hpp"

namespace graphorder {

/** Which family (if any) the advisor recommends. */
enum class AdvisorChoice
{
    None,        ///< reordering won't pay: keep the natural order
    Lightweight, ///< DBG / hub family: segregate hot vertices, keep order
    Heavyweight, ///< partition / fill-reducing family: rebuild the order
};

/** Raw structural measurements behind a recommendation. */
struct AdvisorProbe
{
    vid_t num_vertices = 0;
    eid_t num_edges = 0;
    double mean_degree = 0.0;
    vid_t max_degree = 0;
    /** Degree coefficient of variation (stddev / mean); >1 = heavy tail. */
    double degree_cv = 0.0;
    /** Fraction of vertices with degree > average (the hub cut). */
    double hub_fraction = 0.0;
    /** Fraction of arc endpoints incident to hubs (skew mass). */
    double hub_mass = 0.0;
    /**
     * Cache-line scatter of hubs under the natural order: lines holding
     * at least one hub over the minimum lines needed if hubs were packed
     * (8 vertices / 64-byte line).  1 = perfectly packed, large =
     * scattered — exactly what the hub family fixes.
     */
    double hub_packing = 1.0;
    vid_t num_components = 0;
    /** Double-sweep BFS diameter estimate (stats.hpp). */
    vid_t eff_diameter = 0;
    /** eff_diameter / (2 log2 n): <1 small-world, >>1 mesh/road-like. */
    double diameter_ratio = 0.0;
    /** Average gap of the natural order (la/gap_measures.hpp). */
    double natural_avg_gap = 0.0;
    /** natural_avg_gap over the random-order expectation (n+1)/3;
     *  ~1 = the natural order is as bad as random, ~0 = strong locality. */
    double gap_ratio = 0.0;
    /**
     * BFS-level-width achievability floor: a level-synchronous order of
     * a component reaches average gap about its mean BFS level width,
     * so no scheme is expected to push the average gap much below
     * mean_component_size / eff_diameter.  Expanders (small diameter,
     * one component) get a high floor — reordering can't help them.
     */
    double gap_floor = 0.0;
};

/** Derived scores in [0, 1]; the largest decides the recommendation. */
struct AdvisorScores
{
    double locality = 0.0;  ///< 1 - min(gap_ratio, 1)
    double skew = 0.0;      ///< hub_mass * cv/(cv+1)
    double potential = 0.0; ///< (natural_avg_gap - gap_floor) / natural
    double none = 0.0;
    double lightweight = 0.0;
    double heavyweight = 0.0;
};

/**
 * Cost model behind a recommendation: the picked scheme's estimated
 * reorder cost in units of O(m) neighbor-scan passes (coefficients per
 * cost class, calibrated against bench/fig4), and the same cost after
 * dividing by the parallel budget when the scheme's kernels run under
 * the shared --threads knob.  Since the heavyweight tier went parallel,
 * the amortization horizon the advisor reasons about shrinks with the
 * thread count — surfaced here and as `advisor/cost_*` gauges rather
 * than baked into the family scores, which stay thread-independent so
 * the same graph yields the same pick on any machine.
 */
struct AdvisorCostModel
{
    int threads = 1;             ///< parallel budget at probe time
    bool parallel_scheme = false; ///< pick runs under --threads
    double serial_passes = 0.0;   ///< est. O(m) passes at 1 thread
    double parallel_passes = 0.0; ///< est. O(m) passes at `threads`
};

/** A scored recommendation. */
struct AdvisorReport
{
    AdvisorProbe probe;
    AdvisorScores scores;
    AdvisorChoice choice = AdvisorChoice::None;
    /** Registry scheme implementing the choice: "natural", "dbg", or
     *  "metis-32" — the deterministic member of the paper's top
     *  avg-gap tier (see advisor.cpp for why not rcm). */
    std::string scheme;
    /** Estimated cost of running the pick (see AdvisorCostModel). */
    AdvisorCostModel cost;
    /** One-line human-readable justification. */
    std::string rationale;
};

/**
 * Probe @p g and recommend a scheme family.
 *
 * Deterministic: same graph, same report, at any thread count.
 * Publishes the `advisor/` gauges (probe values + scores) and the
 * `advisor/runs` counter to the obs metrics registry.
 * Complexity: O(n + m); polls checkpoint("advisor/probe") between
 * stages.
 */
AdvisorReport advise(const Csr& g);

/** Outcome of an `auto` run: the recommendation plus the guarded run. */
struct AutoRunResult
{
    AdvisorReport report;
    GuardedRunResult run;
};

/**
 * `reorder --scheme auto` in library form: advise(g), then run the
 * recommended scheme under run_guarded with @p opt (budgets, validation
 * and fallback chains all apply; the probe itself runs before the
 * budget clock starts).
 */
Expected<AutoRunResult> run_auto(const Csr& g,
                                 const GuardedRunOptions& opt = {});

/** "none" / "lightweight" / "heavyweight" (static string, never null). */
const char* advisor_choice_name(AdvisorChoice c);

} // namespace graphorder
