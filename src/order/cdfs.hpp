/**
 * @file
 * Children Depth-First Search ordering (Banerjee et al. 1988), cited by
 * the paper (§III-E, footnote 1) as "a relaxation [of RCM] where the
 * renumbering of unvisited neighbors follows an arbitrary order at every
 * level" — i.e. RCM without the per-level degree sort.  Included as an
 * extension so the ablation bench can quantify what the degree sort buys.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/** CDFS: reversed BFS numbering with arbitrary (natural) neighbor order. */
Permutation cdfs_order(const Csr& g);

} // namespace graphorder
