#include "order/community_order.hpp"

#include <algorithm>
#include <numeric>

#include "graph/coarsen.hpp"
#include "order/rcm.hpp"

namespace graphorder {

Permutation
order_by_communities(const std::vector<vid_t>& community,
                     const std::vector<vid_t>& community_rank, vid_t n)
{
    std::vector<vid_t> order(n);
    std::iota(order.begin(), order.end(), vid_t{0});
    std::stable_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
        return community_rank[community[a]] < community_rank[community[b]];
    });
    return Permutation::from_order(order);
}

Permutation
grappolo_order(const Csr& g, const LouvainOptions& opt)
{
    auto res = louvain(g, opt);
    // Identity rank: communities in first-appearance (arbitrary) order.
    std::vector<vid_t> rank(res.num_communities);
    std::iota(rank.begin(), rank.end(), vid_t{0});
    return order_by_communities(res.community, rank, g.num_vertices());
}

Permutation
grappolo_rcm_order(const Csr& g, const LouvainOptions& opt)
{
    auto res = louvain(g, opt);
    auto coarse =
        coarsen_by_groups(g, res.community, res.num_communities);
    const Permutation pi_c = rcm_order(coarse.graph);
    std::vector<vid_t> rank(res.num_communities);
    for (vid_t c = 0; c < res.num_communities; ++c)
        rank[c] = pi_c.rank(c);
    return order_by_communities(res.community, rank, g.num_vertices());
}

} // namespace graphorder
