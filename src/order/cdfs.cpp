#include "order/cdfs.hpp"

#include <algorithm>
#include <numeric>

#include "graph/traversal.hpp"

namespace graphorder {

Permutation
cdfs_order(const Csr& g)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> order;
    order.reserve(n);
    std::vector<std::uint8_t> visited(n, 0);

    // Component starts by smallest degree, as in RCM.
    std::vector<vid_t> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), vid_t{0});
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](vid_t a, vid_t b) {
                         return g.degree(a) < g.degree(b);
                     });
    for (vid_t cand : by_degree) {
        if (visited[cand])
            continue;
        const vid_t start = pseudo_peripheral_vertex(g, cand);
        std::size_t head = order.size();
        visited[start] = 1;
        order.push_back(start);
        while (head < order.size()) {
            const vid_t v = order[head++];
            // The relaxation: neighbors appended in adjacency (natural)
            // order, no degree sort.
            for (vid_t u : g.neighbors(v)) {
                if (!visited[u]) {
                    visited[u] = 1;
                    order.push_back(u);
                }
            }
        }
    }
    std::reverse(order.begin(), order.end());
    return Permutation::from_order(order);
}

} // namespace graphorder
