#include "order/boba.hpp"

#include <atomic>

#include "util/parallel.hpp"

namespace graphorder {

Permutation
boba_order(const Csr& g)
{
    const vid_t n = g.num_vertices();
    if (n == 0)
        return Permutation::identity(0);
    const eid_t m = g.num_arcs();
    const auto& adj = g.adjacency();
    const int threads = default_threads();

    // Pass 1: first[v] = smallest arc index where v appears (atomic min;
    // min is commutative, so the result is scheduling-independent).
    // Sentinel m marks vertices that never appear (isolated).
    std::vector<eid_t> first(n, m);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (eid_t i = 0; i < m; ++i) {
        std::atomic_ref<eid_t> f(first[adj[i]]);
        eid_t cur = f.load(std::memory_order_relaxed);
        while (i < cur
               && !f.compare_exchange_weak(cur, i,
                                           std::memory_order_relaxed)) {
        }
    }

    // Pass 2: emit vertices in first-appearance order without sorting.
    // Block b of the arc stream owns the vertices whose first touch lies
    // in its range; scanning the block in order yields them already
    // sorted by position.  Blocks concatenate in stream order.
    const std::size_t nb = num_blocks(m, std::size_t{1} << 14);
    std::vector<std::size_t> emitted(nb + 1, 0);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(m, nb, b);
        std::size_t c = 0;
        for (std::size_t i = lo; i < hi; ++i)
            if (first[adj[i]] == static_cast<eid_t>(i))
                ++c;
        emitted[b] = c;
    }
    const std::size_t touched = exclusive_prefix_sum(emitted);

    std::vector<vid_t> order(n);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(m, nb, b);
        std::size_t pos = emitted[b];
        for (std::size_t i = lo; i < hi; ++i) {
            const vid_t v = adj[i];
            if (first[v] == static_cast<eid_t>(i))
                order[pos++] = v;
        }
    }

    // Pass 3: isolated vertices last, in ascending id (block-indexed
    // count + scan + scatter, same determinism argument).
    if (touched < n) {
        const std::size_t vb = num_blocks(n, std::size_t{1} << 14);
        std::vector<std::size_t> iso(vb + 1, 0);
        #pragma omp parallel for num_threads(threads) schedule(static)
        for (std::size_t b = 0; b < vb; ++b) {
            const auto [lo, hi] = block_range(n, vb, b);
            std::size_t c = 0;
            for (std::size_t v = lo; v < hi; ++v)
                if (first[v] == m)
                    ++c;
            iso[b] = c;
        }
        exclusive_prefix_sum(iso);
        #pragma omp parallel for num_threads(threads) schedule(static)
        for (std::size_t b = 0; b < vb; ++b) {
            const auto [lo, hi] = block_range(n, vb, b);
            std::size_t pos = touched + iso[b];
            for (std::size_t v = lo; v < hi; ++v)
                if (first[v] == m)
                    order[pos++] = static_cast<vid_t>(v);
        }
    }
    return Permutation::from_order(order);
}

} // namespace graphorder
