/**
 * @file
 * Guarded execution of ordering schemes: budgets, invariant validation
 * and fallback chains.
 *
 * `run_guarded` is the robustness boundary between the scheme kernels
 * (which signal failure by throwing, most precisely GraphorderError)
 * and callers that must make progress — benches producing a figure,
 * the CLI producing a permutation.  One guarded run:
 *
 *   1. validates the input CSR (skippable via options),
 *   2. installs a CancelToken with the caller's wall-clock / memory
 *      budgets; kernels observe it at their round-boundary
 *      `checkpoint()` sites (util/cancel.hpp),
 *   3. runs the scheme, validating the returned permutation,
 *   4. on failure, walks the scheme's fallback chain (cheaper schemes
 *      of a similar flavor, ending in a baseline — the lightweight
 *      degradation policy of Faldu et al.'s closeness-tier argument)
 *      with a *fresh* budget per attempt,
 *   5. publishes `robust/{guarded_runs,failures,fallbacks,
 *      budget_exceeded}` counters to the obs metrics registry.
 *
 * The error taxonomy (util/status.hpp) is preserved: the returned
 * Expected carries the *first* failure's status when every attempt
 * failed, and the per-attempt statuses ride along in
 * GuardedRunResult::failures when a fallback eventually succeeded.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/permutation.hpp"
#include "order/scheme.hpp"
#include "util/status.hpp"

namespace graphorder {

/** Knobs for one guarded run.  Zero budgets mean "unlimited". */
struct GuardedRunOptions
{
    std::uint64_t seed = 42;
    /** Wall-clock budget per attempt in ms; 0 = none. */
    double deadline_ms = 0;
    /** Approximate RSS-growth budget per attempt in MiB; 0 = none. */
    std::uint64_t mem_budget_mb = 0;
    /** Validate the input CSR and the returned permutation. */
    bool validate = true;
    /** Walk the scheme's fallback chain on failure. */
    bool allow_fallback = true;
    /**
     * Non-empty: use this chain instead of the scheme's registered one.
     * Entries are registry names; unknown names fail that attempt with
     * InvalidInput and the walk continues.
     */
    std::vector<std::string> fallback_override;
};

/** One failed attempt inside a guarded run. */
struct AttemptFailure
{
    std::string scheme; ///< registry name of the attempt
    Status status;      ///< why it failed
};

/** Outcome of a successful guarded run (possibly via fallback). */
struct GuardedRunResult
{
    Permutation perm;
    std::string scheme_used; ///< scheme that produced `perm`
    bool fell_back = false;  ///< true when scheme_used != requested
    double elapsed_s = 0;    ///< wall time of the *successful* attempt
    /** Failures that preceded the success, in attempt order. */
    std::vector<AttemptFailure> failures;
};

/**
 * Run @p scheme on @p g under the budgets in @p opt, falling back down
 * the scheme's chain on failure.
 *
 * Fallback-chain walk: the chain is opt.fallback_override when
 * non-empty, else the scheme's registered `fallback` list, else
 * {"natural"}; it is walked in order, one *fresh* budget per attempt,
 * unknown names skipped as InvalidInput failures, and never followed
 * transitively (a fallback's own chain is ignored).  See the annotated
 * walk in runner.cpp and the per-scheme chains in
 * docs/scheme-selection.md (regenerable via `reorder --list --json`).
 *
 * @return the result, or — when every attempt failed (or fallback was
 *         disabled) — the *first* failure's status with the attempted
 *         chain appended as context.
 * Exception-safety: scheme exceptions are converted to Status via
 * status_from_current_exception(); nothing escapes except bad_alloc
 * raised while building the error itself.
 * Thread-safety: safe to call concurrently; the cancellation token is
 * installed thread-locally.
 */
Expected<GuardedRunResult> run_guarded(const OrderingScheme& scheme,
                                       const Csr& g,
                                       const GuardedRunOptions& opt = {});

/**
 * Name-based convenience overload.
 * @return InvalidInput when @p scheme_name is not registered (the
 *         registry's std::out_of_range is absorbed, not thrown).
 */
Expected<GuardedRunResult> run_guarded(const std::string& scheme_name,
                                       const Csr& g,
                                       const GuardedRunOptions& opt = {});

} // namespace graphorder
