/**
 * @file
 * Greedy minimum-degree ordering — the classic fill-reducing family the
 * paper cites alongside RCM and ND (§III-E: "Multiple minimum degree
 * (MMD) and approximate minimum degree (AMD) are two such examples").
 *
 * The textbook algorithm: repeatedly eliminate a vertex of minimum
 * degree in the *elimination graph* (the graph where each eliminated
 * vertex's neighborhood has been turned into a clique).  Exact and
 * simple rather than MMD/AMD-fast: intended for the qualitative study's
 * small instances (extension scheme, not in the paper's roster).
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

/**
 * Minimum-degree elimination ordering (ranks in elimination order).
 * @param fill_cap abort fill-in tracking per vertex beyond this many
 *        neighbors (degrades to degree order; keeps dense graphs safe).
 */
Permutation min_degree_order(const Csr& g, vid_t fill_cap = 4096);

} // namespace graphorder
