#include "kernels/bc.hpp"

#include <algorithm>

#include "memsim/cache.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace graphorder {

BcResult
betweenness_centrality(const GraphView& g, const BcOptions& opt)
{
    const vid_t n = g.num_vertices();
    BcResult res;
    res.centrality.assign(n, 0.0);
    if (n == 0)
        return res;

    Timer timer;
    timer.start();

    // Source selection: all vertices (exact) or a random sample.
    std::vector<vid_t> sources;
    if (opt.num_sources == 0 || opt.num_sources >= n) {
        sources.resize(n);
        for (vid_t v = 0; v < n; ++v)
            sources[v] = v;
    } else {
        Rng rng(opt.seed);
        std::vector<vid_t> all(n);
        for (vid_t v = 0; v < n; ++v)
            all[v] = v;
        shuffle(all.begin(), all.end(), rng);
        sources.assign(all.begin(), all.begin() + opt.num_sources);
    }

    std::vector<vid_t> order;           // BFS visit order (the "stack")
    std::vector<std::int64_t> dist(n, -1);
    std::vector<double> sigma(n, 0.0);  // shortest-path counts
    std::vector<double> delta(n, 0.0);  // dependencies
    AccessTracer* tracer = opt.tracer;
    // Flat lists are traced per adjacency entry below; compressed lists
    // are traced at their encoded-byte addresses by neighbors() itself.
    const bool trace_entries = tracer && !g.compressed();
    GraphView::Scratch scratch;

    for (vid_t s : sources) {
        order.clear();
        std::fill(dist.begin(), dist.end(), -1);
        std::fill(sigma.begin(), sigma.end(), 0.0);
        std::fill(delta.begin(), delta.end(), 0.0);

        dist[s] = 0;
        sigma[s] = 1.0;
        order.push_back(s);
        for (std::size_t head = 0; head < order.size(); ++head) {
            const vid_t v = order[head];
            const auto nbrs = g.neighbors(v, scratch, tracer);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                const vid_t u = nbrs[i];
                if (tracer) {
                    if (trace_entries)
                        tracer->load(&nbrs[i], sizeof(vid_t));
                    tracer->load(&dist[u], sizeof(std::int64_t));
                }
                ++res.edges_traversed;
                if (dist[u] < 0) {
                    dist[u] = dist[v] + 1;
                    order.push_back(u);
                }
                if (dist[u] == dist[v] + 1)
                    sigma[u] += sigma[v];
            }
        }
        // Dependency accumulation in reverse BFS order (the second half
        // of the hot loop; its adjacency re-walk is part of the traced
        // access stream).
        for (std::size_t i = order.size(); i-- > 1;) {
            const vid_t w = order[i];
            const auto nbrs = g.neighbors(w, scratch, tracer);
            for (std::size_t j = 0; j < nbrs.size(); ++j) {
                const vid_t v = nbrs[j];
                if (tracer) {
                    if (trace_entries)
                        tracer->load(&nbrs[j], sizeof(vid_t));
                    tracer->load(&dist[v], sizeof(std::int64_t));
                }
                if (dist[v] == dist[w] - 1 && sigma[w] > 0) {
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                }
            }
            res.centrality[w] += delta[w];
        }
    }
    // Undirected graphs count each path twice.
    for (auto& c : res.centrality)
        c /= 2.0;
    res.total_time_s = timer.elapsed_s();
    return res;
}

BcResult
betweenness_centrality(const Csr& g, const BcOptions& opt)
{
    return betweenness_centrality(GraphView(g), opt);
}

} // namespace graphorder
