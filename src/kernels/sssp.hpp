/**
 * @file
 * Single-source shortest paths — second member of the prototypical
 * kernel suite used by the lightweight-reordering studies the paper
 * builds on (paper §VI: "PageRank, Single Source Shortest Paths, and
 * Betweenness Centrality").
 *
 * Two algorithms:
 *  - Dijkstra with a binary heap (weighted graphs; unit weights when the
 *    graph is unweighted), and
 *  - delta-stepping (bucketed relaxation) — the parallel-friendly variant
 *    used by high-performance frameworks; here it serves as an
 *    alternative access pattern for the ordering study.
 */
#pragma once

#include <limits>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph_view.hpp"

namespace graphorder {

/** Result of an SSSP run. */
struct SsspResult
{
    std::vector<double> distance; ///< +inf for unreachable
    std::uint64_t edges_relaxed = 0;
    double total_time_s = 0;

    static constexpr double kInf = std::numeric_limits<double>::infinity();
};

/** Dijkstra with a binary heap. @p tracer sees the relaxation loads. */
SsspResult sssp_dijkstra(const Csr& g, vid_t source,
                         AccessTracer* tracer = nullptr);

/** Dijkstra against either storage backend; results are bit-identical
 *  across backends (unit weights on the compressed backend). */
SsspResult sssp_dijkstra(const GraphView& g, vid_t source,
                         AccessTracer* tracer = nullptr);

/** Delta-stepping. @p delta bucket width (0 = mean edge weight). */
SsspResult sssp_delta_stepping(const Csr& g, vid_t source,
                               double delta = 0.0,
                               AccessTracer* tracer = nullptr);

/** Delta-stepping against either storage backend.  With delta = 0 the
 *  compressed backend defaults the bucket width to 1.0 (its graphs are
 *  unweighted, so this equals the flat backend's mean edge weight). */
SsspResult sssp_delta_stepping(const GraphView& g, vid_t source,
                               double delta = 0.0,
                               AccessTracer* tracer = nullptr);

} // namespace graphorder
