#include "kernels/pagerank.hpp"

#include <cmath>

#include "memsim/cache.hpp"
#include "util/timer.hpp"

namespace graphorder {

PageRankResult
pagerank(const GraphView& g, const PageRankOptions& opt)
{
    const vid_t n = g.num_vertices();
    PageRankResult res;
    res.rank.assign(n, n ? 1.0 / n : 0.0);
    if (n == 0)
        return res;

    // Dangling (degree-0) vertices redistribute uniformly.
    std::vector<double> contrib(n, 0.0);
    std::vector<double> next_rank(n, 0.0);
    Timer timer;
    timer.start();
    const double base = (1.0 - opt.damping) / n;
    AccessTracer* tracer = opt.tracer;
    // Flat lists are traced per adjacency entry below; compressed lists
    // are traced at their encoded-byte addresses by neighbors() itself.
    const bool trace_entries = tracer && !g.compressed();
    GraphView::Scratch scratch;

    for (int it = 0; it < opt.max_iterations; ++it) {
        double dangling = 0.0;
        for (vid_t v = 0; v < n; ++v) {
            const vid_t d = g.degree(v);
            if (d == 0)
                dangling += res.rank[v];
            else
                contrib[v] = res.rank[v] / d;
        }
        const double dangling_share = opt.damping * dangling / n;

        double delta = 0.0;
        for (vid_t v = 0; v < n; ++v) {
            double acc = 0.0;
            const auto nbrs = g.neighbors(v, scratch, tracer);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                const vid_t u = nbrs[i];
                if (tracer) {
                    // Trace the CSR adjacency entry itself (a streaming
                    // access) and the gathered contribution (the random
                    // access reordering is meant to tame).
                    if (trace_entries)
                        tracer->load(&nbrs[i], sizeof(vid_t));
                    tracer->load(&contrib[u], sizeof(double));
                }
                acc += contrib[u];
            }
            const double next = base + dangling_share + opt.damping * acc;
            delta += std::abs(next - res.rank[v]);
            next_rank[v] = next;
        }
        res.rank.swap(next_rank);
        ++res.iterations;
        if (delta / n < opt.tolerance)
            break;
    }
    res.total_time_s = timer.elapsed_s();
    return res;
}

PageRankResult
pagerank(const Csr& g, const PageRankOptions& opt)
{
    return pagerank(GraphView(g), opt);
}

} // namespace graphorder
