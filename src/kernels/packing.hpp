/**
 * @file
 * Packing-factor analysis (Balaji & Lucia, IISWC 2018), the amenability
 * criterion the paper cites for the lightweight hub schemes (§III-B:
 * lightweight techniques help "provided the input graph is amenable to
 * Degree Sort reordering (satisfies certain characteristics like
 * 'Packing Factor')").
 *
 * The packing factor of a layout is the ratio between the number of
 * cache lines that hold at least one hub vertex's data under that layout
 * and the minimum number of lines the hubs would occupy if packed
 * contiguously.  A high packing factor means hub data is scattered —
 * exactly the situation Hub Sort / Hub Clustering fix.
 */
#pragma once

#include "graph/csr.hpp"
#include "graph/permutation.hpp"

namespace graphorder {

class AccessTracer;

/** Result of a packing analysis. */
struct PackingAnalysis
{
    vid_t num_hubs = 0;
    double hub_fraction = 0;        ///< hubs / n
    std::uint64_t lines_touched = 0;///< lines holding >= 1 hub
    std::uint64_t lines_packed = 0; ///< ceil(hubs * entry / line)
    double packing_factor = 0;      ///< touched / packed (>= 1)
    /** Fraction of all arc endpoints that point at hubs — how "hot" the
     *  hub working set is. */
    double hub_arc_fraction = 0;
};

/**
 * Analyze the hub layout of @p g under ordering @p pi.
 * @param entry_bytes per-vertex payload size (8 = one double).
 * @param line_bytes cache line size.
 * @param degree_threshold hub cutoff (0 = average degree).
 * @param tracer optional: replay the per-hub rank-array walk (the layout
 *        stream the packing factor summarizes) into the cache simulator.
 */
PackingAnalysis packing_analysis(const Csr& g, const Permutation& pi,
                                 unsigned entry_bytes = 8,
                                 unsigned line_bytes = 64,
                                 double degree_threshold = 0.0,
                                 AccessTracer* tracer = nullptr);

} // namespace graphorder
