/**
 * @file
 * Betweenness centrality (Brandes' algorithm) — third member of the
 * prototypical kernel suite of the lightweight-reordering studies cited
 * by the paper (§VI).
 *
 * Exact BC is O(nm); for the ordering benches a sampled variant (BFS +
 * dependency accumulation from K random sources) gives the same access
 * pattern at bounded cost, which is the standard practice in the
 * reordering literature.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph_view.hpp"

namespace graphorder {

/** Betweenness-centrality options. */
struct BcOptions
{
    /** Number of source samples (0 = exact, all sources). */
    vid_t num_sources = 32;
    std::uint64_t seed = 1;
    AccessTracer* tracer = nullptr;
};

/** Result of a BC run. */
struct BcResult
{
    std::vector<double> centrality;
    double total_time_s = 0;
    std::uint64_t edges_traversed = 0;
};

/** Brandes BC on an unweighted graph (sampled when num_sources > 0). */
BcResult betweenness_centrality(const Csr& g, const BcOptions& opt = {});

/** Brandes BC against either storage backend; results are bit-identical
 *  across backends (both iterate neighbors ascending). */
BcResult betweenness_centrality(const GraphView& g,
                                const BcOptions& opt = {});

} // namespace graphorder
