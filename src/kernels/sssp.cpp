#include "kernels/sssp.hpp"

#include <algorithm>
#include <queue>

#include "memsim/cache.hpp"
#include "util/timer.hpp"

namespace graphorder {

namespace {

inline double
edge_weight(std::span<const weight_t> ws, std::size_t i)
{
    return ws.empty() ? 1.0 : ws[i];
}

} // namespace

SsspResult
sssp_dijkstra(const GraphView& g, vid_t source, AccessTracer* tracer)
{
    const vid_t n = g.num_vertices();
    SsspResult res;
    res.distance.assign(n, SsspResult::kInf);
    if (n == 0)
        return res;

    Timer timer;
    timer.start();
    const bool trace_entries = tracer && !g.compressed();
    GraphView::Scratch scratch;
    using Entry = std::pair<double, vid_t>; // (distance, vertex)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    res.distance[source] = 0.0;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
        const auto [dist, v] = heap.top();
        heap.pop();
        if (dist > res.distance[v])
            continue; // stale entry
        const auto nbrs = g.neighbors(v, scratch, tracer);
        const auto ws = g.neighbor_weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const vid_t u = nbrs[i];
            const double cand = dist + edge_weight(ws, i);
            if (tracer) {
                if (trace_entries)
                    tracer->load(&nbrs[i], sizeof(vid_t));
                tracer->load(&res.distance[u], sizeof(double));
            }
            ++res.edges_relaxed;
            if (cand < res.distance[u]) {
                res.distance[u] = cand;
                heap.emplace(cand, u);
            }
        }
    }
    res.total_time_s = timer.elapsed_s();
    return res;
}

SsspResult
sssp_dijkstra(const Csr& g, vid_t source, AccessTracer* tracer)
{
    return sssp_dijkstra(GraphView(g), source, tracer);
}

SsspResult
sssp_delta_stepping(const GraphView& g, vid_t source, double delta,
                    AccessTracer* tracer)
{
    const vid_t n = g.num_vertices();
    SsspResult res;
    res.distance.assign(n, SsspResult::kInf);
    if (n == 0)
        return res;

    if (delta <= 0.0) {
        // Default: mean edge weight (1.0 for unweighted graphs).
        const Csr* flat = g.flat();
        delta = flat && flat->num_arcs()
            ? flat->total_arc_weight()
                / static_cast<double>(flat->num_arcs())
            : 1.0;
        if (delta <= 0.0)
            delta = 1.0;
    }

    Timer timer;
    timer.start();
    const bool trace_entries = tracer && !g.compressed();
    GraphView::Scratch scratch;
    std::vector<std::vector<vid_t>> buckets(1);
    auto bucket_of = [&](double d) {
        return static_cast<std::size_t>(d / delta);
    };
    auto push = [&](vid_t v, double d) {
        const std::size_t b = bucket_of(d);
        if (b >= buckets.size())
            buckets.resize(b + 1);
        buckets[b].push_back(v);
    };

    res.distance[source] = 0.0;
    push(source, 0.0);
    std::vector<vid_t> current;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        // Re-scan the bucket until it stops refilling (light edges can
        // re-insert into the current bucket).
        while (!buckets[b].empty()) {
            current.swap(buckets[b]);
            buckets[b].clear();
            for (vid_t v : current) {
                const double dv = res.distance[v];
                if (bucket_of(dv) != b)
                    continue; // settled in an earlier bucket since
                const auto nbrs = g.neighbors(v, scratch, tracer);
                const auto ws = g.neighbor_weights(v);
                for (std::size_t i = 0; i < nbrs.size(); ++i) {
                    const vid_t u = nbrs[i];
                    const double cand = dv + edge_weight(ws, i);
                    if (tracer) {
                        if (trace_entries)
                            tracer->load(&nbrs[i], sizeof(vid_t));
                        tracer->load(&res.distance[u], sizeof(double));
                    }
                    ++res.edges_relaxed;
                    if (cand < res.distance[u]) {
                        res.distance[u] = cand;
                        push(u, cand);
                    }
                }
            }
            current.clear();
        }
    }
    res.total_time_s = timer.elapsed_s();
    return res;
}

SsspResult
sssp_delta_stepping(const Csr& g, vid_t source, double delta,
                    AccessTracer* tracer)
{
    return sssp_delta_stepping(GraphView(g), source, delta, tracer);
}

} // namespace graphorder
