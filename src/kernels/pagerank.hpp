/**
 * @file
 * PageRank — one of the "standard suite of prototypical graph operations"
 * (paper §VI) on which prior reordering studies (Balaji & Lucia 2018;
 * Faldu et al. 2019; Wei et al. 2016) are based.  Included so this
 * repository can reproduce the lightweight-reordering methodology of
 * those studies alongside the paper's two applications.
 *
 * Pull-based power iteration: rank'(v) = (1-d)/n + d * sum_u rank(u)/deg(u)
 * over in-neighbors u (in == out for undirected graphs).  The pull loop's
 * rank[u] indirection is exactly the access pattern vertex reordering is
 * meant to tame, and can be traced into the cache simulator.
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/graph_view.hpp"

namespace graphorder {

class AccessTracer;

/** PageRank options. */
struct PageRankOptions
{
    double damping = 0.85;
    double tolerance = 1e-8; ///< L1 change per vertex to stop
    int max_iterations = 100;
    AccessTracer* tracer = nullptr; ///< trace the pull loop's loads
};

/** PageRank result with iteration statistics. */
struct PageRankResult
{
    std::vector<double> rank;
    int iterations = 0;
    double total_time_s = 0;
    double time_per_iteration_s() const
    {
        return iterations ? total_time_s / iterations : 0.0;
    }
};

/**
 * Run pull-based PageRank against either storage backend.  Results are
 * bit-identical across backends (both iterate neighbors ascending); the
 * compressed backend decodes on traverse and, when traced, replays the
 * encoded-byte reads instead of flat adjacency entries.
 */
PageRankResult pagerank(const GraphView& g,
                        const PageRankOptions& opt = {});

/** Run pull-based PageRank on an undirected graph. */
PageRankResult pagerank(const Csr& g, const PageRankOptions& opt = {});

} // namespace graphorder
