#include "kernels/packing.hpp"

#include <unordered_set>

#include "memsim/cache.hpp"

namespace graphorder {

PackingAnalysis
packing_analysis(const Csr& g, const Permutation& pi, unsigned entry_bytes,
                 unsigned line_bytes, double degree_threshold,
                 AccessTracer* tracer)
{
    PackingAnalysis out;
    const vid_t n = g.num_vertices();
    if (n == 0)
        return out;
    const double cut = degree_threshold > 0.0
        ? degree_threshold
        : static_cast<double>(g.num_arcs()) / static_cast<double>(n);
    const unsigned per_line = std::max(1u, line_bytes / entry_bytes);

    std::unordered_set<std::uint64_t> lines;
    eid_t hub_arcs = 0;
    const auto& ranks = pi.ranks();
    for (vid_t v = 0; v < n; ++v) {
        if (static_cast<double>(g.degree(v)) > cut) {
            ++out.num_hubs;
            hub_arcs += g.degree(v);
            if (tracer)
                tracer->load(&ranks[v], sizeof(vid_t));
            lines.insert(pi.rank(v) / per_line);
        }
    }
    out.hub_fraction = static_cast<double>(out.num_hubs) / n;
    out.lines_touched = lines.size();
    out.lines_packed = (out.num_hubs + per_line - 1) / per_line;
    out.packing_factor = out.lines_packed
        ? static_cast<double>(out.lines_touched)
            / static_cast<double>(out.lines_packed)
        : 0.0;
    out.hub_arc_fraction = g.num_arcs()
        ? static_cast<double>(hub_arcs) / static_cast<double>(g.num_arcs())
        : 0.0;
    return out;
}

} // namespace graphorder
