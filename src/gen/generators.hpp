/**
 * @file
 * Deterministic synthetic graph generators.
 *
 * The paper evaluates on 34 real graphs from KONECT and the DIMACS-10
 * collection.  Those files are not redistributable here, so each instance
 * is replaced by a generator from the same structural family (see
 * DESIGN.md §2).  All generators take an explicit seed and produce the
 * same graph on every platform.  Generated graphs are undirected and
 * simple; generators aim at a target edge count but may land a few percent
 * off after deduplication (real RMAT behaves the same way).
 */
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace graphorder {

/**
 * Road-network-like graph: a W x H grid thinned to a connected skeleton.
 * A random spanning tree of the grid guarantees connectivity; remaining
 * grid edges are added at random until ~target_edges.  Produces the long
 * paths / tiny degrees / huge diameters characteristic of road networks.
 */
Csr gen_road(vid_t num_vertices, eid_t target_edges, std::uint64_t seed);

/**
 * Finite-element-style triangulated mesh on a jittered W x H grid:
 * 4-neighbor grid edges plus one diagonal per cell (degree <= 6), then
 * @p extra_rings of 2-hop "stiffening" edges to reach denser meshes like
 * wing_nodal.  extra_rings = -1 drops the diagonals (quad mesh, deg ~4,
 * like cs4).
 */
Csr gen_mesh(vid_t num_vertices, int extra_rings, std::uint64_t seed);

/**
 * R-MAT (Chakrabarti et al.) power-law graph over the smallest 2^k >= n,
 * with edges touching ids >= n rejected.  Partition probabilities (a,b,c)
 * control skew; (0.57,0.19,0.19) is the Graph500 social-network setting.
 */
Csr gen_rmat(vid_t num_vertices, eid_t target_edges, double a, double b,
             double c, std::uint64_t seed);

/** Barabási–Albert preferential attachment with @p edges_per_vertex. */
Csr gen_barabasi_albert(vid_t num_vertices, vid_t edges_per_vertex,
                        std::uint64_t seed);

/** Watts–Strogatz small world: ring of degree @p k, rewire prob @p beta. */
Csr gen_watts_strogatz(vid_t num_vertices, vid_t k, double beta,
                       std::uint64_t seed);

/** Erdős–Rényi G(n, m): m distinct uniform edges. */
Csr gen_erdos_renyi(vid_t num_vertices, eid_t num_edges, std::uint64_t seed);

/**
 * Community-rich graph: a stochastic block model whose block sizes follow
 * a power law and whose intra-block endpoints are drawn Chung-Lu style
 * (degree skew inside communities).  Fraction @p intra of edges falls
 * inside blocks — the structure Louvain/Grappolo/Rabbit exploit.
 */
Csr gen_sbm(vid_t num_vertices, eid_t target_edges, vid_t num_blocks,
            double intra, std::uint64_t seed);

/**
 * Star-forest-plus-noise: a few huge hubs with leaf fans plus random
 * edges — mimics ego-network dumps (Facebook NIPS, Google+) whose max
 * degree is a large fraction of n.
 */
Csr gen_hub_forest(vid_t num_vertices, eid_t target_edges, vid_t num_hubs,
                   std::uint64_t seed);

/**
 * Social network: SBM community backbone (~80% of edges, power-law block
 * sizes) overlaid with a hub fan-out (~15%) and random noise (~5%).
 * Real social graphs (YouTube, LiveJournal, Orkut) combine exactly these
 * two traits — strong modularity (Louvain Q ~ 0.6-0.7) *and* extreme
 * degree skew — which neither pure R-MAT nor pure SBM reproduces.
 */
Csr gen_social(vid_t num_vertices, eid_t target_edges, std::uint64_t seed);

} // namespace graphorder
