#include "gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "graph/builder.hpp"

namespace graphorder {

namespace {

/** Pick grid dimensions W*H >= n with W/H near 1. */
std::pair<vid_t, vid_t>
grid_dims(vid_t n)
{
    auto w = static_cast<vid_t>(std::ceil(std::sqrt(double(n))));
    const vid_t h = (n + w - 1) / w;
    return {w, h};
}

} // namespace

Csr
gen_road(vid_t n, eid_t target_edges, std::uint64_t seed)
{
    Rng rng(seed);
    const auto [w, h] = grid_dims(n);
    auto id = [&, w = w](vid_t x, vid_t y) { return y * w + x; };

    // Candidate grid edges among the first n cells.
    std::vector<Edge> candidates;
    for (vid_t y = 0; y < h; ++y) {
        for (vid_t x = 0; x < w; ++x) {
            const vid_t v = id(x, y);
            if (v >= n)
                continue;
            if (x + 1 < w && id(x + 1, y) < n)
                candidates.push_back({v, id(x + 1, y), 1.0});
            if (y + 1 < h && id(x, y + 1) < n)
                candidates.push_back({v, id(x, y + 1), 1.0});
        }
    }
    shuffle(candidates.begin(), candidates.end(), rng);

    // Kruskal-style spanning tree over shuffled candidates -> random maze.
    std::vector<vid_t> parent(n);
    std::iota(parent.begin(), parent.end(), vid_t{0});
    std::vector<vid_t> rank_uf(n, 0);
    std::function<vid_t(vid_t)> find = [&](vid_t v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };
    auto unite = [&](vid_t a, vid_t b) {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        if (rank_uf[a] < rank_uf[b])
            std::swap(a, b);
        parent[b] = a;
        if (rank_uf[a] == rank_uf[b])
            ++rank_uf[a];
        return true;
    };

    GraphBuilder b(n);
    std::vector<Edge> leftovers;
    for (const auto& e : candidates) {
        if (unite(e.u, e.v))
            b.add_edge(e.u, e.v);
        else
            leftovers.push_back(e);
    }
    // Top up with unused grid edges toward the target count.
    for (const auto& e : leftovers) {
        if (b.num_raw_edges() >= target_edges)
            break;
        b.add_edge(e.u, e.v);
    }
    return b.finalize();
}

Csr
gen_mesh(vid_t n, int extra_rings, std::uint64_t seed)
{
    Rng rng(seed);
    const auto [w, h] = grid_dims(n);
    auto id = [&, w = w](vid_t x, vid_t y) { return y * w + x; };

    GraphBuilder b(n);
    for (vid_t y = 0; y < h; ++y) {
        for (vid_t x = 0; x < w; ++x) {
            const vid_t v = id(x, y);
            if (v >= n)
                continue;
            if (x + 1 < w && id(x + 1, y) < n)
                b.add_edge(v, id(x + 1, y));
            if (y + 1 < h && id(x, y + 1) < n)
                b.add_edge(v, id(x, y + 1));
            if (extra_rings >= 0 && x + 1 < w && y + 1 < h) {
                // One random diagonal per cell: a valid triangulation of
                // the quad, jittered so the mesh is not perfectly regular.
                if (rng.next_bool(0.5)) {
                    if (id(x + 1, y + 1) < n)
                        b.add_edge(v, id(x + 1, y + 1));
                } else if (id(x + 1, y) < n && id(x, y + 1) < n) {
                    b.add_edge(id(x + 1, y), id(x, y + 1));
                }
            }
            // Optional 2-hop stiffeners for denser FE meshes.
            for (int r = 1; r <= extra_rings; ++r) {
                const vid_t step = static_cast<vid_t>(r + 1);
                if (x + step < w && id(x + step, y) < n)
                    b.add_edge(v, id(x + step, y));
                if (y + step < h && id(x, y + step) < n)
                    b.add_edge(v, id(x, y + step));
            }
        }
    }
    return b.finalize();
}

Csr
gen_rmat(vid_t n, eid_t target_edges, double a, double b_, double c,
         std::uint64_t seed)
{
    Rng rng(seed);
    int scale = 0;
    while ((vid_t{1} << scale) < n)
        ++scale;

    GraphBuilder b(n);
    const eid_t attempts_cap = target_edges * 8; // rejection safety valve
    eid_t attempts = 0;
    while (b.num_raw_edges() < target_edges && attempts < attempts_cap) {
        ++attempts;
        vid_t u = 0, v = 0;
        for (int bit = scale - 1; bit >= 0; --bit) {
            const double r = rng.next_double();
            if (r < a) {
                // top-left quadrant: no bits set
            } else if (r < a + b_) {
                v |= vid_t{1} << bit;
            } else if (r < a + b_ + c) {
                u |= vid_t{1} << bit;
            } else {
                u |= vid_t{1} << bit;
                v |= vid_t{1} << bit;
            }
        }
        if (u >= n || v >= n || u == v)
            continue;
        b.add_edge(u, v);
    }
    return b.finalize();
}

Csr
gen_barabasi_albert(vid_t n, vid_t edges_per_vertex, std::uint64_t seed)
{
    Rng rng(seed);
    const vid_t m0 = std::max<vid_t>(edges_per_vertex, 2);
    GraphBuilder b(n);

    // Repeated-endpoints list implements preferential attachment in O(1)
    // per draw.
    std::vector<vid_t> targets;
    targets.reserve(static_cast<std::size_t>(n) * edges_per_vertex * 2);

    // Seed clique over the first m0 vertices.
    for (vid_t u = 0; u < m0 && u < n; ++u) {
        for (vid_t v = u + 1; v < m0 && v < n; ++v) {
            b.add_edge(u, v);
            targets.push_back(u);
            targets.push_back(v);
        }
    }
    for (vid_t v = m0; v < n; ++v) {
        for (vid_t e = 0; e < edges_per_vertex; ++e) {
            const vid_t u = targets.empty()
                ? static_cast<vid_t>(rng.next_below(v))
                : targets[rng.next_below(targets.size())];
            if (u == v)
                continue;
            b.add_edge(u, v);
            targets.push_back(u);
            targets.push_back(v);
        }
    }
    return b.finalize();
}

Csr
gen_watts_strogatz(vid_t n, vid_t k, double beta, std::uint64_t seed)
{
    Rng rng(seed);
    GraphBuilder b(n);
    const vid_t half = std::max<vid_t>(k / 2, 1);
    for (vid_t v = 0; v < n; ++v) {
        for (vid_t j = 1; j <= half; ++j) {
            vid_t w = (v + j) % n;
            if (rng.next_bool(beta)) {
                w = static_cast<vid_t>(rng.next_below(n));
                if (w == v)
                    w = (v + j) % n;
            }
            b.add_edge(v, w);
        }
    }
    return b.finalize();
}

Csr
gen_erdos_renyi(vid_t n, eid_t num_edges, std::uint64_t seed)
{
    Rng rng(seed);
    GraphBuilder b(n);
    const eid_t cap = num_edges * 4;
    eid_t tries = 0;
    while (b.num_raw_edges() < num_edges && tries < cap) {
        ++tries;
        const auto u = static_cast<vid_t>(rng.next_below(n));
        const auto v = static_cast<vid_t>(rng.next_below(n));
        if (u != v)
            b.add_edge(u, v);
    }
    return b.finalize();
}

Csr
gen_sbm(vid_t n, eid_t target_edges, vid_t num_blocks, double intra,
        std::uint64_t seed)
{
    Rng rng(seed);
    num_blocks = std::max<vid_t>(num_blocks, 1);

    // Power-law block sizes: size_i ~ (i+1)^-0.8, normalized to n.
    std::vector<double> raw(num_blocks);
    for (vid_t i = 0; i < num_blocks; ++i)
        raw[i] = std::pow(double(i + 1), -0.8);
    const double total = std::accumulate(raw.begin(), raw.end(), 0.0);
    std::vector<vid_t> block_of(n);
    std::vector<std::vector<vid_t>> members(num_blocks);
    {
        vid_t v = 0;
        for (vid_t i = 0; i < num_blocks && v < n; ++i) {
            auto sz = static_cast<vid_t>(
                std::max(1.0, std::round(raw[i] / total * n)));
            for (vid_t j = 0; j < sz && v < n; ++j, ++v) {
                block_of[v] = i;
                members[i].push_back(v);
            }
        }
        for (; v < n; ++v) { // remainder into the last block
            block_of[v] = num_blocks - 1;
            members[num_blocks - 1].push_back(v);
        }
    }

    // Chung-Lu style intra-block endpoint pick: position j inside a block
    // is chosen with weight ~ (j+1)^-0.5, giving degree skew inside
    // communities.
    auto pick_in_block = [&](vid_t blk) {
        const auto& mem = members[blk];
        const double u = rng.next_double();
        const auto j = static_cast<std::size_t>(
            (std::pow(u, 2.0)) * static_cast<double>(mem.size()));
        return mem[std::min(j, mem.size() - 1)];
    };

    GraphBuilder b(n);
    const eid_t cap = target_edges * 6;
    eid_t tries = 0;
    while (b.num_raw_edges() < target_edges && tries < cap) {
        ++tries;
        if (rng.next_bool(intra)) {
            // Intra edge: block chosen proportional to its size.
            const vid_t v = static_cast<vid_t>(rng.next_below(n));
            const vid_t blk = block_of[v];
            if (members[blk].size() < 2)
                continue;
            const vid_t u = pick_in_block(blk);
            const vid_t w = pick_in_block(blk);
            if (u != w)
                b.add_edge(u, w);
        } else {
            const auto u = static_cast<vid_t>(rng.next_below(n));
            const auto w = static_cast<vid_t>(rng.next_below(n));
            if (u != w)
                b.add_edge(u, w);
        }
    }
    return b.finalize();
}

Csr
gen_social(vid_t n, eid_t target_edges, std::uint64_t seed)
{
    Rng rng(seed ^ 0x5CA1AB1E5CA1AB1EULL);
    // Community backbone.
    const vid_t blocks = std::max<vid_t>(
        8, static_cast<vid_t>(std::sqrt(static_cast<double>(n)) / 2.0));
    const Csr backbone =
        gen_sbm(n, target_edges * 4 / 5, blocks, 0.85, seed);

    GraphBuilder b(n);
    for (vid_t v = 0; v < n; ++v)
        for (vid_t u : backbone.neighbors(v))
            if (v < u)
                b.add_edge(v, u);

    // Hub overlay: a handful of celebrities with fans across the graph.
    const vid_t num_hubs = std::max<vid_t>(2, n / 2000);
    std::vector<vid_t> hubs;
    for (vid_t i = 0; i < num_hubs; ++i)
        hubs.push_back(static_cast<vid_t>(rng.next_below(n)));
    const eid_t hub_edges = target_edges * 3 / 20;
    for (eid_t e = 0; e < hub_edges; ++e) {
        const vid_t hub = hubs[rng.next_below(hubs.size())];
        const auto fan = static_cast<vid_t>(rng.next_below(n));
        if (hub != fan)
            b.add_edge(hub, fan);
    }
    // Random long-range noise.
    const eid_t cap = target_edges * 3;
    eid_t tries = 0;
    while (b.num_raw_edges() < target_edges && tries < cap) {
        ++tries;
        const auto u = static_cast<vid_t>(rng.next_below(n));
        const auto v = static_cast<vid_t>(rng.next_below(n));
        if (u != v)
            b.add_edge(u, v);
    }
    return b.finalize();
}

Csr
gen_hub_forest(vid_t n, eid_t target_edges, vid_t num_hubs,
               std::uint64_t seed)
{
    Rng rng(seed);
    num_hubs = std::max<vid_t>(num_hubs, 1);
    GraphBuilder b(n);

    // Scatter hub ids across the range (ego dumps have hubs anywhere).
    std::vector<vid_t> hubs;
    for (vid_t i = 0; i < num_hubs; ++i)
        hubs.push_back(static_cast<vid_t>(rng.next_below(n)));

    // ~75% of edges fan out of hubs (geometric split over hubs), rest
    // random noise.
    const eid_t fan_edges = target_edges * 3 / 4;
    for (eid_t e = 0; e < fan_edges; ++e) {
        const vid_t hub = hubs[rng.next_below(hubs.size())];
        const auto leaf = static_cast<vid_t>(rng.next_below(n));
        if (hub != leaf)
            b.add_edge(hub, leaf);
    }
    const eid_t cap = target_edges * 6;
    eid_t tries = 0;
    while (b.num_raw_edges() < target_edges && tries < cap) {
        ++tries;
        const auto u = static_cast<vid_t>(rng.next_below(n));
        const auto v = static_cast<vid_t>(rng.next_below(n));
        if (u != v)
            b.add_edge(u, v);
    }
    return b.finalize();
}

} // namespace graphorder
