#include "gen/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/permutation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/faultpoint.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace graphorder {

namespace {

FaultPoint fp_gen_make{
    "gen.dataset.make", StatusCode::Internal,
    "dataset stand-in generation fails mid-build"};

/**
 * Scramble vertex ids with a seeded shuffle.  Applied to the KONECT-family
 * stand-ins (social/web/hub/community): real KONECT dumps carry
 * crawl-order ids with little locality, while DIMACS meshes and road
 * networks ship coordinate-sorted and are left as generated.  Without
 * this, the "natural" baseline would inherit the generators' artificially
 * good layouts.
 */
Csr
scramble_ids(Csr g, std::uint64_t seed)
{
    Rng rng(seed ^ 0xA5A5A5A5DEADBEEFULL);
    const auto pi = random_permutation(g.num_vertices(), rng);
    return apply_permutation(g, pi);
}

/** Scale a count down by divisor, keeping a sane floor. */
vid_t
scale_v(vid_t v, double scale)
{
    return static_cast<vid_t>(
        std::max(16.0, std::round(static_cast<double>(v) / scale)));
}

eid_t
scale_e(eid_t e, double scale)
{
    return static_cast<eid_t>(
        std::max(32.0, std::round(static_cast<double>(e) / scale)));
}

/** Deterministic per-dataset seed derived from the name. */
std::uint64_t
name_seed(const std::string& name)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

Dataset
make_entry(std::string name, GraphFamily fam, vid_t n, eid_t m, bool large)
{
    Dataset d;
    d.name = name;
    d.family = fam;
    d.paper_vertices = n;
    d.paper_edges = m;
    d.large = large;
    const std::uint64_t seed = name_seed(name);
    switch (fam) {
      case GraphFamily::Road:
        d.make = [=](double s) {
            return gen_road(scale_v(n, s), scale_e(m, s), seed);
        };
        break;
      case GraphFamily::Mesh: {
        // Choose mesh density from the paper's m/n ratio:
        //   ~2n -> quad mesh, ~3n -> triangulated, >4n -> stiffened.
        const double ratio =
            static_cast<double>(m) / static_cast<double>(n);
        const int rings = ratio < 2.5 ? -1 : (ratio < 4.0 ? 0 : 1 + int(ratio / 4.0));
        // DIMACS delaunay_* instances are triangulations of *random*
        // points, so their shipped ids carry no geometric locality;
        // fe_*/cs4/cti/wing meshes come from FE tools with banded
        // natural orders and are left as generated.
        const bool scramble = name.rfind("delaunay", 0) == 0;
        d.make = [=](double s) {
            auto g = gen_mesh(scale_v(n, s), rings, seed);
            return scramble ? scramble_ids(std::move(g), seed)
                            : std::move(g);
        };
        break;
      }
      case GraphFamily::Social:
        d.make = [=](double s) {
            return scramble_ids(
                gen_social(scale_v(n, s), scale_e(m, s), seed), seed);
        };
        break;
      case GraphFamily::Web:
        d.make = [=](double s) {
            return scramble_ids(gen_rmat(scale_v(n, s), scale_e(m, s),
                                         0.62, 0.18, 0.18, seed),
                                seed);
        };
        break;
      case GraphFamily::HubForest:
        d.make = [=](double s) {
            const vid_t sv = scale_v(n, s);
            const vid_t hubs = std::max<vid_t>(4, sv / 400);
            return scramble_ids(
                gen_hub_forest(sv, scale_e(m, s), hubs, seed), seed);
        };
        break;
      case GraphFamily::Community:
        d.make = [=](double s) {
            const vid_t sv = scale_v(n, s);
            const vid_t blocks =
                std::max<vid_t>(8, static_cast<vid_t>(std::sqrt(sv) / 2));
            return scramble_ids(
                gen_sbm(sv, scale_e(m, s), blocks, 0.8, seed), seed);
        };
        break;
    }

    // Every registry build gets a `gen/<name>` span plus shared build
    // counters, so bench startup cost is attributable per instance.
    // The wrapper also validates the scale knob (the one user-supplied
    // parameter of the generator path) and hosts the gen fault point.
    auto inner = std::move(d.make);
    d.make = [inner = std::move(inner), dsname = d.name,
              span = "gen/" + d.name](double s) {
        GO_TRACE_SCOPE(span);
        fp_gen_make.maybe_fire();
        if (!(s >= 1.0) || !std::isfinite(s))
            throw GraphorderError(
                StatusCode::InvalidInput,
                "dataset " + dsname + ": scale divisor must be >= 1, got "
                    + std::to_string(s));
        Timer t;
        t.start();
        Csr g = inner(s);
        auto& reg = obs::MetricsRegistry::instance();
        reg.counter("gen/graphs_built").add();
        reg.counter("gen/edges_built").add(g.num_edges());
        reg.histogram("gen/build_time_s").observe(t.elapsed_s());
        return g;
    };
    return d;
}

} // namespace

const std::vector<Dataset>&
small_datasets()
{
    using F = GraphFamily;
    static const std::vector<Dataset> sets = {
        make_entry("chicago-road", F::Road, 1467, 1298, false),
        make_entry("euroroad", F::Road, 1174, 1417, false),
        make_entry("facebook-nips", F::HubForest, 2888, 2981, false),
        make_entry("urv-email", F::Social, 1133, 5451, false),
        make_entry("delaunay_n11", F::Mesh, 2048, 6128, false),
        make_entry("figeys", F::HubForest, 2239, 6452, false),
        make_entry("us-powergrid", F::Road, 4941, 6594, false),
        make_entry("delaunay_n12", F::Mesh, 4096, 12265, false),
        make_entry("hamster-small", F::Social, 1858, 12534, false),
        make_entry("hamster-full", F::Social, 2426, 16631, false),
        make_entry("pgp", F::Community, 10680, 24316, false),
        make_entry("delaunay_n13", F::Mesh, 8192, 24548, false),
        make_entry("openflights", F::HubForest, 2939, 30501, false),
        make_entry("fe_4elt2", F::Mesh, 11143, 32819, false),
        make_entry("twitter-lists", F::Social, 23370, 33101, false),
        make_entry("google-plus", F::HubForest, 23628, 39242, false),
        make_entry("cs4", F::Mesh, 22499, 43859, false),
        make_entry("cti", F::Mesh, 16840, 48233, false),
        make_entry("delaunay_n14", F::Mesh, 16384, 49123, false),
        make_entry("caida", F::Web, 26475, 53381, false),
        make_entry("vsp", F::Community, 10498, 53869, false),
        make_entry("wing_nodal", F::Mesh, 10937, 75489, false),
        make_entry("cora-citation", F::Community, 23166, 91500, false),
        make_entry("gnutella", F::Web, 62586, 147892, false),
        make_entry("arxiv-astroph", F::Community, 18771, 198050, false),
    };
    return sets;
}

const std::vector<Dataset>&
large_datasets()
{
    using F = GraphFamily;
    static const std::vector<Dataset> sets = {
        make_entry("livemocha", F::Social, 104103, 2193083, true),
        make_entry("ca-roadnet", F::Road, 1965206, 2766607, true),
        make_entry("hyves", F::Social, 1402673, 2777419, true),
        make_entry("arxiv-hepph", F::Community, 28093, 4596803, true),
        make_entry("youtube", F::Social, 3223589, 9375374, true),
        make_entry("skitter", F::Web, 1696415, 11095298, true),
        make_entry("actor-collab", F::Community, 382219, 33115812, true),
        make_entry("livejournal", F::Social, 5204176, 48709773, true),
        make_entry("orkut", F::Social, 3072441, 117184899, true),
    };
    return sets;
}

const Dataset&
dataset_by_name(const std::string& name)
{
    for (const auto& d : small_datasets())
        if (d.name == name)
            return d;
    for (const auto& d : large_datasets())
        if (d.name == name)
            return d;
    throw std::out_of_range("unknown dataset: " + name);
}

const char*
family_name(GraphFamily f)
{
    switch (f) {
      case GraphFamily::Road: return "road";
      case GraphFamily::Mesh: return "mesh";
      case GraphFamily::Social: return "social";
      case GraphFamily::HubForest: return "hub-forest";
      case GraphFamily::Community: return "community";
      case GraphFamily::Web: return "web";
    }
    return "?";
}

} // namespace graphorder
