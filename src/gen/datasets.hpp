/**
 * @file
 * Registry of the paper's 34 input instances (Table I), realized as
 * synthetic stand-ins (see DESIGN.md §2 for the substitution rationale).
 *
 * Each entry records the paper's reported |V|, |E| and the generator used
 * to mimic the instance's structural family.  The 25 "small" qualitative
 * instances are generated at full paper scale; the 9 "large" application
 * instances accept a down-scale divisor so the application benches finish
 * on modest machines (the paper used a 224-core, 6 TB node).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace graphorder {

/** Structural family of an instance, driving the generator choice. */
enum class GraphFamily
{
    Road,      ///< road / power-grid style sparse lattices
    Mesh,      ///< finite-element / Delaunay meshes
    Social,    ///< power-law social networks (R-MAT / BA)
    HubForest, ///< ego-network dumps dominated by a few huge hubs
    Community, ///< modular graphs with planted communities (SBM)
    Web,       ///< internet/web topologies (skewed R-MAT)
};

/** One Table I instance. */
struct Dataset
{
    std::string name;      ///< paper's instance name (lowercased)
    GraphFamily family;
    vid_t paper_vertices;  ///< Table I column 1
    eid_t paper_edges;     ///< Table I column 2
    bool large = false;    ///< one of the 9 application instances

    /**
     * Build the stand-in graph.
     * @param scale divisor applied to |V| and |E| (1 = paper scale).
     */
    std::function<Csr(double scale)> make;
};

/** The 25 qualitative-analysis instances, in Table I order. */
const std::vector<Dataset>& small_datasets();

/** The 9 application-analysis instances, in Table I order. */
const std::vector<Dataset>& large_datasets();

/** Lookup by name across both sets; throws std::out_of_range if absent. */
const Dataset& dataset_by_name(const std::string& name);

/** Human-readable family name. */
const char* family_name(GraphFamily f);

} // namespace graphorder
