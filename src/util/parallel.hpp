/**
 * @file
 * Shared OpenMP threading knob and deterministic parallel primitives.
 *
 * Every parallel path in the library — CSR construction, permutation
 * application, the counting-sort orderings, the gap measures, Louvain and
 * IMM — resolves its thread count through one knob:
 *
 *   1. an explicit set_default_threads(n) call (the `--threads` flag),
 *   2. else the `GRAPHORDER_THREADS` environment variable,
 *   3. else OpenMP's own default (OMP_NUM_THREADS / hardware).
 *
 * Determinism contract: the primitives below decompose work into *blocks*
 * whose count and boundaries depend only on the input size — never on the
 * thread count — and combine per-block results in block order.  An
 * algorithm written against them therefore produces bit-identical output
 * for any thread count, including 1; "parallel vs serial" is purely a
 * scheduling difference.  tests/parallel_test.cpp asserts this for every
 * parallelized stage at 1, 2 and 8 threads.
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace graphorder {

/** Threads OpenMP would grant by default (OMP_NUM_THREADS / cores). */
int hardware_threads();

/**
 * Set the process-wide thread override used by default_threads().
 * @param n thread count; 0 restores env/OpenMP resolution.
 */
void set_default_threads(int n);

/**
 * Effective thread count for the library's parallel regions:
 * set_default_threads() override, else GRAPHORDER_THREADS, else
 * hardware_threads().  Always >= 1.
 */
int default_threads();

/** @return requested if > 0, else default_threads(). */
int resolve_threads(int requested);

/**
 * Number of work blocks for @p n items with roughly @p grain items per
 * block, clamped to [1, cap].  Depends only on the input size (never the
 * thread count) so block-indexed algorithms stay deterministic.
 */
inline std::size_t
num_blocks(std::size_t n, std::size_t grain, std::size_t cap = 256)
{
    if (grain == 0)
        grain = 1;
    std::size_t b = n / grain;
    if (b < 1)
        b = 1;
    if (b > cap)
        b = cap;
    return b;
}

/** Half-open item range [first, second) of block @p b out of @p nblocks. */
inline std::pair<std::size_t, std::size_t>
block_range(std::size_t n, std::size_t nblocks, std::size_t b)
{
    const std::size_t per = n / nblocks;
    const std::size_t rem = n % nblocks;
    const std::size_t begin = b * per + (b < rem ? b : rem);
    return {begin, begin + per + (b < rem ? 1 : 0)};
}

/**
 * In-place exclusive prefix sum (v[i] becomes the sum of the original
 * v[0..i)); returns the total.  Blocked three-pass scan: per-block local
 * scans, a serial scan of the block totals, then a parallel fix-up.
 * Integer addition is associative, so the result is exact and identical
 * for any thread count.
 */
template <typename Int>
Int
exclusive_prefix_sum(std::vector<Int>& v)
{
    const std::size_t n = v.size();
    if (n == 0)
        return Int{0};
    const std::size_t nb = num_blocks(n, std::size_t{1} << 15);
    std::vector<Int> block_total(nb);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        Int s{0};
        for (std::size_t i = lo; i < hi; ++i) {
            const Int x = v[i];
            v[i] = s;
            s += x;
        }
        block_total[b] = s;
    }
    Int run{0};
    for (std::size_t b = 0; b < nb; ++b) {
        const Int t = block_total[b];
        block_total[b] = run;
        run += t;
    }
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 1; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        for (std::size_t i = lo; i < hi; ++i)
            v[i] += block_total[b];
    }
    return run;
}

/**
 * Deterministic chunk-ordered reduction over the item range [0, n):
 * @p block maps the half-open block [lo, hi) to a partial of type T, the
 * partials are combined serially in block order with `+=`.  Block count
 * and boundaries depend only on @p n and @p grain — never the thread
 * count — so floating-point results are bit-identical for any team size
 * (the idiom of the gap measures, shared here so the IMM simulator and
 * Louvain's modularity reduction use the exact same decomposition).
 *
 * @tparam T default-constructible accumulator with operator+=.
 * @tparam BlockFn (std::size_t lo, std::size_t hi) -> T; called once
 *         per block, so per-block scratch amortizes over grain items.
 */
template <typename T, typename BlockFn>
T
chunk_ordered_reduce(std::size_t n, std::size_t grain, BlockFn block,
                     std::size_t cap = 256)
{
    if (n == 0)
        return T{};
    const std::size_t nb = num_blocks(n, grain, cap);
    std::vector<T> part(nb);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(n, nb, b);
        part[b] = block(lo, hi);
    }
    T total{};
    for (const T& p : part)
        total += p;
    return total;
}

/**
 * Deterministic parallel *stable* counting sort: returns the items
 * [0, n) ordered by ascending key(i), ties broken by ascending i —
 * exactly std::stable_sort with a key comparator, in O(n + num_keys).
 *
 * Per-block histograms are combined with a (key-major, block-minor)
 * exclusive scan, giving every block a private scatter cursor per key;
 * within a block items are scattered in index order, so stability and
 * determinism hold for any thread count.
 *
 * Memory: O(blocks * num_keys); the block count shrinks as num_keys
 * grows so the histogram table stays small relative to the input.
 *
 * @tparam Index integer item/index type (e.g. vid_t).
 * @tparam KeyFn Index -> key in [0, num_keys); must be pure.
 */
template <typename Index, typename KeyFn>
std::vector<Index>
stable_order_by_key(Index n, std::size_t num_keys, KeyFn key)
{
    const std::size_t sn = static_cast<std::size_t>(n);
    std::vector<Index> order(sn);
    if (sn == 0)
        return order;
    if (num_keys == 0)
        num_keys = 1;
    // Keep the histogram table (nb * num_keys) within ~4x of the input.
    std::size_t grain = std::size_t{1} << 14;
    if (grain < num_keys / 4)
        grain = num_keys / 4;
    const std::size_t nb = num_blocks(sn, grain, 64);
    std::vector<std::size_t> hist(nb * num_keys, 0);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(sn, nb, b);
        std::size_t* h = hist.data() + b * num_keys;
        for (std::size_t i = lo; i < hi; ++i)
            ++h[key(static_cast<Index>(i))];
    }
    std::size_t run = 0;
    for (std::size_t k = 0; k < num_keys; ++k) {
        for (std::size_t b = 0; b < nb; ++b) {
            std::size_t& cell = hist[b * num_keys + k];
            const std::size_t c = cell;
            cell = run;
            run += c;
        }
    }
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(sn, nb, b);
        std::size_t* cur = hist.data() + b * num_keys;
        for (std::size_t i = lo; i < hi; ++i) {
            const Index item = static_cast<Index>(i);
            order[cur[key(item)]++] = item;
        }
    }
    return order;
}

/**
 * Deterministic concatenation of per-block buffers in block order.
 * The output layout depends only on the buffer contents (never the
 * thread count); the copies run in parallel.  Buffers are left intact.
 */
template <typename T>
std::vector<T>
concat_blocks(const std::vector<std::vector<T>>& bufs)
{
    const std::size_t nb = bufs.size();
    std::vector<std::size_t> off(nb + 1, 0);
    for (std::size_t b = 0; b < nb; ++b)
        off[b + 1] = off[b] + bufs[b].size();
    std::vector<T> out(off[nb]);
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (std::size_t b = 0; b < nb; ++b)
        std::copy(bufs[b].begin(), bufs[b].end(), out.begin() + off[b]);
    return out;
}

} // namespace graphorder
