#include "util/parallel.hpp"

#include <omp.h>

#include <atomic>
#include <cstdlib>

namespace graphorder {

namespace {

// 0 = no override; set via set_default_threads (the --threads flag).
std::atomic<int> g_thread_override{0};

} // namespace

int
hardware_threads()
{
    return omp_get_max_threads();
}

void
set_default_threads(int n)
{
    g_thread_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int
default_threads()
{
    const int o = g_thread_override.load(std::memory_order_relaxed);
    if (o > 0)
        return o;
    if (const char* e = std::getenv("GRAPHORDER_THREADS")) {
        const int n = std::atoi(e);
        if (n > 0)
            return n;
    }
    const int hw = hardware_threads();
    return hw > 0 ? hw : 1;
}

int
resolve_threads(int requested)
{
    return requested > 0 ? requested : default_threads();
}

} // namespace graphorder
