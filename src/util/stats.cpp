#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace graphorder {

double
quantile_sorted(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary
summarize(std::vector<double> values)
{
    Summary s;
    s.count = values.size();
    if (values.empty())
        return s;
    std::sort(values.begin(), values.end());
    s.min = values.front();
    s.max = values.back();
    s.mean = mean_of(values);
    s.stddev = stddev_of(values);
    s.p25 = quantile_sorted(values, 0.25);
    s.median = quantile_sorted(values, 0.50);
    s.p75 = quantile_sorted(values, 0.75);
    s.p90 = quantile_sorted(values, 0.90);
    s.p99 = quantile_sorted(values, 0.99);
    return s;
}

LogHistogram::LogHistogram(double base) : base_(base) {}

void
LogHistogram::add(double value)
{
    std::size_t bin = 0;
    if (value >= 1.0)
        bin = static_cast<std::size_t>(std::log(value) / std::log(base_)) + 1;
    if (bin >= counts_.size())
        counts_.resize(bin + 1, 0);
    ++counts_[bin];
    ++total_;
}

std::uint64_t
LogHistogram::bin_count(std::size_t k) const
{
    return k < counts_.size() ? counts_[k] : 0;
}

double
LogHistogram::bin_lower(std::size_t k) const
{
    return k == 0 ? 0.0 : std::pow(base_, static_cast<double>(k - 1));
}

std::string
LogHistogram::to_string() const
{
    std::ostringstream os;
    for (std::size_t k = 0; k < counts_.size(); ++k) {
        if (k)
            os << ' ';
        os << '[' << bin_lower(k) << ',' << bin_lower(k + 1) << "):"
           << counts_[k];
    }
    return os.str();
}

double
mean_of(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0)
        / static_cast<double>(v.size());
}

double
stddev_of(const std::vector<double>& v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean_of(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size()));
}

double
geomean_of(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(std::max(x, 1e-12));
    return std::exp(acc / static_cast<double>(v.size()));
}

} // namespace graphorder
