#include "util/perf_profile.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace graphorder {

double
PerfProfile::fraction_within(std::size_t scheme_index, double tau) const
{
    const auto& r = curves.at(scheme_index).ratios;
    if (r.empty())
        return 0.0;
    const auto it = std::upper_bound(r.begin(), r.end(), tau);
    return static_cast<double>(it - r.begin())
        / static_cast<double>(r.size());
}

double
PerfProfile::max_ratio() const
{
    double m = 1.0;
    for (const auto& c : curves)
        for (double r : c.ratios)
            m = std::max(m, r);
    return m;
}

double
PerfProfile::mean_log2_ratio(std::size_t scheme_index) const
{
    const auto& r = curves.at(scheme_index).ratios;
    if (r.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : r)
        acc += std::log2(x);
    return acc / static_cast<double>(r.size());
}

std::string
PerfProfile::to_csv(const std::vector<double>& taus) const
{
    std::ostringstream os;
    os << "scheme";
    for (double t : taus)
        os << ",tau=" << t;
    os << '\n';
    for (std::size_t s = 0; s < curves.size(); ++s) {
        os << curves[s].scheme;
        for (double t : taus)
            os << ',' << fraction_within(s, t);
        os << '\n';
    }
    return os.str();
}

PerfProfile
build_profile(const ProfileInput& input, double epsilon)
{
    const std::size_t ns = input.schemes.size();
    const std::size_t np = input.problems.size();
    if (input.costs.size() != ns)
        throw std::invalid_argument("profile: cost rows != #schemes");
    for (const auto& row : input.costs)
        if (row.size() != np)
            throw std::invalid_argument("profile: cost cols != #problems");

    // Best (minimum) cost per problem across schemes.
    std::vector<double> best(np, 0.0);
    for (std::size_t p = 0; p < np; ++p) {
        double b = input.costs[0][p];
        for (std::size_t s = 1; s < ns; ++s)
            b = std::min(b, input.costs[s][p]);
        best[p] = std::max(b, epsilon);
    }

    PerfProfile out;
    out.curves.resize(ns);
    for (std::size_t s = 0; s < ns; ++s) {
        out.curves[s].scheme = input.schemes[s];
        auto& r = out.curves[s].ratios;
        r.reserve(np);
        for (std::size_t p = 0; p < np; ++p)
            r.push_back(std::max(input.costs[s][p], epsilon) / best[p]);
        std::sort(r.begin(), r.end());
    }
    return out;
}

std::vector<double>
default_tau_grid(double max_tau)
{
    std::vector<double> taus;
    for (double t = 1.0; t <= max_tau * 1.0001; t *= 1.25)
        taus.push_back(t);
    return taus;
}

} // namespace graphorder
